// PSI-based record alignment (the preprocessing step the paper assumes):
// two organizations hold overlapping-but-different customer sets in
// different orders; the salted-hash PSI aligns them to the shared
// customers, after which GTV trains as usual.
//
//   ./build/examples/psi_alignment
#include <cmath>
#include <cstdio>

#include "core/gtv.h"
#include "psi/psi.h"

int main() {
  using namespace gtv;
  Rng rng(17);

  // The bank knows customers b0..b119; the retailer knows r-prefixed ids
  // overlapping on the middle 80. Each row depends on a shared latent so
  // there is cross-party structure to verify after alignment.
  psi::Party bank, retailer;
  bank.table = data::Table({{"income", data::ColumnType::kContinuous, {}, {}},
                            {"defaulted", data::ColumnType::kCategorical, {"no", "yes"}, {}}});
  retailer.table = data::Table({{"spend", data::ColumnType::kContinuous, {}, {}}});
  for (int i = 0; i < 120; ++i) {
    const double z = static_cast<double>(i % 10) - 4.5;  // deterministic per id
    bank.ids.push_back("customer_" + std::to_string(i));
    bank.table.append_row({50 + 8 * z + rng.normal(0, 1),
                           static_cast<double>(rng.uniform() < 0.2)});
  }
  for (int i = 20; i < 140; ++i) {  // shifted id range, different order
    const int id = 159 - i + 20 - 20;  // reversed within [20, 139]
    const int real_id = 20 + (139 - i);
    (void)id;
    const double z = static_cast<double>(real_id % 10) - 4.5;
    retailer.ids.push_back("customer_" + std::to_string(real_id));
    retailer.table.append_row({900 + 120 * z + rng.normal(0, 10)});
  }

  // Clients negotiate a secret salt (like the shuffle seed, hidden from
  // the server) and intersect salted identifier hashes.
  const std::uint64_t salt = 0xfeedc0de;
  auto aligned = psi::align_by_intersection({bank, retailer}, salt);
  std::printf("bank rows: %zu, retailer rows: %zu, intersection: %zu\n",
              bank.table.n_rows(), retailer.table.n_rows(), aligned.matched_rows);

  // Sanity: rows are aligned — income and spend must be strongly coupled
  // through the shared per-id latent.
  double sum_xy = 0, sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0;
  const auto n = static_cast<double>(aligned.matched_rows);
  for (std::size_t r = 0; r < aligned.matched_rows; ++r) {
    const double x = aligned.tables[0].cell(r, 0);
    const double y = aligned.tables[1].cell(r, 0);
    sum_x += x;
    sum_y += y;
    sum_xy += x * y;
    sum_xx += x * x;
    sum_yy += y * y;
  }
  const double corr = (n * sum_xy - sum_x * sum_y) /
                      std::sqrt((n * sum_xx - sum_x * sum_x) * (n * sum_yy - sum_y * sum_y));
  std::printf("post-alignment income<->spend correlation: %.3f (should be ~1)\n", corr);

  // The aligned shards feed straight into GTV.
  core::GtvOptions options;
  options.gan.noise_dim = 16;
  options.gan.hidden = 64;
  options.generator_hidden = 64;
  options.gan.batch_size = 32;
  options.gan.d_steps_per_round = 2;
  core::GtvTrainer trainer(aligned.tables, options, 23);
  trainer.train(30);
  data::Table synthetic = trainer.sample(aligned.matched_rows);
  std::printf("trained GTV on the aligned shards; synthesized %zu x %zu table.\n",
              synthetic.n_rows(), synthetic.n_cols());
  return 0;
}
