// Quickstart: train the centralized conditional tabular GAN on the Loan
// dataset, synthesize a table of the same size, and report quality metrics.
//
//   ./build/examples/quickstart
//
// This is the "hello world" of the library: no federation involved, just
// the encoder + conditional WGAN-GP baseline and the evaluation stack.
#include <cstdio>

#include "data/datasets.h"
#include "eval/ml_utility.h"
#include "eval/similarity.h"
#include "gan/ctabgan.h"

int main() {
  using namespace gtv;

  // 1. Data: a synthetic stand-in for the Kaggle Loan dataset (12 features
  //    + binary target; see DESIGN.md for the substitution rationale).
  Rng rng(7);
  data::Table full = data::make_loan(1500, rng);
  const std::size_t target = full.column_index("personal_loan");
  auto [train, test] = full.train_test_split(0.2, rng, target);
  std::printf("training table: %zu rows x %zu columns\n", train.n_rows(), train.n_cols());

  // 2. Model: CT-GAN-style conditional WGAN-GP with mode-specific
  //    normalization, one-hot and mixed-type encoding handled internally.
  gan::GanOptions options;
  options.batch_size = 64;
  options.d_steps_per_round = 3;
  options.hidden = 128;
  gan::CentralizedTabularGan model(train, options, /*seed=*/42);

  std::printf("training 60 rounds (WGAN-GP, %zu critic steps per round)...\n",
              options.d_steps_per_round);
  model.train(60, [](std::size_t round, const gan::RoundLosses& losses) {
    if ((round + 1) % 20 == 0) {
      std::printf("  round %3zu: critic=%.3f generator=%.3f gp=%.3f\n", round + 1,
                  losses.d_loss, losses.g_loss, losses.gp);
    }
  });

  // 3. Synthesis + evaluation.
  data::Table synthetic = model.sample(train.n_rows());
  auto similarity = eval::similarity_report(train, synthetic);
  std::printf("\nstatistical similarity (lower = better):\n");
  std::printf("  avg JSD (categorical cols):  %.4f\n", similarity.avg_jsd);
  std::printf("  avg WD  (continuous cols):   %.4f\n", similarity.avg_wd);
  std::printf("  Diff. Corr.:                 %.4f\n", similarity.diff_corr);

  Rng eval_rng(11);
  auto utility = eval::ml_utility_difference(train, synthetic, test, target, eval_rng);
  std::printf("\nML utility (5-classifier suite on the real test set):\n");
  std::printf("  real-trained:      acc=%.3f f1=%.3f auc=%.3f\n", utility.real.accuracy,
              utility.real.f1, utility.real.auc);
  std::printf("  synthetic-trained: acc=%.3f f1=%.3f auc=%.3f\n", utility.synthetic.accuracy,
              utility.synthetic.f1, utility.synthetic.auc);
  std::printf("  difference:        acc=%.3f f1=%.3f auc=%.3f\n",
              utility.difference.accuracy, utility.difference.f1, utility.difference.auc);
  return 0;
}
