// Quickstart: train the centralized conditional tabular GAN on the Loan
// dataset, synthesize a table of the same size, report quality metrics —
// then run the same data through the federated GTV pipeline (two vertical
// shards) with per-round phase timing from gtv::obs.
//
//   ./build/examples/quickstart
//   GTV_TRACE=/tmp/trace.jsonl ./build/examples/quickstart   # + span trace
//
// This is the "hello world" of the library: the encoder + conditional
// WGAN-GP baseline, the evaluation stack, and a taste of the VFL loop.
#include <cstdio>

#include "core/gtv.h"
#include "data/datasets.h"
#include "eval/ml_utility.h"
#include "eval/similarity.h"
#include "gan/ctabgan.h"

int main() {
  using namespace gtv;

  // 1. Data: a synthetic stand-in for the Kaggle Loan dataset (12 features
  //    + binary target; see DESIGN.md for the substitution rationale).
  Rng rng(7);
  data::Table full = data::make_loan(1500, rng);
  const std::size_t target = full.column_index("personal_loan");
  auto [train, test] = full.train_test_split(0.2, rng, target);
  std::printf("training table: %zu rows x %zu columns\n", train.n_rows(), train.n_cols());

  // 2. Model: CT-GAN-style conditional WGAN-GP with mode-specific
  //    normalization, one-hot and mixed-type encoding handled internally.
  gan::GanOptions options;
  options.batch_size = 64;
  options.d_steps_per_round = 3;
  options.hidden = 128;
  gan::CentralizedTabularGan model(train, options, /*seed=*/42);

  std::printf("training 60 rounds (WGAN-GP, %zu critic steps per round)...\n",
              options.d_steps_per_round);
  model.train(60, [](std::size_t round, const gan::RoundLosses& losses) {
    if ((round + 1) % 20 == 0) {
      std::printf("  round %3zu: critic=%.3f generator=%.3f gp=%.3f\n", round + 1,
                  losses.d_loss, losses.g_loss, losses.gp);
    }
  });

  // 3. Synthesis + evaluation.
  data::Table synthetic = model.sample(train.n_rows());
  auto similarity = eval::similarity_report(train, synthetic);
  std::printf("\nstatistical similarity (lower = better):\n");
  std::printf("  avg JSD (categorical cols):  %.4f\n", similarity.avg_jsd);
  std::printf("  avg WD  (continuous cols):   %.4f\n", similarity.avg_wd);
  std::printf("  Diff. Corr.:                 %.4f\n", similarity.diff_corr);

  Rng eval_rng(11);
  auto utility = eval::ml_utility_difference(train, synthetic, test, target, eval_rng);
  std::printf("\nML utility (5-classifier suite on the real test set):\n");
  std::printf("  real-trained:      acc=%.3f f1=%.3f auc=%.3f\n", utility.real.accuracy,
              utility.real.f1, utility.real.auc);
  std::printf("  synthetic-trained: acc=%.3f f1=%.3f auc=%.3f\n", utility.synthetic.accuracy,
              utility.synthetic.f1, utility.synthetic.auc);
  std::printf("  difference:        acc=%.3f f1=%.3f auc=%.3f\n",
              utility.difference.accuracy, utility.difference.f1, utility.difference.auc);

  // 4. Federated: the same table, vertically split across two
  //    organizations and trained with GTV (split GAN over a byte-metered
  //    simulated network). The timed train() overload surfaces the
  //    per-round telemetry gtv::obs captures; set GTV_TRACE=<path> to also
  //    get a chrome://tracing span trace of every phase.
  std::vector<std::size_t> left, right;
  for (std::size_t c = 0; c < train.n_cols(); ++c) {
    (c < train.n_cols() / 2 ? left : right).push_back(c);
  }
  auto shards = data::vertical_split(train, {left, right});

  core::GtvOptions gtv_options;
  gtv_options.gan.batch_size = 64;
  gtv_options.gan.d_steps_per_round = 2;
  gtv_options.gan.hidden = 128;
  gtv_options.generator_hidden = 128;
  std::printf("\nfederated GTV (2 clients, 10 rounds, per-round telemetry):\n");
  core::GtvTrainer trainer(shards, gtv_options, /*seed=*/42);
  trainer.train(10, [](std::size_t round, const gan::RoundLosses& losses,
                       const obs::RoundTelemetry& telemetry) {
    if ((round + 1) % 2 == 0) {
      std::printf(
          "  round %2zu: %6.1f ms (fake %5.1f | real %5.1f | backprop %5.1f | gen %5.1f)"
          "  critic=%.3f  %.1f KiB sent\n",
          round + 1, telemetry.total_ms, telemetry.fake_forward_ms,
          telemetry.real_forward_ms, telemetry.critic_backward_ms,
          telemetry.generator_step_ms, losses.d_loss,
          static_cast<double>(telemetry.bytes_sent()) / 1024.0);
    }
  });

  const obs::RoundTelemetry summary = trainer.telemetry_snapshot();
  const auto traffic = trainer.traffic().total();
  std::printf("\nGTV training totals (%zu rounds):\n", summary.round);
  std::printf("  wall time:         %.1f ms\n", summary.total_ms);
  std::printf("  cv-generation:     %.1f ms\n", summary.cv_generation_ms);
  std::printf("  fake forward:      %.1f ms\n", summary.fake_forward_ms);
  std::printf("  real forward:      %.1f ms\n", summary.real_forward_ms);
  std::printf("  critic backprop:   %.1f ms (gradient penalty %.1f ms)\n",
              summary.critic_backward_ms, summary.gradient_penalty_ms);
  std::printf("  generator step:    %.1f ms\n", summary.generator_step_ms);
  std::printf("  shuffle:           %.1f ms\n", summary.shuffle_ms);
  std::printf("  communication:     %.1f KiB in %llu messages\n",
              static_cast<double>(traffic.bytes) / 1024.0,
              static_cast<unsigned long long>(traffic.messages));
  return 0;
}
