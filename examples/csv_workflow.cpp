// End-to-end CSV workflow — what a downstream user of the library does:
//   1. each organization loads its shard from a CSV file,
//   2. GTV trains across the shards,
//   3. the published synthetic table is written back to CSV,
//   4. a generator-side module checkpoint is saved and reloaded.
//
//   ./build/examples/csv_workflow [work_dir]
#include <cstdio>
#include <filesystem>

#include "core/gtv.h"
#include "data/datasets.h"
#include "gan/ctabgan.h"
#include "nn/serialize.h"

int main(int argc, char** argv) {
  using namespace gtv;
  const std::string work_dir =
      argc > 1 ? argv[1] : (std::filesystem::temp_directory_path() / "gtv_csv").string();
  std::filesystem::create_directories(work_dir);

  // --- 1. produce the two organizations' CSV shards (stand-ins for exports)
  Rng rng(29);
  data::Table joined = data::make_loan(600, rng);
  std::vector<std::size_t> left_cols, right_cols;
  for (std::size_t c = 0; c < joined.n_cols(); ++c) {
    (c < joined.n_cols() / 2 ? left_cols : right_cols).push_back(c);
  }
  const std::string csv_a = work_dir + "/org_a.csv";
  const std::string csv_b = work_dir + "/org_b.csv";
  data::write_csv(joined.select_columns(left_cols), csv_a);
  data::write_csv(joined.select_columns(right_cols), csv_b);
  std::printf("wrote shards: %s, %s\n", csv_a.c_str(), csv_b.c_str());

  // --- 2. each organization loads its own file; GTV trains across them
  std::vector<data::Table> shards = {data::read_csv(csv_a), data::read_csv(csv_b)};
  std::printf("loaded %zu + %zu columns, %zu aligned rows\n", shards[0].n_cols(),
              shards[1].n_cols(), shards[0].n_rows());
  core::GtvOptions options;
  options.gan.noise_dim = 32;
  options.gan.hidden = 128;
  options.generator_hidden = 128;
  options.gan.batch_size = 64;
  options.gan.d_steps_per_round = 2;
  options.gan.adam.lr = 1e-3f;
  core::GtvTrainer trainer(shards, options, 31);
  trainer.train(60);

  // --- 3. publish the synthetic table as CSV
  data::Table synthetic = trainer.sample(joined.n_rows());
  const std::string csv_out = work_dir + "/synthetic.csv";
  data::write_csv(synthetic, csv_out);
  data::Table reloaded = data::read_csv(csv_out);
  std::printf("published synthetic table: %s (%zu rows x %zu cols, round-trips: %s)\n",
              csv_out.c_str(), reloaded.n_rows(), reloaded.n_cols(),
              reloaded.same_schema(synthetic) ? "yes" : "NO");

  // --- 4. checkpoint a module and restore it
  Rng init_rng(7);
  gan::GeneratorNet net(16, 32, 2, 8, init_rng);
  const std::string ckpt = work_dir + "/generator.gtvp";
  nn::save_parameters(net, ckpt);
  gan::GeneratorNet restored(16, 32, 2, 8, init_rng);  // different init
  nn::load_parameters(restored, ckpt);
  Tensor probe = Tensor::ones(2, 16);
  ag::NoGradGuard no_grad;
  net.set_training(false);
  restored.set_training(false);
  const float diff =
      net.forward(ag::Var(probe)).value().max_abs_diff(restored.forward(ag::Var(probe)).value());
  std::printf("checkpoint round-trip: %s (max output diff %.2g)\n", ckpt.c_str(), diff);
  return 0;
}
