// The paper's motivating scenario (§1): a bank and an e-commerce company
// hold different features for the same customers and want a joint synthetic
// dataset without exchanging raw data. This example builds the two vertical
// shards, trains GTV with the paper's preferred D_0^2 G_2^0 partition, and
// shows that the published synthetic table preserves cross-organization
// column dependencies the bank alone could never synthesize.
//
//   ./build/examples/bank_ecommerce
#include <cmath>
#include <cstdio>

#include "core/gtv.h"
#include "data/datasets.h"
#include "eval/similarity.h"

int main() {
  using namespace gtv;

  // Shared customers: the bank holds income/credit features, the
  // e-commerce company holds purchasing behaviour. Both depend on a latent
  // "affluence" factor, so cross-party correlations exist to be learned.
  Rng rng(21);
  data::Table joined({{"income", data::ColumnType::kContinuous, {}, {}},
                      {"credit_score", data::ColumnType::kContinuous, {}, {}},
                      {"has_mortgage", data::ColumnType::kCategorical, {"no", "yes"}, {}},
                      {"monthly_spend", data::ColumnType::kContinuous, {}, {}},
                      {"orders_per_year", data::ColumnType::kContinuous, {}, {}},
                      {"premium_member", data::ColumnType::kCategorical, {"no", "yes"}, {}}});
  for (int i = 0; i < 1000; ++i) {
    const double affluence = rng.normal();
    joined.append_row({55 + 18 * affluence + rng.normal(0, 4),
                       650 + 60 * affluence + rng.normal(0, 20),
                       static_cast<double>(rng.uniform() < 0.3 + 0.25 * std::tanh(affluence)),
                       900 + 350 * affluence + rng.normal(0, 80),
                       14 + 6 * affluence + rng.normal(0, 2),
                       static_cast<double>(rng.uniform() < 0.2 + 0.3 * std::tanh(affluence))});
  }

  // Vertical split: bank = columns 0-2, e-commerce = columns 3-5.
  auto shards = data::vertical_split(joined, {{0, 1, 2}, {3, 4, 5}});
  std::printf("bank shard: %zu cols, e-commerce shard: %zu cols, %zu aligned rows\n",
              shards[0].n_cols(), shards[1].n_cols(), shards[0].n_rows());

  core::GtvOptions options;
  options.partition = {0, 2, 2, 0};  // D_0^2 G_2^0, the paper's recommendation
  options.gan.batch_size = 64;
  options.gan.d_steps_per_round = 3;
  options.gan.hidden = 128;
  options.generator_hidden = 128;
  core::GtvTrainer trainer(shards, options, /*seed=*/5);

  std::printf("training GTV (%s) for 80 rounds...\n", options.partition.name().c_str());
  trainer.train(80, [](std::size_t round, const gan::RoundLosses& losses) {
    if ((round + 1) % 20 == 0) {
      std::printf("  round %3zu: critic=%.3f generator=%.3f\n", round + 1, losses.d_loss,
                  losses.g_loss);
    }
  });

  // Secure publication: per-client synthesis + shared-secret shuffle.
  data::Table synthetic = trainer.sample(joined.n_rows());

  // Did the synthesis capture the bank<->e-commerce dependency?
  const double across_real_synth = eval::correlation_difference_between(
      joined, synthetic, {0, 1, 2}, {3, 4, 5});
  Tensor real_assoc = eval::association_matrix(joined);
  Tensor synth_assoc = eval::association_matrix(synthetic);
  std::printf("\ncross-organization association (income <-> monthly_spend):\n");
  std::printf("  real: %.3f   synthetic: %.3f\n", real_assoc(0, 3), synth_assoc(0, 3));
  std::printf("across-client Diff. Corr. (lower = better): %.3f\n", across_real_synth);

  auto eval = trainer.attack_evaluation();
  std::printf("\nsemi-honest server reconstruction accuracy after training: %.3f "
              "(training-with-shuffling keeps this near chance)\n",
              eval.accuracy);
  const auto traffic = trainer.traffic().total();
  std::printf("total protocol traffic: %.1f MiB over %llu messages\n",
              static_cast<double>(traffic.bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(traffic.messages));
  return 0;
}
