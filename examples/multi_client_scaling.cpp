// Multi-client scaling (paper §4.3.3): distribute the Adult columns over
// 2, 3 and 4 clients, train GTV with the default (256-wide) and enlarged
// (768-wide) generators, and watch synthetic-data quality respond. Also
// prints the per-round communication bill, which grows with client count.
//
//   ./build/examples/multi_client_scaling
#include <cstdio>

#include "core/gtv.h"
#include "data/datasets.h"
#include "eval/similarity.h"

namespace {

std::vector<std::vector<std::size_t>> round_robin(std::size_t n_cols, std::size_t n_clients) {
  std::vector<std::vector<std::size_t>> groups(n_clients);
  for (std::size_t c = 0; c < n_cols; ++c) groups[c % n_clients].push_back(c);
  return groups;
}

}  // namespace

int main() {
  using namespace gtv;
  Rng rng(31);
  data::Table adult = data::make_adult(800, rng);
  std::printf("adult stand-in: %zu rows x %zu columns\n\n", adult.n_rows(), adult.n_cols());

  std::printf("clients generator  avg_jsd  avg_wd   diff_corr  round_traffic(KiB)\n");
  for (std::size_t n_clients : {2, 3, 4}) {
    for (const std::size_t width : {256, 768}) {
      core::GtvOptions options;
      options.partition = {0, 2, 2, 0};  // D_0^2 G_2^0
      options.gan.batch_size = 64;
      options.gan.d_steps_per_round = 2;
      options.generator_hidden = width;
      auto groups = round_robin(adult.n_cols(), n_clients);
      core::GtvTrainer trainer(data::vertical_split(adult, groups), options, 9);
      trainer.train(40);
      trainer.traffic().reset();
      trainer.train_round();
      const double round_kib =
          static_cast<double>(trainer.traffic().total().bytes) / 1024.0;

      // Re-join synthetic columns in the original order before comparing.
      auto shards = trainer.sample_per_client(adult.n_rows());
      data::Table joined = data::Table::concat_columns(shards);
      std::vector<std::size_t> restore(adult.n_cols());
      std::size_t pos = 0;
      for (const auto& group : groups) {
        for (std::size_t col : group) restore[col] = pos++;
      }
      data::Table synthetic = joined.select_columns(restore);

      auto report = eval::similarity_report(adult, synthetic);
      std::printf("%-7zu %-9zu  %.4f   %.4f   %.4f     %.1f\n", n_clients, width,
                  report.avg_jsd, report.avg_wd, report.diff_corr, round_kib);
    }
  }
  std::printf("\npaper shape: more clients -> slightly worse quality; the enlarged (768)\n"
              "generator counteracts the degradation at higher communication cost.\n");
  return 0;
}
