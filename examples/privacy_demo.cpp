// Privacy demonstration (paper Figs. 5 and 6): what a curious server can
// reconstruct from the conditional vectors and data indices it legitimately
// observes — first WITHOUT the training-with-shuffling defence, then WITH
// it. Prints the server's inference table next to the clients' real data.
//
//   ./build/examples/privacy_demo
#include <cstdio>

#include "core/gtv.h"
#include "data/datasets.h"
#include "eval/mia.h"

int main() {
  using namespace gtv;

  // The paper's running example: client 1 holds Gender, client 2 holds
  // Loan, six aligned customers.
  data::Table joined({{"gender", data::ColumnType::kCategorical, {"M", "F"}, {}},
                      {"loan", data::ColumnType::kCategorical, {"Y", "N"}, {}}});
  joined.append_row({0, 0});
  joined.append_row({0, 0});
  joined.append_row({0, 1});
  joined.append_row({1, 1});
  joined.append_row({1, 1});
  joined.append_row({1, 1});

  auto run = [&](bool shuffling) {
    core::GtvOptions options;
    options.gan.noise_dim = 8;
    options.gan.hidden = 16;
    options.generator_hidden = 16;
    options.gan.batch_size = 6;
    options.gan.d_steps_per_round = 1;
    options.training_with_shuffling = shuffling;
    core::GtvTrainer trainer(data::vertical_split(joined, {{0}, {1}}), options, 3);
    trainer.train(40);
    return trainer.attack_evaluation();
  };

  std::printf("clients' real data (6 customers):\n");
  std::printf("  idx  gender  loan\n");
  for (std::size_t r = 0; r < joined.n_rows(); ++r) {
    std::printf("  %zu    %-7s %s\n", r + 1,
                joined.spec(0).categories[static_cast<std::size_t>(joined.cell(r, 0))].c_str(),
                joined.spec(1).categories[static_cast<std::size_t>(joined.cell(r, 1))].c_str());
  }

  std::printf("\n[Fig. 5] GTV WITHOUT shuffling — server's inference table after training:\n");
  auto undefended = run(false);
  std::printf("  cells claimed: %zu (coverage %.0f%%), reconstruction accuracy: %.1f%%\n",
              undefended.claims, undefended.coverage * 100.0, undefended.accuracy * 100.0);
  std::printf("  -> the server recovered the clients' categorical columns.\n");

  std::printf("\n[Fig. 6] GTV WITH training-with-shuffling:\n");
  auto defended = run(true);
  std::printf("  cells claimed: %zu (coverage %.0f%%), reconstruction accuracy: %.1f%%\n",
              defended.claims, defended.coverage * 100.0, defended.accuracy * 100.0);
  std::printf("  -> every round the clients re-permute rows with a shared secret seed the\n"
              "     server never sees; its (index, CV) pairs go stale and accuracy falls\n"
              "     to roughly the marginal-guess rate.\n");

  // --- §3.3: membership inference against the published synthetic table ----
  std::printf("\n[§3.3] Membership inference on published synthetic data (loan):\n");
  Rng rng(7);
  data::Table full = data::make_loan(700, rng);
  const std::size_t target = full.column_index("personal_loan");
  auto [members, non_members] = full.train_test_split(0.3, rng, target);
  core::GtvOptions options;
  options.gan.noise_dim = 32;
  options.gan.hidden = 64;
  options.generator_hidden = 64;
  options.gan.batch_size = 64;
  options.gan.d_steps_per_round = 2;
  options.gan.adam.lr = 1e-3f;
  auto shards = data::vertical_split(members, {{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11, 12}});
  core::GtvTrainer trainer(std::move(shards), options, 11);
  trainer.train(60);
  data::Table synth_joined = trainer.sample(members.n_rows());
  // Restore the original column order before comparing.
  std::vector<std::size_t> restore(13);
  std::size_t pos = 0;
  for (std::size_t c : {0, 1, 2, 3, 4, 5}) restore[c] = pos++;
  for (std::size_t c : {6, 7, 8, 9, 10, 11, 12}) restore[c] = pos++;
  auto mia = eval::membership_inference(members, non_members, synth_joined.select_columns(restore));
  std::printf("  attack AUC: %.3f (0.5 = no membership leakage)\n", mia.auc);
  std::printf("  member / non-member mean distance to nearest synthetic row: %.3f / %.3f\n",
              mia.member_mean, mia.non_member_mean);
  std::printf("  -> the distance-only attack (the only one available against GTV's\n"
              "     shuffled publication) barely separates members from non-members.\n");
  return 0;
}
