#!/usr/bin/env python3
"""Diff the repo's BENCH_*.json files against their committed baselines.

The check.sh stages regenerate BENCH_transport_smoke.json,
BENCH_kernels.json, BENCH_health_smoke.json, BENCH_liveobs_smoke.json,
BENCH_blackbox_smoke.json, BENCH_sampler_smoke.json and BENCH_serve.json
in the working tree.
This tool answers "what moved?" by comparing every
numeric field against a baseline copy:

  python3 scripts/bench_compare.py                    # vs git HEAD
  python3 scripts/bench_compare.py --baseline-dir X/  # vs saved copies
  python3 scripts/bench_compare.py BENCH_kernels.json # subset of files

Exit code 0 when everything compared (informational mode). With
--fail-over PCT, exits 1 when any metric whose name matches --gate REGEX
regressed by more than PCT percent (regression = the value moving in the
bad direction: up for *_ms/*_bytes/latency metrics, down for *gflops*/
*speedup* metrics; other metrics are never gated, only reported).
"""
import argparse
import glob
import json
import os
import re
import subprocess
import sys

# Metrics where bigger is better; everything else numeric is treated as
# smaller-is-better for gating purposes.
BIGGER_IS_BETTER = re.compile(
    r"(gflops|speedup(_\d+_vs_\d+)?|coverage|rounds|records_per_sec"
    r"|rows_per_sec|samples_per_sec|resolved_frac)$")


def flatten(doc, prefix=""):
    """Yields (dotted.path, value) for every numeric leaf."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            yield from flatten(value, f"{prefix}{key}.")
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            yield from flatten(value, f"{prefix}{i}.")
    elif isinstance(doc, bool):
        return  # bools are ints in python; skip them
    elif isinstance(doc, (int, float)):
        yield prefix.rstrip("."), float(doc)


def load_baseline(path, baseline_dir):
    if baseline_dir:
        candidate = os.path.join(baseline_dir, os.path.basename(path))
        if not os.path.exists(candidate):
            return None
        with open(candidate) as f:
            return json.load(f)
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:{os.path.basename(path)}"],
            capture_output=True, text=True, check=True,
        ).stdout
        return json.loads(blob)
    except (subprocess.CalledProcessError, json.JSONDecodeError):
        return None  # new benchmark: no committed baseline yet


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BENCH_*.json files (default: all)")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory of baseline copies (default: git HEAD)")
    parser.add_argument("--gate", default=None,
                        help="regex of metric paths to gate with --fail-over")
    parser.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                        help="fail when a gated metric regresses more than PCT%%")
    args = parser.parse_args()

    files = args.files or sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("bench_compare: no BENCH_*.json files found", file=sys.stderr)
        return 2
    gate = re.compile(args.gate) if args.gate else None

    failures = []
    for path in files:
        with open(path) as f:
            current = dict(flatten(json.load(f)))
        baseline_doc = load_baseline(path, args.baseline_dir)
        print(f"== {path} ==")
        if baseline_doc is None:
            print(f"  (no baseline: {len(current)} metrics, nothing to diff)")
            continue
        baseline = dict(flatten(baseline_doc))
        for name in sorted(set(current) | set(baseline)):
            old, new = baseline.get(name), current.get(name)
            if old is None or new is None:
                print(f"  {name:<44} {'added' if old is None else 'removed'}")
                continue
            delta = new - old
            pct = (delta / abs(old) * 100.0) if old != 0 else (0.0 if delta == 0 else float("inf"))
            marker = ""
            if args.fail_over is not None and gate is not None and gate.search(name):
                bad = -pct if BIGGER_IS_BETTER.search(name) else pct
                if bad > args.fail_over:
                    marker = "  <-- REGRESSION"
                    failures.append((path, name, old, new, pct))
            if delta != 0:
                print(f"  {name:<44} {old:>14.6g} -> {new:<14.6g} ({pct:+.1f}%){marker}")
        same = sum(1 for n in current if n in baseline and baseline[n] == current[n])
        print(f"  ({same}/{len(current)} metrics unchanged)")

    if failures:
        print(f"\nbench_compare: {len(failures)} gated regression(s):", file=sys.stderr)
        for path, name, old, new, pct in failures:
            print(f"  {path}: {name} {old:g} -> {new:g} ({pct:+.1f}%)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
