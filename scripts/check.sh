#!/usr/bin/env bash
# Tier-1 verification plus an observability smoke test.
#
#   scripts/check.sh [build-dir]
#
# 1. configure + build + ctest (the repo's tier-1 gate)
# 2. one small benchmark run with GTV_TRACE + GTV_PROFILE enabled
# 3. assert the trace parses as JSONL with party rows + send/recv flow
#    pairs, the telemetry/profile JSON exist and carry schema_version,
#    and gtv-prof merges all three artefacts
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# --- observability smoke: tiny bench run with tracing on -------------------
SMOKE_OUT="$(mktemp -d)"
TRACE="$SMOKE_OUT/trace.jsonl"
trap 'rm -rf "$SMOKE_OUT"' EXIT

GTV_TRACE="$TRACE" GTV_PROFILE=1 GTV_BENCH_ROWS=80 GTV_BENCH_ROUNDS=3 \
  GTV_BENCH_DATASETS=loan GTV_BENCH_OUT="$SMOKE_OUT" "$BUILD_DIR/bench/comm_overhead"

[ -s "$TRACE" ] || { echo "FAIL: $TRACE is empty"; exit 1; }
ls "$SMOKE_OUT"/*.telemetry.json > /dev/null 2>&1 \
  || { echo "FAIL: no telemetry.json next to the bench CSV"; exit 1; }
ls "$SMOKE_OUT"/*.profile.json > /dev/null 2>&1 \
  || { echo "FAIL: no profile.json despite GTV_PROFILE=1"; exit 1; }
grep -q '"schema_version"' "$SMOKE_OUT"/*.telemetry.json \
  || { echo "FAIL: telemetry.json missing schema_version"; exit 1; }
grep -q '"schema_version"' "$SMOKE_OUT"/*.profile.json \
  || { echo "FAIL: profile.json missing schema_version"; exit 1; }

# Every line must be one JSON object with the Chrome trace-event fields:
# complete spans (ph:"X"), flow events (ph:"s"/"f"), process metadata (ph:"M").
awk '!/^\{.*"ph":"X".*"ts":.*"dur":.*"tid":.*\}$/ \
     && !/^\{.*"ph":"[sf]".*"id":.*"ts":.*"pid":.*\}$/ \
     && !/^\{.*"ph":"M".*"pid":.*\}$/ { bad = 1; print "bad line " NR ": " $0 }
     END { exit bad }' "$TRACE"

if command -v python3 > /dev/null 2>&1; then
  python3 - "$TRACE" <<'EOF'
import json, sys
names, span_pids, starts, finishes = set(), set(), {}, {}
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        rec = json.loads(line)
        if rec["ph"] == "X":
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(rec), f"line {n}: {rec}"
            names.add(rec["name"])
            span_pids.add(rec["pid"])
        elif rec["ph"] in ("s", "f"):
            (starts if rec["ph"] == "s" else finishes)[rec["id"]] = rec["pid"]
phases = {"cv_generation", "fake_forward", "real_forward", "critic_backward",
          "generator_step", "round"}
missing = phases - names
assert not missing, f"trace is missing phases: {missing}"
assert len(span_pids) >= 3, f"expected >=3 party rows (server/clients/driver): {span_pids}"
assert starts and set(starts) == set(finishes), "unpaired flow ids"
crossing = sum(1 for i, pid in starts.items() if finishes[i] != pid)
assert crossing > 0, "no flow crosses parties"
print(f"trace OK: {n} events, {len(names)} span names, "
      f"{len(span_pids)} party rows, {len(starts)} flow pairs ({crossing} cross-party)")
EOF
fi

# gtv-prof must merge all three artefacts without error.
"$BUILD_DIR/tools/gtv-prof" \
  --profile "$SMOKE_OUT"/comm_overhead.profile.json \
  --telemetry "$SMOKE_OUT"/comm_overhead.telemetry.json \
  --trace "$TRACE" > "$SMOKE_OUT/prof_report.txt"
grep -q "== coverage ==" "$SMOKE_OUT/prof_report.txt" \
  || { echo "FAIL: gtv-prof produced no coverage section"; exit 1; }

echo "check.sh: all green"
