#!/usr/bin/env bash
# Tier-1 verification plus an observability smoke test.
#
#   scripts/check.sh [build-dir]
#
# 1. configure + build + ctest (the repo's tier-1 gate)
# 2. one small benchmark run with GTV_TRACE enabled
# 3. assert the trace parses as JSONL and the telemetry.json exists
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# --- observability smoke: tiny bench run with tracing on -------------------
SMOKE_OUT="$(mktemp -d)"
TRACE="$SMOKE_OUT/trace.jsonl"
trap 'rm -rf "$SMOKE_OUT"' EXIT

GTV_TRACE="$TRACE" GTV_BENCH_ROWS=80 GTV_BENCH_ROUNDS=3 GTV_BENCH_DATASETS=loan \
  GTV_BENCH_OUT="$SMOKE_OUT" "$BUILD_DIR/bench/comm_overhead"

[ -s "$TRACE" ] || { echo "FAIL: $TRACE is empty"; exit 1; }
ls "$SMOKE_OUT"/*.telemetry.json > /dev/null 2>&1 \
  || { echo "FAIL: no telemetry.json next to the bench CSV"; exit 1; }

# Every line must be one JSON object with the Chrome trace-event fields.
awk '!/^\{.*"ph":"X".*"ts":.*"dur":.*"tid":.*\}$/ { bad = 1; print "bad line " NR ": " $0 }
     END { exit bad }' "$TRACE"

if command -v python3 > /dev/null 2>&1; then
  python3 - "$TRACE" <<'EOF'
import json, sys
names = set()
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        rec = json.loads(line)
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(rec), f"line {n}: {rec}"
        names.add(rec["name"])
phases = {"cv_generation", "fake_forward", "real_forward", "critic_backward",
          "generator_step", "round"}
missing = phases - names
assert not missing, f"trace is missing phases: {missing}"
print(f"trace OK: {n} events, {len(names)} distinct span names")
EOF
fi

echo "check.sh: all green"
