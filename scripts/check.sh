#!/usr/bin/env bash
# Tier-1 verification plus observability + training-health smoke tests.
#
#   scripts/check.sh [build-dir]
#
# Stages (select with GTV_CHECK_STAGE, default "all"):
#   all    1. configure + build + ctest (the repo's tier-1 gate)
#          2. one small benchmark run with GTV_TRACE + GTV_PROFILE enabled;
#             assert the trace parses as JSONL with party rows + send/recv
#             flow pairs, the telemetry/profile JSON exist and carry
#             schema_version, and gtv-prof merges all three artefacts
#          3. the health stage below
#   health incremental build, then the training-health smoke: a healthy
#          GTV_HEALTH=1 run must stay alert-free and emit the schema v3
#          telemetry envelope + <fig>.health.json (feeding the
#          BENCH_health_smoke.json baseline), a destabilized-LR run must
#          turn fatal and emit health.* trace instants, the divergence-test
#          JSONL artefact must hold well-formed alerts, and gtv-prof /
#          gtv-health must render it all.
#   transport incremental build + transport tests, then the distributed
#          smoke: gtv-node trains a 2-client split as 4 OS processes over
#          TCP-localhost and the per-round losses must match the in-proc
#          reference to 1e-5; a chaos run (>=10% drop + corruption) must
#          complete with nonzero retries, every injected corruption caught
#          by CRC, and losses identical to the clean run. Emits
#          BENCH_transport_smoke.json.
#   kernels incremental build + the dense-kernel tests (bit-parity vs the
#          naive reference, IEEE non-finite propagation, thread-pool
#          reentrancy, 10-round loss-trajectory parity), then bench/kernels:
#          the tiled gemm must beat the compiled-in seed kernel by >=2.5x at
#          512^3 on this machine. Emits BENCH_kernels.json.
#   liveobs incremental build + agg/transport tests, then the live-telemetry
#          smoke: a 4-process run with the Collector enabled must show every
#          party live in gtv-top and on the Prometheus endpoint (party
#          labels), every party must deliver >=1 snapshot with a finite
#          measured clock offset, the loss trajectory must be identical to a
#          telemetry-off run, and gtv-prof --offsets must fold the per-party
#          traces into clock-aligned cross-file gap statistics. Emits
#          BENCH_liveobs_smoke.json (snapshot latency p50/p99 + collector
#          overhead) and diffs all baselines via scripts/bench_compare.py.
#   blackbox incremental build + blackbox/json tests, then the crash-forensics
#          smoke: a recorder-on inproc run must reproduce the recorder-off
#          losses bit-for-bit at <2% wall overhead, gtv-postmortem --bench
#          must sustain the append path through ring wrap with zero CRC
#          rejects, and a 4-process TCP run SIGKILLed mid-round must leave
#          every ring valid (CRCs, contiguous seqs) with gtv-postmortem
#          naming the killed party, its last round/phase, and >=1 transport
#          event around the death. Emits BENCH_blackbox_smoke.json
#          (records/sec, write p99, overhead ratio).
#   sampler incremental build + sampler/transport tests, then the profiler
#          smoke: a --sample-hz 97 inproc run must reproduce the sampler-off
#          losses + model hash bit-for-bit at <=3% CPU overhead (wait4
#          rusage, interleaved pairs); a 4-process TCP run writes one
#          <role>.folded per party, and gtv-flame's merged profile must hold
#          >=100 samples, symbolize >=80% of frames, contain an on-CPU gemm
#          frame and an off-CPU blocked-in-recv frame, and cover all four
#          parties; the diff of a profile against itself must cancel to zero
#          stacks. Emits BENCH_sampler_smoke.json (samples/sec, overhead
#          ratio, resolved fraction).
#   resume incremental build + resume/node/transport tests, then the
#          elastic-federation smoke: a 4-process run that rewrites a GTVT
#          train checkpoint every few rounds must reproduce the in-proc
#          trajectory (checkpointing is a pure observer); a cold --resume
#          relaunch from the round-6 container must replay to the exact
#          same history and model hash; a straggled 40-round run
#          (--straggle-us) with client1 SIGKILLed mid-training must park,
#          readmit the --rejoin relaunch from the last checkpoint, and
#          finish all rounds bit-identical to an uninterrupted run; and a
#          --dp-noise TCP run must match the in-proc DP trainer to 1e-5
#          (the lifted DP-over-TCP restriction). Emits
#          BENCH_resume_smoke.json.
#   serve  incremental build + serve/serialize tests, then the serving
#          smoke: gtv-node --checkpoint-out writes a versioned container,
#          gtv-serve serves it over TCP with /metrics + the flight recorder
#          armed, two fresh connections with the same seed must hash
#          byte-identical, the scrape must show the serve party live with
#          request counters, SIGTERM must drain gracefully with a clean
#          black-box shutdown record, and bench/serve must show 64
#          concurrent clients >=3x one client through batching. Emits
#          BENCH_serve.json (rows/sec + latency percentiles per level).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
STAGE="${GTV_CHECK_STAGE:-all}"

# GTV_CHECK_KEEP=<dir>: write all smoke artefacts (telemetry, health,
# traces, blackbox rings, postmortem reports) there and keep them — CI
# uploads that directory when a stage fails. Default: a temp dir, cleaned.
if [ -n "${GTV_CHECK_KEEP:-}" ]; then
  SMOKE_OUT="$GTV_CHECK_KEEP"
  mkdir -p "$SMOKE_OUT"
else
  SMOKE_OUT="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_OUT"' EXIT
fi

# --- distributed transport smoke (stages: all, transport) --------------------
# Trains the same tiny config three ways — in-process, as 4 OS processes
# over TCP-localhost, and in-process through a chaos transport — and
# asserts the loss trajectories agree.
run_transport_stage() {
  local TOUT="$SMOKE_OUT/transport"
  mkdir -p "$TOUT"
  local NODE="$BUILD_DIR/tools/gtv-node"
  local ARGS="--clients 2 --rounds 2 --rows 96 --batch 32 --d-steps 2 --seed 7"
  local PORT=47661 DPORT=47662
  command -v python3 > /dev/null 2>&1 \
    || { echo "FAIL: the transport stage needs python3 to compare losses"; exit 1; }

  # 1. In-process reference (single process, loopback transport).
  "$NODE" --role inproc $ARGS > "$TOUT/inproc.json"

  # 2. The same training as four real OS processes over TCP.
  "$NODE" --role server $ARGS --port "$PORT" --driver-port "$DPORT" \
    > "$TOUT/server.json" 2>&1 &
  local SERVER_PID=$!
  "$NODE" --role client0 $ARGS --port "$PORT" --driver-port "$DPORT" \
    > "$TOUT/client0.json" 2>&1 &
  local C0_PID=$!
  "$NODE" --role client1 $ARGS --port "$PORT" --driver-port "$DPORT" \
    > "$TOUT/client1.json" 2>&1 &
  local C1_PID=$!
  "$NODE" --role driver $ARGS --port "$PORT" --driver-port "$DPORT" \
    > "$TOUT/driver.json" 2>&1 &
  local DRIVER_PID=$!
  local PID FAILED=0
  for PID in "$SERVER_PID" "$C0_PID" "$C1_PID" "$DRIVER_PID"; do
    wait "$PID" || FAILED=1
  done
  if [ "$FAILED" -ne 0 ]; then
    echo "FAIL: a gtv-node process exited nonzero"
    cat "$TOUT"/*.json
    exit 1
  fi

  # 3. Chaos smoke: >=10% drops plus duplication and corruption; must
  #    complete, retry, catch every corruption by CRC, and land on the
  #    exact same losses + model hash as the clean in-proc run.
  "$NODE" --role inproc $ARGS --chaos-drop 0.15 --chaos-dup 0.05 \
    --chaos-corrupt 0.05 --chaos-seed 3 > "$TOUT/chaos.json"

  python3 - "$TOUT" <<'EOF'
import json, sys
out = sys.argv[1]
inproc = json.load(open(f"{out}/inproc.json"))
driver = json.load(open(f"{out}/driver.json"))
chaos = json.load(open(f"{out}/chaos.json"))

# TCP run must reproduce the in-proc loss trajectory to float tolerance.
assert len(driver["rounds"]) == len(inproc["rounds"]), \
    f"round count mismatch: {len(driver['rounds'])} vs {len(inproc['rounds'])}"
worst = 0.0
for r, (d, i) in enumerate(zip(driver["rounds"], inproc["rounds"])):
    for field in ("d_loss", "g_loss", "gp", "wasserstein"):
        delta = abs(d[field] - i[field])
        worst = max(worst, delta)
        assert delta <= 1e-5, \
            f"round {r} {field}: tcp {d[field]} vs inproc {i[field]}"

# Per-party traffic flowed over the sockets.
for party in ("server", "client0", "client1"):
    stats = json.load(open(f"{out}/{party}.json"))["traffic"]
    assert stats["bytes"] > 0, f"{party} moved no bytes: {stats}"

# Chaos run: drops recovered by retransmit, corruption always CRC-caught,
# and the delivered payloads identical — same losses, same model.
ct, cs = chaos["traffic"], chaos["chaos"]
assert cs["drops"] > 0, f"chaos injected no drops: {cs}"
assert ct["retries"] > 0, f"chaos run needed no retries: {ct}"
assert ct["corrupt_frames"] == cs["corruptions"], \
    f"undetected corrupt frames: injected {cs['corruptions']}, caught {ct['corrupt_frames']}"
assert chaos["model_hash"] == inproc["model_hash"], \
    f"chaos changed the model: {chaos['model_hash']} vs {inproc['model_hash']}"
for r, (c, i) in enumerate(zip(chaos["rounds"], inproc["rounds"])):
    for field in ("d_loss", "g_loss", "gp", "wasserstein"):
        assert c[field] == i[field], f"chaos round {r} {field} drifted"

baseline = {
    "schema_version": 1,
    "rounds": len(inproc["rounds"]),
    "tcp_vs_inproc_max_loss_delta": worst,
    "tcp_driver_bytes": driver["traffic"]["bytes"],
    "chaos_drop_prob": 0.15,
    "chaos_drops": cs["drops"],
    "chaos_retries": ct["retries"],
    "chaos_corruptions_injected": cs["corruptions"],
    "chaos_corruptions_caught": ct["corrupt_frames"],
    "model_hash": inproc["model_hash"],
}
with open("BENCH_transport_smoke.json", "w") as f:
    json.dump(baseline, f, indent=1)
    f.write("\n")
print(f"transport smoke OK: tcp max loss delta {worst}, "
      f"{ct['retries']} retries recovered {cs['drops']} drops, "
      f"{cs['corruptions']}/{cs['corruptions']} corruptions CRC-caught")
EOF
}

# --- live telemetry smoke (stages: all, liveobs) -----------------------------
# Trains the same tiny config twice as 4 OS processes — telemetry plane off
# (timed baseline) and on (Collector + HTTP endpoint + per-party traces) —
# then asserts the plane observed everyone without touching the training.
run_liveobs_stage() {
  local LOUT="$SMOKE_OUT/liveobs"
  mkdir -p "$LOUT"
  local NODE="$BUILD_DIR/tools/gtv-node"
  local TOP="$BUILD_DIR/tools/gtv-top"
  local PROF="$BUILD_DIR/tools/gtv-prof"
  local ARGS="--clients 2 --rounds 3 --rows 96 --batch 32 --d-steps 2 --seed 7"
  local PORT=47681 DPORT=47682 CPORT=47683 MPORT=47684
  local LINGER_MS=4000
  command -v python3 > /dev/null 2>&1 \
    || { echo "FAIL: the liveobs stage needs python3"; exit 1; }

  wait_four() {
    local PID FAILED=0
    for PID in "$@"; do wait "$PID" || FAILED=1; done
    if [ "$FAILED" -ne 0 ]; then
      echo "FAIL: a gtv-node process exited nonzero"
      cat "$LOUT"/*.json
      exit 1
    fi
  }

  # 1. Baseline: telemetry plane off, wall-clock timed.
  local T0 T1 BASE_MS LIVE_MS
  T0=$(date +%s%N)
  "$NODE" --role server $ARGS --port "$PORT" --driver-port "$DPORT" \
    > "$LOUT/base_server.json" 2>&1 &
  local S_PID=$!
  "$NODE" --role client0 $ARGS --port "$PORT" --driver-port "$DPORT" \
    > "$LOUT/base_client0.json" 2>&1 &
  local C0_PID=$!
  "$NODE" --role client1 $ARGS --port "$PORT" --driver-port "$DPORT" \
    > "$LOUT/base_client1.json" 2>&1 &
  local C1_PID=$!
  "$NODE" --role driver $ARGS --port "$PORT" --driver-port "$DPORT" \
    > "$LOUT/base_driver.json" 2>&1 &
  local D_PID=$!
  wait_four "$S_PID" "$C0_PID" "$C1_PID" "$D_PID"
  T1=$(date +%s%N)
  BASE_MS=$(( (T1 - T0) / 1000000 ))

  # 2. Live: Collector in the driver, HTTP endpoint, 50ms snapshots,
  #    per-party traces, offsets export, linger so scrapes are determinate.
  local LIVE="--collector-port $CPORT --snapshot-interval-ms 50"
  T0=$(date +%s%N)
  GTV_TRACE="$LOUT/trace_server.jsonl" "$NODE" --role server $ARGS \
    --port "$PORT" --driver-port "$DPORT" $LIVE > "$LOUT/server.json" 2>&1 &
  S_PID=$!
  GTV_TRACE="$LOUT/trace_client0.jsonl" "$NODE" --role client0 $ARGS \
    --port "$PORT" --driver-port "$DPORT" $LIVE > "$LOUT/client0.json" 2>&1 &
  C0_PID=$!
  GTV_TRACE="$LOUT/trace_client1.jsonl" "$NODE" --role client1 $ARGS \
    --port "$PORT" --driver-port "$DPORT" $LIVE > "$LOUT/client1.json" 2>&1 &
  C1_PID=$!
  GTV_TRACE="$LOUT/trace_driver.jsonl" "$NODE" --role driver $ARGS \
    --port "$PORT" --driver-port "$DPORT" $LIVE --metrics-port "$MPORT" \
    --offsets-out "$LOUT/offsets.json" --linger-ms "$LINGER_MS" \
    > "$LOUT/driver.json" 2>&1 &
  D_PID=$!

  # While the run is up, the scrape endpoint must eventually show every
  # party with a party label…
  python3 - "$MPORT" "$LOUT" <<'EOF'
import json, sys, time, urllib.request
port, out = sys.argv[1], sys.argv[2]
want = {'party="server"', 'party="client0"', 'party="client1"', 'party="driver"'}
deadline = time.time() + 30
metrics = status = ""
while time.time() < deadline:
    try:
        metrics = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=2).read().decode()
        status = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/status", timeout=2).read().decode()
    except OSError:
        time.sleep(0.2)
        continue
    if all(label in metrics for label in want):
        break
    time.sleep(0.2)
missing = {label for label in want if label not in metrics}
assert not missing, f"scrape never showed {missing}"
json.loads(status)  # must be valid JSON for gtv-top
open(f"{out}/metrics.prom", "w").write(metrics)
open(f"{out}/status.json", "w").write(status)
print(f"scrape OK: all {len(want)} parties labeled on /metrics")
EOF

  # …and once every party is on the plane, gtv-top must render a frame
  # that shows all of them live.
  "$TOP" --port "$MPORT" --once > "$LOUT/top.txt" \
    || { echo "FAIL: gtv-top could not reach the collector"; exit 1; }
  local PARTY
  for PARTY in server client0 client1 driver; do
    grep -q "$PARTY" "$LOUT/top.txt" \
      || { echo "FAIL: gtv-top frame is missing $PARTY"; cat "$LOUT/top.txt"; exit 1; }
  done

  wait_four "$S_PID" "$C0_PID" "$C1_PID" "$D_PID"
  T1=$(date +%s%N)
  LIVE_MS=$(( (T1 - T0) / 1000000 - LINGER_MS ))

  # 4. Clock-aligned trace merge: cross-file flow pairs must join the gap
  #    statistics once --offsets is applied (and stay excluded without it).
  "$PROF" --trace "$LOUT/trace_server.jsonl" --trace "$LOUT/trace_client0.jsonl" \
    --trace "$LOUT/trace_client1.jsonl" --trace "$LOUT/trace_driver.jsonl" \
    > "$LOUT/prof_raw.txt"
  grep -q "cross-file pairs excluded" "$LOUT/prof_raw.txt" \
    || { echo "FAIL: gtv-prof did not warn about unaligned cross-file pairs"; exit 1; }
  "$PROF" --trace "$LOUT/trace_server.jsonl" --trace "$LOUT/trace_client0.jsonl" \
    --trace "$LOUT/trace_client1.jsonl" --trace "$LOUT/trace_driver.jsonl" \
    --offsets "$LOUT/offsets.json" --merged-out "$LOUT/merged_aligned.jsonl" \
    > "$LOUT/prof_aligned.txt"
  grep -q "aligned cross-file gap" "$LOUT/prof_aligned.txt" \
    || { echo "FAIL: gtv-prof --offsets produced no aligned gap stats"; \
         cat "$LOUT/prof_aligned.txt"; exit 1; }

  # 5. Assertions + baseline emission.
  python3 - "$LOUT" "$BASE_MS" "$LIVE_MS" <<'EOF'
import json, math, sys
out, base_ms, live_ms = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
base = json.load(open(f"{out}/base_driver.json"))
live = json.load(open(f"{out}/driver.json"))

# The telemetry plane is a pure observer: identical loss trajectory.
assert base["rounds"] == live["rounds"], \
    f"telemetry changed the training: {base['rounds']} vs {live['rounds']}"

# Every party delivered snapshots and a finite measured clock offset.
coll = live["collector"]
assert coll["all_reported"], f"not every party reported: {coll}"
assert coll["parties"] == coll["expected"] == 4, coll
offsets_seen = {}
# (Parties other than the driver finish before the linger window ends, so
# they are legitimately stale by the time this summary prints — liveness
# during the run is what the gtv-top frame asserted above.)
for view in coll["views"]:
    assert view["snapshots"] >= 1, f"{view['party']} delivered no snapshots"
    assert view["clock_valid"], f"{view['party']} has no clock sync"
    assert math.isfinite(view["clock_offset_us"]), view
    assert math.isfinite(view["clock_rtt_us"]) and view["clock_rtt_us"] >= 0, view
    offsets_seen[view["party"]] = view["clock_offset_us"]

# The exported offsets file matches what the driver summarized.
offsets = json.load(open(f"{out}/offsets.json"))
assert offsets["schema_version"] == 1 and offsets["reference"] == "collector"
assert set(offsets["offsets"]) == set(offsets_seen), \
    f"offsets file parties {set(offsets['offsets'])} != {set(offsets_seen)}"

# Scrape artefacts: aggregated exposition + parseable status.
metrics = open(f"{out}/metrics.prom").read()
assert "# TYPE gtv_agg_snapshots_total counter" in metrics
assert 'gtv_agg_up{party="driver"} 1' in metrics
status = json.load(open(f"{out}/status.json"))
assert len(status["parties"]) == 4, status["collector"]

# Publisher-side accounting on each party.
for party in ("server", "client0", "client1"):
    tele = json.load(open(f"{out}/{party}.json"))["telemetry"]
    assert tele["snapshots"] >= 1, f"{party}: {tele}"
    assert tele["clock"]["valid"], f"{party} publisher has no clock: {tele}"

overhead = (live_ms - base_ms) / base_ms if base_ms > 0 else 0.0
baseline = {
    "schema_version": 1,
    "parties": coll["parties"],
    "snapshots_total": sum(v["snapshots"] for v in coll["views"]),
    "snapshot_latency_p50_ms": coll["snapshot_latency_p50_ms"],
    "snapshot_latency_p99_ms": coll["snapshot_latency_p99_ms"],
    "max_abs_clock_offset_us": max(abs(v) for v in offsets_seen.values()),
    "base_wall_ms": base_ms,
    "live_wall_ms": live_ms,
    "collector_overhead_ratio": round(overhead, 4),
}
with open("BENCH_liveobs_smoke.json", "w") as f:
    json.dump(baseline, f, indent=1)
    f.write("\n")
print(f"liveobs smoke OK: {baseline['snapshots_total']} snapshots from "
      f"{coll['parties']} parties, latency p50/p99 "
      f"{coll['snapshot_latency_p50_ms']}/{coll['snapshot_latency_p99_ms']} ms, "
      f"overhead {overhead:+.1%} ({base_ms}ms -> {live_ms}ms)")
EOF

  # 6. What moved vs the committed baselines (informational).
  python3 scripts/bench_compare.py || true
}

# --- dense-kernel smoke (stages: all, kernels) -------------------------------
# Runs bench/kernels (tiled gemm vs the compiled-in seed kernel) and gates
# on the speedup + sanity of every reported number.
run_kernels_stage() {
  local KOUT="$SMOKE_OUT/kernels.json"
  command -v python3 > /dev/null 2>&1 \
    || { echo "FAIL: the kernels stage needs python3 to validate the bench"; exit 1; }
  "$BUILD_DIR/bench/kernels" > "$KOUT"

  python3 - "$KOUT" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
assert bench["schema_version"] == 1, bench
assert bench["isa"] in ("avx2", "portable"), bench["isa"]
assert bench["threads"] >= 1

for row in bench["matmul"]:
    for field in ("seed_ms", "tiled_ms", "seed_gflops", "tiled_gflops", "speedup"):
        assert row[field] > 0, f"n={row['n']}: nonpositive {field}: {row}"
for field in ("nn_ms", "nt_ms", "tn_ms"):
    assert bench["variants"][field] > 0, bench["variants"]
assert 0 < bench["linear"]["fwd_ms"] < bench["linear"]["fwd_bwd_ms"]
assert bench["train_round_ms"] > 0

# The acceptance gate: >=2.5x over the seed kernel at 512^3, same machine,
# same threading (the seed reference runs through the same thread pool).
assert bench["speedup_512"] >= 2.5, \
    f"tiled kernel only {bench['speedup_512']}x over seed at 512^3"

with open("BENCH_kernels.json", "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
n512 = next(r for r in bench["matmul"] if r["n"] == 512)
print(f"kernels OK ({bench['isa']}, {bench['threads']} threads): "
      f"512^3 {n512['tiled_ms']}ms ({n512['tiled_gflops']} GFLOP/s), "
      f"{bench['speedup_512']}x over seed")
EOF
}

# --- crash-forensics smoke (stages: all, blackbox) ---------------------------
# Exercises the flight recorder end to end: loss parity + overhead with the
# recorder on, the raw append bench, and the headline scenario — SIGKILL a
# client mid-round and reconstruct the death from the surviving rings.
run_blackbox_stage() {
  local BOUT="$SMOKE_OUT/blackbox"
  mkdir -p "$BOUT"
  local NODE="$BUILD_DIR/tools/gtv-node"
  local PM="$BUILD_DIR/tools/gtv-postmortem"
  local ARGS="--clients 2 --rounds 8 --rows 96 --batch 32 --d-steps 2 --seed 7"
  local PORT=47701 DPORT=47702 CPORT=47703
  command -v python3 > /dev/null 2>&1 \
    || { echo "FAIL: the blackbox stage needs python3"; exit 1; }

  # 1. Pure-observer check: recorder on vs off, interleaved pairs measured
  #    in child CPU time (user+sys via wait4 rusage). Wall clock on a busy
  #    CI box swings +-5% between back-to-back identical runs — far above
  #    the <2% gate — while CPU time sees the recorder's actual work
  #    (~0.2us per append plus ring setup) without the scheduler noise.
  python3 - "$NODE" "$BOUT" $ARGS <<'EOF'
import json, os, subprocess, sys
node, out = sys.argv[1], sys.argv[2]
args = sys.argv[3:]

def run(extra, path):
    with open(path, "w") as f:
        proc = subprocess.Popen([node, "--role", "inproc", *args, *extra],
                                stdout=f)
    _, status, ru = os.wait4(proc.pid, 0)
    assert status == 0, f"gtv-node inproc exited with status {status}"
    return ru.ru_utime + ru.ru_stime

base = bb = float("inf")
os.makedirs(f"{out}/inproc_bb", exist_ok=True)
for rep in range(20):
    base = min(base, run([], f"{out}/inproc_off.json"))
    bb = min(bb, run(["--blackbox-dir", f"{out}/inproc_bb"],
                     f"{out}/inproc_on.json"))
    if rep >= 4 and bb < base * 1.02:
        break
with open(f"{out}/overhead.json", "w") as f:
    json.dump({"base_cpu_s": round(base, 4), "blackbox_cpu_s": round(bb, 4),
               "pairs": rep + 1}, f)
EOF

  # 2. Raw append bench: hammer the ring through many wraps; every retained
  #    frame must still read back clean.
  "$PM" --bench --bench-path "$BOUT/bench.bbox" --bench-records 200000 \
    > "$BOUT/bench.json" \
    || { echo "FAIL: gtv-postmortem --bench found an invalid ring"; \
         cat "$BOUT/bench.json"; exit 1; }

  # 3. The headline scenario: 4 OS processes with recorders on, SIGKILL
  #    client0 once its own ring shows a completed round, and let the
  #    survivors die of the broken links (short timeouts keep that quick).
  # (--rounds last wins: the kill run gets a long horizon because it is never
  # meant to finish — the poll below needs the victim alive mid-training.)
  local KARGS="$ARGS --rounds 200 --port $PORT --driver-port $DPORT --collector-port $CPORT"
  KARGS="$KARGS --blackbox-dir $BOUT --recv-timeout-ms 500 --max-attempts 4"
  "$NODE" --role server $KARGS > "$BOUT/server.json" 2>&1 &
  local S_PID=$!
  "$NODE" --role client0 $KARGS > "$BOUT/client0.json" 2>&1 &
  local C0_PID=$!
  "$NODE" --role client1 $KARGS > "$BOUT/client1.json" 2>&1 &
  local C1_PID=$!
  "$NODE" --role driver $KARGS --offsets-out "$BOUT/offsets.json" \
    > "$BOUT/driver.json" 2>&1 &
  local D_PID=$!

  # Poll the victim's own ring (reading a live mmap ring is safe by design)
  # until it has finished at least one round, then kill it dead.
  # (gtv-postmortem exits 3 here by design — a lone ring with no shutdown
  # record reads as a silent death — so park its status away from pipefail.)
  local TRY ROUND=0
  for TRY in $(seq 1 400); do
    "$PM" --json "$BOUT/client0.bbox" > "$BOUT/victim_poll.json" 2> /dev/null || true
    ROUND=$(python3 -c 'import json,sys; print(json.load(sys.stdin)["parties"][0]["last_round"])' \
      < "$BOUT/victim_poll.json" 2> /dev/null || echo 0)
    [ "${ROUND:-0}" -ge 1 ] 2> /dev/null && break
    kill -0 "$C0_PID" 2> /dev/null \
      || { echo "FAIL: client0 exited before it could be killed"; \
           cat "$BOUT/client0.json"; exit 1; }
    sleep 0.05
  done
  [ "${ROUND:-0}" -ge 1 ] \
    || { echo "FAIL: client0 never reached round 1 within the poll window"; exit 1; }
  kill -9 "$C0_PID"
  # The survivors are expected to exit nonzero once their links die.
  wait "$S_PID" 2> /dev/null || true
  wait "$C0_PID" 2> /dev/null || true
  wait "$C1_PID" 2> /dev/null || true
  wait "$D_PID" 2> /dev/null || true

  # 4. Forensics: every surviving ring must validate, and the postmortem
  #    must name the killed party, its last round, and transport events.
  local RINGS="$BOUT/server.bbox $BOUT/client0.bbox $BOUT/client1.bbox $BOUT/driver.bbox"
  local PM_OFFSETS=""
  [ -s "$BOUT/offsets.json" ] && PM_OFFSETS="--offsets $BOUT/offsets.json"
  local PM_RC=0
  "$PM" $PM_OFFSETS --json $RINGS > "$BOUT/postmortem.json" || PM_RC=$?
  [ "$PM_RC" -eq 3 ] \
    || { echo "FAIL: gtv-postmortem exit $PM_RC (expected 3: a party died)"; \
         cat "$BOUT/postmortem.json"; exit 1; }
  "$PM" $PM_OFFSETS $RINGS > "$BOUT/postmortem.txt" || true
  grep -q "first to die: client0" "$BOUT/postmortem.txt" \
    || { echo "FAIL: human report did not blame client0"; \
         cat "$BOUT/postmortem.txt"; exit 1; }

  python3 - "$BOUT" <<'EOF'
import json, sys
out = sys.argv[1]

# Recorder on vs off: identical training, bounded overhead.
off = json.load(open(f"{out}/inproc_off.json"))
on = json.load(open(f"{out}/inproc_on.json"))
assert off["rounds"] == on["rounds"], "recorder changed the loss trajectory"
assert off["model_hash"] == on["model_hash"], "recorder changed the model"
timing = json.load(open(f"{out}/overhead.json"))
base_s, bb_s = timing["base_cpu_s"], timing["blackbox_cpu_s"]
overhead = (bb_s - base_s) / base_s if base_s > 0 else 0.0
assert overhead < 0.02, \
    f"recorder overhead {overhead:.1%} >= 2% CPU ({base_s}s -> {bb_s}s)"

bench = json.load(open(f"{out}/bench.json"))
assert bench["valid"] and bench["crc_rejects"] == 0, bench
assert bench["retained"] > 0 and bench["records_per_sec"] > 0, bench

# The SIGKILL postmortem: all four rings valid, victim identified.
pm = json.load(open(f"{out}/postmortem.json"))
parties = {p["party"]: p for p in pm["parties"]}
assert set(parties) == {"server", "client0", "client1", "driver"}, set(parties)
for name, p in parties.items():
    assert p["valid"], f"{name} ring invalid: {p['problems']}"
    assert p["crc_rejects"] == 0, f"{name} ring has CRC rejects: {p}"
    assert p["records"] >= 1, f"{name} ring is empty"
victim = parties["client0"]
assert pm["first_dead"] == "client0", f"blamed {pm['first_dead']}, not client0"
assert victim["died_silently"], "client0 not flagged as silent death"
assert not victim["clean_shutdown"] and not victim["crashed"], victim
assert pm["first_dead_last_round"] >= 1, pm
assert pm["first_dead_last_phase"] in \
    ("setup", "critic", "generator", "shuffle"), pm
# >=1 transport event before the death, and the survivors saw it die.
assert sum(victim["net_events"].values()) >= 1, victim["net_events"]
assert any(parties[s]["net_events"].get("disconnect", 0) >= 1
           for s in ("server", "client1", "driver")), \
    "no survivor recorded a disconnect"
# Survivors died of the broken links, and said so on the way out.
for name in ("server", "client1", "driver"):
    p = parties[name]
    assert not p["died_silently"], f"{name} left no shutdown record"

baseline = {
    "schema_version": 1,
    "records_per_sec": bench["records_per_sec"],
    "write_p50_us": bench["write_p50_us"],
    "write_p99_us": bench["write_p99_us"],
    "bench_records": bench["records"],
    "bench_retained": bench["retained"],
    "base_cpu_s": base_s,
    "blackbox_cpu_s": bb_s,
    "overhead_ratio": round(overhead, 4),
    "killed_party_last_round": pm["first_dead_last_round"],
    "ring_records_total": sum(p["records"] for p in parties.values()),
}
with open("BENCH_blackbox_smoke.json", "w") as f:
    json.dump(baseline, f, indent=1)
    f.write("\n")
print(f"blackbox smoke OK: {bench['records_per_sec']:.0f} rec/s "
      f"(p99 {bench['write_p99_us']}us), overhead {overhead:+.1%} CPU "
      f"({base_s}s -> {bb_s}s over {timing['pairs']} pairs), "
      f"SIGKILL forensics blamed client0 at round "
      f"{pm['first_dead_last_round']} ({pm['first_dead_last_phase']})")
EOF

  # 5. What moved vs the committed baseline (informational).
  python3 scripts/bench_compare.py BENCH_blackbox_smoke.json || true
}

# --- sampling-profiler smoke (stages: all, sampler) --------------------------
# Arms the SIGPROF/SIGUSR2 statistical sampler end to end: parity + CPU
# overhead with sampling on, per-party folded profiles from a real 4-process
# run, and gtv-flame's merge/diff/symbolization gates over them.
run_sampler_stage() {
  local POUT="$SMOKE_OUT/sampler"
  mkdir -p "$POUT"
  local NODE="$BUILD_DIR/tools/gtv-node"
  local FLAME="$BUILD_DIR/tools/gtv-flame"
  # Big enough (~0.7s CPU) that the sampler's one-time costs — ELF symtab
  # parse, exit symbolization, folded write — amortize under the 3% gate.
  local ARGS="--clients 2 --rounds 10 --rows 384 --batch 64 --d-steps 2 --seed 7"
  local PORT=47721 DPORT=47722
  command -v python3 > /dev/null 2>&1 \
    || { echo "FAIL: the sampler stage needs python3"; exit 1; }

  # 1. Pure-observer check: sampler on vs off, interleaved pairs measured in
  #    child CPU time (user+sys via wait4 rusage) — same method and reasons
  #    as the blackbox stage, with the gate at the sampler's 3% budget.
  python3 - "$NODE" "$POUT" $ARGS <<'EOF'
import json, os, subprocess, sys
node, out = sys.argv[1], sys.argv[2]
args = sys.argv[3:]

def run(extra, path):
    with open(path, "w") as f:
        proc = subprocess.Popen([node, "--role", "inproc", *args, *extra],
                                stdout=f)
    _, status, ru = os.wait4(proc.pid, 0)
    assert status == 0, f"gtv-node inproc exited with status {status}"
    return ru.ru_utime + ru.ru_stime

base = on = float("inf")
for rep in range(20):
    base = min(base, run([], f"{out}/inproc_off.json"))
    on = min(on, run(["--sample-hz", "97", "--profile-dir", out],
                     f"{out}/inproc_on.json"))
    if rep >= 4 and on < base * 1.03:
        break
with open(f"{out}/overhead.json", "w") as f:
    json.dump({"base_cpu_s": round(base, 4), "sampler_cpu_s": round(on, 4),
               "pairs": rep + 1}, f)
EOF

  # 2. The 4-process run: every role samples at 97 Hz and writes its own
  #    <role>.folded on the way out.
  local SARGS="$ARGS --port $PORT --driver-port $DPORT"
  SARGS="$SARGS --sample-hz 97 --profile-dir $POUT"
  local T0 T1
  T0=$(date +%s%N)
  "$NODE" --role server $SARGS > "$POUT/server.json" 2>&1 &
  local S_PID=$!
  "$NODE" --role client0 $SARGS > "$POUT/client0.json" 2>&1 &
  local C0_PID=$!
  "$NODE" --role client1 $SARGS > "$POUT/client1.json" 2>&1 &
  local C1_PID=$!
  "$NODE" --role driver $SARGS > "$POUT/driver.json" 2>&1 &
  local D_PID=$!
  local PID FAILED=0
  for PID in "$S_PID" "$C0_PID" "$C1_PID" "$D_PID"; do
    wait "$PID" || FAILED=1
  done
  if [ "$FAILED" -ne 0 ]; then
    echo "FAIL: a sampled gtv-node process exited nonzero"
    cat "$POUT"/*.json
    exit 1
  fi
  T1=$(date +%s%N)
  local WALL_MS=$(( (T1 - T0) / 1000000 ))

  local ROLE
  for ROLE in server client0 client1 driver; do
    [ -s "$POUT/$ROLE.folded" ] \
      || { echo "FAIL: $ROLE wrote no folded profile"; exit 1; }
  done

  # 3. gtv-flame over the four profiles: merged folded text, summary JSON,
  #    the SVG, and a self-diff that must cancel to zero stacks.
  local FOLDED="$POUT/server.folded $POUT/client0.folded $POUT/client1.folded $POUT/driver.folded"
  "$FLAME" $FOLDED --out "$POUT/merged.folded" --svg "$POUT/flame.svg" \
    || { echo "FAIL: gtv-flame could not merge the folded profiles"; exit 1; }
  "$FLAME" $FOLDED --json > "$POUT/flame.json" \
    || { echo "FAIL: gtv-flame --json failed"; exit 1; }
  "$FLAME" $FOLDED --base "$POUT/server.folded,$POUT/client0.folded,$POUT/client1.folded,$POUT/driver.folded" \
    --out - > "$POUT/selfdiff.folded" \
    || { echo "FAIL: gtv-flame --base failed"; exit 1; }
  grep -q "<svg" "$POUT/flame.svg" \
    || { echo "FAIL: flame.svg is not an SVG"; exit 1; }

  # 4. Assertions + baseline emission.
  python3 - "$POUT" "$WALL_MS" <<'EOF'
import json, sys
out, wall_ms = sys.argv[1], int(sys.argv[2])

# Sampling is a pure observer: bit-identical losses and model.
off = json.load(open(f"{out}/inproc_off.json"))
on = json.load(open(f"{out}/inproc_on.json"))
assert off["rounds"] == on["rounds"], "sampler changed the loss trajectory"
assert off["model_hash"] == on["model_hash"], "sampler changed the model"
assert on["sampler"]["cpu_samples"] > 0, f"sampler-on run took no samples: {on['sampler']}"

# CPU overhead within the 3% budget.
timing = json.load(open(f"{out}/overhead.json"))
base_s, on_s = timing["base_cpu_s"], timing["sampler_cpu_s"]
overhead = (on_s - base_s) / base_s if base_s > 0 else 0.0
assert overhead < 0.03, \
    f"sampler overhead {overhead:.1%} >= 3% CPU ({base_s}s -> {on_s}s)"

# The TCP run must match the in-proc trajectory (same float tolerance as
# the transport stage) — sampling must not perturb the distributed path.
driver = json.load(open(f"{out}/driver.json"))
for r, (d, i) in enumerate(zip(driver["rounds"], off["rounds"])):
    for field in ("d_loss", "g_loss", "gp", "wasserstein"):
        assert abs(d[field] - i[field]) <= 1e-5, \
            f"sampled tcp round {r} {field}: {d[field]} vs {i[field]}"

# Merged-profile gates: volume, symbolization, both sample states, the hot
# kernel on-CPU and a blocked-in-recv stack off-CPU, all four parties.
flame = json.load(open(f"{out}/flame.json"))
assert flame["total_samples"] >= 100, f"only {flame['total_samples']} samples"
assert flame["resolved_frac"] >= 0.80, \
    f"only {flame['resolved_frac']:.1%} of frames symbolized"
assert set(flame["parties"]) == {"server", "client0", "client1", "driver"}, \
    flame["parties"]
assert flame["cpu_samples"] > 0 and flame["offcpu_samples"] > 0, flame

gemm_cpu = blocked_recv = False
for line in open(f"{out}/merged.folded"):
    if line.startswith("#"):
        continue
    if ";cpu;" in line and "gemm" in line:
        gemm_cpu = True
    if ";offcpu;" in line and any(w in line for w in ("read", "recv", "poll", "wait")):
        blocked_recv = True
assert gemm_cpu, "no on-CPU gemm frame in the merged profile"
assert blocked_recv, "no off-CPU blocked-in-recv/poll/wait stack"

# Diffing a profile against itself cancels every stack.
for line in open(f"{out}/selfdiff.folded"):
    assert line.startswith("#"), f"self-diff left a residual stack: {line}"

samples_per_sec = flame["total_samples"] / (wall_ms / 1000.0) if wall_ms else 0.0
baseline = {
    "schema_version": 1,
    "total_samples": flame["total_samples"],
    "cpu_samples": flame["cpu_samples"],
    "offcpu_samples": flame["offcpu_samples"],
    "samples_per_sec": round(samples_per_sec, 1),
    "resolved_frac": round(flame["resolved_frac"], 4),
    "unique_stacks": flame["unique_stacks"],
    "dropped": flame["dropped"],
    "base_cpu_s": base_s,
    "sampler_cpu_s": on_s,
    "overhead_ratio": round(overhead, 4),
}
with open("BENCH_sampler_smoke.json", "w") as f:
    json.dump(baseline, f, indent=1)
    f.write("\n")
print(f"sampler smoke OK: {flame['total_samples']} samples "
      f"({flame['cpu_samples']} cpu / {flame['offcpu_samples']} offcpu, "
      f"{samples_per_sec:.0f}/s), {flame['resolved_frac']:.1%} symbolized, "
      f"overhead {overhead:+.1%} CPU over {timing['pairs']} pairs")
EOF

  # 5. What moved vs the committed baseline (informational).
  python3 scripts/bench_compare.py BENCH_sampler_smoke.json || true
}

# --- serving smoke (stages: all, serve) --------------------------------------
# Trains a tiny checkpoint, serves it with gtv-serve over real TCP, and
# asserts the whole serving contract: model identity end to end, seeded
# determinism across fresh connections, live /metrics counters, a graceful
# SIGTERM drain with a clean black-box record, and the 1/8/64-client
# batching bench.
run_serve_stage() {
  local VOUT="$SMOKE_OUT/serve"
  mkdir -p "$VOUT"
  local NODE="$BUILD_DIR/tools/gtv-node"
  local SERVE="$BUILD_DIR/tools/gtv-serve"
  local PM="$BUILD_DIR/tools/gtv-postmortem"
  local ARGS="--clients 2 --rounds 2 --rows 96 --batch 32 --d-steps 2 --seed 7"
  local PORT=47741 MPORT=47742
  command -v python3 > /dev/null 2>&1 \
    || { echo "FAIL: the serve stage needs python3"; exit 1; }

  # 1. Train the checkpoint the daemon will serve.
  "$NODE" --role inproc $ARGS --checkpoint-out "$VOUT/model.ckpt" \
    > "$VOUT/train.json"
  [ -s "$VOUT/model.ckpt" ] \
    || { echo "FAIL: gtv-node wrote no checkpoint container"; exit 1; }

  # 2. Daemon up: /metrics endpoint + flight recorder armed.
  "$SERVE" --checkpoint "$VOUT/model.ckpt" --port "$PORT" \
    --metrics-port "$MPORT" --blackbox-dir "$VOUT" \
    > "$VOUT/daemon.json" 2> "$VOUT/daemon.log" &
  local SERVE_PID=$!

  # 3. Seeded determinism across fresh connections: two clients, same
  #    seed, must hash byte-identical. (The first client retries while
  #    the daemon finishes binding.)
  local TRY OK=0
  for TRY in $(seq 1 100); do
    if "$SERVE" --connect "127.0.0.1:$PORT" --rows 200 --seed 42 --name c1 \
      > "$VOUT/c1.json" 2> /dev/null; then
      OK=1
      break
    fi
    kill -0 "$SERVE_PID" 2> /dev/null \
      || { echo "FAIL: gtv-serve died on startup"; cat "$VOUT/daemon.log"; exit 1; }
    sleep 0.1
  done
  [ "$OK" -eq 1 ] \
    || { echo "FAIL: could not reach gtv-serve"; cat "$VOUT/daemon.log"; exit 1; }
  "$SERVE" --connect "127.0.0.1:$PORT" --rows 200 --seed 42 --name c2 \
    > "$VOUT/c2.json"
  # A CSV pull exercises the header + cell path end to end.
  "$SERVE" --connect "127.0.0.1:$PORT" --rows 5 --seed 7 --name c3 --csv \
    > "$VOUT/sample.csv"

  # 4. The scrape endpoint must show the serving party live with its
  #    request counters.
  python3 - "$MPORT" "$VOUT" <<'EOF'
import sys, time, urllib.request
port, out = sys.argv[1], sys.argv[2]
deadline = time.time() + 30
metrics = ""
while time.time() < deadline:
    try:
        metrics = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=2).read().decode()
    except OSError:
        time.sleep(0.2)
        continue
    if 'party="serve"' in metrics and "serve_requests" in metrics:
        break
    time.sleep(0.2)
assert 'party="serve"' in metrics, "scrape never showed the serve party"
assert "serve_requests" in metrics, "scrape has no serve_requests counter"
open(f"{out}/metrics.prom", "w").write(metrics)
print("scrape OK: serve party live on /metrics with request counters")
EOF

  # 5. Graceful drain: SIGTERM, the daemon finishes admitted work and
  #    prints its summary JSON on the way out.
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" \
    || { echo "FAIL: gtv-serve exited nonzero on drain"; cat "$VOUT/daemon.log"; exit 1; }

  # 6. The black box must read back a clean exit.
  "$PM" "$VOUT/serve.bbox" > "$VOUT/postmortem.txt" \
    || { echo "FAIL: gtv-postmortem rejected the serve ring"; \
         cat "$VOUT/postmortem.txt"; exit 1; }
  grep -q "all parties shut down cleanly" "$VOUT/postmortem.txt" \
    || { echo "FAIL: postmortem did not see a clean serve shutdown"; \
         cat "$VOUT/postmortem.txt"; exit 1; }

  # 7. The batching bench: 1/8/64 concurrent clients against a fresh
  #    daemon; the binary exits nonzero if its determinism probe fails.
  "$BUILD_DIR/bench/serve" > "$VOUT/bench.json" \
    || { echo "FAIL: bench/serve determinism probe failed"; \
         cat "$VOUT/bench.json"; exit 1; }

  # 8. Assertions + baseline emission.
  python3 - "$VOUT" <<'EOF'
import json, sys
out = sys.argv[1]

train = json.load(open(f"{out}/train.json"))
daemon = json.load(open(f"{out}/daemon.json"))
c1 = json.load(open(f"{out}/c1.json"))
c2 = json.load(open(f"{out}/c2.json"))

# Model identity end to end: trainer -> container -> daemon -> client hello.
assert train["model_hash"] == daemon["model_hash"] == c1["model_hash"], \
    (train["model_hash"], daemon["model_hash"], c1["model_hash"])

# Seeded determinism across fresh connections.
assert c1["rows"] == c2["rows"] == 200, (c1["rows"], c2["rows"])
assert c1["cells_hash"] == c2["cells_hash"], \
    f"same seed, different cells: {c1['cells_hash']} vs {c2['cells_hash']}"

# The daemon accounted for every request and saw no errors.
assert daemon["requests"] >= 3, daemon
assert daemon["rows"] >= 405, daemon
assert daemon["errors"] == 0, daemon

# CSV pull: every column labeled name:type, every row fully populated.
header, *rows = open(f"{out}/sample.csv").read().splitlines()
cols = header.split(",")
assert all(":" in c for c in cols), f"unlabeled CSV column: {header}"
assert len(cols) == c1["columns"], (len(cols), c1["columns"])
assert len(rows) == 5 and all(len(r.split(",")) == len(cols) for r in rows), \
    f"CSV shape wrong: {len(rows)} rows"

# The bench gate: deterministic, and 64 concurrent clients must beat one
# client by >=3x through batching alone (same daemon, same linger).
bench = json.load(open(f"{out}/bench.json"))
assert bench["schema_version"] == 1 and bench["deterministic"] is True, bench
for level in bench["levels"]:
    assert level["rows_per_sec"] > 0 and level["p99_ms"] > 0, level
    assert level["avg_batch_rows"] > 0, level
assert bench["speedup_64_vs_1"] >= 3.0, \
    f"batching only bought {bench['speedup_64_vs_1']}x at 64 clients"

# Persist the bench output verbatim as the committed baseline.
open("BENCH_serve.json", "w").write(open(f"{out}/bench.json").read())
levels = {l["clients"]: l for l in bench["levels"]}
print(f"serve smoke OK: model {daemon['model_hash']} served "
      f"{daemon['rows']} rows / {daemon['requests']} requests with 0 errors, "
      f"deterministic across connections, "
      f"{levels[1]['rows_per_sec']:.0f} -> {levels[64]['rows_per_sec']:.0f} rows/s "
      f"({bench['speedup_64_vs_1']}x at 64 clients)")
EOF

  # 9. What moved vs the committed baseline (informational).
  python3 scripts/bench_compare.py BENCH_serve.json || true
}

# --- elastic-federation smoke (stages: all, resume) --------------------------
# Exercises coordinated train checkpoints end to end: checkpointing as a
# pure observer, a cold --resume from the GTVT container, the headline
# crash — SIGKILL a client mid-training and readmit its --rejoin relaunch
# from the last checkpoint — and DP-noise parity between the in-proc
# trainer and the TCP deployment.
run_resume_stage() {
  local EOUT="$SMOKE_OUT/resume"
  mkdir -p "$EOUT"
  local NODE="$BUILD_DIR/tools/gtv-node"
  local ARGS="--clients 2 --rows 96 --batch 32 --d-steps 2 --seed 7"
  command -v python3 > /dev/null 2>&1 \
    || { echo "FAIL: the resume stage needs python3"; exit 1; }

  wait_leg() {
    local TAG="$1"
    shift
    local PID FAILED=0
    for PID in "$@"; do wait "$PID" || FAILED=1; done
    if [ "$FAILED" -ne 0 ]; then
      echo "FAIL: a gtv-node process exited nonzero (leg $TAG)"
      cat "$EOUT/$TAG"*.json
      exit 1
    fi
  }

  # Four OS processes with shared flags; the driver additionally writes
  # <tag>.ckpt so legs can compare final model hashes bit-for-bit.
  run4() {
    local TAG="$1" PORT="$2" DPORT="$3"
    shift 3
    local SH="$ARGS $* --port $PORT --driver-port $DPORT"
    "$NODE" --role server $SH > "$EOUT/${TAG}_server.json" 2>&1 &
    local S_PID=$!
    "$NODE" --role client0 $SH > "$EOUT/${TAG}_client0.json" 2>&1 &
    local C0_PID=$!
    "$NODE" --role client1 $SH > "$EOUT/${TAG}_client1.json" 2>&1 &
    local C1_PID=$!
    "$NODE" --role driver $SH --checkpoint-out "$EOUT/${TAG}.ckpt" \
      > "$EOUT/${TAG}_driver.json" 2>&1 &
    local D_PID=$!
    wait_leg "$TAG" "$S_PID" "$C0_PID" "$C1_PID" "$D_PID"
  }

  # 1. In-proc references for both horizons.
  "$NODE" --role inproc $ARGS --rounds 8 > "$EOUT/ref8.json"
  "$NODE" --role inproc $ARGS --rounds 40 > "$EOUT/ref40.json"

  # 2. Checkpoint parity: an elastic 8-round run that rewrites the GTVT
  #    container every 3 rounds must reproduce the plain trajectory. The
  #    surviving file is the round-6 snapshot ((r+1) % 3 lands the
  #    barrier after rounds 3 and 6, never 8).
  run4 base8 47761 47762 --rounds 8 --train-ckpt "$EOUT/train.gtvt" --ckpt-every 3
  [ -s "$EOUT/train.gtvt" ] \
    || { echo "FAIL: the elastic run left no GTVT train checkpoint"; exit 1; }

  # 3. Cold resume: fresh processes, --resume from the round-6 container,
  #    train rounds 7..8 only. Same full history, same final model hash.
  run4 resumed 47763 47764 --rounds 8 --resume "$EOUT/train.gtvt"

  # 4. Uninterrupted 40-round TCP baseline for the crash leg's gates.
  run4 base40 47765 47766 --rounds 40

  # 5. The headline crash. The straggler latency stretches the run so the
  #    SIGKILL lands mid-training (an unthrottled 40-round run is over in
  #    ~2s); checkpoints land every 2 rounds; client1 dies once the first
  #    GTVT snapshot is on disk and relaunches with --rejoin. The driver
  #    must park the round, readmit the newcomer, and finish all 40
  #    rounds with recoveries >= 1.
  local KARGS="$ARGS --rounds 40 --straggle-us 10000 --port 47767 --driver-port 47768"
  KARGS="$KARGS --train-ckpt $EOUT/crash.gtvt --ckpt-every 2 --rejoin-wait-ms 30000"
  "$NODE" --role server $KARGS > "$EOUT/crash_server.json" 2>&1 &
  local S_PID=$!
  "$NODE" --role client0 $KARGS > "$EOUT/crash_client0.json" 2>&1 &
  local C0_PID=$!
  "$NODE" --role client1 $KARGS > "$EOUT/crash_client1.json" 2>&1 &
  local C1_PID=$!
  "$NODE" --role driver $KARGS --checkpoint-out "$EOUT/crash.ckpt" \
    > "$EOUT/crash_driver.json" 2>&1 &
  local D_PID=$!

  local TRY
  for TRY in $(seq 1 400); do
    [ -s "$EOUT/crash.gtvt" ] && break
    kill -0 "$C1_PID" 2> /dev/null \
      || { echo "FAIL: client1 exited before it could be killed"; \
           cat "$EOUT/crash_client1.json"; exit 1; }
    sleep 0.05
  done
  [ -s "$EOUT/crash.gtvt" ] \
    || { echo "FAIL: no GTVT snapshot appeared within the poll window"; exit 1; }
  sleep 0.5
  kill -0 "$C1_PID" 2> /dev/null \
    || { echo "FAIL: client1 finished before the SIGKILL"; \
         cat "$EOUT/crash_client1.json"; exit 1; }
  kill -9 "$C1_PID"
  wait "$C1_PID" 2> /dev/null || true
  sleep 0.3
  "$NODE" --role client1 $KARGS --rejoin > "$EOUT/crash_rejoin.json" 2>&1 &
  local R_PID=$!
  wait_leg crash "$S_PID" "$C0_PID" "$R_PID" "$D_PID"

  # 6. DP parity over TCP: same noise std, per-party noise streams, so
  #    the deployment must match the in-proc DP trainer.
  "$NODE" --role inproc $ARGS --rounds 8 --dp-noise 0.1 > "$EOUT/dp_inproc.json"
  run4 dp 47769 47770 --rounds 8 --dp-noise 0.1

  # 7. Assertions + baseline emission.
  python3 - "$EOUT" <<'EOF'
import json, sys
out = sys.argv[1]
load = lambda name: json.load(open(f"{out}/{name}.json"))
ref8, ref40 = load("ref8"), load("ref40")
base8, resumed = load("base8_driver"), load("resumed_driver")
base40, crash = load("base40_driver"), load("crash_driver")
dp_ref, dp = load("dp_inproc"), load("dp_driver")

def close(a, b, what, tol=1e-5):
    assert len(a) == len(b), f"{what}: round count {len(a)} vs {len(b)}"
    worst = 0.0
    for r, (x, y) in enumerate(zip(a, b)):
        for field in ("d_loss", "g_loss", "gp", "wasserstein"):
            delta = abs(x[field] - y[field])
            worst = max(worst, delta)
            assert delta <= tol, \
                f"{what} round {r} {field}: {x[field]} vs {y[field]}"
    return worst

# Checkpointing is a pure observer: the elastic TCP run matches the
# in-proc reference to the transport stage's float tolerance.
tcp_delta = close(base8["rounds"], ref8["rounds"], "base8 vs inproc")

# Cold resume: restored from round 6, replayed history plus two freshly
# trained rounds, bit-identical to the uninterrupted elastic run.
assert resumed["resumed_from"] == 6, \
    f"resumed from round {resumed['resumed_from']}, expected 6"
assert resumed["recoveries"] == 0, resumed["recoveries"]
close(resumed["rounds"], base8["rounds"], "resumed vs base8", tol=0.0)
assert resumed["model_hash"] == base8["model_hash"], \
    f"resume changed the model: {resumed['model_hash']} vs {base8['model_hash']}"

# Crash + rejoin: the driver recovered at least once and the straggled,
# interrupted run still lands on the uninterrupted trajectory and model.
assert crash["recoveries"] >= 1, \
    f"driver saw no recovery despite the SIGKILL: {crash['recoveries']}"
close(crash["rounds"], base40["rounds"], "crash vs base40", tol=0.0)
assert crash["model_hash"] == base40["model_hash"], \
    f"rejoin changed the model: {crash['model_hash']} vs {base40['model_hash']}"
close(base40["rounds"], ref40["rounds"], "base40 vs inproc")

# The lifted DP-over-TCP restriction: per-party noise streams make the
# distributed run reproduce the in-proc DP trainer.
dp_delta = close(dp["rounds"], dp_ref["rounds"], "dp tcp vs dp inproc")

baseline = {
    "schema_version": 1,
    "rounds": len(base8["rounds"]),
    "ckpt_every": 3,
    "resumed_from": resumed["resumed_from"],
    "tcp_vs_inproc_max_loss_delta": tcp_delta,
    "crash_rounds": len(crash["rounds"]),
    "crash_recoveries": crash["recoveries"],
    "straggle_us": 10000,
    "dp_noise_std": 0.1,
    "dp_max_loss_delta": dp_delta,
    "model_hash_8": base8["model_hash"],
    "model_hash_40": base40["model_hash"],
}
with open("BENCH_resume_smoke.json", "w") as f:
    json.dump(baseline, f, indent=1)
    f.write("\n")
print(f"resume smoke OK: cold resume from round {resumed['resumed_from']} "
      f"bit-exact, SIGKILL'd client rejoined ({crash['recoveries']} "
      f"recoveries) and finished {len(crash['rounds'])} rounds on hash "
      f"{crash['model_hash']}, dp-over-tcp max delta {dp_delta}")
EOF

  # 8. What moved vs the committed baseline (informational).
  python3 scripts/bench_compare.py BENCH_resume_smoke.json || true
}

if [ "$STAGE" = "all" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

  # --- observability smoke: tiny bench run with tracing on -----------------
  TRACE="$SMOKE_OUT/trace.jsonl"

  GTV_TRACE="$TRACE" GTV_PROFILE=1 GTV_BENCH_ROWS=80 GTV_BENCH_ROUNDS=3 \
    GTV_BENCH_DATASETS=loan GTV_BENCH_OUT="$SMOKE_OUT" "$BUILD_DIR/bench/comm_overhead"

  [ -s "$TRACE" ] || { echo "FAIL: $TRACE is empty"; exit 1; }
  ls "$SMOKE_OUT"/*.telemetry.json > /dev/null 2>&1 \
    || { echo "FAIL: no telemetry.json next to the bench CSV"; exit 1; }
  ls "$SMOKE_OUT"/*.profile.json > /dev/null 2>&1 \
    || { echo "FAIL: no profile.json despite GTV_PROFILE=1"; exit 1; }
  grep -q '"schema_version"' "$SMOKE_OUT"/*.telemetry.json \
    || { echo "FAIL: telemetry.json missing schema_version"; exit 1; }
  grep -q '"schema_version"' "$SMOKE_OUT"/*.profile.json \
    || { echo "FAIL: profile.json missing schema_version"; exit 1; }

  # Every line must be one JSON object with the Chrome trace-event fields:
  # complete spans (ph:"X"), flow events (ph:"s"/"f"), instant events
  # (ph:"i", health alerts), process metadata (ph:"M").
  awk '!/^\{.*"ph":"X".*"ts":.*"dur":.*"tid":.*\}$/ \
       && !/^\{.*"ph":"[sf]".*"id":.*"ts":.*"pid":.*\}$/ \
       && !/^\{.*"ph":"i".*"s":"p".*"ts":.*"pid":.*\}$/ \
       && !/^\{.*"ph":"M".*"pid":.*\}$/ { bad = 1; print "bad line " NR ": " $0 }
       END { exit bad }' "$TRACE"

  if command -v python3 > /dev/null 2>&1; then
    python3 - "$TRACE" <<'EOF'
import json, sys
names, span_pids, starts, finishes = set(), set(), {}, {}
with open(sys.argv[1]) as f:
    for n, line in enumerate(f, 1):
        rec = json.loads(line)
        if rec["ph"] == "X":
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(rec), f"line {n}: {rec}"
            names.add(rec["name"])
            span_pids.add(rec["pid"])
        elif rec["ph"] in ("s", "f"):
            (starts if rec["ph"] == "s" else finishes)[rec["id"]] = rec["pid"]
phases = {"cv_generation", "fake_forward", "real_forward", "critic_backward",
          "generator_step", "round"}
missing = phases - names
assert not missing, f"trace is missing phases: {missing}"
assert len(span_pids) >= 3, f"expected >=3 party rows (server/clients/driver): {span_pids}"
assert starts and set(starts) == set(finishes), "unpaired flow ids"
crossing = sum(1 for i, pid in starts.items() if finishes[i] != pid)
assert crossing > 0, "no flow crosses parties"
print(f"trace OK: {n} events, {len(names)} span names, "
      f"{len(span_pids)} party rows, {len(starts)} flow pairs ({crossing} cross-party)")
EOF
  fi

  # gtv-prof must merge all three artefacts without error.
  "$BUILD_DIR/tools/gtv-prof" \
    --profile "$SMOKE_OUT"/comm_overhead.profile.json \
    --telemetry "$SMOKE_OUT"/comm_overhead.telemetry.json \
    --trace "$TRACE" > "$SMOKE_OUT/prof_report.txt"
  grep -q "== coverage ==" "$SMOKE_OUT/prof_report.txt" \
    || { echo "FAIL: gtv-prof produced no coverage section"; exit 1; }

  run_transport_stage
  run_kernels_stage
  run_liveobs_stage
  run_blackbox_stage
  run_sampler_stage
  run_serve_stage
  run_resume_stage
fi

if [ "$STAGE" != "all" ] && [ "$STAGE" != "health" ] && [ "$STAGE" != "transport" ] \
   && [ "$STAGE" != "kernels" ] && [ "$STAGE" != "liveobs" ] \
   && [ "$STAGE" != "blackbox" ] && [ "$STAGE" != "sampler" ] \
   && [ "$STAGE" != "serve" ] && [ "$STAGE" != "resume" ]; then
  echo "check.sh: unknown GTV_CHECK_STAGE '$STAGE' (expected all|health|transport|kernels|liveobs|blackbox|sampler|serve|resume)"
  exit 2
fi

# --- standalone kernels stage -------------------------------------------------
if [ "$STAGE" = "kernels" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" \
    -R 'kernel_test|kernel_trajectory_test|thread_pool_stress_test|tensor_test|autograd_test' \
    --output-on-failure
  run_kernels_stage
  echo "check.sh: all green (stage $STAGE)"
  exit 0
fi

# --- standalone liveobs stage -------------------------------------------------
if [ "$STAGE" = "liveobs" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" -R 'agg_test|transport_test|metrics_test' \
    --output-on-failure
  run_liveobs_stage
  echo "check.sh: all green (stage $STAGE)"
  exit 0
fi

# --- standalone blackbox stage -----------------------------------------------
if [ "$STAGE" = "blackbox" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" -R 'blackbox_test|json_util_test|transport_test' \
    --output-on-failure
  run_blackbox_stage
  echo "check.sh: all green (stage $STAGE)"
  exit 0
fi

# --- standalone sampler stage ------------------------------------------------
if [ "$STAGE" = "sampler" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" -R 'sampler_test|transport_test|agg_test' \
    --output-on-failure
  run_sampler_stage
  echo "check.sh: all green (stage $STAGE)"
  exit 0
fi

# --- standalone serve stage ---------------------------------------------------
if [ "$STAGE" = "serve" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" -R 'serve_test|serialize_test|transport_test' \
    --output-on-failure
  run_serve_stage
  echo "check.sh: all green (stage $STAGE)"
  exit 0
fi

# --- standalone resume stage --------------------------------------------------
if [ "$STAGE" = "resume" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" -R 'resume_test|node_test|transport_test' \
    --output-on-failure
  run_resume_stage
  echo "check.sh: all green (stage $STAGE)"
  exit 0
fi

# --- standalone transport stage ----------------------------------------------
if [ "$STAGE" = "transport" ]; then
  # Incremental build + the transport/node test binaries, then the
  # distributed smoke above.
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" -R 'transport_test|node_test|net_test' --output-on-failure
  run_transport_stage
  echo "check.sh: all green (stage $STAGE)"
  exit 0
fi

# --- training-health smoke (stages: all, health) ----------------------------
if [ "$STAGE" = "health" ]; then
  # Standalone health stage: incremental build + regenerate the divergence
  # artefact (cheap; the test binary owns the deterministic scenario).
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j
  ctest --test-dir "$BUILD_DIR" -R health_divergence_test --output-on-failure
fi

HEALTH_OUT="$SMOKE_OUT/health"
mkdir -p "$HEALTH_OUT"

# 1. Healthy seed-config run: health armed, zero alerts expected; its
#    telemetry feeds the BENCH_health_smoke.json baseline.
GTV_HEALTH=1 GTV_METRICS_DUMP="$HEALTH_OUT/metrics.prom" \
  GTV_BENCH_ROWS=80 GTV_BENCH_ROUNDS=5 GTV_BENCH_DATASETS=loan \
  GTV_BENCH_OUT="$HEALTH_OUT" "$BUILD_DIR/bench/comm_overhead"

ls "$HEALTH_OUT"/*.health.json > /dev/null 2>&1 \
  || { echo "FAIL: no health.json despite GTV_HEALTH=1"; exit 1; }
grep -q '"schema_version":1' "$HEALTH_OUT"/comm_overhead.health.json \
  || { echo "FAIL: health.json missing schema_version 1"; exit 1; }
grep -q '"schema_version":3' "$HEALTH_OUT"/comm_overhead.telemetry.json \
  || { echo "FAIL: telemetry.json is not the schema_version 3 envelope"; exit 1; }
grep -q '"health":{' "$HEALTH_OUT"/comm_overhead.telemetry.json \
  || { echo "FAIL: v3 telemetry envelope missing the health block"; exit 1; }
[ -s "$HEALTH_OUT/metrics.prom" ] \
  || { echo "FAIL: GTV_METRICS_DUMP wrote nothing"; exit 1; }
grep -q '# TYPE' "$HEALTH_OUT/metrics.prom" \
  || { echo "FAIL: metrics.prom is not Prometheus text exposition"; exit 1; }

# 2. Destabilized run (absurd LR): must record fatal alerts, and with a
#    trace open the alerts must appear as ph:"i" instant events.
HEALTH_TRACE="$HEALTH_OUT/divergence_trace.jsonl"
GTV_HEALTH=1 GTV_TRACE="$HEALTH_TRACE" GTV_BENCH_LR=100 \
  GTV_BENCH_ROWS=80 GTV_BENCH_ROUNDS=5 GTV_BENCH_DATASETS=loan \
  GTV_BENCH_OUT="$HEALTH_OUT/diverged" "$BUILD_DIR/bench/comm_overhead"

grep -q '"ph":"i"' "$HEALTH_TRACE" \
  || { echo "FAIL: destabilized run emitted no health instant events"; exit 1; }
awk '!/^\{.*"ph":"X".*"ts":.*"dur":.*"tid":.*\}$/ \
     && !/^\{.*"ph":"[sf]".*"id":.*"ts":.*"pid":.*\}$/ \
     && !/^\{.*"ph":"i".*"s":"p".*"ts":.*"pid":.*\}$/ \
     && !/^\{.*"ph":"M".*"pid":.*\}$/ { bad = 1; print "bad line " NR ": " $0 }
     END { exit bad }' "$HEALTH_TRACE"

# 3. Validate artefact shapes + BENCH baseline with python3.
ALERT_JSONL="$BUILD_DIR/tests/health_divergence_alerts.jsonl"
[ -s "$ALERT_JSONL" ] \
  || { echo "FAIL: $ALERT_JSONL missing (health_divergence_test not run?)"; exit 1; }

if command -v python3 > /dev/null 2>&1; then
  python3 - "$HEALTH_OUT" "$ALERT_JSONL" <<'EOF'
import json, sys
out, alert_jsonl = sys.argv[1], sys.argv[2]

# Healthy seed config: armed but silent.
healthy = json.load(open(f"{out}/comm_overhead.health.json"))
assert healthy["schema_version"] == 1, healthy
assert healthy["summary"]["enabled"] is True
assert healthy["summary"]["total"] == 0, \
    f"seed config fired alerts: {healthy['summary']}"

tele = json.load(open(f"{out}/comm_overhead.telemetry.json"))
assert tele["schema_version"] == 3
assert tele["health"]["fatal"] == 0

# Destabilized run: >=1 fatal alert, every alert record well-formed.
diverged = json.load(open(f"{out}/diverged/comm_overhead.health.json"))
assert diverged["summary"]["fatal"] >= 1, \
    f"destabilized run stayed healthy: {diverged['summary']}"
for alert in diverged["alerts"]:
    assert {"severity", "rule", "round", "value", "threshold"} <= set(alert), alert
    assert alert["severity"] in ("info", "warn", "fatal"), alert

# Divergence-test artefact: JSONL of alerts, >=1 fatal within 10 rounds.
fatal_rounds = []
with open(alert_jsonl) as f:
    for line in f:
        if not line.strip():
            continue
        alert = json.loads(line)
        assert {"severity", "rule", "round", "value", "threshold"} <= set(alert), alert
        if alert["severity"] == "fatal":
            fatal_rounds.append(alert["round"])
assert fatal_rounds and min(fatal_rounds) < 10, \
    f"no fatal alert within 10 rounds: {fatal_rounds}"

# Seed perf baseline for the health smoke.
hists = tele["metrics"]["histograms"]
counters = tele["metrics"]["counters"]
rounds = hists["gtv.phase.round_ms"]["count"]
wall_ms = hists["gtv.phase.round_ms"]["sum"]
wire = sum(v for k, v in counters.items()
           if k.startswith("net.") and k.endswith(".bytes"))
baseline = {
    "schema_version": 1,
    "rounds": rounds,
    "wall_ms_per_round": round(wall_ms / rounds, 3) if rounds else 0,
    "bytes_per_round": round(wire / rounds) if rounds else 0,
    "peak_tensor_bytes": tele["memory"]["peak_bytes"],
}
with open("BENCH_health_smoke.json", "w") as f:
    json.dump(baseline, f, indent=1)
    f.write("\n")
print(f"health smoke OK: seed silent, divergence fatal at round "
      f"{min(fatal_rounds)}, baseline {baseline}")
EOF
fi

# 4. The health tooling must render the artefacts without error.
"$BUILD_DIR/tools/gtv-prof" \
  --telemetry "$HEALTH_OUT"/diverged/comm_overhead.telemetry.json \
  > "$HEALTH_OUT/prof_health.txt"
grep -q "== health alerts" "$HEALTH_OUT/prof_health.txt" \
  || { echo "FAIL: gtv-prof did not pick up the sibling health.json"; exit 1; }
"$BUILD_DIR/tools/gtv-health" \
  --health "$HEALTH_OUT"/diverged/comm_overhead.health.json \
  --telemetry "$HEALTH_OUT"/diverged/comm_overhead.telemetry.json \
  > "$HEALTH_OUT/health_report.txt"
grep -q "== per-round timeline" "$HEALTH_OUT/health_report.txt" \
  || { echo "FAIL: gtv-health produced no timeline"; exit 1; }
grep -q "== run context" "$HEALTH_OUT/health_report.txt" \
  || { echo "FAIL: gtv-health produced no merged run context"; exit 1; }

echo "check.sh: all green (stage $STAGE)"
