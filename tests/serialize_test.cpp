#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gan/ctabgan.h"

namespace gtv::nn {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, RoundTripRestoresExactWeights) {
  Rng rng(1);
  Sequential model;
  model.emplace<Linear>(4, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Linear>(8, 3, rng);
  const std::string path = temp_path("gtv_serialize_roundtrip.bin");
  save_parameters(model, path);

  Sequential other;
  other.emplace<Linear>(4, 8, rng);  // different random init
  other.emplace<ReLU>();
  other.emplace<Linear>(8, 3, rng);
  load_parameters(other, path);

  auto a = model.parameters();
  auto b = other.parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i].value().max_abs_diff(b[i].value()), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, GeneratorNetOutputsMatchAfterReload) {
  Rng rng(2);
  gan::GeneratorNet net(10, 16, 2, 6, rng);
  const std::string path = temp_path("gtv_serialize_gen.bin");
  save_parameters(net, path);
  gan::GeneratorNet restored(10, 16, 2, 6, rng);
  load_parameters(restored, path);
  net.set_training(false);
  restored.set_training(false);
  ag::NoGradGuard no_grad;
  Tensor x = Tensor::ones(3, 10);
  EXPECT_FLOAT_EQ(net.forward(ag::Var(x)).value().max_abs_diff(
                      restored.forward(ag::Var(x)).value()),
                  0.0f);
  std::remove(path.c_str());
}

TEST(SerializeTest, ArchitectureMismatchRejected) {
  Rng rng(3);
  Linear small(4, 4, rng);
  Linear big(8, 8, rng);
  const std::string path = temp_path("gtv_serialize_mismatch.bin");
  save_parameters(small, path);
  EXPECT_THROW(load_parameters(big, path), std::runtime_error);
  // big is untouched on failure.
  Sequential two;
  two.emplace<Linear>(4, 4, rng);
  two.emplace<Linear>(4, 4, rng);
  EXPECT_THROW(load_parameters(two, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptFilesRejected) {
  Rng rng(4);
  Linear model(3, 3, rng);
  const std::string path = temp_path("gtv_serialize_corrupt.bin");
  save_parameters(model, path);
  // Truncate.
  std::filesystem::resize_file(path, 10);
  EXPECT_THROW(load_parameters(model, path), std::runtime_error);
  // Bad magic.
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t junk = 0xdeadbeef;
    out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  EXPECT_THROW(load_parameters(model, path), std::runtime_error);
  EXPECT_THROW(load_parameters(model, temp_path("gtv_no_such_file.bin")), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gtv::nn
