#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gan/ctabgan.h"

namespace gtv::nn {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, RoundTripRestoresExactWeights) {
  Rng rng(1);
  Sequential model;
  model.emplace<Linear>(4, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Linear>(8, 3, rng);
  const std::string path = temp_path("gtv_serialize_roundtrip.bin");
  save_parameters(model, path);

  Sequential other;
  other.emplace<Linear>(4, 8, rng);  // different random init
  other.emplace<ReLU>();
  other.emplace<Linear>(8, 3, rng);
  load_parameters(other, path);

  auto a = model.parameters();
  auto b = other.parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i].value().max_abs_diff(b[i].value()), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, GeneratorNetOutputsMatchAfterReload) {
  Rng rng(2);
  gan::GeneratorNet net(10, 16, 2, 6, rng);
  const std::string path = temp_path("gtv_serialize_gen.bin");
  save_parameters(net, path);
  gan::GeneratorNet restored(10, 16, 2, 6, rng);
  load_parameters(restored, path);
  net.set_training(false);
  restored.set_training(false);
  ag::NoGradGuard no_grad;
  Tensor x = Tensor::ones(3, 10);
  EXPECT_FLOAT_EQ(net.forward(ag::Var(x)).value().max_abs_diff(
                      restored.forward(ag::Var(x)).value()),
                  0.0f);
  std::remove(path.c_str());
}

TEST(SerializeTest, ArchitectureMismatchRejected) {
  Rng rng(3);
  Linear small(4, 4, rng);
  Linear big(8, 8, rng);
  const std::string path = temp_path("gtv_serialize_mismatch.bin");
  save_parameters(small, path);
  EXPECT_THROW(load_parameters(big, path), std::runtime_error);
  // big is untouched on failure.
  Sequential two;
  two.emplace<Linear>(4, 4, rng);
  two.emplace<Linear>(4, 4, rng);
  EXPECT_THROW(load_parameters(two, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptFilesRejected) {
  Rng rng(4);
  Linear model(3, 3, rng);
  const std::string path = temp_path("gtv_serialize_corrupt.bin");
  save_parameters(model, path);
  // Truncate.
  std::filesystem::resize_file(path, 10);
  EXPECT_THROW(load_parameters(model, path), std::runtime_error);
  // Bad magic.
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t junk = 0xdeadbeef;
    out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  EXPECT_THROW(load_parameters(model, path), std::runtime_error);
  EXPECT_THROW(load_parameters(model, temp_path("gtv_no_such_file.bin")), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeTest, BatchNormRunningStatsSurviveReload) {
  Rng rng(5);
  gan::GeneratorNet net(6, 12, 2, 4, rng);
  // Drive the running statistics away from their init with a few
  // train-mode forwards — these live in buffers, not parameters.
  net.set_training(true);
  for (int step = 0; step < 4; ++step) {
    Tensor x = Tensor::normal(8, 6, 0.0f, 1.0f, rng);
    net.forward(ag::Var(x));
  }
  const std::string path = temp_path("gtv_serialize_buffers.bin");
  save_parameters(net, path);

  gan::GeneratorNet restored(6, 12, 2, 4, rng);
  load_parameters(restored, path);
  for (std::size_t i = 0; i < net.buffers().size(); ++i) {
    EXPECT_FLOAT_EQ(net.buffers()[i]->max_abs_diff(*restored.buffers()[i]), 0.0f);
  }
  // Eval-mode outputs depend on the running stats, so this only passes if
  // the buffers really round-tripped.
  net.set_training(false);
  restored.set_training(false);
  ag::NoGradGuard no_grad;
  Tensor probe = Tensor::ones(3, 6);
  EXPECT_FLOAT_EQ(net.forward(ag::Var(probe)).value().max_abs_diff(
                      restored.forward(ag::Var(probe)).value()),
                  0.0f);
  std::remove(path.c_str());
}

TEST(SerializeTest, LegacyV1FormatStillLoads) {
  Rng rng(6);
  Sequential model;
  model.emplace<Linear>(3, 5, rng);
  model.emplace<Linear>(5, 2, rng);
  // Handcraft a v1 file: "GTVP" magic, u64 parameter count, then per
  // parameter u64 rows / u64 cols / raw floats, all native-endian, no CRC.
  std::vector<std::uint8_t> bytes;
  auto put_native = [&bytes](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + n);
  };
  const std::uint32_t magic = 0x47545650;
  put_native(&magic, 4);
  auto params = model.parameters();
  const std::uint64_t count = params.size();
  put_native(&count, 8);
  for (const auto& p : params) {
    const std::uint64_t rows = p.value().rows();
    const std::uint64_t cols = p.value().cols();
    put_native(&rows, 8);
    put_native(&cols, 8);
    put_native(p.value().data(), p.value().size() * sizeof(float));
  }
  const std::string path = temp_path("gtv_serialize_v1.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  Sequential other;
  other.emplace<Linear>(3, 5, rng);  // different random init
  other.emplace<Linear>(5, 2, rng);
  load_parameters(other, path);
  auto a = model.parameters();
  auto b = other.parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i].value().max_abs_diff(b[i].value()), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, CrcCatchesBitFlipsAndTrailingBytes) {
  Rng rng(7);
  Linear model(4, 4, rng);
  const std::string path = temp_path("gtv_serialize_crc.bin");
  save_parameters(model, path);
  const auto size = std::filesystem::file_size(path);

  // Flip one bit in the middle of the payload.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.write(&byte, 1);
  }
  EXPECT_THROW(load_parameters(model, path), std::runtime_error);

  // A single appended byte must also fail (exact-size + CRC discipline).
  save_parameters(model, path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.put('\0');
  }
  EXPECT_THROW(load_parameters(model, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncationFuzzNeverCrashes) {
  Rng rng(8);
  gan::GeneratorNet net(5, 8, 1, 3, rng);
  const std::string path = temp_path("gtv_serialize_fuzz.bin");
  save_parameters(net, path);
  const auto size = std::filesystem::file_size(path);
  // Every truncation length must throw — never crash, never half-load.
  for (std::uintmax_t cut = 0; cut < size; cut += 3) {
    save_parameters(net, path);
    std::filesystem::resize_file(path, cut);
    EXPECT_THROW(load_parameters(net, path), std::runtime_error) << "cut=" << cut;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gtv::nn
