#include "eval/mia.h"

#include <gtest/gtest.h>

namespace gtv::eval {
namespace {

using data::ColumnType;
using data::Table;

Table gaussian_table(std::size_t rows, double mean, Rng& rng) {
  Table t({{"x", ColumnType::kContinuous, {}, {}},
           {"c", ColumnType::kCategorical, {"a", "b"}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    t.append_row({rng.normal(mean, 1.0), static_cast<double>(rng.uniform_index(2))});
  }
  return t;
}

TEST(MiaTest, LeakyGeneratorThatCopiesTrainingDataIsDetected) {
  Rng rng(1);
  Table members = gaussian_table(60, 0.0, rng);
  Table non_members = gaussian_table(60, 0.0, rng);
  // Worst case: the "synthetic" data IS the training data (memorization).
  MiaResult result = membership_inference(members, non_members, members);
  EXPECT_GT(result.auc, 0.9);
  EXPECT_NEAR(result.member_mean, 0.0, 1e-9);
  EXPECT_GT(result.non_member_mean, 0.0);
}

TEST(MiaTest, IndependentSyntheticDataIsSafe) {
  Rng rng(2);
  Table members = gaussian_table(80, 0.0, rng);
  Table non_members = gaussian_table(80, 0.0, rng);
  Table synthetic = gaussian_table(200, 0.0, rng);  // same distribution, fresh draws
  MiaResult result = membership_inference(members, non_members, synthetic);
  EXPECT_NEAR(result.auc, 0.5, 0.12);
}

TEST(MiaTest, PartialMemorizationInBetween) {
  Rng rng(3);
  Table members = gaussian_table(50, 0.0, rng);
  Table non_members = gaussian_table(50, 0.0, rng);
  // Half copied members, half fresh samples.
  Table synthetic(members.schema());
  for (std::size_t r = 0; r < 25; ++r) {
    synthetic.append_row({members.cell(r, 0), members.cell(r, 1)});
  }
  Table fresh = gaussian_table(25, 0.0, rng);
  for (std::size_t r = 0; r < 25; ++r) {
    synthetic.append_row({fresh.cell(r, 0), fresh.cell(r, 1)});
  }
  MiaResult result = membership_inference(members, non_members, synthetic);
  EXPECT_GT(result.auc, 0.6);
  EXPECT_LT(result.auc, 1.0);
}

TEST(MiaTest, Validation) {
  Rng rng(4);
  Table t = gaussian_table(10, 0.0, rng);
  Table other({{"z", ColumnType::kContinuous, {}, {}}});
  other.append_row({0.0});
  EXPECT_THROW(membership_inference(t, t, other), std::invalid_argument);
  Table empty(t.schema());
  EXPECT_THROW(membership_inference(empty, t, t), std::invalid_argument);
}

}  // namespace
}  // namespace gtv::eval
