#include "tensor/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace gtv {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIndexBoundsAndCoverage) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalShifted) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(19);
  auto p = rng.permutation(50);
  std::vector<std::size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SharedSeedPermutationsMatch) {
  // This is the property the training-with-shuffling mechanism depends on:
  // two clients construct identical permutations from a shared seed.
  Rng a(777), b(777);
  EXPECT_EQ(a.permutation(100), b.permutation(100));
}

TEST(RngTest, SplitStreamsAreIndependentDeterministic) {
  Rng parent1(55), parent2(55);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Child stream differs from where the parent continues.
  Rng parent3(55);
  Rng child3 = parent3.split();
  EXPECT_NE(child3.next_u64(), parent3.next_u64());
}

TEST(RngTest, PermutationEmptyAndSingle) {
  Rng rng(1);
  EXPECT_TRUE(rng.permutation(0).empty());
  EXPECT_EQ(rng.permutation(1), std::vector<std::size_t>{0});
}

}  // namespace
}  // namespace gtv
