#include "net/wire.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace gtv::net {
namespace {

TEST(WireTest, TensorRoundTrip) {
  Rng rng(1);
  Tensor t = Tensor::uniform(7, 5, -3.0f, 3.0f, rng);
  Tensor back = deserialize_tensor(serialize_tensor(t));
  EXPECT_FLOAT_EQ(t.max_abs_diff(back), 0.0f);
  EXPECT_EQ(back.rows(), 7u);
  EXPECT_EQ(back.cols(), 5u);
}

TEST(WireTest, EmptyTensorRoundTrip) {
  Tensor t(0, 4);
  Tensor back = deserialize_tensor(serialize_tensor(t));
  EXPECT_EQ(back.rows(), 0u);
  EXPECT_EQ(back.cols(), 4u);
}

TEST(WireTest, IndicesRoundTrip) {
  std::vector<std::size_t> idx = {0, 5, 5, 999999, 3};
  EXPECT_EQ(deserialize_indices(serialize_indices(idx)), idx);
  EXPECT_TRUE(deserialize_indices(serialize_indices({})).empty());
}

TEST(WireTest, TruncatedPayloadThrows) {
  auto bytes = serialize_tensor(Tensor(2, 2, 1.0f));
  bytes.pop_back();
  EXPECT_THROW(deserialize_tensor(bytes), std::runtime_error);
  auto ibytes = serialize_indices({1, 2, 3});
  ibytes.resize(10);
  EXPECT_THROW(deserialize_indices(ibytes), std::runtime_error);
}

TEST(TrafficMeterTest, CountsBytesAndMessagesPerLink) {
  TrafficMeter meter;
  Tensor t(4, 8);  // 16-byte header + 128 bytes payload
  meter.transfer("a->b", t);
  meter.transfer("a->b", t);
  meter.transfer("b->a", std::vector<std::size_t>{1, 2, 3});
  EXPECT_EQ(meter.stats("a->b").messages, 2u);
  EXPECT_EQ(meter.stats("a->b").bytes, 2u * (16 + 4 * 8 * 4));
  EXPECT_EQ(meter.stats("b->a").messages, 1u);
  EXPECT_EQ(meter.stats("b->a").bytes, 8u + 3 * 8);
  EXPECT_EQ(meter.total().messages, 3u);
  EXPECT_EQ(meter.stats("unknown").bytes, 0u);
}

TEST(TrafficMeterTest, TransferReturnsEqualValue) {
  TrafficMeter meter;
  Rng rng(2);
  Tensor t = Tensor::normal(3, 3, 0.0f, 1.0f, rng);
  Tensor out = meter.transfer("x", t);
  EXPECT_FLOAT_EQ(t.max_abs_diff(out), 0.0f);
  std::vector<std::size_t> idx = {7, 0, 7};
  EXPECT_EQ(meter.transfer("x", idx), idx);
}

TEST(TrafficMeterTest, ResetClears) {
  TrafficMeter meter;
  meter.transfer("x", Tensor(1, 1));
  meter.reset();
  EXPECT_EQ(meter.total().bytes, 0u);
  EXPECT_TRUE(meter.all().empty());
}

TEST(TrafficMeterTest, PublishesPerLinkCountersToRegistry) {
  auto& registry = obs::MetricsRegistry::instance();
  // The registry counters are cumulative across meters, so assert deltas.
  const auto bytes_before = registry.counter("net.meter-test->peer.bytes").value();
  const auto msgs_before = registry.counter("net.meter-test->peer.messages").value();

  TrafficMeter meter;
  Tensor t(4, 8);
  meter.transfer("meter-test->peer", t);
  meter.transfer("meter-test->peer", std::vector<std::size_t>{1, 2, 3});

  const auto& local = meter.stats("meter-test->peer");
  EXPECT_EQ(registry.counter("net.meter-test->peer.bytes").value() - bytes_before,
            local.bytes);
  EXPECT_EQ(registry.counter("net.meter-test->peer.messages").value() - msgs_before,
            local.messages);
}

TEST(TrafficMeterTest, RegistryCountersSurviveMeterReset) {
  auto& registry = obs::MetricsRegistry::instance();
  const auto before = registry.counter("net.reset-test->peer.bytes").value();
  TrafficMeter meter;
  meter.transfer("reset-test->peer", Tensor(2, 2));
  const auto charged = meter.stats("reset-test->peer").bytes;
  meter.reset();
  meter.transfer("reset-test->peer", Tensor(2, 2));
  // Local stats rewound; the registry keeps the cumulative total.
  EXPECT_EQ(meter.stats("reset-test->peer").bytes, charged);
  EXPECT_EQ(registry.counter("net.reset-test->peer.bytes").value() - before, 2 * charged);
}

}  // namespace
}  // namespace gtv::net
