#include "net/wire.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace gtv::net {
namespace {

TEST(WireTest, TensorRoundTrip) {
  Rng rng(1);
  Tensor t = Tensor::uniform(7, 5, -3.0f, 3.0f, rng);
  Tensor back = deserialize_tensor(serialize_tensor(t));
  EXPECT_FLOAT_EQ(t.max_abs_diff(back), 0.0f);
  EXPECT_EQ(back.rows(), 7u);
  EXPECT_EQ(back.cols(), 5u);
}

TEST(WireTest, EmptyTensorRoundTrip) {
  Tensor t(0, 4);
  Tensor back = deserialize_tensor(serialize_tensor(t));
  EXPECT_EQ(back.rows(), 0u);
  EXPECT_EQ(back.cols(), 4u);
}

TEST(WireTest, IndicesRoundTrip) {
  std::vector<std::size_t> idx = {0, 5, 5, 999999, 3};
  EXPECT_EQ(deserialize_indices(serialize_indices(idx)), idx);
  EXPECT_TRUE(deserialize_indices(serialize_indices({})).empty());
}

TEST(WireTest, TruncatedPayloadThrows) {
  auto bytes = serialize_tensor(Tensor(2, 2, 1.0f));
  bytes.pop_back();
  EXPECT_THROW(deserialize_tensor(bytes), std::runtime_error);
  auto ibytes = serialize_indices({1, 2, 3});
  ibytes.resize(10);
  EXPECT_THROW(deserialize_indices(ibytes), std::runtime_error);
}

TEST(WireTest, MalformedBuffersThrowTypedWireError) {
  // The typed error subclasses std::runtime_error, so existing catch sites
  // keep working while new code can catch net::WireError specifically.
  auto bytes = serialize_tensor(Tensor(2, 2, 1.0f));
  bytes.pop_back();
  EXPECT_THROW(deserialize_tensor(bytes), WireError);
  EXPECT_THROW(deserialize_indices(std::vector<std::uint8_t>(3, 0)), WireError);
}

TEST(WireTest, TruncationAtEveryLengthThrows) {
  const auto bytes = serialize_tensor(Tensor(3, 2, 0.5f));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(deserialize_tensor(cut), WireError) << "len=" << len;
  }
  const auto ibytes = serialize_indices({9, 8, 7});
  for (std::size_t len = 0; len < ibytes.size(); ++len) {
    std::vector<std::uint8_t> cut(ibytes.begin(), ibytes.begin() + len);
    EXPECT_THROW(deserialize_indices(cut), WireError) << "len=" << len;
  }
}

TEST(WireTest, TrailingBytesRejected) {
  auto bytes = serialize_tensor(Tensor(2, 3, 1.0f));
  bytes.push_back(0);
  EXPECT_THROW(deserialize_tensor(bytes), WireError);
  auto ibytes = serialize_indices({1, 2});
  ibytes.push_back(0xff);
  EXPECT_THROW(deserialize_indices(ibytes), WireError);
}

TEST(WireTest, OversizedHeaderCannotForceHugeAllocation) {
  // Header claims 2^40 x 2^40 elements on a 16-byte buffer: the overflow
  // check must reject it before any allocation is attempted.
  std::vector<std::uint8_t> bytes(16, 0);
  bytes[5] = 1;   // rows = 2^40 (little-endian byte 5)
  bytes[13] = 1;  // cols = 2^40
  EXPECT_THROW(deserialize_tensor(bytes), WireError);
  // Same for an indices count far beyond the buffer.
  std::vector<std::uint8_t> ibytes(8, 0xff);
  EXPECT_THROW(deserialize_indices(ibytes), WireError);
}

TEST(WireTest, LayoutIsPinnedLittleEndian) {
  // rows=1, cols=2, values {1.0f, -2.0f}: 16-byte header + 8 payload bytes.
  Tensor t(1, 2);
  t(0, 0) = 1.0f;
  t(0, 1) = -2.0f;
  const auto bytes = serialize_tensor(t);
  ASSERT_EQ(bytes.size(), 24u);
  EXPECT_EQ(bytes[0], 1u);   // rows LSB
  EXPECT_EQ(bytes[8], 2u);   // cols LSB
  // 1.0f = 0x3f800000 little-endian.
  EXPECT_EQ(bytes[16], 0x00u);
  EXPECT_EQ(bytes[19], 0x3fu);
  // -2.0f = 0xc0000000.
  EXPECT_EQ(bytes[23], 0xc0u);

  const auto ibytes = serialize_indices({0x0102030405060708ULL});
  ASSERT_EQ(ibytes.size(), 16u);
  EXPECT_EQ(ibytes[0], 1u);     // count LSB
  EXPECT_EQ(ibytes[8], 0x08u);  // value LSB first
  EXPECT_EQ(ibytes[15], 0x01u);
}

TEST(WireTest, CorruptedBufferFuzzNeverCrashes) {
  // Byte-level fuzz over header bytes and structural positions: every
  // mutation must either round-trip to a well-formed value or throw a typed
  // WireError — never crash or mis-size.
  Rng rng(99);
  const Tensor t = Tensor::uniform(4, 3, -2.0f, 2.0f, rng);
  const auto base = serialize_tensor(t);
  for (std::size_t pos = 0; pos < 16; ++pos) {  // header bytes
    for (std::uint8_t mask : {0x01, 0x80, 0xff}) {
      auto fuzzed = base;
      fuzzed[pos] ^= mask;
      try {
        const Tensor out = deserialize_tensor(fuzzed);
        // A surviving parse must describe exactly the bytes present.
        EXPECT_EQ(16 + out.size() * 4, fuzzed.size());
      } catch (const WireError&) {
        // expected for most header mutations
      }
    }
  }
  const auto ibase = serialize_indices({5, 6, 7, 8});
  for (std::size_t pos = 0; pos < 8; ++pos) {
    for (std::uint8_t mask : {0x01, 0x80, 0xff}) {
      auto fuzzed = ibase;
      fuzzed[pos] ^= mask;
      try {
        const auto out = deserialize_indices(fuzzed);
        EXPECT_EQ(8 + out.size() * 8, fuzzed.size());
      } catch (const WireError&) {
      }
    }
  }
}

TEST(TrafficMeterTest, CountsBytesAndMessagesPerLink) {
  TrafficMeter meter;
  Tensor t(4, 8);  // 16-byte header + 128 bytes payload
  meter.transfer("a->b", t);
  meter.transfer("a->b", t);
  meter.transfer("b->a", std::vector<std::size_t>{1, 2, 3});
  EXPECT_EQ(meter.stats("a->b").messages, 2u);
  EXPECT_EQ(meter.stats("a->b").bytes, 2u * (16 + 4 * 8 * 4));
  EXPECT_EQ(meter.stats("b->a").messages, 1u);
  EXPECT_EQ(meter.stats("b->a").bytes, 8u + 3 * 8);
  EXPECT_EQ(meter.total().messages, 3u);
  EXPECT_EQ(meter.stats("unknown").bytes, 0u);
}

TEST(TrafficMeterTest, TransferReturnsEqualValue) {
  TrafficMeter meter;
  Rng rng(2);
  Tensor t = Tensor::normal(3, 3, 0.0f, 1.0f, rng);
  Tensor out = meter.transfer("x", t);
  EXPECT_FLOAT_EQ(t.max_abs_diff(out), 0.0f);
  std::vector<std::size_t> idx = {7, 0, 7};
  EXPECT_EQ(meter.transfer("x", idx), idx);
}

TEST(TrafficMeterTest, ResetClears) {
  TrafficMeter meter;
  meter.transfer("x", Tensor(1, 1));
  meter.reset();
  EXPECT_EQ(meter.total().bytes, 0u);
  EXPECT_TRUE(meter.all().empty());
}

TEST(TrafficMeterTest, PublishesPerLinkCountersToRegistry) {
  auto& registry = obs::MetricsRegistry::instance();
  // The registry counters are cumulative across meters, so assert deltas.
  const auto bytes_before = registry.counter("net.meter-test->peer.bytes").value();
  const auto msgs_before = registry.counter("net.meter-test->peer.messages").value();

  TrafficMeter meter;
  Tensor t(4, 8);
  meter.transfer("meter-test->peer", t);
  meter.transfer("meter-test->peer", std::vector<std::size_t>{1, 2, 3});

  const auto& local = meter.stats("meter-test->peer");
  EXPECT_EQ(registry.counter("net.meter-test->peer.bytes").value() - bytes_before,
            local.bytes);
  EXPECT_EQ(registry.counter("net.meter-test->peer.messages").value() - msgs_before,
            local.messages);
}

TEST(TrafficMeterTest, RegistryCountersSurviveMeterReset) {
  auto& registry = obs::MetricsRegistry::instance();
  const auto before = registry.counter("net.reset-test->peer.bytes").value();
  TrafficMeter meter;
  meter.transfer("reset-test->peer", Tensor(2, 2));
  const auto charged = meter.stats("reset-test->peer").bytes;
  meter.reset();
  meter.transfer("reset-test->peer", Tensor(2, 2));
  // Local stats rewound; the registry keeps the cumulative total.
  EXPECT_EQ(meter.stats("reset-test->peer").bytes, charged);
  EXPECT_EQ(registry.counter("net.reset-test->peer.bytes").value() - before, 2 * charged);
}

}  // namespace
}  // namespace gtv::net
