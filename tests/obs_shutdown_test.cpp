// Regression test for the TraceSink static-destruction hazard.
//
// A ScopedTimer (or raw emit) firing during static destruction used to race
// the sink's destructor: the function-local singleton was constructed inside
// main() — so destroyed *before* globals constructed earlier — and the dying
// emit touched a destroyed mutex/ofstream. The fix leaks the singleton and
// flushes via std::atexit, so late emits find a still-alive object with the
// sink closed and are dropped.
//
// This is deliberately not a gtest binary: the assertion is the process
// itself — construct a global whose destructor emits after main() returns,
// and exit 0 without crashing.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/trace.h"

namespace {

struct LateEmitter {
  ~LateEmitter() {
    // Runs during static destruction, after the atexit flush has closed the
    // sink. Both paths must be safe no-ops, not use-after-destroy.
    gtv::obs::ScopedTimer span("shutdown.late_span", nullptr, nullptr,
                               /*always=*/true);
    gtv::obs::TraceSink::instance().emit_complete(
        "shutdown.late_emit", gtv::obs::TraceSink::now_us(), 1);
  }
};

// Constructed before main() (and before the sink singleton, which is first
// touched inside main), so this destructor runs after the sink's atexit hook.
LateEmitter g_late;

}  // namespace

int main() {
  gtv::obs::TraceSink& sink = gtv::obs::TraceSink::instance();
  const char* tmp = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/obs_shutdown_trace.jsonl";
  sink.open(path);
  if (!sink.active()) {
    std::fprintf(stderr, "failed to open trace sink at %s\n", path.c_str());
    return 1;
  }
  { gtv::obs::ScopedTimer span("shutdown.main_span"); }
  // Intentionally no close(): the atexit hook flushes, then g_late emits
  // into the closed sink. A crash here fails the test via the exit code.
  std::printf("ok\n");
  return 0;
}
