// Reentrancy and concurrency tests for gtv::ThreadPool.
//
// The pool used to keep a single shared job slot, so two threads calling
// parallel_for at once corrupted each other's chunk cursors, and a
// parallel_for issued from inside a running chunk deadlocked waiting on
// workers that were all occupied by its parent. This suite pins the fixed
// contract: any number of caller threads may dispatch concurrently, nested
// calls degrade to serial, and GTV_THREADS sizes the pool.
//
// GTV_THREADS is set in a global constructor so it is visible before the
// lazily-created singleton pool first runs — which is also why this lives in
// its own binary instead of tensor_test (the env var must win the race with
// every other test's first kernel call).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/thread_pool.h"

namespace {
struct EnvSetter {
  EnvSetter() { setenv("GTV_THREADS", "3", /*overwrite=*/1); }
} g_env_setter;
}  // namespace

namespace gtv {
namespace {

TEST(ThreadPoolStressTest, GtvThreadsEnvSizesPool) {
  EXPECT_EQ(ThreadPool::instance().worker_count(), 3u);
}

TEST(ThreadPoolStressTest, SingleCallerCoversRangeExactlyOnce) {
  const std::size_t n = 10007;  // prime: exercises ragged final chunk
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

// Four caller threads hammer the pool simultaneously, each with its own
// output buffer and a data-dependent payload. Every call must cover its own
// range exactly once regardless of interleaving with the other callers.
TEST(ThreadPoolStressTest, FourConcurrentCallersEachGetCorrectResults) {
  constexpr int kCallers = 4;
  constexpr int kRepeats = 50;
  constexpr std::size_t kN = 4099;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, &failures] {
      std::vector<int> out(kN);
      for (int rep = 0; rep < kRepeats; ++rep) {
        std::fill(out.begin(), out.end(), -1);
        parallel_for(kN, 4, [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            out[i] = t * 1000000 + rep * 10000 + static_cast<int>(i % 10000);
          }
        });
        for (std::size_t i = 0; i < kN; ++i) {
          const int want = t * 1000000 + rep * 10000 + static_cast<int>(i % 10000);
          if (out[i] != want) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(failures.load(), 0);
}

// Concurrent matmuls from multiple threads — the realistic VFL shape of the
// bug: per-party reader threads and probe synthesis all driving kernels at
// once. Each thread checks its product against a serially-computed answer.
TEST(ThreadPoolStressTest, ConcurrentMatmulsAreIndependent) {
  constexpr int kCallers = 4;
  std::vector<Tensor> as, bs, wants;
  for (int t = 0; t < kCallers; ++t) {
    Rng rng(100 + t);
    as.push_back(Tensor::normal(96, 64, 0.0f, 1.0f, rng));
    bs.push_back(Tensor::normal(64, 80, 0.0f, 1.0f, rng));
    wants.push_back(as.back().matmul(bs.back()));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, &as, &bs, &wants, &mismatches] {
      for (int rep = 0; rep < 25; ++rep) {
        Tensor got = as[t].matmul(bs[t]);
        for (std::size_t i = 0; i < got.size(); ++i) {
          if (got.data()[i] != wants[t].data()[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// A parallel_for issued from inside a chunk body must complete (serially)
// rather than deadlock, and still cover its whole range exactly once.
TEST(ThreadPoolStressTest, NestedParallelForCompletesSerially) {
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 257;
  std::vector<std::atomic<int>> inner_hits(kOuter * kInner);
  parallel_for(kOuter, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      parallel_for(kInner, 16, [&, o](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          inner_hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (std::size_t i = 0; i < inner_hits.size(); ++i) {
    ASSERT_EQ(inner_hits[i].load(), 1) << "slot " << i;
  }
}

// Nesting inside concurrent callers at once — the worst case: every worker
// occupied by outer chunks while each chunk spawns inner loops.
TEST(ThreadPoolStressTest, ConcurrentCallersWithNestedLoops) {
  constexpr int kCallers = 4;
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&total] {
      for (int rep = 0; rep < 10; ++rep) {
        parallel_for(32, 1, [&](std::size_t ob, std::size_t oe) {
          for (std::size_t o = ob; o < oe; ++o) {
            parallel_for(100, 10, [&](std::size_t b, std::size_t e) {
              total.fetch_add(static_cast<long>(e - b), std::memory_order_relaxed);
            });
          }
        });
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), static_cast<long>(kCallers) * 10 * 32 * 100);
}

TEST(ThreadPoolStressTest, ZeroAndTinyRangesAreSafe) {
  int calls = 0;
  parallel_for(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 8, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gtv
