// End-to-end numeric parity for the kernel rewrite.
//
// The tiled matmul, the transpose-free backward, and the sum_rows
// double-accumulation change must not move training numerics: the values
// below are the per-round losses recorded from the pre-rewrite (seed)
// kernels on the exact scenario reproduced here. WGAN-GP training is
// chaotic — any reassociation of a float accumulation chain diverges
// visibly within a few rounds — so 10 rounds inside 1e-5 is a strong
// whole-stack equivalence check covering forward, backward, second-order
// gradient-penalty, and optimizer paths.
//
// If this test fails after an intentional numeric change, re-record the
// table with the scenario below; do not loosen the tolerance.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/gtv.h"
#include "data/datasets.h"

namespace gtv {
namespace {

struct RoundLosses {
  float d_loss, g_loss, gp, wasserstein;
};

// Recorded from the seed (naive i-k-j, transpose-based backward,
// float-accumulating sum_rows) kernels.
const RoundLosses kSeedTrajectory[] = {
    {8.3795166f, -0.113375328f, 0.838695884f, 0.00744251907f},
    {8.35674477f, -0.0976040214f, 0.836404622f, 0.0073018074f},
    {8.3534174f, -0.0709378645f, 0.834269226f, -0.0107247531f},
    {8.41447449f, -0.0717731267f, 0.842740595f, 0.01293163f},
    {8.40245819f, -0.086743556f, 0.84172374f, 0.0147789046f},
    {8.29832649f, -0.10183882f, 0.831079066f, 0.0124648884f},
    {8.29931831f, -0.0902739167f, 0.831032336f, 0.0110049322f},
    {8.42831516f, -0.0929664969f, 0.843275845f, 0.00444301963f},
    {8.18029881f, -0.0583644435f, 0.819030881f, 0.0100096241f},
    {8.13814926f, -0.0942787752f, 0.818361878f, 0.0454691201f},
};

TEST(KernelTrajectoryTest, TenRoundsMatchSeedKernelsWithin1e5) {
  Rng data_rng(17);
  data::Table t = data::make_loan(200, data_rng);
  core::GtvOptions options;
  options.gan.noise_dim = 16;
  options.gan.hidden = 32;
  options.generator_hidden = 32;
  options.gan.batch_size = 32;
  options.gan.d_steps_per_round = 2;
  std::vector<std::vector<std::size_t>> groups(2);
  for (std::size_t c = 0; c < t.n_cols(); ++c) groups[c % 2].push_back(c);
  core::GtvTrainer trainer(data::vertical_split(t, groups), options, 99);
  for (int r = 0; r < 10; ++r) {
    const auto losses = trainer.train_round();
    const RoundLosses& want = kSeedTrajectory[r];
    EXPECT_NEAR(losses.d_loss, want.d_loss, 1e-5) << "round " << r;
    EXPECT_NEAR(losses.g_loss, want.g_loss, 1e-5) << "round " << r;
    EXPECT_NEAR(losses.gp, want.gp, 1e-5) << "round " << r;
    EXPECT_NEAR(losses.wasserstein, want.wasserstein, 1e-5) << "round " << r;
  }
}

}  // namespace
}  // namespace gtv
