#include "net/transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "net/chaos.h"
#include "net/tcp.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace gtv::net {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// --- frame codec -----------------------------------------------------------------

TEST(FrameCodecTest, RoundTrip) {
  Frame frame;
  frame.link = "client0->server";
  frame.seq = 41;
  frame.payload = bytes_of({1, 2, 3, 250, 0, 7});
  const auto encoded = encode_frame(frame);
  ASSERT_EQ(encoded.size(), kFrameHeaderBytes + frame.link.size() + frame.payload.size());
  const Frame back = decode_frame(encoded);
  EXPECT_EQ(back.link, frame.link);
  EXPECT_EQ(back.seq, 41u);
  EXPECT_EQ(back.payload, frame.payload);
}

TEST(FrameCodecTest, EmptyPayloadRoundTrip) {
  Frame frame;
  frame.link = "x";
  const Frame back = decode_frame(encode_frame(frame));
  EXPECT_TRUE(back.payload.empty());
  EXPECT_EQ(back.seq, 0u);
}

TEST(FrameCodecTest, HeaderIsLittleEndianWithMagic) {
  Frame frame;
  frame.link = "ab";
  frame.payload = bytes_of({9});
  const auto encoded = encode_frame(frame);
  // magic "GTVF" little-endian: 46 56 54 47.
  EXPECT_EQ(encoded[0], 0x46u);
  EXPECT_EQ(encoded[1], 0x56u);
  EXPECT_EQ(encoded[2], 0x54u);
  EXPECT_EQ(encoded[3], 0x47u);
  EXPECT_EQ(encoded[4], kProtocolVersion & 0xffu);  // version lo byte
  EXPECT_EQ(encoded[6], 2u);                        // link_len lo byte
  EXPECT_EQ(encoded[8], 1u);                        // payload_len lo byte
}

TEST(FrameCodecTest, BadMagicThrowsWireError) {
  Frame frame;
  frame.link = "l";
  auto encoded = encode_frame(frame);
  encoded[0] ^= 0xff;
  EXPECT_THROW(decode_frame(encoded), WireError);
}

TEST(FrameCodecTest, VersionMismatchThrowsVersionError) {
  Frame frame;
  frame.link = "l";
  auto encoded = encode_frame(frame);
  encoded[4] = static_cast<std::uint8_t>(kProtocolVersion + 1);
  EXPECT_THROW(decode_frame(encoded), VersionError);
}

TEST(FrameCodecTest, FlippedPayloadByteThrowsCorruptFrameError) {
  Frame frame;
  frame.link = "client1->server";
  frame.payload = bytes_of({10, 20, 30});
  auto encoded = encode_frame(frame);
  encoded[encoded.size() - 2] ^= 0x01;
  EXPECT_THROW(decode_frame(encoded), CorruptFrameError);
  // CorruptFrameError must be catchable as the wire/base error types too.
  encoded = encode_frame(frame);
  encoded[kFrameHeaderBytes] ^= 0x80;  // first link byte, also CRC-covered
  EXPECT_THROW(decode_frame(encoded), WireError);
  encoded = encode_frame(frame);
  encoded[kFrameHeaderBytes] ^= 0x80;
  EXPECT_THROW(decode_frame(encoded), TransportError);
}

TEST(FrameCodecTest, TruncationAtEveryLengthThrows) {
  Frame frame;
  frame.link = "a->b";
  frame.payload = bytes_of({1, 2, 3, 4, 5});
  const auto encoded = encode_frame(frame);
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    std::vector<std::uint8_t> cut(encoded.begin(), encoded.begin() + len);
    EXPECT_THROW(decode_frame(cut.data(), cut.size()), WireError) << "len=" << len;
  }
  // Trailing garbage is rejected too.
  auto padded = encoded;
  padded.push_back(0);
  EXPECT_THROW(decode_frame(padded), WireError);
}

TEST(FrameCodecTest, CrcMatchesKnownVector) {
  // CRC-32 (IEEE) of "123456789" is the classic check value 0xcbf43926.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xcbf43926u);
}

// --- Transport sequencing --------------------------------------------------------

TEST(TransportSeqTest, DeliversInOrderAndDropsDuplicates) {
  InProcTransport t;
  t.send("a->b", bytes_of({1}));
  t.send("a->b", bytes_of({1}), /*retransmit=*/true);  // duplicate of seq 0
  t.send("a->b", bytes_of({2}));
  EXPECT_EQ(t.recv("a->b", 0), bytes_of({1}));
  // The duplicate is silently skipped; the next logical payload arrives.
  EXPECT_EQ(t.recv("a->b", 0), bytes_of({2}));
  EXPECT_EQ(t.stale_frames_dropped(), 1u);
}

TEST(TransportSeqTest, RetransmitBeforeFirstSendThrows) {
  InProcTransport t;
  EXPECT_THROW(t.send("a->b", {}, /*retransmit=*/true), TransportError);
}

TEST(TransportSeqTest, LinksSequenceIndependently) {
  InProcTransport t;
  t.send("a->b", bytes_of({1}));
  t.send("b->a", bytes_of({2}));
  EXPECT_EQ(t.recv("b->a", 0), bytes_of({2}));
  EXPECT_EQ(t.recv("a->b", 0), bytes_of({1}));
}

TEST(InProcTransportTest, RecvTimesOutOnEmptyLink) {
  InProcTransport t;
  EXPECT_THROW(t.recv("empty", 0), TimeoutError);
  EXPECT_THROW(t.recv("empty", 20), TimeoutError);
}

TEST(InProcTransportTest, CrossThreadDelivery) {
  InProcTransport t;
  std::thread producer([&] { t.send("x->y", bytes_of({42})); });
  EXPECT_EQ(t.recv("x->y", 2000), bytes_of({42}));
  producer.join();
}

// --- ChaosTransport --------------------------------------------------------------

TEST(ChaosTransportTest, SameSeedSameSchedule) {
  const auto run = [](std::uint64_t seed) {
    ChaosOptions options;
    options.drop_prob = 0.3;
    options.dup_prob = 0.2;
    options.corrupt_prob = 0.2;
    options.seed = seed;
    ChaosTransport chaos(std::make_shared<InProcTransport>(), options);
    for (int i = 0; i < 50; ++i) {
      Frame frame;
      frame.link = i % 2 == 0 ? "a->b" : "b->a";
      frame.seq = static_cast<std::uint64_t>(i);
      frame.payload = bytes_of({i, i + 1});
      chaos.deliver_frame(frame.link, encode_frame(frame));
    }
    return chaos.schedule_digest();
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(ChaosTransportTest, CorruptionIsCaughtByChecksum) {
  ChaosOptions options;
  options.corrupt_prob = 1.0;
  ChaosTransport chaos(std::make_shared<InProcTransport>(), options);
  chaos.send("a->b", bytes_of({1, 2, 3}));
  EXPECT_THROW(chaos.recv("a->b", 0), CorruptFrameError);
  EXPECT_EQ(chaos.stats().corruptions, 1u);
}

TEST(ChaosTransportTest, MeterRecoversDropsByRetransmitting) {
  ChaosOptions options;
  options.drop_prob = 0.5;
  options.seed = 3;
  TrafficMeter meter;
  meter.set_transport(std::make_shared<ChaosTransport>(std::make_shared<InProcTransport>(),
                                                       options));
  RetryPolicy policy;
  policy.backoff_base_ms = 0;  // loopback: no need to sleep between retries
  meter.set_retry_policy(policy);
  Rng rng(1);
  const Tensor t = Tensor::uniform(6, 4, -1.0f, 1.0f, rng);
  for (int i = 0; i < 40; ++i) {
    const Tensor out = meter.transfer("a->b", t);
    EXPECT_FLOAT_EQ(t.max_abs_diff(out), 0.0f);
  }
  // Half the deliveries vanish, so retries must have happened — and every
  // logical transfer still completed with the exact payload.
  EXPECT_GT(meter.stats("a->b").retries, 0u);
  EXPECT_EQ(meter.stats("a->b").messages, 40u);
}

TEST(ChaosTransportTest, MeterRecoversCorruptionAndDuplicates) {
  ChaosOptions options;
  options.drop_prob = 0.2;
  options.dup_prob = 0.3;
  options.corrupt_prob = 0.2;
  options.seed = 11;
  TrafficMeter meter;
  meter.set_transport(std::make_shared<ChaosTransport>(std::make_shared<InProcTransport>(),
                                                       options));
  RetryPolicy policy;
  policy.backoff_base_ms = 0;
  meter.set_retry_policy(policy);
  std::vector<std::size_t> idx = {3, 1, 4, 1, 5, 9, 2, 6};
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(meter.transfer("noisy", idx), idx);
  }
  const LinkStats& stats = meter.stats("noisy");
  EXPECT_EQ(stats.messages, 60u);
  EXPECT_GT(stats.corrupt_frames, 0u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(ChaosTransportTest, CombinedChaosCountersMatchScheduleDigest) {
  // Drop + dup + corrupt on the same link. The chaos schedule is a pure
  // function of the seed (schedule_digest proves the runs saw the same
  // faults), so the recovery counters — both the per-meter LinkStats and
  // the process-wide net.<link>.* registry counters — must be identical
  // across runs and consistent with each other.
  struct RunResult {
    LinkStats stats;
    std::uint64_t digest = 0;
    std::uint64_t reg_retries = 0, reg_timeouts = 0, reg_corrupt = 0;
  };
  auto run_once = [] {
    ChaosOptions options;
    options.drop_prob = 0.25;
    options.dup_prob = 0.25;
    options.corrupt_prob = 0.25;
    options.seed = 17;
    auto chaos =
        std::make_shared<ChaosTransport>(std::make_shared<InProcTransport>(), options);
    TrafficMeter meter;
    meter.set_transport(chaos);
    RetryPolicy policy;
    policy.backoff_base_ms = 0;
    meter.set_retry_policy(policy);
    auto& registry = gtv::obs::MetricsRegistry::instance();
    const std::uint64_t r0 = registry.counter("net.combined.retries").value();
    const std::uint64_t t0 = registry.counter("net.combined.timeouts").value();
    const std::uint64_t c0 = registry.counter("net.combined.corrupt_frames").value();
    const std::vector<std::size_t> idx = {8, 6, 7, 5, 3, 0, 9};
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(meter.transfer("combined", idx), idx);
    }
    RunResult result;
    result.stats = meter.stats("combined");
    result.digest = chaos->schedule_digest();
    result.reg_retries = registry.counter("net.combined.retries").value() - r0;
    result.reg_timeouts = registry.counter("net.combined.timeouts").value() - t0;
    result.reg_corrupt = registry.counter("net.combined.corrupt_frames").value() - c0;
    return result;
  };

  const RunResult a = run_once();
  const RunResult b = run_once();
  ASSERT_EQ(a.digest, b.digest);

  // Every fault class fired at least once under the combined schedule.
  EXPECT_GT(a.stats.retries, 0u);
  EXPECT_GT(a.stats.timeouts, 0u);
  EXPECT_GT(a.stats.corrupt_frames, 0u);
  EXPECT_EQ(a.stats.messages, 50u);

  // Same digest -> same counters, run over run.
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.timeouts, b.stats.timeouts);
  EXPECT_EQ(a.stats.corrupt_frames, b.stats.corrupt_frames);

  // The registry deltas mirror the LinkStats exactly, both runs.
  EXPECT_EQ(a.reg_retries, a.stats.retries);
  EXPECT_EQ(a.reg_timeouts, a.stats.timeouts);
  EXPECT_EQ(a.reg_corrupt, a.stats.corrupt_frames);
  EXPECT_EQ(b.reg_retries, b.stats.retries);
  EXPECT_EQ(b.reg_timeouts, b.stats.timeouts);
  EXPECT_EQ(b.reg_corrupt, b.stats.corrupt_frames);
}

// --- TcpTransport ----------------------------------------------------------------

TEST(TcpTransportTest, ConnectHandshakeAndBidirectionalFrames) {
  TcpTransport server("server");
  const std::uint16_t port = server.listen(0);
  ASSERT_GT(port, 0);

  TcpTransport client("client0");
  client.connect_peer("server", "127.0.0.1", port);
  ASSERT_TRUE(server.wait_for_peer("client0", 5000));
  EXPECT_EQ(client.peers(), std::vector<std::string>{"server"});

  client.send("client0->server", bytes_of({1, 2, 3}));
  EXPECT_EQ(server.recv("client0->server", 5000), bytes_of({1, 2, 3}));
  server.send("server->client0", bytes_of({4, 5}));
  EXPECT_EQ(client.recv("server->client0", 5000), bytes_of({4, 5}));
}

TEST(TcpTransportTest, DemultiplexesLinksAcrossPeers) {
  TcpTransport hub("server");
  const std::uint16_t port = hub.listen(0);
  TcpTransport a("client0"), b("client1");
  a.connect_peer("server", "127.0.0.1", port);
  b.connect_peer("server", "127.0.0.1", port);
  ASSERT_TRUE(hub.wait_for_peer("client0", 5000));
  ASSERT_TRUE(hub.wait_for_peer("client1", 5000));

  b.send("client1->server", bytes_of({11}));
  a.send("client0->server", bytes_of({10}));
  // Each link has its own queue regardless of arrival interleaving.
  EXPECT_EQ(hub.recv("client0->server", 5000), bytes_of({10}));
  EXPECT_EQ(hub.recv("client1->server", 5000), bytes_of({11}));
}

TEST(TcpTransportTest, RecvTimesOut) {
  TcpTransport server("server");
  const std::uint16_t port = server.listen(0);
  TcpTransport client("client0");
  client.connect_peer("server", "127.0.0.1", port);
  EXPECT_THROW(server.recv("client0->server", 50), TimeoutError);
}

TEST(TcpTransportTest, SendToUnknownPeerThrows) {
  TcpTransport lonely("server");
  EXPECT_THROW(lonely.send("server->client0", bytes_of({1})), TransportError);
  EXPECT_THROW(lonely.send("nolink", bytes_of({1})), TransportError);
}

TEST(TcpTransportTest, ConnectRetriesUntilListenerAppears) {
  // Grab an ephemeral port, then release it so the client's first dials
  // fail; the listener comes up shortly after.
  std::uint16_t port = 0;
  {
    TcpTransport probe("probe");
    port = probe.listen(0);
  }
  std::atomic<bool> connected{false};
  TcpTransport client("client0");
  std::thread dialer([&] {
    client.connect_peer("server", "127.0.0.1", port);
    connected.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  TcpTransport server("server");
  server.listen(port);
  dialer.join();
  EXPECT_TRUE(connected.load());
  EXPECT_GT(client.connect_retries(), 0u);
  EXPECT_TRUE(server.wait_for_peer("client0", 5000));
}

// --- clock sync ------------------------------------------------------------------

TEST(ClockSyncTest, EstimatorRecoversSyntheticSkew) {
  // Peer clock runs 2500us ahead; one-way delay 40us each direction.
  std::vector<ClockSyncSample> samples;
  for (int i = 0; i < 8; ++i) {
    const double t0 = 1000.0 * i;
    const double noise = 5.0 * i;  // asymmetric queueing on later samples
    ClockSyncSample s;
    s.t0 = t0;
    s.t1 = t0 + 40 + noise + 2500;  // receive on peer clock
    s.t2 = s.t1 + 3;                // peer turnaround
    s.t3 = t0 + 83 + 2 * noise;     // back on our clock
    samples.push_back(s);
  }
  const ClockSync sync = estimate_clock_offset(samples);
  ASSERT_TRUE(sync.valid);
  // Min-RTT sample is i == 0 (zero noise): exact recovery there.
  EXPECT_NEAR(sync.offset_us, 2500.0, 1.0);
  EXPECT_NEAR(sync.rtt_us, 80.0, 1.0);
}

TEST(ClockSyncTest, EstimatorRejectsEmptyAndNegativeRtt) {
  EXPECT_FALSE(estimate_clock_offset({}).valid);
  ClockSyncSample stepped;  // clock jumped backwards mid-exchange
  stepped.t0 = 100;
  stepped.t1 = 50;
  stepped.t2 = 51;
  stepped.t3 = 60;  // rtt = (60-100) - (51-50) < 0
  EXPECT_FALSE(estimate_clock_offset({stepped}).valid);
}

TEST(ClockSyncTest, HandshakeMeasuresLoopbackOffsetWithinRttBound) {
  TcpTransport server("server");
  const std::uint16_t port = server.listen(0);
  TcpTransport client("client0");
  client.connect_peer("server", "127.0.0.1", port);
  ASSERT_TRUE(server.wait_for_peer("client0", 5000));

  // Same process, same trace clock: the true offset is 0, so the measured
  // one must sit inside the NTP error bound rtt/2 (plus scheduling slack).
  const ClockSync at_client = client.clock_sync("server");
  const ClockSync at_server = server.clock_sync("client0");
  ASSERT_TRUE(at_client.valid);
  ASSERT_TRUE(at_server.valid);
  EXPECT_GE(at_client.rtt_us, 0.0);
  EXPECT_LE(std::abs(at_client.offset_us), at_client.rtt_us / 2 + 1000.0);
  EXPECT_LE(std::abs(at_server.offset_us), at_server.rtt_us / 2 + 1000.0);
  // Both sides agree on the convention peer_clock - self_clock, so the two
  // estimates are (noisy) negations of each other.
  EXPECT_NEAR(at_client.offset_us, -at_server.offset_us,
              at_client.rtt_us + at_server.rtt_us + 2000.0);
  // Unknown peer -> invalid, not a throw.
  EXPECT_FALSE(client.clock_sync("nobody").valid);
}

TEST(ClockSyncTest, DisabledWhenPingsZero) {
  TcpOptions no_sync;
  no_sync.clock_sync_pings = 0;
  TcpTransport server("server", no_sync);
  const std::uint16_t port = server.listen(0);
  TcpTransport client("client0", no_sync);
  client.connect_peer("server", "127.0.0.1", port);
  ASSERT_TRUE(server.wait_for_peer("client0", 5000));
  EXPECT_FALSE(client.clock_sync("server").valid);
  EXPECT_FALSE(server.clock_sync("client0").valid);
}

TEST(TcpTransportTest, ReconnectReplacesDeadConnection) {
  TcpTransport server("server");
  const std::uint16_t port = server.listen(0);

  {
    TcpTransport first("client0");
    first.connect_peer("server", "127.0.0.1", port);
    ASSERT_TRUE(server.wait_for_peer("client0", 5000));
    first.send("client0->server", bytes_of({1}));
    EXPECT_EQ(server.recv("client0->server", 5000), bytes_of({1}));
    EXPECT_EQ(server.conn_generation("client0"), 1u);
  }  // first's socket closes; server's conn is marked dead on reader EOF

  // Give the server's reader a beat to observe the EOF before redialing.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // A second dial under the same party name must replace the dead conn.
  TcpTransport second("client0");
  second.connect_peer("server", "127.0.0.1", port);
  // The fresh transport restarts seq at 0, which Transport::recv would
  // drop as a duplicate — fetch the raw frame like the Collector does.
  second.send("client0->server", bytes_of({2}));
  const Frame frame = decode_frame(server.fetch_frame("client0->server", 5000));
  EXPECT_EQ(frame.payload, bytes_of({2}));
  EXPECT_EQ(server.conn_generation("client0"), 2u);
  EXPECT_TRUE(server.clock_sync("client0").valid);
}

TEST(TcpTransportTest, MeterSplitEndpointsCarryTensors) {
  TcpTransport server_t("server");
  const std::uint16_t port = server_t.listen(0);
  TcpTransport client_t("client0");
  client_t.connect_peer("server", "127.0.0.1", port);
  ASSERT_TRUE(server_t.wait_for_peer("client0", 5000));

  // Two meters, one per process in real deployments.
  TrafficMeter sender, receiver;
  sender.set_transport(std::shared_ptr<Transport>(&client_t, [](Transport*) {}));
  receiver.set_transport(std::shared_ptr<Transport>(&server_t, [](Transport*) {}));

  Rng rng(5);
  const Tensor t = Tensor::normal(8, 3, 0.0f, 1.0f, rng);
  sender.send_tensor("client0->server", t);
  const Tensor out = receiver.recv_tensor("client0->server");
  EXPECT_FLOAT_EQ(t.max_abs_diff(out), 0.0f);
  // Sender charges the traffic; the receiver does not double-count.
  EXPECT_EQ(sender.stats("client0->server").messages, 1u);
  EXPECT_EQ(receiver.stats("client0->server").messages, 0u);
}

}  // namespace
}  // namespace gtv::net
