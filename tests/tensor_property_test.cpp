// Property-style sweeps over random shapes/seeds (TEST_P): algebraic
// identities the tensor kernels must satisfy.
#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace gtv {
namespace {

class TensorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Rng rng_{GetParam()};
  std::size_t dim() { return 1 + rng_.uniform_index(12); }
};

TEST_P(TensorPropertyTest, AdditionCommutesAndAssociates) {
  const std::size_t r = dim(), c = dim();
  Tensor a = Tensor::normal(r, c, 0, 1, rng_);
  Tensor b = Tensor::normal(r, c, 0, 1, rng_);
  Tensor t = Tensor::normal(r, c, 0, 1, rng_);
  EXPECT_LT((a + b).max_abs_diff(b + a), 1e-6f);
  EXPECT_LT(((a + b) + t).max_abs_diff(a + (b + t)), 1e-5f);
}

TEST_P(TensorPropertyTest, MatmulTransposeIdentity) {
  const std::size_t m = dim(), k = dim(), n = dim();
  Tensor a = Tensor::normal(m, k, 0, 1, rng_);
  Tensor b = Tensor::normal(k, n, 0, 1, rng_);
  // (AB)^T == B^T A^T
  Tensor lhs = a.matmul(b).transpose();
  Tensor rhs = b.transpose().matmul(a.transpose());
  EXPECT_LT(lhs.max_abs_diff(rhs), 1e-4f);
}

TEST_P(TensorPropertyTest, MatmulDistributesOverAddition) {
  const std::size_t m = dim(), k = dim(), n = dim();
  Tensor a = Tensor::normal(m, k, 0, 1, rng_);
  Tensor b = Tensor::normal(k, n, 0, 1, rng_);
  Tensor c = Tensor::normal(k, n, 0, 1, rng_);
  EXPECT_LT(a.matmul(b + c).max_abs_diff(a.matmul(b) + a.matmul(c)), 1e-4f);
}

TEST_P(TensorPropertyTest, SliceConcatRoundTrip) {
  const std::size_t r = dim(), c = 2 + rng_.uniform_index(10);
  Tensor a = Tensor::normal(r, c, 0, 1, rng_);
  const std::size_t cut = 1 + rng_.uniform_index(c - 1);
  Tensor back = Tensor::concat_cols({a.slice_cols(0, cut), a.slice_cols(cut, c)});
  EXPECT_FLOAT_EQ(a.max_abs_diff(back), 0.0f);
}

TEST_P(TensorPropertyTest, GatherOfIotaIsIdentity) {
  const std::size_t r = 1 + dim(), c = dim();
  Tensor a = Tensor::normal(r, c, 0, 1, rng_);
  std::vector<std::size_t> iota(r);
  for (std::size_t i = 0; i < r; ++i) iota[i] = i;
  EXPECT_FLOAT_EQ(a.max_abs_diff(a.gather_rows(iota)), 0.0f);
}

TEST_P(TensorPropertyTest, SumDecomposesByRowsAndCols) {
  const std::size_t r = dim(), c = dim();
  Tensor a = Tensor::normal(r, c, 0, 1, rng_);
  EXPECT_NEAR(a.sum_rows().sum(), a.sum(), 1e-3f);
  EXPECT_NEAR(a.sum_cols().sum(), a.sum(), 1e-3f);
}

TEST_P(TensorPropertyTest, RowNormsNonNegativeAndHomogeneous) {
  const std::size_t r = dim(), c = dim();
  Tensor a = Tensor::normal(r, c, 0, 1, rng_);
  Tensor n1 = a.row_norms();
  Tensor n2 = a.mul_scalar(-2.0f).row_norms();
  for (std::size_t i = 0; i < r; ++i) {
    EXPECT_GE(n1(i, 0), 0.0f);
    EXPECT_NEAR(n2(i, 0), 2.0f * n1(i, 0), 1e-4f);
  }
}

TEST_P(TensorPropertyTest, PermutationPreservesMultiset) {
  const std::size_t r = 2 + dim(), c = dim();
  Tensor a = Tensor::normal(r, c, 0, 1, rng_);
  auto perm = rng_.permutation(r);
  Tensor shuffled = a.gather_rows(perm);
  EXPECT_NEAR(shuffled.sum(), a.sum(), 1e-3f);
  EXPECT_FLOAT_EQ(shuffled.max(), a.max());
  EXPECT_FLOAT_EQ(shuffled.min(), a.min());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace gtv
