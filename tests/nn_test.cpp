#include "nn/module.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"

namespace gtv::nn {
namespace {

TEST(LinearTest, ShapesAndForward) {
  Rng rng(1);
  Linear lin(3, 5, rng);
  EXPECT_EQ(lin.parameters().size(), 2u);
  EXPECT_EQ(lin.parameter_count(), 3u * 5u + 5u);
  Var x(Tensor::ones(2, 3));
  Var y = lin.forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 5u);
  EXPECT_THROW(lin.forward(Var(Tensor::ones(2, 4))), std::invalid_argument);
  EXPECT_THROW(Linear(0, 3, rng), std::invalid_argument);
}

TEST(LinearTest, GradientFlowsToParameters) {
  Rng rng(2);
  Linear lin(4, 2, rng);
  Var x(Tensor::ones(3, 4));
  ag::backward(ag::sum_all(lin.forward(x)));
  EXPECT_FALSE(lin.weight().grad().empty());
  // d/dW sum(xW + b) with x = ones: every weight grad = batch size.
  EXPECT_NEAR(lin.weight().grad()(0, 0), 3.0f, 1e-5f);
  EXPECT_NEAR(lin.bias().grad()(0, 1), 3.0f, 1e-5f);
}

TEST(BatchNormTest, NormalizesInTraining) {
  Rng rng(3);
  BatchNorm1d bn(4);
  bn.set_training(true);
  Var x(Tensor::normal(64, 4, 5.0f, 3.0f, rng));
  Var y = bn.forward(x);
  Tensor mu = y.value().mean_rows();
  for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(mu(0, c), 0.0f, 1e-4f);
  // Unit variance per column.
  Tensor centered = y.value() - mu;
  Tensor var = (centered * centered).mean_rows();
  for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(var(0, c), 1.0f, 1e-2f);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(4);
  BatchNorm1d bn(2);
  bn.set_training(true);
  // Feed several batches with mean 10 to build running stats.
  for (int i = 0; i < 200; ++i) {
    Var x(Tensor::normal(32, 2, 10.0f, 1.0f, rng));
    bn.forward(x);
  }
  bn.set_training(false);
  // A batch at the training mean should normalize to ~0.
  Var y = bn.forward(Var(Tensor::full(8, 2, 10.0f)));
  EXPECT_NEAR(y.value()(0, 0), 0.0f, 0.2f);
  // A single row works in eval mode (no batch statistics needed).
  Var z = bn.forward(Var(Tensor::full(1, 2, 10.0f)));
  EXPECT_EQ(z.rows(), 1u);
}

TEST(BatchNormTest, BackwardRuns) {
  Rng rng(5);
  BatchNorm1d bn(3);
  Var x(Tensor::normal(16, 3, 0.0f, 1.0f, rng), true);
  ag::backward(ag::sum_all(ag::square(bn.forward(x))));
  EXPECT_FALSE(x.grad().empty());
  EXPECT_TRUE(x.grad().all_finite());
}

TEST(DropoutTest, TrainAndEvalBehaviour) {
  Rng rng(6);
  Dropout drop(0.5f, rng);
  Var x(Tensor::ones(100, 10));
  drop.set_training(true);
  Var y = drop.forward(x);
  // Inverted dropout: surviving entries are scaled to 2, ~half survive.
  int zeros = 0, twos = 0;
  for (std::size_t i = 0; i < y.value().size(); ++i) {
    const float v = y.value().values()[i];
    if (v == 0.0f) ++zeros;
    else if (std::abs(v - 2.0f) < 1e-5f) ++twos;
    else FAIL() << "unexpected value " << v;
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.08);
  EXPECT_EQ(zeros + twos, 1000);
  drop.set_training(false);
  Var z = drop.forward(x);
  EXPECT_FLOAT_EQ(z.value().max_abs_diff(x.value()), 0.0f);
  EXPECT_THROW(Dropout(1.0f, rng), std::invalid_argument);
}

TEST(SequentialTest, ComposesAndCollectsParams) {
  Rng rng(7);
  Sequential seq;
  seq.emplace<Linear>(4, 8, rng);
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.parameters().size(), 4u);
  Var y = seq.forward(Var(Tensor::ones(5, 4)));
  EXPECT_EQ(y.cols(), 2u);
}

TEST(ResidualBlockTest, ConcatSkipWidens) {
  Rng rng(8);
  ResidualBlock block(10, 16, rng);
  EXPECT_EQ(block.out_features(), 26u);
  Var y = block.forward(Var(Tensor::ones(3, 10)));
  EXPECT_EQ(y.cols(), 26u);
  // The skip part is the raw input.
  for (std::size_t c = 16; c < 26; ++c) EXPECT_FLOAT_EQ(y.value()(0, c), 1.0f);
  EXPECT_EQ(block.parameters().size(), 4u);  // fc W+b, bn gamma+beta
}

TEST(FNBlockTest, ShapeAndEvalDeterminism) {
  Rng rng(9);
  FNBlock block(6, 12, rng, 0.2f, 0.5f);
  EXPECT_EQ(block.out_features(), 12u);
  block.set_training(false);
  Var x(Tensor::ones(2, 6));
  Var y1 = block.forward(x);
  Var y2 = block.forward(x);
  EXPECT_FLOAT_EQ(y1.value().max_abs_diff(y2.value()), 0.0f);
  EXPECT_EQ(y1.cols(), 12u);
}

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize ||x - target||^2 from zero; Adam should converge.
  Var x(Tensor::zeros(1, 4), true);
  Tensor target = Tensor::of({{1, -2, 3, 0.5}});
  AdamOptions opts;
  opts.lr = 0.1f;
  opts.weight_decay = 0.0f;
  Adam optimizer({x}, opts);
  for (int i = 0; i < 800; ++i) {
    optimizer.zero_grad();
    Var loss = ag::sum_all(ag::square(ag::sub(x, ag::constant(target))));
    ag::backward(loss);
    optimizer.step();
  }
  EXPECT_LT(x.value().max_abs_diff(target), 1e-2f);
}

TEST(AdamTest, LinearRegressionConverges) {
  Rng rng(10);
  // y = x @ w_true, fit a Linear layer.
  Tensor w_true = Tensor::of({{2.0f}, {-1.0f}, {0.5f}});
  Tensor x_data = Tensor::normal(64, 3, 0.0f, 1.0f, rng);
  Tensor y_data = x_data.matmul(w_true);
  Linear lin(3, 1, rng);
  AdamOptions opts;
  opts.lr = 0.05f;
  opts.weight_decay = 0.0f;
  Adam optimizer(lin.parameters(), opts);
  float last_loss = 1e9f;
  for (int i = 0; i < 1000; ++i) {
    optimizer.zero_grad();
    Var pred = lin.forward(Var(x_data));
    Var loss = ag::mean_all(ag::square(ag::sub(pred, ag::constant(y_data))));
    ag::backward(loss);
    optimizer.step();
    last_loss = loss.value()(0, 0);
  }
  EXPECT_LT(last_loss, 1e-3f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Var used(Tensor::ones(1, 1), true);
  Var unused(Tensor::ones(1, 1), true);
  AdamOptions opts;
  opts.weight_decay = 0.0f;  // isolate the gradient path
  Adam optimizer({used, unused}, opts);
  optimizer.zero_grad();
  ag::backward(ag::square(used));
  optimizer.step();  // must not throw on `unused`
  EXPECT_FLOAT_EQ(unused.value()(0, 0), 1.0f);
  EXPECT_NE(used.value()(0, 0), 1.0f);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(11);
  Linear lin(2, 2, rng);
  ag::backward(ag::sum_all(lin.forward(Var(Tensor::ones(1, 2)))));
  EXPECT_NE(lin.weight().grad().sum(), 0.0f);
  lin.zero_grad();
  EXPECT_FLOAT_EQ(lin.weight().grad().sum(), 0.0f);
}

}  // namespace
}  // namespace gtv::nn
