#include "encode/cond.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gtv::encode {
namespace {

using data::ColumnType;
using data::Table;

Table two_cat_table(std::size_t rows, Rng& rng) {
  // Imbalanced 'gender' (80/20) and 'loan' (3 classes).
  Table t({{"income", ColumnType::kContinuous, {}, {}},
           {"gender", ColumnType::kCategorical, {"M", "F"}, {}},
           {"loan", ColumnType::kCategorical, {"none", "small", "large"}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    t.append_row({rng.normal(50, 10), static_cast<double>(rng.categorical({8, 2})),
                  static_cast<double>(rng.categorical({6, 3, 1}))});
  }
  return t;
}

struct Fixture {
  Rng rng{1};
  Table table;
  TableEncoder encoder;
  Fixture() : table(two_cat_table(1000, rng)) { encoder.fit(table, EncoderOptions{}, rng); }
};

TEST(CondTest, CvWidthIsSumOfCardinalities) {
  Fixture f;
  ConditionalSampler sampler(f.encoder, f.table);
  EXPECT_EQ(sampler.cv_width(), 5u);  // 2 + 3
  EXPECT_TRUE(sampler.has_discrete());
  ASSERT_EQ(sampler.cv_offsets().size(), 2u);
  EXPECT_EQ(sampler.cv_offsets()[0], 0u);
  EXPECT_EQ(sampler.cv_offsets()[1], 2u);
}

TEST(CondTest, EveryCvRowIsOneHot) {
  Fixture f;
  ConditionalSampler sampler(f.encoder, f.table);
  auto sample = sampler.sample_train(128, f.rng);
  ASSERT_EQ(sample.cv.rows(), 128u);
  ASSERT_EQ(sample.cv.cols(), 5u);
  for (std::size_t b = 0; b < 128; ++b) {
    float total = 0;
    for (std::size_t c = 0; c < 5; ++c) total += sample.cv(b, c);
    EXPECT_FLOAT_EQ(total, 1.0f);
  }
}

TEST(CondTest, SampledRowsMatchCondition) {
  // The invariant the paper's Algorithm 1 relies on: T_p[idx_p] rows carry
  // the category indicated by the CV.
  Fixture f;
  ConditionalSampler sampler(f.encoder, f.table);
  auto sample = sampler.sample_train(256, f.rng);
  const auto& discrete = f.encoder.discrete_spans();
  for (std::size_t b = 0; b < 256; ++b) {
    const auto& ds = discrete.at(sample.span[b]);
    EXPECT_DOUBLE_EQ(f.table.cell(sample.rows[b], ds.source_column),
                     static_cast<double>(sample.category[b]));
  }
}

TEST(CondTest, LogFrequencyOversamplesMinority) {
  Fixture f;
  ConditionalSampler sampler(f.encoder, f.table);
  std::size_t minority = 0, total_gender = 0;
  for (int it = 0; it < 40; ++it) {
    auto sample = sampler.sample_train(128, f.rng);
    for (std::size_t b = 0; b < 128; ++b) {
      if (sample.span[b] == 0) {  // gender span
        ++total_gender;
        minority += (sample.category[b] == 1);
      }
    }
  }
  const double minority_rate = static_cast<double>(minority) / total_gender;
  // Raw frequency would give 0.2; log-frequency pushes toward parity.
  EXPECT_GT(minority_rate, 0.3);
  EXPECT_LT(minority_rate, 0.65);
}

TEST(CondTest, OriginalFrequencyMatchesData) {
  Fixture f;
  ConditionalSampler sampler(f.encoder, f.table);
  Tensor cv = sampler.sample_original(4000, f.rng);
  // Count category picks within the gender span.
  std::size_t male = 0, female = 0;
  for (std::size_t b = 0; b < 4000; ++b) {
    male += cv(b, 0) == 1.0f;
    female += cv(b, 1) == 1.0f;
  }
  const double f_rate = static_cast<double>(female) / (male + female);
  EXPECT_NEAR(f_rate, 0.2, 0.06);
}

TEST(CondTest, TargetMaskAlignsWithEncodedSpans) {
  Fixture f;
  ConditionalSampler sampler(f.encoder, f.table);
  auto sample = sampler.sample_train(64, f.rng);
  Tensor mask = sampler.target_mask(sample);
  ASSERT_EQ(mask.cols(), f.encoder.total_width());
  Tensor encoded = f.encoder.encode(f.table.gather_rows(sample.rows), f.rng);
  // For each row, the masked position must be hot in the encoded real row.
  for (std::size_t b = 0; b < 64; ++b) {
    float hit = 0;
    for (std::size_t c = 0; c < mask.cols(); ++c) {
      if (mask(b, c) == 1.0f) hit = encoded(b, c);
    }
    EXPECT_FLOAT_EQ(hit, 1.0f);
  }
}

TEST(CondTest, NoDiscreteColumnsDegradesGracefully) {
  Rng rng(2);
  Table t({{"x", ColumnType::kContinuous, {}, {}}});
  for (int i = 0; i < 50; ++i) t.append_row({rng.normal()});
  TableEncoder enc;
  enc.fit(t, EncoderOptions{}, rng);
  ConditionalSampler sampler(enc, t);
  EXPECT_FALSE(sampler.has_discrete());
  EXPECT_EQ(sampler.cv_width(), 0u);
  auto sample = sampler.sample_train(16, rng);
  EXPECT_EQ(sample.cv.cols(), 0u);
  EXPECT_EQ(sample.rows.size(), 16u);
  for (auto r : sample.rows) EXPECT_LT(r, 50u);
  Tensor original = sampler.sample_original(8, rng);
  EXPECT_EQ(original.cols(), 0u);
}

TEST(CondTest, EmptyTableThrows) {
  Rng rng(3);
  Table t = two_cat_table(10, rng);
  TableEncoder enc;
  enc.fit(t, EncoderOptions{}, rng);
  Table empty(t.schema());
  EXPECT_THROW(ConditionalSampler(enc, empty), std::invalid_argument);
}

}  // namespace
}  // namespace gtv::encode
