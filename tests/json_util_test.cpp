// obs::json emitter helpers — the single shared home for the string/number
// escaping that metrics, health and Prometheus emission all lean on.
#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace gtv::obs::json {
namespace {

TEST(JsonEscapeTest, PassesPlainStringsThrough) {
  EXPECT_EQ(escape("net.server->client0.bytes"), "net.server->client0.bytes");
  EXPECT_EQ(escape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndWhitespaceControls) {
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb\rc\td"), "a\\nb\\rc\\td");
}

TEST(JsonEscapeTest, UEscapesOtherControlCharacters) {
  EXPECT_EQ(escape(std::string("a") + '\x01' + "b"), "a\\u0001b");
  EXPECT_EQ(escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscapeTest, EverythingEscapedParsesBack) {
  // The contract with the reader half of obs::json: a string embedded via
  // escape() round-trips through parse().
  std::string nasty;
  for (int c = 1; c < 0x80; ++c) nasty.push_back(static_cast<char>(c));
  const Value doc = parse("{\"s\":\"" + escape(nasty) + "\"}");
  EXPECT_EQ(doc.at("s").str, nasty);
}

TEST(JsonEscapeTest, MetricsJsonEscapeDelegatesHere) {
  // obs::json_escape (metrics.h) is now a thin wrapper — identical output.
  const std::string sample = "a\"b\\c\nd\x02";
  EXPECT_EQ(obs::json_escape(sample), escape(sample));
}

TEST(SafeNumTest, ClampsNonFiniteOnly) {
  EXPECT_EQ(safe_num(0.5), 0.5);
  EXPECT_EQ(safe_num(-123.0), -123.0);
  EXPECT_EQ(safe_num(std::numeric_limits<double>::quiet_NaN()), 0.0);
  EXPECT_EQ(safe_num(std::numeric_limits<double>::infinity()), 1e308);
  EXPECT_EQ(safe_num(-std::numeric_limits<double>::infinity()), -1e308);
}

TEST(PromLabelEscapeTest, EscapesExactlyThePrometheusSet) {
  EXPECT_EQ(prom_label_escape("client0"), "client0");
  EXPECT_EQ(prom_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_label_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_label_escape("a\nb"), "a\\nb");
  // Unlike JSON escaping, other bytes — tabs included — pass untouched.
  EXPECT_EQ(prom_label_escape("a\tb"), "a\tb");
}

}  // namespace
}  // namespace gtv::obs::json
