#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/chaos.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace gtv::eval {
namespace {

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(accuracy({1}, {1}), 1.0);
  EXPECT_THROW(accuracy({}, {}), std::invalid_argument);
  EXPECT_THROW(accuracy({1, 2}, {1}), std::invalid_argument);
}

TEST(MetricsTest, MacroF1PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(macro_f1({0, 1, 0, 1}, {0, 1, 0, 1}, 2), 1.0);
  EXPECT_DOUBLE_EQ(macro_f1({0, 0, 0, 0}, {1, 1, 1, 1}, 2), 0.0);
}

TEST(MetricsTest, MacroF1HandlesImbalance) {
  // 9 of class 0 predicted right, the one class-1 sample missed.
  std::vector<std::size_t> truth(10, 0), pred(10, 0);
  truth[9] = 1;
  const double f1 = macro_f1(truth, pred, 2);
  // class0 F1 = 18/19, class1 F1 = 0 -> macro ~0.4737
  EXPECT_NEAR(f1, 0.5 * 18.0 / 19.0, 1e-9);
}

TEST(MetricsTest, BinaryAucPerfectSeparation) {
  std::vector<std::size_t> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(binary_auc(truth, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(binary_auc(truth, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(MetricsTest, BinaryAucChanceAndTies) {
  // All scores tied -> AUC 0.5 with tie correction.
  EXPECT_DOUBLE_EQ(binary_auc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
  EXPECT_THROW(binary_auc({0, 0}, {0.1, 0.2}), std::invalid_argument);
}

TEST(MetricsTest, MacroAucMulticlassPerfect) {
  std::vector<std::size_t> truth = {0, 1, 2};
  Tensor scores = Tensor::of({{0.9, 0.05, 0.05}, {0.1, 0.8, 0.1}, {0.0, 0.2, 0.8}});
  EXPECT_DOUBLE_EQ(macro_auc(truth, scores), 1.0);
}

TEST(MetricsTest, MacroAucSkipsAbsentClasses) {
  std::vector<std::size_t> truth = {0, 1, 0, 1};  // class 2 never appears
  Tensor scores = Tensor::of(
      {{0.8, 0.1, 0.1}, {0.2, 0.7, 0.1}, {0.9, 0.05, 0.05}, {0.1, 0.8, 0.1}});
  EXPECT_DOUBLE_EQ(macro_auc(truth, scores), 1.0);
}

// TrafficMeter::reset() rewinds only the meter's local view; the registry
// counters are cumulative across meters and resets — including the
// reliability counters (retries/timeouts/corrupt_frames) introduced with
// the transport layer.
TEST(TrafficCountersTest, MeterResetKeepsCumulativeRegistryCounters) {
  auto& registry = obs::MetricsRegistry::instance();
  const std::string link = "metrics-reset-test->peer";
  const auto bytes_before = registry.counter("net." + link + ".bytes").value();
  const auto retries_before = registry.counter("net." + link + ".retries").value();
  const auto timeouts_before = registry.counter("net." + link + ".timeouts").value();

  net::ChaosOptions chaos;
  chaos.drop_prob = 0.5;
  chaos.seed = 17;
  net::TrafficMeter meter;
  meter.set_transport(std::make_shared<net::ChaosTransport>(
      std::make_shared<net::InProcTransport>(), chaos));
  net::RetryPolicy policy;
  policy.backoff_base_ms = 0;
  meter.set_retry_policy(policy);

  const std::vector<std::size_t> idx = {1, 2, 3, 4};
  for (int i = 0; i < 30; ++i) meter.transfer(link, idx);
  const net::LinkStats first = meter.stats(link);
  ASSERT_GT(first.retries, 0u);
  ASSERT_EQ(first.retries, first.timeouts);  // drops surface as recv timeouts

  meter.reset();
  EXPECT_EQ(meter.stats(link).bytes, 0u);
  EXPECT_EQ(meter.stats(link).retries, 0u);
  // Registry still carries the pre-reset totals...
  EXPECT_EQ(registry.counter("net." + link + ".bytes").value() - bytes_before,
            first.bytes);
  EXPECT_EQ(registry.counter("net." + link + ".retries").value() - retries_before,
            first.retries);
  EXPECT_EQ(registry.counter("net." + link + ".timeouts").value() - timeouts_before,
            first.timeouts);

  // ...and keeps accumulating across the reset while the local stats start
  // from zero again.
  for (int i = 0; i < 30; ++i) meter.transfer(link, idx);
  const net::LinkStats second = meter.stats(link);
  EXPECT_EQ(second.bytes, first.bytes);  // same traffic, fresh local count
  // The chaos RNG continued across the reset, so second.retries need not
  // equal first.retries — the invariant is that the registry delta equals
  // the sum of both phases.
  EXPECT_EQ(registry.counter("net." + link + ".bytes").value() - bytes_before,
            first.bytes + second.bytes);
  EXPECT_EQ(registry.counter("net." + link + ".retries").value() - retries_before,
            first.retries + second.retries);
  EXPECT_EQ(registry.counter("net." + link + ".timeouts").value() - timeouts_before,
            first.timeouts + second.timeouts);
}

// --- Prometheus exposition -------------------------------------------------

// The registry is a process-wide singleton shared with every other test in
// this binary, so these tests register uniquely-named metrics and assert on
// their own lines instead of comparing the whole dump.

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusTest, SanitizesNamesAndEmitsTypedSamples) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("prom.test-a->b.bytes").add(7);
  registry.gauge("prom.test.gauge").set(2.5);
  const std::string text = registry.to_prometheus();
  // '.', '-' and '>' all sanitize to '_'; the raw name never appears.
  EXPECT_NE(text.find("# TYPE prom_test_a__b_bytes counter\n"), std::string::npos);
  EXPECT_NE(text.find("prom_test_a__b_bytes 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prom_test_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("prom_test_gauge 2.5\n"), std::string::npos);
  EXPECT_EQ(text.find("prom.test"), std::string::npos);
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeWithInfAndSumCount) {
  auto& registry = obs::MetricsRegistry::instance();
  auto& hist = registry.histogram("prom.test.hist", {1.0, 10.0, 100.0});
  hist.record(0.5);
  hist.record(5.0);
  hist.record(5.0);
  hist.record(50.0);
  hist.record(5000.0);  // overflow bucket
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE prom_test_hist histogram\n"), std::string::npos);
  EXPECT_NE(text.find("prom_test_hist_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("prom_test_hist_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("prom_test_hist_bucket{le=\"100\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("prom_test_hist_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("prom_test_hist_count 5\n"), std::string::npos);
  // Cumulativeness holds for every histogram in the dump, whatever other
  // tests registered: bucket counts never decrease and +Inf == _count.
  std::map<std::string, std::uint64_t> last_bucket;
  std::map<std::string, std::uint64_t> inf_bucket, count_sample;
  for (const std::string& line : split_lines(text)) {
    const std::size_t brace = line.find("_bucket{le=\"");
    if (brace != std::string::npos) {
      const std::string family = line.substr(0, brace);
      const std::size_t close = line.find("\"} ");
      ASSERT_NE(close, std::string::npos) << line;
      const std::uint64_t value = std::stoull(line.substr(close + 3));
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        inf_bucket[family] = value;
      } else {
        EXPECT_GE(value, last_bucket[family]) << line;
      }
      last_bucket[family] = std::max(last_bucket[family], value);
    } else if (line.size() > 7 &&
               line.rfind("# ", 0) != 0 &&
               line.find("_count ") != std::string::npos) {
      const std::size_t at = line.find("_count ");
      count_sample[line.substr(0, at)] = std::stoull(line.substr(at + 7));
    }
  }
  for (const auto& [family, inf] : inf_bucket) {
    auto it = count_sample.find(family);
    ASSERT_NE(it, count_sample.end()) << family;
    EXPECT_EQ(inf, it->second) << family;
  }
}

}  // namespace
}  // namespace gtv::eval
