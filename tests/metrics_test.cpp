#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace gtv::eval {
namespace {

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(accuracy({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(accuracy({1}, {1}), 1.0);
  EXPECT_THROW(accuracy({}, {}), std::invalid_argument);
  EXPECT_THROW(accuracy({1, 2}, {1}), std::invalid_argument);
}

TEST(MetricsTest, MacroF1PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(macro_f1({0, 1, 0, 1}, {0, 1, 0, 1}, 2), 1.0);
  EXPECT_DOUBLE_EQ(macro_f1({0, 0, 0, 0}, {1, 1, 1, 1}, 2), 0.0);
}

TEST(MetricsTest, MacroF1HandlesImbalance) {
  // 9 of class 0 predicted right, the one class-1 sample missed.
  std::vector<std::size_t> truth(10, 0), pred(10, 0);
  truth[9] = 1;
  const double f1 = macro_f1(truth, pred, 2);
  // class0 F1 = 18/19, class1 F1 = 0 -> macro ~0.4737
  EXPECT_NEAR(f1, 0.5 * 18.0 / 19.0, 1e-9);
}

TEST(MetricsTest, BinaryAucPerfectSeparation) {
  std::vector<std::size_t> truth = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(binary_auc(truth, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(binary_auc(truth, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(MetricsTest, BinaryAucChanceAndTies) {
  // All scores tied -> AUC 0.5 with tie correction.
  EXPECT_DOUBLE_EQ(binary_auc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
  EXPECT_THROW(binary_auc({0, 0}, {0.1, 0.2}), std::invalid_argument);
}

TEST(MetricsTest, MacroAucMulticlassPerfect) {
  std::vector<std::size_t> truth = {0, 1, 2};
  Tensor scores = Tensor::of({{0.9, 0.05, 0.05}, {0.1, 0.8, 0.1}, {0.0, 0.2, 0.8}});
  EXPECT_DOUBLE_EQ(macro_auc(truth, scores), 1.0);
}

TEST(MetricsTest, MacroAucSkipsAbsentClasses) {
  std::vector<std::size_t> truth = {0, 1, 0, 1};  // class 2 never appears
  Tensor scores = Tensor::of(
      {{0.8, 0.1, 0.1}, {0.2, 0.7, 0.1}, {0.9, 0.05, 0.05}, {0.1, 0.8, 0.1}});
  EXPECT_DOUBLE_EQ(macro_auc(truth, scores), 1.0);
}

}  // namespace
}  // namespace gtv::eval
