// Parameterized gradient sweeps: random compositions of the op library
// checked against central finite differences across many seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/autograd.h"

namespace gtv::ag {
namespace {

float eval_scalar(const std::function<Var(const Var&)>& f, const Tensor& x) {
  NoGradGuard no_grad;
  return f(Var(x)).value()(0, 0);
}

void expect_grad_matches(const std::function<Var(const Var&)>& f, const Tensor& x0,
                         float tol = 3e-2f) {
  Var x(x0, true);
  backward(f(x));
  const float h = 1e-3f;
  for (std::size_t r = 0; r < x0.rows(); ++r) {
    for (std::size_t c = 0; c < x0.cols(); ++c) {
      Tensor plus = x0, minus = x0;
      plus(r, c) += h;
      minus(r, c) -= h;
      const float numeric = (eval_scalar(f, plus) - eval_scalar(f, minus)) / (2 * h);
      EXPECT_NEAR(x.grad()(r, c), numeric, tol) << "(" << r << "," << c << ")";
    }
  }
}

class AutogradPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AutogradPropertyTest, RandomSmoothComposition) {
  Rng rng(GetParam());
  const std::size_t r = 2 + rng.uniform_index(3), c = 2 + rng.uniform_index(3);
  Tensor x0 = Tensor::uniform(r, c, 0.3f, 1.5f, rng);
  Tensor w0 = Tensor::normal(c, 3, 0.0f, 0.7f, rng);
  expect_grad_matches(
      [&](const Var& x) {
        Var h = tanh(matmul(x, constant(w0)));
        Var s = sigmoid(sum_cols(h));
        return mean_all(mul(s, s));
      },
      x0);
}

TEST_P(AutogradPropertyTest, SoftmaxCrossEntropyComposition) {
  Rng rng(GetParam() ^ 0xabc);
  const std::size_t n = 2 + rng.uniform_index(3), k = 2 + rng.uniform_index(4);
  Tensor x0 = Tensor::normal(n, k, 0.0f, 1.5f, rng);
  Tensor target(n, k);
  for (std::size_t i = 0; i < n; ++i) target(i, rng.uniform_index(k)) = 1.0f;
  expect_grad_matches(
      [&](const Var& x) {
        return neg(mean_all(mul(log_softmax_rows(x), constant(target))));
      },
      x0);
}

TEST_P(AutogradPropertyTest, NormPenaltyComposition) {
  Rng rng(GetParam() ^ 0xdef);
  const std::size_t n = 2 + rng.uniform_index(4), c = 2 + rng.uniform_index(4);
  Tensor x0 = Tensor::uniform(n, c, 0.2f, 1.0f, rng);
  expect_grad_matches(
      [&](const Var& x) {
        Var norms = row_norms(x);
        return mean_all(square(add_scalar(norms, -1.0f)));
      },
      x0);
}

TEST_P(AutogradPropertyTest, SliceConcatComposition) {
  Rng rng(GetParam() ^ 0x123);
  const std::size_t n = 2 + rng.uniform_index(3);
  const std::size_t c = 4 + rng.uniform_index(4);
  Tensor x0 = Tensor::normal(n, c, 0.0f, 1.0f, rng);
  const std::size_t cut = 1 + rng.uniform_index(c - 2);
  expect_grad_matches(
      [&](const Var& x) {
        Var left = mul_scalar(slice_cols(x, 0, cut), 2.0f);
        Var right = tanh(slice_cols(x, cut, c));
        return sum_all(square(concat_cols({left, right})));
      },
      x0);
}

TEST_P(AutogradPropertyTest, SecondOrderOfQuadraticFormIsConstant) {
  Rng rng(GetParam() ^ 0x777);
  const std::size_t d = 2 + rng.uniform_index(3);
  Tensor a0 = Tensor::normal(d, d, 0.0f, 0.8f, rng);
  // f(x) = x A x^T (1xd input); Hessian = A + A^T, independent of x.
  Tensor x0 = Tensor::normal(1, d, 0.0f, 1.0f, rng);
  Var x(x0, true);
  Var f = sum_all(mul(matmul(x, constant(a0)), x));
  Var g = grad(f, {x}, /*create_graph=*/true)[0];
  // d/dx of sum(g) = sum of Hessian rows.
  Var gg = grad(sum_all(g), {x})[0];
  Tensor hess_row_sums(1, d);
  for (std::size_t j = 0; j < d; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < d; ++i) acc += a0(i, j) + a0(j, i);
    hess_row_sums(0, j) = static_cast<float>(acc);
  }
  EXPECT_LT(gg.value().max_abs_diff(hess_row_sums), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace gtv::ag
