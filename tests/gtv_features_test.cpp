// Tests for the extension features: P2P index sharing and its co-selection
// leak, DP noise on intermediate logits, WGAN weight clipping, and the
// original-row tracking the curious-peer analysis relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "core/gtv.h"
#include "gan/losses.h"

namespace gtv::core {
namespace {

using data::ColumnType;
using data::Table;

Table imbalanced_two_col(std::size_t rows, Rng& rng) {
  // Column 0: 90/10 binary (strong minority), column 1: continuous.
  Table t({{"cls", ColumnType::kCategorical, {"maj", "min"}, {}},
           {"value", ColumnType::kContinuous, {}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    const auto cls = static_cast<double>(rng.categorical({9, 1}));
    t.append_row({cls, rng.normal(cls * 3.0, 1.0)});
  }
  return t;
}

GtvOptions tiny_options() {
  GtvOptions options;
  options.gan.noise_dim = 8;
  options.gan.hidden = 16;
  options.generator_hidden = 16;
  options.gan.batch_size = 16;
  options.gan.d_steps_per_round = 1;
  return options;
}

TEST(PeerAttackTest, MinorityOverselectionHasLiftAndAuc) {
  PeerSelectionFrequencyAttack attack;
  // Rows 4-5 form the minority; log-frequency sampling picks them often.
  for (int i = 0; i < 20; ++i) {
    attack.observe({4, 5, 4});
    attack.observe({0, 1});
  }
  auto eval = attack.evaluate({0, 0, 0, 0, 1, 1});
  EXPECT_GT(eval.minority_rate, eval.majority_rate);
  EXPECT_GT(eval.lift, 2.0);
  EXPECT_GT(eval.auc, 0.85);
}

TEST(PeerAttackTest, UniformSelectionHasNoLift) {
  PeerSelectionFrequencyAttack attack;
  Rng rng(4);
  std::vector<std::size_t> categories(40);
  for (auto& c : categories) c = rng.uniform_index(2);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::size_t> batch;
    for (int b = 0; b < 6; ++b) batch.push_back(rng.uniform_index(40));
    attack.observe(batch);
  }
  auto eval = attack.evaluate(categories);
  EXPECT_NEAR(eval.lift, 1.0, 0.25);
  EXPECT_NEAR(eval.auc, 0.5, 0.2);
}

TEST(PeerAttackTest, UnobservedRowsCountAsZero) {
  PeerSelectionFrequencyAttack attack;
  attack.observe({3});
  auto eval = attack.evaluate({0, 0, 0, 1});  // row 3 is the minority
  EXPECT_GT(eval.minority_rate, 0.0);
  EXPECT_DOUBLE_EQ(eval.majority_rate, 0.0);
  EXPECT_GT(eval.auc, 0.99);
}

TEST(GtvFeaturesTest, P2PModeRoutesIndicesToPeersNotServer) {
  Rng rng(1);
  Table t = imbalanced_two_col(60, rng);
  GtvOptions options = tiny_options();
  options.index_sharing = IndexSharing::kPeerToPeer;
  auto shards = data::vertical_split(t, {{0}, {1}});
  GtvTrainer trainer(std::move(shards), options, 3);
  trainer.train(4);
  // Peer link saw traffic; server never observed (idx, cv) pairs.
  const auto& meter = trainer.traffic();
  const bool peer_traffic = meter.stats("client0->client1").bytes > 0 ||
                            meter.stats("client1->client0").bytes > 0;
  EXPECT_TRUE(peer_traffic);
  EXPECT_EQ(trainer.attack().observation_count(), 0u);
  EXPECT_GT(trainer.peer_attack().observation_count(), 0u);
}

TEST(GtvFeaturesTest, P2PLeakHasLiftOnImbalancedColumn) {
  Rng rng(2);
  Table t = imbalanced_two_col(80, rng);
  GtvOptions options = tiny_options();
  options.index_sharing = IndexSharing::kPeerToPeer;
  auto shards = data::vertical_split(t, {{0}, {1}});
  GtvTrainer trainer(std::move(shards), options, 5);
  trainer.train(30);
  auto eval = trainer.peer_attack_evaluation(0);
  // Log-frequency oversampling selects each 10%-minority row far more often
  // than each majority row; a counting peer separates the classes cleanly.
  EXPECT_GT(eval.lift, 2.0);
  EXPECT_GT(eval.auc, 0.8);
  // And shuffling does NOT defend here (clients know the seed): the lift
  // persists even though training-with-shuffling was on (default).
  EXPECT_TRUE(trainer.options().training_with_shuffling);
}

TEST(GtvFeaturesTest, ServerModeLeavesPeerAttackEmpty) {
  Rng rng(3);
  Table t = imbalanced_two_col(50, rng);
  GtvTrainer trainer(data::vertical_split(t, {{0}, {1}}), tiny_options(), 5);
  trainer.train(2);
  EXPECT_EQ(trainer.peer_attack().observation_count(), 0u);
  EXPECT_GT(trainer.attack().observation_count(), 0u);
}

TEST(GtvFeaturesTest, DpNoiseStillTrains) {
  Rng rng(4);
  Table t = imbalanced_two_col(60, rng);
  GtvOptions options = tiny_options();
  options.dp_noise_std = 0.3f;
  GtvTrainer trainer(data::vertical_split(t, {{0}, {1}}), options, 7);
  auto losses = trainer.train_round();
  EXPECT_TRUE(std::isfinite(losses.d_loss));
  EXPECT_TRUE(std::isfinite(losses.g_loss));
  Table synth = trainer.sample(20);
  EXPECT_EQ(synth.n_rows(), 20u);
}

TEST(GtvFeaturesTest, WeightClippingModeBoundsCriticWeights) {
  Rng rng(5);
  Table t = imbalanced_two_col(60, rng);
  GtvOptions options = tiny_options();
  options.gan.critic_mode = gan::CriticMode::kWeightClipping;
  options.gan.clip_value = 0.05f;
  GtvTrainer trainer(data::vertical_split(t, {{0}, {1}}), options, 9);
  auto losses = trainer.train_round();
  EXPECT_FLOAT_EQ(losses.gp, 0.0f);  // no penalty in clipping mode
  for (const auto& p : trainer.server().discriminator_parameters()) {
    EXPECT_LE(p.value().max(), 0.05f + 1e-6f);
    EXPECT_GE(p.value().min(), -0.05f - 1e-6f);
  }
  for (std::size_t i = 0; i < trainer.n_clients(); ++i) {
    for (const auto& p : trainer.client(i).discriminator_parameters()) {
      EXPECT_LE(p.value().max(), 0.05f + 1e-6f);
    }
  }
}

TEST(GtvFeaturesTest, ClipParametersValidation) {
  ag::Var p(Tensor::of({{0.5f, -2.0f}}), true);
  gan::clip_parameters({p}, 1.0f);
  EXPECT_FLOAT_EQ(p.value()(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(p.value()(0, 1), -1.0f);
  EXPECT_THROW(gan::clip_parameters({p}, 0.0f), std::invalid_argument);
}

TEST(GtvFeaturesTest, OriginalRowTrackingSurvivesShuffles) {
  Rng rng(6);
  Table t = imbalanced_two_col(30, rng);
  GtvOptions options = tiny_options();
  GtvClient client(0, t, options, 6, 5, 11);
  client.shuffle_local_data(111);
  client.shuffle_local_data(222);
  // original_rows must map each current row back to its initial identity:
  // the cell values must match the snapshot at those original positions.
  std::vector<std::size_t> all(30);
  for (std::size_t r = 0; r < 30; ++r) all[r] = r;
  const auto originals = client.original_rows(all);
  for (std::size_t r = 0; r < 30; ++r) {
    EXPECT_DOUBLE_EQ(client.local_table().cell(r, 1), t.cell(originals[r], 1));
  }
}

}  // namespace
}  // namespace gtv::core
