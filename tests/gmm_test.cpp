#include "encode/gmm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace gtv::encode {
namespace {

std::vector<double> bimodal_sample(std::size_t n, Rng& rng) {
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.4) {
      values.push_back(rng.normal(-5.0, 0.5));
    } else {
      values.push_back(rng.normal(3.0, 1.0));
    }
  }
  return values;
}

TEST(GmmTest, RecoversBimodalModes) {
  Rng rng(1);
  auto values = bimodal_sample(4000, rng);
  GaussianMixture1D gmm;
  GmmOptions opts;
  opts.max_modes = 5;
  gmm.fit(values, opts, rng);
  ASSERT_GE(gmm.n_modes(), 2u);
  // Two of the means must be near -5 and 3.
  double best_lo = 1e9, best_hi = 1e9;
  for (double m : gmm.means()) {
    best_lo = std::min(best_lo, std::abs(m + 5.0));
    best_hi = std::min(best_hi, std::abs(m - 3.0));
  }
  EXPECT_LT(best_lo, 0.5);
  EXPECT_LT(best_hi, 0.5);
}

TEST(GmmTest, WeightsSumToOne) {
  Rng rng(2);
  auto values = bimodal_sample(1000, rng);
  GaussianMixture1D gmm;
  gmm.fit(values, GmmOptions{}, rng);
  double total = 0.0;
  for (double w : gmm.weights()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GmmTest, ConstantColumnDegeneratesToSingleMode) {
  Rng rng(3);
  std::vector<double> values(100, 7.25);
  GaussianMixture1D gmm;
  gmm.fit(values, GmmOptions{}, rng);
  ASSERT_EQ(gmm.n_modes(), 1u);
  EXPECT_DOUBLE_EQ(gmm.means()[0], 7.25);
  EXPECT_GT(gmm.stds()[0], 0.0);
}

TEST(GmmTest, EmptyDataThrows) {
  Rng rng(4);
  GaussianMixture1D gmm;
  EXPECT_THROW(gmm.fit({}, GmmOptions{}, rng), std::invalid_argument);
}

TEST(GmmTest, FewerPointsThanModes) {
  Rng rng(5);
  GaussianMixture1D gmm;
  gmm.fit({1.0, 2.0, 3.0}, GmmOptions{}, rng);  // max_modes=10 > 3 points
  EXPECT_LE(gmm.n_modes(), 3u);
  EXPECT_GE(gmm.n_modes(), 1u);
}

TEST(GmmTest, ResponsibilitiesNormalizedAndPeaked) {
  Rng rng(6);
  auto values = bimodal_sample(3000, rng);
  GaussianMixture1D gmm;
  gmm.fit(values, GmmOptions{}, rng);
  auto resp = gmm.responsibilities(-5.0);
  double total = 0.0;
  for (double r : resp) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The most likely mode at -5 must have mean near -5.
  EXPECT_LT(std::abs(gmm.means()[gmm.most_likely_mode(-5.0)] + 5.0), 1.0);
  EXPECT_LT(std::abs(gmm.means()[gmm.most_likely_mode(3.0)] - 3.0), 1.0);
}

TEST(GmmTest, PrunesTinyModes) {
  Rng rng(7);
  // Unimodal data with max_modes=10 should collapse to few modes.
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) values.push_back(rng.normal(0.0, 1.0));
  GaussianMixture1D gmm;
  GmmOptions opts;
  opts.min_weight = 0.02;
  gmm.fit(values, opts, rng);
  EXPECT_LT(gmm.n_modes(), 10u);
}

TEST(GmmTest, LogLikelihoodImprovesOverSingleGaussianForBimodal) {
  Rng rng(8);
  auto values = bimodal_sample(3000, rng);
  GaussianMixture1D multi;
  GmmOptions opts;
  multi.fit(values, opts, rng);
  GaussianMixture1D single;
  GmmOptions one;
  one.max_modes = 1;
  single.fit(values, one, rng);
  EXPECT_GT(multi.log_likelihood(values), single.log_likelihood(values) + 0.1);
}

TEST(GmmTest, MinStdFloorRespected) {
  Rng rng(9);
  // Near-duplicate values can collapse variance; the floor must hold.
  std::vector<double> values(500, 1.0);
  values.push_back(1.000001);
  GaussianMixture1D gmm;
  GmmOptions opts;
  opts.min_std = 1e-4;
  gmm.fit(values, opts, rng);
  for (double s : gmm.stds()) EXPECT_GE(s, opts.min_std * 0.999);
}

}  // namespace
}  // namespace gtv::encode
