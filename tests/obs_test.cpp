#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/thread_pool.h"

namespace gtv::obs {
namespace {

// Restores the timing switch so tests cannot leak state into each other.
class TimingGuard {
 public:
  TimingGuard() : was_(timing_enabled()) {}
  ~TimingGuard() { set_timing_enabled(was_); }

 private:
  bool was_;
};

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(HistogramTest, ExactPercentilesOnKnownDistribution) {
  // Bounds 1..100, samples 1..100: every sample sits exactly on its bucket's
  // upper bound, so interpolated percentiles are exact.
  std::vector<double> bounds(100);
  for (std::size_t i = 0; i < 100; ++i) bounds[i] = static_cast<double>(i + 1);
  Histogram h(bounds);
  for (int v = 100; v >= 1; --v) h.record(v);

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);  // clamped to rank 1
}

TEST(HistogramTest, OverflowBucketReportsMax) {
  Histogram h({1.0, 2.0});
  h.record(0.5);
  h.record(1.5);
  h.record(77.0);  // above the last bound
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(h.percentile(99), 77.0);
}

TEST(HistogramTest, InterpolatesWithinBucket) {
  Histogram h({10.0});
  h.record(2.0);
  h.record(4.0);
  h.record(6.0);
  h.record(8.0);
  // Rank 2 of 4 in (0, 10] interpolates to 10 * 2/4 = 5, inside [min, max].
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(HistogramTest, PercentileClampedToObservedRangeAtBucketEdges) {
  // Identical samples near a bucket's lower edge: raw interpolation would
  // report p100 = 10.0 (the bucket's upper bound) for values that never
  // exceeded 3.0. The estimate must stay inside [min, max].
  Histogram h({10.0});
  for (int i = 0; i < 4; ++i) h.record(3.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 3.0);
  // And the low side: p0 (clamped to rank 1) must not undershoot min.
  Histogram g({10.0, 20.0});
  g.record(19.0);
  g.record(19.5);
  EXPECT_DOUBLE_EQ(g.percentile(0), 19.0);
  EXPECT_DOUBLE_EQ(g.min(), 19.0);
}

TEST(HistogramTest, SampleExactlyOnTopBoundStaysExact) {
  // A sample landing exactly on the last finite bound belongs to that
  // bucket, not the overflow bucket, and percentiles report it exactly.
  Histogram h({1.0, 2.0, 5.0});
  h.record(5.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 5.0);
}

TEST(HistogramTest, MinResetsWithHistogram) {
  Histogram h({10.0});
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty
  h.record(7.0);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  h.reset();
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  h.record(9.0);
  EXPECT_DOUBLE_EQ(h.min(), 9.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(RegistryTest, HandlesAreStableAndNamed) {
  auto& registry = MetricsRegistry::instance();
  Counter& a = registry.counter("obs_test.stable");
  a.add(7);
  EXPECT_EQ(&registry.counter("obs_test.stable"), &a);
  EXPECT_EQ(registry.counter("obs_test.stable").value(), 7u);
  Histogram& h = registry.histogram("obs_test.hist", {1.0, 2.0});
  EXPECT_EQ(h.bounds().size(), 2u);
  // Second lookup ignores the (different) bounds argument.
  EXPECT_EQ(&registry.histogram("obs_test.hist", {5.0}), &h);
}

TEST(RegistryTest, ToJsonContainsRegisteredMetrics) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("obs_test.json_counter").add(3);
  registry.gauge("obs_test.json_gauge").set(1.25);
  registry.histogram("obs_test.json_hist").record(0.5);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"obs_test.json_counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_gauge\":"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_hist\":{\"count\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RegistryTest, ThreadSafeUnderParallelForHammering) {
  auto& registry = MetricsRegistry::instance();
  Counter& c = registry.counter("obs_test.hammer_counter");
  Histogram& h = registry.histogram("obs_test.hammer_hist", {0.5, 1.5, 2.5});
  c.reset();
  h.reset();
  constexpr std::size_t kN = 100000;
  gtv::parallel_for(kN, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      c.add();
      h.record(static_cast<double>(i % 3));
      // Registration from multiple threads must also be safe.
      registry.counter("obs_test.hammer_counter2").add();
    }
  });
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(registry.counter("obs_test.hammer_counter2").value(), kN);
  EXPECT_EQ(h.count(), kN);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0] + buckets[1] + buckets[2] + buckets[3], kN);
  EXPECT_EQ(buckets[3], 0u);
}

TEST(ScopedTimerTest, MeasuresElapsedMonotonically) {
  TimingGuard guard;
  set_timing_enabled(true);
  double first_ms = 0, second_ms = 0, outer_ms = 0;
  {
    ScopedTimer outer("obs_test.outer", nullptr, &outer_ms);
    {
      ScopedTimer t("obs_test.first", nullptr, &first_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    {
      ScopedTimer t("obs_test.second", nullptr, &second_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_GE(first_ms, 4.0);  // sleep_for guarantees at-least semantics
  EXPECT_GT(second_ms, 0.0);
  // The enclosing span covers both nested spans: durations nest monotonically.
  EXPECT_GE(outer_ms, first_ms + second_ms);
}

TEST(ScopedTimerTest, AccumulatesAcrossScopes) {
  double total_ms = 0;
  for (int i = 0; i < 3; ++i) {
    ScopedTimer t("obs_test.accumulate", nullptr, &total_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(total_ms, 2.0);
}

TEST(ScopedTimerTest, DisabledModeIsNoOp) {
  TimingGuard guard;
  set_timing_enabled(false);
  ASSERT_FALSE(TraceSink::instance().active());
  Histogram& h = MetricsRegistry::instance().histogram("obs_test.noop_hist");
  h.reset();
  {
    ScopedTimer t("obs_test.noop", &h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(h.count(), 0u);  // never recorded: the timer stayed disarmed

  // `always` overrides the gate even while timing is disabled.
  {
    ScopedTimer t("obs_test.noop", &h, nullptr, /*always=*/true);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(TraceSinkTest, WritesParseableJsonlSpans) {
  const std::string path = ::testing::TempDir() + "obs_trace_test.jsonl";
  TraceSink& sink = TraceSink::instance();
  sink.open(path);
  ASSERT_TRUE(sink.active());
  {
    ScopedTimer t("span_a");
    ScopedTimer u("span \"b\"\\");  // exercises escaping
  }
  sink.close();
  ASSERT_FALSE(sink.active());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  bool saw_a = false, saw_b = false;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(line.find("\"ts\":"), std::string::npos);
    EXPECT_NE(line.find("\"dur\":"), std::string::npos);
    EXPECT_NE(line.find("\"tid\":"), std::string::npos);
    if (line.find("\"name\":\"span_a\"") != std::string::npos) saw_a = true;
    if (line.find("\"name\":\"span \\\"b\\\"\\\\\"") != std::string::npos) saw_b = true;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  std::remove(path.c_str());
}

TEST(TraceSinkTest, CloseIsIdempotentAndEmitsAfterCloseAreDropped) {
  const std::string path = ::testing::TempDir() + "obs_trace_close_test.jsonl";
  TraceSink& sink = TraceSink::instance();
  sink.open(path);
  ASSERT_TRUE(sink.active());
  { ScopedTimer t("before_close"); }
  sink.close();
  sink.close();  // double-close must be safe (atexit + explicit close)
  ASSERT_FALSE(sink.active());
  // An emit racing shutdown (e.g. a ScopedTimer destroyed during static
  // destruction) must be dropped cleanly, not crash or reopen the file.
  sink.emit_complete("after_close", TraceSink::now_us(), 1);
  sink.emit_flow("after_close_flow", TraceSink::next_flow_id(), 's', 0,
                 TraceSink::now_us());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.find("after_close"), std::string::npos);
  }
  EXPECT_EQ(lines, 1u);
  std::remove(path.c_str());
}

TEST(TraceSinkTest, FlowIdsAreMonotonic) {
  const std::uint64_t a = TraceSink::next_flow_id();
  const std::uint64_t b = TraceSink::next_flow_id();
  EXPECT_LT(a, b);
}

TEST(TelemetryTest, JsonAndAggregation) {
  RoundTelemetry a;
  a.round = 0;
  a.total_ms = 10.0;
  a.fake_forward_ms = 4.0;
  a.d_loss = 2.0f;
  a.links = {{"client0->server", 100, 2}, {"server->client0", 50, 1}};
  a.mem_peak_bytes.total = 4096;
  a.mem_peak_bytes.fake_forward = 2048;
  RoundTelemetry b;
  b.round = 1;
  b.total_ms = 20.0;
  b.fake_forward_ms = 6.0;
  b.d_loss = 4.0f;
  b.links = {{"client0->server", 10, 1}};
  b.mem_peak_bytes.total = 1024;
  b.mem_peak_bytes.fake_forward = 3072;

  EXPECT_EQ(a.bytes_sent(), 150u);
  EXPECT_EQ(a.messages_sent(), 3u);

  const RoundTelemetry sum = aggregate({a, b});
  EXPECT_EQ(sum.round, 2u);
  EXPECT_DOUBLE_EQ(sum.total_ms, 30.0);
  EXPECT_DOUBLE_EQ(sum.fake_forward_ms, 10.0);
  EXPECT_FLOAT_EQ(sum.d_loss, 3.0f);  // losses are averaged
  EXPECT_EQ(sum.bytes_sent(), 160u);
  ASSERT_EQ(sum.links.size(), 2u);
  EXPECT_EQ(sum.links[0].link, "client0->server");
  EXPECT_EQ(sum.links[0].bytes, 110u);
  // Memory high-water marks aggregate by max, not sum.
  EXPECT_EQ(sum.mem_peak_bytes.total, 4096u);
  EXPECT_EQ(sum.mem_peak_bytes.fake_forward, 3072u);

  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"phases_ms\":{\"total\":10"), std::string::npos);
  EXPECT_NE(json.find("\"mem_peak_bytes\":{\"total\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"link\":\"client0->server\",\"bytes\":100"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_sent\":150"), std::string::npos);
  const std::string arr = telemetry_to_json({a, b});
  EXPECT_EQ(arr.front(), '[');
  EXPECT_EQ(arr.back(), ']');
  EXPECT_NE(arr.find("},{"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace gtv::obs
