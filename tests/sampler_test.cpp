// obs::sampler tests: the SIGPROF handler survives a sample storm while the
// thread pool is under real load, folded reports are deterministic and
// round-trip through write_folded, a thread parked in read() is attributed
// off-CPU by the wall sweep, and — the contract the whole feature rests on —
// sampling a GtvTrainer run perturbs neither its losses nor its model.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/gtv.h"
#include "data/datasets.h"
#include "data/table.h"
#include "obs/sampler.h"
#include "obs/thread_name.h"
#include "tensor/thread_pool.h"

namespace gtv::obs::sampler {
namespace {

// Spins the thread pool on real FP work for ~duration. The work is pure
// arithmetic so SIGPROF interrupts it at arbitrary instruction boundaries.
void burn_cpu(std::chrono::milliseconds duration) {
  const auto deadline = std::chrono::steady_clock::now() + duration;
  std::vector<double> acc(1 << 14, 1.0);
  while (std::chrono::steady_clock::now() < deadline) {
    parallel_for(acc.size(), 256, [&acc](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        acc[i] = std::sqrt(acc[i] + 1.5) * 1.0001;
      }
    });
  }
  // Keep the result observable so the loop cannot be optimized out.
  ASSERT_GT(acc[0], 0.0);
}

std::uint64_t table_hash(const data::Table& table) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  for (std::size_t r = 0; r < table.n_rows(); ++r) {
    for (std::size_t c = 0; c < table.n_cols(); ++c) {
      const double cell = table.cell(r, c);
      std::uint64_t bits;
      std::memcpy(&bits, &cell, 8);
      mix(bits);
    }
  }
  return h;
}

data::Table tiny_source(std::size_t rows) {
  Rng rng(7);
  data::Table t({{"a", data::ColumnType::kContinuous, {}, {}},
                 {"b", data::ColumnType::kContinuous, {}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    const double z = rng.normal();
    t.append_row({z, 2 * z + rng.normal(0, 0.5)});
  }
  return t;
}

core::GtvOptions tiny_options() {
  core::GtvOptions options;
  options.gan.noise_dim = 4;
  options.gan.hidden = 8;
  options.generator_hidden = 8;
  options.gan.batch_size = 16;
  options.gan.d_steps_per_round = 1;
  return options;
}

TEST(SamplerTest, SampleStormDuringThreadPoolWork) {
  SamplerOptions options;
  options.cpu_hz = 997;  // storm: ~10x the production default
  options.wall_hz = 31;
  options.drain_interval_ms = 10;
  Sampler* prof = Sampler::start_global(options);
  ASSERT_NE(prof, nullptr);
  ASSERT_TRUE(prof->running());
  ASSERT_EQ(Sampler::get(), prof);
  burn_cpu(std::chrono::milliseconds(700));
  prof->stop();
  EXPECT_FALSE(prof->running());
  EXPECT_EQ(Sampler::get(), nullptr);

  const SamplerStats st = prof->stats();
  // 997 Hz over ~0.7 s of multi-thread CPU: even heavily loaded CI machines
  // land far above this floor.
  EXPECT_GE(st.cpu_samples, 50u);
  EXPECT_GE(st.threads_seen, 1u);
  // Folded output parses: magic first, every stack line ends in a count.
  const std::string folded = prof->folded("storm");
  std::istringstream lines(folded);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("# gtv-folded ", 0), 0u);
  std::size_t stacks = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++stacks;
    EXPECT_EQ(line.rfind("storm;", 0), 0u) << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    EXPECT_GT(std::strtoull(line.c_str() + space + 1, nullptr, 10), 0u);
  }
  EXPECT_GT(stacks, 0u);
}

TEST(SamplerTest, FoldedIsDeterministicAndRoundTrips) {
  SamplerOptions options;
  options.cpu_hz = 499;
  Sampler* prof = Sampler::start_global(options);
  ASSERT_NE(prof, nullptr);
  burn_cpu(std::chrono::milliseconds(300));
  prof->stop();

  const std::string first = prof->folded("party-a");
  const std::string second = prof->folded("party-a");
  EXPECT_EQ(first, second);  // same fold state -> byte-identical report

  const std::string path = ::testing::TempDir() + "sampler_roundtrip.folded";
  ASSERT_TRUE(prof->write_folded(path, "party-a"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), first);
}

TEST(SamplerTest, OffCpuAttributionOfThreadParkedInRead) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<bool> started{false};
  std::thread blockee([&] {
    obs::set_current_thread_name("gtv-blockee");
    started.store(true);
    char byte;
    // Parks here for the whole sampling window; the wall sweep must tag it
    // blocked while SIGPROF never fires on it (zero CPU advance).
    while (::read(fds[0], &byte, 1) == 1) {
    }
  });
  while (!started.load()) std::this_thread::yield();

  SamplerOptions options;
  options.cpu_hz = 97;
  options.wall_hz = 67;  // fast sweep so a short test sees several ticks
  options.drain_interval_ms = 10;
  Sampler* prof = Sampler::start_global(options);
  ASSERT_NE(prof, nullptr);
  // Keep one core busy so the process CPU clock advances — a fully idle
  // process would never fire SIGPROF, but the sweep must still run.
  burn_cpu(std::chrono::milliseconds(900));
  prof->stop();
  ::close(fds[1]);  // EOF releases the blockee
  blockee.join();
  ::close(fds[0]);

  const SamplerStats st = prof->stats();
  EXPECT_GE(st.wall_sweeps, 3u);
  EXPECT_GE(st.offcpu_samples, 1u);
  const std::string folded = prof->folded("p");
  // The parked thread shows up off-CPU under its own name.
  EXPECT_NE(folded.find(";offcpu;"), std::string::npos);
  EXPECT_NE(folded.find(";gtv-blockee;"), std::string::npos);
  std::istringstream lines(folded);
  std::string line;
  bool blockee_offcpu = false;
  while (std::getline(lines, line)) {
    if (line.find(";offcpu;") != std::string::npos &&
        line.find(";gtv-blockee;") != std::string::npos) {
      blockee_offcpu = true;
    }
    // The blockee burns no CPU, so it must never appear as an on-CPU stack.
    if (line.find(";cpu;") != std::string::npos) {
      EXPECT_EQ(line.find(";gtv-blockee;"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(blockee_offcpu);
}

TEST(SamplerTest, TrainingParityWithSamplerOnVsOff) {
  const auto run = [](bool sample) {
    Rng rng(3);
    auto shards = data::vertical_split(tiny_source(48), {{0}, {1}});
    core::GtvTrainer trainer(std::move(shards), tiny_options(), 11);
    Sampler* prof = nullptr;
    if (sample) {
      SamplerOptions options;
      options.cpu_hz = 997;  // storm rate: maximize interference if any exists
      options.wall_hz = 67;
      options.drain_interval_ms = 5;
      prof = Sampler::start_global(options);
    }
    trainer.train(3);
    const std::uint64_t model = table_hash(trainer.sample(32));
    if (prof != nullptr) prof->stop();
    std::vector<std::uint64_t> bits;
    for (const auto& losses : trainer.history()) {
      std::uint64_t b;
      std::memcpy(&b, &losses.d_loss, 8);
      bits.push_back(b);
      std::memcpy(&b, &losses.g_loss, 8);
      bits.push_back(b);
      std::memcpy(&b, &losses.wasserstein, 8);
      bits.push_back(b);
    }
    bits.push_back(model);
    return bits;
  };
  const auto off = run(false);
  const auto on = run(true);
  // Bit-exact: the sampler touches no RNG stream and no training state.
  EXPECT_EQ(off, on);
}

TEST(SamplerTest, SymbolizeResolvesOwnFunctions) {
  // A pc inside this test binary must symbolize to a real name (dladdr or
  // the .symtab fallback), and the resolution predicate must agree.
  bool resolved = false;
  const auto pc = reinterpret_cast<std::uintptr_t>(&burn_cpu) + 4;
  const std::string frame = symbolize_pc(pc, &resolved);
  EXPECT_TRUE(resolved) << frame;
  EXPECT_TRUE(frame_is_resolved(frame)) << frame;
  EXPECT_NE(frame.find("burn_cpu"), std::string::npos) << frame;
  // Raw addresses never resolve.
  EXPECT_FALSE(frame_is_resolved("0xdeadbeef"));
  EXPECT_FALSE(frame_is_resolved("libc.so.6+0x1234"));
}

}  // namespace
}  // namespace gtv::obs::sampler
