#include "eval/classifiers.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/tree.h"

namespace gtv::eval {
namespace {

// Linearly separable 2-class blobs.
void blobs(std::size_t n, Tensor& x, std::vector<std::size_t>& y, Rng& rng) {
  x = Tensor(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cls = rng.uniform_index(2);
    x(i, 0) = static_cast<float>(rng.normal(cls == 0 ? -2.0 : 2.0, 0.7));
    x(i, 1) = static_cast<float>(rng.normal(cls == 0 ? 1.0 : -1.0, 0.7));
    y[i] = cls;
  }
}

// XOR-ish pattern: not linearly separable — trees/MLP must beat linear.
void xor_data(std::size_t n, Tensor& x, std::vector<std::size_t>& y, Rng& rng) {
  x = Tensor(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform() < 0.5 ? -1.0 : 1.0;
    const double b = rng.uniform() < 0.5 ? -1.0 : 1.0;
    x(i, 0) = static_cast<float>(a + rng.normal(0, 0.25));
    x(i, 1) = static_cast<float>(b + rng.normal(0, 0.25));
    y[i] = (a > 0) != (b > 0) ? 1 : 0;
  }
}

class SuiteParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteParamTest, SeparatesBlobs) {
  Rng rng(1 + GetParam());
  Tensor x_train, x_test;
  std::vector<std::size_t> y_train, y_test;
  blobs(300, x_train, y_train, rng);
  blobs(150, x_test, y_test, rng);
  auto suite = make_classifier_suite();
  auto& clf = *suite.at(GetParam());
  clf.fit(x_train, y_train, 2, rng);
  const double acc = accuracy(y_test, clf.predict(x_test));
  EXPECT_GT(acc, 0.9) << clf.name();
  const double auc = macro_auc(y_test, clf.predict_scores(x_test));
  EXPECT_GT(auc, 0.93) << clf.name();
}

INSTANTIATE_TEST_SUITE_P(AllFive, SuiteParamTest, ::testing::Range<std::size_t>(0, 5),
                         [](const auto& info) {
                           return make_classifier_suite()[info.param]->name();
                         });

TEST(ClassifiersTest, SuiteHasPaperFiveFamilies) {
  auto suite = make_classifier_suite();
  ASSERT_EQ(suite.size(), 5u);
  std::set<std::string> names;
  for (const auto& c : suite) names.insert(c->name());
  EXPECT_TRUE(names.count("decision_tree"));
  EXPECT_TRUE(names.count("linear_svm"));
  EXPECT_TRUE(names.count("random_forest"));
  EXPECT_TRUE(names.count("logistic_regression"));
  EXPECT_TRUE(names.count("mlp"));
}

TEST(ClassifiersTest, NonlinearModelsSolveXor) {
  Rng rng(2);
  Tensor x_train, x_test;
  std::vector<std::size_t> y_train, y_test;
  xor_data(400, x_train, y_train, rng);
  xor_data(200, x_test, y_test, rng);

  DecisionTreeClassifier tree;
  tree.fit(x_train, y_train, 2, rng);
  EXPECT_GT(accuracy(y_test, tree.predict(x_test)), 0.9);

  MlpClassifier mlp(32, 120);
  mlp.fit(x_train, y_train, 2, rng);
  EXPECT_GT(accuracy(y_test, mlp.predict(x_test)), 0.9);

  // A linear model cannot do much better than chance on XOR.
  LogisticRegression lr;
  lr.fit(x_train, y_train, 2, rng);
  EXPECT_LT(accuracy(y_test, lr.predict(x_test)), 0.75);
}

TEST(ClassifiersTest, MulticlassSupport) {
  Rng rng(3);
  // Three well-separated blobs on a line.
  Tensor x(300, 1);
  std::vector<std::size_t> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    const std::size_t cls = i % 3;
    x(i, 0) = static_cast<float>(rng.normal(static_cast<double>(cls) * 4.0, 0.5));
    y[i] = cls;
  }
  for (auto& clf : make_classifier_suite()) {
    clf->fit(x, y, 3, rng);
    EXPECT_GT(accuracy(y, clf->predict(x)), 0.9) << clf->name();
    EXPECT_EQ(clf->predict_scores(x).cols(), 3u) << clf->name();
  }
}

TEST(ClassifiersTest, FitValidation) {
  Rng rng(4);
  LogisticRegression lr;
  EXPECT_THROW(lr.fit(Tensor(2, 2), {0}, 2, rng), std::invalid_argument);       // size
  EXPECT_THROW(lr.fit(Tensor(2, 2), {0, 1}, 1, rng), std::invalid_argument);    // classes
  EXPECT_THROW(lr.fit(Tensor(2, 2), {0, 5}, 2, rng), std::invalid_argument);    // label range
  EXPECT_THROW(lr.predict_scores(Tensor(1, 2)), std::logic_error);              // not fitted
}

TEST(ClassifiersTest, TreePredictBeforeFitThrows) {
  DecisionTreeClassifier tree;
  EXPECT_THROW(tree.predict_scores(Tensor(1, 2)), std::logic_error);
  RandomForestClassifier forest;
  EXPECT_THROW(forest.predict_scores(Tensor(1, 2)), std::logic_error);
}

TEST(ClassifiersTest, TreeRespectsDepthLimit) {
  Rng rng(5);
  Tensor x_train;
  std::vector<std::size_t> y_train;
  blobs(200, x_train, y_train, rng);
  TreeOptions shallow;
  shallow.max_depth = 1;
  DecisionTreeClassifier stump(shallow);
  stump.fit(x_train, y_train, 2, rng);
  EXPECT_LE(stump.node_count(), 3u);  // root + two leaves
}

TEST(ClassifiersTest, ForestBeatsSingleStumpOnXor) {
  Rng rng(6);
  Tensor x_train, x_test;
  std::vector<std::size_t> y_train, y_test;
  xor_data(400, x_train, y_train, rng);
  xor_data(200, x_test, y_test, rng);
  TreeOptions shallow;
  shallow.max_depth = 1;
  DecisionTreeClassifier stump(shallow);
  stump.fit(x_train, y_train, 2, rng);
  RandomForestClassifier forest(15);
  forest.fit(x_train, y_train, 2, rng);
  EXPECT_GT(accuracy(y_test, forest.predict(x_test)),
            accuracy(y_test, stump.predict(x_test)));
}

}  // namespace
}  // namespace gtv::eval
