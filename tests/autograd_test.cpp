#include "autograd/autograd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace gtv::ag {
namespace {

// Central-difference numerical gradient of a scalar-valued function of one
// leaf tensor. `f` must rebuild the graph from the given tensor each call.
Tensor numerical_grad(const std::function<float(const Tensor&)>& f, const Tensor& x,
                      float h = 1e-3f) {
  Tensor g(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      Tensor plus = x, minus = x;
      plus(r, c) += h;
      minus(r, c) -= h;
      g(r, c) = (f(plus) - f(minus)) / (2.0f * h);
    }
  }
  return g;
}

// Checks analytic gradient of `build` (graph builder) against numeric.
void check_gradient(const std::function<Var(const Var&)>& build, const Tensor& x0,
                    float tol = 2e-2f, float h = 1e-3f) {
  Var x(x0, /*requires_grad=*/true);
  Var loss = build(x);
  ASSERT_EQ(loss.rows(), 1u);
  ASSERT_EQ(loss.cols(), 1u);
  backward(loss);
  Tensor numeric = numerical_grad(
      [&](const Tensor& t) {
        NoGradGuard no_grad;
        Var v(t);
        return build(v).value()(0, 0);
      },
      x0, h);
  ASSERT_TRUE(x.grad().same_shape(numeric));
  for (std::size_t r = 0; r < numeric.rows(); ++r) {
    for (std::size_t c = 0; c < numeric.cols(); ++c) {
      EXPECT_NEAR(x.grad()(r, c), numeric(r, c), tol)
          << "mismatch at (" << r << "," << c << ")";
    }
  }
}

TEST(AutogradTest, LeafProperties) {
  Var x(Tensor::of({{1, 2}}), true);
  EXPECT_TRUE(x.requires_grad());
  EXPECT_TRUE(x.grad().empty());
  Var c = constant(Tensor::of({{3}}));
  EXPECT_FALSE(c.requires_grad());
}

TEST(AutogradTest, SimpleAddBackward) {
  Var x(Tensor::of({{1, 2}, {3, 4}}), true);
  backward(sum_all(add(x, x)));
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(x.grad()(r, c), 2.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Var x(Tensor::of({{1.0f}}), true);
  backward(mul_scalar(x, 3.0f));
  backward(mul_scalar(x, 3.0f));
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 6.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 0.0f);
}

TEST(AutogradTest, BackwardRequiresScalarRoot) {
  Var x(Tensor::of({{1, 2}}), true);
  EXPECT_THROW(backward(add(x, x)), std::invalid_argument);
}

TEST(AutogradTest, NoGradModeProducesConstants) {
  Var x(Tensor::of({{2.0f}}), true);
  NoGradGuard guard;
  Var y = mul(x, x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(AutogradTest, MatmulGradient) {
  Rng rng(1);
  check_gradient(
      [](const Var& x) {
        Var w = constant(Tensor::of({{1, -2}, {0.5, 3}, {-1, 1}}));
        return sum_all(matmul(x, w));
      },
      Tensor::normal(4, 3, 0.0f, 1.0f, rng));
}

TEST(AutogradTest, MatmulGradientBothSides) {
  Rng rng(2);
  Tensor a0 = Tensor::normal(3, 4, 0.0f, 1.0f, rng);
  Tensor b0 = Tensor::normal(4, 2, 0.0f, 1.0f, rng);
  Var a(a0, true), b(b0, true);
  backward(sum_all(matmul(a, b)));
  // d/dA sum(AB) = ones * B^T.
  Tensor expect_a = Tensor::ones(3, 2).matmul(b0.transpose());
  Tensor expect_b = a0.transpose().matmul(Tensor::ones(3, 2));
  EXPECT_LT(a.grad().max_abs_diff(expect_a), 1e-5f);
  EXPECT_LT(b.grad().max_abs_diff(expect_b), 1e-5f);
}

TEST(AutogradTest, MulDivGradient) {
  Rng rng(3);
  Tensor x0 = Tensor::uniform(3, 3, 0.5f, 2.0f, rng);
  check_gradient(
      [](const Var& x) {
        Var c = constant(Tensor::full(3, 3, 1.7f));
        return sum_all(div(mul(x, x), add(x, c)));
      },
      x0);
}

TEST(AutogradTest, BroadcastAddGradient) {
  Rng rng(4);
  Tensor x0 = Tensor::normal(1, 5, 0.0f, 1.0f, rng);  // row vector broadcast up
  check_gradient(
      [](const Var& x) {
        Var big = constant(Tensor::full(6, 5, 0.3f));
        return sum_all(square(add(big, x)));
      },
      x0);
}

TEST(AutogradTest, ColBroadcastMulGradient) {
  Rng rng(5);
  Tensor x0 = Tensor::uniform(4, 1, 0.5f, 1.5f, rng);  // col vector
  check_gradient(
      [](const Var& x) {
        Var big = constant(Tensor::full(4, 3, 2.0f));
        return sum_all(mul(big, x));
      },
      x0);
}

TEST(AutogradTest, ElementwiseUnaryGradients) {
  Rng rng(6);
  Tensor pos = Tensor::uniform(3, 4, 0.3f, 2.0f, rng);
  check_gradient([](const Var& x) { return sum_all(exp(x)); }, pos);
  check_gradient([](const Var& x) { return sum_all(log(x)); }, pos);
  check_gradient([](const Var& x) { return sum_all(sqrt(x)); }, pos);
  check_gradient([](const Var& x) { return sum_all(square(x)); }, pos);
  check_gradient([](const Var& x) { return sum_all(tanh(x)); }, pos);
  check_gradient([](const Var& x) { return sum_all(sigmoid(x)); }, pos);
}

TEST(AutogradTest, LeakyReluGradient) {
  // Values kept away from the kink so finite differences are valid.
  Tensor x0 = Tensor::of({{-2, -1, 1}, {3, -0.5, 2}});
  check_gradient([](const Var& x) { return sum_all(leaky_relu(x, 0.2f)); }, x0);
  Var x(x0, true);
  backward(sum_all(relu(x)));
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.grad()(0, 2), 1.0f);
}

TEST(AutogradTest, ReductionGradients) {
  Rng rng(7);
  Tensor x0 = Tensor::normal(3, 4, 0.0f, 1.0f, rng);
  check_gradient([](const Var& x) { return sum_all(square(sum_rows(x))); }, x0);
  check_gradient([](const Var& x) { return sum_all(square(sum_cols(x))); }, x0);
  check_gradient([](const Var& x) { return mean_all(square(x)); }, x0);
}

TEST(AutogradTest, SliceAndPadGradients) {
  Rng rng(8);
  Tensor x0 = Tensor::normal(3, 6, 0.0f, 1.0f, rng);
  check_gradient([](const Var& x) { return sum_all(square(slice_cols(x, 1, 4))); }, x0);
  check_gradient([](const Var& x) { return sum_all(square(pad_cols(x, 2, 1))); }, x0);
  check_gradient([](const Var& x) { return sum_all(square(slice_rows(x, 1, 3))); }, x0);
}

TEST(AutogradTest, ConcatGradient) {
  Rng rng(9);
  Tensor x0 = Tensor::normal(3, 4, 0.0f, 1.0f, rng);
  check_gradient(
      [](const Var& x) {
        Var a = slice_cols(x, 0, 2);
        Var b = slice_cols(x, 2, 4);
        // Weighted concat so the two branches have distinct gradients.
        Var cat = concat_cols({mul_scalar(a, 2.0f), mul_scalar(b, -3.0f)});
        return sum_all(square(cat));
      },
      x0);
}

TEST(AutogradTest, ConcatRowsGradient) {
  Rng rng(10);
  Tensor x0 = Tensor::normal(4, 3, 0.0f, 1.0f, rng);
  check_gradient(
      [](const Var& x) {
        Var a = slice_rows(x, 0, 1);
        Var b = slice_rows(x, 1, 4);
        return sum_all(square(concat_rows({mul_scalar(a, 3.0f), b})));
      },
      x0);
}

TEST(AutogradTest, SoftmaxRowsSumsToOneAndGradient) {
  Rng rng(11);
  Tensor x0 = Tensor::normal(3, 5, 0.0f, 2.0f, rng);
  {
    NoGradGuard no_grad;
    Var s = softmax_rows(Var(x0));
    Tensor row_sums = s.value().sum_cols();
    for (std::size_t r = 0; r < 3; ++r) EXPECT_NEAR(row_sums(r, 0), 1.0f, 1e-5f);
  }
  Tensor target = Tensor::zeros(3, 5);
  target(0, 1) = target(1, 3) = target(2, 0) = 1.0f;
  check_gradient(
      [&target](const Var& x) {
        // Cross-entropy against a fixed one-hot target.
        return neg(mean_all(mul(log_softmax_rows(x), constant(target))));
      },
      x0);
}

TEST(AutogradTest, RowNormsGradient) {
  Rng rng(12);
  Tensor x0 = Tensor::uniform(4, 3, 0.5f, 2.0f, rng);
  check_gradient([](const Var& x) { return sum_all(row_norms(x)); }, x0);
}

TEST(AutogradTest, StopGradientBlocksFlow) {
  Var x(Tensor::of({{2.0f}}), true);
  Var y = mul(stop_gradient(x), x);  // d/dx = stop(x) = 2, not 2x = 4
  backward(y);
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 2.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  Var x(Tensor::of({{3.0f}}), true);
  Var a = mul_scalar(x, 2.0f);
  Var b = mul_scalar(x, 5.0f);
  backward(add(a, b));
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 7.0f);
}

TEST(AutogradTest, ReusedVariableInOneOp) {
  Var x(Tensor::of({{3.0f}}), true);
  backward(mul(x, x));
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 6.0f);
}

TEST(AutogradTest, GradReturnsZeroForUnreachedInput) {
  Var x(Tensor::of({{1.0f}}), true);
  Var y(Tensor::of({{2.0f}}), true);
  auto gs = grad(mul(x, x), {x, y});
  EXPECT_FLOAT_EQ(gs[0].value()(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(gs[1].value()(0, 0), 0.0f);
}

TEST(AutogradTest, GradWithExplicitGradOutput) {
  Var x(Tensor::of({{1, 2}}), true);
  Var y = mul_scalar(x, 3.0f);  // 1x2 root with explicit seed
  auto gs = grad(y, {x}, false, Var(Tensor::of({{10, 100}})));
  EXPECT_FLOAT_EQ(gs[0].value()(0, 0), 30.0f);
  EXPECT_FLOAT_EQ(gs[0].value()(0, 1), 300.0f);
}

TEST(AutogradTest, SetValueRejectsInteriorNodes) {
  Var x(Tensor::of({{1.0f}}), true);
  Var y = mul(x, x);
  EXPECT_THROW(y.set_value(Tensor::of({{5.0f}})), std::logic_error);
  x.set_value(Tensor::of({{9.0f}}));
  EXPECT_FLOAT_EQ(x.value()(0, 0), 9.0f);
}

TEST(AutogradTest, DeepChainGradient) {
  // A 40-layer chain exercises the iterative topological sort.
  Var x(Tensor::of({{1.0f}}), true);
  Var h = x;
  for (int i = 0; i < 40; ++i) h = mul_scalar(h, 1.05f);
  backward(h);
  EXPECT_NEAR(x.grad()(0, 0), std::pow(1.05f, 40.0f), 1e-3f);
}

}  // namespace
}  // namespace gtv::ag
