// gtv::serve — checkpoint container, synthesis engine, and serving daemon.
//
// The load-bearing properties pinned here:
//   - a checkpoint round-trips through disk bit-for-bit (weights, buffers,
//     encoder state, identity fields), and corrupt/mismatched containers
//     are rejected without touching any model;
//   - seeded sampling is deterministic AND batch-invariant: a request
//     yields byte-identical rows whether it runs alone, coalesced with
//     other requests, in-process or over TCP;
//   - the daemon drains gracefully: admitted requests complete, new ones
//     are refused, and the black box records the serve phases.
#include "serve/daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/gtv.h"
#include "data/datasets.h"
#include "net/tcp.h"
#include "obs/blackbox.h"
#include "serve/checkpoint.h"
#include "serve/engine.h"

namespace gtv::serve {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// One tiny trained model shared by every test (training dominates runtime).
const Checkpoint& trained_checkpoint() {
  static const Checkpoint ckpt = [] {
    core::GtvOptions options;
    options.gan.noise_dim = 16;
    options.gan.batch_size = 16;
    options.gan.d_steps_per_round = 1;
    options.gan.hidden = 32;
    options.generator_hidden = 48;

    Rng rng(0xda7aULL);
    const data::Table table = data::make_dataset("loan", 48, rng);
    std::vector<std::vector<std::size_t>> groups(2);
    for (std::size_t c = 0; c < table.n_cols(); ++c) {
      groups[c < (table.n_cols() + 1) / 2 ? 0 : 1].push_back(c);
    }
    core::GtvTrainer trainer(data::vertical_split(table, groups), options, 11);
    trainer.train(1);
    Checkpoint out = trainer.make_checkpoint();
    Synthesizer synth(out);
    out.model_hash = hash_table(synth.sample(64, out.seed));
    return out;
  }();
  return ckpt;
}

std::vector<double> table_cells(const data::Table& table) {
  std::vector<double> cells;
  cells.reserve(table.n_rows() * table.n_cols());
  for (std::size_t r = 0; r < table.n_rows(); ++r) {
    for (std::size_t c = 0; c < table.n_cols(); ++c) cells.push_back(table.cell(r, c));
  }
  return cells;
}

// Picks a categorical joined column with >= 2 categories for condition
// tests; the loan dataset always has one.
Synthesizer::Condition some_condition(const Synthesizer& synth) {
  for (const auto& spec : synth.schema()) {
    if (spec.type == data::ColumnType::kCategorical && spec.categories.size() >= 2) {
      return {spec.name, spec.categories[1]};
    }
  }
  throw std::logic_error("test dataset has no categorical column");
}

TEST(CheckpointTest, SaveLoadRoundTripPreservesEverything) {
  const Checkpoint& ckpt = trained_checkpoint();
  const std::string path = temp_path("gtv_serve_roundtrip.ckpt");
  save_checkpoint(ckpt, path);
  const Checkpoint loaded = load_checkpoint(path);

  EXPECT_EQ(loaded.model_hash, ckpt.model_hash);
  EXPECT_EQ(loaded.seed, ckpt.seed);
  EXPECT_EQ(loaded.rounds, ckpt.rounds);
  EXPECT_EQ(loaded.noise_dim, ckpt.noise_dim);
  EXPECT_FLOAT_EQ(loaded.gumbel_tau, ckpt.gumbel_tau);
  ASSERT_EQ(loaded.clients.size(), ckpt.clients.size());
  ASSERT_TRUE(loaded.g_top.arch == ckpt.g_top.arch);
  ASSERT_EQ(loaded.g_top.tensors.size(), ckpt.g_top.tensors.size());
  for (std::size_t t = 0; t < loaded.g_top.tensors.size(); ++t) {
    EXPECT_FLOAT_EQ(loaded.g_top.tensors[t].max_abs_diff(ckpt.g_top.tensors[t]), 0.0f);
  }

  // The real contract: the reloaded model synthesizes byte-identical rows.
  Synthesizer original(ckpt);
  Synthesizer restored(loaded);
  EXPECT_EQ(restored.model_hash(), original.model_hash());
  const auto a = table_cells(original.sample(32, 99));
  const auto b = table_cells(restored.sample(32, 99));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "cell " << i;
  // And the stamped hash is reproducible from the container alone.
  EXPECT_EQ(hash_table(restored.sample(64, loaded.seed)), loaded.model_hash);
  std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptContainersRejected) {
  const std::string path = temp_path("gtv_serve_corrupt.ckpt");
  save_checkpoint(trained_checkpoint(), path);
  const auto size = std::filesystem::file_size(path);

  // Bit flip inside the payload -> CRC mismatch.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(size / 2));
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.write(&byte, 1);
  }
  EXPECT_THROW(load_checkpoint(path), CheckpointError);

  // Truncations at many offsets must throw, never crash or misparse.
  save_checkpoint(trained_checkpoint(), path);
  for (std::uintmax_t cut = 0; cut < size; cut += size / 13 + 1) {
    std::filesystem::resize_file(path, cut);
    EXPECT_THROW(load_checkpoint(path), CheckpointError) << "cut=" << cut;
  }

  // Trailing garbage after the CRC.
  save_checkpoint(trained_checkpoint(), path);
  {
    std::ofstream file(path, std::ios::binary | std::ios::app);
    file.put('x');
  }
  EXPECT_THROW(load_checkpoint(path), CheckpointError);

  // Wrong magic.
  {
    std::ofstream file(path, std::ios::binary);
    const std::uint32_t junk = 0xdeadbeefu;
    file.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  EXPECT_THROW(load_checkpoint(path), CheckpointError);
  EXPECT_THROW(load_checkpoint(temp_path("gtv_serve_missing.ckpt")), CheckpointError);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  Checkpoint ckpt = trained_checkpoint();
  // Weight set that does not fit the declared architecture.
  Checkpoint bad_tensors = ckpt;
  bad_tensors.g_top.tensors.pop_back();
  EXPECT_THROW(build_generator(bad_tensors.g_top), CheckpointError);
  // Mutually inconsistent parts (G^t input vs noise_dim + cv widths).
  Checkpoint bad_arch = ckpt;
  bad_arch.noise_dim += 1;
  EXPECT_THROW(Synthesizer{bad_arch}, CheckpointError);
  Checkpoint no_clients = ckpt;
  no_clients.clients.clear();
  EXPECT_THROW(Synthesizer{no_clients}, CheckpointError);
}

TEST(SynthesizerTest, SeededSamplingIsDeterministicAndBatchInvariant) {
  Synthesizer synth(trained_checkpoint());
  const auto once = table_cells(synth.sample(24, 7));
  const auto twice = table_cells(synth.sample(24, 7));
  ASSERT_EQ(once, twice);

  // Batch invariance: two requests coalesced into ONE forward must equal
  // each request run alone — the daemon's correctness hinges on this.
  const Synthesizer::Plan plan_a = synth.plan(24, 7);
  const Synthesizer::Plan plan_b = synth.plan(16, 1234);
  Tensor input = Tensor::concat_rows({plan_a.input, plan_b.input});
  std::vector<Tensor> gumbel;
  for (std::size_t i = 0; i < plan_a.gumbel.size(); ++i) {
    gumbel.push_back(Tensor::concat_rows({plan_a.gumbel[i], plan_b.gumbel[i]}));
  }
  const data::Table coalesced = synth.run(input, gumbel);
  ASSERT_EQ(coalesced.n_rows(), 40u);
  const auto solo_b = table_cells(synth.sample(16, 1234));
  for (std::size_t r = 0; r < 24; ++r) {
    for (std::size_t c = 0; c < coalesced.n_cols(); ++c) {
      EXPECT_EQ(coalesced.cell(r, c), once[r * coalesced.n_cols() + c]);
    }
  }
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < coalesced.n_cols(); ++c) {
      EXPECT_EQ(coalesced.cell(24 + r, c), solo_b[r * coalesced.n_cols() + c]);
    }
  }
}

TEST(SynthesizerTest, ConditionValidatedAndDeterministic) {
  Synthesizer synth(trained_checkpoint());
  const Synthesizer::Condition cond = some_condition(synth);
  const auto once = table_cells(synth.sample(12, 5, &cond));
  const auto twice = table_cells(synth.sample(12, 5, &cond));
  EXPECT_EQ(once, twice);

  const Synthesizer::Condition bad_col{"no_such_column", "x"};
  EXPECT_THROW(synth.plan(4, 1, &bad_col), std::invalid_argument);
  Synthesizer::Condition bad_cat = cond;
  bad_cat.category = "no_such_category";
  EXPECT_THROW(synth.plan(4, 1, &bad_cat), std::invalid_argument);
}

TEST(ServeDaemonTest, ConcurrentTcpClientsMatchSingleClientReference) {
  Synthesizer synth(trained_checkpoint());
  auto transport = std::make_shared<net::TcpTransport>(kServeParty);
  const std::uint16_t port = transport->listen(0);

  DaemonOptions options;
  options.max_batch = 48;  // smaller than the total demand -> splits + coalesces
  options.max_wait_us = 3000;
  options.recv_timeout_ms = 10;
  ServeDaemon daemon(synth, options);
  daemon.set_transport(transport);
  daemon.start();
  daemon.watch_peers(transport.get());

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRows = 40;
  const Synthesizer::Condition cond = some_condition(synth);
  std::vector<ServeClient::Result> results(kClients);
  std::vector<std::uint64_t> hashes(kClients);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      try {
        ServeClient client("c" + std::to_string(i));
        client.connect("127.0.0.1", port);
        const Welcome welcome = client.hello();
        hashes[i] = welcome.model_hash;
        // Odd clients condition their request; seeds differ per client.
        results[i] = client.sample(kRows, 1000 + i, i % 2 == 1 ? &cond : nullptr);
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << i << ": " << e.what();
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every client: byte-identical to the in-process reference path.
  Synthesizer reference(trained_checkpoint());
  for (std::size_t i = 0; i < kClients; ++i) {
    EXPECT_EQ(hashes[i], reference.model_hash());
    const auto expected = table_cells(
        reference.sample(kRows, 1000 + i, i % 2 == 1 ? &cond : nullptr));
    ASSERT_EQ(results[i].n_rows, kRows) << "client " << i;
    ASSERT_EQ(results[i].cells.size(), expected.size()) << "client " << i;
    for (std::size_t k = 0; k < expected.size(); ++k) {
      ASSERT_EQ(results[i].cells[k], expected[k]) << "client " << i << " cell " << k;
    }
  }
  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_EQ(stats.rows, kClients * kRows);
  EXPECT_GE(stats.batches, 1u);
  daemon.drain();
}

TEST(ServeDaemonTest, BadRequestsGetErrorsAndZeroRowsComplete) {
  Synthesizer synth(trained_checkpoint());
  auto transport = std::make_shared<net::TcpTransport>(kServeParty);
  const std::uint16_t port = transport->listen(0);
  ServeDaemon daemon(synth, DaemonOptions{});
  daemon.set_transport(transport);
  daemon.start();
  daemon.watch_peers(transport.get());

  ServeClient client("c0");
  client.connect("127.0.0.1", port);
  client.hello();
  const Synthesizer::Condition bad{"no_such_column", "x"};
  EXPECT_THROW(client.sample(4, 1, &bad), std::runtime_error);
  // The error reply must not wedge the stream: the next request succeeds.
  const ServeClient::Result empty = client.sample(0, 1);
  EXPECT_EQ(empty.n_rows, 0u);
  EXPECT_EQ(empty.n_cols, synth.n_cols());
  const ServeClient::Result rows = client.sample(8, 42);
  EXPECT_EQ(rows.n_rows, 8u);
  daemon.drain();
  EXPECT_EQ(daemon.stats().errors, 1u);
}

TEST(ServeDaemonTest, DrainCompletesAdmittedWorkAndRecordsPhases) {
  const std::string bbox = temp_path("gtv_serve_drain.bbox");
  obs::bb::RunHeaderRecord header;
  header.party = "serve";
  header.seed = trained_checkpoint().seed;
  obs::bb::BlackBox::open_global(bbox, header);

  Synthesizer synth(trained_checkpoint());
  auto transport = std::make_shared<net::TcpTransport>(kServeParty);
  const std::uint16_t port = transport->listen(0);
  obs::agg::LiveStatus status;
  DaemonOptions options;
  options.max_batch = 32;  // force the admitted request across many batches
  options.status = &status;
  ServeDaemon daemon(synth, options);
  daemon.set_transport(transport);
  daemon.start();
  daemon.watch_peers(transport.get());

  ServeClient::Result result;
  std::thread client_thread([&] {
    ServeClient client("c0");
    client.connect("127.0.0.1", port);
    result = client.sample(200, 3);
  });
  // Wait for admission, then drain mid-flight: the request must still
  // complete in full before drain() returns.
  while (daemon.stats().requests == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  daemon.drain();
  EXPECT_EQ(status.get_phase(), obs::agg::Phase::kDone);
  client_thread.join();
  EXPECT_EQ(result.n_rows, 200u);
  EXPECT_GE(result.batches, 2u);

  obs::bb::note_shutdown(0, "drain complete");
  const obs::bb::ReadResult ring = obs::bb::read_ring(bbox);
  bool saw_drain_phase = false, saw_clean_shutdown = false;
  for (const auto& record : ring.records) {
    if (record.type == obs::bb::RecordType::kPhase) {
      const auto phase = obs::bb::PhaseRecord::decode(record.payload.data(),
                                                      record.payload.size());
      if (phase.phase == static_cast<std::uint32_t>(obs::agg::Phase::kServeDrain)) {
        saw_drain_phase = true;
      }
    }
    if (record.type == obs::bb::RecordType::kShutdown) {
      const auto down = obs::bb::ShutdownRecord::decode(record.payload.data(),
                                                        record.payload.size());
      saw_clean_shutdown = down.code == 0;
    }
  }
  EXPECT_TRUE(saw_drain_phase);
  EXPECT_TRUE(saw_clean_shutdown);
  std::remove(bbox.c_str());
}

TEST(ServeDaemonTest, DrainSignalLatchTripsOnSigterm) {
  install_drain_handler();
  EXPECT_FALSE(drain_requested());
  std::raise(SIGTERM);
  EXPECT_TRUE(drain_requested());
}

}  // namespace
}  // namespace gtv::serve
