// Elastic federation: exact train-resume from GTVT checkpoints.
//
// The load-bearing properties pinned here:
//   - Rng::State captures the complete stream position (including the
//     Box-Muller spare), so a restored stream replays the exact draws the
//     captured one would have produced;
//   - Adam::state()/set_state round-trips the moment estimates and step
//     counter, and rejects mismatched snapshots without partial writes;
//   - a GtvTrainer restored from a mid-training checkpoint produces a
//     loss trajectory and sample hash bit-identical to the uninterrupted
//     run — in memory and through the GTVT container on disk;
//   - corrupt/truncated/mismatched GTVT containers are rejected with
//     CheckpointError, never a crash or a silently wrong model.
#include "core/resume.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/gtv.h"
#include "data/datasets.h"
#include "nn/adam.h"
#include "serve/checkpoint.h"
#include "tensor/rng.h"

namespace gtv::core {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

GtvOptions small_options() {
  GtvOptions options;
  options.exact_gradient_penalty = false;
  options.gan.batch_size = 16;
  options.gan.d_steps_per_round = 1;
  options.gan.hidden = 32;
  options.generator_hidden = 48;
  return options;
}

std::vector<data::Table> small_shards(std::uint64_t seed = 11) {
  Rng rng(seed ^ 0xda7aULL);
  const data::Table table = data::make_dataset("loan", 48, rng);
  std::vector<std::vector<std::size_t>> groups(2);
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    groups[c < (table.n_cols() + 1) / 2 ? 0 : 1].push_back(c);
  }
  return data::vertical_split(table, groups);
}

TEST(RngStateTest, RoundTripResumesExactDrawSequence) {
  Rng rng(42);
  // Mixed draws; an odd normal() count leaves a Box-Muller spare cached,
  // the subtlest part of the stream position.
  for (int i = 0; i < 3; ++i) rng.next_u64();
  for (int i = 0; i < 7; ++i) rng.normal();

  const Rng::State state = rng.state();
  EXPECT_TRUE(state.has_spare);

  Rng restored(999);  // different seed: everything must come from the state
  restored.set_state(state);
  EXPECT_TRUE(restored.state() == state);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(restored.next_u64(), rng.next_u64()) << "draw " << i;
  }
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(restored.normal(), rng.normal()) << "normal " << i;
  }
}

TEST(RngStateTest, SpareMattersForNormalSequence) {
  Rng a(7);
  a.normal();  // leaves a spare cached
  Rng b(7);
  b.normal();
  Rng::State stripped = a.state();
  stripped.has_spare = false;
  b.set_state(stripped);
  // Dropping the spare desynchronizes the normal stream — this is exactly
  // the bug the spare serialization exists to prevent.
  EXPECT_NE(a.normal(), b.normal());
}

TEST(AdamStateTest, RoundTripAndMismatchRejection) {
  ag::Var x(Tensor::of({{1.0f, 2.0f, 3.0f}}), true);
  nn::AdamOptions opts;
  opts.weight_decay = 0.0f;
  nn::Adam optimizer({x}, opts);
  for (int i = 0; i < 3; ++i) {
    optimizer.zero_grad();
    ag::backward(ag::sum_all(ag::square(x)));
    optimizer.step();
  }
  const nn::AdamState state = optimizer.state();
  EXPECT_EQ(state.step_count, 3u);
  ASSERT_EQ(state.m.size(), 1u);

  // A second optimizer over an identical parameter picks up the moments and
  // applies the exact same next update.
  ag::Var y(x.value(), true);
  nn::Adam twin({y}, opts);
  twin.set_state(state);
  optimizer.zero_grad();
  twin.zero_grad();
  ag::backward(ag::sum_all(ag::square(x)));
  ag::backward(ag::sum_all(ag::square(y)));
  optimizer.step();
  twin.step();
  EXPECT_FLOAT_EQ(x.value().max_abs_diff(y.value()), 0.0f);

  // Mismatched snapshots are rejected before any write.
  nn::AdamState bad = state;
  bad.m.clear();
  EXPECT_THROW(twin.set_state(bad), std::runtime_error);
  nn::AdamState bad_shape = state;
  bad_shape.m[0] = Tensor::zeros(2, 2);
  EXPECT_THROW(twin.set_state(bad_shape), std::runtime_error);
}

// The tentpole property, in-process: train K rounds, checkpoint, train to
// R; a fresh trainer rebuilt from the same data restores the checkpoint and
// reproduces rounds K..R and the final sample bit-for-bit.
TEST(TrainResumeTest, RestoredTrainerReproducesTrajectoryExactly) {
  const GtvOptions options = small_options();
  const auto shards = small_shards();

  GtvTrainer full(shards, options, 11);
  full.train(2);
  const serve::TrainCheckpoint ckpt = full.make_train_checkpoint();
  EXPECT_EQ(ckpt.round, 2u);
  EXPECT_EQ(ckpt.history.size(), 2u);
  full.train(3);  // rounds 3..5
  const auto expected = full.history();
  ASSERT_EQ(expected.size(), 5u);

  GtvTrainer resumed(shards, options, 11);
  resumed.restore_train_state(ckpt);
  EXPECT_EQ(resumed.rounds_completed(), 2u);
  resumed.train(3);
  const auto got = resumed.history();
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_FLOAT_EQ(got[r].d_loss, expected[r].d_loss) << "round " << r;
    EXPECT_FLOAT_EQ(got[r].g_loss, expected[r].g_loss) << "round " << r;
    EXPECT_FLOAT_EQ(got[r].gp, expected[r].gp) << "round " << r;
    EXPECT_FLOAT_EQ(got[r].wasserstein, expected[r].wasserstein) << "round " << r;
  }
  EXPECT_EQ(serve::hash_table(resumed.sample(64)), serve::hash_table(full.sample(64)));
}

TEST(TrainResumeTest, FileRoundTripPreservesEverything) {
  const GtvOptions options = small_options();
  const auto shards = small_shards();
  GtvTrainer trainer(shards, options, 11);
  trainer.train(2);
  const std::string path = temp_path("gtv_resume_roundtrip.gtvt");
  trainer.save_train_checkpoint(path);

  const serve::TrainCheckpoint loaded = serve::load_train_checkpoint(path);
  const serve::TrainCheckpoint direct = trainer.make_train_checkpoint();
  EXPECT_EQ(loaded.seed, direct.seed);
  EXPECT_EQ(loaded.round, direct.round);
  EXPECT_TRUE(loaded.shuffle_stream == direct.shuffle_stream);
  EXPECT_TRUE(loaded.publish_stream == direct.publish_stream);
  ASSERT_EQ(loaded.history.size(), direct.history.size());
  for (std::size_t r = 0; r < loaded.history.size(); ++r) {
    EXPECT_EQ(loaded.history[r].d_loss, direct.history[r].d_loss);
    EXPECT_EQ(loaded.history[r].g_loss, direct.history[r].g_loss);
  }
  ASSERT_EQ(loaded.clients.size(), direct.clients.size());
  for (std::size_t i = 0; i < loaded.clients.size(); ++i) {
    EXPECT_TRUE(loaded.clients[i].rng == direct.clients[i].rng);
    EXPECT_TRUE(loaded.clients[i].dp_rng == direct.clients[i].dp_rng);
    EXPECT_EQ(loaded.clients[i].original_row, direct.clients[i].original_row);
  }

  GtvTrainer resumed(shards, options, 11);
  resumed.restore_train_state(path);
  resumed.train(1);
  trainer.train(1);
  EXPECT_FLOAT_EQ(resumed.history().back().d_loss, trainer.history().back().d_loss);
  EXPECT_EQ(serve::hash_table(resumed.sample(32)), serve::hash_table(trainer.sample(32)));
  std::remove(path.c_str());
}

TEST(TrainResumeTest, MismatchedTrainerRejected) {
  const GtvOptions options = small_options();
  const auto shards = small_shards();
  GtvTrainer trainer(shards, options, 11);
  trainer.train(1);
  const serve::TrainCheckpoint ckpt = trainer.make_train_checkpoint();

  // Wrong seed: resume would rebuild different encoders and party streams.
  GtvTrainer other_seed(shards, options, 12);
  EXPECT_THROW(other_seed.restore_train_state(ckpt), serve::CheckpointError);

  // Wrong party count.
  serve::TrainCheckpoint dropped = ckpt;
  dropped.clients.pop_back();
  GtvTrainer same(shards, options, 11);
  EXPECT_THROW(same.restore_train_state(dropped), serve::CheckpointError);

  // Inconsistent round/history bookkeeping.
  serve::TrainCheckpoint skewed = ckpt;
  skewed.history.clear();
  EXPECT_THROW(same.restore_train_state(skewed), serve::CheckpointError);
}

TEST(TrainCheckpointTest, CorruptContainersRejected) {
  const GtvOptions options = small_options();
  GtvTrainer trainer(small_shards(), options, 11);
  trainer.train(1);
  const std::string path = temp_path("gtv_resume_corrupt.gtvt");
  trainer.save_train_checkpoint(path);
  const auto size = std::filesystem::file_size(path);

  // Bit flip inside the payload -> CRC mismatch.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(size / 2));
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.write(&byte, 1);
  }
  EXPECT_THROW(serve::load_train_checkpoint(path), serve::CheckpointError);

  // Truncations at many offsets must throw, never crash or misparse.
  trainer.save_train_checkpoint(path);
  for (std::uintmax_t cut = 0; cut < size; cut += size / 13 + 1) {
    std::filesystem::resize_file(path, cut);
    EXPECT_THROW(serve::load_train_checkpoint(path), serve::CheckpointError)
        << "cut=" << cut;
  }

  // Trailing garbage after the CRC.
  trainer.save_train_checkpoint(path);
  {
    std::ofstream file(path, std::ios::binary | std::ios::app);
    file.put('x');
  }
  EXPECT_THROW(serve::load_train_checkpoint(path), serve::CheckpointError);

  // Wrong magic (a GTVK header is not a GTVT container), and no file at all.
  {
    std::ofstream file(path, std::ios::binary);
    const std::uint32_t junk = serve::kCheckpointMagic;
    file.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  EXPECT_THROW(serve::load_train_checkpoint(path), serve::CheckpointError);
  EXPECT_THROW(serve::load_train_checkpoint(temp_path("gtv_resume_missing.gtvt")),
               serve::CheckpointError);
  std::remove(path.c_str());
}

// Per-party codec fuzz: every truncation of an encoded train part must be
// rejected, and a decoded part survives an encode/decode round-trip.
TEST(TrainCheckpointTest, PartyCodecRoundTripAndTruncationFuzz) {
  const GtvOptions options = small_options();
  GtvTrainer trainer(small_shards(), options, 11);
  trainer.train(1);
  const serve::TrainCheckpoint ckpt = trainer.make_train_checkpoint();

  const auto server_bytes = serve::encode_server_train_part(ckpt.server);
  const serve::ServerTrainPart server2 =
      serve::decode_server_train_part(server_bytes);
  EXPECT_TRUE(server2.rng == ckpt.server.rng);
  EXPECT_EQ(server2.adam_g.step_count, ckpt.server.adam_g.step_count);
  ASSERT_EQ(server2.g_top.size(), ckpt.server.g_top.size());
  for (std::size_t t = 0; t < server2.g_top.size(); ++t) {
    EXPECT_FLOAT_EQ(server2.g_top[t].max_abs_diff(ckpt.server.g_top[t]), 0.0f);
  }

  const auto client_bytes = serve::encode_client_train_part(ckpt.clients[0]);
  const serve::ClientTrainPart client2 =
      serve::decode_client_train_part(client_bytes);
  EXPECT_TRUE(client2.dp_rng == ckpt.clients[0].dp_rng);
  EXPECT_EQ(client2.original_row, ckpt.clients[0].original_row);

  for (std::size_t cut = 0; cut < server_bytes.size();
       cut += server_bytes.size() / 29 + 1) {
    const std::vector<std::uint8_t> maimed(server_bytes.begin(),
                                           server_bytes.begin() + cut);
    EXPECT_THROW(serve::decode_server_train_part(maimed), serve::CheckpointError)
        << "cut=" << cut;
  }
  for (std::size_t cut = 0; cut < client_bytes.size();
       cut += client_bytes.size() / 29 + 1) {
    const std::vector<std::uint8_t> maimed(client_bytes.begin(),
                                           client_bytes.begin() + cut);
    EXPECT_THROW(serve::decode_client_train_part(maimed), serve::CheckpointError)
        << "cut=" << cut;
  }
  // Trailing bytes after a valid part are as suspicious as missing ones.
  auto padded = client_bytes;
  padded.push_back(0);
  EXPECT_THROW(serve::decode_client_train_part(padded), serve::CheckpointError);
}

// DP parity: with dp_noise_std > 0 every client draws from its own dp
// stream, so the loopback trainer and a restored run still agree exactly.
TEST(TrainResumeTest, DpNoiseResumeStaysExact) {
  GtvOptions options = small_options();
  options.dp_noise_std = 0.2f;
  const auto shards = small_shards();

  GtvTrainer full(shards, options, 11);
  full.train(1);
  const serve::TrainCheckpoint ckpt = full.make_train_checkpoint();
  full.train(2);

  GtvTrainer resumed(shards, options, 11);
  resumed.restore_train_state(ckpt);
  resumed.train(2);
  ASSERT_EQ(resumed.history().size(), full.history().size());
  EXPECT_FLOAT_EQ(resumed.history().back().d_loss, full.history().back().d_loss);
  EXPECT_FLOAT_EQ(resumed.history().back().g_loss, full.history().back().g_loss);
}

}  // namespace
}  // namespace gtv::core
