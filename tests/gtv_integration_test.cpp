// End-to-end tests of the GTV trainer: protocol mechanics, all nine
// partitions, training-with-shuffling invariants, the reconstruction
// attack with and without the defence, and secure publication.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/gtv.h"
#include "data/datasets.h"

namespace gtv::core {
namespace {

using data::ColumnType;
using data::Table;

Table two_party_source(std::size_t rows, Rng& rng) {
  Table t({{"income", ColumnType::kContinuous, {}, {}},
           {"gender", ColumnType::kCategorical, {"M", "F"}, {}},
           {"spend", ColumnType::kContinuous, {}, {}},
           {"loan", ColumnType::kCategorical, {"N", "Y"}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    const double z = rng.normal();
    const auto gender = static_cast<double>(rng.uniform() < 0.5 + 0.3 * std::tanh(z));
    const auto loan = static_cast<double>(rng.uniform() < 0.3 + 0.3 * std::tanh(z));
    t.append_row({50 + 12 * z + rng.normal(0, 2), gender, 20 + 6 * z + rng.normal(0, 2), loan});
  }
  return t;
}

GtvOptions small_options() {
  GtvOptions options;
  options.gan.noise_dim = 8;
  options.gan.hidden = 16;
  options.generator_hidden = 16;
  options.gan.batch_size = 24;
  options.gan.d_steps_per_round = 2;
  return options;
}

std::vector<Table> split_two(const Table& t) {
  return data::vertical_split(t, {{0, 1}, {2, 3}});
}

TEST(GtvTrainerTest, ConstructionValidation) {
  Rng rng(1);
  Table t = two_party_source(60, rng);
  auto shards = split_two(t);
  EXPECT_THROW(GtvTrainer({}, small_options(), 1), std::invalid_argument);
  // Row misalignment rejected.
  auto bad = shards;
  bad[1] = bad[1].slice_rows(0, 30);
  EXPECT_THROW(GtvTrainer(std::move(bad), small_options(), 1), std::invalid_argument);
}

TEST(GtvTrainerTest, OneRoundFiniteLossesAndTraffic) {
  Rng rng(2);
  auto shards = split_two(two_party_source(80, rng));
  GtvTrainer trainer(std::move(shards), small_options(), 5);
  auto losses = trainer.train_round();
  EXPECT_TRUE(std::isfinite(losses.d_loss));
  EXPECT_TRUE(std::isfinite(losses.g_loss));
  EXPECT_TRUE(std::isfinite(losses.gp));
  // Every link saw traffic: 2 clients x up/down.
  EXPECT_GT(trainer.traffic().stats("client0->server").bytes, 0u);
  EXPECT_GT(trainer.traffic().stats("client1->server").bytes, 0u);
  EXPECT_GT(trainer.traffic().stats("server->client0").bytes, 0u);
  EXPECT_GT(trainer.traffic().stats("server->client1").bytes, 0u);
}

TEST(GtvTrainerTest, RoundTelemetryMatchesTrafficMeter) {
  Rng rng(9);
  auto shards = split_two(two_party_source(80, rng));
  GtvTrainer trainer(std::move(shards), small_options(), 6);

  std::size_t callbacks = 0;
  trainer.train(3, [&](std::size_t round, const gan::RoundLosses& losses,
                       const obs::RoundTelemetry& telemetry) {
    ++callbacks;
    EXPECT_EQ(telemetry.round, round);
    EXPECT_FLOAT_EQ(telemetry.d_loss, losses.d_loss);
    EXPECT_FLOAT_EQ(telemetry.g_loss, losses.g_loss);
    EXPECT_GT(telemetry.total_ms, 0.0);
    // Every paper phase was timed (shuffling is on in small_options()).
    EXPECT_GT(telemetry.cv_generation_ms, 0.0);
    EXPECT_GT(telemetry.fake_forward_ms, 0.0);
    EXPECT_GT(telemetry.real_forward_ms, 0.0);
    EXPECT_GT(telemetry.critic_backward_ms, 0.0);
    EXPECT_GT(telemetry.generator_step_ms, 0.0);
    EXPECT_GT(telemetry.shuffle_ms, 0.0);
    EXPECT_GE(telemetry.total_ms,
              telemetry.cv_generation_ms + telemetry.fake_forward_ms +
                  telemetry.real_forward_ms + telemetry.generator_step_ms);
    EXPECT_GT(telemetry.bytes_sent(), 0u);
  });
  EXPECT_EQ(callbacks, 3u);
  ASSERT_EQ(trainer.telemetry().size(), 3u);

  // The per-round link deltas are exact: summed over the run they
  // reproduce the TrafficMeter's totals, link by link.
  const obs::RoundTelemetry sum = trainer.telemetry_snapshot();
  EXPECT_EQ(sum.round, 3u);
  EXPECT_EQ(sum.bytes_sent(), trainer.traffic().total().bytes);
  EXPECT_EQ(sum.messages_sent(), trainer.traffic().total().messages);
  for (const auto& link : sum.links) {
    EXPECT_EQ(link.bytes, trainer.traffic().stats(link.link).bytes) << link.link;
    EXPECT_EQ(link.messages, trainer.traffic().stats(link.link).messages) << link.link;
  }

  const std::string json = trainer.telemetry_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"round\":2"), std::string::npos);
  EXPECT_NE(json.find("\"link\":\"client0->server\""), std::string::npos);
}

class PartitionParamTest : public ::testing::TestWithParam<PartitionSpec> {};

TEST_P(PartitionParamTest, TrainsAndSamplesUnderEveryPartition) {
  Rng rng(3);
  auto shards = split_two(two_party_source(60, rng));
  GtvOptions options = small_options();
  options.partition = GetParam();
  GtvTrainer trainer(std::move(shards), options, 11);
  trainer.train(2);
  for (const auto& losses : trainer.history()) {
    EXPECT_TRUE(std::isfinite(losses.d_loss)) << GetParam().name();
    EXPECT_TRUE(std::isfinite(losses.g_loss)) << GetParam().name();
  }
  Table synth = trainer.sample(30);
  EXPECT_EQ(synth.n_rows(), 30u);
  EXPECT_EQ(synth.n_cols(), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllNine, PartitionParamTest,
                         ::testing::ValuesIn(PartitionSpec::all_nine()),
                         [](const auto& info) {
                           std::string n = info.param.name();
                           for (char& c : n) {
                             if (c == ' ' || c == '^') c = '_';
                           }
                           return n;
                         });

TEST(GtvTrainerTest, ShufflingKeepsClientsRowAligned) {
  Rng rng(4);
  Table source = two_party_source(50, rng);
  auto shards = split_two(source);
  GtvTrainer trainer(std::move(shards), small_options(), 7);
  trainer.train(3);
  // Join the (shuffled) client tables; every row must still be one of the
  // original joined rows — alignment survives only if all clients applied
  // identical permutations.
  Table joined = data::Table::concat_columns(
      {trainer.client(0).local_table(), trainer.client(1).local_table()});
  ASSERT_EQ(joined.n_rows(), source.n_rows());
  std::multiset<std::string> original, after;
  auto key = [](const Table& t, std::size_t r) {
    std::string k;
    for (std::size_t c = 0; c < t.n_cols(); ++c) k += std::to_string(t.cell(r, c)) + "|";
    return k;
  };
  for (std::size_t r = 0; r < source.n_rows(); ++r) {
    original.insert(key(source, r));
    after.insert(key(joined, r));
  }
  EXPECT_EQ(original, after);
  // And the order actually changed (50 rows; identity permutation 3x in a
  // row is essentially impossible).
  bool changed = false;
  for (std::size_t r = 0; r < source.n_rows() && !changed; ++r) {
    changed = key(source, r) != key(joined, r);
  }
  EXPECT_TRUE(changed);
}

TEST(GtvTrainerTest, AttackSucceedsWithoutShufflingFailsWith) {
  // Pure-categorical two-client data maximizes what the CV reveals.
  Rng rng(5);
  Table t({{"gender", ColumnType::kCategorical, {"M", "F"}, {}},
           {"loan", ColumnType::kCategorical, {"Y", "N"}, {}}});
  for (int i = 0; i < 40; ++i) {
    t.append_row({static_cast<double>(rng.uniform_index(2)),
                  static_cast<double>(rng.uniform_index(2))});
  }
  auto run = [&](bool shuffling) {
    GtvOptions options = small_options();
    options.training_with_shuffling = shuffling;
    auto shards = data::vertical_split(t, {{0}, {1}});
    GtvTrainer trainer(std::move(shards), options, 13);
    trainer.train(25);
    return trainer.attack_evaluation();
  };
  auto no_defence = run(false);
  auto with_defence = run(true);
  EXPECT_GT(no_defence.claims, 0u);
  EXPECT_GT(no_defence.accuracy, 0.95);
  EXPECT_LT(with_defence.accuracy, no_defence.accuracy - 0.15);
}

TEST(GtvTrainerTest, PublicationShufflesButKeepsShardsAligned) {
  Rng rng(6);
  auto shards = split_two(two_party_source(60, rng));
  GtvTrainer trainer(std::move(shards), small_options(), 17);
  trainer.train(2);
  auto published = trainer.sample_per_client(40);
  ASSERT_EQ(published.size(), 2u);
  EXPECT_EQ(published[0].n_rows(), 40u);
  EXPECT_EQ(published[1].n_rows(), 40u);
  // Two consecutive publications use different secret permutations, but
  // within one publication both shards used the same one (row alignment is
  // guaranteed by construction; just verify joining works).
  Table joined = data::Table::concat_columns(published);
  EXPECT_EQ(joined.n_cols(), 4u);
}

TEST(GtvTrainerTest, TopOnlyGradientPenaltyModeRuns) {
  Rng rng(7);
  auto shards = split_two(two_party_source(60, rng));
  GtvOptions options = small_options();
  options.exact_gradient_penalty = false;
  GtvTrainer trainer(std::move(shards), options, 19);
  auto losses = trainer.train_round();
  EXPECT_TRUE(std::isfinite(losses.d_loss));
  EXPECT_TRUE(std::isfinite(losses.gp));
}

TEST(GtvTrainerTest, ThreeClientsWithUnevenFeatures) {
  Rng rng(8);
  Table t = data::make_loan(80, rng);
  // 13 columns over 3 clients: 6 / 4 / 3.
  std::vector<std::vector<std::size_t>> groups = {{0, 1, 2, 3, 4, 5},
                                                  {6, 7, 8, 9},
                                                  {10, 11, 12}};
  auto shards = data::vertical_split(t, groups);
  GtvOptions options = small_options();
  GtvTrainer trainer(std::move(shards), options, 23);
  trainer.train(2);
  Table synth = trainer.sample(25);
  EXPECT_EQ(synth.n_cols(), 13u);
  EXPECT_EQ(synth.n_rows(), 25u);
  EXPECT_EQ(trainer.n_clients(), 3u);
}

TEST(GtvTrainerTest, SyntheticCategoriesAreValid) {
  Rng rng(9);
  auto shards = split_two(two_party_source(80, rng));
  GtvTrainer trainer(std::move(shards), small_options(), 29);
  trainer.train(3);
  Table synth = trainer.sample(50);
  for (double v : synth.column(1)) EXPECT_TRUE(v == 0.0 || v == 1.0);
  for (double v : synth.column(3)) EXPECT_TRUE(v == 0.0 || v == 1.0);
}

TEST(GtvTrainerTest, CommunicationGrowsWithRealPassDesign) {
  // The non-contributing clients send full-table logits every critic step
  // (the paper's privacy-motivated design); upstream traffic must exceed
  // what batch-only transfers would produce.
  Rng rng(10);
  auto shards = split_two(two_party_source(100, rng));
  GtvOptions options = small_options();
  GtvTrainer trainer(std::move(shards), options, 31);
  trainer.train_round();
  const auto up0 = trainer.traffic().stats("client0->server").bytes;
  const auto up1 = trainer.traffic().stats("client1->server").bytes;
  // Full-table real pass: at least one client transferred >= 100-row logits.
  const std::size_t full_row_bytes = 100 * trainer.client(0).d_out_width() * sizeof(float);
  EXPECT_GT(up0 + up1, full_row_bytes);
}

}  // namespace
}  // namespace gtv::core
