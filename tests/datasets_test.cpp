#include "data/datasets.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gtv::data {
namespace {

class DatasetParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetParamTest, GeneratesRequestedRows) {
  Rng rng(1);
  Table t = make_dataset(GetParam(), 500, rng);
  EXPECT_EQ(t.n_rows(), 500u);
  EXPECT_GT(t.n_cols(), 10u);
}

TEST_P(DatasetParamTest, HasDeclaredTargetColumn) {
  Rng rng(2);
  Table t = make_dataset(GetParam(), 200, rng);
  const std::size_t target = t.column_index(target_column(GetParam()));
  EXPECT_EQ(t.spec(target).type, ColumnType::kCategorical);
  EXPECT_GE(t.spec(target).cardinality(), 2u);
}

TEST_P(DatasetParamTest, AllClassesRepresented) {
  Rng rng(3);
  Table t = make_dataset(GetParam(), 4000, rng);
  const std::size_t target = t.column_index(target_column(GetParam()));
  auto counts = t.class_counts(target);
  for (std::size_t k = 0; k < counts.size(); ++k) {
    EXPECT_GT(counts[k], 0u) << GetParam() << " class " << k << " empty";
  }
}

TEST_P(DatasetParamTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  Table t1 = make_dataset(GetParam(), 50, a);
  Table t2 = make_dataset(GetParam(), 50, b);
  ASSERT_TRUE(t1.same_schema(t2));
  for (std::size_t r = 0; r < 50; ++r)
    for (std::size_t c = 0; c < t1.n_cols(); ++c)
      EXPECT_DOUBLE_EQ(t1.cell(r, c), t2.cell(r, c));
}

TEST_P(DatasetParamTest, FeaturesCorrelateWithTarget) {
  // The latent-factor construction must make features predictive: at least
  // one continuous column's class-conditional means must differ noticeably.
  Rng rng(4);
  Table t = make_dataset(GetParam(), 3000, rng);
  const std::size_t target = t.column_index(target_column(GetParam()));
  double best_separation = 0.0;
  for (std::size_t c = 0; c < t.n_cols(); ++c) {
    if (t.spec(c).type == ColumnType::kCategorical) continue;
    // Mean by target class 0 vs rest.
    double m0 = 0, m1 = 0, s = 0;
    std::size_t n0 = 0, n1 = 0;
    for (std::size_t r = 0; r < t.n_rows(); ++r) {
      const double v = t.cell(r, c);
      s += v * v;
      if (t.cell(r, target) == 0) {
        m0 += v;
        ++n0;
      } else {
        m1 += v;
        ++n1;
      }
    }
    if (n0 == 0 || n1 == 0) continue;
    m0 /= n0;
    m1 /= n1;
    const double scale = std::sqrt(s / t.n_rows()) + 1e-9;
    best_separation = std::max(best_separation, std::abs(m0 - m1) / scale);
  }
  EXPECT_GT(best_separation, 0.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetParamTest, ::testing::ValuesIn(dataset_names()),
                         [](const auto& info) { return info.param; });

TEST(DatasetsTest, ExpectedFeatureCounts) {
  Rng rng(5);
  // Feature counts (excluding target) mirror the real datasets.
  EXPECT_EQ(make_loan(10, rng).n_cols(), 13u);       // 12 features + target
  EXPECT_EQ(make_adult(10, rng).n_cols(), 15u);      // 14 features + target
  EXPECT_EQ(make_covtype(10, rng).n_cols(), 55u);    // 54 features + target
  EXPECT_EQ(make_intrusion(10, rng).n_cols(), 42u);  // 41 features + target
  EXPECT_EQ(make_credit(10, rng).n_cols(), 31u);     // 30 features + target
}

TEST(DatasetsTest, ImbalancedTargets) {
  Rng rng(6);
  Table credit = make_credit(8000, rng);
  auto counts = credit.class_counts(credit.column_index("fraud"));
  const double fraud_rate = static_cast<double>(counts[1]) / 8000.0;
  EXPECT_LT(fraud_rate, 0.06);
  EXPECT_GT(fraud_rate, 0.001);

  Table loan = make_loan(8000, rng);
  auto loan_counts = loan.class_counts(loan.column_index("personal_loan"));
  const double positive = static_cast<double>(loan_counts[1]) / 8000.0;
  EXPECT_LT(positive, 0.35);
  EXPECT_GT(positive, 0.02);
}

TEST(DatasetsTest, MixedColumnsHaveSpecialMass) {
  Rng rng(7);
  Table adult = make_adult(4000, rng);
  const std::size_t gain = adult.column_index("capital_gain");
  ASSERT_EQ(adult.spec(gain).type, ColumnType::kMixed);
  std::size_t zeros = 0;
  for (double v : adult.column(gain)) zeros += (v == 0.0);
  EXPECT_GT(static_cast<double>(zeros) / 4000.0, 0.5);
}

TEST(DatasetsTest, UnknownNameThrows) {
  Rng rng(8);
  EXPECT_THROW(make_dataset("nope", 10, rng), std::invalid_argument);
  EXPECT_THROW(target_column("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace gtv::data
