// gtv::obs::bb — crash-safe flight recorder.
//
// The interesting properties are structural: every completed append is a
// CRC-valid frame in the file at all times, seqs are unique and monotone
// under concurrency, ring wrap retains the newest contiguous window, torn
// bytes are skipped rather than misparsed, and the fatal-signal path
// leaves a crash record behind (proved with a fork()ed child that really
// dies of SIGSEGV).
#include "obs/blackbox.h"

#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace gtv::obs::bb {
namespace {

std::string tmp_path(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name + "." +
         std::to_string(::getpid()) + ".bbox";
}

RunHeaderRecord test_header(const std::string& party) {
  RunHeaderRecord header;
  header.party = party;
  header.n_clients = 2;
  header.rounds = 3;
  header.seed = 7;
  return header;
}

TEST(BlackBoxPayloadTest, AllRecordTypesRoundTrip) {
  std::uint8_t buf[kMaxRecordPayload];

  RunHeaderRecord run = test_header("client1");
  run.wall_us = 1234567;
  run.pid = 4242;
  std::size_t n = run.encode(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  const RunHeaderRecord run2 = RunHeaderRecord::decode(buf, n);
  EXPECT_EQ(run2.party, "client1");
  EXPECT_EQ(run2.n_clients, 2u);
  EXPECT_EQ(run2.rounds, 3u);
  EXPECT_EQ(run2.seed, 7u);
  EXPECT_EQ(run2.wall_us, 1234567u);
  EXPECT_EQ(run2.pid, 4242u);

  n = PhaseRecord{9, 3}.encode(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  EXPECT_EQ(PhaseRecord::decode(buf, n).round, 9u);
  EXPECT_EQ(PhaseRecord::decode(buf, n).phase, 3u);

  n = LossRecord{4, 1.5f, -2.5f, 0.25f, 3.0f}.encode(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  const LossRecord loss = LossRecord::decode(buf, n);
  EXPECT_EQ(loss.round, 4u);
  EXPECT_FLOAT_EQ(loss.d_loss, 1.5f);
  EXPECT_FLOAT_EQ(loss.g_loss, -2.5f);
  EXPECT_FLOAT_EQ(loss.gp, 0.25f);
  EXPECT_FLOAT_EQ(loss.wasserstein, 3.0f);

  AlertRecord alert;
  alert.severity = 2;
  alert.round = 6;
  alert.rule = "wasserstein_drift";
  n = alert.encode(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  EXPECT_EQ(AlertRecord::decode(buf, n).rule, "wasserstein_drift");
  EXPECT_EQ(AlertRecord::decode(buf, n).severity, 2u);

  NetEventRecord event;
  event.kind = NetEvent::kTimeout;
  event.link = "driver->server";
  n = event.encode(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  EXPECT_EQ(NetEventRecord::decode(buf, n).kind, NetEvent::kTimeout);
  EXPECT_EQ(NetEventRecord::decode(buf, n).link, "driver->server");

  n = StallRecord{30500, 2, 3}.encode(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  EXPECT_EQ(StallRecord::decode(buf, n).stalled_ms, 30500u);

  ThreadStackRecord stack;
  stack.tid = 777;
  stack.pcs = {0xdeadbeefULL, 0x1234ULL};
  n = stack.encode(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  EXPECT_EQ(ThreadStackRecord::decode(buf, n).tid, 777u);
  EXPECT_EQ(ThreadStackRecord::decode(buf, n).pcs, stack.pcs);

  CrashRecord crash;
  crash.signal = 11;
  crash.fault_addr = 0x10;
  crash.pcs = {0xabcULL};
  n = crash.encode(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  EXPECT_EQ(CrashRecord::decode(buf, n).signal, 11u);
  EXPECT_EQ(CrashRecord::decode(buf, n).fault_addr, 0x10u);
  EXPECT_EQ(CrashRecord::decode(buf, n).pcs, crash.pcs);

  ShutdownRecord down;
  down.code = 130;
  down.reason = "SIGINT";
  n = down.encode(buf, sizeof(buf));
  ASSERT_GT(n, 0u);
  EXPECT_EQ(ShutdownRecord::decode(buf, n).code, 130u);
  EXPECT_EQ(ShutdownRecord::decode(buf, n).reason, "SIGINT");
}

TEST(BlackBoxPayloadTest, DecodeRejectsTruncation) {
  std::uint8_t buf[kMaxRecordPayload];
  AlertRecord alert;
  alert.rule = "rule";
  const std::size_t n = alert.encode(buf, sizeof(buf));
  for (std::size_t cut = 0; cut < n; ++cut) {
    EXPECT_THROW(AlertRecord::decode(buf, cut), std::runtime_error) << cut;
  }
}

TEST(BlackBoxTest, AppendReadRoundTrip) {
  const std::string path = tmp_path("roundtrip");
  {
    BlackBox box(path, test_header("server"));
    std::uint8_t buf[64];
    for (std::uint64_t r = 0; r < 5; ++r) {
      box.append(RecordType::kPhase, buf, PhaseRecord{r, 2}.encode(buf, sizeof(buf)));
      box.append(RecordType::kLoss, buf,
                 LossRecord{r, 0.1f, 0.2f, 0.3f, 0.4f}.encode(buf, sizeof(buf)));
    }
    EXPECT_EQ(box.records_written(), 11u);  // run header + 10
    EXPECT_EQ(box.records_dropped(), 0u);
  }
  const ReadResult ring = read_ring(path);
  EXPECT_TRUE(validate(ring).empty()) << validate(ring).front();
  EXPECT_EQ(ring.records.size(), 11u);
  EXPECT_EQ(ring.crc_rejects, 0u);
  ASSERT_TRUE(ring.has_run_header);
  EXPECT_EQ(ring.run_header.party, "server");
  EXPECT_GT(ring.run_header.wall_us, 0u);  // filled in by the constructor
  EXPECT_EQ(ring.records.front().type, RecordType::kRunHeader);
  // Timestamps are monotone in seq order (single writer).
  for (std::size_t i = 1; i < ring.records.size(); ++i) {
    EXPECT_EQ(ring.records[i].seq, ring.records[i - 1].seq + 1);
    EXPECT_GE(ring.records[i].t_us, ring.records[i - 1].t_us);
  }
  std::remove(path.c_str());
}

TEST(BlackBoxTest, FileIsCompleteWithoutDestructorOrSync) {
  // The crash-safety claim: records are in the file as appended, no flush
  // needed. Read the ring while the writer is still alive and unsynced.
  const std::string path = tmp_path("live");
  BlackBox box(path, test_header("server"));
  std::uint8_t buf[64];
  box.append(RecordType::kPhase, buf, PhaseRecord{1, 2}.encode(buf, sizeof(buf)));
  const ReadResult ring = read_ring(path);
  EXPECT_TRUE(validate(ring).empty());
  EXPECT_EQ(ring.records.size(), 2u);
  std::remove(path.c_str());
}

TEST(BlackBoxTest, OversizePayloadIsCountedDropped) {
  const std::string path = tmp_path("oversize");
  BlackBox box(path, test_header("server"));
  std::vector<std::uint8_t> big(kMaxRecordPayload + 1, 0xab);
  box.append(RecordType::kAlert, big.data(), big.size());
  EXPECT_EQ(box.records_dropped(), 1u);
  EXPECT_EQ(box.records_written(), 1u);  // just the run header
  const ReadResult ring = read_ring(path);
  EXPECT_EQ(ring.info.records_dropped, 1u);
  EXPECT_TRUE(validate(ring).empty());
  std::remove(path.c_str());
}

TEST(BlackBoxTest, RingWrapRetainsNewestContiguousWindow) {
  const std::string path = tmp_path("wrap");
  const std::size_t kWrites = 2000;  // minimum 16 KiB ring: ~340 frames fit
  {
    BlackBox box(path, test_header("server"), BlackBoxOptions{kMinRingCapacity});
    std::uint8_t buf[64];
    for (std::uint64_t i = 0; i < kWrites; ++i) {
      box.append(RecordType::kPhase, buf, PhaseRecord{i, 1}.encode(buf, sizeof(buf)));
    }
    EXPECT_EQ(box.records_written(), kWrites + 1);
  }
  const ReadResult ring = read_ring(path);
  ASSERT_FALSE(ring.records.empty());
  // The newest record always survives, the oldest are overwritten, and
  // what remains is one contiguous seq window ending at the last append.
  EXPECT_EQ(ring.records.back().seq, kWrites);  // run header took seq 0
  EXPECT_LT(ring.records.size(), kWrites);
  for (std::size_t i = 1; i < ring.records.size(); ++i) {
    EXPECT_EQ(ring.records[i].seq, ring.records[i - 1].seq + 1);
  }
  // The run header was lapped away, so validate() flags exactly that and
  // nothing else.
  const auto problems = validate(ring);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("run header"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BlackBoxTest, TornFrameIsSkippedNotMisparsed) {
  const std::string path = tmp_path("torn");
  {
    BlackBox box(path, test_header("server"));
    std::uint8_t buf[64];
    for (std::uint64_t i = 0; i < 10; ++i) {
      box.append(RecordType::kPhase, buf, PhaseRecord{i, 1}.encode(buf, sizeof(buf)));
    }
  }
  // Corrupt one payload byte of a mid-ring frame: its CRC must fail and
  // only that record disappears.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    // Frame layout: run header first; phase frames are 32 + 16 bytes each.
    // Flip a payload byte of the 3rd phase frame (safely inside the ring).
    const long run_header_total = 32 + ((40 + 2 + 6 + 7) / 8) * 8;
    const long target = static_cast<long>(kRingHeaderBytes) + run_header_total +
                        2 * 48 + 32 + 3;
    std::fseek(f, target, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, target, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
  }
  const ReadResult ring = read_ring(path);
  EXPECT_EQ(ring.records.size(), 10u);  // 11 written, 1 torn
  EXPECT_GE(ring.crc_rejects, 1u);
  std::set<std::uint64_t> seqs;
  for (const Record& rec : ring.records) seqs.insert(rec.seq);
  EXPECT_EQ(seqs.size(), ring.records.size());
  // One interior gap of one seq: tolerated by validate (torn writer).
  EXPECT_TRUE(validate(ring).empty());
  std::remove(path.c_str());
}

TEST(BlackBoxTest, ConcurrentAppendsKeepSeqsUniqueAndFramesValid) {
  const std::string path = tmp_path("concurrent");
  const int kThreads = 4;
  const std::uint64_t kPerThread = 3000;
  {
    // 4 MiB ring: all 12k frames (48 bytes each) fit without wrapping.
    BlackBox box(path, test_header("server"), BlackBoxOptions{4u << 20});
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&box, t] {
        std::uint8_t buf[64];
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          const PhaseRecord rec{i, static_cast<std::uint32_t>(t)};
          box.append(RecordType::kPhase, buf, rec.encode(buf, sizeof(buf)));
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(box.records_written(), kThreads * kPerThread + 1);
  }
  const ReadResult ring = read_ring(path);
  EXPECT_TRUE(validate(ring).empty());
  EXPECT_EQ(ring.records.size(), kThreads * kPerThread + 1);
  EXPECT_EQ(ring.crc_rejects, 0u);
  std::remove(path.c_str());
}

TEST(BlackBoxTest, ReadRejectsNonRingFiles) {
  const std::string path = tmp_path("notaring");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::vector<std::uint8_t> junk(kRingHeaderBytes + 64, 0x5a);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  EXPECT_THROW(read_ring(path), std::runtime_error);
  EXPECT_THROW(read_ring(path + ".missing"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BlackBoxTest, NoteHelpersAreNoOpsWithoutGlobalInstance) {
  // Must not crash before open_global: every hook site relies on this.
  note_phase(1, 2);
  note_loss(1, 0.1f, 0.2f, 0.3f, 0.4f);
  note_alert(1, 2, "rule");
  note_net_event(NetEvent::kRetry, "a->b");
  note_shutdown(0, "clean");
}

TEST(StallWatchdogTest, DetectsStallAndDumpsStacks) {
  const std::string path = tmp_path("stall");
  BlackBox* box = BlackBox::open_global(path, test_header("server"));
  std::atomic<std::uint64_t> round{0};
  std::atomic<std::uint32_t> phase{2};

  StallWatchdogOptions options;
  options.stall_ms = 250;
  options.poll_ms = 20;
  options.dump_stacks = true;
  StallWatchdog watchdog(&round, &phase, options);
  watchdog.start();

  // Progress for a while: no stall may fire.
  for (int i = 0; i < 5; ++i) {
    round.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_EQ(watchdog.stalls_detected(), 0u);

  // Freeze. The watchdog must record a stall and at least one stack.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (watchdog.stalls_detected() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  watchdog.stop();
  EXPECT_GE(watchdog.stalls_detected(), 1u);

  box->sync();
  const ReadResult ring = read_ring(path);
  bool saw_stall = false, saw_stack = false;
  for (const Record& rec : ring.records) {
    if (rec.type == RecordType::kStall) {
      saw_stall = true;
      const StallRecord stall =
          StallRecord::decode(rec.payload.data(), rec.payload.size());
      EXPECT_EQ(stall.round, 5u);
      EXPECT_GE(stall.stalled_ms, 250u);
    }
    if (rec.type == RecordType::kThreadStack) saw_stack = true;
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_stack);
  std::remove(path.c_str());
}

TEST(CrashHandlerTest, SegfaultingChildLeavesCrashRecord) {
  const std::string path = tmp_path("crash");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: open a recorder, arm the handlers, die for real.
    BlackBox::open_global(path, test_header("victim"));
    install_crash_handlers();
    note_phase(3, 2);
    volatile int* null_ptr = nullptr;
    *null_ptr = 42;  // SIGSEGV
    ::_exit(99);     // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const ReadResult ring = read_ring(path);
  EXPECT_TRUE(validate(ring).empty());
  bool saw_crash = false;
  for (const Record& rec : ring.records) {
    if (rec.type != RecordType::kCrash) continue;
    saw_crash = true;
    const CrashRecord crash = CrashRecord::decode(rec.payload.data(), rec.payload.size());
    EXPECT_EQ(crash.signal, static_cast<std::uint32_t>(SIGSEGV));
#if defined(__GLIBC__)
    EXPECT_FALSE(crash.pcs.empty());
#endif
  }
  EXPECT_TRUE(saw_crash);
  // No shutdown record: the process died, it didn't exit.
  for (const Record& rec : ring.records) {
    EXPECT_NE(rec.type, RecordType::kShutdown);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gtv::obs::bb
