#include "eval/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gtv::eval {
namespace {

using data::ColumnType;
using data::Table;

Table correlated_table(std::size_t rows, double coupling, Rng& rng) {
  // 'a' continuous, 'b' continuous correlated with a, 'c' categorical
  // depending on a.
  Table t({{"a", ColumnType::kContinuous, {}, {}},
           {"b", ColumnType::kContinuous, {}, {}},
           {"c", ColumnType::kCategorical, {"lo", "hi"}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    const double a = rng.normal();
    const double b = coupling * a + (1.0 - coupling) * rng.normal();
    const double c = (coupling * a + (1.0 - coupling) * rng.normal()) > 0 ? 1.0 : 0.0;
    t.append_row({a, b, c});
  }
  return t;
}

TEST(SimilarityTest, JsdBoundsAndSymmetry) {
  EXPECT_DOUBLE_EQ(jensen_shannon_divergence({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_NEAR(jensen_shannon_divergence({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-9);
  const double d1 = jensen_shannon_divergence({0.7, 0.3}, {0.3, 0.7});
  const double d2 = jensen_shannon_divergence({0.3, 0.7}, {0.7, 0.3});
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_GT(d1, 0.0);
  EXPECT_LT(d1, 1.0);
  EXPECT_THROW(jensen_shannon_divergence({0.5}, {0.5, 0.5}), std::invalid_argument);
}

TEST(SimilarityTest, WassersteinIdenticalAndShifted) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_NEAR(wasserstein_distance(a, a), 0.0, 1e-9);
  std::vector<double> shifted = {3, 4, 5, 6, 7};
  EXPECT_NEAR(wasserstein_distance(a, shifted), 2.0, 1e-9);
  EXPECT_THROW(wasserstein_distance({}, {1.0}), std::invalid_argument);
}

TEST(SimilarityTest, WassersteinDifferentSizes) {
  std::vector<double> a = {0, 1};
  std::vector<double> b = {0, 0.5, 1};
  EXPECT_LT(wasserstein_distance(a, b), 0.2);
}

TEST(SimilarityTest, AverageMetricsZeroForIdenticalTables) {
  Rng rng(1);
  Table t = correlated_table(500, 0.8, rng);
  EXPECT_DOUBLE_EQ(average_jsd(t, t), 0.0);
  EXPECT_NEAR(average_wd(t, t), 0.0, 1e-12);
  EXPECT_NEAR(correlation_difference(t, t), 0.0, 1e-12);
}

TEST(SimilarityTest, MetricsIncreaseWithDistributionShift) {
  Rng rng(2);
  Table real = correlated_table(800, 0.8, rng);
  Table close = correlated_table(800, 0.8, rng);   // same process, new sample
  Table far = correlated_table(800, 0.0, rng);     // decorrelated process
  // Shift 'far' continuous columns too.
  Table shifted(far.schema());
  for (std::size_t r = 0; r < far.n_rows(); ++r) {
    shifted.append_row({far.cell(r, 0) + 3.0, far.cell(r, 1) * 2.0, far.cell(r, 2)});
  }
  EXPECT_LT(average_wd(real, close), average_wd(real, shifted));
  EXPECT_LT(correlation_difference(real, close), correlation_difference(real, shifted));
}

TEST(SimilarityTest, AssociationMatrixProperties) {
  Rng rng(3);
  Table t = correlated_table(1000, 0.9, rng);
  Tensor m = association_matrix(t);
  ASSERT_EQ(m.rows(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(m(i, i), 1.0f);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(m(i, j), m(j, i));
      EXPECT_GE(m(i, j), 0.0f);
      EXPECT_LE(m(i, j), 1.0f + 1e-5f);
    }
  }
  // Strong coupling: a-b Pearson and a-c correlation ratio both high.
  EXPECT_GT(m(0, 1), 0.7f);
  EXPECT_GT(m(0, 2), 0.4f);
}

TEST(SimilarityTest, CramersVDetectsDependence) {
  Rng rng(4);
  Table t({{"x", ColumnType::kCategorical, {"a", "b"}, {}},
           {"same", ColumnType::kCategorical, {"a", "b"}, {}},
           {"indep", ColumnType::kCategorical, {"a", "b"}, {}}});
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>(rng.uniform_index(2));
    t.append_row({x, x, static_cast<double>(rng.uniform_index(2))});
  }
  Tensor m = association_matrix(t);
  EXPECT_GT(m(0, 1), 0.95f);   // identical columns
  EXPECT_LT(m(0, 2), 0.15f);   // independent columns
}

TEST(SimilarityTest, BetweenBlockCorrelationDifference) {
  Rng rng(5);
  Table real = correlated_table(800, 0.8, rng);
  Table synth = correlated_table(800, 0.0, rng);
  // Across "clients" {a} and {b, c}: the decorrelated synthetic data loses
  // the cross-block association.
  const double across = correlation_difference_between(real, synth, {0}, {1, 2});
  EXPECT_GT(across, 0.3);
  const double self = correlation_difference_between(real, real, {0}, {1, 2});
  EXPECT_NEAR(self, 0.0, 1e-12);
}

TEST(SimilarityTest, SchemaMismatchThrows) {
  Rng rng(6);
  Table t = correlated_table(50, 0.5, rng);
  Table other({{"z", ColumnType::kContinuous, {}, {}}});
  other.append_row({0.0});
  EXPECT_THROW(average_jsd(t, other), std::invalid_argument);
  EXPECT_THROW(average_wd(t, other), std::invalid_argument);
  EXPECT_THROW(correlation_difference(t, other), std::invalid_argument);
}

TEST(SimilarityTest, ReportBundlesAllThree) {
  Rng rng(7);
  Table real = correlated_table(400, 0.8, rng);
  Table synth = correlated_table(400, 0.4, rng);
  SimilarityReport report = similarity_report(real, synth);
  EXPECT_GE(report.avg_jsd, 0.0);
  EXPECT_GT(report.avg_wd, 0.0);
  EXPECT_GT(report.diff_corr, 0.0);
}

}  // namespace
}  // namespace gtv::eval
