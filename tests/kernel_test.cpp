// Parity suite for the dense-matmul kernels (src/tensor/gemm.*).
//
// Every matmul variant must be bit-identical to the naive seed kernel
// (i-k-j triple loop, single float accumulator per output element,
// ascending k). The tests compare against that reference with EXPECT_EQ on
// the raw floats — not EXPECT_NEAR — across shapes chosen to hit both the
// small-shape path and the register-tiled path, including every tile-edge
// case (partial 4-row groups, partial 16-column slivers, k-block
// boundaries). Also pins IEEE non-finite propagation (the seed kernel's
// zero-skip bug swallowed 0 * Inf) and the sum_rows double-accumulation
// fix.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace gtv {
namespace {

// The seed kernel, kept verbatim as the semantic reference: i-k-j order,
// one float accumulator chain per output element, no zero-skip.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t kk = 0; kk < a.cols(); ++kk) {
      const float aik = a(i, kk);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(kk, j);
      }
    }
  }
  return out;
}

// Compares with bitwise equality so NaNs also count as matching.
void expect_bit_identical(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t r = 0; r < got.rows(); ++r) {
    for (std::size_t c = 0; c < got.cols(); ++c) {
      std::uint32_t g, w;
      const float gf = got(r, c), wf = want(r, c);
      std::memcpy(&g, &gf, 4);
      std::memcpy(&w, &wf, 4);
      ASSERT_EQ(g, w) << what << " mismatch at (" << r << "," << c << "): " << gf
                      << " vs " << wf;
    }
  }
}

// Shapes covering: degenerate, odd, partial micro-tiles (m % 4, n % 16),
// exact tile edges, k-block boundary (k > 256), and a large square that is
// firmly on the tiled path.
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},    {3, 5, 7},     {4, 16, 16},  {5, 17, 16},  {4, 8, 15},
    {8, 32, 17},  {127, 64, 129}, {127, 129, 64}, {64, 257, 33}, {96, 300, 131},
    {1, 512, 1},  {128, 128, 128},
};

TEST(KernelParityTest, MatmulBitIdenticalToNaiveAcrossShapes) {
  bool saw_tiled = false, saw_small = false;
  for (const Shape& s : kShapes) {
    Rng rng(1000 + s.m * 7 + s.k * 3 + s.n);
    Tensor a = Tensor::normal(s.m, s.k, 0.0f, 1.0f, rng);
    Tensor b = Tensor::normal(s.k, s.n, 0.0f, 1.0f, rng);
    if (detail::gemm_uses_tiled_path(s.m, s.k, s.n)) saw_tiled = true;
    else saw_small = true;
    expect_bit_identical(a.matmul(b), naive_matmul(a, b), "matmul");
  }
  // The suite must pin both code paths; if the threshold moves, add shapes.
  EXPECT_TRUE(saw_tiled);
  EXPECT_TRUE(saw_small);
}

TEST(KernelParityTest, MatmulNtBitIdenticalToExplicitTranspose) {
  for (const Shape& s : kShapes) {
    Rng rng(2000 + s.m + s.k + s.n);
    Tensor a = Tensor::normal(s.m, s.k, 0.0f, 1.0f, rng);
    Tensor bt = Tensor::normal(s.n, s.k, 0.0f, 1.0f, rng);  // b stored transposed
    expect_bit_identical(a.matmul_nt(bt), naive_matmul(a, bt.transpose()),
                         "matmul_nt");
  }
}

TEST(KernelParityTest, MatmulTnBitIdenticalToExplicitTranspose) {
  for (const Shape& s : kShapes) {
    Rng rng(3000 + s.m + s.k + s.n);
    Tensor at = Tensor::normal(s.k, s.m, 0.0f, 1.0f, rng);  // a stored transposed
    Tensor b = Tensor::normal(s.k, s.n, 0.0f, 1.0f, rng);
    expect_bit_identical(at.matmul_tn(b), naive_matmul(at.transpose(), b),
                         "matmul_tn");
  }
}

TEST(KernelParityTest, LargeSquareHitsTiledPathAndMatches) {
  ASSERT_TRUE(detail::gemm_uses_tiled_path(256, 256, 256));
  Rng rng(42);
  Tensor a = Tensor::normal(256, 256, 0.0f, 1.0f, rng);
  Tensor b = Tensor::normal(256, 256, 0.0f, 1.0f, rng);
  expect_bit_identical(a.matmul(b), naive_matmul(a, b), "matmul 256^3");
}

TEST(KernelParityTest, KernelIsaReportsKnownValue) {
  const char* isa = detail::gemm_kernel_isa();
  EXPECT_TRUE(std::strcmp(isa, "avx2") == 0 || std::strcmp(isa, "portable") == 0)
      << isa;
}

// Regression for the zero-skip bug: the seed kernel skipped the inner loop
// when a(i,k) == 0, so a zero in A silently swallowed an Inf/NaN in B.
// IEEE says 0 * Inf = NaN and that NaN must reach the output.
TEST(KernelIeeeTest, ZeroTimesInfPropagatesNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a = Tensor::of({{0, 1}});
  Tensor b(2, 1);
  b(0, 0) = inf;
  b(1, 0) = 1.0f;
  Tensor c = a.matmul(b);  // 0*inf + 1*1 = NaN + 1 = NaN
  EXPECT_TRUE(std::isnan(c(0, 0)));
}

TEST(KernelIeeeTest, ZeroTimesNaNPropagates) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = Tensor::of({{0, 2}});
  Tensor b(2, 1);
  b(0, 0) = nan;
  b(1, 0) = 3.0f;
  EXPECT_TRUE(std::isnan(a.matmul(b)(0, 0)));
}

TEST(KernelIeeeTest, InfRowStaysInfWhenNoCancellation) {
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a = Tensor::of({{1, 1}});
  Tensor b(2, 1);
  b(0, 0) = inf;
  b(1, 0) = 1.0f;
  EXPECT_TRUE(std::isinf(a.matmul(b)(0, 0)));
}

// Non-finite propagation must also hold on the tiled path (packed slivers
// zero-pad the last partial sliver — the padding must never combine with
// non-finite A values in a way that leaks NaN into real columns, and real
// non-finite products must still propagate).
TEST(KernelIeeeTest, TiledPathPropagatesNonFinite) {
  const std::size_t m = 64, k = 64, n = 33;  // partial 16-col sliver at the end
  ASSERT_TRUE(detail::gemm_uses_tiled_path(m, k, n));
  Rng rng(7);
  Tensor a = Tensor::normal(m, k, 0.0f, 1.0f, rng);
  Tensor b = Tensor::normal(k, n, 0.0f, 1.0f, rng);
  a(5, 3) = 0.0f;
  b(3, 20) = std::numeric_limits<float>::infinity();
  a(60, 0) = std::numeric_limits<float>::infinity();
  Tensor got = a.matmul(b);
  expect_bit_identical(got, naive_matmul(a, b), "tiled non-finite");
  EXPECT_TRUE(std::isnan(got(5, 20)));  // 0 * inf in the accumulation chain
}

// sum_rows accumulates each column in double before rounding once to
// float32. For 100k rows of small same-sign values a float accumulator
// stalls (x + eps == x once x is large); the double sum must match a
// reference double accumulation exactly after the final rounding.
TEST(SumRowsTest, HundredThousandRowsMatchesDoubleReference) {
  const std::size_t n = 100000, c = 3;
  Rng rng(11);
  Tensor t = Tensor::uniform(n, c, 0.0f, 1.0f, rng);
  Tensor got = t.sum_rows();
  ASSERT_EQ(got.rows(), 1u);
  ASSERT_EQ(got.cols(), c);
  for (std::size_t j = 0; j < c; ++j) {
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) ref += static_cast<double>(t(i, j));
    EXPECT_FLOAT_EQ(got(0, j), static_cast<float>(ref)) << "col " << j;
  }
}

// Discriminating case: accumulating 100k copies of 0.1f in float32 drifts
// by far more than 4 ulps (each add at magnitude ~1e4 rounds away ~1e-4),
// while the double accumulator rounds once at the end. A float-accumulating
// sum_rows fails this test; the double-accumulating one passes exactly.
TEST(SumRowsTest, ManySmallValuesDoNotStall) {
  const std::size_t n = 100000;
  Tensor t = Tensor::full(n, 1, 0.1f);
  double ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) ref += static_cast<double>(0.1f);
  EXPECT_FLOAT_EQ(t.sum_rows()(0, 0), static_cast<float>(ref));
}

TEST(KernelParityTest, ShapeMismatchStillThrows) {
  Tensor a(2, 3), b(4, 5);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
  EXPECT_THROW(a.matmul_nt(b), std::invalid_argument);
  EXPECT_THROW(a.matmul_tn(b), std::invalid_argument);
}

}  // namespace
}  // namespace gtv
