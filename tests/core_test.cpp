#include <gtest/gtest.h>

#include "core/attack.h"
#include "core/partition.h"

namespace gtv::core {
namespace {

TEST(PartitionTest, AllNineCoversEveryCombination) {
  auto specs = PartitionSpec::all_nine();
  ASSERT_EQ(specs.size(), 9u);
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.g_top + spec.g_bottom, 2u);
    EXPECT_EQ(spec.d_top + spec.d_bottom, 2u);
  }
  // All names are distinct.
  std::set<std::string> names;
  for (const auto& spec : specs) names.insert(spec.name());
  EXPECT_EQ(names.size(), 9u);
}

TEST(PartitionTest, NameMatchesPaperNotation) {
  PartitionSpec spec{0, 2, 2, 0};  // g_top, g_bottom, d_top, d_bottom
  EXPECT_EQ(spec.name(), "D_0^2 G_2^0");
}

TEST(PartitionTest, ProportionalWidthsSumExactly) {
  auto widths = proportional_widths(256, {0.5, 0.5});
  EXPECT_EQ(widths, (std::vector<std::size_t>{128, 128}));
  widths = proportional_widths(256, {0.1, 0.9});
  EXPECT_EQ(widths[0] + widths[1], 256u);
  EXPECT_LT(widths[0], widths[1]);
  widths = proportional_widths(257, {1.0, 1.0, 1.0});
  EXPECT_EQ(widths[0] + widths[1] + widths[2], 257u);
}

TEST(PartitionTest, ExtremeRatiosKeepMinimumWidth) {
  auto widths = proportional_widths(100, {0.001, 0.999});
  EXPECT_GE(widths[0], 1u);
  EXPECT_EQ(widths[0] + widths[1], 100u);
}

TEST(PartitionTest, InvalidInputsThrow) {
  EXPECT_THROW(proportional_widths(1, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(proportional_widths(10, {}), std::invalid_argument);
  EXPECT_THROW(proportional_widths(10, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(ratio_vector({0, 3}), std::invalid_argument);
  EXPECT_THROW(ratio_vector({}), std::invalid_argument);
}

TEST(PartitionTest, RatioVector) {
  auto r = ratio_vector({2, 8});
  EXPECT_DOUBLE_EQ(r[0], 0.2);
  EXPECT_DOUBLE_EQ(r[1], 0.8);
}

TEST(AttackTest, ReconstructsWithoutShuffling) {
  // Two binary columns, CV bits: [col0=0, col0=1, col1=0, col1=1].
  data::Table reference({{"gender", data::ColumnType::kCategorical, {"M", "F"}, {}},
                         {"loan", data::ColumnType::kCategorical, {"Y", "N"}, {}}});
  reference.append_row({0, 0});
  reference.append_row({0, 1});
  reference.append_row({1, 0});
  reference.append_row({1, 1});

  ServerInferenceAttack attack;
  attack.set_layout({{0, 0}, {0, 1}, {1, 0}, {1, 1}});

  // Observe every (row, column) with the true category, as the CVGeneration
  // protocol would reveal without shuffling.
  for (std::size_t col = 0; col < 2; ++col) {
    for (std::size_t row = 0; row < 4; ++row) {
      Tensor cv(1, 4);
      const auto cat = static_cast<std::size_t>(reference.cell(row, col));
      cv(0, col * 2 + cat) = 1.0f;
      attack.observe({row}, cv);
    }
  }
  auto eval = attack.evaluate(reference);
  EXPECT_EQ(eval.claims, 8u);
  EXPECT_DOUBLE_EQ(eval.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(eval.coverage, 1.0);
}

TEST(AttackTest, StaleClaimsScoreLowAfterPermutation) {
  data::Table reference({{"c", data::ColumnType::kCategorical, {"a", "b"}, {}}});
  for (int i = 0; i < 2; ++i) reference.append_row({0});
  for (int i = 0; i < 2; ++i) reference.append_row({1});

  ServerInferenceAttack attack;
  attack.set_layout({{0, 0}, {0, 1}});
  // Claims made against a reversed row order (as if data had shuffled).
  for (std::size_t row = 0; row < 4; ++row) {
    Tensor cv(1, 2);
    const auto cat = static_cast<std::size_t>(reference.cell(3 - row, 0));
    cv(0, cat) = 1.0f;
    attack.observe({row}, cv);
  }
  auto eval = attack.evaluate(reference);
  EXPECT_EQ(eval.claims, 4u);
  EXPECT_LT(eval.accuracy, 0.5 + 1e-9);
}

TEST(AttackTest, LatestClaimWins) {
  data::Table reference({{"c", data::ColumnType::kCategorical, {"a", "b"}, {}}});
  reference.append_row({1});
  ServerInferenceAttack attack;
  attack.set_layout({{0, 0}, {0, 1}});
  Tensor wrong(1, 2);
  wrong(0, 0) = 1.0f;  // claim category 0
  attack.observe({0}, wrong);
  Tensor right(1, 2);
  right(0, 1) = 1.0f;  // later claim category 1
  attack.observe({0}, right);
  auto eval = attack.evaluate(reference);
  EXPECT_EQ(eval.claims, 1u);
  EXPECT_DOUBLE_EQ(eval.accuracy, 1.0);
  EXPECT_EQ(attack.observation_count(), 2u);
}

TEST(AttackTest, ShapeValidation) {
  ServerInferenceAttack attack;
  attack.set_layout({{0, 0}});
  EXPECT_THROW(attack.observe({0}, Tensor(1, 2)), std::invalid_argument);
  EXPECT_THROW(attack.observe({0, 1}, Tensor(1, 1)), std::invalid_argument);
}

}  // namespace
}  // namespace gtv::core
