// Unit tests for GtvClient / GtvServer in isolation (the integration suite
// covers the full protocol; these pin down the split-backprop mechanics and
// state-machine guards of the individual parties).
#include <gtest/gtest.h>

#include <cmath>

#include "core/client.h"
#include "core/server.h"

namespace gtv::core {
namespace {

using data::ColumnType;
using data::Table;

Table client_table(std::size_t rows, Rng& rng) {
  Table t({{"v1", ColumnType::kContinuous, {}, {}},
           {"c1", ColumnType::kCategorical, {"a", "b", "c"}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    t.append_row({rng.normal(), static_cast<double>(rng.categorical({5, 3, 2}))});
  }
  return t;
}

GtvOptions tiny_options() {
  GtvOptions options;
  options.gan.noise_dim = 8;
  options.gan.hidden = 12;
  options.generator_hidden = 12;
  options.gan.batch_size = 8;
  return options;
}

TEST(GtvClientTest, ConstructionExposesWidths) {
  Rng rng(1);
  GtvClient client(0, client_table(40, rng), tiny_options(), /*g_slice=*/6, /*d_out=*/5, 7);
  EXPECT_EQ(client.id(), 0u);
  EXPECT_EQ(client.n_features(), 2u);
  EXPECT_EQ(client.n_rows(), 40u);
  EXPECT_EQ(client.cv_width(), 3u);  // one 3-way categorical
  EXPECT_GT(client.encoded_width(), 4u);
  EXPECT_EQ(client.d_out_width(), 5u);
  EXPECT_GT(client.generator_parameter_count(), 0u);
  EXPECT_GT(client.discriminator_parameter_count(), 0u);
}

TEST(GtvClientTest, RejectsEmptyTable) {
  Rng rng(2);
  Table empty({{"v", ColumnType::kContinuous, {}, {}}});
  EXPECT_THROW(GtvClient(0, empty, tiny_options(), 4, 4, 1), std::invalid_argument);
}

TEST(GtvClientTest, ForwardFakeShapes) {
  Rng rng(3);
  GtvClient client(0, client_table(40, rng), tiny_options(), 6, 5, 7);
  Tensor slice = Tensor::normal(8, 6, 0.0f, 1.0f, rng);
  Tensor d_out = client.forward_fake(slice, /*train_generator=*/false);
  EXPECT_EQ(d_out.rows(), 8u);
  EXPECT_EQ(d_out.cols(), 5u);
  EXPECT_EQ(client.last_fake_encoded().rows(), 8u);
  EXPECT_EQ(client.last_fake_encoded().cols(), client.encoded_width());
  client.backward_fake_discriminator(Tensor::ones(8, 5));
}

TEST(GtvClientTest, PendingStateGuards) {
  Rng rng(4);
  GtvClient client(0, client_table(40, rng), tiny_options(), 6, 5, 7);
  Tensor slice = Tensor::normal(8, 6, 0.0f, 1.0f, rng);
  // Backward without forward.
  EXPECT_THROW(client.backward_generator(Tensor::ones(8, 5)), std::logic_error);
  EXPECT_THROW(client.backward_fake_discriminator(Tensor::ones(8, 5)), std::logic_error);
  EXPECT_THROW(client.backward_real(Tensor::ones(8, 5)), std::logic_error);
  // Double forward without backward.
  client.forward_fake(slice, true);
  EXPECT_THROW(client.forward_fake(slice, true), std::logic_error);
  client.backward_generator(Tensor::ones(8, 5));
  client.forward_real_all();
  EXPECT_THROW(client.forward_real_all(), std::logic_error);
  client.backward_real(Tensor::ones(40, 5));
}

TEST(GtvClientTest, GeneratorBackwardReturnsSliceGradient) {
  Rng rng(5);
  GtvClient client(0, client_table(60, rng), tiny_options(), 6, 5, 7);
  Tensor slice = Tensor::normal(8, 6, 0.0f, 1.0f, rng);
  client.forward_fake(slice, /*train_generator=*/true);
  Tensor grad = client.backward_generator(Tensor::ones(8, 5));
  EXPECT_EQ(grad.rows(), 8u);
  EXPECT_EQ(grad.cols(), 6u);
  EXPECT_TRUE(grad.all_finite());
  // Some gradient must flow (the stack is dense).
  EXPECT_GT(std::abs(grad.sum()), 0.0f);
}

TEST(GtvClientTest, ConditionalLossOnlyWhenPending) {
  Rng rng(6);
  GtvClient client(0, client_table(60, rng), tiny_options(), 6, 5, 7);
  Tensor slice = Tensor::normal(8, 6, 0.0f, 1.0f, rng);

  // Without a pending condition, the returned gradient comes from the
  // adversarial seed only. Zero seed -> zero gradient.
  client.forward_fake(slice, true);
  Tensor grad_plain = client.backward_generator(Tensor::zeros(8, 5));
  EXPECT_NEAR(grad_plain.max_abs_diff(Tensor::zeros(8, 6)), 0.0f, 1e-12f);

  // With a pending condition, the conditional cross-entropy adds gradient
  // even under a zero adversarial seed.
  auto sample = client.sample_cv(8);
  client.set_pending_condition(sample);
  client.forward_fake(slice, true);
  Tensor grad_cond = client.backward_generator(Tensor::zeros(8, 5));
  EXPECT_GT(std::abs(grad_cond.sum()), 0.0f);
}

TEST(GtvClientTest, RealForwardSelectedMatchesEncodedRows) {
  Rng rng(7);
  GtvClient client(0, client_table(50, rng), tiny_options(), 6, 5, 7);
  const std::vector<std::size_t> idx = {3, 3, 10};
  Tensor encoded = client.encoded_rows(idx);
  EXPECT_EQ(encoded.rows(), 3u);
  EXPECT_EQ(encoded.cols(), client.encoded_width());
  Tensor d_out = client.forward_real_selected(idx);
  EXPECT_EQ(d_out.rows(), 3u);
  client.backward_real(Tensor::ones(3, 5));
}

TEST(GtvClientTest, ShuffleChangesOrderButKeepsMultiset) {
  Rng rng(8);
  Table original = client_table(30, rng);
  GtvClient client(0, original, tiny_options(), 6, 5, 7);
  client.shuffle_local_data(12345);
  const Table& after = client.local_table();
  std::multiset<double> before_vals(original.column(0).begin(), original.column(0).end());
  std::multiset<double> after_vals(after.column(0).begin(), after.column(0).end());
  EXPECT_EQ(before_vals, after_vals);
  // Two clients with the same seed produce identical orders.
  GtvClient other(1, original, tiny_options(), 6, 5, 7);
  other.shuffle_local_data(12345);
  for (std::size_t r = 0; r < 30; ++r) {
    EXPECT_DOUBLE_EQ(other.local_table().cell(r, 0), after.cell(r, 0));
  }
}

TEST(GtvClientTest, SynthesizeProducesLocalSchema) {
  Rng rng(9);
  GtvClient client(0, client_table(60, rng), tiny_options(), 6, 5, 7);
  Table synth = client.synthesize(Tensor::normal(12, 6, 0.0f, 1.0f, rng));
  EXPECT_EQ(synth.n_rows(), 12u);
  EXPECT_EQ(synth.n_cols(), 2u);
  for (double v : synth.column(1)) {
    EXPECT_TRUE(v == 0.0 || v == 1.0 || v == 2.0);
  }
}

// --- server ----------------------------------------------------------------------

GtvServer::ClientInfo info(std::size_t cv, std::size_t g, std::size_t d) {
  return {cv, g, d};
}

TEST(GtvServerTest, ConstructionAndRatio) {
  GtvServer server(tiny_options(), {info(3, 8, 4), info(2, 4, 8)}, 11);
  EXPECT_EQ(server.n_clients(), 2u);
  EXPECT_EQ(server.total_cv_width(), 5u);
  EXPECT_NEAR(server.ratio()[0], 8.0 / 12.0, 1e-9);
  EXPECT_THROW(GtvServer(tiny_options(), {}, 1), std::invalid_argument);
}

TEST(GtvServerTest, SelectCvClientFollowsRatio) {
  GtvServer server(tiny_options(), {info(2, 9, 6), info(2, 1, 6)}, 13);
  std::size_t picks0 = 0;
  for (int i = 0; i < 2000; ++i) picks0 += server.select_cv_client() == 0;
  EXPECT_NEAR(picks0 / 2000.0, 0.9, 0.04);
}

TEST(GtvServerTest, AssembleGlobalCvPlacesSegment) {
  GtvServer server(tiny_options(), {info(2, 6, 6), info(3, 6, 6)}, 17);
  Tensor cv_p(4, 3);
  cv_p(0, 1) = 1.0f;
  Tensor global = server.assemble_global_cv(1, cv_p, 4);
  EXPECT_EQ(global.cols(), 5u);
  EXPECT_FLOAT_EQ(global(0, 2 + 1), 1.0f);
  for (std::size_t c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(global(0, c), 0.0f);
  EXPECT_THROW(server.assemble_global_cv(2, cv_p, 4), std::out_of_range);
  EXPECT_THROW(server.assemble_global_cv(0, cv_p, 4), std::invalid_argument);
}

TEST(GtvServerTest, GeneratorForwardSplitsByWidths) {
  GtvServer server(tiny_options(), {info(2, 8, 6), info(2, 4, 6)}, 19);
  Tensor cv(5, 4);
  auto slices = server.generator_forward(cv, /*retain_graph=*/false);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].rows(), 5u);
  EXPECT_EQ(slices[0].cols(), 8u);
  EXPECT_EQ(slices[1].cols(), 4u);
}

TEST(GtvServerTest, GeneratorBackwardStateMachine) {
  GtvServer server(tiny_options(), {info(2, 8, 6), info(2, 4, 6)}, 23);
  Tensor cv(5, 4);
  EXPECT_THROW(server.generator_backward({Tensor(5, 8), Tensor(5, 4)}), std::logic_error);
  auto slices = server.generator_forward(cv, /*retain_graph=*/true);
  EXPECT_THROW(server.generator_forward(cv, true), std::logic_error);
  EXPECT_THROW(server.generator_backward({Tensor(5, 8)}), std::invalid_argument);
  // Arity error above cleared the pending state; run a full cycle.
  slices = server.generator_forward(cv, /*retain_graph=*/true);
  server.generator_backward({Tensor::ones(5, 8), Tensor::ones(5, 4)});
  server.step_generator();
}

TEST(GtvServerTest, CriticTopShapeAndGradFlow) {
  GtvServer server(tiny_options(), {info(2, 6, 6), info(2, 6, 6)}, 29);
  Rng rng(1);
  ag::Var a(Tensor::normal(4, 6, 0.0f, 1.0f, rng), true);
  ag::Var b(Tensor::normal(4, 6, 0.0f, 1.0f, rng), true);
  ag::Var cv = ag::constant(Tensor(4, 4));
  ag::Var out = server.critic_top({a, b}, cv);
  EXPECT_EQ(out.rows(), 4u);
  EXPECT_EQ(out.cols(), 1u);
  ag::backward(ag::sum_all(out));
  EXPECT_FALSE(a.grad().empty());
  EXPECT_FALSE(b.grad().empty());
  EXPECT_THROW(server.critic_top({a}, cv), std::invalid_argument);
}

TEST(GtvServerTest, NoDiscreteColumnsMeansNoCvFilter) {
  GtvServer server(tiny_options(), {info(0, 6, 6), info(0, 6, 6)}, 31);
  EXPECT_EQ(server.total_cv_width(), 0u);
  ag::Var a(Tensor(4, 6));
  ag::Var b(Tensor(4, 6));
  ag::Var out = server.critic_top({a, b}, ag::constant(Tensor(4, 0)));
  EXPECT_EQ(out.cols(), 1u);
}

}  // namespace
}  // namespace gtv::core
