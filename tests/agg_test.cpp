// Tests for the live telemetry plane (obs/snapshot.h + obs/agg.h): the
// snapshot wire codec, Prometheus re-labeling/aggregation, the Collector's
// ingest/staleness/reconnect logic, the HTTP scrape endpoint, and the
// end-to-end publisher path including the clock-alignment bound.
#include "obs/agg.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "obs/json.h"
#include "obs/snapshot.h"

namespace gtv::obs::agg {
namespace {

Snapshot sample_snapshot() {
  Snapshot snap;
  snap.party = "client0";
  snap.seq = 42;
  snap.t_us = 123456789;
  snap.round = 7;
  snap.rounds_total = 20;
  snap.phase = static_cast<std::uint32_t>(Phase::kCritic);
  snap.d_loss = -1.25f;
  snap.g_loss = 0.5f;
  snap.gp = 0.03125f;
  snap.wasserstein = 2.0f;
  snap.bytes = 1'000'000;
  snap.messages = 321;
  snap.retries = 4;
  snap.timeouts = 2;
  snap.corrupt_frames = 1;
  snap.mem_live_bytes = 4096;
  snap.mem_peak_bytes = 65536;
  snap.alerts_info = 3;
  snap.alerts_warn = 1;
  snap.alerts_fatal = 0;
  snap.links.push_back({"client0->server", 900, 300});
  snap.links.push_back({"driver->client0", 100, 21});
  snap.samples_total = 1234;
  snap.hot.push_back({"gtv::detail::gemm_nn", 600, 1});
  snap.hot.push_back({"read", 77, 0});
  snap.prom = "# TYPE x counter\nx 1\n";
  return snap;
}

// --- snapshot codec --------------------------------------------------------

TEST(SnapshotCodecTest, RoundTripPreservesEveryField) {
  const Snapshot snap = sample_snapshot();
  const Snapshot back = deserialize_snapshot(serialize_snapshot(snap));
  EXPECT_EQ(back.party, snap.party);
  EXPECT_EQ(back.seq, snap.seq);
  EXPECT_EQ(back.t_us, snap.t_us);
  EXPECT_EQ(back.round, snap.round);
  EXPECT_EQ(back.rounds_total, snap.rounds_total);
  EXPECT_EQ(back.phase, snap.phase);
  EXPECT_EQ(back.d_loss, snap.d_loss);
  EXPECT_EQ(back.g_loss, snap.g_loss);
  EXPECT_EQ(back.gp, snap.gp);
  EXPECT_EQ(back.wasserstein, snap.wasserstein);
  EXPECT_EQ(back.bytes, snap.bytes);
  EXPECT_EQ(back.messages, snap.messages);
  EXPECT_EQ(back.retries, snap.retries);
  EXPECT_EQ(back.timeouts, snap.timeouts);
  EXPECT_EQ(back.corrupt_frames, snap.corrupt_frames);
  EXPECT_EQ(back.mem_live_bytes, snap.mem_live_bytes);
  EXPECT_EQ(back.mem_peak_bytes, snap.mem_peak_bytes);
  EXPECT_EQ(back.alerts_info, snap.alerts_info);
  EXPECT_EQ(back.alerts_warn, snap.alerts_warn);
  EXPECT_EQ(back.alerts_fatal, snap.alerts_fatal);
  ASSERT_EQ(back.links.size(), 2u);
  EXPECT_EQ(back.links[0].link, "client0->server");
  EXPECT_EQ(back.links[0].bytes, 900u);
  EXPECT_EQ(back.links[0].messages, 300u);
  EXPECT_EQ(back.links[1].link, "driver->client0");
  EXPECT_EQ(back.samples_total, snap.samples_total);
  ASSERT_EQ(back.hot.size(), 2u);
  EXPECT_EQ(back.hot[0].frame, "gtv::detail::gemm_nn");
  EXPECT_EQ(back.hot[0].samples, 600u);
  EXPECT_EQ(back.hot[0].on_cpu, 1u);
  EXPECT_EQ(back.hot[1].frame, "read");
  EXPECT_EQ(back.hot[1].on_cpu, 0u);
  EXPECT_EQ(back.prom, snap.prom);
}

TEST(SnapshotCodecTest, TruncationAtEveryLengthThrows) {
  const auto bytes = serialize_snapshot(sample_snapshot());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(deserialize_snapshot(cut), net::WireError) << "len=" << len;
  }
}

TEST(SnapshotCodecTest, TrailingGarbageAndBadVersionThrow) {
  auto bytes = serialize_snapshot(sample_snapshot());
  bytes.push_back(0);
  EXPECT_THROW(deserialize_snapshot(bytes), net::WireError);
  bytes = serialize_snapshot(sample_snapshot());
  bytes[0] ^= 0xff;  // schema version is the first LE u32
  EXPECT_THROW(deserialize_snapshot(bytes), net::WireError);
}

TEST(SnapshotCodecTest, ToJsonParsesAndOmitsProm) {
  const Snapshot snap = sample_snapshot();
  const json::Value doc = json::parse(snap.to_json());
  EXPECT_EQ(doc.str_or("party", ""), "client0");
  EXPECT_EQ(doc.num_or("round", 0), 7);
  EXPECT_EQ(doc.str_or("phase", ""), "critic");
  EXPECT_NEAR(doc.num_or("d_loss", 0), -1.25, 1e-6);
  EXPECT_FALSE(doc.has("prom"));
  EXPECT_EQ(doc.num_or("prom_bytes", 0), static_cast<double>(snap.prom.size()));
  // Profiler block: total plus the hot-frame list, states preserved.
  EXPECT_EQ(doc.num_or("samples_total", 0), 1234);
  EXPECT_NE(snap.to_json().find("\"frame\":\"gtv::detail::gemm_nn\""),
            std::string::npos);
  EXPECT_NE(snap.to_json().find("\"on_cpu\":false"), std::string::npos);
}

// --- Prometheus re-labeling ------------------------------------------------

TEST(InjectPartyLabelTest, CreatesPrependsAndEscapes) {
  EXPECT_EQ(inject_party_label("m 1", "srv"), "m{party=\"srv\"} 1");
  EXPECT_EQ(inject_party_label("m{le=\"5\"} 2", "srv"),
            "m{party=\"srv\",le=\"5\"} 2");
  EXPECT_EQ(inject_party_label("m{} 3", "srv"), "m{party=\"srv\"} 3");
  // Exposition-format escaping in the label value.
  EXPECT_EQ(inject_party_label("m 1", "a\\b\"c\nd"),
            "m{party=\"a\\\\b\\\"c\\nd\"} 1");
  // Comments and non-sample lines pass through untouched.
  EXPECT_EQ(inject_party_label("# TYPE m counter", "srv"), "# TYPE m counter");
  EXPECT_EQ(inject_party_label("", "srv"), "");
}

TEST(AggregatePrometheusTest, MergesFamiliesWithSingleTypeHeader) {
  const std::string server_dump =
      "# TYPE gtv_rounds counter\n"
      "gtv_rounds 5\n"
      "# TYPE gtv_lat histogram\n"
      "gtv_lat_bucket{le=\"1\"} 2\n"
      "gtv_lat_bucket{le=\"+Inf\"} 3\n"
      "gtv_lat_sum 4.5\n"
      "gtv_lat_count 3\n";
  const std::string client_dump =
      "# TYPE gtv_rounds counter\n"
      "gtv_rounds 4\n";
  const std::string merged =
      aggregate_prometheus({{"server", server_dump}, {"client0", client_dump}});
  EXPECT_EQ(merged,
            "# TYPE gtv_rounds counter\n"
            "gtv_rounds{party=\"server\"} 5\n"
            "gtv_rounds{party=\"client0\"} 4\n"
            "# TYPE gtv_lat histogram\n"
            "gtv_lat_bucket{party=\"server\",le=\"1\"} 2\n"
            "gtv_lat_bucket{party=\"server\",le=\"+Inf\"} 3\n"
            "gtv_lat_sum{party=\"server\"} 4.5\n"
            "gtv_lat_count{party=\"server\"} 3\n");
}

// --- Collector (synthetic ingest, no sockets) ------------------------------

TEST(CollectorTest, IngestAggregatesStatusPrometheusAndHistory) {
  Collector collector;
  Snapshot first = sample_snapshot();
  first.round = 1;
  first.g_loss = 0.25f;
  collector.ingest(first);
  Snapshot second = sample_snapshot();
  second.seq = 43;
  second.round = 2;
  second.g_loss = 0.125f;
  collector.ingest(second);
  Snapshot other = sample_snapshot();
  other.party = "server";
  other.prom = "# TYPE x counter\nx 9\n";
  collector.ingest(other);

  EXPECT_EQ(collector.party_count(), 2u);
  EXPECT_TRUE(collector.wait_for_snapshots(2, 1, 100));
  EXPECT_FALSE(collector.wait_for_snapshots(3, 1, 50));

  const auto views = collector.parties();
  ASSERT_EQ(views.size(), 2u);  // sorted by party name
  EXPECT_EQ(views[0].latest.party, "client0");
  EXPECT_EQ(views[0].snapshots, 2u);
  EXPECT_FALSE(views[0].stale);
  ASSERT_EQ(views[0].loss_history.size(), 2u);
  EXPECT_EQ(views[0].loss_history[1][0], 2.0);
  EXPECT_NEAR(views[0].loss_history[1][2], 0.125, 1e-6);

  const json::Value status = json::parse(collector.status_json());
  EXPECT_EQ(status.at("collector").num_or("parties", 0), 2);
  EXPECT_EQ(status.at("parties").array.size(), 2u);
  EXPECT_EQ(status.at("parties").array[0].str_or("party", ""), "client0");
  EXPECT_EQ(status.at("parties").array[0].at("snapshot").num_or("round", 0), 2);

  const std::string prom = collector.prometheus();
  EXPECT_NE(prom.find("x{party=\"client0\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("x{party=\"server\"} 9"), std::string::npos);
  EXPECT_NE(prom.find("gtv_agg_snapshots_total{party=\"client0\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("gtv_agg_up{party=\"server\"} 1"), std::string::npos);
  // Exactly one # TYPE header for the shared family.
  EXPECT_EQ(prom.find("# TYPE x counter"), prom.rfind("# TYPE x counter"));
  // No transport -> no measured clocks -> empty offsets map.
  EXPECT_EQ(json::parse(collector.offsets_json()).at("offsets").object.size(), 0u);
}

TEST(CollectorTest, LossHistoryDedupsByRoundAndStaysBounded) {
  CollectorOptions options;
  options.history = 4;
  Collector collector(options);
  for (int round = 0; round < 10; ++round) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      Snapshot snap = sample_snapshot();
      snap.round = static_cast<std::uint64_t>(round);
      snap.g_loss = static_cast<float>(round) + 0.1f * static_cast<float>(repeat);
      collector.ingest(snap);
    }
  }
  const auto views = collector.parties();
  ASSERT_EQ(views.size(), 1u);
  ASSERT_EQ(views[0].loss_history.size(), 4u);  // bounded ring
  EXPECT_EQ(views[0].loss_history.back()[0], 9.0);
  // The last repeat of a round wins (dedup-by-round keeps it fresh).
  EXPECT_NEAR(views[0].loss_history.back()[2], 9.2, 1e-5);
}

// --- HTTP endpoint ---------------------------------------------------------

std::string http_get(int port, const std::string& path,
                     std::string* status_line = nullptr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: t\r\nConnection: close\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r <= 0) break;
    response.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) return {};
  if (status_line) *status_line = response.substr(0, response.find("\r\n"));
  return response.substr(body + 4);
}

TEST(CollectorHttpTest, ServesMetricsStatusAndHealthz) {
  Collector collector;
  collector.ingest(sample_snapshot());
  const std::uint16_t port = collector.serve_http(0);
  ASSERT_GT(port, 0);

  std::string status_line;
  const std::string metrics = http_get(port, "/metrics", &status_line);
  EXPECT_EQ(status_line, "HTTP/1.0 200 OK");
  // Golden: the synthetic party's dump re-labeled, plus the agg series.
  EXPECT_NE(metrics.find("# TYPE x counter\nx{party=\"client0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("gtv_agg_snapshots_total{party=\"client0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("gtv_agg_up{party=\"client0\"} 1\n"), std::string::npos);

  const json::Value status = json::parse(http_get(port, "/status"));
  EXPECT_EQ(status.at("parties").array.size(), 1u);
  EXPECT_EQ(http_get(port, "/healthz"), "ok\n");
  std::string not_found_status;
  http_get(port, "/nope", &not_found_status);
  EXPECT_EQ(not_found_status, "HTTP/1.0 404 Not Found");
}

// --- end to end: publishers over TCP ---------------------------------------

TEST(CollectorEndToEndTest, PublishersReportWithClockAlignedWithinRttBound) {
  Collector collector;
  const std::uint16_t port = collector.listen(0);
  ASSERT_GT(port, 0);

  LiveStatus status;
  status.rounds_total.store(10);
  status.set_round(3);
  status.set_phase(Phase::kGenerator);
  status.set_losses(-0.5f, 0.25f, 0.01f, 1.5f);

  PublisherOptions options;
  options.interval_ms = 50;
  SnapshotPublisher server("server", "127.0.0.1", port, options);
  server.set_status(&status);
  SnapshotPublisher client("client0", "127.0.0.1", port, options);
  server.start();
  client.start();

  ASSERT_TRUE(collector.wait_for_snapshots(2, 2, 10000));
  server.stop();
  client.stop();

  EXPECT_GE(server.published(), 2u);
  const auto views = collector.parties();
  ASSERT_EQ(views.size(), 2u);
  for (const auto& view : views) {
    EXPECT_GE(view.snapshots, 2u);
    // Both ends live in this process and share one trace clock, so the
    // true offset is zero: the measured one must respect the NTP error
    // bound of the winning min-RTT sample (plus scheduling slack).
    ASSERT_TRUE(view.have_clock) << view.latest.party;
    EXPECT_LE(std::abs(view.clock_offset_us), view.clock_rtt_us / 2 + 1000.0)
        << view.latest.party;
  }
  // The sampled LiveStatus made it across the wire.
  const json::Value status_doc = json::parse(collector.status_json());
  bool saw_server = false;
  for (const auto& party : status_doc.at("parties").array) {
    if (party.str_or("party", "") != "server") continue;
    saw_server = true;
    const auto& snap = party.at("snapshot");
    EXPECT_EQ(snap.num_or("round", 0), 3);
    EXPECT_EQ(snap.str_or("phase", ""), "generator");
    EXPECT_NEAR(snap.num_or("g_loss", 0), 0.25, 1e-6);
  }
  EXPECT_TRUE(saw_server);
  // Measured offsets are exported for gtv-prof --offsets.
  const json::Value offsets = json::parse(collector.offsets_json());
  EXPECT_EQ(offsets.num_or("schema_version", 0), 1);
  EXPECT_EQ(offsets.at("offsets").object.size(), 2u);
  // Clock-aligned ingest latency is tracked (finite, non-negative).
  EXPECT_GE(collector.latency_ms(50), 0.0);
  EXPECT_TRUE(std::isfinite(collector.latency_ms(99)));
}

TEST(CollectorEndToEndTest, MarksSilentPartyStaleAndResumesOnReconnect) {
  CollectorOptions options;
  options.stale_after_ms = 150;
  Collector collector(options);
  const std::uint16_t port = collector.listen(0);

  PublisherOptions pub_options;
  pub_options.interval_ms = 30;
  {
    SnapshotPublisher first("client0", "127.0.0.1", port, pub_options);
    first.start();
    ASSERT_TRUE(collector.wait_for_snapshots(1, 2, 10000));
  }  // destructor stops the publisher; the party goes silent

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto views = collector.parties();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_TRUE(views[0].stale);
  EXPECT_GT(views[0].age_ms, 150.0);
  const std::uint64_t before = views[0].snapshots;

  // Same party dials again: the collector's transport must swap the dead
  // connection for the new one and ingest must resume (the fresh publisher
  // restarts seq at 1 — raw-frame decoding keeps those frames).
  SnapshotPublisher second("client0", "127.0.0.1", port, pub_options);
  second.start();
  ASSERT_TRUE(collector.wait_for_snapshots(1, before + 2, 10000));
  second.stop();

  views = collector.parties();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_FALSE(views[0].stale);
  EXPECT_GT(views[0].snapshots, before);
  EXPECT_GE(views[0].reconnects, 1u);
}

}  // namespace
}  // namespace gtv::obs::agg
