#include "eval/ml_utility.h"

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "eval/features.h"

namespace gtv::eval {
namespace {

using data::ColumnType;
using data::Table;

TEST(FeatureMatrixTest, LayoutAndStandardization) {
  Table t({{"v", ColumnType::kContinuous, {}, {}},
           {"c", ColumnType::kCategorical, {"a", "b", "z"}, {}},
           {"y", ColumnType::kCategorical, {"n", "p"}, {}}});
  t.append_row({10, 0, 0});
  t.append_row({20, 1, 1});
  t.append_row({30, 2, 0});
  t.append_row({40, 0, 1});
  FeatureMatrix f;
  f.fit(t, 2);
  EXPECT_EQ(f.n_features(), 1u + 3u);
  EXPECT_EQ(f.n_classes(), 2u);
  Tensor x = f.transform(t);
  ASSERT_EQ(x.cols(), 4u);
  // Standardized continuous column: mean 0.
  float mean = 0;
  for (std::size_t r = 0; r < 4; ++r) mean += x(r, 0);
  EXPECT_NEAR(mean / 4.0f, 0.0f, 1e-5f);
  // One-hot.
  EXPECT_FLOAT_EQ(x(2, 1 + 2), 1.0f);
  EXPECT_FLOAT_EQ(x(2, 1 + 0), 0.0f);
  auto y = f.labels(t);
  EXPECT_EQ(y, (std::vector<std::size_t>{0, 1, 0, 1}));
}

TEST(FeatureMatrixTest, Validation) {
  Table t({{"v", ColumnType::kContinuous, {}, {}}});
  t.append_row({1.0});
  FeatureMatrix f;
  EXPECT_THROW(f.fit(t, 5), std::out_of_range);
  EXPECT_THROW(f.fit(t, 0), std::invalid_argument);  // continuous target
}

TEST(MlUtilityTest, PerfectSyntheticDataScoresNearZeroDifference) {
  Rng rng(1);
  Table full = data::make_loan(1200, rng);
  const std::size_t target = full.column_index("personal_loan");
  auto [train, test] = full.train_test_split(0.25, rng, target);
  // "Synthetic" data that IS real data: difference should be tiny.
  auto result = ml_utility_difference(train, train, test, target, rng);
  EXPECT_LT(result.difference.accuracy, 0.03);
  EXPECT_LT(result.difference.auc, 0.03);
  EXPECT_EQ(result.classifier_names.size(), 5u);
  EXPECT_EQ(result.per_classifier_real.size(), 5u);
}

TEST(MlUtilityTest, GarbageSyntheticDataScoresWorse) {
  Rng rng(2);
  Table full = data::make_loan(1200, rng);
  const std::size_t target = full.column_index("personal_loan");
  auto [train, test] = full.train_test_split(0.25, rng, target);
  // Garbage: shuffle the target column independently of features.
  Table garbage = train;
  Rng shuffle_rng(9);
  std::vector<double> shuffled = garbage.column(target);
  const auto perm = shuffle_rng.permutation(shuffled.size());
  for (std::size_t r = 0; r < shuffled.size(); ++r) {
    garbage.set_cell(r, target, shuffled[perm[r]]);
  }
  auto good = ml_utility_difference(train, train, test, target, rng);
  auto bad = ml_utility_difference(train, garbage, test, target, rng);
  EXPECT_GT(bad.difference.auc, good.difference.auc);
  EXPECT_GE(bad.difference.f1 + bad.difference.accuracy,
            good.difference.f1 + good.difference.accuracy);
}

TEST(MlUtilityTest, RealSuiteBeatsChanceOnAllDatasets) {
  Rng rng(3);
  for (const auto& name : data::dataset_names()) {
    Table full = data::make_dataset(name, 900, rng);
    const std::size_t target = full.column_index(data::target_column(name));
    auto [train, test] = full.train_test_split(0.25, rng, target);
    UtilityScores scores = evaluate_suite(train, test, target, rng);
    EXPECT_GT(scores.auc, 0.6) << name;
  }
}

}  // namespace
}  // namespace gtv::eval
