#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gtv {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(t(r, c), 0.0f);
}

TEST(TensorTest, OfLiteral) {
  Tensor t = Tensor::of({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_FLOAT_EQ(t(1, 2), 6.0f);
}

TEST(TensorTest, OfRaggedThrows) {
  EXPECT_THROW(Tensor::of({{1, 2}, {3}}), std::invalid_argument);
}

TEST(TensorTest, ValuesSizeMismatchThrows) {
  EXPECT_THROW(Tensor(2, 3, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a = Tensor::of({{1, 2}, {3, 4}});
  Tensor b = Tensor::of({{10, 20}, {30, 40}});
  EXPECT_FLOAT_EQ((a + b)(1, 1), 44.0f);
  EXPECT_FLOAT_EQ((b - a)(0, 0), 9.0f);
  EXPECT_FLOAT_EQ((a * b)(0, 1), 40.0f);
  EXPECT_FLOAT_EQ((b / a)(1, 0), 10.0f);
  EXPECT_FLOAT_EQ((-a)(0, 0), -1.0f);
}

TEST(TensorTest, RowBroadcast) {
  Tensor a = Tensor::of({{1, 2}, {3, 4}});
  Tensor row = Tensor::of({{10, 100}});
  Tensor sum = a + row;
  EXPECT_FLOAT_EQ(sum(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(sum(1, 1), 104.0f);
}

TEST(TensorTest, ColBroadcast) {
  Tensor a = Tensor::of({{1, 2}, {3, 4}});
  Tensor col = Tensor::of({{10}, {100}});
  Tensor prod = a * col;
  EXPECT_FLOAT_EQ(prod(0, 1), 20.0f);
  EXPECT_FLOAT_EQ(prod(1, 0), 300.0f);
}

TEST(TensorTest, ScalarBroadcastBothSides) {
  Tensor a = Tensor::of({{1, 2}, {3, 4}});
  Tensor s = Tensor::scalar(2.0f);
  EXPECT_FLOAT_EQ((a * s)(1, 1), 8.0f);
  EXPECT_FLOAT_EQ((s - a)(0, 0), 1.0f);  // lhs broadcast
}

TEST(TensorTest, LhsRowBroadcast) {
  Tensor row = Tensor::of({{1, 2}});
  Tensor a = Tensor::of({{10, 20}, {30, 40}});
  Tensor diff = row - a;
  EXPECT_FLOAT_EQ(diff(0, 0), -9.0f);
  EXPECT_FLOAT_EQ(diff(1, 1), -38.0f);
}

TEST(TensorTest, IncompatibleShapesThrow) {
  Tensor a(2, 3);
  Tensor b(3, 2);
  EXPECT_THROW(a + b, std::invalid_argument);
}

TEST(TensorTest, Matmul) {
  Tensor a = Tensor::of({{1, 2}, {3, 4}});
  Tensor b = Tensor::of({{5, 6}, {7, 8}});
  Tensor c = a.matmul(b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(TensorTest, MatmulShapeMismatchThrows) {
  EXPECT_THROW(Tensor(2, 3).matmul(Tensor(2, 3)), std::invalid_argument);
}

TEST(TensorTest, MatmulLargeThreadedMatchesNaive) {
  Rng rng(42);
  Tensor a = Tensor::normal(150, 90, 0.0f, 1.0f, rng);
  Tensor b = Tensor::normal(90, 110, 0.0f, 1.0f, rng);
  Tensor c = a.matmul(b);
  // Naive reference at a few sampled positions.
  for (auto [i, j] : {std::pair<std::size_t, std::size_t>{0, 0}, {149, 109}, {75, 55}}) {
    double acc = 0.0;
    for (std::size_t k = 0; k < 90; ++k)
      acc += static_cast<double>(a(i, k)) * b(k, j);
    EXPECT_NEAR(c(i, j), acc, 1e-3);
  }
}

TEST(TensorTest, Transpose) {
  Tensor a = Tensor::of({{1, 2, 3}, {4, 5, 6}});
  Tensor t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t(2, 1), 6.0f);
}

TEST(TensorTest, Reductions) {
  Tensor a = Tensor::of({{1, 2}, {3, 4}});
  EXPECT_FLOAT_EQ(a.sum(), 10.0f);
  EXPECT_FLOAT_EQ(a.mean(), 2.5f);
  EXPECT_FLOAT_EQ(a.min(), 1.0f);
  EXPECT_FLOAT_EQ(a.max(), 4.0f);
  Tensor sr = a.sum_rows();
  EXPECT_EQ(sr.rows(), 1u);
  EXPECT_FLOAT_EQ(sr(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(sr(0, 1), 6.0f);
  Tensor sc = a.sum_cols();
  EXPECT_EQ(sc.cols(), 1u);
  EXPECT_FLOAT_EQ(sc(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(sc(1, 0), 7.0f);
}

TEST(TensorTest, RowNorms) {
  Tensor a = Tensor::of({{3, 4}, {0, 0}});
  Tensor n = a.row_norms();
  EXPECT_FLOAT_EQ(n(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(n(1, 0), 0.0f);
}

TEST(TensorTest, SliceCols) {
  Tensor a = Tensor::of({{1, 2, 3, 4}, {5, 6, 7, 8}});
  Tensor s = a.slice_cols(1, 3);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_FLOAT_EQ(s(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s(1, 1), 7.0f);
  EXPECT_THROW(a.slice_cols(3, 5), std::out_of_range);
}

TEST(TensorTest, SliceRows) {
  Tensor a = Tensor::of({{1, 2}, {3, 4}, {5, 6}});
  Tensor s = a.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_FLOAT_EQ(s(0, 0), 3.0f);
}

TEST(TensorTest, GatherRows) {
  Tensor a = Tensor::of({{1, 2}, {3, 4}, {5, 6}});
  Tensor g = a.gather_rows({2, 0, 2});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_FLOAT_EQ(g(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g(2, 1), 6.0f);
  EXPECT_THROW(a.gather_rows({3}), std::out_of_range);
}

TEST(TensorTest, ConcatCols) {
  Tensor a = Tensor::of({{1}, {2}});
  Tensor b = Tensor::of({{3, 4}, {5, 6}});
  Tensor c = Tensor::concat_cols({a, b});
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c(1, 2), 6.0f);
}

TEST(TensorTest, ConcatRows) {
  Tensor a = Tensor::of({{1, 2}});
  Tensor b = Tensor::of({{3, 4}, {5, 6}});
  Tensor c = Tensor::concat_rows({a, b});
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_FLOAT_EQ(c(2, 1), 6.0f);
}

TEST(TensorTest, ConcatMismatchThrows) {
  EXPECT_THROW(Tensor::concat_cols({Tensor(2, 1), Tensor(3, 1)}), std::invalid_argument);
  EXPECT_THROW(Tensor::concat_rows({Tensor(1, 2), Tensor(1, 3)}), std::invalid_argument);
}

TEST(TensorTest, PadCols) {
  Tensor a = Tensor::of({{1, 2}});
  Tensor p = a.pad_cols(1, 2);
  EXPECT_EQ(p.cols(), 5u);
  EXPECT_FLOAT_EQ(p(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(p(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(p(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(p(0, 4), 0.0f);
}

TEST(TensorTest, SlicePadRoundTrip) {
  Rng rng(7);
  Tensor a = Tensor::uniform(4, 9, -1.0f, 1.0f, rng);
  Tensor padded = a.slice_cols(2, 7).pad_cols(2, 2);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 2; c < 7; ++c) EXPECT_FLOAT_EQ(padded(r, c), a(r, c));
}

TEST(TensorTest, Reshape) {
  Tensor a = Tensor::of({{1, 2, 3, 4}});
  Tensor r = a.reshape(2, 2);
  EXPECT_FLOAT_EQ(r(1, 0), 3.0f);
  EXPECT_THROW(a.reshape(3, 2), std::invalid_argument);
}

TEST(TensorTest, MaxAbsDiffAndFinite) {
  Tensor a = Tensor::of({{1, 2}});
  Tensor b = Tensor::of({{1.5, 2}});
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 0.5f);
  EXPECT_TRUE(a.all_finite());
  Tensor c = Tensor::of({{std::numeric_limits<float>::infinity(), 0}});
  EXPECT_FALSE(c.all_finite());
}

TEST(TensorTest, SplitConcatIdentity) {
  // The VFL Split/Concat pair must be a lossless round trip.
  Rng rng(3);
  Tensor x = Tensor::uniform(5, 10, -2.0f, 2.0f, rng);
  Tensor a = x.slice_cols(0, 3);
  Tensor b = x.slice_cols(3, 7);
  Tensor c = x.slice_cols(7, 10);
  Tensor back = Tensor::concat_cols({a, b, c});
  EXPECT_FLOAT_EQ(x.max_abs_diff(back), 0.0f);
}

}  // namespace
}  // namespace gtv
