#include "gan/ctabgan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gan/losses.h"

namespace gtv::gan {
namespace {

using data::ColumnType;
using data::Table;

Table toy_table(std::size_t rows, Rng& rng) {
  Table t({{"value", ColumnType::kContinuous, {}, {}},
           {"label", ColumnType::kCategorical, {"x", "y"}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t cls = rng.categorical({7, 3});
    const double mean = cls == 0 ? -2.0 : 4.0;
    t.append_row({rng.normal(mean, 0.6), static_cast<double>(cls)});
  }
  return t;
}

GanOptions small_options() {
  GanOptions options;
  options.noise_dim = 16;
  options.hidden = 32;
  options.batch_size = 32;
  options.d_steps_per_round = 2;
  return options;
}

TEST(LossesTest, GumbelSoftmaxRowsSumToOne) {
  Rng rng(1);
  ag::Var logits(Tensor::normal(6, 4, 0.0f, 2.0f, rng));
  ag::Var y = gumbel_softmax(logits, 0.2f, rng);
  Tensor sums = y.value().sum_cols();
  for (std::size_t r = 0; r < 6; ++r) EXPECT_NEAR(sums(r, 0), 1.0f, 1e-5f);
  EXPECT_THROW(gumbel_softmax(logits, 0.0f, rng), std::invalid_argument);
}

TEST(LossesTest, GumbelSoftmaxLowTauSharp) {
  Rng rng(2);
  // Strong logits + low temperature -> near one-hot at the argmax.
  Tensor strong = Tensor::of({{10, 0, 0}, {0, 12, 0}});
  ag::Var y = gumbel_softmax(ag::Var(strong), 0.1f, rng);
  EXPECT_GT(y.value()(0, 0), 0.95f);
  EXPECT_GT(y.value()(1, 1), 0.95f);
}

TEST(LossesTest, ApplyOutputActivationsLayout) {
  Rng rng(3);
  std::vector<encode::Span> spans = {{0, 1, encode::Activation::kTanh, 0},
                                     {1, 3, encode::Activation::kSoftmax, 0},
                                     {4, 2, encode::Activation::kSoftmax, 1}};
  ag::Var logits(Tensor::normal(5, 6, 0.0f, 1.0f, rng));
  ag::Var out = apply_output_activations(logits, spans, 0.2f, rng);
  EXPECT_EQ(out.cols(), 6u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_LE(std::abs(out.value()(r, 0)), 1.0f);  // tanh
    float s1 = 0, s2 = 0;
    for (std::size_t c = 1; c < 4; ++c) s1 += out.value()(r, c);
    for (std::size_t c = 4; c < 6; ++c) s2 += out.value()(r, c);
    EXPECT_NEAR(s1, 1.0f, 1e-5f);
    EXPECT_NEAR(s2, 1.0f, 1e-5f);
  }
  // Gap in spans rejected.
  std::vector<encode::Span> bad = {{0, 1, encode::Activation::kTanh, 0},
                                   {2, 4, encode::Activation::kSoftmax, 0}};
  EXPECT_THROW(apply_output_activations(logits, bad, 0.2f, rng), std::invalid_argument);
}

TEST(LossesTest, ConditionalLossPrefersMatchingLogits) {
  // Target category 1 of a 3-wide span at offset 0.
  encode::TableEncoder::DiscreteSpan span;
  span.source_column = 0;
  span.span_offset = 0;
  span.cardinality = 3;
  Tensor mask = Tensor::zeros(2, 3);
  mask(0, 1) = 1.0f;
  mask(1, 1) = 1.0f;
  Tensor good = Tensor::of({{-3, 5, -3}, {-2, 6, -2}});
  Tensor bad = Tensor::of({{5, -3, -3}, {6, -2, -2}});
  ag::Var loss_good = conditional_loss(ag::Var(good), mask, {span});
  ag::Var loss_bad = conditional_loss(ag::Var(bad), mask, {span});
  EXPECT_LT(loss_good.value()(0, 0), loss_bad.value()(0, 0));
  EXPECT_GE(loss_good.value()(0, 0), 0.0f);
}

TEST(LossesTest, GradientPenaltyZeroForUnitGradientCritic) {
  Rng rng(4);
  // critic(x) = x[:, 0]: gradient e1 per row, norm exactly 1 -> penalty 0.
  auto critic = [](const ag::Var& x) { return ag::slice_cols(x, 0, 1); };
  Tensor real = Tensor::normal(8, 4, 0.0f, 1.0f, rng);
  Tensor fake = Tensor::normal(8, 4, 0.0f, 1.0f, rng);
  ag::Var gp = gradient_penalty(critic, real, fake, rng);
  EXPECT_NEAR(gp.value()(0, 0), 0.0f, 1e-6f);
}

TEST(LossesTest, GradientPenaltyPositiveForScaledCritic) {
  Rng rng(5);
  // critic(x) = 3 * x[:, 0]: gradient norm 3 -> penalty (3-1)^2 = 4.
  auto critic = [](const ag::Var& x) { return ag::mul_scalar(ag::slice_cols(x, 0, 1), 3.0f); };
  Tensor real = Tensor::normal(8, 4, 0.0f, 1.0f, rng);
  Tensor fake = Tensor::normal(8, 4, 0.0f, 1.0f, rng);
  ag::Var gp = gradient_penalty(critic, real, fake, rng);
  EXPECT_NEAR(gp.value()(0, 0), 4.0f, 1e-4f);
}

TEST(LossesTest, GradientPenaltyShapeMismatchThrows) {
  Rng rng(6);
  auto critic = [](const ag::Var& x) { return ag::slice_cols(x, 0, 1); };
  EXPECT_THROW(gradient_penalty(critic, Tensor(2, 3), Tensor(2, 4), rng),
               std::invalid_argument);
}

TEST(GeneratorNetTest, ShapesThroughResidualTower) {
  Rng rng(7);
  GeneratorNet g(20, 32, 2, 11, rng);
  ag::Var y = g.forward(ag::Var(Tensor::normal(4, 20, 0.0f, 1.0f, rng)));
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 11u);
  EXPECT_GT(g.parameter_count(), 0u);
}

TEST(GeneratorNetTest, ZeroBlocksIsPlainLinear) {
  Rng rng(8);
  GeneratorNet g(5, 32, 0, 7, rng);
  ag::Var y = g.forward(ag::Var(Tensor::normal(3, 5, 0.0f, 1.0f, rng)));
  EXPECT_EQ(y.cols(), 7u);
  EXPECT_EQ(g.parameters().size(), 2u);  // just the output Linear
}

TEST(DiscriminatorNetTest, CriticOutputsOneColumn) {
  Rng rng(9);
  DiscriminatorNet d(15, 32, 2, 1, rng);
  ag::Var y = d.forward(ag::Var(Tensor::normal(6, 15, 0.0f, 1.0f, rng)));
  EXPECT_EQ(y.rows(), 6u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(CentralizedGanTest, TrainRoundProducesFiniteLosses) {
  Rng rng(10);
  Table t = toy_table(200, rng);
  CentralizedTabularGan gan(t, small_options(), 42);
  RoundLosses losses = gan.train_round();
  EXPECT_TRUE(std::isfinite(losses.d_loss));
  EXPECT_TRUE(std::isfinite(losses.g_loss));
  EXPECT_TRUE(std::isfinite(losses.gp));
  EXPECT_EQ(gan.history().size(), 1u);
}

TEST(CentralizedGanTest, SampleMatchesSchemaAndSize) {
  Rng rng(11);
  Table t = toy_table(150, rng);
  CentralizedTabularGan gan(t, small_options(), 7);
  gan.train(3);
  Table synth = gan.sample(77);
  EXPECT_EQ(synth.n_rows(), 77u);
  ASSERT_TRUE(synth.same_schema(t));
  // Categorical values are valid indices.
  for (double v : synth.column(1)) {
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(CentralizedGanTest, LearnsBimodalToyDistribution) {
  // After a modest number of rounds the synthetic class ratio and the
  // class-conditional means should move toward the real ones.
  Rng rng(12);
  Table t = toy_table(400, rng);
  GanOptions options = small_options();
  options.batch_size = 64;
  CentralizedTabularGan gan(t, options, 99);
  gan.train(60);
  Table synth = gan.sample(400);
  auto counts = synth.class_counts(1);
  const double y_rate = static_cast<double>(counts[1]) / 400.0;
  EXPECT_GT(y_rate, 0.08);
  EXPECT_LT(y_rate, 0.65);
  // Continuous values should fall in the real support (roughly [-4, 7]).
  double mn = 1e9, mx = -1e9;
  for (double v : synth.column(0)) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mn, -10.0);
  EXPECT_LT(mx, 13.0);
}

TEST(CentralizedGanTest, WeightClippingModeTrains) {
  Rng rng(13);
  Table t = toy_table(150, rng);
  GanOptions options = small_options();
  options.critic_mode = CriticMode::kWeightClipping;
  options.clip_value = 0.05f;
  CentralizedTabularGan gan(t, options, 3);
  RoundLosses losses = gan.train_round();
  EXPECT_FLOAT_EQ(losses.gp, 0.0f);
  EXPECT_TRUE(std::isfinite(losses.d_loss));
  Table synth = gan.sample(20);
  EXPECT_EQ(synth.n_rows(), 20u);
}

TEST(CentralizedGanTest, RejectsTinyTable) {
  Table t({{"v", ColumnType::kContinuous, {}, {}}});
  t.append_row({1.0});
  EXPECT_THROW(CentralizedTabularGan(t, small_options(), 1), std::invalid_argument);
}

}  // namespace
}  // namespace gtv::gan
