// Unit tests for gtv::obs::health: the JSD probe math, the HealthMonitor
// rule engine, gated AdamStepStats collection, HealthLog serialization, and
// the Prometheus exposition of the registry the alerts publish into.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "nn/adam.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace gtv::obs {
namespace {

// Restores the health switch and drains the process-wide HealthLog so tests
// cannot leak alerts into each other.
class HealthGuard {
 public:
  HealthGuard() : was_(health_enabled()) { HealthLog::instance().reset(); }
  ~HealthGuard() {
    set_health_enabled(was_);
    HealthLog::instance().reset();
  }

 private:
  bool was_;
};

// --- Jensen-Shannon ----------------------------------------------------------

TEST(JensenShannonTest, IdenticalMarginalsAreZero) {
  const std::vector<double> p = {10, 20, 30, 40};
  EXPECT_NEAR(jensen_shannon(p, p), 0.0, 1e-12);
  // Normalization-invariant: same distribution at a different total mass.
  const std::vector<double> q = {1, 2, 3, 4};
  EXPECT_NEAR(jensen_shannon(p, q), 0.0, 1e-12);
}

TEST(JensenShannonTest, DisjointSupportIsOne) {
  EXPECT_NEAR(jensen_shannon({1, 0}, {0, 1}), 1.0, 1e-12);
  EXPECT_NEAR(jensen_shannon({5, 5, 0, 0}, {0, 0, 3, 3}), 1.0, 1e-12);
}

TEST(JensenShannonTest, SymmetricAndBounded) {
  const std::vector<double> p = {0.7, 0.2, 0.1};
  const std::vector<double> q = {0.1, 0.3, 0.6};
  const double pq = jensen_shannon(p, q);
  EXPECT_DOUBLE_EQ(pq, jensen_shannon(q, p));
  EXPECT_GT(pq, 0.0);
  EXPECT_LT(pq, 1.0);
}

TEST(JensenShannonTest, RejectsBadInput) {
  EXPECT_THROW(jensen_shannon({1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(jensen_shannon({1, -1}, {1, 1}), std::invalid_argument);
}

// --- HealthAlert / RoundHealth JSON ------------------------------------------

TEST(HealthAlertTest, JsonParsesBack) {
  HealthAlert alert{Severity::kFatal, "critic_grad_norm", 7, 1234.5, 1000.0,
                    "server.D: gradient L2 norm exploded"};
  const json::Value v = json::parse(alert.to_json());
  EXPECT_EQ(v.str_or("severity", ""), "fatal");
  EXPECT_EQ(v.str_or("rule", ""), "critic_grad_norm");
  EXPECT_DOUBLE_EQ(v.num_or("round", -1), 7.0);
  EXPECT_DOUBLE_EQ(v.num_or("value", 0), 1234.5);
  EXPECT_DOUBLE_EQ(v.num_or("threshold", 0), 1000.0);
  EXPECT_EQ(v.str_or("detail", ""), "server.D: gradient L2 norm exploded");
}

TEST(HealthAlertTest, NonFiniteValuesSerializeAsFiniteJson) {
  HealthAlert alert;
  alert.rule = "nonfinite_loss";
  alert.value = std::numeric_limits<double>::quiet_NaN();
  alert.threshold = std::numeric_limits<double>::infinity();
  // Must parse: JSON has no NaN/Inf literals, the emitter sanitizes them.
  const json::Value v = json::parse(alert.to_json());
  EXPECT_TRUE(std::isfinite(v.num_or("value", -1)));
  EXPECT_TRUE(std::isfinite(v.num_or("threshold", -1)));
}

TEST(RoundHealthTest, JsonRoundTripsAllSections) {
  RoundHealth health;
  health.collected = true;
  health.modules.push_back({"server.D", 3.0, 10.0, 0.05, 1.5, 0});
  health.probes.push_back({"client0.cat", 0.25, 0.0, 0.0});
  health.probes.push_back({"client1.amount", -1.0, 0.4, -0.1});
  health.alerts.push_back({Severity::kWarn, "update_ratio", 3, 0.7, 0.5, "x"});
  const json::Value v = json::parse(health.to_json());
  ASSERT_EQ(v.at("modules").array.size(), 1u);
  EXPECT_DOUBLE_EQ(v.at("modules").array[0].num_or("update_ratio", 0), 0.005);
  ASSERT_EQ(v.at("probes").array.size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("probes").array[0].num_or("jsd", 0), 0.25);
  ASSERT_EQ(v.at("alerts").array.size(), 1u);
  EXPECT_FALSE(health.has_fatal());
  health.modules.push_back({"client0.G", 1.0, 1.0, 0.001, 0.2, 4});
  EXPECT_EQ(health.nonfinite_grads(), 4u);
}

// --- HealthMonitor rules -----------------------------------------------------

RoundHealth module_round(const std::string& module, double grad_norm,
                         double weight_norm, double update_norm,
                         std::uint64_t nonfinite = 0) {
  RoundHealth health;
  health.collected = true;
  health.modules.push_back(
      {module, grad_norm, weight_norm, update_norm, grad_norm, nonfinite});
  return health;
}

bool fired(const RoundHealth& health, const std::string& rule) {
  for (const auto& a : health.alerts) {
    if (a.rule == rule) return true;
  }
  return false;
}

TEST(HealthMonitorTest, HealthyRoundIsSilent) {
  HealthGuard guard;
  HealthMonitor monitor;
  for (std::size_t round = 0; round < 30; ++round) {
    RoundHealth health = module_round("server.D", 2.0, 50.0, 0.05);
    monitor.evaluate(round, /*d_loss=*/1.0f + 0.01f * round, /*g_loss=*/-0.5f,
                     /*gp=*/0.2f, /*wasserstein=*/1.0f, health);
    EXPECT_TRUE(health.alerts.empty()) << "round " << round;
  }
  EXPECT_EQ(HealthLog::instance().total(), 0u);
}

TEST(HealthMonitorTest, NonFiniteGradientIsFatal) {
  HealthGuard guard;
  HealthMonitor monitor;
  RoundHealth health = module_round("client0.G", 1.0, 1.0, 0.001, /*nonfinite=*/3);
  monitor.evaluate(0, 1.0f, 1.0f, 0.1f, 1.0f, health);
  EXPECT_TRUE(fired(health, "nonfinite_grad"));
  EXPECT_TRUE(health.has_fatal());
  EXPECT_EQ(HealthLog::instance().count(Severity::kFatal), 1u);
}

TEST(HealthMonitorTest, ExplodingCriticGradientIsFatalGeneratorWarns) {
  HealthGuard guard;
  HealthMonitor monitor;
  RoundHealth health;
  health.collected = true;
  health.modules.push_back({"server.D", 5e3, 10.0, 0.01, 5e3, 0});
  health.modules.push_back({"client0.G", 5e3, 10.0, 0.01, 5e3, 0});
  monitor.evaluate(0, 1.0f, 1.0f, 0.1f, 1.0f, health);
  ASSERT_TRUE(fired(health, "critic_grad_norm"));
  ASSERT_TRUE(fired(health, "generator_grad_norm"));
  for (const auto& a : health.alerts) {
    if (a.rule == "critic_grad_norm") EXPECT_EQ(a.severity, Severity::kFatal);
    if (a.rule == "generator_grad_norm") EXPECT_EQ(a.severity, Severity::kWarn);
  }
}

TEST(HealthMonitorTest, UpdateRatioWarns) {
  HealthGuard guard;
  HealthMonitor monitor;
  // ||update|| / ||weights|| = 0.8 > 0.5 default threshold.
  RoundHealth health = module_round("server.G", 1.0, 1.0, 0.8);
  monitor.evaluate(0, 1.0f, 1.0f, 0.1f, 1.0f, health);
  EXPECT_TRUE(fired(health, "update_ratio"));
}

TEST(HealthMonitorTest, GradNormGrowthNeedsPrimedBaseline) {
  HealthGuard guard;
  HealthMonitor monitor;
  // Two quiet rounds do not prime the EWMA (needs 3 samples) — a jump on
  // round 2 stays silent; after priming the same jump fires.
  for (std::size_t round = 0; round < 3; ++round) {
    RoundHealth health = module_round("server.D", 1.0, 10.0, 0.01);
    monitor.evaluate(round, 1.0f, 1.0f, 0.1f, 1.0f, health);
    EXPECT_FALSE(fired(health, "grad_norm_growth"));
  }
  RoundHealth spike = module_round("server.D", 100.0, 10.0, 0.01);
  monitor.evaluate(3, 1.0f, 1.0f, 0.1f, 1.0f, spike);
  EXPECT_TRUE(fired(spike, "grad_norm_growth"));
}

TEST(HealthMonitorTest, NonFiniteLossIsFatal) {
  HealthGuard guard;
  HealthMonitor monitor;
  RoundHealth health;
  health.collected = true;
  monitor.evaluate(0, std::numeric_limits<float>::quiet_NaN(), 1.0f, 0.1f, 1.0f,
                   health);
  EXPECT_TRUE(fired(health, "nonfinite_loss"));
  EXPECT_TRUE(health.has_fatal());
}

TEST(HealthMonitorTest, WassersteinSignFlipAfterWarmup) {
  HealthGuard guard;
  HealthThresholds t;
  t.detector_warmup_rounds = 0;  // isolate the flip rule from the warmup
  HealthMonitor monitor(t);
  RoundHealth last;
  for (std::size_t round = 0; round < t.sign_flip_window + 2; ++round) {
    RoundHealth health;
    health.collected = true;
    const float w = (round % 2 == 0) ? 0.5f : -0.5f;
    monitor.evaluate(round, 1.0f, 1.0f, 0.1f, w, health);
    last = health;
  }
  EXPECT_TRUE(fired(last, "wasserstein_sign_flip"));
}

TEST(HealthMonitorTest, ProbeRulesRespectWarmup) {
  HealthGuard guard;
  HealthThresholds t;
  HealthMonitor monitor(t);
  RoundHealth early;
  early.collected = true;
  early.probes.push_back({"client0.cat", 0.95, 0.0, 0.0});  // terrible marginal
  monitor.evaluate(0, 1.0f, 1.0f, 0.1f, 1.0f, early);
  EXPECT_FALSE(fired(early, "probe_jsd")) << "early training is exempt";

  HealthMonitor monitor2(t);
  RoundHealth late;
  late.collected = true;
  late.probes.push_back({"client0.cat", 0.95, 0.0, 0.0});
  late.probes.push_back({"client0.amount", -1.0, 5.0, -0.95});
  monitor2.evaluate(t.probe_warmup_rounds, 1.0f, 1.0f, 0.1f, 1.0f, late);
  EXPECT_TRUE(fired(late, "probe_jsd"));
  EXPECT_TRUE(fired(late, "probe_mean_drift"));
  EXPECT_TRUE(fired(late, "probe_std_drift"));
}

// --- gated Adam collection ---------------------------------------------------

TEST(AdamStepStatsTest, DisarmedStepCollectsNothing) {
  HealthGuard guard;
  set_health_enabled(false);
  ag::Var x(Tensor::ones(1, 4), true);
  nn::Adam optimizer({x});
  optimizer.zero_grad();
  ag::backward(ag::sum_all(ag::square(x)));
  optimizer.step();
  EXPECT_FALSE(optimizer.last_step_stats().collected);
}

TEST(AdamStepStatsTest, ArmedStepCollectsNorms) {
  HealthGuard guard;
  set_health_enabled(true);
  ag::Var x(Tensor::ones(1, 4), true);
  nn::AdamOptions opts;
  opts.weight_decay = 0.0f;
  nn::Adam optimizer({x}, opts);
  optimizer.zero_grad();
  ag::backward(ag::sum_all(ag::square(x)));  // d/dx = 2x = 2 per element
  optimizer.step();
  const nn::AdamStepStats& s = optimizer.last_step_stats();
  ASSERT_TRUE(s.collected);
  EXPECT_NEAR(s.grad_norm, std::sqrt(4.0 * 4.0), 1e-6);  // ||(2,2,2,2)||
  EXPECT_NEAR(s.grad_max_abs, 2.0, 1e-6);
  EXPECT_GT(s.weight_norm, 0.0);
  EXPECT_GT(s.update_norm, 0.0);
  EXPECT_EQ(s.nonfinite, 0u);

  // Disarming again drops straight back to the uncollected state.
  set_health_enabled(false);
  optimizer.zero_grad();
  ag::backward(ag::sum_all(ag::square(x)));
  optimizer.step();
  EXPECT_FALSE(optimizer.last_step_stats().collected);
}

TEST(AdamStepStatsTest, CountsNonFiniteGradients) {
  HealthGuard guard;
  set_health_enabled(true);
  ag::Var x(Tensor::ones(1, 2), true);
  nn::Adam optimizer({x});
  optimizer.zero_grad();
  // Seed the backward pass with a NaN (as a diverged upstream loss would).
  Tensor seed = Tensor::ones(1, 2);
  seed(0, 0) = std::numeric_limits<float>::quiet_NaN();
  ag::backward(x, ag::constant(seed));
  optimizer.step();
  EXPECT_EQ(optimizer.last_step_stats().nonfinite, 1u);
}

// --- HealthLog ---------------------------------------------------------------

TEST(HealthLogTest, SummaryAndJsonlShapes) {
  HealthGuard guard;
  HealthLog& log = HealthLog::instance();
  log.record({Severity::kWarn, "gp_magnitude", 1, 150.0, 100.0, ""});
  log.record({Severity::kFatal, "critic_grad_norm", 2, 2e3, 1e3, "server.D"});
  log.record({Severity::kWarn, "gp_magnitude", 3, 180.0, 100.0, ""});

  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.count(Severity::kWarn), 2u);
  EXPECT_EQ(log.count(Severity::kFatal), 1u);

  const json::Value summary = json::parse(log.summary_json());
  EXPECT_DOUBLE_EQ(summary.num_or("total", 0), 3.0);
  EXPECT_DOUBLE_EQ(summary.num_or("fatal", 0), 1.0);
  EXPECT_DOUBLE_EQ(summary.at("rules").num_or("gp_magnitude", 0), 2.0);

  // JSONL: one parseable alert object per line.
  std::istringstream lines(log.alerts_jsonl());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const json::Value v = json::parse(line);
    EXPECT_FALSE(v.str_or("rule", "").empty());
    ++n;
  }
  EXPECT_EQ(n, 3u);

  const json::Value arr = json::parse(log.alerts_json());
  ASSERT_TRUE(arr.is_array());
  EXPECT_EQ(arr.array.size(), 3u);
}

// --- Prometheus exposition ---------------------------------------------------

TEST(PrometheusTest, ExposesCountersGaugesHistograms) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter("health_test.prom.counter").add(7);
  registry.gauge("gtv.health.server.D.grad_norm").set(3.5);
  Histogram& h = registry.histogram("health_test.prom.hist", {1.0, 10.0});
  h.record(0.5);
  h.record(5.0);
  h.record(50.0);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE health_test_prom_counter counter\n"), std::string::npos);
  EXPECT_NE(text.find("health_test_prom_counter 7\n"), std::string::npos);
  // '.' sanitized to '_'; the metric name survives otherwise.
  EXPECT_NE(text.find("gtv_health_server_D_grad_norm 3.5\n"), std::string::npos);
  // Cumulative buckets: le="1" holds 1 sample, le="10" holds 2, +Inf all 3.
  EXPECT_NE(text.find("health_test_prom_hist_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("health_test_prom_hist_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("health_test_prom_hist_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("health_test_prom_hist_count 3\n"), std::string::npos);
}

}  // namespace
}  // namespace gtv::obs
