// gtv::obs v2 — op profiler, memory accounting, JSON reader, and
// cross-party flow correlation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "autograd/autograd.h"
#include "net/wire.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "tensor/tensor.h"

namespace gtv::obs {
namespace {

// Restores the profiling switch so tests cannot leak state into each other.
class ProfilingGuard {
 public:
  ProfilingGuard() : was_(profiling_enabled()) {}
  ~ProfilingGuard() { set_profiling_enabled(was_); }

 private:
  bool was_;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// --- JSON reader -------------------------------------------------------------

TEST(JsonReaderTest, ParsesScalarsArraysAndObjects) {
  const json::Value v = json::parse(
      R"({"name":"gtv","pi":3.5,"neg":-2e3,"on":true,"off":false,"nil":null,)"
      R"("arr":[1,2,3],"nested":{"k":"v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").str, "gtv");
  EXPECT_DOUBLE_EQ(v.at("pi").number, 3.5);
  EXPECT_DOUBLE_EQ(v.at("neg").number, -2000.0);
  EXPECT_TRUE(v.at("on").boolean);
  EXPECT_FALSE(v.at("off").boolean);
  EXPECT_TRUE(v.at("nil").is_null());
  ASSERT_TRUE(v.at("arr").is_array());
  ASSERT_EQ(v.at("arr").array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("arr").array[1].number, 2.0);
  EXPECT_EQ(v.at("nested").str_or("k", ""), "v");
  EXPECT_DOUBLE_EQ(v.num_or("missing", -1.0), -1.0);
  EXPECT_FALSE(v.has("missing"));
}

TEST(JsonReaderTest, DecodesStringEscapes) {
  const json::Value v = json::parse(R"("a\"b\\c\nd\tA")");
  EXPECT_EQ(v.str, "a\"b\\c\nd\tA");
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("tru"), std::runtime_error);
  EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::parse("1 2"), std::runtime_error);  // trailing garbage
  EXPECT_THROW(json::parse(""), std::runtime_error);
}

TEST(JsonReaderTest, RoundTripsEmitterOutput) {
  // The reader must accept what the obs emitters produce.
  auto& registry = MetricsRegistry::instance();
  registry.counter("obs_v2.roundtrip").add(5);
  registry.histogram("obs_v2.roundtrip_hist").record(1.5);
  const json::Value v = json::parse(registry.to_json());
  EXPECT_DOUBLE_EQ(v.at("counters").num_or("obs_v2.roundtrip", -1), 5.0);
  EXPECT_DOUBLE_EQ(v.at("histograms").at("obs_v2.roundtrip_hist").num_or("count", -1),
                   1.0);
}

// --- profiler ----------------------------------------------------------------

TEST(ProfilerTest, DisabledScopesRecordNothing) {
  ProfilingGuard guard;
  set_profiling_enabled(false);
  Profiler::instance().reset();
  {
    OpScope scope("obs_v2.disabled");
    OpScope::charge_bytes(1024);
  }
  EXPECT_TRUE(Profiler::instance().snapshot().empty());
}

TEST(ProfilerTest, SelfTimeExcludesNestedScopes) {
  ProfilingGuard guard;
  set_profiling_enabled(true);
  Profiler::instance().reset();
  {
    OpScope outer("obs_v2.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      OpScope inner("obs_v2.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
  }
  const auto stats = Profiler::instance().snapshot();
  ASSERT_TRUE(stats.count("obs_v2.outer"));
  ASSERT_TRUE(stats.count("obs_v2.inner"));
  const OpStats& outer = stats.at("obs_v2.outer");
  const OpStats& inner = stats.at("obs_v2.inner");
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_EQ(inner.calls, 1u);
  // Outer total covers both sleeps; outer *self* excludes the inner scope.
  EXPECT_GE(outer.total_us, inner.total_us);
  EXPECT_EQ(outer.self_us, outer.total_us - inner.total_us);
  EXPECT_GE(inner.total_us, 3000u);
  EXPECT_LT(outer.self_us, outer.total_us);
}

TEST(ProfilerTest, BytesChargeToInnermostScope) {
  ProfilingGuard guard;
  set_profiling_enabled(true);
  Profiler::instance().reset();
  {
    OpScope outer("obs_v2.bytes_outer");
    OpScope::charge_bytes(100);
    {
      OpScope inner("obs_v2.bytes_inner");
      OpScope::charge_bytes(7);
    }
    OpScope::charge_bytes(23);
  }
  const auto stats = Profiler::instance().snapshot();
  EXPECT_EQ(stats.at("obs_v2.bytes_outer").bytes, 123u);
  EXPECT_EQ(stats.at("obs_v2.bytes_inner").bytes, 7u);
}

TEST(ProfilerTest, AutogradOpsRecordForwardAndBackward) {
  ProfilingGuard guard;
  set_profiling_enabled(true);
  Profiler::instance().reset();

  ag::Var a(Tensor::of({{1, 2}, {3, 4}}), /*requires_grad=*/true);
  ag::Var b(Tensor::of({{5, 6}, {7, 8}}), /*requires_grad=*/true);
  ag::Var loss = ag::sum_all(ag::matmul(a, b));
  ag::backward(loss);

  const auto stats = Profiler::instance().snapshot();
  ASSERT_TRUE(stats.count("matmul")) << Profiler::instance().report();
  ASSERT_TRUE(stats.count("matmul.bwd"));
  ASSERT_TRUE(stats.count("sum_all.bwd"));
  ASSERT_TRUE(stats.count("autograd.backward"));
  // Each matmul-family call touches two 2x2 operands and one 2x2 result.
  // The backward pass is transpose-free: g·B^T records under "matmul_nt"
  // and A^T·g under "matmul_tn" — no "transpose" op appears at all.
  EXPECT_EQ(stats.at("matmul").calls, 1u);
  EXPECT_EQ(stats.at("matmul").bytes,
            stats.at("matmul").calls * 3u * 4u * sizeof(float));
  ASSERT_TRUE(stats.count("matmul_nt"));
  ASSERT_TRUE(stats.count("matmul_tn"));
  EXPECT_EQ(stats.at("matmul_nt").calls, 1u);
  EXPECT_EQ(stats.at("matmul_tn").calls, 1u);
  EXPECT_EQ(stats.count("transpose"), 0u);
}

TEST(ProfilerTest, ReportAndJsonCarrySchemaAndOps) {
  ProfilingGuard guard;
  set_profiling_enabled(true);
  Profiler::instance().reset();
  { OpScope scope("obs_v2.report_op"); }

  const std::string table = Profiler::instance().report();
  EXPECT_NE(table.find("obs_v2.report_op"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);

  const json::Value v = json::parse(Profiler::instance().to_json());
  EXPECT_DOUBLE_EQ(v.num_or("schema_version", 0), 1.0);
  ASSERT_TRUE(v.at("ops").has("obs_v2.report_op"));
  EXPECT_DOUBLE_EQ(v.at("ops").at("obs_v2.report_op").num_or("calls", 0), 1.0);
}

// --- memory accounting -------------------------------------------------------

TEST(MemoryTest, TensorAllocationsMoveTheLedger) {
  const MemStats before = memory_stats();
  {
    Tensor t(64, 64);  // 16 KiB of tracked floats
    const MemStats during = memory_stats();
    EXPECT_GE(during.live_bytes, before.live_bytes + 64 * 64 * sizeof(float));
    EXPECT_GT(during.alloc_count, before.alloc_count);
  }
  const MemStats after = memory_stats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_GT(after.free_count, before.free_count);
  EXPECT_GE(after.peak_bytes, before.live_bytes + 64 * 64 * sizeof(float));
}

TEST(MemoryTest, PeakScopeSeesOnlyItsWindow) {
  Tensor persistent(32, 32);  // alive across the scope
  std::uint64_t peak = 0;
  {
    MemPeakScope scope(&peak);
    const std::uint64_t base = memory_stats().live_bytes;
    { Tensor big(128, 128); }
    EXPECT_GE(scope.peak_bytes(), base + 128 * 128 * sizeof(float));
  }
  EXPECT_GE(peak, 128 * 128 * sizeof(float));
}

TEST(MemoryTest, PeakScopeFoldsByMaxAcrossReentry) {
  std::uint64_t peak = 0;
  {
    MemPeakScope scope(&peak);
    Tensor big(64, 64);
  }
  const std::uint64_t first = peak;
  {
    MemPeakScope scope(&peak);
    Tensor small(2, 2);
  }
  // The second, smaller window must not shrink the recorded worst case.
  EXPECT_GE(peak, first);
}

TEST(MemoryTest, NestedScopesTrackIndependently) {
  std::uint64_t outer_peak = 0, inner_peak = 0;
  {
    MemPeakScope outer(&outer_peak);
    { Tensor a(64, 64); }
    {
      MemPeakScope inner(&inner_peak);
      Tensor b(16, 16);
    }
  }
  EXPECT_GT(outer_peak, 0u);
  EXPECT_GT(inner_peak, 0u);
  EXPECT_GE(outer_peak, inner_peak);
}

TEST(MemoryTest, GaugesPublishLedger) {
  Tensor keep(8, 8);
  publish_memory_gauges();
  auto& registry = MetricsRegistry::instance();
  const MemStats stats = memory_stats();
  EXPECT_DOUBLE_EQ(registry.gauge("tensor.mem.live_bytes").value(),
                   static_cast<double>(stats.live_bytes));
  EXPECT_DOUBLE_EQ(registry.gauge("tensor.mem.peak_bytes").value(),
                   static_cast<double>(stats.peak_bytes));
  EXPECT_GT(registry.gauge("tensor.mem.alloc_count").value(), 0.0);
}

// --- party rows + flow correlation ------------------------------------------

TEST(PartyScopeTest, NestsAndRestores) {
  EXPECT_EQ(TraceSink::current_party(), kDriverPid);
  {
    PartyScope server(0);
    EXPECT_EQ(TraceSink::current_party(), 0);
    {
      PartyScope client(3);
      EXPECT_EQ(TraceSink::current_party(), 3);
    }
    EXPECT_EQ(TraceSink::current_party(), 0);
  }
  EXPECT_EQ(TraceSink::current_party(), kDriverPid);
}

TEST(TraceFlowTest, TransferEmitsPartySpansAndFlowPair) {
  const std::string path = ::testing::TempDir() + "obs_v2_flow_test.jsonl";
  TraceSink& sink = TraceSink::instance();
  sink.declare_party(0, "server");
  sink.declare_party(1, "client0");
  sink.open(path);
  ASSERT_TRUE(sink.active());

  net::TrafficMeter meter;
  meter.transfer("client0->server", Tensor::of({{1, 2, 3}}));
  sink.close();

  bool saw_send = false, saw_recv = false, saw_s = false, saw_f = false;
  std::set<std::string> process_names;
  double flow_id_s = -1, flow_id_f = -2;
  for (const std::string& line : read_lines(path)) {
    const json::Value v = json::parse(line);  // every line must parse back
    const std::string ph = v.str_or("ph", "");
    const std::string name = v.str_or("name", "");
    if (ph == "M" && name == "process_name") {
      process_names.insert(v.at("args").str_or("name", ""));
    } else if (ph == "X" && name == "send client0->server") {
      saw_send = true;
      EXPECT_EQ(v.num_or("pid", -1), 1.0);  // client0 sends
      EXPECT_GE(v.num_or("dur", 0), 1.0);
    } else if (ph == "X" && name == "recv client0->server") {
      saw_recv = true;
      EXPECT_EQ(v.num_or("pid", -1), 0.0);  // server receives
    } else if (ph == "s") {
      saw_s = true;
      flow_id_s = v.num_or("id", -1);
      EXPECT_EQ(v.num_or("pid", -1), 1.0);
    } else if (ph == "f") {
      saw_f = true;
      flow_id_f = v.num_or("id", -2);
      EXPECT_EQ(v.num_or("pid", -1), 0.0);
      EXPECT_EQ(v.str_or("bp", ""), "e");  // bind finish to enclosing slice
    }
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_s);
  EXPECT_TRUE(saw_f);
  EXPECT_EQ(flow_id_s, flow_id_f);  // one flow, shared id across parties
  EXPECT_TRUE(process_names.count("server"));
  EXPECT_TRUE(process_names.count("client0"));
  std::remove(path.c_str());
}

TEST(TraceFlowTest, PeerToPeerLinksResolveClientPids) {
  const std::string path = ::testing::TempDir() + "obs_v2_p2p_test.jsonl";
  TraceSink& sink = TraceSink::instance();
  sink.open(path);
  net::TrafficMeter meter;
  meter.transfer("client2->client0", std::vector<std::size_t>{1, 2, 3});
  sink.close();

  bool saw_pair = false;
  for (const std::string& line : read_lines(path)) {
    const json::Value v = json::parse(line);
    if (v.str_or("ph", "") == "s") {
      EXPECT_EQ(v.num_or("pid", -1), 3.0);  // client2 = pid 3
    } else if (v.str_or("ph", "") == "f") {
      EXPECT_EQ(v.num_or("pid", -1), 1.0);  // client0 = pid 1
      saw_pair = true;
    }
  }
  EXPECT_TRUE(saw_pair);
  std::remove(path.c_str());
}

TEST(TraceConcurrencyTest, ParallelSpanEmissionYieldsUntornJsonl) {
  const std::string path = ::testing::TempDir() + "obs_v2_concurrent_test.jsonl";
  TraceSink& sink = TraceSink::instance();
  sink.open(path);
  ASSERT_TRUE(sink.active());

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      PartyScope party(t % 3);
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedTimer span("concurrent_span");
      }
    });
  }
  for (auto& t : threads) t.join();
  sink.close();

  const auto lines = read_lines(path);
  std::set<double> tids;
  std::size_t spans = 0;
  for (const std::string& line : lines) {
    const json::Value v = json::parse(line);  // throws on a torn/interleaved line
    if (v.str_or("name", "") != "concurrent_span") continue;  // party metadata
    ++spans;
    EXPECT_EQ(v.str_or("ph", ""), "X");
    tids.insert(v.num_or("tid", -1));
  }
  EXPECT_EQ(spans, static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gtv::obs
