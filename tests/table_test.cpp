#include "data/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace gtv::data {
namespace {

Table small_table() {
  Table t({{"age", ColumnType::kContinuous, {}, {}},
           {"gender", ColumnType::kCategorical, {"M", "F"}, {}},
           {"balance", ColumnType::kMixed, {}, {0.0}}});
  t.append_row({31.5, 0, 120.0});
  t.append_row({42.0, 1, 0.0});
  t.append_row({27.0, 0, 310.5});
  t.append_row({55.2, 1, 0.0});
  return t;
}

TEST(TableTest, BasicAccessors) {
  Table t = small_table();
  EXPECT_EQ(t.n_rows(), 4u);
  EXPECT_EQ(t.n_cols(), 3u);
  EXPECT_EQ(t.column_index("gender"), 1u);
  EXPECT_FALSE(t.find_column("missing").has_value());
  EXPECT_THROW(t.column_index("missing"), std::invalid_argument);
  EXPECT_DOUBLE_EQ(t.cell(2, 0), 27.0);
  EXPECT_EQ(t.spec(1).cardinality(), 2u);
}

TEST(TableTest, RejectsDuplicateColumnNames) {
  EXPECT_THROW(Table({{"x", ColumnType::kContinuous, {}, {}},
                      {"x", ColumnType::kContinuous, {}, {}}}),
               std::invalid_argument);
}

TEST(TableTest, RejectsCategoricalWithoutCategories) {
  EXPECT_THROW(Table({{"c", ColumnType::kCategorical, {}, {}}}), std::invalid_argument);
}

TEST(TableTest, AppendRowValidation) {
  Table t = small_table();
  EXPECT_THROW(t.append_row({1.0, 0.0}), std::invalid_argument);       // arity
  EXPECT_THROW(t.append_row({1.0, 2.0, 0.0}), std::invalid_argument);  // bad category
  EXPECT_THROW(t.append_row({1.0, 0.5, 0.0}), std::invalid_argument);  // fractional category
}

TEST(TableTest, SelectColumnsAndVerticalSplit) {
  Table t = small_table();
  Table sub = t.select_columns({2, 0});
  EXPECT_EQ(sub.spec(0).name, "balance");
  EXPECT_DOUBLE_EQ(sub.cell(0, 1), 31.5);

  auto shards = vertical_split(t, {{0, 1}, {2}});
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].n_cols(), 2u);
  EXPECT_EQ(shards[1].spec(0).name, "balance");
  EXPECT_THROW(vertical_split(t, {{0}, {0}}), std::invalid_argument);
  EXPECT_THROW(vertical_split(t, {{9}}), std::out_of_range);
}

TEST(TableTest, GatherAndSliceRows) {
  Table t = small_table();
  Table g = t.gather_rows({3, 0, 0});
  EXPECT_EQ(g.n_rows(), 3u);
  EXPECT_DOUBLE_EQ(g.cell(0, 0), 55.2);
  EXPECT_DOUBLE_EQ(g.cell(2, 0), 31.5);
  Table s = t.slice_rows(1, 3);
  EXPECT_EQ(s.n_rows(), 2u);
  EXPECT_DOUBLE_EQ(s.cell(0, 0), 42.0);
}

TEST(TableTest, PermuteRowsSharedSeedAlignment) {
  // Two vertically split shards permuted with the same seed stay row-aligned.
  Table t = small_table();
  auto shards = vertical_split(t, {{0, 1}, {2}});
  Rng r1(99), r2(99);
  shards[0].permute_rows(r1.permutation(4));
  shards[1].permute_rows(r2.permutation(4));
  Table joined = Table::concat_columns(shards);
  // Every joined row must be one of the original rows (alignment preserved).
  for (std::size_t r = 0; r < 4; ++r) {
    bool matched = false;
    for (std::size_t o = 0; o < 4; ++o) {
      matched = matched || (joined.cell(r, 0) == t.cell(o, 0) &&
                            joined.cell(r, 1) == t.cell(o, 1) &&
                            joined.cell(r, 2) == t.cell(o, 2));
    }
    EXPECT_TRUE(matched) << "row " << r << " lost alignment";
  }
}

TEST(TableTest, ConcatColumnsChecks) {
  Table t = small_table();
  auto shards = vertical_split(t, {{0}, {1, 2}});
  Table joined = Table::concat_columns(shards);
  EXPECT_EQ(joined.n_cols(), 3u);
  EXPECT_DOUBLE_EQ(joined.cell(2, 2), 310.5);
  // Row mismatch rejected.
  Table shorter = shards[1].slice_rows(0, 2);
  EXPECT_THROW(Table::concat_columns({shards[0], shorter}), std::invalid_argument);
}

TEST(TableTest, TrainTestSplitSizes) {
  Rng rng(5);
  Table t = small_table();
  auto [train, test] = t.train_test_split(0.25, rng);
  EXPECT_EQ(test.n_rows(), 1u);
  EXPECT_EQ(train.n_rows(), 3u);
  EXPECT_THROW(t.train_test_split(1.5, rng), std::invalid_argument);
}

TEST(TableTest, StratifiedSplitPreservesClassBalance) {
  Table t({{"cls", ColumnType::kCategorical, {"a", "b"}, {}}});
  for (int i = 0; i < 80; ++i) t.append_row({0});
  for (int i = 0; i < 20; ++i) t.append_row({1});
  Rng rng(7);
  auto [train, test] = t.train_test_split(0.2, rng, 0);
  auto test_counts = test.class_counts(0);
  EXPECT_EQ(test_counts[0], 16u);
  EXPECT_EQ(test_counts[1], 4u);
}

TEST(TableTest, StratifiedSampleKeepsMinorityClass) {
  Table t({{"cls", ColumnType::kCategorical, {"maj", "min"}, {}}});
  for (int i = 0; i < 990; ++i) t.append_row({0});
  for (int i = 0; i < 10; ++i) t.append_row({1});
  Rng rng(11);
  Table sampled = t.stratified_sample(100, 0, rng);
  auto counts = sampled.class_counts(0);
  EXPECT_NEAR(static_cast<double>(counts[0]), 99.0, 2.0);
  EXPECT_GE(counts[1], 1u);
}

TEST(TableTest, ClassCountsRejectsContinuous) {
  Table t = small_table();
  EXPECT_THROW(t.class_counts(0), std::invalid_argument);
  auto counts = t.class_counts(1);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(TableTest, CsvRoundTrip) {
  Table t = small_table();
  const std::string path = std::filesystem::temp_directory_path() / "gtv_table_test.csv";
  write_csv(t, path);
  Table back = read_csv(path);
  ASSERT_TRUE(back.same_schema(t));
  ASSERT_EQ(back.n_rows(), t.n_rows());
  for (std::size_t r = 0; r < t.n_rows(); ++r)
    for (std::size_t c = 0; c < t.n_cols(); ++c)
      EXPECT_NEAR(back.cell(r, c), t.cell(r, c), 1e-6);
  std::remove(path.c_str());
}

TEST(TableTest, SameSchemaDetectsDifferences) {
  Table a = small_table();
  Table b({{"age", ColumnType::kContinuous, {}, {}},
           {"gender", ColumnType::kCategorical, {"M", "X"}, {}},
           {"balance", ColumnType::kMixed, {}, {0.0}}});
  EXPECT_FALSE(a.same_schema(b));
  EXPECT_TRUE(a.same_schema(small_table()));
}

}  // namespace
}  // namespace gtv::data
