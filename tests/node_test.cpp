// Multi-party node protocol (core/node.h): a four-party TCP run in threads
// must reproduce GtvTrainer's losses exactly, and invalid configurations
// must be rejected up front.
#include "core/node.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>

#include "core/gtv.h"
#include "core/partition.h"
#include "data/datasets.h"
#include "net/chaos.h"
#include "net/tcp.h"

namespace gtv::core {
namespace {

struct NodeSetup {
  NodeConfig config;
  std::vector<data::Table> shards;
  std::vector<std::size_t> g_widths;
  std::vector<std::size_t> d_widths;
};

NodeSetup make_setup(std::size_t rounds = 2) {
  NodeSetup setup;
  setup.config.options.exact_gradient_penalty = false;
  setup.config.options.gan.batch_size = 24;
  setup.config.options.gan.d_steps_per_round = 2;
  setup.config.n_clients = 2;
  setup.config.rounds = rounds;
  setup.config.seed = 11;
  setup.config.train_rows = 72;

  Rng rng(setup.config.seed ^ 0xda7aULL);
  const data::Table table = data::make_dataset("loan", setup.config.train_rows, rng);
  std::vector<std::vector<std::size_t>> groups(2);
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    groups[c < (table.n_cols() + 1) / 2 ? 0 : 1].push_back(c);
  }
  setup.shards = data::vertical_split(table, groups);

  std::vector<std::size_t> feature_counts;
  for (const auto& shard : setup.shards) feature_counts.push_back(shard.n_cols());
  const auto ratios = ratio_vector(feature_counts);
  setup.g_widths = proportional_widths(setup.config.options.generator_hidden, ratios);
  setup.d_widths = proportional_widths(setup.config.options.gan.hidden, ratios);
  return setup;
}

net::RetryPolicy test_retry_policy() {
  net::RetryPolicy policy;
  policy.recv_timeout_ms = 2000;
  policy.max_attempts = 30;
  return policy;
}

TEST(NodeConfigTest, RejectsSimulationOnlyModes) {
  NodeConfig config;
  config.train_rows = 10;
  config.options.exact_gradient_penalty = true;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.options.exact_gradient_penalty = false;
  config.options.index_sharing = IndexSharing::kPeerToPeer;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.options.index_sharing = IndexSharing::kServer;
  config.options.dp_noise_std = 0.5f;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.options.dp_noise_std = 0.0f;
  EXPECT_NO_THROW(config.validate());
  config.train_rows = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(NodeConfigTest, PartySeedsMatchTrainerSeederOrder) {
  const auto seeds = party_seeds(123, 3);
  Rng seeder(123);
  ASSERT_EQ(seeds.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(seeds[i], seeder.next_u64());
}

// The tentpole parity property: 4 parties over real TCP sockets produce the
// same per-round losses as the single-process trainer, same seed.
TEST(NodeProtocolTest, TcpFourPartyRunMatchesInProcessTrainer) {
  NodeSetup setup = make_setup();

  // Reference: classic in-process trainer.
  GtvTrainer trainer(setup.shards, setup.config.options, setup.config.seed);
  trainer.train(setup.config.rounds);
  const auto expected = trainer.history();

  // Distributed: server + driver listen, clients dial both.
  auto server_t = std::make_shared<net::TcpTransport>("server");
  const std::uint16_t server_port = server_t->listen(0);
  auto driver_t = std::make_shared<net::TcpTransport>("driver");
  const std::uint16_t driver_port = driver_t->listen(0);

  auto server_task = std::async(std::launch::async, [&] {
    ServerNode node(setup.config, setup.g_widths, setup.d_widths);
    node.set_transport(server_t);
    node.traffic().set_retry_policy(test_retry_policy());
    node.run();
    return node.traffic().total();
  });
  std::vector<std::future<net::LinkStats>> client_tasks;
  for (std::size_t i = 0; i < setup.config.n_clients; ++i) {
    client_tasks.push_back(std::async(std::launch::async, [&, i] {
      auto transport =
          std::make_shared<net::TcpTransport>("client" + std::to_string(i));
      transport->connect_peer("server", "127.0.0.1", server_port);
      transport->connect_peer("driver", "127.0.0.1", driver_port);
      ClientNode node(setup.config, i, setup.shards[i], setup.g_widths[i],
                      setup.d_widths[i]);
      node.set_transport(transport);
      node.traffic().set_retry_policy(test_retry_policy());
      node.run();
      return node.traffic().total();
    }));
  }
  driver_t->connect_peer("server", "127.0.0.1", server_port);
  ASSERT_TRUE(driver_t->wait_for_peer("client0", 20000));
  ASSERT_TRUE(driver_t->wait_for_peer("client1", 20000));

  DriverNode driver(setup.config);
  driver.set_transport(driver_t);
  driver.traffic().set_retry_policy(test_retry_policy());
  const auto history = driver.run();

  const net::LinkStats server_traffic = server_task.get();
  for (auto& task : client_tasks) {
    const net::LinkStats client_traffic = task.get();
    EXPECT_GT(client_traffic.bytes, 0u);
  }
  EXPECT_GT(server_traffic.bytes, 0u);

  ASSERT_EQ(history.size(), expected.size());
  for (std::size_t r = 0; r < history.size(); ++r) {
    EXPECT_NEAR(history[r].d_loss, expected[r].d_loss, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].g_loss, expected[r].g_loss, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].gp, expected[r].gp, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].wasserstein, expected[r].wasserstein, 1e-5) << "round " << r;
  }
}

// Chaos determinism at the trainer level: a faulty transport changes the
// delivery schedule but never the delivered payloads, so training converges
// to the identical model — and equal chaos seeds give equal schedules.
TEST(NodeProtocolTest, ChaosRunsAreDeterministicAndLossless) {
  NodeSetup setup = make_setup(/*rounds=*/1);

  GtvTrainer clean(setup.shards, setup.config.options, setup.config.seed);
  clean.train(1);

  const auto run_chaos = [&](std::uint64_t chaos_seed) {
    net::ChaosOptions chaos;
    chaos.drop_prob = 0.15;
    chaos.dup_prob = 0.05;
    chaos.corrupt_prob = 0.05;
    chaos.seed = chaos_seed;
    GtvTrainer trainer(setup.shards, setup.config.options, setup.config.seed);
    auto transport = std::make_shared<net::ChaosTransport>(
        std::make_shared<net::InProcTransport>(), chaos);
    trainer.traffic().set_transport(transport);
    net::RetryPolicy policy;
    policy.backoff_base_ms = 0;
    trainer.traffic().set_retry_policy(policy);
    trainer.train(1);
    return std::make_tuple(trainer.history(), transport->schedule_digest(),
                           trainer.traffic().total());
  };

  const auto [history_a, digest_a, traffic_a] = run_chaos(21);
  const auto [history_b, digest_b, traffic_b] = run_chaos(21);
  const auto [history_c, digest_c, traffic_c] = run_chaos(22);

  // Same chaos seed: identical schedule and identical retries.
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_EQ(traffic_a.retries, traffic_b.retries);
  // Different chaos seed: different schedule...
  EXPECT_NE(digest_a, digest_c);
  // ...but ALL runs (clean included) land on identical losses, because the
  // recovery layer delivers every logical payload intact.
  ASSERT_EQ(history_a.size(), 1u);
  EXPECT_FLOAT_EQ(history_a[0].d_loss, clean.history()[0].d_loss);
  EXPECT_FLOAT_EQ(history_a[0].g_loss, clean.history()[0].g_loss);
  EXPECT_FLOAT_EQ(history_c[0].d_loss, clean.history()[0].d_loss);
  EXPECT_FLOAT_EQ(history_c[0].g_loss, clean.history()[0].g_loss);
  EXPECT_GT(traffic_a.retries, 0u);
}

// Drop-heavy chaos still completes: every message eventually gets through
// within the bounded retransmit budget.
TEST(NodeProtocolTest, DropHeavyChaosConvergesViaRetries) {
  NodeSetup setup = make_setup(/*rounds=*/1);
  net::ChaosOptions chaos;
  chaos.drop_prob = 0.35;
  chaos.seed = 4;
  GtvTrainer trainer(setup.shards, setup.config.options, setup.config.seed);
  trainer.traffic().set_transport(std::make_shared<net::ChaosTransport>(
      std::make_shared<net::InProcTransport>(), chaos));
  net::RetryPolicy policy;
  policy.backoff_base_ms = 0;
  trainer.traffic().set_retry_policy(policy);
  EXPECT_NO_THROW(trainer.train(1));
  EXPECT_GT(trainer.traffic().total().retries, 0u);
  EXPECT_EQ(trainer.traffic().total().corrupt_frames, 0u);
}

}  // namespace
}  // namespace gtv::core
