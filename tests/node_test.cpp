// Multi-party node protocol (core/node.h): a four-party TCP run in threads
// must reproduce GtvTrainer's losses exactly, invalid configurations must
// be rejected up front, and the elastic-federation path (DP noise over
// TCP, coordinated train checkpoints, crash + rejoin) must keep that
// bit-exact parity.
#include "core/node.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>

#include "core/gtv.h"
#include "core/partition.h"
#include "data/datasets.h"
#include "net/chaos.h"
#include "net/tcp.h"

namespace gtv::core {
namespace {

struct NodeSetup {
  NodeConfig config;
  std::vector<data::Table> shards;
  std::vector<std::size_t> g_widths;
  std::vector<std::size_t> d_widths;
};

NodeSetup make_setup(std::size_t rounds = 2) {
  NodeSetup setup;
  setup.config.options.exact_gradient_penalty = false;
  setup.config.options.gan.batch_size = 24;
  setup.config.options.gan.d_steps_per_round = 2;
  setup.config.n_clients = 2;
  setup.config.rounds = rounds;
  setup.config.seed = 11;
  setup.config.train_rows = 72;

  Rng rng(setup.config.seed ^ 0xda7aULL);
  const data::Table table = data::make_dataset("loan", setup.config.train_rows, rng);
  std::vector<std::vector<std::size_t>> groups(2);
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    groups[c < (table.n_cols() + 1) / 2 ? 0 : 1].push_back(c);
  }
  setup.shards = data::vertical_split(table, groups);

  std::vector<std::size_t> feature_counts;
  for (const auto& shard : setup.shards) feature_counts.push_back(shard.n_cols());
  const auto ratios = ratio_vector(feature_counts);
  setup.g_widths = proportional_widths(setup.config.options.generator_hidden, ratios);
  setup.d_widths = proportional_widths(setup.config.options.gan.hidden, ratios);
  return setup;
}

net::RetryPolicy test_retry_policy() {
  net::RetryPolicy policy;
  policy.recv_timeout_ms = 2000;
  policy.max_attempts = 30;
  return policy;
}

// Simulated SIGKILL for thread-hosted parties: after a budgeted number of
// fetch_frame calls the transport throws a type nothing in the node stack
// catches, so the party's run() unwinds and its TcpTransport destructor
// slams the connections shut — peers observe exactly what a killed process
// produces (EOF on every socket).
struct CrashNow {};

class FuseTransport : public net::Transport {
 public:
  FuseTransport(std::shared_ptr<net::Transport> inner, int fetch_budget)
      : inner_(std::move(inner)), fetches_left_(fetch_budget) {}
  std::string kind() const override { return "fuse+" + inner_->kind(); }
  void deliver_frame(const std::string& link,
                     std::vector<std::uint8_t> frame) override {
    inner_->deliver_frame(link, std::move(frame));
  }
  std::vector<std::uint8_t> fetch_frame(const std::string& link,
                                        int timeout_ms) override {
    if (fetches_left_.fetch_sub(1) <= 0) throw CrashNow{};
    return inner_->fetch_frame(link, timeout_ms);
  }
  void discard_queued(const std::string& link) override {
    inner_->discard_queued(link);
  }
  bool wait_for_live_peer(const std::string& peer, int timeout_ms) override {
    return inner_->wait_for_live_peer(peer, timeout_ms);
  }

 private:
  std::shared_ptr<net::Transport> inner_;
  std::atomic<int> fetches_left_;
};

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(NodeConfigTest, RejectsSimulationOnlyModes) {
  NodeConfig config;
  config.train_rows = 10;
  config.options.exact_gradient_penalty = true;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.options.exact_gradient_penalty = false;
  config.options.index_sharing = IndexSharing::kPeerToPeer;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.options.index_sharing = IndexSharing::kServer;
  // DP noise is party-local (each client owns its dp stream), so it is NOT
  // simulation-only: node mode must accept it.
  config.options.dp_noise_std = 0.5f;
  EXPECT_NO_THROW(config.validate());
  config.options.dp_noise_std = 0.0f;
  EXPECT_NO_THROW(config.validate());
  config.train_rows = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(NodeConfigTest, PartySeedsMatchTrainerSeederOrder) {
  const auto seeds = party_seeds(123, 3);
  Rng seeder(123);
  ASSERT_EQ(seeds.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(seeds[i], seeder.next_u64());
}

// The tentpole parity property: 4 parties over real TCP sockets produce the
// same per-round losses as the single-process trainer, same seed.
TEST(NodeProtocolTest, TcpFourPartyRunMatchesInProcessTrainer) {
  NodeSetup setup = make_setup();

  // Reference: classic in-process trainer.
  GtvTrainer trainer(setup.shards, setup.config.options, setup.config.seed);
  trainer.train(setup.config.rounds);
  const auto expected = trainer.history();

  // Distributed: server + driver listen, clients dial both.
  auto server_t = std::make_shared<net::TcpTransport>("server");
  const std::uint16_t server_port = server_t->listen(0);
  auto driver_t = std::make_shared<net::TcpTransport>("driver");
  const std::uint16_t driver_port = driver_t->listen(0);

  auto server_task = std::async(std::launch::async, [&] {
    ServerNode node(setup.config, setup.g_widths, setup.d_widths);
    node.set_transport(server_t);
    node.traffic().set_retry_policy(test_retry_policy());
    node.run();
    return node.traffic().total();
  });
  std::vector<std::future<net::LinkStats>> client_tasks;
  for (std::size_t i = 0; i < setup.config.n_clients; ++i) {
    client_tasks.push_back(std::async(std::launch::async, [&, i] {
      auto transport =
          std::make_shared<net::TcpTransport>("client" + std::to_string(i));
      transport->connect_peer("server", "127.0.0.1", server_port);
      transport->connect_peer("driver", "127.0.0.1", driver_port);
      ClientNode node(setup.config, i, setup.shards[i], setup.g_widths[i],
                      setup.d_widths[i]);
      node.set_transport(transport);
      node.traffic().set_retry_policy(test_retry_policy());
      node.run();
      return node.traffic().total();
    }));
  }
  driver_t->connect_peer("server", "127.0.0.1", server_port);
  ASSERT_TRUE(driver_t->wait_for_peer("client0", 20000));
  ASSERT_TRUE(driver_t->wait_for_peer("client1", 20000));

  DriverNode driver(setup.config);
  driver.set_transport(driver_t);
  driver.traffic().set_retry_policy(test_retry_policy());
  const auto history = driver.run();

  const net::LinkStats server_traffic = server_task.get();
  for (auto& task : client_tasks) {
    const net::LinkStats client_traffic = task.get();
    EXPECT_GT(client_traffic.bytes, 0u);
  }
  EXPECT_GT(server_traffic.bytes, 0u);

  ASSERT_EQ(history.size(), expected.size());
  for (std::size_t r = 0; r < history.size(); ++r) {
    EXPECT_NEAR(history[r].d_loss, expected[r].d_loss, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].g_loss, expected[r].g_loss, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].gp, expected[r].gp, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].wasserstein, expected[r].wasserstein, 1e-5) << "round " << r;
  }
}

// Chaos determinism at the trainer level: a faulty transport changes the
// delivery schedule but never the delivered payloads, so training converges
// to the identical model — and equal chaos seeds give equal schedules.
TEST(NodeProtocolTest, ChaosRunsAreDeterministicAndLossless) {
  NodeSetup setup = make_setup(/*rounds=*/1);

  GtvTrainer clean(setup.shards, setup.config.options, setup.config.seed);
  clean.train(1);

  const auto run_chaos = [&](std::uint64_t chaos_seed) {
    net::ChaosOptions chaos;
    chaos.drop_prob = 0.15;
    chaos.dup_prob = 0.05;
    chaos.corrupt_prob = 0.05;
    chaos.seed = chaos_seed;
    GtvTrainer trainer(setup.shards, setup.config.options, setup.config.seed);
    auto transport = std::make_shared<net::ChaosTransport>(
        std::make_shared<net::InProcTransport>(), chaos);
    trainer.traffic().set_transport(transport);
    net::RetryPolicy policy;
    policy.backoff_base_ms = 0;
    trainer.traffic().set_retry_policy(policy);
    trainer.train(1);
    return std::make_tuple(trainer.history(), transport->schedule_digest(),
                           trainer.traffic().total());
  };

  const auto [history_a, digest_a, traffic_a] = run_chaos(21);
  const auto [history_b, digest_b, traffic_b] = run_chaos(21);
  const auto [history_c, digest_c, traffic_c] = run_chaos(22);

  // Same chaos seed: identical schedule and identical retries.
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_EQ(traffic_a.retries, traffic_b.retries);
  // Different chaos seed: different schedule...
  EXPECT_NE(digest_a, digest_c);
  // ...but ALL runs (clean included) land on identical losses, because the
  // recovery layer delivers every logical payload intact.
  ASSERT_EQ(history_a.size(), 1u);
  EXPECT_FLOAT_EQ(history_a[0].d_loss, clean.history()[0].d_loss);
  EXPECT_FLOAT_EQ(history_a[0].g_loss, clean.history()[0].g_loss);
  EXPECT_FLOAT_EQ(history_c[0].d_loss, clean.history()[0].d_loss);
  EXPECT_FLOAT_EQ(history_c[0].g_loss, clean.history()[0].g_loss);
  EXPECT_GT(traffic_a.retries, 0u);
}

// Satellite regression: dp_noise_std > 0 must run over TCP and agree with
// the in-process trainer exactly (each client owns its dp stream, so no
// RNG state crosses the party boundary).
TEST(NodeProtocolTest, TcpDpNoiseRunMatchesInProcessTrainer) {
  NodeSetup setup = make_setup();
  setup.config.options.dp_noise_std = 0.25f;

  GtvTrainer trainer(setup.shards, setup.config.options, setup.config.seed);
  trainer.train(setup.config.rounds);
  const auto expected = trainer.history();

  auto server_t = std::make_shared<net::TcpTransport>("server");
  const std::uint16_t server_port = server_t->listen(0);
  auto driver_t = std::make_shared<net::TcpTransport>("driver");
  const std::uint16_t driver_port = driver_t->listen(0);

  auto server_task = std::async(std::launch::async, [&] {
    ServerNode node(setup.config, setup.g_widths, setup.d_widths);
    node.set_transport(server_t);
    node.traffic().set_retry_policy(test_retry_policy());
    node.run();
  });
  std::vector<std::future<void>> client_tasks;
  for (std::size_t i = 0; i < setup.config.n_clients; ++i) {
    client_tasks.push_back(std::async(std::launch::async, [&, i] {
      auto transport =
          std::make_shared<net::TcpTransport>("client" + std::to_string(i));
      transport->connect_peer("server", "127.0.0.1", server_port);
      transport->connect_peer("driver", "127.0.0.1", driver_port);
      ClientNode node(setup.config, i, setup.shards[i], setup.g_widths[i],
                      setup.d_widths[i]);
      node.set_transport(transport);
      node.traffic().set_retry_policy(test_retry_policy());
      node.run();
    }));
  }
  driver_t->connect_peer("server", "127.0.0.1", server_port);
  ASSERT_TRUE(driver_t->wait_for_peer("client0", 20000));
  ASSERT_TRUE(driver_t->wait_for_peer("client1", 20000));

  DriverNode driver(setup.config);
  driver.set_transport(driver_t);
  driver.traffic().set_retry_policy(test_retry_policy());
  const auto history = driver.run();
  server_task.get();
  for (auto& task : client_tasks) task.get();

  ASSERT_EQ(history.size(), expected.size());
  for (std::size_t r = 0; r < history.size(); ++r) {
    EXPECT_NEAR(history[r].d_loss, expected[r].d_loss, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].g_loss, expected[r].g_loss, 1e-5) << "round " << r;
  }
}

// The elastic tentpole: client1 "dies" mid-training (its transport slams
// every socket shut, exactly like a SIGKILL'd process) and a fresh
// replacement rejoins; the driver replays the last coordinated checkpoint
// and the final loss trajectory is identical to the uninterrupted run.
TEST(NodeProtocolTest, TcpCrashedClientRejoinsWithExactTrajectory) {
  NodeSetup setup = make_setup(/*rounds=*/4);

  GtvTrainer trainer(setup.shards, setup.config.options, setup.config.seed);
  trainer.train(setup.config.rounds);
  const auto expected = trainer.history();

  auto server_t = std::make_shared<net::TcpTransport>("server");
  const std::uint16_t server_port = server_t->listen(0);
  auto driver_t = std::make_shared<net::TcpTransport>("driver");
  const std::uint16_t driver_port = driver_t->listen(0);

  // Crash-smoke patience: the dead client's peers must fail fast, not sit
  // out 30 attempts x 2 s.
  net::RetryPolicy policy = test_retry_policy();
  policy.max_attempts = 8;

  auto server_task = std::async(std::launch::async, [&] {
    ServerNode node(setup.config, setup.g_widths, setup.d_widths);
    node.set_transport(server_t);
    node.set_elastic(true);
    node.traffic().set_retry_policy(policy);
    node.run();
  });
  auto client0_task = std::async(std::launch::async, [&] {
    auto transport = std::make_shared<net::TcpTransport>("client0");
    transport->connect_peer("server", "127.0.0.1", server_port);
    transport->connect_peer("driver", "127.0.0.1", driver_port);
    ClientNode node(setup.config, 0, setup.shards[0], setup.g_widths[0],
                    setup.d_widths[0]);
    node.set_transport(transport);
    node.set_elastic(true);
    node.traffic().set_retry_policy(policy);
    node.run();
  });
  auto client1_task = std::async(std::launch::async, [&] {
    try {
      auto transport = std::make_shared<net::TcpTransport>("client1");
      transport->connect_peer("server", "127.0.0.1", server_port);
      transport->connect_peer("driver", "127.0.0.1", driver_port);
      ClientNode node(setup.config, 1, setup.shards[1], setup.g_widths[1],
                      setup.d_widths[1]);
      // Budget chosen to blow partway through round 2+, after the round-1
      // checkpoint barrier has completed.
      node.set_transport(std::make_shared<FuseTransport>(transport, 60));
      node.set_elastic(true);
      node.traffic().set_retry_policy(policy);
      node.run();
      ADD_FAILURE() << "fuse never blew; raise the test's round count";
      return;
    } catch (const CrashNow&) {
      // Transport destroyed: every socket closed, peers see EOF.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    // The relaunched process: same data and seed, --rejoin semantics.
    auto transport = std::make_shared<net::TcpTransport>("client1");
    transport->connect_peer("server", "127.0.0.1", server_port);
    transport->connect_peer("driver", "127.0.0.1", driver_port);
    ClientNode node(setup.config, 1, setup.shards[1], setup.g_widths[1],
                    setup.d_widths[1]);
    node.set_transport(transport);
    node.set_elastic(true);
    node.set_rejoin(true);
    node.traffic().set_retry_policy(policy);
    node.run();
  });
  driver_t->connect_peer("server", "127.0.0.1", server_port);
  ASSERT_TRUE(driver_t->wait_for_peer("client0", 20000));
  ASSERT_TRUE(driver_t->wait_for_peer("client1", 20000));

  const std::string ckpt_path = temp_path("gtv_node_crash.gtvt");
  DriverNode driver(setup.config);
  driver.set_transport(driver_t);
  driver.traffic().set_retry_policy(policy);
  driver.set_train_checkpoint(ckpt_path, /*every=*/1);
  driver.set_rejoin_wait_ms(30000);
  const auto history = driver.run();
  server_task.get();
  client0_task.get();
  client1_task.get();

  EXPECT_GE(driver.recoveries(), 1u);
  ASSERT_EQ(history.size(), expected.size());
  for (std::size_t r = 0; r < history.size(); ++r) {
    EXPECT_NEAR(history[r].d_loss, expected[r].d_loss, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].g_loss, expected[r].g_loss, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].gp, expected[r].gp, 1e-5) << "round " << r;
    EXPECT_NEAR(history[r].wasserstein, expected[r].wasserstein, 1e-5)
        << "round " << r;
  }
  std::remove(ckpt_path.c_str());
}

// Drop-heavy chaos still completes: every message eventually gets through
// within the bounded retransmit budget.
TEST(NodeProtocolTest, DropHeavyChaosConvergesViaRetries) {
  NodeSetup setup = make_setup(/*rounds=*/1);
  net::ChaosOptions chaos;
  chaos.drop_prob = 0.35;
  chaos.seed = 4;
  GtvTrainer trainer(setup.shards, setup.config.options, setup.config.seed);
  trainer.traffic().set_transport(std::make_shared<net::ChaosTransport>(
      std::make_shared<net::InProcTransport>(), chaos));
  net::RetryPolicy policy;
  policy.backoff_base_ms = 0;
  trainer.traffic().set_retry_policy(policy);
  EXPECT_NO_THROW(trainer.train(1));
  EXPECT_GT(trainer.traffic().total().retries, 0u);
  EXPECT_EQ(trainer.traffic().total().corrupt_frames, 0u);
}

}  // namespace
}  // namespace gtv::core
