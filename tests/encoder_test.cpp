#include "encode/encoder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.h"

namespace gtv::encode {
namespace {

using data::ColumnSpec;
using data::ColumnType;
using data::Table;

Table mixed_table(std::size_t rows, Rng& rng) {
  Table t({{"cont", ColumnType::kContinuous, {}, {}},
           {"cat", ColumnType::kCategorical, {"a", "b", "c"}, {}},
           {"mix", ColumnType::kMixed, {}, {0.0}}});
  for (std::size_t i = 0; i < rows; ++i) {
    const double cont = rng.uniform() < 0.5 ? rng.normal(-4.0, 0.5) : rng.normal(6.0, 1.0);
    const double cat = static_cast<double>(rng.categorical({5.0, 3.0, 2.0}));
    const double mix = rng.uniform() < 0.4 ? 0.0 : rng.normal(100.0, 10.0);
    t.append_row({cont, cat, mix});
  }
  return t;
}

TEST(EncoderTest, SpanLayout) {
  Rng rng(1);
  Table t = mixed_table(800, rng);
  TableEncoder enc;
  enc.fit(t, EncoderOptions{}, rng);
  // cont -> alpha + modes; cat -> onehot; mix -> alpha + (special+modes).
  ASSERT_EQ(enc.spans_of_column(0).size(), 2u);
  ASSERT_EQ(enc.spans_of_column(1).size(), 1u);
  ASSERT_EQ(enc.spans_of_column(2).size(), 2u);
  const auto& spans = enc.spans();
  EXPECT_EQ(spans[enc.spans_of_column(0)[0]].activation, Activation::kTanh);
  EXPECT_EQ(spans[enc.spans_of_column(0)[1]].activation, Activation::kSoftmax);
  EXPECT_EQ(spans[enc.spans_of_column(1)[0]].width, 3u);
  // Offsets are contiguous and cover the whole width.
  std::size_t expected_offset = 0;
  for (const auto& span : spans) {
    EXPECT_EQ(span.offset, expected_offset);
    expected_offset += span.width;
  }
  EXPECT_EQ(expected_offset, enc.total_width());
}

TEST(EncoderTest, EncodeShapesAndOneHotValidity) {
  Rng rng(2);
  Table t = mixed_table(500, rng);
  TableEncoder enc;
  enc.fit(t, EncoderOptions{}, rng);
  Tensor e = enc.encode(t, rng);
  EXPECT_EQ(e.rows(), 500u);
  EXPECT_EQ(e.cols(), enc.total_width());
  // Every softmax span row must be exactly one-hot; every alpha in [-1,1].
  for (const auto& span : enc.spans()) {
    for (std::size_t r = 0; r < e.rows(); ++r) {
      if (span.activation == Activation::kSoftmax) {
        float total = 0;
        for (std::size_t k = 0; k < span.width; ++k) total += e(r, span.offset + k);
        EXPECT_FLOAT_EQ(total, 1.0f);
      } else {
        EXPECT_GE(e(r, span.offset), -1.0f);
        EXPECT_LE(e(r, span.offset), 1.0f);
      }
    }
  }
}

TEST(EncoderTest, RoundTripCategoricalExact) {
  Rng rng(3);
  Table t = mixed_table(400, rng);
  TableEncoder enc;
  enc.fit(t, EncoderOptions{}, rng);
  Table back = enc.decode(enc.encode(t, rng));
  for (std::size_t r = 0; r < t.n_rows(); ++r) {
    EXPECT_DOUBLE_EQ(back.cell(r, 1), t.cell(r, 1));
  }
}

TEST(EncoderTest, RoundTripContinuousApproximate) {
  Rng rng(4);
  Table t = mixed_table(2000, rng);
  TableEncoder enc;
  enc.fit(t, EncoderOptions{}, rng);
  Table back = enc.decode(enc.encode(t, rng));
  // Mode-specific normalization is lossy only through alpha clipping; the
  // error should be small relative to column scale.
  double worst = 0.0;
  for (std::size_t r = 0; r < t.n_rows(); ++r) {
    worst = std::max(worst, std::abs(back.cell(r, 0) - t.cell(r, 0)));
  }
  EXPECT_LT(worst, 2.0);  // column spans roughly [-6, 9]
}

TEST(EncoderTest, RoundTripMixedSpecialValuesExact) {
  Rng rng(5);
  Table t = mixed_table(800, rng);
  TableEncoder enc;
  enc.fit(t, EncoderOptions{}, rng);
  Table back = enc.decode(enc.encode(t, rng));
  for (std::size_t r = 0; r < t.n_rows(); ++r) {
    if (t.cell(r, 2) == 0.0) {
      EXPECT_DOUBLE_EQ(back.cell(r, 2), 0.0) << "special value lost at row " << r;
    } else {
      EXPECT_NEAR(back.cell(r, 2), t.cell(r, 2), 15.0);
    }
  }
}

TEST(EncoderTest, DiscreteSpansOnlyCategorical) {
  Rng rng(6);
  Table t = mixed_table(300, rng);
  TableEncoder enc;
  enc.fit(t, EncoderOptions{}, rng);
  ASSERT_EQ(enc.discrete_spans().size(), 1u);
  EXPECT_EQ(enc.discrete_spans()[0].source_column, 1u);
  EXPECT_EQ(enc.discrete_spans()[0].cardinality, 3u);
  // Frequencies reflect the data.
  std::size_t total = 0;
  for (auto f : enc.discrete_spans()[0].frequencies) total += f;
  EXPECT_EQ(total, 300u);
}

TEST(EncoderTest, SchemaMismatchThrows) {
  Rng rng(7);
  Table t = mixed_table(100, rng);
  TableEncoder enc;
  enc.fit(t, EncoderOptions{}, rng);
  Table other({{"x", ColumnType::kContinuous, {}, {}}});
  other.append_row({1.0});
  EXPECT_THROW(enc.encode(other, rng), std::invalid_argument);
  EXPECT_THROW(enc.decode(Tensor(3, enc.total_width() + 1)), std::invalid_argument);
  EXPECT_THROW(enc.fit(Table({{"y", ColumnType::kContinuous, {}, {}}}), EncoderOptions{}, rng),
               std::invalid_argument);
}

TEST(EncoderTest, BenchmarkDatasetsRoundTrip) {
  // Property-style check over all five benchmark datasets: encode/decode
  // keeps categorical columns exact and continuous columns within a modest
  // fraction of the column scale.
  Rng rng(8);
  for (const auto& name : data::dataset_names()) {
    Table t = data::make_dataset(name, 600, rng);
    TableEncoder enc;
    enc.fit(t, EncoderOptions{}, rng);
    Table back = enc.decode(enc.encode(t, rng));
    for (std::size_t c = 0; c < t.n_cols(); ++c) {
      if (t.spec(c).type == ColumnType::kCategorical) {
        for (std::size_t r = 0; r < t.n_rows(); ++r) {
          ASSERT_DOUBLE_EQ(back.cell(r, c), t.cell(r, c))
              << name << " col " << t.spec(c).name;
        }
      } else {
        double scale = 1e-9, err = 0.0;
        for (std::size_t r = 0; r < t.n_rows(); ++r) {
          scale = std::max(scale, std::abs(t.cell(r, c)));
          err = std::max(err, std::abs(back.cell(r, c) - t.cell(r, c)));
        }
        EXPECT_LT(err / scale, 0.55) << name << " col " << t.spec(c).name;
      }
    }
  }
}

}  // namespace
}  // namespace gtv::encode
