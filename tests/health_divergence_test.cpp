// End-to-end tests of the training-health layer on a real GtvTrainer:
// disarmed mode stays allocation-free and byte-identical, a seed-config run
// stays alert-free, a deliberately destabilized critic LR turns fatal
// within 10 rounds (the deterministic divergence scenario), abort-on-fatal
// escalates, and the on_alert callback fires. Also writes the
// `health_divergence_alerts.jsonl` artefact scripts/check.sh validates.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "core/gtv.h"
#include "data/datasets.h"
#include "obs/health.h"
#include "obs/json.h"

namespace gtv::core {
namespace {

using data::ColumnType;
using data::Table;

// Restores the health switch and drains the process-wide HealthLog.
class HealthGuard {
 public:
  HealthGuard() : was_(obs::health_enabled()) { obs::HealthLog::instance().reset(); }
  ~HealthGuard() {
    obs::set_health_enabled(was_);
    obs::HealthLog::instance().reset();
  }

 private:
  bool was_;
};

Table two_party_source(std::size_t rows, Rng& rng) {
  Table t({{"income", ColumnType::kContinuous, {}, {}},
           {"gender", ColumnType::kCategorical, {"M", "F"}, {}},
           {"spend", ColumnType::kContinuous, {}, {}},
           {"loan", ColumnType::kCategorical, {"N", "Y"}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    const double z = rng.normal();
    const auto gender = static_cast<double>(rng.uniform() < 0.5 + 0.3 * std::tanh(z));
    const auto loan = static_cast<double>(rng.uniform() < 0.3 + 0.3 * std::tanh(z));
    t.append_row({50 + 12 * z + rng.normal(0, 2), gender, 20 + 6 * z + rng.normal(0, 2), loan});
  }
  return t;
}

GtvOptions small_options() {
  GtvOptions options;
  options.gan.noise_dim = 8;
  options.gan.hidden = 16;
  options.generator_hidden = 16;
  options.gan.batch_size = 24;
  options.gan.d_steps_per_round = 2;
  return options;
}

std::vector<Table> split_two(const Table& t) {
  return data::vertical_split(t, {{0, 1}, {2, 3}});
}

TEST(HealthDisarmedTest, NoCollectionWithoutGtvHealth) {
  HealthGuard guard;
  obs::set_health_enabled(false);
  Rng rng(2);
  auto shards = split_two(two_party_source(80, rng));
  GtvTrainer trainer(std::move(shards), small_options(), 5);
  trainer.train(3);

  ASSERT_EQ(trainer.telemetry().size(), 3u);
  for (const auto& t : trainer.telemetry()) {
    EXPECT_FALSE(t.health.collected);
    EXPECT_TRUE(t.health.modules.empty());
    EXPECT_TRUE(t.health.probes.empty());
    EXPECT_TRUE(t.health.alerts.empty());
    // Disarmed telemetry JSON omits the health block entirely.
    EXPECT_EQ(t.to_json().find("\"health\""), std::string::npos);
  }
  EXPECT_TRUE(trainer.health_alerts().empty());
  EXPECT_EQ(obs::HealthLog::instance().total(), 0u);
}

TEST(HealthDivergenceTest, SeedConfigStaysSilentOverTenRounds) {
  HealthGuard guard;
  obs::set_health_enabled(true);
  Rng rng(2);
  auto shards = split_two(two_party_source(80, rng));
  GtvOptions options = small_options();
  options.health.probe_interval = 5;  // two probes inside the horizon
  GtvTrainer trainer(std::move(shards), options, 5);
  trainer.train(10);

  ASSERT_EQ(trainer.telemetry().size(), 10u);
  for (const auto& t : trainer.telemetry()) {
    EXPECT_TRUE(t.health.collected);
    // 2 parties x (G, D) on the server + per client: 2 + 2*2 = 6 modules.
    EXPECT_EQ(t.health.modules.size(), 6u);
    EXPECT_TRUE(t.health.alerts.empty())
        << "round " << t.round << ": " << t.health.alerts.front().rule;
  }
  // Probe rounds carried per-column comparisons for all 4 joined columns.
  EXPECT_EQ(trainer.telemetry()[4].health.probes.size(), 4u);
  EXPECT_EQ(trainer.telemetry()[9].health.probes.size(), 4u);
  EXPECT_TRUE(trainer.telemetry()[0].health.probes.empty());
  EXPECT_TRUE(trainer.health_alerts().empty());
  EXPECT_EQ(obs::HealthLog::instance().total(), 0u);
  // Armed telemetry JSON carries the block and parses back.
  const obs::json::Value v = obs::json::parse(trainer.telemetry()[4].to_json());
  EXPECT_EQ(v.at("health").at("modules").array.size(), 6u);
}

TEST(HealthDivergenceTest, ProbeDoesNotPerturbTraining) {
  // Identical seeds with and without probes must produce identical loss
  // trajectories: the probe snapshots/restores every RNG stream it touches.
  HealthGuard guard;
  obs::set_health_enabled(true);
  Rng rng(7);
  const Table source = two_party_source(80, rng);

  GtvOptions with_probe = small_options();
  with_probe.health.probe_interval = 2;
  GtvTrainer a(split_two(source), with_probe, 11);
  a.train(6);

  GtvOptions no_probe = small_options();
  no_probe.health.probe_interval = 0;
  GtvTrainer b(split_two(source), no_probe, 11);
  b.train(6);

  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_FLOAT_EQ(a.history()[r].d_loss, b.history()[r].d_loss) << "round " << r;
    EXPECT_FLOAT_EQ(a.history()[r].g_loss, b.history()[r].g_loss) << "round " << r;
  }
}

// The deterministic divergence scenario: an absurd critic learning rate
// destabilizes WGAN-GP within a few rounds. The run must emit at least one
// fatal alert (critic_grad_norm / nonfinite_grad / nonfinite_loss) within
// 10 rounds; its alerts also become the JSONL artefact check.sh validates.
TEST(HealthDivergenceTest, DestabilizedCriticTurnsFatalWithinTenRounds) {
  HealthGuard guard;
  obs::set_health_enabled(true);
  Rng rng(2);
  auto shards = split_two(two_party_source(80, rng));
  GtvOptions options = small_options();
  options.gan.adam.lr = 100.0f;  // absurd LR shared by G and D optimizers
  GtvTrainer trainer(std::move(shards), options, 5);

  std::size_t callback_alerts = 0;
  trainer.set_on_alert([&](const obs::HealthAlert&) { ++callback_alerts; });
  bool fatal = false;
  std::size_t fatal_round = 0;
  for (std::size_t r = 0; r < 10 && !fatal; ++r) {
    trainer.train_round();
    if (trainer.telemetry().back().health.has_fatal()) {
      fatal = true;
      fatal_round = r;
    }
  }
  ASSERT_TRUE(fatal) << "destabilized run stayed healthy for 10 rounds";
  EXPECT_LT(fatal_round, 10u);
  EXPECT_GT(callback_alerts, 0u);

  const auto alerts = trainer.health_alerts();
  bool diverged = false;
  for (const auto& a : alerts) {
    if (a.rule == "critic_grad_norm" || a.rule == "nonfinite_grad" ||
        a.rule == "nonfinite_loss") {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);

  // Artefact for scripts/check.sh (ctest runs in build/tests): one alert
  // object per line, the HealthLog JSONL shape.
  std::ofstream out("health_divergence_alerts.jsonl");
  ASSERT_TRUE(out.good());
  out << obs::HealthLog::instance().alerts_jsonl();
}

TEST(HealthDivergenceTest, AbortOnFatalThrowsAfterRecording) {
  HealthGuard guard;
  obs::set_health_enabled(true);
  Rng rng(2);
  auto shards = split_two(two_party_source(80, rng));
  GtvOptions options = small_options();
  options.gan.adam.lr = 100.0f;
  options.health.abort_on_fatal = true;
  GtvTrainer trainer(std::move(shards), options, 5);

  bool thrown = false;
  obs::HealthAlert caught;
  for (std::size_t r = 0; r < 10 && !thrown; ++r) {
    try {
      trainer.train_round();
    } catch (const FatalHealthError& e) {
      thrown = true;
      caught = e.alert();
    }
  }
  ASSERT_TRUE(thrown) << "abort_on_fatal never fired";
  EXPECT_EQ(caught.severity, obs::Severity::kFatal);
  // Bookkeeping completed before the throw: the fatal round is recorded.
  ASSERT_FALSE(trainer.telemetry().empty());
  EXPECT_TRUE(trainer.telemetry().back().health.has_fatal());
  EXPECT_EQ(trainer.telemetry().size(), trainer.history().size());
}

}  // namespace
}  // namespace gtv::core
