#include "psi/psi.h"

#include <gtest/gtest.h>

namespace gtv::psi {
namespace {

using data::ColumnType;
using data::Table;

Table one_col_table(const std::vector<double>& values) {
  Table t({{"v", ColumnType::kContinuous, {}, {}}});
  for (double v : values) t.append_row({v});
  return t;
}

TEST(PsiTest, SaltedHashDeterministicAndSaltSensitive) {
  EXPECT_EQ(salted_hash("user42", 7), salted_hash("user42", 7));
  EXPECT_NE(salted_hash("user42", 7), salted_hash("user42", 8));
  EXPECT_NE(salted_hash("user42", 7), salted_hash("user43", 7));
}

TEST(PsiTest, HashIntersectionBasics) {
  Party a{{"u1", "u2", "u3"}, one_col_table({1, 2, 3})};
  Party b{{"u2", "u3", "u4"}, one_col_table({20, 30, 40})};
  auto common = hash_intersection({a, b}, 99);
  EXPECT_EQ(common.size(), 2u);
  // Result is sorted.
  EXPECT_TRUE(std::is_sorted(common.begin(), common.end()));
}

TEST(PsiTest, DuplicateIdsRejected) {
  Party a{{"u1", "u1"}, one_col_table({1, 2})};
  EXPECT_THROW(hash_intersection({a}, 1), std::invalid_argument);
}

TEST(PsiTest, AlignmentKeepsRowsConsistentAcrossParties) {
  // Parties hold the same users in different orders with some non-overlap.
  Party a{{"u1", "u2", "u3", "u5"}, one_col_table({10, 20, 30, 50})};
  Party b{{"u3", "u5", "u2", "u9"}, one_col_table({33, 55, 22, 99})};
  auto result = align_by_intersection({a, b}, 1234);
  EXPECT_EQ(result.matched_rows, 3u);  // u2, u3, u5
  ASSERT_EQ(result.tables.size(), 2u);
  ASSERT_EQ(result.tables[0].n_rows(), 3u);
  // Row-wise alignment: a's value/10 must match b's value/11 per user.
  for (std::size_t r = 0; r < 3; ++r) {
    const double ua = result.tables[0].cell(r, 0) / 10.0;  // 2, 3 or 5
    const double ub = result.tables[1].cell(r, 0) / 11.0;
    EXPECT_DOUBLE_EQ(ua, ub);
  }
}

TEST(PsiTest, NonMembersExcluded) {
  Party a{{"x", "y"}, one_col_table({1, 2})};
  Party b{{"y", "z"}, one_col_table({4, 5})};
  auto result = align_by_intersection({a, b}, 5);
  EXPECT_EQ(result.matched_rows, 1u);
  EXPECT_DOUBLE_EQ(result.tables[0].cell(0, 0), 2.0);  // y in a
  EXPECT_DOUBLE_EQ(result.tables[1].cell(0, 0), 4.0);  // y in b
}

TEST(PsiTest, EmptyIntersectionThrows) {
  Party a{{"a"}, one_col_table({1})};
  Party b{{"b"}, one_col_table({2})};
  EXPECT_THROW(align_by_intersection({a, b}, 5), std::invalid_argument);
}

TEST(PsiTest, RowMismatchThrows) {
  Party a{{"a", "b"}, one_col_table({1})};
  EXPECT_THROW(align_by_intersection({a}, 5), std::invalid_argument);
}

TEST(PsiTest, ThreePartyAlignment) {
  Party a{{"u1", "u2", "u3"}, one_col_table({1, 2, 3})};
  Party b{{"u3", "u1", "u7"}, one_col_table({3, 1, 7})};
  Party c{{"u2", "u3", "u1", "u8"}, one_col_table({2, 3, 1, 8})};
  auto result = align_by_intersection({a, b, c}, 42);
  EXPECT_EQ(result.matched_rows, 2u);  // u1, u3
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(result.tables[0].cell(r, 0), result.tables[2].cell(r, 0));
    EXPECT_DOUBLE_EQ(result.tables[0].cell(r, 0), result.tables[1].cell(r, 0));
  }
}

TEST(PsiTest, CanonicalOrderIndependentOfPartyOrder) {
  Party a{{"u1", "u2", "u3"}, one_col_table({1, 2, 3})};
  Party b{{"u3", "u2", "u1"}, one_col_table({3, 2, 1})};
  auto ab = align_by_intersection({a, b}, 9);
  auto ba = align_by_intersection({b, a}, 9);
  for (std::size_t r = 0; r < ab.matched_rows; ++r) {
    EXPECT_DOUBLE_EQ(ab.tables[0].cell(r, 0), ba.tables[1].cell(r, 0));
  }
}

}  // namespace
}  // namespace gtv::psi
