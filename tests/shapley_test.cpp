#include "eval/shapley.h"

#include <gtest/gtest.h>

namespace gtv::eval {
namespace {

using data::ColumnType;
using data::Table;

// 'signal' fully determines the target; 'noise' is irrelevant.
Table signal_noise_table(std::size_t rows, Rng& rng) {
  Table t({{"signal", ColumnType::kContinuous, {}, {}},
           {"noise", ColumnType::kContinuous, {}, {}},
           {"cat_noise", ColumnType::kCategorical, {"a", "b"}, {}},
           {"y", ColumnType::kCategorical, {"neg", "pos"}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    const double s = rng.normal();
    t.append_row({s, rng.normal(), static_cast<double>(rng.uniform_index(2)),
                  s > 0.0 ? 1.0 : 0.0});
  }
  return t;
}

TEST(ShapleyTest, SignalColumnDominates) {
  Rng rng(1);
  Table t = signal_noise_table(600, rng);
  ShapleyOptions options;
  options.samples = 150;
  auto importance = shapley_importance(t, 3, options, rng);
  ASSERT_EQ(importance.size(), 4u);
  EXPECT_DOUBLE_EQ(importance[3], 0.0);  // target excluded
  EXPECT_GT(importance[0], importance[1] * 2.0);
  EXPECT_GT(importance[0], importance[2] * 2.0);
}

TEST(ShapleyTest, RankingPutsSignalFirst) {
  Rng rng(2);
  Table t = signal_noise_table(600, rng);
  ShapleyOptions options;
  options.samples = 150;
  auto ranked = rank_features_by_importance(t, 3, options, rng);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], 0u);
  // Target never appears.
  for (std::size_t c : ranked) EXPECT_NE(c, 3u);
}

TEST(ShapleyTest, SplitByImportanceFractions) {
  std::vector<std::size_t> ranked = {7, 3, 5, 1, 9, 2, 8, 4, 6, 0};
  auto [top10, rest90] = split_by_importance(ranked, 0.1);
  EXPECT_EQ(top10, (std::vector<std::size_t>{7}));
  EXPECT_EQ(rest90.size(), 9u);
  auto [top50, rest50] = split_by_importance(ranked, 0.5);
  EXPECT_EQ(top50.size(), 5u);
  EXPECT_EQ(top50[0], 7u);
  auto [top90, rest10] = split_by_importance(ranked, 0.9);
  EXPECT_EQ(top90.size(), 9u);
  EXPECT_EQ(rest10, (std::vector<std::size_t>{0}));
  // Tiny lists still give a non-empty head.
  auto [head, tail] = split_by_importance({42}, 0.1);
  EXPECT_EQ(head, (std::vector<std::size_t>{42}));
  EXPECT_TRUE(tail.empty());
}

}  // namespace
}  // namespace gtv::eval
