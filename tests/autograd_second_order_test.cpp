// Second-order gradient tests: these validate the property the WGAN-GP
// gradient penalty depends on — grad(..., create_graph=true) returns
// differentiable Vars whose own gradients are correct.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/autograd.h"

namespace gtv::ag {
namespace {

TEST(SecondOrderTest, SquareTwice) {
  // y = x^3; dy/dx = 3x^2; d2y/dx2 = 6x.
  Var x(Tensor::of({{2.0f}}), true);
  Var y = mul(mul(x, x), x);
  Var g1 = grad(y, {x}, /*create_graph=*/true)[0];
  EXPECT_NEAR(g1.value()(0, 0), 12.0f, 1e-4f);
  Var g2 = grad(sum_all(g1), {x})[0];
  EXPECT_NEAR(g2.value()(0, 0), 12.0f, 1e-4f);
}

TEST(SecondOrderTest, ExpHigherOrder) {
  // All derivatives of exp are exp.
  Var x(Tensor::of({{1.2f}}), true);
  Var y = exp(x);
  Var g1 = grad(y, {x}, true)[0];
  Var g2 = grad(sum_all(g1), {x}, true)[0];
  Var g3 = grad(sum_all(g2), {x})[0];
  const float e = std::exp(1.2f);
  EXPECT_NEAR(g1.value()(0, 0), e, 1e-3f);
  EXPECT_NEAR(g2.value()(0, 0), e, 1e-3f);
  EXPECT_NEAR(g3.value()(0, 0), e, 1e-3f);
}

TEST(SecondOrderTest, GradOfGradThroughMatmul) {
  // f(x) = sum((xW)^2); grad_x = 2 xW W^T; d/dW of sum(grad_x) is linear in x.
  Tensor w0 = Tensor::of({{1, 2}, {3, -1}});
  Tensor x0 = Tensor::of({{0.5, -1.0}});
  Var w(w0, true);
  Var x(x0, true);
  Var y = sum_all(square(matmul(x, w)));
  Var gx = grad(y, {x}, true)[0];
  // Analytic: gx = 2 (x w) w^T.
  Tensor expect_gx = x0.matmul(w0).mul_scalar(2.0f).matmul(w0.transpose());
  EXPECT_LT(gx.value().max_abs_diff(expect_gx), 1e-4f);

  // Differentiate a scalar of gx w.r.t. w and verify numerically.
  Var scalar_of_gx = sum_all(square(gx));
  Var gw = grad(scalar_of_gx, {w})[0];
  const float h = 1e-3f;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      auto eval = [&](float delta) {
        NoGradGuard no_grad_outer;
        Tensor wp = w0;
        wp(r, c) += delta;
        // Recompute gx analytically (closed form avoids nested autograd here).
        Tensor g = x0.matmul(wp).mul_scalar(2.0f).matmul(wp.transpose());
        float acc = 0.0f;
        for (std::size_t i = 0; i < g.size(); ++i) acc += g.data()[i] * g.data()[i];
        return acc;
      };
      const float numeric = (eval(h) - eval(-h)) / (2.0f * h);
      EXPECT_NEAR(gw.value()(r, c), numeric, 5e-2f) << "w(" << r << "," << c << ")";
    }
  }
}

TEST(SecondOrderTest, GradientPenaltyShape) {
  // Mirrors the WGAN-GP computation: D is a 2-layer MLP, x_hat requires grad,
  // penalty = mean((||dD/dx_hat||_2 - 1)^2), differentiated w.r.t. weights.
  Rng rng(21);
  Tensor w1_0 = Tensor::normal(4, 8, 0.0f, 0.5f, rng);
  Tensor w2_0 = Tensor::normal(8, 1, 0.0f, 0.5f, rng);
  Var w1(w1_0, true);
  Var w2(w2_0, true);
  Var x_hat(Tensor::normal(6, 4, 0.0f, 1.0f, rng), true);

  auto penalty_value = [&](const Tensor& w1_t, const Tensor& w2_t) {
    // Closed-form gradient of D(x) = leaky(x W1) W2 w.r.t. x, per row:
    // dD/dx = (mask .* (1 W2-chain)) ... easier: use autograd itself with
    // fresh leaves; correctness of first-order grad is covered elsewhere.
    Var a(w1_t, true);
    Var b(w2_t, true);
    Var xh(x_hat.value(), true);
    Var d = matmul(leaky_relu(matmul(xh, a), 0.2f), b);
    Var gx = grad(sum_all(d), {xh}, /*create_graph=*/false)[0];
    Tensor norms = gx.value().row_norms();
    float acc = 0.0f;
    for (std::size_t r = 0; r < norms.rows(); ++r) {
      const float t = norms(r, 0) - 1.0f;
      acc += t * t;
    }
    return acc / static_cast<float>(norms.rows());
  };

  // Autograd penalty with create_graph, then grad w.r.t. weights.
  Var d = matmul(leaky_relu(matmul(x_hat, w1), 0.2f), w2);
  Var gx = grad(sum_all(d), {x_hat}, /*create_graph=*/true)[0];
  Var norms = row_norms(gx);
  Var penalty = mean_all(square(add_scalar(norms, -1.0f)));
  EXPECT_NEAR(penalty.value()(0, 0), penalty_value(w1_0, w2_0), 1e-4f);

  auto gws = grad(penalty, {w1, w2});
  // Numerical check on a few weight entries.
  const float h = 1e-2f;
  for (auto [r, c] : {std::pair<std::size_t, std::size_t>{0, 0}, {2, 5}, {3, 7}}) {
    Tensor plus = w1_0, minus = w1_0;
    plus(r, c) += h;
    minus(r, c) -= h;
    const float numeric = (penalty_value(plus, w2_0) - penalty_value(minus, w2_0)) / (2 * h);
    EXPECT_NEAR(gws[0].value()(r, c), numeric, 3e-2f) << "w1(" << r << "," << c << ")";
  }
  for (std::size_t r : {0u, 4u, 7u}) {
    Tensor plus = w2_0, minus = w2_0;
    plus(r, 0) += h;
    minus(r, 0) -= h;
    const float numeric = (penalty_value(w1_0, plus) - penalty_value(w1_0, minus)) / (2 * h);
    EXPECT_NEAR(gws[1].value()(r, 0), numeric, 3e-2f) << "w2(" << r << ",0)";
  }
}

TEST(SecondOrderTest, CreateGraphFalseYieldsConstants) {
  Var x(Tensor::of({{2.0f}}), true);
  Var y = mul(mul(x, x), x);
  Var g1 = grad(y, {x}, /*create_graph=*/false)[0];
  EXPECT_FALSE(g1.requires_grad());
}

TEST(SecondOrderTest, MixedPartials) {
  // f(a, b) = sum(a*a*b); df/da = 2ab; d/db of sum(df/da) = 2a.
  Var a(Tensor::of({{3.0f}}), true);
  Var b(Tensor::of({{5.0f}}), true);
  Var f = mul(mul(a, a), b);
  Var ga = grad(f, {a}, true)[0];
  EXPECT_NEAR(ga.value()(0, 0), 30.0f, 1e-4f);
  Var gab = grad(sum_all(ga), {b})[0];
  EXPECT_NEAR(gab.value()(0, 0), 6.0f, 1e-4f);
}

TEST(SecondOrderTest, ThirdOrder) {
  // y = x^4: y''' = 24x.
  Var x(Tensor::of({{1.5f}}), true);
  Var y = mul(mul(x, x), mul(x, x));
  Var g1 = grad(y, {x}, true)[0];
  Var g2 = grad(sum_all(g1), {x}, true)[0];
  Var g3 = grad(sum_all(g2), {x})[0];
  EXPECT_NEAR(g3.value()(0, 0), 24.0f * 1.5f, 1e-3f);
}

}  // namespace
}  // namespace gtv::ag
