file(REMOVE_RECURSE
  "CMakeFiles/gtv_integration_test.dir/gtv_integration_test.cpp.o"
  "CMakeFiles/gtv_integration_test.dir/gtv_integration_test.cpp.o.d"
  "gtv_integration_test"
  "gtv_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
