# Empty compiler generated dependencies file for gtv_integration_test.
# This may be replaced when dependencies are built.
