file(REMOVE_RECURSE
  "CMakeFiles/mia_test.dir/mia_test.cpp.o"
  "CMakeFiles/mia_test.dir/mia_test.cpp.o.d"
  "mia_test"
  "mia_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
