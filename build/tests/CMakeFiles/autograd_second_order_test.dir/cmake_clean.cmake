file(REMOVE_RECURSE
  "CMakeFiles/autograd_second_order_test.dir/autograd_second_order_test.cpp.o"
  "CMakeFiles/autograd_second_order_test.dir/autograd_second_order_test.cpp.o.d"
  "autograd_second_order_test"
  "autograd_second_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_second_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
