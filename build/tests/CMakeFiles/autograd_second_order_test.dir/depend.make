# Empty dependencies file for autograd_second_order_test.
# This may be replaced when dependencies are built.
