
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/classifiers_test.cpp" "tests/CMakeFiles/classifiers_test.dir/classifiers_test.cpp.o" "gcc" "tests/CMakeFiles/classifiers_test.dir/classifiers_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/gtv_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gtv_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gtv_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
