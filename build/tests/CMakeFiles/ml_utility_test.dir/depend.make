# Empty dependencies file for ml_utility_test.
# This may be replaced when dependencies are built.
