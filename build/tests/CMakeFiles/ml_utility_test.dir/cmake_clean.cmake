file(REMOVE_RECURSE
  "CMakeFiles/ml_utility_test.dir/ml_utility_test.cpp.o"
  "CMakeFiles/ml_utility_test.dir/ml_utility_test.cpp.o.d"
  "ml_utility_test"
  "ml_utility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_utility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
