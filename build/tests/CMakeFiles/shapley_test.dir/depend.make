# Empty dependencies file for shapley_test.
# This may be replaced when dependencies are built.
