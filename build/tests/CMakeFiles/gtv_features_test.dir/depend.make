# Empty dependencies file for gtv_features_test.
# This may be replaced when dependencies are built.
