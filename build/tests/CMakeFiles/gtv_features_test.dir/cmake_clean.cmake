file(REMOVE_RECURSE
  "CMakeFiles/gtv_features_test.dir/gtv_features_test.cpp.o"
  "CMakeFiles/gtv_features_test.dir/gtv_features_test.cpp.o.d"
  "gtv_features_test"
  "gtv_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
