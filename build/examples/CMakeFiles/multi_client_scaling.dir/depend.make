# Empty dependencies file for multi_client_scaling.
# This may be replaced when dependencies are built.
