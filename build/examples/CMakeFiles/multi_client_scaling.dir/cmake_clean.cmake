file(REMOVE_RECURSE
  "CMakeFiles/multi_client_scaling.dir/multi_client_scaling.cpp.o"
  "CMakeFiles/multi_client_scaling.dir/multi_client_scaling.cpp.o.d"
  "multi_client_scaling"
  "multi_client_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_client_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
