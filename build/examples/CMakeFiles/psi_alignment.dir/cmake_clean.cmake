file(REMOVE_RECURSE
  "CMakeFiles/psi_alignment.dir/psi_alignment.cpp.o"
  "CMakeFiles/psi_alignment.dir/psi_alignment.cpp.o.d"
  "psi_alignment"
  "psi_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
