# Empty dependencies file for psi_alignment.
# This may be replaced when dependencies are built.
