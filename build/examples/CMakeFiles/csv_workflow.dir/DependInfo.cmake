
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/csv_workflow.cpp" "examples/CMakeFiles/csv_workflow.dir/csv_workflow.cpp.o" "gcc" "examples/CMakeFiles/csv_workflow.dir/csv_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gtv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/gtv_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gtv_data.dir/DependInfo.cmake"
  "/root/repo/build/src/gan/CMakeFiles/gtv_gan.dir/DependInfo.cmake"
  "/root/repo/build/src/psi/CMakeFiles/gtv_psi.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gtv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/gtv_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/gtv_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gtv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gtv_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
