# Empty compiler generated dependencies file for bank_ecommerce.
# This may be replaced when dependencies are built.
