file(REMOVE_RECURSE
  "CMakeFiles/bank_ecommerce.dir/bank_ecommerce.cpp.o"
  "CMakeFiles/bank_ecommerce.dir/bank_ecommerce.cpp.o.d"
  "bank_ecommerce"
  "bank_ecommerce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_ecommerce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
