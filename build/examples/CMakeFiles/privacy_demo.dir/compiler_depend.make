# Empty compiler generated dependencies file for privacy_demo.
# This may be replaced when dependencies are built.
