
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attack.cpp" "src/core/CMakeFiles/gtv_core.dir/attack.cpp.o" "gcc" "src/core/CMakeFiles/gtv_core.dir/attack.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/gtv_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/gtv_core.dir/client.cpp.o.d"
  "/root/repo/src/core/gtv.cpp" "src/core/CMakeFiles/gtv_core.dir/gtv.cpp.o" "gcc" "src/core/CMakeFiles/gtv_core.dir/gtv.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/gtv_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/gtv_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/gtv_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/gtv_core.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gan/CMakeFiles/gtv_gan.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gtv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gtv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/gtv_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/gtv_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gtv_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gtv_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
