file(REMOVE_RECURSE
  "libgtv_core.a"
)
