file(REMOVE_RECURSE
  "CMakeFiles/gtv_core.dir/attack.cpp.o"
  "CMakeFiles/gtv_core.dir/attack.cpp.o.d"
  "CMakeFiles/gtv_core.dir/client.cpp.o"
  "CMakeFiles/gtv_core.dir/client.cpp.o.d"
  "CMakeFiles/gtv_core.dir/gtv.cpp.o"
  "CMakeFiles/gtv_core.dir/gtv.cpp.o.d"
  "CMakeFiles/gtv_core.dir/partition.cpp.o"
  "CMakeFiles/gtv_core.dir/partition.cpp.o.d"
  "CMakeFiles/gtv_core.dir/server.cpp.o"
  "CMakeFiles/gtv_core.dir/server.cpp.o.d"
  "libgtv_core.a"
  "libgtv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
