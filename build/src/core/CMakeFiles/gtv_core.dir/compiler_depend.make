# Empty compiler generated dependencies file for gtv_core.
# This may be replaced when dependencies are built.
