file(REMOVE_RECURSE
  "libgtv_nn.a"
)
