# Empty compiler generated dependencies file for gtv_nn.
# This may be replaced when dependencies are built.
