file(REMOVE_RECURSE
  "CMakeFiles/gtv_nn.dir/adam.cpp.o"
  "CMakeFiles/gtv_nn.dir/adam.cpp.o.d"
  "CMakeFiles/gtv_nn.dir/module.cpp.o"
  "CMakeFiles/gtv_nn.dir/module.cpp.o.d"
  "CMakeFiles/gtv_nn.dir/serialize.cpp.o"
  "CMakeFiles/gtv_nn.dir/serialize.cpp.o.d"
  "libgtv_nn.a"
  "libgtv_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
