file(REMOVE_RECURSE
  "CMakeFiles/gtv_encode.dir/cond.cpp.o"
  "CMakeFiles/gtv_encode.dir/cond.cpp.o.d"
  "CMakeFiles/gtv_encode.dir/encoder.cpp.o"
  "CMakeFiles/gtv_encode.dir/encoder.cpp.o.d"
  "CMakeFiles/gtv_encode.dir/gmm.cpp.o"
  "CMakeFiles/gtv_encode.dir/gmm.cpp.o.d"
  "libgtv_encode.a"
  "libgtv_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
