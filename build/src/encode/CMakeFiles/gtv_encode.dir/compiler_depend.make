# Empty compiler generated dependencies file for gtv_encode.
# This may be replaced when dependencies are built.
