file(REMOVE_RECURSE
  "libgtv_encode.a"
)
