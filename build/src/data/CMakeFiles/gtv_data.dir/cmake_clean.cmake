file(REMOVE_RECURSE
  "CMakeFiles/gtv_data.dir/datasets.cpp.o"
  "CMakeFiles/gtv_data.dir/datasets.cpp.o.d"
  "CMakeFiles/gtv_data.dir/table.cpp.o"
  "CMakeFiles/gtv_data.dir/table.cpp.o.d"
  "libgtv_data.a"
  "libgtv_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
