# Empty compiler generated dependencies file for gtv_data.
# This may be replaced when dependencies are built.
