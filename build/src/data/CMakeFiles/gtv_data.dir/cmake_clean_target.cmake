file(REMOVE_RECURSE
  "libgtv_data.a"
)
