file(REMOVE_RECURSE
  "libgtv_psi.a"
)
