file(REMOVE_RECURSE
  "CMakeFiles/gtv_psi.dir/psi.cpp.o"
  "CMakeFiles/gtv_psi.dir/psi.cpp.o.d"
  "libgtv_psi.a"
  "libgtv_psi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_psi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
