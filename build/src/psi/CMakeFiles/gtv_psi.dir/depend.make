# Empty dependencies file for gtv_psi.
# This may be replaced when dependencies are built.
