file(REMOVE_RECURSE
  "CMakeFiles/gtv_autograd.dir/autograd.cpp.o"
  "CMakeFiles/gtv_autograd.dir/autograd.cpp.o.d"
  "libgtv_autograd.a"
  "libgtv_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
