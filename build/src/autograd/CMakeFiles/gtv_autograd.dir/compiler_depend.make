# Empty compiler generated dependencies file for gtv_autograd.
# This may be replaced when dependencies are built.
