file(REMOVE_RECURSE
  "libgtv_autograd.a"
)
