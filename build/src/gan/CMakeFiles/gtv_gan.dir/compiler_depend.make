# Empty compiler generated dependencies file for gtv_gan.
# This may be replaced when dependencies are built.
