file(REMOVE_RECURSE
  "libgtv_gan.a"
)
