file(REMOVE_RECURSE
  "CMakeFiles/gtv_gan.dir/ctabgan.cpp.o"
  "CMakeFiles/gtv_gan.dir/ctabgan.cpp.o.d"
  "CMakeFiles/gtv_gan.dir/losses.cpp.o"
  "CMakeFiles/gtv_gan.dir/losses.cpp.o.d"
  "libgtv_gan.a"
  "libgtv_gan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_gan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
