
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/classifiers.cpp" "src/eval/CMakeFiles/gtv_eval.dir/classifiers.cpp.o" "gcc" "src/eval/CMakeFiles/gtv_eval.dir/classifiers.cpp.o.d"
  "/root/repo/src/eval/features.cpp" "src/eval/CMakeFiles/gtv_eval.dir/features.cpp.o" "gcc" "src/eval/CMakeFiles/gtv_eval.dir/features.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/eval/CMakeFiles/gtv_eval.dir/metrics.cpp.o" "gcc" "src/eval/CMakeFiles/gtv_eval.dir/metrics.cpp.o.d"
  "/root/repo/src/eval/mia.cpp" "src/eval/CMakeFiles/gtv_eval.dir/mia.cpp.o" "gcc" "src/eval/CMakeFiles/gtv_eval.dir/mia.cpp.o.d"
  "/root/repo/src/eval/ml_utility.cpp" "src/eval/CMakeFiles/gtv_eval.dir/ml_utility.cpp.o" "gcc" "src/eval/CMakeFiles/gtv_eval.dir/ml_utility.cpp.o.d"
  "/root/repo/src/eval/shapley.cpp" "src/eval/CMakeFiles/gtv_eval.dir/shapley.cpp.o" "gcc" "src/eval/CMakeFiles/gtv_eval.dir/shapley.cpp.o.d"
  "/root/repo/src/eval/similarity.cpp" "src/eval/CMakeFiles/gtv_eval.dir/similarity.cpp.o" "gcc" "src/eval/CMakeFiles/gtv_eval.dir/similarity.cpp.o.d"
  "/root/repo/src/eval/tree.cpp" "src/eval/CMakeFiles/gtv_eval.dir/tree.cpp.o" "gcc" "src/eval/CMakeFiles/gtv_eval.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/gtv_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gtv_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
