file(REMOVE_RECURSE
  "CMakeFiles/gtv_eval.dir/classifiers.cpp.o"
  "CMakeFiles/gtv_eval.dir/classifiers.cpp.o.d"
  "CMakeFiles/gtv_eval.dir/features.cpp.o"
  "CMakeFiles/gtv_eval.dir/features.cpp.o.d"
  "CMakeFiles/gtv_eval.dir/metrics.cpp.o"
  "CMakeFiles/gtv_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/gtv_eval.dir/mia.cpp.o"
  "CMakeFiles/gtv_eval.dir/mia.cpp.o.d"
  "CMakeFiles/gtv_eval.dir/ml_utility.cpp.o"
  "CMakeFiles/gtv_eval.dir/ml_utility.cpp.o.d"
  "CMakeFiles/gtv_eval.dir/shapley.cpp.o"
  "CMakeFiles/gtv_eval.dir/shapley.cpp.o.d"
  "CMakeFiles/gtv_eval.dir/similarity.cpp.o"
  "CMakeFiles/gtv_eval.dir/similarity.cpp.o.d"
  "CMakeFiles/gtv_eval.dir/tree.cpp.o"
  "CMakeFiles/gtv_eval.dir/tree.cpp.o.d"
  "libgtv_eval.a"
  "libgtv_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
