file(REMOVE_RECURSE
  "libgtv_eval.a"
)
