# Empty dependencies file for gtv_eval.
# This may be replaced when dependencies are built.
