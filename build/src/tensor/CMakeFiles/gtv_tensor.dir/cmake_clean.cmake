file(REMOVE_RECURSE
  "CMakeFiles/gtv_tensor.dir/rng.cpp.o"
  "CMakeFiles/gtv_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/gtv_tensor.dir/tensor.cpp.o"
  "CMakeFiles/gtv_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/gtv_tensor.dir/thread_pool.cpp.o"
  "CMakeFiles/gtv_tensor.dir/thread_pool.cpp.o.d"
  "libgtv_tensor.a"
  "libgtv_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
