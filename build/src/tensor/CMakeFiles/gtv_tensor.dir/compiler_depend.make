# Empty compiler generated dependencies file for gtv_tensor.
# This may be replaced when dependencies are built.
