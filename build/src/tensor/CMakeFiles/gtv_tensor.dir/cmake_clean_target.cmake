file(REMOVE_RECURSE
  "libgtv_tensor.a"
)
