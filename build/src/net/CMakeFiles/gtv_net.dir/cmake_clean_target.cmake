file(REMOVE_RECURSE
  "libgtv_net.a"
)
