# Empty dependencies file for gtv_net.
# This may be replaced when dependencies are built.
