file(REMOVE_RECURSE
  "CMakeFiles/gtv_net.dir/wire.cpp.o"
  "CMakeFiles/gtv_net.dir/wire.cpp.o.d"
  "libgtv_net.a"
  "libgtv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
