file(REMOVE_RECURSE
  "CMakeFiles/comm_overhead.dir/comm_overhead.cpp.o"
  "CMakeFiles/comm_overhead.dir/comm_overhead.cpp.o.d"
  "comm_overhead"
  "comm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
