# Empty compiler generated dependencies file for comm_overhead.
# This may be replaced when dependencies are built.
