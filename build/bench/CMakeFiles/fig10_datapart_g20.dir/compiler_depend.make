# Empty compiler generated dependencies file for fig10_datapart_g20.
# This may be replaced when dependencies are built.
