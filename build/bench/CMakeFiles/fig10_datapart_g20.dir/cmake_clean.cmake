file(REMOVE_RECURSE
  "CMakeFiles/fig10_datapart_g20.dir/fig10_datapart_g20.cpp.o"
  "CMakeFiles/fig10_datapart_g20.dir/fig10_datapart_g20.cpp.o.d"
  "fig10_datapart_g20"
  "fig10_datapart_g20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_datapart_g20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
