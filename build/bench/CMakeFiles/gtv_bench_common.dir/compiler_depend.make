# Empty compiler generated dependencies file for gtv_bench_common.
# This may be replaced when dependencies are built.
