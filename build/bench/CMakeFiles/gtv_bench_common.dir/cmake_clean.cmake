file(REMOVE_RECURSE
  "CMakeFiles/gtv_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/gtv_bench_common.dir/bench_common.cpp.o.d"
  "CMakeFiles/gtv_bench_common.dir/experiments.cpp.o"
  "CMakeFiles/gtv_bench_common.dir/experiments.cpp.o.d"
  "libgtv_bench_common.a"
  "libgtv_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtv_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
