file(REMOVE_RECURSE
  "libgtv_bench_common.a"
)
