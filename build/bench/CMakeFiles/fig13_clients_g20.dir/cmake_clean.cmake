file(REMOVE_RECURSE
  "CMakeFiles/fig13_clients_g20.dir/fig13_clients_g20.cpp.o"
  "CMakeFiles/fig13_clients_g20.dir/fig13_clients_g20.cpp.o.d"
  "fig13_clients_g20"
  "fig13_clients_g20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_clients_g20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
