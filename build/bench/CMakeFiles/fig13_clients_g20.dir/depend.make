# Empty dependencies file for fig13_clients_g20.
# This may be replaced when dependencies are built.
