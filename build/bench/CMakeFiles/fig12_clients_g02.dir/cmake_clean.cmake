file(REMOVE_RECURSE
  "CMakeFiles/fig12_clients_g02.dir/fig12_clients_g02.cpp.o"
  "CMakeFiles/fig12_clients_g02.dir/fig12_clients_g02.cpp.o.d"
  "fig12_clients_g02"
  "fig12_clients_g02.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_clients_g02.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
