# Empty compiler generated dependencies file for fig12_clients_g02.
# This may be replaced when dependencies are built.
