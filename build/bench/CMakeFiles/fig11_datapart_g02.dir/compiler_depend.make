# Empty compiler generated dependencies file for fig11_datapart_g02.
# This may be replaced when dependencies are built.
