file(REMOVE_RECURSE
  "CMakeFiles/fig11_datapart_g02.dir/fig11_datapart_g02.cpp.o"
  "CMakeFiles/fig11_datapart_g02.dir/fig11_datapart_g02.cpp.o.d"
  "fig11_datapart_g02"
  "fig11_datapart_g02.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_datapart_g02.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
