# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_datapart_g02.
