file(REMOVE_RECURSE
  "CMakeFiles/fig56_reconstruction.dir/fig56_reconstruction.cpp.o"
  "CMakeFiles/fig56_reconstruction.dir/fig56_reconstruction.cpp.o.d"
  "fig56_reconstruction"
  "fig56_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig56_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
