# Empty dependencies file for fig56_reconstruction.
# This may be replaced when dependencies are built.
