# Empty compiler generated dependencies file for fig8_partition.
# This may be replaced when dependencies are built.
