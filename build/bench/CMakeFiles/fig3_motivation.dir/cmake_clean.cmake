file(REMOVE_RECURSE
  "CMakeFiles/fig3_motivation.dir/fig3_motivation.cpp.o"
  "CMakeFiles/fig3_motivation.dir/fig3_motivation.cpp.o.d"
  "fig3_motivation"
  "fig3_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
