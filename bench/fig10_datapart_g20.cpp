// Figure 10 + Table 2 (upper half): data-partition sweep for D_0^2 G_2^0
// (full discriminator on the server, full generator in the clients).
#include "bench/experiments.h"

int main() {
  gtv::core::PartitionSpec partition{0, 2, 2, 0};  // G_2^0, D_0^2
  return gtv::bench::run_data_partition_bench(
      partition, "Figure 10 / Table 2: training-data partition", "fig10_datapart_g20.csv");
}
