// Communication-overhead analysis (§4.3.1's cost discussion): bytes and
// messages per training round for each partition configuration, split by
// link and direction. Supports the paper's argument that D_0^2 G_0^2 has a
// higher server->client generator payload than D_0^2 G_2^0, and quantifies
// the full-table real pass that the privacy design requires of
// non-CV-contributing clients.
#include <iostream>

#include "bench/bench_common.h"

namespace gtv::bench {
namespace {

int run() {
  BenchConfig config = BenchConfig::from_env();
  std::cout << "=== Communication overhead per training round (adult, 2 clients) ===\n\n";
  PreparedData data = prepare_dataset("adult", std::max<std::size_t>(200, config.rows / 2),
                                      config.seed);
  const auto groups = even_split_columns(data.train.n_cols(), 2);

  std::cout << "config         up0(KiB) up1(KiB) down0(KiB) down1(KiB) total(KiB) msgs\n";
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& partition : core::PartitionSpec::all_nine()) {
    core::GtvOptions options = default_gtv_options(config);
    options.partition = partition;
    auto shards = data::vertical_split(data.train, groups);
    core::GtvTrainer trainer(std::move(shards), options, config.seed);
    trainer.train_round();  // warm-up (constructors aside, rounds are identical)
    trainer.traffic().reset();
    trainer.train_round();
    const auto& meter = trainer.traffic();
    const double up0 = static_cast<double>(meter.stats("client0->server").bytes) / 1024.0;
    const double up1 = static_cast<double>(meter.stats("client1->server").bytes) / 1024.0;
    const double down0 = static_cast<double>(meter.stats("server->client0").bytes) / 1024.0;
    const double down1 = static_cast<double>(meter.stats("server->client1").bytes) / 1024.0;
    const auto total = meter.total();
    std::printf("%-14s %-8.1f %-8.1f %-10.1f %-10.1f %-10.1f %llu\n", partition.name().c_str(),
                up0, up1, down0, down1, static_cast<double>(total.bytes) / 1024.0,
                static_cast<unsigned long long>(total.messages));
    csv_rows.push_back({partition.name(), format_double(up0, 1), format_double(up1, 1),
                        format_double(down0, 1), format_double(down1, 1),
                        format_double(static_cast<double>(total.bytes) / 1024.0, 1),
                        std::to_string(total.messages)});
  }
  write_csv(config.out_dir, "comm_overhead.csv",
            {"config", "up0_kib", "up1_kib", "down0_kib", "down1_kib", "total_kib",
             "messages"},
            csv_rows);
  std::cout << "\nnotes: the dominant upstream term is the full-table real pass of the\n"
               "non-CV client (paper §3.1.6). Generator payloads are equal across G\n"
               "partitions because the server-side interface FC compresses the split\n"
               "logits to a fixed width — exactly the mitigation §4.3.1 suggests\n"
               "(\"can be controlled by the FC layer before logits are sent\").\n"
               "Without it, G_0^2 would ship the full concat-residual tower output.\n";
  std::cout << "csv: " << config.out_dir << "/comm_overhead.csv\n";
  return 0;
}

}  // namespace
}  // namespace gtv::bench

int main() { return gtv::bench::run(); }
