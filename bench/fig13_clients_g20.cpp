// Figure 13 + Table 3 (upper half): client-number sweep for D_0^2 G_2^0.
#include "bench/experiments.h"

int main() {
  gtv::core::PartitionSpec partition{0, 2, 2, 0};  // G_2^0, D_0^2
  return gtv::bench::run_client_variation_bench(
      partition, "Figure 13 / Table 3: client number variation", "fig13_clients_g20.csv");
}
