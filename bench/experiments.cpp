#include "bench/experiments.h"

#include <algorithm>
#include <iostream>

#include "eval/shapley.h"

namespace gtv::bench {

namespace {

// Shapley-ranked split: the `fraction` most important features go to
// client A; client B holds the rest plus the target column (the paper
// always places the target with the client WITHOUT the top features).
std::vector<std::vector<std::size_t>> importance_partition(const PreparedData& data,
                                                           double fraction,
                                                           std::uint64_t seed) {
  Rng rng(seed);
  eval::ShapleyOptions shap;
  shap.samples = 120;
  const auto ranked = eval::rank_features_by_importance(data.train, data.target, shap, rng);
  auto [top, rest] = eval::split_by_importance(ranked, fraction);
  rest.push_back(data.target);
  std::sort(top.begin(), top.end());
  std::sort(rest.begin(), rest.end());
  return {top, rest};
}

}  // namespace

int run_data_partition_bench(const core::PartitionSpec& partition, const std::string& title,
                             const std::string& csv_name) {
  BenchConfig config = BenchConfig::from_env();
  std::cout << "=== " << title << " (" << partition.name() << ") ===\n";
  std::cout << "rows=" << config.rows << " rounds=" << config.rounds
            << " partitions: 1090 / 5050 / 9010 by Shapley importance\n\n";

  const std::vector<std::pair<std::string, double>> splits = {
      {"1090", 0.10}, {"5050", 0.50}, {"9010", 0.90}};

  // results[dataset][split] averaged over repeats.
  std::vector<std::vector<MetricRow>> results(config.datasets.size(),
                                              std::vector<MetricRow>(splits.size()));
  std::vector<std::function<void()>> tasks;
  for (std::size_t d = 0; d < config.datasets.size(); ++d) {
    for (std::size_t s = 0; s < splits.size(); ++s) {
      tasks.push_back([&, d, s] {
        PreparedData data = prepare_dataset(config.datasets[d], config.rows, config.seed);
        const auto groups = importance_partition(data, splits[s].second, config.seed ^ 0x5a9);
        core::GtvOptions options = default_gtv_options(config);
        options.partition = partition;
        MetricRow total;
        for (std::size_t rep = 0; rep < config.repeats; ++rep) {
          total +=
              gtv_experiment(data, groups, options, config.rounds, config.seed + rep * 101);
        }
        results[d][s] = total / static_cast<double>(config.repeats);
      });
    }
  }
  parallel_tasks(std::move(tasks));

  std::vector<std::vector<std::string>> csv_rows;
  std::cout << "dataset      split  acc_diff f1_diff auc_diff avg_jsd avg_wd diff_corr\n";
  for (std::size_t d = 0; d < config.datasets.size(); ++d) {
    for (std::size_t s = 0; s < splits.size(); ++s) {
      const MetricRow& m = results[d][s];
      std::printf("%-12s %-6s %.4f   %.4f  %.4f   %.4f  %.4f %.3f\n",
                  config.datasets[d].c_str(), splits[s].first.c_str(), m.acc_diff, m.f1_diff,
                  m.auc_diff, m.avg_jsd, m.avg_wd, m.diff_corr);
      csv_rows.push_back({config.datasets[d], splits[s].first, format_double(m.acc_diff),
                          format_double(m.f1_diff), format_double(m.auc_diff),
                          format_double(m.avg_jsd), format_double(m.avg_wd),
                          format_double(m.diff_corr)});
    }
  }
  write_csv(config.out_dir, csv_name,
            {"dataset", "split", "acc_diff", "f1_diff", "auc_diff", "avg_jsd", "avg_wd",
             "diff_corr"},
            csv_rows);

  // Table 2 view: Diff. Corr. per dataset x split for this configuration.
  std::cout << "\n--- Table 2 rows (" << partition.name() << ", Diff. Corr.) ---\n";
  std::cout << "split ";
  for (const auto& name : config.datasets) std::printf(" %-10s", name.c_str());
  std::cout << "\n";
  for (std::size_t s = 0; s < splits.size(); ++s) {
    std::printf("%-5s ", splits[s].first.c_str());
    for (std::size_t d = 0; d < config.datasets.size(); ++d) {
      std::printf(" %-10s", format_double(results[d][s].diff_corr, 3).c_str());
    }
    std::cout << "\n";
  }
  std::cout << "\npaper shape: 1090 <= 5050 <= 9010 (more features with the label holder ->"
               " better correlations); G_0^2 less affected than G_2^0.\n";
  std::cout << "csv: " << config.out_dir << "/" << csv_name << "\n";
  return 0;
}

int run_client_variation_bench(const core::PartitionSpec& partition, const std::string& title,
                               const std::string& csv_name) {
  BenchConfig config = BenchConfig::from_env();
  // The enlarged-generator (768-wide) runs cost ~9x the default width per
  // matmul; halve the round count so the sweep stays CPU-affordable. The
  // degradation-vs-clients trend appears well before full convergence.
  const std::size_t rounds = std::max<std::size_t>(20, config.rounds / 2);
  std::cout << "=== " << title << " (" << partition.name() << ") ===\n";
  std::cout << "rows=" << config.rows << " rounds=" << rounds
            << " clients=2..5, generator default(256) vs enlarged(768)\n\n";

  constexpr std::size_t kClientCounts = 4;  // 2..5
  // results[setting][client_idx][dataset].
  std::vector<std::vector<std::vector<MetricRow>>> results(
      2, std::vector<std::vector<MetricRow>>(kClientCounts,
                                             std::vector<MetricRow>(config.datasets.size())));
  std::vector<std::function<void()>> tasks;
  for (std::size_t setting = 0; setting < 2; ++setting) {
    for (std::size_t ci = 0; ci < kClientCounts; ++ci) {
      for (std::size_t d = 0; d < config.datasets.size(); ++d) {
        tasks.push_back([&, setting, ci, d] {
          const std::size_t n_clients = ci + 2;
          PreparedData data = prepare_dataset(config.datasets[d], config.rows, config.seed);
          if (data.train.n_cols() < n_clients) return;
          const auto groups = even_split_columns(data.train.n_cols(), n_clients);
          core::GtvOptions options = default_gtv_options(config);
          options.partition = partition;
          options.generator_hidden = setting == 1 ? 768 : 256;
          MetricRow total;
          for (std::size_t rep = 0; rep < config.repeats; ++rep) {
            total += gtv_experiment(data, groups, options, rounds, config.seed + rep * 101);
          }
          results[setting][ci][d] = total / static_cast<double>(config.repeats);
        });
      }
    }
  }
  parallel_tasks(std::move(tasks));

  std::vector<std::vector<std::string>> csv_rows;
  std::cout << "clients gen       acc_diff f1_diff auc_diff avg_jsd avg_wd\n";
  for (std::size_t setting = 0; setting < 2; ++setting) {
    const char* label = setting == 1 ? "enlarged" : "default";
    for (std::size_t ci = 0; ci < kClientCounts; ++ci) {
      MetricRow total;
      for (const auto& cell : results[setting][ci]) total += cell;
      const MetricRow m = total / static_cast<double>(config.datasets.size());
      std::printf("%-7zu %-9s %.4f   %.4f  %.4f   %.4f  %.4f\n", ci + 2, label, m.acc_diff,
                  m.f1_diff, m.auc_diff, m.avg_jsd, m.avg_wd);
      csv_rows.push_back({std::to_string(ci + 2), label, format_double(m.acc_diff),
                          format_double(m.f1_diff), format_double(m.auc_diff),
                          format_double(m.avg_jsd), format_double(m.avg_wd),
                          format_double(m.diff_corr)});
    }
  }
  write_csv(config.out_dir, csv_name,
            {"clients", "generator", "acc_diff", "f1_diff", "auc_diff", "avg_jsd", "avg_wd",
             "diff_corr"},
            csv_rows);

  std::cout << "\n--- Table 3 rows (" << partition.name()
            << ", Diff. Corr. default/enlarged) ---\n";
  std::cout << "clients";
  for (const auto& name : config.datasets) std::printf(" %-12s", name.c_str());
  std::cout << "\n";
  for (std::size_t ci = 0; ci < kClientCounts; ++ci) {
    std::printf("%-7zu", ci + 2);
    for (std::size_t d = 0; d < config.datasets.size(); ++d) {
      std::printf(" %s/%-5s", format_double(results[0][ci][d].diff_corr, 2).c_str(),
                  format_double(results[1][ci][d].diff_corr, 2).c_str());
    }
    std::cout << "\n";
  }
  std::cout << "\npaper shape: quality degrades with more clients; the enlarged generator"
               " degrades less.\n";
  std::cout << "csv: " << config.out_dir << "/" << csv_name << "\n";
  return 0;
}

}  // namespace gtv::bench
