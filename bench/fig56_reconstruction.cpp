// Figures 5 & 6 (security): the semi-honest server's inference-table
// attack. Trains GTV twice on a two-client categorical dataset — once
// WITHOUT training-with-shuffling (Fig. 5: reconstruction succeeds) and
// once WITH it (Fig. 6: reconstruction collapses to chance) — and reports
// the attack's cell accuracy and coverage as training progresses.
#include <iostream>

#include "bench/bench_common.h"

namespace gtv::bench {
namespace {

int run() {
  BenchConfig config = BenchConfig::from_env();
  std::cout << "=== Figures 5/6: server reconstruction attack vs training-with-shuffling ===\n";
  const std::size_t rows = std::max<std::size_t>(60, config.rows / 4);
  const std::size_t rounds = std::max<std::size_t>(20, config.rounds);
  std::cout << "two clients, one binary categorical column each, rows=" << rows
            << " rounds=" << rounds << "\n\n";

  Rng rng(config.seed);
  data::Table t({{"gender", data::ColumnType::kCategorical, {"M", "F"}, {}},
                 {"loan", data::ColumnType::kCategorical, {"Y", "N"}, {}}});
  for (std::size_t i = 0; i < rows; ++i) {
    t.append_row({static_cast<double>(rng.uniform_index(2)),
                  static_cast<double>(rng.uniform_index(2))});
  }

  std::vector<std::vector<std::string>> csv_rows;
  for (const bool shuffling : {false, true}) {
    core::GtvOptions options;
    options.gan.noise_dim = 16;
    options.gan.hidden = 32;
    options.generator_hidden = 32;
    options.gan.batch_size = 16;
    options.gan.d_steps_per_round = 2;
    options.training_with_shuffling = shuffling;
    auto shards = data::vertical_split(t, {{0}, {1}});
    core::GtvTrainer trainer(std::move(shards), options, config.seed);

    std::cout << (shuffling ? "--- WITH training-with-shuffling (Fig. 6) ---\n"
                            : "--- WITHOUT shuffling (Fig. 5) ---\n");
    for (std::size_t round = 1; round <= rounds; ++round) {
      trainer.train_round();
      if (round % (rounds / 4) == 0 || round == rounds) {
        const auto eval = trainer.attack_evaluation();
        std::printf("  round %3zu: claims=%5zu coverage=%.2f cell-accuracy=%.3f\n", round,
                    eval.claims, eval.coverage, eval.accuracy);
        csv_rows.push_back({shuffling ? "with_shuffling" : "no_shuffling",
                            std::to_string(round), std::to_string(eval.claims),
                            format_double(eval.coverage), format_double(eval.accuracy)});
      }
    }
    const auto final_eval = trainer.attack_evaluation();
    std::printf("  final reconstruction accuracy: %.3f (%s)\n\n", final_eval.accuracy,
                shuffling ? "defended: ~chance (0.5 for binary columns)"
                          : "undefended: near-perfect reconstruction");
  }
  write_csv(config.out_dir, "fig56_reconstruction.csv",
            {"mode", "round", "claims", "coverage", "cell_accuracy"}, csv_rows);
  std::cout << "paper shape: without shuffling the server reconstructs the categorical\n"
               "columns (Fig. 5); with training-with-shuffling the inference table goes\n"
               "stale every round and accuracy drops to chance (Fig. 6).\n";
  std::cout << "csv: " << config.out_dir << "/fig56_reconstruction.csv\n";
  return 0;
}

}  // namespace
}  // namespace gtv::bench

int main() { return gtv::bench::run(); }
