// Figure 8 (neural-network partition): the nine D/G partitions plus the
// centralized baseline, two clients with an even column split, averaged
// over the five benchmark datasets. Reports the paper's eight metrics
// (Acc/F1/AUC differences, Avg JSD, Avg WD, Avg-client & Across-client
// Diff. Corr.).
//
// Paper shape to reproduce: centralized best; the three configurations
// with the full discriminator on the server (D_0^2 *) outperform the other
// six; D_0^2 G_0^2 and D_0^2 G_2^0 are the best GTV configurations.
#include <iostream>

#include "bench/bench_common.h"

namespace gtv::bench {
namespace {

int run() {
  BenchConfig config = BenchConfig::from_env();
  std::cout << "=== Figure 8: neural-network partition (avg over datasets) ===\n";
  std::cout << "rows=" << config.rows << " rounds=" << config.rounds
            << " repeats=" << config.repeats << " datasets=" << config.datasets.size()
            << "\n\n";

  // Config 0 = centralized baseline, configs 1..9 = the nine partitions.
  const auto partitions = core::PartitionSpec::all_nine();
  const std::size_t n_configs = 1 + partitions.size();
  const std::size_t n_cells = config.datasets.size() * config.repeats;
  std::vector<std::vector<MetricRow>> results(n_configs, std::vector<MetricRow>(n_cells));

  std::vector<std::function<void()>> tasks;
  for (std::size_t c = 0; c < n_configs; ++c) {
    for (std::size_t d = 0; d < config.datasets.size(); ++d) {
      for (std::size_t rep = 0; rep < config.repeats; ++rep) {
        tasks.push_back([&, c, d, rep] {
          PreparedData data = prepare_dataset(config.datasets[d], config.rows, config.seed);
          const auto groups = even_split_columns(data.train.n_cols(), 2);
          const std::uint64_t seed = config.seed + rep * 101;
          MetricRow row;
          if (c == 0) {
            row = centralized_experiment(data, groups, default_gan_options(config),
                                         config.rounds, seed);
          } else {
            core::GtvOptions options = default_gtv_options(config);
            options.partition = partitions[c - 1];
            row = gtv_experiment(data, groups, options, config.rounds, seed);
          }
          results[c][d * config.repeats + rep] = row;
        });
      }
    }
  }
  parallel_tasks(std::move(tasks));

  std::vector<std::vector<std::string>> csv_rows;
  auto report = [&](const std::string& name, const MetricRow& m) {
    std::printf("%-14s acc=%.4f f1=%.4f auc=%.4f jsd=%.4f wd=%.4f avgcl=%.3f across=%.3f\n",
                name.c_str(), m.acc_diff, m.f1_diff, m.auc_diff, m.avg_jsd, m.avg_wd,
                m.avg_client_corr, m.across_client_corr);
    csv_rows.push_back({name, format_double(m.acc_diff), format_double(m.f1_diff),
                        format_double(m.auc_diff), format_double(m.avg_jsd),
                        format_double(m.avg_wd), format_double(m.avg_client_corr),
                        format_double(m.across_client_corr)});
  };
  for (std::size_t c = 0; c < n_configs; ++c) {
    MetricRow total;
    for (const auto& cell : results[c]) total += cell;
    report(c == 0 ? "centralized" : partitions[c - 1].name(),
           total / static_cast<double>(n_cells));
  }

  write_csv(config.out_dir, "fig8_partition.csv",
            {"config", "acc_diff", "f1_diff", "auc_diff", "avg_jsd", "avg_wd",
             "avg_client_corr", "across_client_corr"},
            csv_rows);
  std::cout << "\npaper shape: centralized best; D_0^2 rows (full critic on server) beat the"
               " other six; D_0^2 G_0^2 / D_0^2 G_2^0 lead on ML utility.\n";
  std::cout << "csv: " << config.out_dir << "/fig8_partition.csv\n";
  return 0;
}

}  // namespace
}  // namespace gtv::bench

int main() { return gtv::bench::run(); }
