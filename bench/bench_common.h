// Shared harness for the paper-reproduction benchmarks (one binary per
// table/figure). Handles configuration via environment variables, dataset
// preparation, synthetic-data evaluation against the paper's eight metrics,
// and CSV emission.
//
// Environment knobs (all optional):
//   GTV_BENCH_ROWS     training rows per dataset      (default 250)
//   GTV_BENCH_ROUNDS   GAN training rounds            (default 100)
//   GTV_BENCH_REPEATS  repetitions averaged           (default 1; paper: 3)
//   GTV_BENCH_SCALE    multiplies rows & rounds       (default 1.0)
//   GTV_BENCH_DATASETS comma list                     (default all five)
//   GTV_BENCH_OUT      output directory for CSVs      (default bench_results)
//
// Observability (gtv::obs; see README "Observability"):
//   GTV_TRACE=<path>   write a chrome://tracing-compatible JSONL span
//                      trace of every training phase to <path>
//   GTV_METRICS=1      enable clock-sampling instrumentation (per-call
//                      client/server forward/backward histograms,
//                      thread-pool busy/idle accounting)
//   GTV_PROFILE=1      enable the op-level autograd profiler
//   GTV_HEALTH=1       enable training-health monitoring (gradient stats,
//                      WGAN-GP divergence detectors, sample-quality probes)
// Every write_csv() also drops a `<name>.telemetry.json` snapshot next to
// the CSV: a schema_version-stamped envelope holding the tensor-memory
// ledger, the process-wide MetricsRegistry (phase-duration percentiles +
// per-link traffic) and the HealthLog summary, so each figure records its
// phase breakdown. Under GTV_PROFILE=1 a `<name>.profile.json` per-op table
// is written as well; under GTV_HEALTH=1 a `<name>.health.json` alert log.
// Merge the artefacts with tools/gtv-prof / tools/gtv-health.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/gtv.h"
#include "data/datasets.h"
#include "eval/ml_utility.h"
#include "eval/similarity.h"

namespace gtv::bench {

struct BenchConfig {
  std::size_t rows = 400;
  std::size_t rounds = 30;
  std::size_t batch = 64;
  std::size_t d_steps = 2;
  std::size_t repeats = 1;
  std::uint64_t seed = 2025;
  std::vector<std::string> datasets;
  std::string out_dir = "bench_results";

  static BenchConfig from_env();
};

struct PreparedData {
  data::Table train;
  data::Table test;
  std::size_t target = 0;  // target column index in both splits
  std::string name;
};

// Generates the synthetic stand-in dataset and splits 80/20 stratified on
// the target (the paper's pipeline).
PreparedData prepare_dataset(const std::string& name, std::size_t rows, std::uint64_t seed);

// The eight paper metrics for one (real, synthetic) pair. Difference
// metrics: lower is better.
struct MetricRow {
  double acc_diff = 0;
  double f1_diff = 0;
  double auc_diff = 0;
  double avg_jsd = 0;
  double avg_wd = 0;
  double diff_corr = 0;
  // Two-client variants (0 when no client split was supplied).
  double avg_client_corr = 0;
  double across_client_corr = 0;

  MetricRow& operator+=(const MetricRow& other);
  MetricRow operator/(double d) const;
};

// Evaluates synthetic data on all metrics. When `client_groups` holds the
// two clients' column index sets (over the joined layout), the Avg-client /
// Across-client Diff. Corr. variants are filled in.
MetricRow evaluate_synthetic(const PreparedData& data, const data::Table& synthetic,
                             const std::vector<std::vector<std::size_t>>& client_groups,
                             std::uint64_t seed);

// Contiguous even column split preserving order (paper §4.3.1); with an odd
// column count the first groups get one extra column.
std::vector<std::vector<std::size_t>> even_split_columns(std::size_t n_cols,
                                                         std::size_t n_clients);

// The joined GTV output has columns in group order; this restores the
// original column order so it can be compared against the source table.
data::Table restore_column_order(const data::Table& joined,
                                 const std::vector<std::vector<std::size_t>>& groups);

// One full GTV run on `data` with the given vertical split + evaluation.
MetricRow gtv_experiment(const PreparedData& data,
                         const std::vector<std::vector<std::size_t>>& groups,
                         const core::GtvOptions& options, std::size_t rounds,
                         std::uint64_t seed);

// Centralized baseline run + evaluation (client_groups only affect the
// Avg/Across-client correlation variants).
MetricRow centralized_experiment(const PreparedData& data,
                                 const std::vector<std::vector<std::size_t>>& client_groups,
                                 const gan::GanOptions& options, std::size_t rounds,
                                 std::uint64_t seed);

// Default GTV options matching the bench config (paper widths: 256).
core::GtvOptions default_gtv_options(const BenchConfig& config);
gan::GanOptions default_gan_options(const BenchConfig& config);

// Trains GTV on the given client shards and returns the published
// synthetic table (same size as the training data).
data::Table run_gtv(const std::vector<data::Table>& shards, const core::GtvOptions& options,
                    std::size_t rounds, std::size_t synth_rows, std::uint64_t seed);

// CSV emission: writes header + rows into <out_dir>/<file>, plus a
// MetricsRegistry snapshot into <out_dir>/<stem>.telemetry.json.
void write_csv(const std::string& out_dir, const std::string& file,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

// Writes one JSON object to <out_dir>/<file>:
//   {"schema_version":3,"memory":{<tensor ledger>},"metrics":{<registry>},
//    "health":{<HealthLog summary>}}
// where metrics is the process-wide MetricsRegistry snapshot (counters,
// gauges, phase-duration histograms) and health the alert-count summary
// (all-zero when GTV_HEALTH is unset).
void write_telemetry_json(const std::string& out_dir, const std::string& file);

// Runs the tasks on up to GTV_BENCH_PARALLEL threads (default: half the
// hardware threads, capped at 8). Tasks must be independent; results keep
// task order. Used to fan experiment grids across cores.
void parallel_tasks(std::vector<std::function<void()>> tasks);

std::string format_double(double v, int precision = 4);

}  // namespace gtv::bench
