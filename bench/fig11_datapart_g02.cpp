// Figure 11 + Table 2 (lower half): data-partition sweep for D_0^2 G_0^2
// (full discriminator AND full generator on the server).
#include "bench/experiments.h"

int main() {
  gtv::core::PartitionSpec partition{2, 0, 2, 0};  // G_0^2, D_0^2
  return gtv::bench::run_data_partition_bench(
      partition, "Figure 11 / Table 2: training-data partition", "fig11_datapart_g02.csv");
}
