#include "bench/bench_common.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/health.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace gtv::bench {

namespace {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

}  // namespace

BenchConfig BenchConfig::from_env() {
  BenchConfig config;
  config.rows = std::stoul(env_or("GTV_BENCH_ROWS", "250"));
  config.rounds = std::stoul(env_or("GTV_BENCH_ROUNDS", "100"));
  config.repeats = std::stoul(env_or("GTV_BENCH_REPEATS", "1"));
  config.seed = std::stoull(env_or("GTV_BENCH_SEED", "2025"));
  config.out_dir = env_or("GTV_BENCH_OUT", "bench_results");
  const double scale = std::stod(env_or("GTV_BENCH_SCALE", "1.0"));
  config.rows = static_cast<std::size_t>(static_cast<double>(config.rows) * scale);
  config.rounds = static_cast<std::size_t>(static_cast<double>(config.rounds) * scale);
  const std::string datasets = env_or("GTV_BENCH_DATASETS", "");
  if (datasets.empty()) {
    config.datasets = data::dataset_names();
  } else {
    std::stringstream ss(datasets);
    std::string item;
    while (std::getline(ss, item, ',')) config.datasets.push_back(item);
  }
  return config;
}

PreparedData prepare_dataset(const std::string& name, std::size_t rows, std::uint64_t seed) {
  Rng rng(seed ^ std::hash<std::string>{}(name));
  // Generate 25% extra so the 80/20 split leaves `rows` for training.
  data::Table full = data::make_dataset(name, rows + rows / 4, rng);
  const std::size_t target = full.column_index(data::target_column(name));
  auto [train, test] = full.train_test_split(0.2, rng, target);
  return {std::move(train), std::move(test), target, name};
}

MetricRow& MetricRow::operator+=(const MetricRow& other) {
  acc_diff += other.acc_diff;
  f1_diff += other.f1_diff;
  auc_diff += other.auc_diff;
  avg_jsd += other.avg_jsd;
  avg_wd += other.avg_wd;
  diff_corr += other.diff_corr;
  avg_client_corr += other.avg_client_corr;
  across_client_corr += other.across_client_corr;
  return *this;
}

MetricRow MetricRow::operator/(double d) const {
  MetricRow out = *this;
  out.acc_diff /= d;
  out.f1_diff /= d;
  out.auc_diff /= d;
  out.avg_jsd /= d;
  out.avg_wd /= d;
  out.diff_corr /= d;
  out.avg_client_corr /= d;
  out.across_client_corr /= d;
  return out;
}

MetricRow evaluate_synthetic(const PreparedData& data, const data::Table& synthetic,
                             const std::vector<std::vector<std::size_t>>& client_groups,
                             std::uint64_t seed) {
  Rng rng(seed);
  MetricRow row;
  auto utility =
      eval::ml_utility_difference(data.train, synthetic, data.test, data.target, rng);
  row.acc_diff = utility.difference.accuracy;
  row.f1_diff = utility.difference.f1;
  row.auc_diff = utility.difference.auc;
  auto similarity = eval::similarity_report(data.train, synthetic);
  row.avg_jsd = similarity.avg_jsd;
  row.avg_wd = similarity.avg_wd;
  row.diff_corr = similarity.diff_corr;
  if (client_groups.size() == 2) {
    // Avg-client: mean of each client's intra-shard Diff. Corr.
    double intra = 0.0;
    for (const auto& group : client_groups) {
      data::Table real_shard = data.train.select_columns(group);
      data::Table synth_shard = synthetic.select_columns(group);
      intra += eval::correlation_difference(real_shard, synth_shard);
    }
    row.avg_client_corr = intra / 2.0;
    row.across_client_corr = eval::correlation_difference_between(
        data.train, synthetic, client_groups[0], client_groups[1]);
  }
  return row;
}

std::vector<std::vector<std::size_t>> even_split_columns(std::size_t n_cols,
                                                         std::size_t n_clients) {
  if (n_clients == 0 || n_cols < n_clients) {
    throw std::invalid_argument("even_split_columns: too few columns");
  }
  std::vector<std::vector<std::size_t>> groups(n_clients);
  const std::size_t base = n_cols / n_clients;
  std::size_t extra = n_cols % n_clients;
  std::size_t cursor = 0;
  for (std::size_t g = 0; g < n_clients; ++g) {
    const std::size_t take = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    for (std::size_t i = 0; i < take; ++i) groups[g].push_back(cursor++);
  }
  return groups;
}

data::Table restore_column_order(const data::Table& joined,
                                 const std::vector<std::vector<std::size_t>>& groups) {
  std::vector<std::size_t> flattened;
  for (const auto& group : groups) {
    flattened.insert(flattened.end(), group.begin(), group.end());
  }
  std::vector<std::size_t> inverse(flattened.size());
  for (std::size_t pos = 0; pos < flattened.size(); ++pos) inverse[flattened[pos]] = pos;
  return joined.select_columns(inverse);
}

MetricRow gtv_experiment(const PreparedData& data,
                         const std::vector<std::vector<std::size_t>>& groups,
                         const core::GtvOptions& options, std::size_t rounds,
                         std::uint64_t seed) {
  auto shards = data::vertical_split(data.train, groups);
  data::Table joined = run_gtv(shards, options, rounds, data.train.n_rows(), seed);
  data::Table synthetic = restore_column_order(joined, groups);
  const auto& client_groups = groups.size() == 2
                                  ? groups
                                  : std::vector<std::vector<std::size_t>>{};
  return evaluate_synthetic(data, synthetic, client_groups, seed ^ 0xea1);
}

MetricRow centralized_experiment(const PreparedData& data,
                                 const std::vector<std::vector<std::size_t>>& client_groups,
                                 const gan::GanOptions& options, std::size_t rounds,
                                 std::uint64_t seed) {
  gan::CentralizedTabularGan gan(data.train, options, seed);
  gan.train(rounds);
  data::Table synthetic = gan.sample(data.train.n_rows());
  return evaluate_synthetic(data, synthetic, client_groups, seed ^ 0xea1);
}

gan::GanOptions default_gan_options(const BenchConfig& config) {
  gan::GanOptions options;
  options.batch_size = config.batch;
  options.d_steps_per_round = config.d_steps;
  options.hidden = 256;  // paper width
  options.noise_dim = 64;
  // CT-GAN's 2e-4 is tuned for batch 500; at the CPU-scale batch of 64 a
  // proportionally larger step converges to the same quality in far fewer
  // rounds (see bench/convergence.cpp).
  options.adam.lr = 1e-3f;
  if (const char* lr = std::getenv("GTV_BENCH_LR")) {
    options.adam.lr = std::stof(lr);
  }
  return options;
}

core::GtvOptions default_gtv_options(const BenchConfig& config) {
  core::GtvOptions options;
  options.gan = default_gan_options(config);
  options.generator_hidden = 256;
  return options;
}

data::Table run_gtv(const std::vector<data::Table>& shards, const core::GtvOptions& options,
                    std::size_t rounds, std::size_t synth_rows, std::uint64_t seed) {
  core::GtvTrainer trainer(shards, options, seed);
  trainer.train(rounds);
  return trainer.sample(synth_rows);
}

void write_csv(const std::string& out_dir, const std::string& file,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::filesystem::create_directories(out_dir);
  std::ofstream out(out_dir + "/" + file);
  if (!out) throw std::runtime_error("write_csv: cannot open " + out_dir + "/" + file);
  for (std::size_t i = 0; i < header.size(); ++i) {
    out << header[i] << (i + 1 < header.size() ? "," : "\n");
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i] << (i + 1 < row.size() ? "," : "\n");
    }
  }
  // Every figure records the phase/traffic breakdown it was produced under.
  const std::string stem = file.substr(0, file.find_last_of('.'));
  write_telemetry_json(out_dir, stem + ".telemetry.json");
  if (obs::profiling_enabled()) {
    std::ofstream prof(out_dir + "/" + stem + ".profile.json");
    if (!prof) {
      throw std::runtime_error("write_csv: cannot open " + out_dir + "/" + stem +
                               ".profile.json");
    }
    prof << obs::Profiler::instance().to_json() << "\n";
  }
  if (obs::health_enabled()) {
    obs::write_health_json(out_dir + "/" + stem + ".health.json");
  }
}

void write_telemetry_json(const std::string& out_dir, const std::string& file) {
  std::filesystem::create_directories(out_dir);
  std::ofstream out(out_dir + "/" + file);
  if (!out) {
    throw std::runtime_error("write_telemetry_json: cannot open " + out_dir + "/" + file);
  }
  obs::publish_memory_gauges();
  const obs::MemStats mem = obs::memory_stats();
  out << "{\"schema_version\":3,\"memory\":{\"live_bytes\":" << mem.live_bytes
      << ",\"peak_bytes\":" << mem.peak_bytes << ",\"alloc_count\":" << mem.alloc_count
      << ",\"free_count\":" << mem.free_count
      << "},\"metrics\":" << obs::MetricsRegistry::instance().to_json()
      << ",\"health\":" << obs::HealthLog::instance().summary_json() << "}\n";
}

void parallel_tasks(std::vector<std::function<void()>> tasks) {
  std::size_t workers = std::min<std::size_t>(
      8, std::max<std::size_t>(1, std::thread::hardware_concurrency() / 2));
  if (const char* env = std::getenv("GTV_BENCH_PARALLEL")) {
    workers = std::max<std::size_t>(1, std::stoul(env));
  }
  workers = std::min(workers, tasks.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= tasks.size()) return;
        tasks[i]();
      }
    });
  }
  for (auto& t : threads) t.join();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace gtv::bench
