// Design-choice ablations called out in DESIGN.md:
//
//   A. WGAN-GP vs WGAN weight clipping (critic regularization)
//   B. exact distributed gradient penalty vs server-side (top-only) penalty
//   C. generator conditional loss on/off: minority-category coverage
//   D. DP noise on intermediate logits: the utility cost the paper cites
//      when rejecting DP (§3.3 "Further protection methods")
//   E. server vs peer-to-peer index sharing: the co-selection leak that
//      motivates the paper's server-side design (§3.1.6)
#include <iostream>

#include "bench/bench_common.h"

namespace gtv::bench {
namespace {

int run() {
  BenchConfig config = BenchConfig::from_env();
  const std::size_t rounds = std::max<std::size_t>(20, config.rounds / 2);
  std::cout << "=== Ablations (loan, 2 clients, " << rounds << " rounds) ===\n\n";
  PreparedData data = prepare_dataset("loan", config.rows, config.seed);
  const auto groups = even_split_columns(data.train.n_cols(), 2);
  std::vector<std::vector<std::string>> csv_rows;

  auto report = [&](const std::string& name, const MetricRow& m) {
    std::printf("%-24s f1=%.4f auc=%.4f jsd=%.4f wd=%.4f corr=%.3f\n", name.c_str(),
                m.f1_diff, m.auc_diff, m.avg_jsd, m.avg_wd, m.diff_corr);
    csv_rows.push_back({name, format_double(m.f1_diff), format_double(m.auc_diff),
                        format_double(m.avg_jsd), format_double(m.avg_wd),
                        format_double(m.diff_corr)});
  };

  // --- A + B + D: quality grid --------------------------------------------------
  struct Variant {
    std::string name;
    std::function<void(core::GtvOptions&)> apply;
  };
  const std::vector<Variant> variants = {
      {"baseline_wgan_gp", [](core::GtvOptions&) {}},
      {"weight_clipping",
       [](core::GtvOptions& o) {
         o.gan.critic_mode = gan::CriticMode::kWeightClipping;
       }},
      {"top_only_gp", [](core::GtvOptions& o) { o.exact_gradient_penalty = false; }},
      {"no_conditional_loss",
       [](core::GtvOptions& o) { o.gan.use_conditional_loss = false; }},
      {"dp_noise_0.1", [](core::GtvOptions& o) { o.dp_noise_std = 0.1f; }},
      {"dp_noise_0.5", [](core::GtvOptions& o) { o.dp_noise_std = 0.5f; }},
  };
  std::vector<MetricRow> results(variants.size());
  std::vector<std::function<void()>> tasks;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    tasks.push_back([&, v] {
      core::GtvOptions options = default_gtv_options(config);
      variants[v].apply(options);
      results[v] = gtv_experiment(data, groups, options, rounds, config.seed);
    });
  }
  parallel_tasks(std::move(tasks));
  for (std::size_t v = 0; v < variants.size(); ++v) report(variants[v].name, results[v]);

  // --- C: minority coverage with/without the conditional vector ------------------
  {
    std::cout << "\n--- conditional vector vs minority-class coverage (loan target) ---\n";
    const std::size_t target = data.target;
    const auto real_counts = data.train.class_counts(target);
    for (const bool use_cv : {true, false}) {
      core::GtvOptions options = default_gtv_options(config);
      options.gan.use_conditional_loss = use_cv;
      auto shards = data::vertical_split(data.train, groups);
      data::Table synth = restore_column_order(
          run_gtv(shards, options, rounds, data.train.n_rows(), config.seed), groups);
      const auto synth_counts = synth.class_counts(target);
      const double real_rate =
          static_cast<double>(real_counts[1]) / static_cast<double>(data.train.n_rows());
      const double synth_rate =
          static_cast<double>(synth_counts[1]) / static_cast<double>(synth.n_rows());
      std::printf("  cond_loss=%-5s real minority rate=%.3f synthetic=%.3f\n",
                  use_cv ? "on" : "off", real_rate, synth_rate);
      csv_rows.push_back({use_cv ? "cv_on_minority" : "cv_off_minority",
                          format_double(real_rate), format_double(synth_rate), "", "", ""});
    }
  }

  // --- E: peer-to-peer index sharing leak ------------------------------------------
  {
    std::cout << "\n--- P2P index sharing: selection-frequency leak ---\n";
    core::GtvOptions options = default_gtv_options(config);
    options.index_sharing = core::IndexSharing::kPeerToPeer;
    auto shards = data::vertical_split(data.train, groups);
    core::GtvTrainer trainer(std::move(shards), options, config.seed);
    trainer.train(rounds);
    // Score the leak on a categorical column of the CV-contributing side;
    // the loan target (a minority-heavy binary column) is the paper's case.
    const auto eval = trainer.peer_attack_evaluation(data.target);
    std::printf("  selections per minority row: %.2f\n", eval.minority_rate);
    std::printf("  selections per majority row: %.2f\n", eval.majority_rate);
    std::printf("  lift: %.2fx  auc: %.3f  (1.0x / 0.5 = no leak; log-frequency\n"
                "  oversampling makes minority rows visibly hot to any counting peer,\n"
                "  and shuffling cannot hide it because peers know the seed)\n",
                eval.lift, eval.auc);
    csv_rows.push_back({"p2p_leak", format_double(eval.lift, 2), format_double(eval.auc, 3),
                        format_double(eval.minority_rate, 2),
                        format_double(eval.majority_rate, 2), ""});
  }

  write_csv(config.out_dir, "ablations.csv",
            {"variant", "f1_or_v1", "auc_or_v2", "jsd_or_v3", "wd", "diff_corr"}, csv_rows);
  std::cout << "\ncsv: " << config.out_dir << "/ablations.csv\n";
  return 0;
}

}  // namespace
}  // namespace gtv::bench

int main() { return gtv::bench::run(); }
