// Dense-kernel benchmark: the tiled gemm vs the seed (naive i-k-j) kernel.
//
// Emits one JSON object to stdout so scripts/check.sh (stage "kernels") can
// validate it and persist the machine baseline as BENCH_kernels.json.
// The seed kernel is compiled into this binary verbatim — including its row
// parallelization through gtv::parallel_for — so the speedup column
// isolates the tiling/packing/micro-kernel work from threading.
//
// Schema (schema_version 1):
//   {"schema_version":1, "isa":"avx2|portable", "threads":N,
//    "matmul":[{"n":512,"seed_ms":..,"tiled_ms":..,"seed_gflops":..,
//               "tiled_gflops":..,"speedup":..}, ...],
//    "variants":{"nt_ms":..,"tn_ms":..,"nn_ms":..},     // 512^3 each
//    "linear":{"fwd_ms":..,"fwd_bwd_ms":..},            // 256x128 -> 256
//    "train_round_ms":..,
//    "speedup_512":..}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/gtv.h"
#include "data/datasets.h"
#include "nn/module.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "tensor/thread_pool.h"

namespace gtv::bench {
namespace {

// The pre-rewrite Tensor::matmul inner loops, parallelized across rows the
// same way the seed was (zero-skip included: it is part of what was shipped
// and what the speedup is measured against).
Tensor seed_matmul(const Tensor& a, const Tensor& b) {
  Tensor out(a.rows(), b.cols());
  const std::size_t k = a.cols(), n = b.cols();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(a.rows(), 8, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aik = pa[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = pb + kk * n;
        float* crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  });
  return out;
}

volatile float g_sink = 0.0f;  // defeats dead-code elimination

template <typename F>
double time_ms(int iters, F&& fn) {
  fn();  // warm-up (pack buffers, pool spin-up, page faults)
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
}

double gflops(std::size_t n, double ms) { return 2.0 * n * n * n / (ms * 1e6); }

int run() {
  std::printf("{\"schema_version\":1,\"isa\":\"%s\",\"threads\":%zu,\n",
              detail::gemm_kernel_isa(), ThreadPool::instance().worker_count());

  // Square matmul sweep. Iteration counts keep each cell ~comparable cost.
  const std::size_t sizes[] = {64, 128, 256, 512};
  double seed_512 = 0, tiled_512 = 0;
  std::printf(" \"matmul\":[");
  for (std::size_t idx = 0; idx < 4; ++idx) {
    const std::size_t n = sizes[idx];
    Rng rng(n);
    Tensor a = Tensor::normal(n, n, 0.0f, 1.0f, rng);
    Tensor b = Tensor::normal(n, n, 0.0f, 1.0f, rng);
    const int iters = n >= 512 ? 5 : n >= 256 ? 20 : 100;
    const double seed_ms = time_ms(iters, [&] { g_sink = seed_matmul(a, b)(0, 0); });
    const double tiled_ms = time_ms(iters, [&] { g_sink = a.matmul(b)(0, 0); });
    if (n == 512) { seed_512 = seed_ms; tiled_512 = tiled_ms; }
    std::printf(
        "%s\n  {\"n\":%zu,\"seed_ms\":%.3f,\"tiled_ms\":%.3f,"
        "\"seed_gflops\":%.2f,\"tiled_gflops\":%.2f,\"speedup\":%.2f}",
        idx ? "," : "", n, seed_ms, tiled_ms, gflops(n, seed_ms), gflops(n, tiled_ms),
        seed_ms / tiled_ms);
  }
  std::printf("],\n");

  // Transpose-free variants at 512^3: the backward-pass shapes. The nn
  // column is repeated so all three are measured the same way in one place.
  {
    Rng rng(512);
    Tensor a = Tensor::normal(512, 512, 0.0f, 1.0f, rng);
    Tensor b = Tensor::normal(512, 512, 0.0f, 1.0f, rng);
    const double nn = time_ms(5, [&] { g_sink = a.matmul(b)(0, 0); });
    const double nt = time_ms(5, [&] { g_sink = a.matmul_nt(b)(0, 0); });
    const double tn = time_ms(5, [&] { g_sink = a.matmul_tn(b)(0, 0); });
    std::printf(" \"variants\":{\"nn_ms\":%.3f,\"nt_ms\":%.3f,\"tn_ms\":%.3f},\n", nn, nt,
                tn);
  }

  // Linear layer forward and forward+backward (batch 256, 128 -> 256):
  // exercises the autograd matmul family end to end, including the
  // transpose-free matmul_nt/matmul_tn backward.
  {
    Rng rng(9);
    nn::Linear layer(128, 256, rng);
    Tensor xt = Tensor::normal(256, 128, 0.0f, 1.0f, rng);
    const double fwd = time_ms(50, [&] {
      ag::NoGradGuard ng;
      g_sink = layer.forward(ag::constant(xt)).value()(0, 0);
    });
    const double fwd_bwd = time_ms(50, [&] {
      ag::Var x(xt, /*requires_grad=*/true);
      ag::Var loss = ag::mean_all(layer.forward(x));
      ag::backward(loss);
      g_sink = x.grad()(0, 0);
      for (auto& p : layer.parameters()) p.zero_grad();
    });
    std::printf(" \"linear\":{\"fwd_ms\":%.3f,\"fwd_bwd_ms\":%.3f},\n", fwd, fwd_bwd);
  }

  // One full VFL training round at the seed bench config: the end-to-end
  // number the kernel work actually moves.
  {
    Rng data_rng(17);
    data::Table t = data::make_loan(200, data_rng);
    core::GtvOptions options;
    std::vector<std::vector<std::size_t>> groups(2);
    for (std::size_t c = 0; c < t.n_cols(); ++c) groups[c % 2].push_back(c);
    core::GtvTrainer trainer(data::vertical_split(t, groups), options, 99);
    trainer.train_round();  // warm-up
    const double round_ms = time_ms(3, [&] { (void)trainer.train_round(); });
    std::printf(" \"train_round_ms\":%.3f,\n", round_ms);
  }

  std::printf(" \"speedup_512\":%.2f}\n", seed_512 / tiled_512);
  return 0;
}

}  // namespace
}  // namespace gtv::bench

int main() { return gtv::bench::run(); }
