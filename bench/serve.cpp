// Serving-path load generator: trains one tiny model, starts a real TCP
// ServeDaemon on an ephemeral port, and sweeps concurrent client counts
// (1 / 8 / 64) against it. Each client issues a fixed series of seeded
// requests over its own connection, so higher levels measure what the
// batching queue buys: many requests coalesced into one generator
// forward instead of one forward (plus linger) per request.
//
// Emits one JSON object to stdout; scripts/check.sh (stage "serve")
// persists it as BENCH_serve.json. Schema (schema_version 1):
//   {"schema_version":1, "rows_per_request":N, "requests_per_client":N,
//    "deterministic":true,
//    "levels":[{"clients":1,"rows_per_sec":..,"p50_ms":..,"p99_ms":..,
//               "avg_batch_rows":..}, ...],
//    "speedup_64_vs_1":..}
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gtv.h"
#include "data/datasets.h"
#include "data/table.h"
#include "net/tcp.h"
#include "serve/checkpoint.h"
#include "serve/daemon.h"
#include "serve/engine.h"

namespace gtv::bench {
namespace {

constexpr std::size_t kRowsPerRequest = 50;
constexpr std::size_t kRequestsPerClient = 10;

serve::Checkpoint train_checkpoint() {
  core::GtvOptions options;
  options.gan.noise_dim = 16;
  options.gan.batch_size = 16;
  options.gan.d_steps_per_round = 1;
  options.gan.hidden = 32;
  options.generator_hidden = 48;
  Rng rng(0xbe7cULL);
  const data::Table table = data::make_dataset("loan", 64, rng);
  std::vector<std::vector<std::size_t>> groups(2);
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    groups[c < (table.n_cols() + 1) / 2 ? 0 : 1].push_back(c);
  }
  core::GtvTrainer trainer(data::vertical_split(table, groups), options, 11);
  trainer.train(1);
  serve::Checkpoint ckpt = trainer.make_checkpoint();
  serve::Synthesizer synth(ckpt);
  ckpt.model_hash = serve::hash_table(synth.sample(64, ckpt.seed));
  return ckpt;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct LevelResult {
  std::size_t clients = 0;
  double rows_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double avg_batch_rows = 0;
};

LevelResult run_level(serve::ServeDaemon& daemon, std::uint16_t port,
                      std::size_t n_clients, std::size_t level_tag) {
  const serve::ServeStats before = daemon.stats();
  std::vector<std::vector<double>> latencies(n_clients);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      serve::ServeClient client("L" + std::to_string(level_tag) + "c" + std::to_string(c));
      client.connect("127.0.0.1", port);
      client.hello();
      for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
        const auto rt0 = std::chrono::steady_clock::now();
        client.sample(kRowsPerRequest, 0x5eedULL + level_tag * 100000 + c * 100 + r);
        latencies[c].push_back(std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - rt0)
                                   .count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const serve::ServeStats after = daemon.stats();

  LevelResult result;
  result.clients = n_clients;
  const std::size_t total_rows = n_clients * kRequestsPerClient * kRowsPerRequest;
  result.rows_per_sec = static_cast<double>(total_rows) / wall_s;
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.p50_ms = percentile(all, 50);
  result.p99_ms = percentile(all, 99);
  const std::uint64_t batches = after.batches - before.batches;
  result.avg_batch_rows =
      batches == 0 ? 0.0
                   : static_cast<double>(after.rows - before.rows) /
                         static_cast<double>(batches);
  return result;
}

int run() {
  const serve::Checkpoint ckpt = train_checkpoint();
  serve::Synthesizer synth(ckpt);

  auto transport = std::make_shared<net::TcpTransport>(serve::kServeParty);
  const std::uint16_t port = transport->listen(0);
  serve::DaemonOptions options;
  options.max_batch = 16384;
  // Throughput-tuned linger: long enough that a 64-client burst lands in
  // one generator forward even on a single-core box. The 1-client level
  // pays the same linger per request — that cost is exactly what the
  // batching queue amortizes.
  options.max_wait_us = 10000;
  options.recv_timeout_ms = 100;
  serve::ServeDaemon daemon(synth, options);
  daemon.set_transport(transport);
  daemon.start();
  daemon.watch_peers(transport.get());

  // Determinism probe: the same seed over two fresh connections must
  // deliver byte-identical cells regardless of what else is in flight.
  bool deterministic = true;
  {
    serve::ServeClient a("det0"), b("det1");
    a.connect("127.0.0.1", port);
    b.connect("127.0.0.1", port);
    a.hello();
    b.hello();
    deterministic = a.sample(kRowsPerRequest, 42).cells == b.sample(kRowsPerRequest, 42).cells;
  }

  const std::size_t levels[] = {1, 8, 64};
  std::vector<LevelResult> results;
  for (std::size_t i = 0; i < 3; ++i) {
    results.push_back(run_level(daemon, port, levels[i], i));
  }
  daemon.drain();

  std::printf("{\n \"schema_version\": 1,\n \"rows_per_request\": %zu,\n"
              " \"requests_per_client\": %zu,\n \"deterministic\": %s,\n \"levels\": [",
              kRowsPerRequest, kRequestsPerClient, deterministic ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    std::printf("%s\n  {\"clients\": %zu, \"rows_per_sec\": %.1f, \"p50_ms\": %.3f, "
                "\"p99_ms\": %.3f, \"avg_batch_rows\": %.1f}",
                i == 0 ? "" : ",", r.clients, r.rows_per_sec, r.p50_ms, r.p99_ms,
                r.avg_batch_rows);
  }
  std::printf("\n ],\n \"speedup_64_vs_1\": %.2f\n}\n",
              results.back().rows_per_sec / results.front().rows_per_sec);
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace gtv::bench

int main() { return gtv::bench::run(); }
