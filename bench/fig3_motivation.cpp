// Figure 3 (motivation case study): F1 of an MLP trained on
//   Setting-A: the top-10% most important features (by Shapley value),
//   Setting-B: the remaining 90% of features,
//   Setting-C: all features,
// for each of the five benchmark datasets. The paper's claim: C > A, C > B,
// and neither A nor B dominates the other consistently.
#include <iostream>

#include "bench/bench_common.h"
#include "eval/classifiers.h"
#include "eval/features.h"
#include "eval/metrics.h"
#include "eval/shapley.h"

namespace gtv::bench {
namespace {

double mlp_f1(const data::Table& train, const data::Table& test, std::size_t target,
              Rng& rng) {
  eval::FeatureMatrix features;
  features.fit(train, target);
  eval::MlpClassifier mlp(100, 60);
  mlp.fit(features.transform(train), features.labels(train), features.n_classes(), rng);
  const auto pred = mlp.predict(features.transform(test));
  return eval::macro_f1(features.labels(test), pred, features.n_classes());
}

int run() {
  BenchConfig config = BenchConfig::from_env();
  std::cout << "=== Figure 3: motivation case study (MLP F1 by feature setting) ===\n";
  std::cout << "rows=" << config.rows << " shapley ranking via MC permutation sampling\n\n";
  std::cout << "dataset      Setting-A(top10%)  Setting-B(rest90%)  Setting-C(all)\n";

  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& name : config.datasets) {
    PreparedData data = prepare_dataset(name, config.rows, config.seed);
    Rng rng(config.seed ^ 0xf16'3);
    eval::ShapleyOptions shap;
    shap.samples = 120;
    auto ranked = eval::rank_features_by_importance(data.train, data.target, shap, rng);
    auto [top, rest] = eval::split_by_importance(ranked, 0.10);

    auto with_target = [&](std::vector<std::size_t> cols) {
      cols.push_back(data.target);
      return cols;
    };
    const auto cols_a = with_target(top);
    const auto cols_b = with_target(rest);

    const double f1_a = mlp_f1(data.train.select_columns(cols_a),
                               data.test.select_columns(cols_a), cols_a.size() - 1, rng);
    const double f1_b = mlp_f1(data.train.select_columns(cols_b),
                               data.test.select_columns(cols_b), cols_b.size() - 1, rng);
    const double f1_c = mlp_f1(data.train, data.test, data.target, rng);

    std::printf("%-12s %-18s %-19s %s\n", name.c_str(), format_double(f1_a).c_str(),
                format_double(f1_b).c_str(), format_double(f1_c).c_str());
    csv_rows.push_back({name, format_double(f1_a), format_double(f1_b), format_double(f1_c)});
  }
  write_csv(config.out_dir, "fig3_motivation.csv",
            {"dataset", "setting_a_f1", "setting_b_f1", "setting_c_f1"}, csv_rows);
  std::cout << "\npaper shape: Setting-C highest on every dataset; A vs B inconsistent.\n";
  std::cout << "csv: " << config.out_dir << "/fig3_motivation.csv\n";
  return 0;
}

}  // namespace
}  // namespace gtv::bench

int main() { return gtv::bench::run(); }
