// Figure 12 + Table 3 (lower half): client-number sweep for D_0^2 G_0^2.
#include "bench/experiments.h"

int main() {
  gtv::core::PartitionSpec partition{2, 0, 2, 0};  // G_0^2, D_0^2
  return gtv::bench::run_client_variation_bench(
      partition, "Figure 12 / Table 3: client number variation", "fig12_clients_g02.csv");
}
