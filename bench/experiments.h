// Shared runners for the paired figure benchmarks:
//   - data-partition sweep (Fig. 10 / Fig. 11 + Table 2)
//   - client-number sweep (Fig. 12 / Fig. 13 + Table 3)
#pragma once

#include "bench/bench_common.h"

namespace gtv::bench {

// Runs the 1090 / 5050 / 9010 Shapley-ranked data partitions for the given
// generator placement (Fig. 10: G_2^0, Fig. 11: G_0^2; discriminator fully
// on the server in both). Prints per-dataset metrics plus the Table 2
// Diff. Corr. rows and writes <csv_name>.
int run_data_partition_bench(const core::PartitionSpec& partition, const std::string& title,
                             const std::string& csv_name);

// Runs the 2..5-client sweep with default (256) and enlarged (768)
// generators for the given partition (Fig. 12: D_0^2 G_0^2,
// Fig. 13: D_0^2 G_2^0). Prints averaged metrics per client count plus the
// Table 3 Diff. Corr. rows and writes <csv_name>.
int run_client_variation_bench(const core::PartitionSpec& partition, const std::string& title,
                               const std::string& csv_name);

}  // namespace gtv::bench
