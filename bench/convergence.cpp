// Convergence ablation: synthetic-data quality vs training rounds for the
// centralized baseline and GTV (D_0^2 G_2^0). The paper trains 300 epochs;
// this curve shows how far the CPU-scale defaults are from the plateau and
// lets users pick GTV_BENCH_ROUNDS deliberately.
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "bench/bench_common.h"

namespace gtv::bench {
namespace {

int run() {
  BenchConfig config = BenchConfig::from_env();
  const std::string dataset = config.datasets.empty() ? "loan" : config.datasets.front();
  std::cout << "=== Convergence: quality vs training rounds (" << dataset << ") ===\n\n";
  PreparedData data = prepare_dataset(dataset, config.rows, config.seed);
  const auto groups = even_split_columns(data.train.n_cols(), 2);

  std::vector<std::size_t> checkpoints = {25, 50, 100};
  if (const char* env = std::getenv("GTV_BENCH_CHECKPOINTS")) {
    checkpoints.clear();
    std::stringstream ss(env);
    std::string item;
    while (std::getline(ss, item, ',')) checkpoints.push_back(std::stoul(item));
  }
  std::cout << "rounds  system       f1_diff  auc_diff  avg_jsd  avg_wd  diff_corr\n";
  std::vector<std::vector<std::string>> csv_rows;

  // Centralized curve: one model, evaluated at checkpoints.
  {
    gan::CentralizedTabularGan model(data.train, default_gan_options(config), config.seed);
    std::size_t done = 0;
    for (std::size_t checkpoint : checkpoints) {
      model.train(checkpoint - done);
      done = checkpoint;
      data::Table synthetic = model.sample(data.train.n_rows());
      MetricRow m = evaluate_synthetic(data, synthetic, groups, config.seed ^ done);
      std::printf("%-7zu centralized  %.4f   %.4f    %.4f   %.4f  %.3f\n", checkpoint,
                  m.f1_diff, m.auc_diff, m.avg_jsd, m.avg_wd, m.diff_corr);
      csv_rows.push_back({std::to_string(checkpoint), "centralized", format_double(m.f1_diff),
                          format_double(m.auc_diff), format_double(m.avg_jsd),
                          format_double(m.avg_wd), format_double(m.diff_corr)});
    }
  }
  // GTV curve.
  {
    core::GtvOptions options = default_gtv_options(config);
    options.partition = {0, 2, 2, 0};
    core::GtvTrainer trainer(data::vertical_split(data.train, groups), options, config.seed);
    std::size_t done = 0;
    for (std::size_t checkpoint : checkpoints) {
      trainer.train(checkpoint - done);
      done = checkpoint;
      data::Table synthetic = restore_column_order(trainer.sample(data.train.n_rows()), groups);
      MetricRow m = evaluate_synthetic(data, synthetic, groups, config.seed ^ done);
      std::printf("%-7zu gtv          %.4f   %.4f    %.4f   %.4f  %.3f\n", checkpoint,
                  m.f1_diff, m.auc_diff, m.avg_jsd, m.avg_wd, m.diff_corr);
      csv_rows.push_back({std::to_string(checkpoint), "gtv", format_double(m.f1_diff),
                          format_double(m.auc_diff), format_double(m.avg_jsd),
                          format_double(m.avg_wd), format_double(m.diff_corr)});
    }
  }
  write_csv(config.out_dir, "convergence.csv",
            {"rounds", "system", "f1_diff", "auc_diff", "avg_jsd", "avg_wd", "diff_corr"},
            csv_rows);
  std::cout << "\ncsv: " << config.out_dir << "/convergence.csv\n";
  return 0;
}

}  // namespace
}  // namespace gtv::bench

int main() { return gtv::bench::run(); }
