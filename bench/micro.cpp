// Microbenchmarks + ablations (google-benchmark): substrate throughput
// (matmul, autograd, GMM, encoder) and GTV per-round latency ablations
// (clients, exact vs top-only gradient penalty, shuffling on/off) that back
// the design choices called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include "core/gtv.h"
#include "data/datasets.h"
#include "encode/encoder.h"
#include "gan/losses.h"
#include "nn/module.h"

namespace gtv {
namespace {

void BM_MatmulSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::normal(n, n, 0.0f, 1.0f, rng);
  Tensor b = Tensor::normal(n, n, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_MatmulSquare)->Arg(64)->Arg(256)->Iterations(20);

// The transpose-free backward variants (a·bT and aT·b) at the same square
// shapes; parity with BM_MatmulSquare shows the backward pass no longer
// pays a transpose copy on top of the contraction.
void BM_MatmulNT(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::normal(n, n, 0.0f, 1.0f, rng);
  Tensor b = Tensor::normal(n, n, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul_nt(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_MatmulNT)->Arg(64)->Arg(256)->Iterations(20);

void BM_MatmulTN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::normal(n, n, 0.0f, 1.0f, rng);
  Tensor b = Tensor::normal(n, n, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul_tn(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_MatmulTN)->Arg(64)->Arg(256)->Iterations(20);

void BM_AutogradMlpBackward(benchmark::State& state) {
  Rng rng(2);
  nn::Sequential mlp;
  mlp.emplace<nn::Linear>(128, 256, rng);
  mlp.emplace<nn::ReLU>();
  mlp.emplace<nn::Linear>(256, 1, rng);
  Tensor x = Tensor::normal(64, 128, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    mlp.zero_grad();
    ag::backward(ag::mean_all(mlp.forward(ag::Var(x))));
  }
}
BENCHMARK(BM_AutogradMlpBackward)->Iterations(50);

void BM_GradientPenaltySecondOrder(benchmark::State& state) {
  Rng rng(3);
  gan::DiscriminatorNet d(64, 128, 2, 1, rng);
  Tensor real = Tensor::normal(64, 64, 0.0f, 1.0f, rng);
  Tensor fake = Tensor::normal(64, 64, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    d.zero_grad();
    ag::Var gp = gan::gradient_penalty([&](const ag::Var& x) { return d.forward(x); }, real,
                                       fake, rng);
    ag::backward(gp);
  }
}
BENCHMARK(BM_GradientPenaltySecondOrder)->Iterations(20);

void BM_GmmFit(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) {
    values.push_back(rng.uniform() < 0.5 ? rng.normal(-3, 1) : rng.normal(5, 2));
  }
  for (auto _ : state) {
    encode::GaussianMixture1D gmm;
    gmm.fit(values, encode::GmmOptions{}, rng);
    benchmark::DoNotOptimize(gmm.n_modes());
  }
}
BENCHMARK(BM_GmmFit)->Iterations(5);

void BM_EncodeAdult(benchmark::State& state) {
  Rng rng(5);
  data::Table t = data::make_adult(2000, rng);
  encode::TableEncoder enc;
  enc.fit(t, encode::EncoderOptions{}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(t, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_EncodeAdult)->Iterations(5);

core::GtvOptions tiny_gtv_options() {
  core::GtvOptions options;
  options.gan.noise_dim = 16;
  options.gan.hidden = 64;
  options.generator_hidden = 64;
  options.gan.batch_size = 32;
  options.gan.d_steps_per_round = 2;
  return options;
}

void BM_GtvRoundByClients(benchmark::State& state) {
  const auto n_clients = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  data::Table t = data::make_loan(300, rng);
  std::vector<std::vector<std::size_t>> groups(n_clients);
  for (std::size_t c = 0; c < t.n_cols(); ++c) groups[c % n_clients].push_back(c);
  core::GtvTrainer trainer(data::vertical_split(t, groups), tiny_gtv_options(), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train_round());
  }
}
BENCHMARK(BM_GtvRoundByClients)->Arg(2)->Arg(3)->Arg(5)->Iterations(3);

// Ablation: exact distributed WGAN-GP vs server-side (top-only) penalty.
void BM_GtvRoundGpMode(benchmark::State& state) {
  const bool exact = state.range(0) == 1;
  Rng rng(7);
  data::Table t = data::make_loan(300, rng);
  core::GtvOptions options = tiny_gtv_options();
  options.exact_gradient_penalty = exact;
  core::GtvTrainer trainer(
      data::vertical_split(t, {{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11, 12}}), options, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train_round());
  }
  state.SetLabel(exact ? "exact_gp" : "top_gp");
}
BENCHMARK(BM_GtvRoundGpMode)->Arg(1)->Arg(0)->Iterations(3);

// Ablation: cost of the training-with-shuffling defence.
void BM_GtvRoundShuffling(benchmark::State& state) {
  const bool shuffling = state.range(0) == 1;
  Rng rng(8);
  data::Table t = data::make_loan(300, rng);
  core::GtvOptions options = tiny_gtv_options();
  options.training_with_shuffling = shuffling;
  core::GtvTrainer trainer(
      data::vertical_split(t, {{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11, 12}}), options, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train_round());
  }
  state.SetLabel(shuffling ? "with_shuffling" : "no_shuffling");
}
BENCHMARK(BM_GtvRoundShuffling)->Arg(1)->Arg(0)->Iterations(3);

}  // namespace
}  // namespace gtv

BENCHMARK_MAIN();
