// The semi-honest server's inference attack of Fig. 5: the server records
// every (selected data index, conditional vector) pair it legitimately
// observes during training and builds an "inference table" mapping row
// indices to claimed categories of the clients' categorical columns.
//
// Without training-with-shuffling the claims stay valid and the server
// reconstructs the categorical part of the clients' data almost perfectly;
// with shuffling each round invalidates earlier claims and accuracy falls
// to chance. The evaluate() helper (which needs ground truth) exists only
// to *measure* the attack in experiments — the attacker itself only uses
// server-visible data.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "tensor/tensor.h"

namespace gtv::core {

class ServerInferenceAttack {
 public:
  // What one bit of the global CV means: a (column, category) claim against
  // the joined table. The paper argues the server can infer this layout
  // from the one-hot structure of observed CVs; we grant it directly.
  struct CvBit {
    std::size_t joined_column = 0;
    std::size_t category = 0;
  };

  void set_layout(std::vector<CvBit> bits) { bits_ = std::move(bits); }

  // Records one training step's observation: for each batch row b with a
  // hot CV bit, claim (idx[b], bit.column) = bit.category. Later claims for
  // the same cell overwrite earlier ones (the server keeps the freshest).
  void observe(const std::vector<std::size_t>& idx, const Tensor& global_cv);

  std::size_t observation_count() const { return observations_; }
  std::size_t claim_count() const { return claims_.size(); }

  struct Evaluation {
    std::size_t claims = 0;
    std::size_t correct = 0;
    double accuracy = 0.0;  // correct / claims (0 when no claims)
    double coverage = 0.0;  // claims / (rows * categorical columns claimed about)
  };
  // Scores the inference table against a reference joined table (the
  // clients' data as the attacker believes it to be ordered).
  Evaluation evaluate(const data::Table& reference) const;

 private:
  std::vector<CvBit> bits_;
  // (row << 20 | column) -> claimed category. Column count is far below 2^20.
  std::unordered_map<std::uint64_t, std::size_t> claims_;
  std::size_t observations_ = 0;
};

// The curious *client* in the peer-to-peer index-sharing variant
// (§3.1.6): a non-contributing client receives idx_p every step and — since
// it knows every shuffle seed — it can map the indices back to stable
// original row identities. The CV construction samples categories by
// log-frequency, which deliberately over-selects minority-category rows;
// a peer that simply counts how often each row is selected can therefore
// separate minority from majority rows of the CV contributor's column.
// Training-with-shuffling cannot defend here because the clients know the
// shuffle seed — which is exactly why the paper rejects the P2P variant.
class PeerSelectionFrequencyAttack {
 public:
  // One observed batch of ORIGINAL row identities.
  void observe(const std::vector<std::size_t>& original_rows);

  std::size_t observation_count() const { return observations_; }
  const std::unordered_map<std::size_t, std::size_t>& selection_counts() const {
    return counts_;
  }

  struct Evaluation {
    double minority_rate = 0.0;  // mean selections per minority-class row
    double majority_rate = 0.0;  // mean selections per other row
    double lift = 1.0;           // minority / majority (1.0 = no leak)
    // P(count of a random minority row > count of a random other row); the
    // Mann-Whitney separability of the two groups. 0.5 = no leak.
    double auc = 0.5;
  };
  // `categories[r]` is the true category of original row r in the victim's
  // column (ground truth, used only to score the attack). The minority is
  // the least frequent category.
  Evaluation evaluate(const std::vector<std::size_t>& categories) const;

 private:
  std::unordered_map<std::size_t, std::size_t> counts_;  // row -> selections
  std::size_t observations_ = 0;
};

}  // namespace gtv::core
