#include "core/gtv.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/resume.h"

#include "gan/losses.h"
#include "obs/health.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gtv::core {

using ag::Var;

namespace {

// Phase-duration histograms (milliseconds). Looked up once; recording is a
// couple of relaxed atomics per round, so the phases are always measured —
// that is what RoundTelemetry and the benchmark reports are built from.
obs::Histogram& phase_histogram(const char* phase) {
  return obs::MetricsRegistry::instance().histogram(std::string("gtv.phase.") + phase +
                                                    "_ms");
}

struct PhaseHistograms {
  obs::Histogram& round = phase_histogram("round");
  obs::Histogram& cv_generation = phase_histogram("cv_generation");
  obs::Histogram& fake_forward = phase_histogram("fake_forward");
  obs::Histogram& real_forward = phase_histogram("real_forward");
  obs::Histogram& critic_backward = phase_histogram("critic_backward");
  obs::Histogram& gradient_penalty = phase_histogram("gradient_penalty");
  obs::Histogram& generator_step = phase_histogram("generator_step");
  obs::Histogram& shuffle = phase_histogram("shuffle");

  static PhaseHistograms& get() {
    static PhaseHistograms h;
    return h;
  }
};

}  // namespace

GtvTrainer::GtvTrainer(std::vector<data::Table> client_tables, GtvOptions options,
                       std::uint64_t seed)
    : options_(options),
      seed_(seed),
      shuffle_stream_(options.shuffle_seed),
      publish_stream_(options.shuffle_seed ^ 0x9e3779b97f4a7c15ULL),
      health_monitor_(options.health.thresholds) {
  if (client_tables.empty()) throw std::invalid_argument("GtvTrainer: no clients");
  const std::size_t rows = client_tables.front().n_rows();
  std::vector<std::size_t> feature_counts;
  for (const auto& t : client_tables) {
    if (t.n_rows() != rows) {
      throw std::invalid_argument("GtvTrainer: client tables must be row-aligned");
    }
    feature_counts.push_back(t.n_cols());
  }
  initial_joined_ = data::Table::concat_columns(client_tables);

  const auto ratios = ratio_vector(feature_counts);
  const auto g_widths = proportional_widths(options_.generator_hidden, ratios);
  const auto d_widths = proportional_widths(options_.gan.hidden, ratios);

  Rng seeder(seed);
  std::vector<GtvServer::ClientInfo> infos;
  for (std::size_t i = 0; i < client_tables.size(); ++i) {
    clients_.push_back(std::make_unique<GtvClient>(i, std::move(client_tables[i]), options_,
                                                   g_widths[i], d_widths[i],
                                                   seeder.next_u64()));
    infos.push_back({clients_[i]->cv_width(), g_widths[i], d_widths[i]});
  }
  server_ = std::make_unique<GtvServer>(options_, std::move(infos), seeder.next_u64());

  // Name the Perfetto rows up front (remembered even if the sink opens
  // later): server = pid 0, client k = pid k + 1, trainer loop = driver.
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.declare_party(0, "server");
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    sink.declare_party(static_cast<int>(i) + 1, "client" + std::to_string(i));
  }
  sink.declare_party(obs::kDriverPid, "trainer");

  // Attack layout: global CV bit -> (joined-table column, category). The
  // paper argues the server can infer this structure from the one-hot
  // patterns; we hand it over for evaluation.
  std::vector<ServerInferenceAttack::CvBit> bits;
  std::size_t column_offset = 0;
  for (const auto& client : clients_) {
    for (const auto& span : client->encoder().discrete_spans()) {
      for (std::size_t k = 0; k < span.cardinality; ++k) {
        bits.push_back({column_offset + span.source_column, k});
      }
    }
    column_offset += client->n_features();
  }
  attack_.set_layout(std::move(bits));
}

std::string GtvTrainer::link_up(std::size_t client) const {
  return "client" + std::to_string(client) + "->server";
}

std::string GtvTrainer::link_down(std::size_t client) const {
  return "server->client" + std::to_string(client);
}

gan::RoundLosses GtvTrainer::critic_step(std::size_t batch, obs::RoundTelemetry& telemetry) {
  const std::size_t n = clients_.size();
  gan::RoundLosses losses;
  auto& phases = PhaseHistograms::get();
  std::optional<obs::ScopedTimer> span;
  std::optional<obs::MemPeakScope> mem;

  // --- CVGeneration (Algorithm 1, step 4) ------------------------------------
  span.emplace("cv_generation", &phases.cv_generation, &telemetry.cv_generation_ms,
               /*always=*/true);
  mem.emplace(&telemetry.mem_peak_bytes.cv_generation);
  const bool p2p = options_.index_sharing == IndexSharing::kPeerToPeer;
  const std::size_t p = server_->select_cv_client();
  auto sample = clients_[p]->sample_cv(batch);
  const Tensor cv_p = meter_.transfer(link_up(p), sample.cv);
  std::vector<std::size_t> idx;
  if (p2p) {
    // §3.1.6 alternative: indices go peer-to-peer; the server never sees
    // them, but every peer does — and peers know the shuffle history, so
    // they can track original row identities (the co-selection leak).
    for (std::size_t i = 0; i < n; ++i) {
      if (i == p) continue;
      const std::string link = "client" + std::to_string(p) + "->client" + std::to_string(i);
      idx = meter_.transfer(link, sample.rows);
      peer_attack_.observe(clients_[i]->original_rows(idx));
    }
    if (n == 1) idx = sample.rows;
  } else {
    idx = meter_.transfer(link_up(p), sample.rows);
  }
  const Tensor global_cv = server_->assemble_global_cv(p, cv_p, batch);
  if (!p2p) attack_.observe(idx, global_cv);  // semi-honest server curiosity
  mem.reset();
  span.reset();

  server_->zero_grad_discriminator();
  for (auto& client : clients_) client->zero_grad_discriminator();

  // --- fake path (steps 5-8): G frozen, D^b graphs retained per client -------
  span.emplace("fake_forward", &phases.fake_forward, &telemetry.fake_forward_ms,
               /*always=*/true);
  mem.emplace(&telemetry.mem_peak_bytes.fake_forward);
  const auto slices = server_->generator_forward(global_cv, /*retain_graph=*/false);
  std::vector<Var> fake_vars;
  fake_vars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor slice = meter_.transfer(link_down(i), slices[i]);
    const Tensor d_out = meter_.transfer(
        link_up(i), clients_[i]->privatize(clients_[i]->forward_fake(slice, false)));
    fake_vars.emplace_back(d_out, /*requires_grad=*/true);
  }
  mem.reset();
  span.reset();

  // --- real path (steps 9-15) --------------------------------------------------
  span.emplace("real_forward", &phases.real_forward, &telemetry.real_forward_ms,
               /*always=*/true);
  mem.emplace(&telemetry.mem_peak_bytes.real_forward);
  std::vector<Var> real_vars;
  real_vars.reserve(n);
  std::vector<std::size_t> real_full_rows(n, 0);  // rows each client forwarded
  for (std::size_t i = 0; i < n; ++i) {
    if (i == p || p2p) {
      // Client p always knows the indices; in the P2P variant every client
      // received them and forwards only the selected rows.
      const Tensor d_out = meter_.transfer(
          link_up(i), clients_[i]->privatize(
                          clients_[i]->forward_real_selected(i == p ? sample.rows : idx)));
      real_full_rows[i] = d_out.rows();
      real_vars.emplace_back(d_out, /*requires_grad=*/true);
    } else {
      // Non-contributing clients pass ALL their rows; the server selects.
      const Tensor d_out_full =
          meter_.transfer(link_up(i), clients_[i]->privatize(clients_[i]->forward_real_all()));
      real_full_rows[i] = d_out_full.rows();
      real_vars.emplace_back(d_out_full.gather_rows(idx), /*requires_grad=*/true);
    }
  }
  mem.reset();
  span.reset();

  // --- top loss (step 16) -----------------------------------------------------------
  obs::ScopedTimer backward_span("critic_backward", &phases.critic_backward,
                                 &telemetry.critic_backward_ms, /*always=*/true);
  obs::MemPeakScope backward_mem(&telemetry.mem_peak_bytes.critic_backward);
  Var cv_var = ag::constant(global_cv);
  Var d_fake = server_->critic_top(fake_vars, cv_var);
  Var d_real = server_->critic_top(real_vars, cv_var);
  Var critic = gan::wasserstein_critic_loss(d_real, d_fake);

  Var gp;
  span.emplace("gradient_penalty", &phases.gradient_penalty,
               &telemetry.gradient_penalty_ms, /*always=*/true);
  mem.emplace(&telemetry.mem_peak_bytes.gradient_penalty);
  if (options_.gan.critic_mode == gan::CriticMode::kWeightClipping) {
    gp = ag::constant(Tensor::scalar(0.0f));
  } else if (options_.exact_gradient_penalty) {
    // Simulation concession: exact WGAN-GP through the full distributed
    // critic. The interpolated rows never leave this closure; a deployment
    // would realize this with a split double-backprop protocol.
    std::vector<std::size_t> widths;
    std::vector<Tensor> fake_rows, real_rows;
    for (std::size_t i = 0; i < n; ++i) {
      widths.push_back(clients_[i]->encoded_width());
      fake_rows.push_back(clients_[i]->last_fake_encoded());
      real_rows.push_back(clients_[i]->encoded_rows(sample.rows));
    }
    const Tensor fake_x = Tensor::concat_cols(fake_rows);
    const Tensor real_x = Tensor::concat_cols(real_rows);
    auto critic_fn = [&](const Var& x) {
      std::vector<Var> parts;
      std::size_t offset = 0;
      for (std::size_t i = 0; i < n; ++i) {
        Var chunk = ag::slice_cols(x, offset, offset + widths[i]);
        parts.push_back(clients_[i]->discriminator_bottom().forward(chunk));
        offset += widths[i];
      }
      return server_->critic_top(parts, cv_var);
    };
    gp = gan::gradient_penalty(critic_fn, real_x, fake_x, server_->rng());
  } else {
    // Server-local penalty on D^t's concatenated input logits.
    std::vector<Tensor> fake_logits, real_logits;
    std::vector<std::size_t> widths;
    for (std::size_t i = 0; i < n; ++i) {
      fake_logits.push_back(fake_vars[i].value());
      real_logits.push_back(real_vars[i].value());
      widths.push_back(fake_vars[i].cols());
    }
    auto critic_fn = [&](const Var& x) {
      std::vector<Var> parts;
      std::size_t offset = 0;
      for (std::size_t w : widths) {
        parts.push_back(ag::slice_cols(x, offset, offset + w));
        offset += w;
      }
      return server_->critic_top(parts, cv_var);
    };
    gp = gan::gradient_penalty(critic_fn, Tensor::concat_cols(real_logits),
                               Tensor::concat_cols(fake_logits), server_->rng());
  }
  mem.reset();
  span.reset();

  Var loss = ag::add(critic, ag::mul_scalar(gp, options_.gan.gp_lambda));
  ag::backward(loss);

  // --- gradient return + bottom updates ---------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor fake_grad = meter_.transfer(link_down(i), fake_vars[i].grad());
    clients_[i]->backward_fake_discriminator(fake_grad);

    Tensor real_grad = real_vars[i].grad();
    if (i != p && !p2p) {
      // Scatter the selected-row gradients back into the full-table shape
      // the client forwarded (rows may repeat: accumulate).
      Tensor full(real_full_rows[i], real_grad.cols());
      for (std::size_t b = 0; b < idx.size(); ++b) {
        for (std::size_t c = 0; c < real_grad.cols(); ++c) {
          full(idx[b], c) += real_grad(b, c);
        }
      }
      real_grad = std::move(full);
    }
    clients_[i]->backward_real(meter_.transfer(link_down(i), real_grad));
  }
  server_->step_discriminator();
  for (auto& client : clients_) client->step_discriminator();
  if (options_.gan.critic_mode == gan::CriticMode::kWeightClipping) {
    gan::clip_parameters(server_->discriminator_parameters(), options_.gan.clip_value);
    for (auto& client : clients_) {
      gan::clip_parameters(client->discriminator_parameters(), options_.gan.clip_value);
    }
  }

  losses.d_loss = loss.value()(0, 0);
  losses.gp = gp.value()(0, 0);
  losses.wasserstein = -critic.value()(0, 0);
  return losses;
}

float GtvTrainer::generator_step(std::size_t batch, obs::RoundTelemetry& telemetry) {
  const std::size_t n = clients_.size();
  obs::ScopedTimer span("generator_step", &PhaseHistograms::get().generator_step,
                        &telemetry.generator_step_ms, /*always=*/true);
  obs::MemPeakScope mem(&telemetry.mem_peak_bytes.generator_step);

  // CVGeneration (step 18). The index list is transferred for protocol
  // fidelity even though the generator update does not consume it (in the
  // P2P variant it is simply not produced for this phase).
  const std::size_t p = server_->select_cv_client();
  auto sample = clients_[p]->sample_cv(batch);
  const Tensor cv_p = meter_.transfer(link_up(p), sample.cv);
  if (options_.index_sharing == IndexSharing::kServer) {
    const std::vector<std::size_t> idx = meter_.transfer(link_up(p), sample.rows);
    attack_.observe(idx, server_->assemble_global_cv(p, cv_p, batch));
  }
  const Tensor global_cv = server_->assemble_global_cv(p, cv_p, batch);
  if (options_.gan.use_conditional_loss) clients_[p]->set_pending_condition(sample);

  server_->zero_grad_generator();
  for (auto& client : clients_) client->zero_grad_generator();

  const auto slices = server_->generator_forward(global_cv, /*retain_graph=*/true);
  std::vector<Var> fake_vars;
  fake_vars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor slice = meter_.transfer(link_down(i), slices[i]);
    const Tensor d_out = meter_.transfer(
        link_up(i), clients_[i]->privatize(clients_[i]->forward_fake(slice, true)));
    fake_vars.emplace_back(d_out, /*requires_grad=*/true);
  }

  Var cv_var = ag::constant(global_cv);
  Var d_fake = server_->critic_top(fake_vars, cv_var);
  Var adv = gan::wasserstein_generator_loss(d_fake);
  ag::backward(adv);

  std::vector<Tensor> slice_grads;
  slice_grads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor d_out_grad = meter_.transfer(link_down(i), fake_vars[i].grad());
    slice_grads.push_back(meter_.transfer(link_up(i), clients_[i]->backward_generator(d_out_grad)));
  }
  server_->generator_backward(slice_grads);

  server_->step_generator();
  for (auto& client : clients_) client->step_generator();
  return adv.value()(0, 0);
}

gan::RoundLosses GtvTrainer::train_round() {
  const std::size_t batch = std::min(options_.gan.batch_size, clients_.front()->n_rows());
  gan::RoundLosses losses;
  obs::RoundTelemetry telemetry;
  telemetry.round = telemetry_.size();
  const std::map<std::string, net::LinkStats> traffic_before = meter_.all();
  {
    obs::ScopedTimer round_span("round", &PhaseHistograms::get().round,
                                &telemetry.total_ms, /*always=*/true);
    obs::MemPeakScope round_mem(&telemetry.mem_peak_bytes.total);
    for (std::size_t step = 0; step < options_.gan.d_steps_per_round; ++step) {
      losses = critic_step(batch, telemetry);
    }
    losses.g_loss = generator_step(batch, telemetry);

    if (options_.training_with_shuffling) {
      // Step 23: all clients shuffle with the same secret per-round seed.
      obs::ScopedTimer shuffle_span("shuffle", &PhaseHistograms::get().shuffle,
                                    &telemetry.shuffle_ms, /*always=*/true);
      obs::MemPeakScope shuffle_mem(&telemetry.mem_peak_bytes.shuffle);
      const std::uint64_t round_seed = shuffle_stream_.next_u64();
      for (auto& client : clients_) client->shuffle_local_data(round_seed);
    }
  }
  obs::publish_memory_gauges();
  telemetry.d_loss = losses.d_loss;
  telemetry.g_loss = losses.g_loss;
  telemetry.gp = losses.gp;
  telemetry.wasserstein = losses.wasserstein;
  // Per-link deltas charged by this round (links can appear mid-run).
  for (const auto& [link, stats] : meter_.all()) {
    const auto it = traffic_before.find(link);
    const net::LinkStats before = it == traffic_before.end() ? net::LinkStats{} : it->second;
    if (stats.bytes == before.bytes && stats.messages == before.messages) continue;
    telemetry.links.push_back(
        {link, stats.bytes - before.bytes, stats.messages - before.messages});
  }
  history_.push_back(losses);
  telemetry_.push_back(std::move(telemetry));
  if (obs::health_enabled()) collect_health(losses);
  return losses;
}

std::vector<obs::HealthAlert> GtvTrainer::health_alerts() const {
  std::vector<obs::HealthAlert> out;
  for (const auto& t : telemetry_) {
    out.insert(out.end(), t.health.alerts.begin(), t.health.alerts.end());
  }
  return out;
}

void GtvTrainer::collect_health(const gan::RoundLosses& losses) {
  obs::RoundHealth& health = telemetry_.back().health;
  health.collected = true;
  const std::size_t round = telemetry_.back().round;

  // Tier 1: optimizer-step statistics. The discriminator stats describe the
  // round's last critic step, the generator stats its single generator step
  // (same convention RoundLosses uses for d_loss/g_loss).
  const auto add = [&health](const std::string& module, const nn::AdamStepStats& s) {
    if (!s.collected) return;
    health.modules.push_back(
        {module, s.grad_norm, s.weight_norm, s.update_norm, s.grad_max_abs, s.nonfinite});
  };
  add("server.G", server_->adam_generator().last_step_stats());
  add("server.D", server_->adam_discriminator().last_step_stats());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const std::string prefix = "client" + std::to_string(i);
    add(prefix + ".G", clients_[i]->adam_generator().last_step_stats());
    add(prefix + ".D", clients_[i]->adam_discriminator().last_step_stats());
  }

  // Tier 3 collection (rule evaluation for it is warmup-gated downstream).
  if (options_.health.probe_interval > 0 &&
      (round + 1) % options_.health.probe_interval == 0) {
    run_probe(health);
  }

  health_monitor_.evaluate(round, losses.d_loss, losses.g_loss, losses.gp,
                           losses.wasserstein, health);

  if (on_alert_) {
    for (const auto& alert : health.alerts) on_alert_(alert);
  }
  if (options_.health.abort_on_fatal && health.has_fatal()) {
    for (const auto& alert : health.alerts) {
      if (alert.severity == obs::Severity::kFatal) throw FatalHealthError(alert);
    }
  }
}

void GtvTrainer::run_probe(obs::RoundHealth& health) {
  const std::size_t n = clients_.size();
  const std::size_t rows = std::max<std::size_t>(options_.health.probe_rows, 1);

  if (probe_reference_.empty()) {
    probe_reference_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const data::Table& real = clients_[i]->local_table();
      probe_reference_[i].reserve(real.n_cols());
      for (std::size_t c = 0; c < real.n_cols(); ++c) {
        ColumnReference ref;
        const auto& col = real.column(c);
        if (real.spec(c).type == data::ColumnType::kCategorical) {
          ref.categorical = true;
          ref.freq.assign(real.spec(c).cardinality(), 0.0);
          for (double v : col) {
            const auto k = static_cast<std::size_t>(v);
            if (k < ref.freq.size()) ref.freq[k] += 1.0;
          }
        } else {
          double sum = 0.0, sq = 0.0;
          for (double v : col) {
            sum += v;
            sq += v * v;
          }
          const double inv = col.empty() ? 0.0 : 1.0 / static_cast<double>(col.size());
          ref.mean = sum * inv;
          const double var = std::max(0.0, sq * inv - ref.mean * ref.mean);
          ref.stddev = std::sqrt(var);
        }
        probe_reference_[i].push_back(std::move(ref));
      }
    }
  }

  // Synthesis perturbs the server/client RNG streams (noise, CV sampling,
  // decode); snapshot and restore them so a probed run follows the exact
  // training trajectory of an unprobed one. The probe tensors also bypass
  // the TrafficMeter: this is local introspection, not protocol traffic,
  // and telemetry's per-round link deltas must keep summing to the meter
  // totals.
  const Rng server_rng = server_->rng();
  std::vector<Rng> client_rngs;
  client_rngs.reserve(n);
  for (auto& client : clients_) client_rngs.push_back(client->rng());

  server_->set_training(false);
  const std::size_t p = server_->select_cv_client();
  const Tensor cv_p = clients_[p]->sample_cv_original(rows);
  const Tensor global_cv = server_->assemble_global_cv(p, cv_p, rows);
  const auto slices = server_->generator_forward(global_cv, /*retain_graph=*/false);
  std::vector<data::Table> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards.push_back(clients_[i]->synthesize(slices[i]));
  server_->set_training(true);

  server_->rng() = server_rng;
  for (std::size_t i = 0; i < n; ++i) clients_[i]->rng() = client_rngs[i];

  for (std::size_t i = 0; i < n; ++i) {
    const data::Table& fake = shards[i];
    for (std::size_t c = 0; c < fake.n_cols(); ++c) {
      const ColumnReference& ref = probe_reference_[i][c];
      obs::ColumnProbe probe;
      probe.column = "client" + std::to_string(i) + "." + fake.spec(c).name;
      const auto& col = fake.column(c);
      if (ref.categorical) {
        std::vector<double> freq(ref.freq.size(), 0.0);
        for (double v : col) {
          const auto k = static_cast<std::size_t>(v);
          if (k < freq.size()) freq[k] += 1.0;
        }
        probe.jsd = obs::jensen_shannon(ref.freq, freq);
      } else {
        double sum = 0.0, sq = 0.0;
        for (double v : col) {
          sum += v;
          sq += v * v;
        }
        const double inv = col.empty() ? 0.0 : 1.0 / static_cast<double>(col.size());
        const double mean = sum * inv;
        const double stddev = std::sqrt(std::max(0.0, sq * inv - mean * mean));
        const double scale = std::max(ref.stddev, 1e-6);
        probe.mean_drift = (mean - ref.mean) / scale;
        probe.std_drift = (stddev - ref.stddev) / scale;
      }
      health.probes.push_back(std::move(probe));
    }
  }
}

void GtvTrainer::train(
    std::size_t rounds, const std::function<void(std::size_t, const gan::RoundLosses&)>& on_round) {
  for (std::size_t r = 0; r < rounds; ++r) {
    gan::RoundLosses losses = train_round();
    if (on_round) on_round(r, losses);
  }
}

void GtvTrainer::train(
    std::size_t rounds,
    const std::function<void(std::size_t, const gan::RoundLosses&, const obs::RoundTelemetry&)>&
        on_round) {
  for (std::size_t r = 0; r < rounds; ++r) {
    gan::RoundLosses losses = train_round();
    if (on_round) on_round(r, losses, telemetry_.back());
  }
}

std::vector<data::Table> GtvTrainer::sample_per_client(std::size_t rows) {
  const std::size_t n = clients_.size();
  server_->set_training(false);
  std::vector<std::vector<data::Table>> chunks(n);
  std::size_t produced = 0;
  const std::size_t batch = std::max<std::size_t>(options_.gan.batch_size, 1);
  while (produced < rows) {
    const std::size_t take = std::min(batch, rows - produced);
    const std::size_t p = server_->select_cv_client();
    const Tensor cv_p = meter_.transfer(link_up(p), clients_[p]->sample_cv_original(take));
    const Tensor global_cv = server_->assemble_global_cv(p, cv_p, take);
    const auto slices = server_->generator_forward(global_cv, /*retain_graph=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      const Tensor slice = meter_.transfer(link_down(i), slices[i]);
      chunks[i].push_back(clients_[i]->synthesize(slice));
    }
    produced += take;
  }
  server_->set_training(true);

  std::vector<data::Table> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    data::Table shard(chunks[i].front().schema());
    for (const auto& chunk : chunks[i]) {
      for (std::size_t r = 0; r < chunk.n_rows(); ++r) {
        std::vector<double> row(chunk.n_cols());
        for (std::size_t c = 0; c < chunk.n_cols(); ++c) row[c] = chunk.cell(r, c);
        shard.append_row(row);
      }
    }
    shards.push_back(std::move(shard));
  }
  // Secure publication: every client applies the same secret permutation so
  // the server cannot map generator inputs to published rows, while the
  // shards stay row-aligned with each other.
  const std::uint64_t publish_seed = publish_stream_.next_u64();
  for (auto& shard : shards) {
    Rng rng(publish_seed);
    shard.permute_rows(rng.permutation(shard.n_rows()));
  }
  return shards;
}

data::Table GtvTrainer::sample(std::size_t rows) {
  return data::Table::concat_columns(sample_per_client(rows));
}

serve::Checkpoint GtvTrainer::make_checkpoint(std::uint64_t model_hash) {
  serve::Checkpoint ckpt;
  ckpt.model_hash = model_hash;
  ckpt.seed = seed_;
  ckpt.rounds = history_.size();
  ckpt.noise_dim = options_.gan.noise_dim;
  ckpt.gumbel_tau = options_.gan.gumbel_tau;

  const auto& infos = server_->client_info();
  std::size_t g_total = 0;
  for (const auto& info : infos) g_total += info.g_slice_width;
  const serve::NetArch top_arch{options_.gan.noise_dim + server_->total_cv_width(),
                                options_.generator_hidden, options_.partition.g_top,
                                g_total};
  ckpt.g_top = serve::snapshot_net(top_arch, server_->generator_top());

  for (std::size_t i = 0; i < clients_.size(); ++i) {
    GtvClient& client = *clients_[i];
    serve::ClientPart part;
    part.cv_width = client.cv_width();
    part.g_slice_width = infos[i].g_slice_width;
    const serve::NetArch arch{infos[i].g_slice_width, infos[i].g_slice_width,
                              options_.partition.g_bottom, client.encoded_width()};
    part.g_bottom = serve::snapshot_net(arch, client.generator_bottom());
    part.encoder = client.encoder();
    ckpt.clients.push_back(std::move(part));
  }
  return ckpt;
}

void GtvTrainer::save_checkpoint(const std::string& path, std::uint64_t model_hash) {
  serve::save_checkpoint(make_checkpoint(model_hash), path);
}

serve::TrainCheckpoint GtvTrainer::make_train_checkpoint() const {
  serve::TrainCheckpoint ckpt;
  ckpt.seed = seed_;
  ckpt.round = history_.size();
  ckpt.shuffle_stream = shuffle_stream_.state();
  ckpt.publish_stream = publish_stream_.state();
  ckpt.history = history_;
  ckpt.server = capture_server_train_state(*server_);
  for (const auto& client : clients_) {
    ckpt.clients.push_back(capture_client_train_state(*client));
  }
  return ckpt;
}

void GtvTrainer::restore_train_state(const serve::TrainCheckpoint& ckpt) {
  if (ckpt.seed != seed_) {
    throw serve::CheckpointError("restore_train_state: checkpoint seed " +
                                 std::to_string(ckpt.seed) + " != trainer seed " +
                                 std::to_string(seed_));
  }
  if (ckpt.clients.size() != clients_.size()) {
    throw serve::CheckpointError("restore_train_state: checkpoint has " +
                                 std::to_string(ckpt.clients.size()) + " clients, trainer " +
                                 std::to_string(clients_.size()));
  }
  if (ckpt.history.size() != ckpt.round) {
    throw serve::CheckpointError("restore_train_state: history/round mismatch");
  }
  restore_server_train_state(*server_, ckpt.server);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    restore_client_train_state(*clients_[i], ckpt.clients[i]);
  }
  shuffle_stream_.set_state(ckpt.shuffle_stream);
  publish_stream_.set_state(ckpt.publish_stream);
  history_ = ckpt.history;
  // Keep telemetry_ parallel to history_ (train_round indexes rounds by
  // telemetry_.size()). Pre-crash phase timings are gone; the skeleton
  // records carry the round index and losses so reports stay coherent.
  telemetry_.clear();
  for (std::size_t r = 0; r < history_.size(); ++r) {
    obs::RoundTelemetry t;
    t.round = r;
    t.d_loss = history_[r].d_loss;
    t.g_loss = history_[r].g_loss;
    t.gp = history_[r].gp;
    t.wasserstein = history_[r].wasserstein;
    telemetry_.push_back(std::move(t));
  }
}

void GtvTrainer::save_train_checkpoint(const std::string& path) const {
  serve::save_train_checkpoint(make_train_checkpoint(), path);
}

void GtvTrainer::restore_train_state(const std::string& path) {
  restore_train_state(serve::load_train_checkpoint(path));
}

ServerInferenceAttack::Evaluation GtvTrainer::attack_evaluation() const {
  return attack_.evaluate(initial_joined_);
}

PeerSelectionFrequencyAttack::Evaluation GtvTrainer::peer_attack_evaluation(
    std::size_t joined_column) const {
  if (initial_joined_.spec(joined_column).type != data::ColumnType::kCategorical) {
    throw std::invalid_argument("peer_attack_evaluation: column must be categorical");
  }
  std::vector<std::size_t> categories;
  categories.reserve(initial_joined_.n_rows());
  for (double v : initial_joined_.column(joined_column)) {
    categories.push_back(static_cast<std::size_t>(v));
  }
  return peer_attack_.evaluate(categories);
}

}  // namespace gtv::core
