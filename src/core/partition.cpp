#include "core/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gtv::core {

std::vector<std::size_t> proportional_widths(std::size_t total,
                                             const std::vector<double>& ratios) {
  if (ratios.empty()) throw std::invalid_argument("proportional_widths: no ratios");
  if (total < ratios.size()) {
    throw std::invalid_argument("proportional_widths: total " + std::to_string(total) +
                                " smaller than party count " + std::to_string(ratios.size()));
  }
  double ratio_sum = 0.0;
  for (double r : ratios) {
    if (r <= 0.0) throw std::invalid_argument("proportional_widths: non-positive ratio");
    ratio_sum += r;
  }
  std::vector<std::size_t> widths(ratios.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    widths[i] = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(static_cast<double>(total) * ratios[i] /
                                               ratio_sum)));
    assigned += widths[i];
  }
  // Distribute the remainder (or claw back excess) starting from the
  // largest-ratio parties so the result is deterministic.
  std::vector<std::size_t> order(ratios.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ratios[a] > ratios[b]; });
  std::size_t cursor = 0;
  while (assigned < total) {
    widths[order[cursor % order.size()]] += 1;
    ++assigned;
    ++cursor;
  }
  while (assigned > total) {
    auto& w = widths[order[cursor % order.size()]];
    if (w > 1) {
      w -= 1;
      --assigned;
    }
    ++cursor;
  }
  return widths;
}

std::vector<double> ratio_vector(const std::vector<std::size_t>& feature_counts) {
  std::size_t total = 0;
  for (std::size_t c : feature_counts) total += c;
  if (total == 0) throw std::invalid_argument("ratio_vector: zero features");
  std::vector<double> ratios;
  ratios.reserve(feature_counts.size());
  for (std::size_t c : feature_counts) {
    if (c == 0) throw std::invalid_argument("ratio_vector: client with zero features");
    ratios.push_back(static_cast<double>(c) / static_cast<double>(total));
  }
  return ratios;
}

}  // namespace gtv::core
