// Multi-process GTV: one party per OS process.
//
// GtvTrainer runs Algorithm 1 with every party in one address space, the
// TrafficMeter looping each transfer back in-process. The node classes here
// split that same algorithm across real processes: a ServerNode owns the
// GtvServer, each ClientNode owns one GtvClient, and a DriverNode plays the
// trainer loop (round scheduling, the clients' secret shuffle stream, loss
// collection). All cross-party values travel through each node's
// TrafficMeter over a caller-supplied Transport — TCP for separate
// processes (tools/gtv-node), or loopback/chaos in tests.
//
// Loss parity: every party executes the exact op-and-RNG sequence its in-
// process counterpart executes inside GtvTrainer::critic_step /
// generator_step, so a distributed run reproduces the in-process losses
// bit-for-bit given the same seed. That only holds for configurations whose
// computation is already cleanly partitioned by party —
// NodeConfig::validate() rejects the simulation-only modes (exact gradient
// penalty, peer-to-peer index sharing) whose RNG or autograd state crosses
// the party boundary. DP noise is fine: each client draws from its own
// dp stream (GtvClient::privatize), so inproc and TCP trajectories agree.
//
// Control plane: the driver broadcasts one command frame per step
// ("driver->server", "driver->client<k>"); within a step the server tells
// the clients which one was selected as the CV contributor; the server
// reports per-step losses to the driver ("server->driver").
//
// Elastic federation: with set_train_checkpoint the driver periodically
// runs a kCmdCheckpointTrain barrier — every party ships its training
// state (core/resume.h) to the driver, which writes one atomic GTVT
// container. set_resume replays such a container through a kCmdRestore
// barrier before round 0. When a party dies mid-round (detected through
// the transport: a closed TCP connection fast-fails pending recvs), the
// survivors *park* — abandon the half round, drop split-backprop state and
// wait for driver commands — while the driver waits for the dead party to
// be relaunched with --rejoin, then replays the last coordinated
// checkpoint through the same kCmdRestore barrier. Every restored RNG
// stream resumes mid-sequence, so the recovered run's loss trajectory is
// bit-identical to an uninterrupted one.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/client.h"
#include "core/options.h"
#include "core/server.h"
#include "gan/ctabgan.h"
#include "net/wire.h"
#include "obs/snapshot.h"
#include "serve/checkpoint.h"

namespace gtv::core {

// Step commands broadcast by the driver. Encoded as an index vector
// {code, arg}: batch size for the step commands, the round's secret
// shuffle seed for kShuffle (sent to clients only — the server must never
// see it, same as in-process). kCmdCheckpoint asks every party to encode
// its serve::Checkpoint part and ship it to the driver, which assembles
// the container without ever seeing raw data. kCmdCheckpointTrain does the
// same for the *training* state (GTVT), and kCmdRestore pushes a saved
// training state back down: {code, completed-round}, followed by the
// party's encoded train part on the same command link; the party resets
// its data-plane links, restores, and acks {kCmdRestore} to the driver.
enum NodeCommand : std::size_t {
  kCmdCriticStep = 1,
  kCmdGeneratorStep = 2,
  kCmdShuffle = 3,
  kCmdFinish = 4,
  kCmdCheckpoint = 5,
  kCmdCheckpointTrain = 6,
  kCmdRestore = 7,
};

struct NodeConfig {
  GtvOptions options;
  std::size_t n_clients = 2;
  std::size_t rounds = 3;
  std::uint64_t seed = 7;
  // Rows in the (row-aligned) training shards; the driver derives the batch
  // size from it exactly like GtvTrainer::train_round does.
  std::size_t train_rows = 0;

  // Throws std::invalid_argument for configurations that cannot be
  // partitioned by party (see file comment).
  void validate() const;
};

// Seeds per party, drawn in GtvTrainer's construction order (clients in
// index order, then the server) so every process agrees without talking.
std::vector<std::uint64_t> party_seeds(std::uint64_t seed, std::size_t n_clients);

class ServerNode {
 public:
  // `g_widths` / `d_widths` are the per-client split widths, computed from
  // the public feature counts (core::proportional_widths) — every process
  // derives them identically from the dataset spec.
  ServerNode(NodeConfig config, std::vector<std::size_t> g_widths,
             std::vector<std::size_t> d_widths);

  void set_transport(std::shared_ptr<net::Transport> transport) {
    meter_.set_transport(std::move(transport));
  }
  net::TrafficMeter& traffic() { return meter_; }

  // Optional telemetry hook (must outlive the node): round/phase/loss
  // progress is mirrored into `status` with relaxed atomic stores at step
  // boundaries, so a SnapshotPublisher can watch the run without touching
  // the training path.
  void set_live_status(obs::agg::LiveStatus* status) { status_ = status; }

  // Elastic mode: a TransportError during a step parks the round (drops
  // split state, pokes blocked peers, returns to the command loop) instead
  // of crashing, so the driver can replay from the last train checkpoint.
  void set_elastic(bool elastic) { elastic_ = elastic; }

  // Performs the setup handshake (clients report their CV widths), then
  // serves driver commands until kCmdFinish.
  void run();

 private:
  void critic_step(std::size_t batch);
  void generator_step(std::size_t batch);
  // Abandons a half-finished round: drops split state and delivers one
  // empty "poison" frame per peer link so parties blocked in a data recv
  // fail fast instead of burning their full retry budget.
  void park_round();
  // kCmdRestore: reset data links, receive + apply this party's train part,
  // ack the driver.
  void restore_train();
  std::string link_up(std::size_t client) const;
  std::string link_down(std::size_t client) const;

  NodeConfig config_;
  std::vector<std::size_t> g_widths_;
  std::vector<std::size_t> d_widths_;
  std::unique_ptr<GtvServer> server_;
  net::TrafficMeter meter_;
  obs::agg::LiveStatus* status_ = nullptr;
  bool elastic_ = false;
};

class ClientNode {
 public:
  ClientNode(NodeConfig config, std::size_t id, data::Table local_table,
             std::size_t g_width, std::size_t d_width);

  void set_transport(std::shared_ptr<net::Transport> transport) {
    meter_.set_transport(std::move(transport));
  }
  net::TrafficMeter& traffic() { return meter_; }

  // Telemetry hook; see ServerNode::set_live_status.
  void set_live_status(obs::agg::LiveStatus* status) { status_ = status; }

  // Elastic mode; see ServerNode::set_elastic.
  void set_elastic(bool elastic) { elastic_ = elastic; }
  // Rejoin after a crash: skip the setup CV-width report (the surviving
  // server already holds it) and wait for the driver's kCmdRestore.
  void set_rejoin(bool rejoin) { rejoin_ = rejoin; }

  // Reports this client's CV width to the server, then serves driver
  // commands until kCmdFinish.
  void run();

 private:
  void critic_step(std::size_t batch);
  void generator_step(std::size_t batch);
  void restore_train();
  std::string link_up() const;    // client<id> -> server
  std::string link_down() const;  // server -> client<id>

  NodeConfig config_;
  std::size_t id_;
  std::size_t g_width_ = 0;  // this client's split-generator slice width
  std::unique_ptr<GtvClient> client_;
  net::TrafficMeter meter_;
  obs::agg::LiveStatus* status_ = nullptr;
  bool elastic_ = false;
  bool rejoin_ = false;
};

class DriverNode {
 public:
  explicit DriverNode(NodeConfig config);

  void set_transport(std::shared_ptr<net::Transport> transport) {
    meter_.set_transport(std::move(transport));
  }
  net::TrafficMeter& traffic() { return meter_; }

  // Telemetry hook; see ServerNode::set_live_status.
  void set_live_status(obs::agg::LiveStatus* status) { status_ = status; }

  // After training, collect every party's checkpoint part and write the
  // assembled serve::Checkpoint container here. The stamped model_hash is
  // the FNV-1a hash of a 64-row Synthesizer sample seeded with the run
  // seed, so repeat runs of the same config produce the same stamp.
  void set_checkpoint_out(std::string path) { checkpoint_out_ = std::move(path); }
  std::uint64_t checkpoint_hash() const { return checkpoint_hash_; }

  // Coordinated train checkpoints: after every `every` completed rounds the
  // driver runs a kCmdCheckpointTrain barrier and writes the assembled GTVT
  // container to `path` (atomic tmp+rename, each write replacing the last).
  // The in-memory copy doubles as the crash-recovery replay point.
  void set_train_checkpoint(std::string path, std::size_t every);
  // Resume: load `path` (a GTVT container) and push it through a
  // kCmdRestore barrier before round 0, then train the remaining rounds.
  void set_resume(std::string path);
  // How long recover() waits for a dead party to be relaunched.
  void set_rejoin_wait_ms(int ms) { rejoin_wait_ms_ = ms; }
  // Rounds skipped by --resume (0 when starting fresh).
  std::size_t resumed_from() const { return resumed_from_; }
  // Successful crash recoveries performed during run().
  std::size_t recoveries() const { return recoveries_; }

  // Runs the full schedule (rounds x (d_steps x critic + generator +
  // shuffle)), then collects the checkpoint (when requested) and
  // broadcasts kCmdFinish. Returns one RoundLosses per round,
  // field-for-field what GtvTrainer::train_round returns.
  std::vector<gan::RoundLosses> run();

 private:
  void broadcast(NodeCommand code, std::size_t arg, bool include_server);
  void collect_checkpoint();
  // kCmdCheckpointTrain barrier: collect every party's train part, stamp in
  // the driver streams + history, write the GTVT container.
  void collect_train_checkpoint(const std::vector<gan::RoundLosses>& history);
  // kCmdRestore barrier: push last_train_ckpt_ to every party, wait for
  // acks, restore the driver's own streams. Returns the restored history.
  std::vector<gan::RoundLosses> distribute_restore();
  // Crash recovery: identify dead peers, wait for their --rejoin relaunch,
  // reset their links, then distribute_restore().
  std::vector<gan::RoundLosses> recover();
  // Reads index frames off `link` until one equals {kCmdRestore}, skipping
  // frames left over from the aborted round (stale losses, park poison).
  void await_restore_ack(const std::string& link);

  NodeConfig config_;
  Rng shuffle_stream_;
  Rng publish_stream_;  // mirror of GtvTrainer's (only advanced by sampling)
  net::TrafficMeter meter_;
  obs::agg::LiveStatus* status_ = nullptr;
  std::string checkpoint_out_;
  std::uint64_t checkpoint_hash_ = 0;
  std::string train_ckpt_path_;
  std::size_t train_ckpt_every_ = 0;
  std::string resume_path_;
  int rejoin_wait_ms_ = 30000;
  std::size_t resumed_from_ = 0;
  std::size_t recoveries_ = 0;
  std::unique_ptr<serve::TrainCheckpoint> last_train_ckpt_;
};

}  // namespace gtv::core
