// Neural-network partition specifications (paper §4.3.1, Fig. 7).
//
// The paper's notation D_{n4}^{n3} G_{n2}^{n1} puts n3 FN blocks of the
// discriminator and n1 RN blocks of the generator on the server (top
// models) and n4 / n2 blocks in every client (bottom models). Block widths
// on the client side are split proportionally to the feature-ratio vector
// P_r, with the total width kept equal to the centralized width.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gtv::core {

struct PartitionSpec {
  std::size_t g_top = 0;     // n1: generator RN blocks on the server
  std::size_t g_bottom = 2;  // n2: generator RN blocks in each client
  std::size_t d_top = 2;     // n3: discriminator FN blocks on the server
  std::size_t d_bottom = 0;  // n4: discriminator FN blocks in each client

  // Paper-style name, e.g. "D2^0 G0^2" is printed as "D_0^2 G_2^0" meaning
  // d_top=2, d_bottom=0, g_top=0, g_bottom=2.
  std::string name() const {
    return "D_" + std::to_string(d_bottom) + "^" + std::to_string(d_top) + " G_" +
           std::to_string(g_bottom) + "^" + std::to_string(g_top);
  }

  // The nine combinations evaluated in Fig. 8 (block counts sum to 2).
  static std::vector<PartitionSpec> all_nine() {
    std::vector<PartitionSpec> specs;
    for (std::size_t d_top = 0; d_top <= 2; ++d_top) {
      for (std::size_t g_top = 0; g_top <= 2; ++g_top) {
        specs.push_back({g_top, 2 - g_top, d_top, 2 - d_top});
      }
    }
    return specs;
  }
};

// Splits `total` into one width per ratio, each at least 1, summing exactly
// to `total`. Ratios must be positive and total >= ratios.size().
std::vector<std::size_t> proportional_widths(std::size_t total,
                                             const std::vector<double>& ratios);

// P_r: per-client share of the total feature count.
std::vector<double> ratio_vector(const std::vector<std::size_t>& feature_counts);

}  // namespace gtv::core
