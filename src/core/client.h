// A GTV client: owns one vertical shard of the training table, the bottom
// generator G^b_i and bottom discriminator D^b_i, its local encoder and
// conditional-vector sampler, and the shared-seed Shuffle.
//
// All tensors returned by / passed into the forward/backward methods are
// plain values — the trainer routes them through the TrafficMeter, which is
// the simulated network boundary. Autograd graphs never cross parties;
// backward passes resume from explicit gradient seeds received over the
// wire (split backprop).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/options.h"
#include "data/table.h"
#include "encode/cond.h"
#include "encode/encoder.h"
#include "gan/ctabgan.h"
#include "nn/adam.h"

namespace gtv::core {

class GtvClient {
 public:
  GtvClient(std::size_t id, data::Table local, const GtvOptions& options,
            std::size_t g_slice_width, std::size_t d_out_width, std::uint64_t seed);

  std::size_t id() const { return id_; }
  std::size_t n_features() const { return table_.n_cols(); }
  std::size_t n_rows() const { return table_.n_rows(); }
  std::size_t encoded_width() const { return encoder_.total_width(); }
  std::size_t cv_width() const { return cond_->cv_width(); }
  std::size_t d_out_width() const { return d_out_width_; }

  // --- conditional-vector duty (when this client is the selected p) ---------
  encode::ConditionalSampler::Sample sample_cv(std::size_t batch);
  void set_pending_condition(const encode::ConditionalSampler::Sample& sample);
  // Synthesis-time CV (original category frequencies).
  Tensor sample_cv_original(std::size_t batch) { return cond_->sample_original(batch, rng_); }

  // --- generator path ----------------------------------------------------------
  Tensor forward_fake(const Tensor& g_slice, bool train_generator);
  Tensor backward_generator(const Tensor& grad_d_out);
  void backward_fake_discriminator(const Tensor& grad_d_out);

  // --- real path (discriminator phase) -------------------------------------------
  Tensor forward_real_all();
  Tensor forward_real_selected(const std::vector<std::size_t>& idx);
  void backward_real(const Tensor& grad_d_out);

  // --- optimization ----------------------------------------------------------------
  void zero_grad_discriminator() { adam_d_->zero_grad(); }
  void zero_grad_generator() { adam_g_->zero_grad(); }
  void step_discriminator() { adam_d_->step(); }
  void step_generator() { adam_g_->step(); }

  // --- training-with-shuffling --------------------------------------------------------
  void shuffle_local_data(std::uint64_t round_seed);

  // --- differential privacy ------------------------------------------------------------
  // Adds Gaussian noise (options.dp_noise_std) to an outbound activation or
  // gradient, drawn from this client's own dp stream — never from a shared
  // trainer-owned RNG, so inproc and TCP runs privatize identically. No-op
  // when dp_noise_std == 0.
  Tensor privatize(Tensor t);

  // --- elastic federation (train-resume) ----------------------------------------------
  // Reorders the current rows so row r holds original row target[r] again —
  // a rejoining client rebuilds its shard from data (identity order) and
  // replays the net effect of every pre-crash shuffle in one permutation.
  void restore_row_order(const std::vector<std::size_t>& target);
  // Drops any half-finished split-backprop state (a crash can interrupt a
  // round between forward and backward; resume restarts the whole round).
  void clear_pending();

  // --- synthesis -------------------------------------------------------------------------
  data::Table synthesize(const Tensor& g_slice);

  // --- simulation / evaluation access (not part of the deployed protocol) ---
  nn::Module& discriminator_bottom() { return *d_bottom_; }
  // Bottom generator module, exposed for checkpointing (serve::snapshot_net).
  nn::Module& generator_bottom() { return *g_bottom_; }
  std::vector<ag::Var> discriminator_parameters() { return d_bottom_->parameters(); }
  Tensor encoded_rows(const std::vector<std::size_t>& idx) const;
  // Encoded synthetic rows produced by the most recent discriminator-phase
  // forward_fake (input side of the exact gradient penalty).
  const Tensor& last_fake_encoded() const { return last_fake_encoded_; }
  // Maps current row indices to the pre-training ("original") row identity.
  // Clients can always do this because they know every shuffle seed — which
  // is exactly why P2P index sharing leaks (§3.1.6).
  std::vector<std::size_t> original_rows(const std::vector<std::size_t>& idx) const;
  const data::Table& local_table() const { return table_; }
  const encode::TableEncoder& encoder() const { return encoder_; }
  // Optimizer handles for health monitoring (last_step_stats of G^b / D^b).
  nn::Adam& adam_generator() { return *adam_g_; }
  nn::Adam& adam_discriminator() { return *adam_d_; }
  // Local RNG, exposed so the trainer's sample-quality probe can snapshot
  // and restore it (probes must not perturb the training stream).
  Rng& rng() { return rng_; }
  // DP noise stream, exposed for train-resume state capture.
  Rng& dp_rng() { return dp_rng_; }
  const std::vector<std::size_t>& original_row_order() const { return original_row_; }
  std::size_t generator_parameter_count();
  std::size_t discriminator_parameter_count();

 private:
  ag::Var run_generator_bottom(const ag::Var& slice_in, ag::Var* raw_logits);

  std::size_t id_;
  data::Table table_;
  GtvOptions options_;
  std::size_t d_out_width_;
  Rng rng_;
  Rng dp_rng_;  // per-client DP noise stream, derived from the party seed
  encode::TableEncoder encoder_;
  std::unique_ptr<encode::ConditionalSampler> cond_;
  Tensor encoded_;

  std::unique_ptr<gan::GeneratorNet> g_bottom_;
  std::unique_ptr<gan::DiscriminatorNet> d_bottom_;
  std::unique_ptr<nn::Adam> adam_g_;
  std::unique_ptr<nn::Adam> adam_d_;

  // Split-backprop state retained between forward and backward calls.
  struct PendingGenerator {
    ag::Var slice_in;  // leaf over the received split
    ag::Var logits;    // raw generator output (conditional loss target)
    ag::Var d_out;
  };
  std::optional<PendingGenerator> pending_generator_;
  std::optional<ag::Var> pending_fake_d_;
  std::optional<ag::Var> pending_real_;
  Tensor last_fake_encoded_;
  std::vector<std::size_t> original_row_;  // original identity of each current row
  std::optional<encode::ConditionalSampler::Sample> pending_condition_;
};

}  // namespace gtv::core
