// The GTV server (trusted third party): owns the top generator G^t, top
// discriminator D^t, the conditional-vector filter D^s, and the Split /
// Concat bookkeeping. It selects the CV-contributing client each step
// (weighted by the feature-ratio vector P_r) and assembles the global
// conditional vector from the selected client's local CV.
//
// The server never sees raw client rows, client encoders, or the shuffle
// seed — only intermediate logits, conditional vectors and the selected
// data indices, exactly as in Algorithm 1.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/options.h"
#include "gan/ctabgan.h"
#include "nn/adam.h"

namespace gtv::core {

class GtvServer {
 public:
  struct ClientInfo {
    std::size_t cv_width = 0;       // width of the client's local CV segment
    std::size_t g_slice_width = 0;  // share of the split generator logits
    std::size_t d_out_width = 0;    // width of the client's D^b output
  };

  GtvServer(const GtvOptions& options, std::vector<ClientInfo> clients, std::uint64_t seed);

  std::size_t n_clients() const { return clients_.size(); }
  std::size_t total_cv_width() const { return total_cv_; }
  const std::vector<double>& ratio() const { return ratio_; }
  const std::vector<ClientInfo>& client_info() const { return clients_; }

  // CVGeneration: pick the contributing client p ~ P_r.
  std::size_t select_cv_client();

  // Places client p's local CV rows into the global CV layout (zeros for
  // all other clients' segments).
  Tensor assemble_global_cv(std::size_t p, const Tensor& cv_p, std::size_t batch) const;

  // --- generator top -------------------------------------------------------------
  // Runs G^t(noise ++ cv) and splits the interface logits by P_r. With
  // retain_graph the split Vars are kept so generator_backward can resume
  // from the slice gradients returned by the clients.
  std::vector<Tensor> generator_forward(const Tensor& global_cv, bool retain_graph);
  void generator_backward(const std::vector<Tensor>& slice_grads);

  // --- discriminator top ----------------------------------------------------------
  // D^t(Concat(client logits ..., D^s(cv))) -> batch x 1 critic scores.
  // Graph flows through D^t / D^s parameters and through the given Vars.
  ag::Var critic_top(const std::vector<ag::Var>& client_logits, const ag::Var& global_cv);

  // --- optimization ------------------------------------------------------------------
  void zero_grad_generator() { adam_g_->zero_grad(); }
  void step_generator() { adam_g_->step(); }
  void zero_grad_discriminator() { adam_d_->zero_grad(); }
  void step_discriminator() { adam_d_->step(); }

  void set_training(bool training);

  // Optimizer handles for health monitoring (last_step_stats of G^t / D^t+D^s).
  nn::Adam& adam_generator() { return *adam_g_; }
  nn::Adam& adam_discriminator() { return *adam_d_; }

  std::size_t noise_dim() const { return options_.gan.noise_dim; }
  Rng& rng() { return rng_; }
  // Top generator module, exposed for checkpointing (serve::snapshot_net).
  nn::Module& generator_top() { return *g_top_; }
  // Top discriminator / CV filter, exposed for train-resume state capture.
  // d_s() is null when the run has no discrete columns.
  nn::Module& discriminator_top() { return *d_top_; }
  nn::Linear* d_s() { return d_s_.get(); }
  // Drops half-finished split state; resume restarts the whole round.
  void clear_pending() { pending_slices_.reset(); }
  std::size_t generator_parameter_count() { return g_top_->parameter_count(); }
  std::size_t discriminator_parameter_count();
  // All top-side critic parameters (D^t and D^s), for weight clipping.
  std::vector<ag::Var> discriminator_parameters();

 private:
  GtvOptions options_;
  std::vector<ClientInfo> clients_;
  std::vector<double> ratio_;
  std::size_t total_cv_ = 0;
  Rng rng_;

  std::unique_ptr<gan::GeneratorNet> g_top_;
  std::unique_ptr<gan::DiscriminatorNet> d_top_;
  std::unique_ptr<nn::Linear> d_s_;  // null when there are no discrete columns
  std::unique_ptr<nn::Adam> adam_g_;
  std::unique_ptr<nn::Adam> adam_d_;

  // Split state retained between generator_forward and generator_backward.
  std::optional<std::vector<ag::Var>> pending_slices_;
};

}  // namespace gtv::core
