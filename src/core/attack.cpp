#include "core/attack.h"

#include <set>
#include <stdexcept>

namespace gtv::core {

void ServerInferenceAttack::observe(const std::vector<std::size_t>& idx,
                                    const Tensor& global_cv) {
  if (global_cv.cols() != bits_.size()) {
    throw std::invalid_argument("ServerInferenceAttack::observe: CV width mismatch");
  }
  if (idx.size() != global_cv.rows()) {
    throw std::invalid_argument("ServerInferenceAttack::observe: index count mismatch");
  }
  for (std::size_t b = 0; b < idx.size(); ++b) {
    for (std::size_t c = 0; c < bits_.size(); ++c) {
      if (global_cv(b, c) == 1.0f) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(idx[b]) << 20) | bits_[c].joined_column;
        claims_[key] = bits_[c].category;
      }
    }
  }
  ++observations_;
}

ServerInferenceAttack::Evaluation ServerInferenceAttack::evaluate(
    const data::Table& reference) const {
  Evaluation eval;
  std::set<std::size_t> columns_claimed;
  for (const auto& [key, category] : claims_) {
    const std::size_t row = static_cast<std::size_t>(key >> 20);
    const std::size_t col = static_cast<std::size_t>(key & ((1u << 20) - 1));
    if (row >= reference.n_rows() || col >= reference.n_cols()) continue;
    columns_claimed.insert(col);
    ++eval.claims;
    if (static_cast<std::size_t>(reference.cell(row, col)) == category) ++eval.correct;
  }
  eval.accuracy = eval.claims > 0 ? static_cast<double>(eval.correct) / eval.claims : 0.0;
  const double cells =
      static_cast<double>(reference.n_rows()) * static_cast<double>(columns_claimed.size());
  eval.coverage = cells > 0 ? static_cast<double>(eval.claims) / cells : 0.0;
  return eval;
}

void PeerSelectionFrequencyAttack::observe(const std::vector<std::size_t>& original_rows) {
  for (std::size_t row : original_rows) ++counts_[row];
  ++observations_;
}

PeerSelectionFrequencyAttack::Evaluation PeerSelectionFrequencyAttack::evaluate(
    const std::vector<std::size_t>& categories) const {
  // Identify the minority class.
  std::unordered_map<std::size_t, std::size_t> class_sizes;
  for (std::size_t c : categories) ++class_sizes[c];
  std::size_t minority = 0;
  std::size_t smallest = static_cast<std::size_t>(-1);
  for (const auto& [cls, size] : class_sizes) {
    if (size < smallest) {
      smallest = size;
      minority = cls;
    }
  }

  std::vector<double> minority_counts, other_counts;
  for (std::size_t r = 0; r < categories.size(); ++r) {
    const auto it = counts_.find(r);
    const double count = it == counts_.end() ? 0.0 : static_cast<double>(it->second);
    (categories[r] == minority ? minority_counts : other_counts).push_back(count);
  }

  Evaluation eval;
  auto mean = [](const std::vector<double>& v) {
    double total = 0.0;
    for (double x : v) total += x;
    return v.empty() ? 0.0 : total / static_cast<double>(v.size());
  };
  eval.minority_rate = mean(minority_counts);
  eval.majority_rate = mean(other_counts);
  eval.lift = eval.majority_rate > 1e-12 ? eval.minority_rate / eval.majority_rate
                                         : (eval.minority_rate > 0 ? 1e9 : 1.0);
  // Mann-Whitney separability.
  if (!minority_counts.empty() && !other_counts.empty()) {
    double wins = 0.0;
    for (double m : minority_counts) {
      for (double o : other_counts) {
        if (m > o) {
          wins += 1.0;
        } else if (m == o) {
          wins += 0.5;
        }
      }
    }
    eval.auc = wins / (static_cast<double>(minority_counts.size()) *
                       static_cast<double>(other_counts.size()));
  }
  return eval;
}

}  // namespace gtv::core
