// Configuration for GTV training.
#pragma once

#include <cstdint>

#include "core/partition.h"
#include "gan/ctabgan.h"
#include "obs/health.h"

namespace gtv::core {

// Who learns the selected data indices idx_p each step (§3.1.6).
enum class IndexSharing {
  // Paper's design: client p shares idx_p with the server only; other
  // clients pass ALL rows and the server selects. Defended by
  // training-with-shuffling.
  kServer,
  // The alternative the paper rejects: idx_p goes peer-to-peer to the
  // other clients, who forward only the selected rows. Cheaper, but the
  // co-selection pattern leaks category membership to curious clients —
  // and shuffling cannot help, because the clients know the shuffle seed.
  kPeerToPeer,
};

struct GtvOptions {
  // Shared GAN hyper-parameters. `gan.hidden` is the *total* discriminator
  // FN width across parties (256 in the paper); client FN blocks receive a
  // P_r-proportional share of it.
  gan::GanOptions gan;
  // How G / D blocks are placed between server and clients.
  PartitionSpec partition{0, 2, 2, 0};  // paper's preferred D_0^2 G_2^0
  // Total generator RN width across parties. 256 = paper's "default"
  // setting, 768 = the "enlarged" generator of §4.3.3.
  std::size_t generator_hidden = 256;
  // Shared secret negotiated among clients before training; the server
  // (GtvServer) never reads it.
  std::uint64_t shuffle_seed = 0x5eedf00dULL;
  // The training-with-shuffling defence (§3.1.5). Disabling it reproduces
  // the Fig. 5 reconstruction attack.
  bool training_with_shuffling = true;
  // Exact WGAN-GP through the whole distributed critic (cross-party
  // double-backprop, available because all parties run in-process; a real
  // deployment would need the split double-backprop protocol). When false,
  // the penalty is applied on the server to D^t's concatenated input only.
  bool exact_gradient_penalty = true;
  // How idx_p is distributed (see IndexSharing).
  IndexSharing index_sharing = IndexSharing::kServer;
  // Optional local-DP-style Gaussian noise added by clients to every
  // intermediate activation they send to the server (std in activation
  // units; 0 disables). The paper discusses — and rejects — this
  // protection because of its accuracy cost; the ablation bench measures
  // that cost.
  float dp_noise_std = 0.0f;
  // Training-health monitoring (gtv::obs::health). Collection itself is
  // armed by GTV_HEALTH=1 (or obs::set_health_enabled); these options only
  // tune what armed collection does — detector thresholds, how often the
  // sample-quality probe runs, and whether a fatal alert aborts training.
  obs::HealthOptions health;
};

}  // namespace gtv::core
