// GtvTrainer — the public entry point of the GTV framework.
//
// It wires the trusted-third-party server and the clients together and
// executes Algorithm 1 of the paper:
//
//   per round:
//     e x critic step:
//       CVGeneration: server picks client p ~ P_r; p samples local CVs and
//         matching row indices; both go to the server (wire).
//       fake path: G^t(Z ++ CV) -> Split -> clients -> G^b_i -> D^b_i -> server.
//       real path: client p forwards T_p[idx_p]; every other client forwards
//         ALL its rows; the server selects idx_p from their logits.
//       server computes the WGAN-GP critic loss on
//         D^t(Concat(..., D^s(CV))) and returns gradients over the wire;
//       split backprop updates {D^t, D^s, D^b_i}.
//     1 x generator step: same forward, loss -mean(D(fake)) + client-local
//       conditional term; split backprop updates {G^t, G^b_i}.
//     training-with-shuffling: every client permutes its rows with the same
//       secret per-round seed (server never sees it).
//
// Every cross-party tensor/index passes through a TrafficMeter, which both
// enforces serializability and records the communication volume per link.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/attack.h"
#include "core/client.h"
#include "core/options.h"
#include "core/server.h"
#include "net/wire.h"
#include "obs/health.h"
#include "obs/telemetry.h"
#include "serve/checkpoint.h"

namespace gtv::core {

// Thrown by train_round() when options.health.abort_on_fatal is set and a
// fatal health alert fired. The round's history/telemetry records are fully
// written before the throw, so callers can inspect what went wrong.
class FatalHealthError : public std::runtime_error {
 public:
  explicit FatalHealthError(obs::HealthAlert alert)
      : std::runtime_error("fatal health alert: " + alert.rule + " (round " +
                           std::to_string(alert.round) + ")"),
        alert_(std::move(alert)) {}
  const obs::HealthAlert& alert() const { return alert_; }

 private:
  obs::HealthAlert alert_;
};

class GtvTrainer {
 public:
  // `client_tables` are the vertical shards (same row count, rows aligned).
  GtvTrainer(std::vector<data::Table> client_tables, GtvOptions options, std::uint64_t seed);

  gan::RoundLosses train_round();
  void train(std::size_t rounds,
             const std::function<void(std::size_t, const gan::RoundLosses&)>& on_round = {});
  // Timed variant: the callback additionally receives the round's
  // telemetry record (phase durations, losses, per-link traffic deltas).
  void train(std::size_t rounds,
             const std::function<void(std::size_t, const gan::RoundLosses&,
                                      const obs::RoundTelemetry&)>& on_round);

  // Secure publication (§3.1.7): per-client synthesis, then all clients
  // apply the same secret shuffle before releasing. Shards stay row-aligned.
  std::vector<data::Table> sample_per_client(std::size_t rows);
  // Horizontal concatenation of the published shards.
  data::Table sample(std::size_t rows);

  // --- serving (gtv::serve) ----------------------------------------------------
  // Snapshot of the full split generator stack (G^t + per-client G^b_i +
  // fitted encoders) as a versioned container for gtv-serve. `model_hash`
  // is the FNV-1a table hash stamped in gtv-node's report (0 = unstamped).
  serve::Checkpoint make_checkpoint(std::uint64_t model_hash = 0);
  void save_checkpoint(const std::string& path, std::uint64_t model_hash = 0);

  // --- elastic federation (train-resume) ---------------------------------------
  // Full training state as a GTVT container: every party's module weights,
  // Adam moments, RNG positions (including each client's DP stream and row
  // order), the driver streams, the completed-round counter and loss
  // history. restore_train_state() rebuilds exactly that point — a resumed
  // run's loss trajectory is bit-identical to the uninterrupted one. Throws
  // CheckpointError when the checkpoint's seed or party shapes don't match
  // this trainer (resume requires rebuilding from the same data and seed).
  serve::TrainCheckpoint make_train_checkpoint() const;
  void restore_train_state(const serve::TrainCheckpoint& checkpoint);
  void save_train_checkpoint(const std::string& path) const;
  void restore_train_state(const std::string& path);
  // Rounds fully completed so far (== history().size()).
  std::size_t rounds_completed() const { return history_.size(); }

  std::size_t n_clients() const { return clients_.size(); }
  GtvClient& client(std::size_t i) { return *clients_.at(i); }
  GtvServer& server() { return *server_; }
  const net::TrafficMeter& traffic() const { return meter_; }
  net::TrafficMeter& traffic() { return meter_; }
  const std::vector<gan::RoundLosses>& history() const { return history_; }
  const GtvOptions& options() const { return options_; }

  // --- round telemetry (gtv::obs) ---------------------------------------------
  // One record per completed train_round(), parallel to history(). The
  // per-link byte/message deltas are exact: summed over all records they
  // equal the TrafficMeter totals accumulated by training.
  const std::vector<obs::RoundTelemetry>& telemetry() const { return telemetry_; }
  // Phase/loss/traffic sums over all recorded rounds (losses averaged).
  obs::RoundTelemetry telemetry_snapshot() const { return obs::aggregate(telemetry_); }
  // JSON array with one object per round (RoundTelemetry::to_json).
  std::string telemetry_json() const { return obs::telemetry_to_json(telemetry_); }

  // --- training health (gtv::obs::health) -------------------------------------
  // Health records are collected only when obs::health_enabled()
  // (GTV_HEALTH=1); they ride in telemetry()[r].health. The callback fires
  // once per alert, after the round's records are written; it is invoked
  // regardless of severity. abort_on_fatal (GtvOptions::health) escalates
  // fatal alerts to FatalHealthError.
  void set_on_alert(std::function<void(const obs::HealthAlert&)> cb) {
    on_alert_ = std::move(cb);
  }
  // All alerts fired so far, in round order (flattened from telemetry()).
  std::vector<obs::HealthAlert> health_alerts() const;

  // --- semi-honest server curiosity (evaluation) ------------------------------
  const ServerInferenceAttack& attack() const { return attack_; }
  // Scores the attack against the clients' *initial* data order (what a
  // curious server would reconstruct).
  ServerInferenceAttack::Evaluation attack_evaluation() const;

  // --- curious-peer leak in the P2P index-sharing variant -----------------------
  // Only populated when options.index_sharing == kPeerToPeer: the
  // co-selection observations a non-contributing client accumulates.
  const PeerSelectionFrequencyAttack& peer_attack() const { return peer_attack_; }
  // Scores the co-selection leak against the categories of one categorical
  // column (joined-table index) using the clients' initial data.
  PeerSelectionFrequencyAttack::Evaluation peer_attack_evaluation(std::size_t joined_column) const;

 private:
  gan::RoundLosses critic_step(std::size_t batch, obs::RoundTelemetry& telemetry);
  float generator_step(std::size_t batch, obs::RoundTelemetry& telemetry);
  // Health collection for the just-finished round (telemetry_.back()):
  // harvests AdamStepStats from all four optimizers per party, runs the
  // sample-quality probe every probe_interval rounds, feeds the rule
  // engine, and dispatches alerts. Only called when obs::health_enabled().
  void collect_health(const gan::RoundLosses& losses);
  // Draws a small generated batch (set_training(false), RNG streams
  // snapshotted/restored so training trajectories are unaffected) and fills
  // `health.probes` with per-column marginal comparisons vs the real shards.
  void run_probe(obs::RoundHealth& health);
  std::string link_up(std::size_t client) const;    // client -> server
  std::string link_down(std::size_t client) const;  // server -> client

  GtvOptions options_;
  std::uint64_t seed_ = 0;  // construction seed, recorded in checkpoints
  std::vector<std::unique_ptr<GtvClient>> clients_;
  std::unique_ptr<GtvServer> server_;
  net::TrafficMeter meter_;
  ServerInferenceAttack attack_;
  PeerSelectionFrequencyAttack peer_attack_;
  Rng shuffle_stream_;   // clients' shared secret stream (never on the server)
  Rng publish_stream_;
  data::Table initial_joined_;  // evaluation-only ground truth snapshot
  std::vector<gan::RoundLosses> history_;
  std::vector<obs::RoundTelemetry> telemetry_;  // parallel to history_

  // --- health state -----------------------------------------------------------
  obs::HealthMonitor health_monitor_;
  std::function<void(const obs::HealthAlert&)> on_alert_;
  // Real-shard reference marginals for the probe, computed lazily at the
  // first probe (marginals are invariant under the per-round shuffles).
  struct ColumnReference {
    bool categorical = false;
    std::vector<double> freq;  // categorical: per-category frequencies
    double mean = 0.0;
    double stddev = 0.0;
  };
  std::vector<std::vector<ColumnReference>> probe_reference_;  // [client][col]
};

}  // namespace gtv::core
