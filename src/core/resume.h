// Per-party training-state capture/restore for elastic federation.
//
// These free functions are the single definition of "one party's training
// state": module weights (parameters AND buffers, nn::snapshot_state
// order), Adam moments and step counters, and RNG stream positions —
// including each client's DP noise stream and current row order. Both the
// inproc GtvTrainer (make_train_checkpoint / restore_train_state) and the
// distributed node roles (kCmdCheckpointTrain / --resume) go through them,
// so the two deployments cannot drift apart in what they persist.
//
// Restore validates everything (module shapes via nn::restore_state, Adam
// shapes via Adam::set_state, row-order bounds via restore_row_order)
// before mutating the party, and throws serve::CheckpointError on any
// mismatch: a checkpoint only restores onto a party rebuilt from the same
// data, options, and seed.
#pragma once

#include "serve/checkpoint.h"

namespace gtv::core {

class GtvClient;
class GtvServer;

serve::ServerTrainPart capture_server_train_state(GtvServer& server);
void restore_server_train_state(GtvServer& server, const serve::ServerTrainPart& part);

serve::ClientTrainPart capture_client_train_state(GtvClient& client);
void restore_client_train_state(GtvClient& client, const serve::ClientTrainPart& part);

}  // namespace gtv::core
