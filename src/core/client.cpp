#include "core/client.h"

#include <stdexcept>

#include "gan/losses.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gtv::core {

using ag::Var;

namespace {

// Gated instrumentation (only samples the clock under GTV_METRICS /
// GTV_TRACE): per-call duration histograms for the client-side hot paths.
// Aggregated across clients — per-client breakdown lives in the trace.
obs::Histogram& client_histogram(const char* name) {
  return obs::MetricsRegistry::instance().histogram(std::string("gtv.client.") + name +
                                                    "_ms");
}

}  // namespace

GtvClient::GtvClient(std::size_t id, data::Table local, const GtvOptions& options,
                     std::size_t g_slice_width, std::size_t d_out_width, std::uint64_t seed)
    : id_(id),
      table_(std::move(local)),
      options_(options),
      d_out_width_(d_out_width),
      rng_(seed),
      dp_rng_(seed ^ 0xd9b0a5e5ULL) {
  if (table_.n_rows() == 0 || table_.n_cols() == 0) {
    throw std::invalid_argument("GtvClient: empty local table");
  }
  encoder_.fit(table_, options_.gan.encoder, rng_);
  cond_ = std::make_unique<encode::ConditionalSampler>(encoder_, table_);
  encoded_ = encoder_.encode(table_, rng_);
  original_row_.resize(table_.n_rows());
  for (std::size_t r = 0; r < original_row_.size(); ++r) original_row_[r] = r;

  g_bottom_ = std::make_unique<gan::GeneratorNet>(g_slice_width, g_slice_width,
                                                  options_.partition.g_bottom,
                                                  encoder_.total_width(), rng_);
  d_bottom_ = std::make_unique<gan::DiscriminatorNet>(
      encoder_.total_width(), d_out_width, options_.partition.d_bottom, d_out_width, rng_,
      options_.gan.leaky_slope, options_.gan.dropout);
  adam_g_ = std::make_unique<nn::Adam>(g_bottom_->parameters(), options_.gan.adam);
  adam_d_ = std::make_unique<nn::Adam>(d_bottom_->parameters(), options_.gan.adam);
}

encode::ConditionalSampler::Sample GtvClient::sample_cv(std::size_t batch) {
  return cond_->sample_train(batch, rng_);
}

void GtvClient::set_pending_condition(const encode::ConditionalSampler::Sample& sample) {
  pending_condition_ = sample;
}

Var GtvClient::run_generator_bottom(const Var& slice_in, Var* raw_logits) {
  Var logits = g_bottom_->forward(slice_in);
  if (raw_logits != nullptr) *raw_logits = logits;
  return gan::apply_output_activations(logits, encoder_.spans(), options_.gan.gumbel_tau,
                                       rng_);
}

Tensor GtvClient::forward_fake(const Tensor& g_slice, bool train_generator) {
  obs::PartyScope party(static_cast<int>(id_) + 1);
  static obs::Histogram& hist = client_histogram("forward_fake");
  obs::ScopedTimer timer("client.forward_fake", &hist);
  if (train_generator) {
    if (pending_generator_) {
      throw std::logic_error("GtvClient::forward_fake: generator backward still pending");
    }
    PendingGenerator pending;
    pending.slice_in = Var(g_slice, /*requires_grad=*/true);
    Var fake = run_generator_bottom(pending.slice_in, &pending.logits);
    pending.d_out = d_bottom_->forward(fake);
    Tensor out = pending.d_out.value();
    pending_generator_ = std::move(pending);
    return out;
  }
  // Discriminator phase: the generator is frozen; only D^b needs a graph.
  Tensor fake_value;
  {
    ag::NoGradGuard no_grad;
    fake_value = run_generator_bottom(Var(g_slice), nullptr).value();
  }
  last_fake_encoded_ = fake_value;
  if (pending_fake_d_) {
    throw std::logic_error("GtvClient::forward_fake: discriminator backward still pending");
  }
  pending_fake_d_ = d_bottom_->forward(ag::constant(fake_value));
  return pending_fake_d_->value();
}

Tensor GtvClient::backward_generator(const Tensor& grad_d_out) {
  obs::PartyScope party(static_cast<int>(id_) + 1);
  static obs::Histogram& hist = client_histogram("backward_generator");
  obs::ScopedTimer timer("client.backward_generator", &hist);
  if (!pending_generator_) {
    throw std::logic_error("GtvClient::backward_generator: no pending forward");
  }
  PendingGenerator pending = std::move(*pending_generator_);
  pending_generator_.reset();
  ag::backward(pending.d_out, Var(grad_d_out));
  if (pending_condition_ && cond_->has_discrete()) {
    Var cond_term = gan::conditional_loss(
        pending.logits, cond_->target_mask(*pending_condition_), encoder_.discrete_spans());
    ag::backward(cond_term);
  }
  pending_condition_.reset();
  return pending.slice_in.grad();
}

void GtvClient::backward_fake_discriminator(const Tensor& grad_d_out) {
  obs::PartyScope party(static_cast<int>(id_) + 1);
  static obs::Histogram& hist = client_histogram("backward_fake_discriminator");
  obs::ScopedTimer timer("client.backward_fake_discriminator", &hist);
  if (!pending_fake_d_) {
    throw std::logic_error("GtvClient::backward_fake_discriminator: no pending forward");
  }
  Var d_out = std::move(*pending_fake_d_);
  pending_fake_d_.reset();
  ag::backward(d_out, Var(grad_d_out));
}

Tensor GtvClient::forward_real_all() {
  obs::PartyScope party(static_cast<int>(id_) + 1);
  static obs::Histogram& hist = client_histogram("forward_real");
  obs::ScopedTimer timer("client.forward_real_all", &hist);
  if (pending_real_) {
    throw std::logic_error("GtvClient::forward_real_all: real backward still pending");
  }
  pending_real_ = d_bottom_->forward(ag::constant(encoded_));
  return pending_real_->value();
}

Tensor GtvClient::forward_real_selected(const std::vector<std::size_t>& idx) {
  obs::PartyScope party(static_cast<int>(id_) + 1);
  static obs::Histogram& hist = client_histogram("forward_real");
  obs::ScopedTimer timer("client.forward_real_selected", &hist);
  if (pending_real_) {
    throw std::logic_error("GtvClient::forward_real_selected: real backward still pending");
  }
  pending_real_ = d_bottom_->forward(ag::constant(encoded_.gather_rows(idx)));
  return pending_real_->value();
}

void GtvClient::backward_real(const Tensor& grad_d_out) {
  obs::PartyScope party(static_cast<int>(id_) + 1);
  static obs::Histogram& hist = client_histogram("backward_real");
  obs::ScopedTimer timer("client.backward_real", &hist);
  if (!pending_real_) {
    throw std::logic_error("GtvClient::backward_real: no pending forward");
  }
  Var d_out = std::move(*pending_real_);
  pending_real_.reset();
  ag::backward(d_out, Var(grad_d_out));
}

Tensor GtvClient::privatize(Tensor t) {
  if (options_.dp_noise_std <= 0.0f) return t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] += static_cast<float>(dp_rng_.normal(0.0, options_.dp_noise_std));
  }
  return t;
}

void GtvClient::restore_row_order(const std::vector<std::size_t>& target) {
  if (target.size() != original_row_.size()) {
    throw std::invalid_argument("GtvClient::restore_row_order: row count mismatch");
  }
  // Current row r holds original row original_row_[r]; we want row r to hold
  // original row target[r]. perm[r] = invP[target[r]] with invP the inverse
  // of the current placement, so new[r] = old[perm[r]] lands correctly.
  std::vector<std::size_t> inverse(original_row_.size());
  for (std::size_t r = 0; r < original_row_.size(); ++r) {
    const std::size_t original = original_row_[r];
    if (original >= inverse.size()) {
      throw std::invalid_argument("GtvClient::restore_row_order: corrupt current order");
    }
    inverse[original] = r;
  }
  std::vector<std::size_t> perm(target.size());
  for (std::size_t r = 0; r < target.size(); ++r) {
    if (target[r] >= inverse.size()) {
      throw std::invalid_argument("GtvClient::restore_row_order: row index out of range");
    }
    perm[r] = inverse[target[r]];
  }
  table_.permute_rows(perm);
  encoded_ = encoded_.gather_rows(perm);
  original_row_.assign(target.begin(), target.end());
  cond_ = std::make_unique<encode::ConditionalSampler>(encoder_, table_);
}

void GtvClient::clear_pending() {
  pending_generator_.reset();
  pending_fake_d_.reset();
  pending_real_.reset();
  pending_condition_.reset();
}

void GtvClient::shuffle_local_data(std::uint64_t round_seed) {
  Rng shuffle_rng(round_seed);
  const auto perm = shuffle_rng.permutation(table_.n_rows());
  table_.permute_rows(perm);
  encoded_ = encoded_.gather_rows(perm);
  std::vector<std::size_t> next(original_row_.size());
  for (std::size_t r = 0; r < perm.size(); ++r) next[r] = original_row_[perm[r]];
  original_row_ = std::move(next);
  // Category -> row-index buckets must track the new order.
  cond_ = std::make_unique<encode::ConditionalSampler>(encoder_, table_);
}

data::Table GtvClient::synthesize(const Tensor& g_slice) {
  ag::NoGradGuard no_grad;
  g_bottom_->set_training(false);
  Var fake = run_generator_bottom(Var(g_slice), nullptr);
  g_bottom_->set_training(true);
  return encoder_.decode(fake.value());
}

Tensor GtvClient::encoded_rows(const std::vector<std::size_t>& idx) const {
  return encoded_.gather_rows(idx);
}

std::vector<std::size_t> GtvClient::original_rows(const std::vector<std::size_t>& idx) const {
  std::vector<std::size_t> out;
  out.reserve(idx.size());
  for (std::size_t r : idx) out.push_back(original_row_.at(r));
  return out;
}

std::size_t GtvClient::generator_parameter_count() { return g_bottom_->parameter_count(); }
std::size_t GtvClient::discriminator_parameter_count() { return d_bottom_->parameter_count(); }

}  // namespace gtv::core
