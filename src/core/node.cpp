#include "core/node.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/resume.h"
#include "gan/losses.h"
#include "obs/thread_name.h"
#include "serve/engine.h"

namespace gtv::core {

using ag::Var;

void NodeConfig::validate() const {
  if (n_clients == 0) throw std::invalid_argument("NodeConfig: no clients");
  if (train_rows == 0) throw std::invalid_argument("NodeConfig: train_rows is 0");
  if (options.exact_gradient_penalty) {
    throw std::invalid_argument(
        "NodeConfig: exact_gradient_penalty differentiates through all parties' "
        "bottom models in one graph — impossible across processes; use the "
        "server-local penalty (exact_gradient_penalty=false)");
  }
  if (options.index_sharing == IndexSharing::kPeerToPeer) {
    throw std::invalid_argument(
        "NodeConfig: peer-to-peer index sharing needs client<->client links; "
        "the node topology is star-shaped (use IndexSharing::kServer)");
  }
  // DP noise is deliberately NOT rejected: each client owns its noise
  // stream (GtvClient::privatize, seeded from the client's party seed), so
  // dp_noise_std > 0 partitions cleanly and runs over TCP.
}

std::vector<std::uint64_t> party_seeds(std::uint64_t seed, std::size_t n_clients) {
  Rng seeder(seed);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n_clients + 1);
  for (std::size_t i = 0; i <= n_clients; ++i) seeds.push_back(seeder.next_u64());
  return seeds;  // [0..n-1] clients, [n] server
}

namespace {

std::vector<std::size_t> recv_command(net::TrafficMeter& meter, const std::string& link) {
  auto cmd = meter.recv_indices(link);
  if (cmd.empty()) throw net::WireError("node: empty command on " + link);
  return cmd;
}

// Losses travel server -> driver as a 1x4 tensor in RoundLosses field order.
Tensor pack_losses(float d_loss, float g_loss, float gp, float wasserstein) {
  Tensor t(1, 4);
  t(0, 0) = d_loss;
  t(0, 1) = g_loss;
  t(0, 2) = gp;
  t(0, 3) = wasserstein;
  return t;
}

}  // namespace

// --- ServerNode ------------------------------------------------------------------

ServerNode::ServerNode(NodeConfig config, std::vector<std::size_t> g_widths,
                       std::vector<std::size_t> d_widths)
    : config_(std::move(config)), g_widths_(std::move(g_widths)), d_widths_(std::move(d_widths)) {
  config_.validate();
  if (g_widths_.size() != config_.n_clients || d_widths_.size() != config_.n_clients) {
    throw std::invalid_argument("ServerNode: width vectors must have one entry per client");
  }
}

std::string ServerNode::link_up(std::size_t client) const {
  return "client" + std::to_string(client) + "->server";
}

std::string ServerNode::link_down(std::size_t client) const {
  return "server->client" + std::to_string(client);
}

void ServerNode::run() {
  // Role-named main thread: sampler folded stacks and blackbox thread dumps
  // show "gtv-server" instead of the process image name.
  obs::set_current_thread_name("gtv-server");
  const std::size_t n = config_.n_clients;
  if (status_ != nullptr) {
    status_->rounds_total.store(config_.rounds, std::memory_order_relaxed);
    status_->set_phase(obs::agg::Phase::kSetup);
  }
  // Setup: each client reports its CV width; the split widths are public
  // (derived from feature counts), so this completes the ClientInfo table.
  std::vector<GtvServer::ClientInfo> infos;
  for (std::size_t i = 0; i < n; ++i) {
    const auto widths = meter_.recv_indices(link_up(i));
    if (widths.size() != 1) throw net::WireError("node: bad setup frame from client");
    infos.push_back({widths[0], g_widths_[i], d_widths_[i]});
  }
  // Same seeder position GtvTrainer gives the server: after all clients.
  server_ = std::make_unique<GtvServer>(config_.options, std::move(infos),
                                        party_seeds(config_.seed, n)[n]);

  for (;;) {
    const auto cmd = recv_command(meter_, "driver->server");
    switch (cmd[0]) {
      case kCmdCriticStep:
        if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kCritic);
        try {
          critic_step(cmd.at(1));
        } catch (const net::TransportError&) {
          if (!elastic_) throw;
          park_round();
        }
        break;
      case kCmdGeneratorStep:
        if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kGenerator);
        try {
          generator_step(cmd.at(1));
        } catch (const net::TransportError&) {
          if (!elastic_) throw;
          park_round();
          break;
        }
        if (status_ != nullptr) {
          status_->round.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case kCmdCheckpointTrain:
        meter_.send_payload("server->driver",
                            serve::encode_server_train_part(
                                capture_server_train_state(*server_)));
        break;
      case kCmdRestore:
        restore_train();
        break;
      case kCmdCheckpoint: {
        serve::ServerPart part;
        part.noise_dim = config_.options.gan.noise_dim;
        part.gumbel_tau = config_.options.gan.gumbel_tau;
        std::size_t g_total = 0;
        for (const std::size_t w : g_widths_) g_total += w;
        const serve::NetArch arch{
            config_.options.gan.noise_dim + server_->total_cv_width(),
            config_.options.generator_hidden, config_.options.partition.g_top, g_total};
        part.g_top = serve::snapshot_net(arch, server_->generator_top());
        meter_.send_payload("server->driver", serve::encode_server_part(part));
        break;
      }
      case kCmdFinish:
        if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kDone);
        meter_.send_indices("server->driver", {kCmdFinish});
        return;
      default:
        throw net::WireError("node: unknown server command " + std::to_string(cmd[0]));
    }
  }
}

void ServerNode::park_round() {
  // A peer vanished mid-round. Drop half-finished split state; the driver
  // will replay the round from the last coordinated checkpoint.
  server_->clear_pending();
  // Poke everyone still blocked on us: an empty payload fails whatever
  // recv consumes it (indices and tensors both reject it) without waiting
  // out the retry budget. Anything left queued is discarded at restore.
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    try {
      meter_.send_payload(link_down(i), {});
    } catch (const net::TransportError&) {
      // dead peer — exactly why we are parking
    }
  }
  try {
    meter_.send_payload("server->driver", {});
  } catch (const net::TransportError&) {
  }
}

void ServerNode::restore_train() {
  // Data-plane links restart from scratch: the rejoined party counts from
  // seq 0, and queued frames belong to the round being replayed. The
  // command links stay intact — they are in lockstep with the driver.
  net::Transport& t = meter_.transport();
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    t.discard_queued(link_up(i));
    t.reset_link(link_up(i));
    t.reset_link(link_down(i));
  }
  const serve::ServerTrainPart part =
      serve::decode_server_train_part(meter_.recv_payload("driver->server"));
  restore_server_train_state(*server_, part);
  meter_.send_indices("server->driver", {kCmdRestore});
}

void ServerNode::critic_step(std::size_t batch) {
  const std::size_t n = config_.n_clients;
  const GtvOptions& options = config_.options;

  // --- CVGeneration: pick p, tell everyone, collect p's CV + indices --------
  const std::size_t p = server_->select_cv_client();
  for (std::size_t i = 0; i < n; ++i) meter_.send_indices(link_down(i), {p});
  const Tensor cv_p = meter_.recv_tensor(link_up(p));
  const std::vector<std::size_t> idx = meter_.recv_indices(link_up(p));
  const Tensor global_cv = server_->assemble_global_cv(p, cv_p, batch);

  server_->zero_grad_discriminator();

  // --- fake path: split slices down, bottom-critic logits back up -----------
  const auto slices = server_->generator_forward(global_cv, /*retain_graph=*/false);
  std::vector<Var> fake_vars;
  fake_vars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    meter_.send_tensor(link_down(i), slices[i]);
    fake_vars.emplace_back(meter_.recv_tensor(link_up(i)), /*requires_grad=*/true);
  }

  // --- real path -------------------------------------------------------------
  std::vector<Var> real_vars;
  real_vars.reserve(n);
  std::vector<std::size_t> real_full_rows(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor d_out = meter_.recv_tensor(link_up(i));
    real_full_rows[i] = d_out.rows();
    if (i == p) {
      real_vars.emplace_back(d_out, /*requires_grad=*/true);
    } else {
      real_vars.emplace_back(d_out.gather_rows(idx), /*requires_grad=*/true);
    }
  }

  // --- top loss (identical op order to GtvTrainer::critic_step) --------------
  Var cv_var = ag::constant(global_cv);
  Var d_fake = server_->critic_top(fake_vars, cv_var);
  Var d_real = server_->critic_top(real_vars, cv_var);
  Var critic = gan::wasserstein_critic_loss(d_real, d_fake);

  Var gp;
  if (options.gan.critic_mode == gan::CriticMode::kWeightClipping) {
    gp = ag::constant(Tensor::scalar(0.0f));
  } else {
    // Server-local penalty on D^t's concatenated input logits — the only
    // penalty mode that never needs another party's autograd graph.
    std::vector<Tensor> fake_logits, real_logits;
    std::vector<std::size_t> widths;
    for (std::size_t i = 0; i < n; ++i) {
      fake_logits.push_back(fake_vars[i].value());
      real_logits.push_back(real_vars[i].value());
      widths.push_back(fake_vars[i].cols());
    }
    auto critic_fn = [&](const Var& x) {
      std::vector<Var> parts;
      std::size_t offset = 0;
      for (std::size_t w : widths) {
        parts.push_back(ag::slice_cols(x, offset, offset + w));
        offset += w;
      }
      return server_->critic_top(parts, cv_var);
    };
    gp = gan::gradient_penalty(critic_fn, Tensor::concat_cols(real_logits),
                               Tensor::concat_cols(fake_logits), server_->rng());
  }

  Var loss = ag::add(critic, ag::mul_scalar(gp, options.gan.gp_lambda));
  ag::backward(loss);

  // --- gradient return --------------------------------------------------------
  for (std::size_t i = 0; i < n; ++i) {
    meter_.send_tensor(link_down(i), fake_vars[i].grad());
    Tensor real_grad = real_vars[i].grad();
    if (i != p) {
      Tensor full(real_full_rows[i], real_grad.cols());
      for (std::size_t b = 0; b < idx.size(); ++b) {
        for (std::size_t c = 0; c < real_grad.cols(); ++c) {
          full(idx[b], c) += real_grad(b, c);
        }
      }
      real_grad = std::move(full);
    }
    meter_.send_tensor(link_down(i), real_grad);
  }
  server_->step_discriminator();
  if (options.gan.critic_mode == gan::CriticMode::kWeightClipping) {
    gan::clip_parameters(server_->discriminator_parameters(), options.gan.clip_value);
  }

  if (status_ != nullptr) {
    status_->d_loss.store(loss.value()(0, 0), std::memory_order_relaxed);
    status_->gp.store(gp.value()(0, 0), std::memory_order_relaxed);
    status_->wasserstein.store(-critic.value()(0, 0), std::memory_order_relaxed);
  }
  meter_.send_tensor("server->driver",
                     pack_losses(loss.value()(0, 0), 0.0f, gp.value()(0, 0),
                                 -critic.value()(0, 0)));
}

void ServerNode::generator_step(std::size_t batch) {
  const std::size_t n = config_.n_clients;

  const std::size_t p = server_->select_cv_client();
  for (std::size_t i = 0; i < n; ++i) meter_.send_indices(link_down(i), {p});
  const Tensor cv_p = meter_.recv_tensor(link_up(p));
  if (config_.options.index_sharing == IndexSharing::kServer) {
    meter_.recv_indices(link_up(p));  // protocol fidelity: indices still flow
  }
  const Tensor global_cv = server_->assemble_global_cv(p, cv_p, batch);

  server_->zero_grad_generator();

  const auto slices = server_->generator_forward(global_cv, /*retain_graph=*/true);
  std::vector<Var> fake_vars;
  fake_vars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    meter_.send_tensor(link_down(i), slices[i]);
    fake_vars.emplace_back(meter_.recv_tensor(link_up(i)), /*requires_grad=*/true);
  }

  Var cv_var = ag::constant(global_cv);
  Var d_fake = server_->critic_top(fake_vars, cv_var);
  Var adv = gan::wasserstein_generator_loss(d_fake);
  ag::backward(adv);

  std::vector<Tensor> slice_grads;
  slice_grads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    meter_.send_tensor(link_down(i), fake_vars[i].grad());
    slice_grads.push_back(meter_.recv_tensor(link_up(i)));
  }
  server_->generator_backward(slice_grads);
  server_->step_generator();

  if (status_ != nullptr) {
    status_->g_loss.store(adv.value()(0, 0), std::memory_order_relaxed);
  }
  meter_.send_tensor("server->driver", pack_losses(0.0f, adv.value()(0, 0), 0.0f, 0.0f));
}

// --- ClientNode ------------------------------------------------------------------

ClientNode::ClientNode(NodeConfig config, std::size_t id, data::Table local_table,
                       std::size_t g_width, std::size_t d_width)
    : config_(std::move(config)), id_(id), g_width_(g_width) {
  config_.validate();
  if (id_ >= config_.n_clients) throw std::invalid_argument("ClientNode: id out of range");
  client_ = std::make_unique<GtvClient>(id_, std::move(local_table), config_.options,
                                        g_width, d_width,
                                        party_seeds(config_.seed, config_.n_clients)[id_]);
}

std::string ClientNode::link_up() const {
  return "client" + std::to_string(id_) + "->server";
}

std::string ClientNode::link_down() const {
  return "server->client" + std::to_string(id_);
}

void ClientNode::run() {
  obs::set_current_thread_name(("gtv-client" + std::to_string(id_)).c_str());
  if (status_ != nullptr) {
    status_->rounds_total.store(config_.rounds, std::memory_order_relaxed);
    status_->set_phase(obs::agg::Phase::kSetup);
  }
  // A rejoining client skips the CV-width report: the surviving server
  // already holds every client's setup info, and an unexpected setup frame
  // would desync the replayed round.
  if (!rejoin_) meter_.send_indices(link_up(), {client_->cv_width()});
  const std::string cmd_link = "driver->client" + std::to_string(id_);
  const std::string ack_link = "client" + std::to_string(id_) + "->driver";
  for (;;) {
    const auto cmd = recv_command(meter_, cmd_link);
    switch (cmd[0]) {
      case kCmdCriticStep:
        if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kCritic);
        try {
          critic_step(cmd.at(1));
        } catch (const net::TransportError&) {
          if (!elastic_) throw;
          client_->clear_pending();  // park: the driver will replay the round
        }
        break;
      case kCmdGeneratorStep:
        if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kGenerator);
        try {
          generator_step(cmd.at(1));
        } catch (const net::TransportError&) {
          if (!elastic_) throw;
          client_->clear_pending();
          break;
        }
        if (status_ != nullptr) {
          status_->round.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case kCmdShuffle:
        if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kShuffle);
        client_->shuffle_local_data(static_cast<std::uint64_t>(cmd.at(1)));
        break;
      case kCmdCheckpointTrain:
        meter_.send_payload(ack_link, serve::encode_client_train_part(
                                          capture_client_train_state(*client_)));
        break;
      case kCmdRestore:
        restore_train();
        break;
      case kCmdCheckpoint: {
        serve::ClientPart part;
        part.cv_width = client_->cv_width();
        part.g_slice_width = g_width_;
        const serve::NetArch arch{g_width_, g_width_, config_.options.partition.g_bottom,
                                  client_->encoded_width()};
        part.g_bottom = serve::snapshot_net(arch, client_->generator_bottom());
        part.encoder = client_->encoder();
        meter_.send_payload(ack_link, serve::encode_client_part(part));
        break;
      }
      case kCmdFinish:
        if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kDone);
        meter_.send_indices(ack_link, {kCmdFinish});
        return;
      default:
        throw net::WireError("node: unknown client command " + std::to_string(cmd[0]));
    }
  }
}

void ClientNode::restore_train() {
  net::Transport& t = meter_.transport();
  t.discard_queued(link_down());
  t.reset_link(link_down());
  t.reset_link(link_up());
  const std::string cmd_link = "driver->client" + std::to_string(id_);
  const serve::ClientTrainPart part =
      serve::decode_client_train_part(meter_.recv_payload(cmd_link));
  restore_client_train_state(*client_, part);
  meter_.send_indices("client" + std::to_string(id_) + "->driver", {kCmdRestore});
}

void ClientNode::critic_step(std::size_t batch) {
  const std::size_t p = recv_command(meter_, link_down())[0];

  encode::ConditionalSampler::Sample sample;
  if (p == id_) {
    sample = client_->sample_cv(batch);
    meter_.send_tensor(link_up(), sample.cv);
    meter_.send_indices(link_up(), sample.rows);
  }

  client_->zero_grad_discriminator();

  // Fake path: split slice down, D^b(G^b(slice)) back up. Outbound logits
  // pass through the client's own DP stream (no-op when disabled), exactly
  // as in GtvTrainer::critic_step.
  const Tensor slice = meter_.recv_tensor(link_down());
  meter_.send_tensor(
      link_up(),
      client_->privatize(client_->forward_fake(slice, /*train_generator=*/false)));

  // Real path: the selected client forwards its chosen rows; everyone else
  // forwards everything and lets the server select.
  if (p == id_) {
    meter_.send_tensor(link_up(),
                       client_->privatize(client_->forward_real_selected(sample.rows)));
  } else {
    meter_.send_tensor(link_up(), client_->privatize(client_->forward_real_all()));
  }

  client_->backward_fake_discriminator(meter_.recv_tensor(link_down()));
  client_->backward_real(meter_.recv_tensor(link_down()));
  client_->step_discriminator();
  if (config_.options.gan.critic_mode == gan::CriticMode::kWeightClipping) {
    gan::clip_parameters(client_->discriminator_parameters(), config_.options.gan.clip_value);
  }
}

void ClientNode::generator_step(std::size_t batch) {
  const std::size_t p = recv_command(meter_, link_down())[0];

  if (p == id_) {
    auto sample = client_->sample_cv(batch);
    meter_.send_tensor(link_up(), sample.cv);
    if (config_.options.index_sharing == IndexSharing::kServer) {
      meter_.send_indices(link_up(), sample.rows);
    }
    if (config_.options.gan.use_conditional_loss) client_->set_pending_condition(sample);
  }

  client_->zero_grad_generator();

  const Tensor slice = meter_.recv_tensor(link_down());
  meter_.send_tensor(
      link_up(),
      client_->privatize(client_->forward_fake(slice, /*train_generator=*/true)));

  const Tensor d_out_grad = meter_.recv_tensor(link_down());
  meter_.send_tensor(link_up(), client_->backward_generator(d_out_grad));
  client_->step_generator();
}

// --- DriverNode ------------------------------------------------------------------

DriverNode::DriverNode(NodeConfig config)
    : config_(std::move(config)),
      shuffle_stream_(config_.options.shuffle_seed),
      publish_stream_(config_.options.shuffle_seed ^ 0x9e3779b97f4a7c15ULL) {
  config_.validate();
}

void DriverNode::set_train_checkpoint(std::string path, std::size_t every) {
  if (every == 0) throw std::invalid_argument("DriverNode: checkpoint interval is 0");
  train_ckpt_path_ = std::move(path);
  train_ckpt_every_ = every;
}

void DriverNode::set_resume(std::string path) { resume_path_ = std::move(path); }

void DriverNode::broadcast(NodeCommand code, std::size_t arg, bool include_server) {
  if (include_server) meter_.send_indices("driver->server", {code, arg});
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    meter_.send_indices("driver->client" + std::to_string(i), {code, arg});
  }
}

std::vector<gan::RoundLosses> DriverNode::run() {
  obs::set_current_thread_name("gtv-driver");
  const std::size_t batch = std::min(config_.options.gan.batch_size, config_.train_rows);
  if (status_ != nullptr) {
    status_->rounds_total.store(config_.rounds, std::memory_order_relaxed);
    status_->set_phase(obs::agg::Phase::kSetup);
  }
  std::vector<gan::RoundLosses> history;
  if (!resume_path_.empty()) {
    last_train_ckpt_ = std::make_unique<serve::TrainCheckpoint>(
        serve::load_train_checkpoint(resume_path_));
    history = distribute_restore();
    resumed_from_ = history.size();
  }
  std::size_t r = history.size();
  while (r < config_.rounds) {
    try {
      gan::RoundLosses losses;
      for (std::size_t step = 0; step < config_.options.gan.d_steps_per_round; ++step) {
        if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kCritic);
        broadcast(kCmdCriticStep, batch, /*include_server=*/true);
        const Tensor packed = meter_.recv_tensor("server->driver");
        losses.d_loss = packed(0, 0);
        losses.gp = packed(0, 2);
        losses.wasserstein = packed(0, 3);
      }
      if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kGenerator);
      broadcast(kCmdGeneratorStep, batch, /*include_server=*/true);
      losses.g_loss = meter_.recv_tensor("server->driver")(0, 1);
      if (status_ != nullptr) {
        status_->set_losses(losses.d_loss, losses.g_loss, losses.gp,
                            losses.wasserstein);
        status_->set_round(r + 1);
      }

      if (config_.options.training_with_shuffling) {
        // The shuffle seed is the clients' shared secret: the driver plays
        // the clients' side of that agreement and never tells the server.
        const std::uint64_t round_seed = shuffle_stream_.next_u64();
        broadcast(kCmdShuffle, static_cast<std::size_t>(round_seed),
                  /*include_server=*/false);
      }
      history.push_back(losses);
      if (train_ckpt_every_ > 0 && (r + 1) % train_ckpt_every_ == 0) {
        collect_train_checkpoint(history);
      }
      ++r;
    } catch (const net::TransportError&) {
      // A party died mid-round. Without a coordinated checkpoint there is
      // nothing to replay from — surface the failure as before.
      if (last_train_ckpt_ == nullptr) throw;
      history = recover();
      r = history.size();
      ++recoveries_;
    }
  }
  if (!checkpoint_out_.empty()) collect_checkpoint();
  broadcast(kCmdFinish, 0, /*include_server=*/true);
  meter_.recv_indices("server->driver");
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    meter_.recv_indices("client" + std::to_string(i) + "->driver");
  }
  if (status_ != nullptr) status_->set_phase(obs::agg::Phase::kDone);
  return history;
}

void DriverNode::collect_checkpoint() {
  broadcast(kCmdCheckpoint, 0, /*include_server=*/true);
  serve::Checkpoint ckpt;
  ckpt.seed = config_.seed;
  ckpt.rounds = config_.rounds;
  serve::ServerPart server_part =
      serve::decode_server_part(meter_.recv_payload("server->driver"));
  ckpt.noise_dim = server_part.noise_dim;
  ckpt.gumbel_tau = server_part.gumbel_tau;
  ckpt.g_top = std::move(server_part.g_top);
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    ckpt.clients.push_back(serve::decode_client_part(
        meter_.recv_payload("client" + std::to_string(i) + "->driver")));
  }
  // Stamp the model identity before writing: the hash of a fixed-seed
  // sample is a stable fingerprint of the assembled weights + encoders.
  serve::Synthesizer synth(ckpt);
  ckpt.model_hash = serve::hash_table(synth.sample(64, config_.seed));
  checkpoint_hash_ = ckpt.model_hash;
  serve::save_checkpoint(ckpt, checkpoint_out_);
}

void DriverNode::collect_train_checkpoint(
    const std::vector<gan::RoundLosses>& history) {
  broadcast(kCmdCheckpointTrain, 0, /*include_server=*/true);
  auto ckpt = std::make_unique<serve::TrainCheckpoint>();
  ckpt->seed = config_.seed;
  ckpt->round = history.size();
  ckpt->shuffle_stream = shuffle_stream_.state();
  ckpt->publish_stream = publish_stream_.state();
  ckpt->history = history;
  ckpt->server =
      serve::decode_server_train_part(meter_.recv_payload("server->driver"));
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    ckpt->clients.push_back(serve::decode_client_train_part(
        meter_.recv_payload("client" + std::to_string(i) + "->driver")));
  }
  if (!train_ckpt_path_.empty()) {
    serve::save_train_checkpoint(*ckpt, train_ckpt_path_);
  }
  // Kept in memory as the crash-recovery replay point: recover() must not
  // depend on re-reading a file the crash may have raced.
  last_train_ckpt_ = std::move(ckpt);
}

std::vector<gan::RoundLosses> DriverNode::distribute_restore() {
  const serve::TrainCheckpoint& ckpt = *last_train_ckpt_;
  if (ckpt.seed != config_.seed) {
    throw serve::CheckpointError("train checkpoint seed mismatch");
  }
  if (ckpt.clients.size() != config_.n_clients) {
    throw serve::CheckpointError("train checkpoint client count mismatch");
  }
  if (ckpt.round > config_.rounds || ckpt.history.size() != ckpt.round) {
    throw serve::CheckpointError("train checkpoint round count implausible");
  }
  const auto round_arg = static_cast<std::size_t>(ckpt.round);
  meter_.send_indices("driver->server", {kCmdRestore, round_arg});
  meter_.send_payload("driver->server",
                      serve::encode_server_train_part(ckpt.server));
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    const std::string cmd = "driver->client" + std::to_string(i);
    meter_.send_indices(cmd, {kCmdRestore, round_arg});
    meter_.send_payload(cmd, serve::encode_client_train_part(ckpt.clients[i]));
  }
  await_restore_ack("server->driver");
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    await_restore_ack("client" + std::to_string(i) + "->driver");
  }
  shuffle_stream_.set_state(ckpt.shuffle_stream);
  publish_stream_.set_state(ckpt.publish_stream);
  return ckpt.history;
}

std::vector<gan::RoundLosses> DriverNode::recover() {
  net::Transport& transport = meter_.transport();
  // Short probe first: a live party answers immediately, so only genuinely
  // dead peers are made to wait out the rejoin window.
  std::vector<std::size_t> dead;
  if (!transport.wait_for_live_peer("server", 200)) {
    // A rejoined server cannot rebuild its per-client CV-width table (the
    // setup handshake already happened), so server loss is not recoverable.
    throw net::TransportError("DriverNode: server died; only client crashes are recoverable");
  }
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    if (!transport.wait_for_live_peer("client" + std::to_string(i), 200)) {
      dead.push_back(i);
    }
  }
  for (std::size_t i : dead) {
    const std::string peer = "client" + std::to_string(i);
    if (!transport.wait_for_live_peer(peer, rejoin_wait_ms_)) {
      throw net::TransportError("DriverNode: " + peer +
                                " did not rejoin within the wait window");
    }
    // The restarted process starts every link at seq 0; forget the old
    // sequence bookkeeping on both directions of its driver links. (The
    // server resets its own data links to the rejoiner during kCmdRestore.)
    transport.reset_link("driver->" + peer);
    transport.reset_link(peer + "->driver");
    transport.discard_queued(peer + "->driver");
  }
  // Drop whatever the aborted round left queued on our in-links (stale
  // losses, park poison, half-collected checkpoint parts).
  transport.discard_queued("server->driver");
  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    transport.discard_queued("client" + std::to_string(i) + "->driver");
  }
  return distribute_restore();
}

void DriverNode::await_restore_ack(const std::string& link) {
  // The aborted round may still flush frames onto this link (a loss tensor
  // the server sent just before parking, the park poison frame itself).
  // Skip a bounded amount of junk; anything persistent is a real failure.
  constexpr int kMaxJunk = 32;
  for (int attempt = 0; attempt < kMaxJunk; ++attempt) {
    try {
      const std::vector<std::size_t> ack = meter_.recv_indices(link);
      if (ack.size() == 1 && ack[0] == kCmdRestore) return;
    } catch (const net::TimeoutError&) {
      throw;  // retry budget already spent inside recv_indices
    } catch (const net::WireError&) {
      // Stale tensor payload or poison frame; keep draining.
    }
  }
  throw net::TransportError("DriverNode: no restore ack on " + link);
}

}  // namespace gtv::core
