#include "core/server.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gtv::core {

using ag::Var;

namespace {

// Gated instrumentation (only samples the clock under GTV_METRICS /
// GTV_TRACE): per-call duration histograms for the server-side hot paths.
obs::Histogram& server_histogram(const char* name) {
  return obs::MetricsRegistry::instance().histogram(std::string("gtv.server.") + name +
                                                    "_ms");
}

}  // namespace

GtvServer::GtvServer(const GtvOptions& options, std::vector<ClientInfo> clients,
                     std::uint64_t seed)
    : options_(options), clients_(std::move(clients)), rng_(seed) {
  if (clients_.empty()) throw std::invalid_argument("GtvServer: no clients");
  std::vector<std::size_t> g_widths, d_widths;
  std::size_t g_total = 0, d_total = 0;
  for (const auto& c : clients_) {
    total_cv_ += c.cv_width;
    g_total += c.g_slice_width;
    d_total += c.d_out_width;
    g_widths.push_back(c.g_slice_width);
    d_widths.push_back(c.d_out_width);
  }
  // P_r is reconstructed from the g-slice widths (they were computed from
  // feature counts by the trainer).
  std::vector<std::size_t> feature_like(g_widths.begin(), g_widths.end());
  ratio_ = ratio_vector(feature_like);

  g_top_ = std::make_unique<gan::GeneratorNet>(options_.gan.noise_dim + total_cv_,
                                               options_.generator_hidden,
                                               options_.partition.g_top, g_total, rng_);
  if (total_cv_ > 0) d_s_ = std::make_unique<nn::Linear>(total_cv_, total_cv_, rng_);
  d_top_ = std::make_unique<gan::DiscriminatorNet>(
      d_total + (d_s_ ? total_cv_ : 0), options_.gan.hidden, options_.partition.d_top, 1, rng_,
      options_.gan.leaky_slope, options_.gan.dropout);

  adam_g_ = std::make_unique<nn::Adam>(g_top_->parameters(), options_.gan.adam);
  std::vector<Var> d_params = d_top_->parameters();
  if (d_s_) {
    auto ds_params = d_s_->parameters();
    d_params.insert(d_params.end(), ds_params.begin(), ds_params.end());
  }
  adam_d_ = std::make_unique<nn::Adam>(std::move(d_params), options_.gan.adam);
}

std::size_t GtvServer::select_cv_client() { return rng_.categorical(ratio_); }

Tensor GtvServer::assemble_global_cv(std::size_t p, const Tensor& cv_p,
                                     std::size_t batch) const {
  if (p >= clients_.size()) throw std::out_of_range("assemble_global_cv: bad client index");
  if (cv_p.cols() != clients_[p].cv_width || (cv_p.cols() > 0 && cv_p.rows() != batch)) {
    throw std::invalid_argument("assemble_global_cv: CV shape mismatch");
  }
  Tensor cv(batch, total_cv_);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < p; ++i) offset += clients_[i].cv_width;
  for (std::size_t r = 0; r < cv_p.rows(); ++r) {
    for (std::size_t c = 0; c < cv_p.cols(); ++c) cv(r, offset + c) = cv_p(r, c);
  }
  return cv;
}

std::vector<Tensor> GtvServer::generator_forward(const Tensor& global_cv, bool retain_graph) {
  obs::PartyScope party(0);
  static obs::Histogram& hist = server_histogram("generator_forward");
  obs::ScopedTimer timer("server.generator_forward", &hist);
  if (pending_slices_) {
    throw std::logic_error("GtvServer::generator_forward: backward still pending");
  }
  Tensor noise = Tensor::normal(global_cv.rows(), options_.gan.noise_dim, 0.0f, 1.0f, rng_);
  Tensor input =
      global_cv.cols() > 0 ? Tensor::concat_cols({noise, global_cv}) : std::move(noise);

  std::vector<Tensor> values;
  values.reserve(clients_.size());
  if (!retain_graph) {
    ag::NoGradGuard no_grad;
    Var h = g_top_->forward(Var(std::move(input)));
    std::size_t offset = 0;
    for (const auto& c : clients_) {
      values.push_back(h.value().slice_cols(offset, offset + c.g_slice_width));
      offset += c.g_slice_width;
    }
    return values;
  }
  Var h = g_top_->forward(Var(std::move(input)));
  std::vector<Var> slices;
  std::size_t offset = 0;
  for (const auto& c : clients_) {
    slices.push_back(ag::slice_cols(h, offset, offset + c.g_slice_width));
    values.push_back(slices.back().value());
    offset += c.g_slice_width;
  }
  pending_slices_ = std::move(slices);
  return values;
}

void GtvServer::generator_backward(const std::vector<Tensor>& slice_grads) {
  obs::PartyScope party(0);
  static obs::Histogram& hist = server_histogram("generator_backward");
  obs::ScopedTimer timer("server.generator_backward", &hist);
  if (!pending_slices_) {
    throw std::logic_error("GtvServer::generator_backward: no pending forward");
  }
  std::vector<Var> slices = std::move(*pending_slices_);
  pending_slices_.reset();
  if (slice_grads.size() != slices.size()) {
    throw std::invalid_argument("generator_backward: grad count mismatch");
  }
  for (std::size_t i = 0; i < slices.size(); ++i) {
    ag::backward(slices[i], Var(slice_grads[i]));
  }
}

Var GtvServer::critic_top(const std::vector<Var>& client_logits, const Var& global_cv) {
  obs::PartyScope party(0);
  static obs::Histogram& hist = server_histogram("critic_top");
  obs::ScopedTimer timer("server.critic_top", &hist);
  if (client_logits.size() != clients_.size()) {
    throw std::invalid_argument("critic_top: expected one logits block per client");
  }
  std::vector<Var> parts = client_logits;
  if (d_s_) parts.push_back(d_s_->forward(global_cv));
  return d_top_->forward(ag::concat_cols(parts));
}

void GtvServer::set_training(bool training) {
  g_top_->set_training(training);
  d_top_->set_training(training);
  if (d_s_) d_s_->set_training(training);
}

std::size_t GtvServer::discriminator_parameter_count() {
  return d_top_->parameter_count() + (d_s_ ? d_s_->parameter_count() : 0);
}

std::vector<Var> GtvServer::discriminator_parameters() {
  std::vector<Var> params = d_top_->parameters();
  if (d_s_) {
    auto ds = d_s_->parameters();
    params.insert(params.end(), ds.begin(), ds.end());
  }
  return params;
}

}  // namespace gtv::core
