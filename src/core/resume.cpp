#include "core/resume.h"

#include <stdexcept>

#include "core/client.h"
#include "core/server.h"
#include "nn/serialize.h"

namespace gtv::core {

namespace {

// Module/optimizer validation speaks std::runtime_error; resume callers
// expect the checkpoint error domain.
template <typename Fn>
void rethrow_as_checkpoint_error(Fn&& fn) {
  try {
    fn();
  } catch (const serve::CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw serve::CheckpointError(e.what());
  } catch (const std::invalid_argument& e) {  // restore_row_order bounds checks
    throw serve::CheckpointError(e.what());
  }
}

}  // namespace

serve::ServerTrainPart capture_server_train_state(GtvServer& server) {
  serve::ServerTrainPart part;
  part.g_top = nn::snapshot_state(server.generator_top());
  part.d_top = nn::snapshot_state(server.discriminator_top());
  if (server.d_s() != nullptr) part.d_s = nn::snapshot_state(*server.d_s());
  part.adam_g = server.adam_generator().state();
  part.adam_d = server.adam_discriminator().state();
  part.rng = server.rng().state();
  return part;
}

void restore_server_train_state(GtvServer& server, const serve::ServerTrainPart& part) {
  if ((server.d_s() != nullptr) != !part.d_s.empty()) {
    throw serve::CheckpointError(
        "restore_server_train_state: D^s presence mismatch (different column types?)");
  }
  rethrow_as_checkpoint_error([&] {
    nn::restore_state(server.generator_top(), part.g_top);
    nn::restore_state(server.discriminator_top(), part.d_top);
    if (server.d_s() != nullptr) nn::restore_state(*server.d_s(), part.d_s);
    server.adam_generator().set_state(part.adam_g);
    server.adam_discriminator().set_state(part.adam_d);
  });
  server.rng().set_state(part.rng);
  server.clear_pending();
}

serve::ClientTrainPart capture_client_train_state(GtvClient& client) {
  serve::ClientTrainPart part;
  part.g_bottom = nn::snapshot_state(client.generator_bottom());
  part.d_bottom = nn::snapshot_state(client.discriminator_bottom());
  part.adam_g = client.adam_generator().state();
  part.adam_d = client.adam_discriminator().state();
  part.rng = client.rng().state();
  part.dp_rng = client.dp_rng().state();
  part.original_row.reserve(client.n_rows());
  for (const std::size_t row : client.original_row_order()) {
    part.original_row.push_back(static_cast<std::uint64_t>(row));
  }
  return part;
}

void restore_client_train_state(GtvClient& client, const serve::ClientTrainPart& part) {
  std::vector<std::size_t> order;
  order.reserve(part.original_row.size());
  for (const std::uint64_t row : part.original_row) {
    order.push_back(static_cast<std::size_t>(row));
  }
  rethrow_as_checkpoint_error([&] {
    nn::restore_state(client.generator_bottom(), part.g_bottom);
    nn::restore_state(client.discriminator_bottom(), part.d_bottom);
    client.adam_generator().set_state(part.adam_g);
    client.adam_discriminator().set_state(part.adam_d);
    client.restore_row_order(order);
  });
  client.rng().set_state(part.rng);
  client.dp_rng().set_state(part.dp_rng);
  client.clear_pending();
}

}  // namespace gtv::core
