#include "serve/daemon.h"

#include <chrono>
#include <csignal>
#include <stdexcept>
#include <utility>

#include "data/table.h"
#include "obs/metrics.h"

namespace gtv::serve {

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& rows;
  obs::Counter& batches;
  obs::Counter& errors;
  obs::Histogram& batch_rows;
  obs::Histogram& request_ms;
  obs::Histogram& batch_ms;
};

ServeMetrics& metrics() {
  static ServeMetrics m{
      obs::MetricsRegistry::instance().counter("serve.requests"),
      obs::MetricsRegistry::instance().counter("serve.rows"),
      obs::MetricsRegistry::instance().counter("serve.batches"),
      obs::MetricsRegistry::instance().counter("serve.errors"),
      obs::MetricsRegistry::instance().histogram(
          "serve.batch_rows",
          {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}),
      obs::MetricsRegistry::instance().histogram("serve.request_ms"),
      obs::MetricsRegistry::instance().histogram("serve.batch_ms"),
  };
  return m;
}

}  // namespace

ServeDaemon::ServeDaemon(Synthesizer& synth, DaemonOptions options)
    : synth_(synth), options_(options) {
  metrics();  // resolve handles before any thread races the registry
}

ServeDaemon::~ServeDaemon() { drain(); }

void ServeDaemon::set_transport(std::shared_ptr<net::Transport> transport) {
  transport_ = std::move(transport);
  send_meter_.set_transport(transport_);
}

void ServeDaemon::start() {
  if (started_) return;
  if (!transport_) throw std::logic_error("ServeDaemon: set_transport before start");
  started_ = true;
  set_phase(obs::agg::Phase::kServeWait);
  batch_thread_ = std::thread([this] { batch_loop(); });
}

void ServeDaemon::add_peer(const std::string& peer) {
  if (draining_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(peers_mu_);
  auto it = handlers_.find(peer);
  if (it != handlers_.end()) {
    // A handler whose peer hung up parks in done_peers_; reap it so a
    // reconnect under the same name gets a fresh handler.
    if (done_peers_.count(peer) == 0) return;
    it->second.join();
    handlers_.erase(it);
    done_peers_.erase(peer);
  }
  handlers_.emplace(peer, std::thread([this, peer] { handler_loop(peer); }));
}

void ServeDaemon::watch_peers(net::TcpTransport* tcp) {
  watch_thread_ = std::thread([this, tcp] { watch_loop(tcp); });
}

void ServeDaemon::watch_loop(net::TcpTransport* tcp) {
  while (!stop_.load(std::memory_order_relaxed)) {
    for (const auto& peer : tcp->peers()) add_peer(peer);
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.peer_poll_ms));
  }
}

void ServeDaemon::handler_loop(const std::string& peer) {
  const std::string link_in = peer + "->serve";
  // Receives go straight to the raw (thread-safe) transport: timeouts are
  // the poll cadence, not errors, and traffic is charged sender-side.
  while (!stop_.load(std::memory_order_relaxed)) {
    std::vector<std::uint8_t> payload;
    try {
      payload = transport_->recv(link_in, options_.recv_timeout_ms);
    } catch (const net::TimeoutError&) {
      continue;
    } catch (const net::TransportError&) {
      // Peer hung up: a dead connection throws on every recv, so leaving
      // the loop (rather than retrying) is the only non-spinning option.
      // Not a serve error — clients come and go.
      break;
    }
    try {
      handle_message(peer, payload);
    } catch (const net::WireError& e) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      metrics().errors.add();
      send_error(peer, 0, e.what());
    }
  }
  std::lock_guard<std::mutex> lock(peers_mu_);
  done_peers_.insert(peer);
}

void ServeDaemon::handle_message(const std::string& peer,
                                 const std::vector<std::uint8_t>& payload) {
  switch (peek_type(payload)) {
    case MsgType::kHello: {
      const Hello hello = decode_hello(payload);
      if (hello.version != kServeProtocolVersion) {
        send_error(peer, 0,
                   "serve protocol version mismatch (daemon " +
                       std::to_string(kServeProtocolVersion) + ", client " +
                       std::to_string(hello.version) + ")");
        return;
      }
      Welcome welcome;
      welcome.model_hash = synth_.model_hash();
      for (const auto& spec : synth_.schema()) {
        welcome.columns.push_back(spec.name + ":" + data::to_string(spec.type));
      }
      send_to(peer, encode_welcome(welcome));
      return;
    }
    case MsgType::kSampleRequest: {
      const SampleRequest req = decode_sample_request(payload);
      if (draining_.load(std::memory_order_relaxed)) {
        send_error(peer, req.request_id, "daemon is draining");
        return;
      }
      Synthesizer::Condition cond;
      const Synthesizer::Condition* cond_ptr = nullptr;
      if (req.has_cond) {
        cond.column = req.cond_column;
        cond.category = req.cond_category;
        cond_ptr = &cond;
      }
      PendingRequest pending;
      try {
        // plan() is thread-safe and pre-draws the request's entire random
        // stream, so admission order cannot affect any request's rows.
        pending.plan = synth_.plan(static_cast<std::size_t>(req.n_rows), req.seed, cond_ptr);
      } catch (const std::invalid_argument& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        metrics().errors.add();
        send_error(peer, req.request_id, e.what());
        return;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      metrics().requests.add();
      if (req.n_rows == 0) {
        RowBatch empty;
        empty.request_id = req.request_id;
        empty.n_cols = synth_.n_cols();
        empty.done = true;
        send_to(peer, encode_row_batch(empty));
        return;
      }
      pending.peer = peer;
      pending.request_id = req.request_id;
      pending.rows_total = static_cast<std::size_t>(req.n_rows);
      pending.admit_us = now_us();
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        pending_rows_ += pending.rows_total;
        queue_.push_back(std::move(pending));
      }
      queue_cv_.notify_all();
      return;
    }
    default:
      throw net::WireError("serve daemon: unexpected message from " + peer);
  }
}

void ServeDaemon::batch_loop() {
  struct Segment {
    std::string peer;
    std::uint64_t request_id = 0;
    std::size_t start_row = 0;  // offset inside the request
    std::size_t rows = 0;
    std::size_t row_off = 0;  // offset inside the coalesced batch
    bool done = false;
    std::uint64_t admit_us = 0;
  };

  const std::size_t n_clients = synth_.n_clients();
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] {
      return !queue_.empty() || draining_.load(std::memory_order_relaxed);
    });
    if (queue_.empty()) break;  // draining and nothing left to serve

    // Linger: give concurrent clients max_wait_us to land in this batch,
    // unless it is already full (or we are draining).
    const auto deadline =
        std::chrono::steady_clock::time_point(
            std::chrono::microseconds(queue_.front().admit_us)) +
        std::chrono::microseconds(options_.max_wait_us);
    queue_cv_.wait_until(lock, deadline, [&] {
      return pending_rows_ >= options_.max_batch ||
             draining_.load(std::memory_order_relaxed);
    });

    // Assemble a FIFO-contiguous batch of up to max_batch rows. A large
    // request may be split across batches; its client sees a stream of
    // RowBatch frames either way.
    std::vector<Segment> segments;
    std::vector<Tensor> input_parts;
    std::vector<std::vector<Tensor>> gumbel_parts(n_clients);
    std::size_t taken = 0;
    for (auto& req : queue_) {
      if (taken >= options_.max_batch) break;
      const std::size_t take =
          std::min(req.rows_total - req.next_row, options_.max_batch - taken);
      Segment seg;
      seg.peer = req.peer;
      seg.request_id = req.request_id;
      seg.start_row = req.next_row;
      seg.rows = take;
      seg.row_off = taken;
      seg.admit_us = req.admit_us;
      input_parts.push_back(req.plan.input.slice_rows(req.next_row, req.next_row + take));
      for (std::size_t i = 0; i < n_clients; ++i) {
        gumbel_parts[i].push_back(
            req.plan.gumbel[i].slice_rows(req.next_row, req.next_row + take));
      }
      req.next_row += take;
      taken += take;
      seg.done = req.next_row == req.rows_total;
      segments.push_back(std::move(seg));
    }
    pending_rows_ -= taken;
    while (!queue_.empty() && queue_.front().next_row == queue_.front().rows_total) {
      queue_.pop_front();
    }
    lock.unlock();

    set_phase(obs::agg::Phase::kServeBatch);
    const std::uint64_t t0 = now_us();
    try {
      Tensor input = Tensor::concat_rows(input_parts);
      std::vector<Tensor> gumbel;
      gumbel.reserve(n_clients);
      for (std::size_t i = 0; i < n_clients; ++i) {
        gumbel.push_back(Tensor::concat_rows(gumbel_parts[i]));
      }
      const data::Table table = synth_.run(input, gumbel);

      const std::uint64_t done_us = now_us();
      for (const auto& seg : segments) {
        RowBatch batch;
        batch.request_id = seg.request_id;
        batch.start_row = seg.start_row;
        batch.n_rows = seg.rows;
        batch.n_cols = table.n_cols();
        batch.done = seg.done;
        batch.cells.reserve(seg.rows * table.n_cols());
        for (std::size_t r = seg.row_off; r < seg.row_off + seg.rows; ++r) {
          for (std::size_t c = 0; c < table.n_cols(); ++c) {
            batch.cells.push_back(table.cell(r, c));
          }
        }
        send_to(seg.peer, encode_row_batch(batch));
        if (seg.done) {
          metrics().request_ms.record(
              static_cast<double>(done_us - seg.admit_us) / 1000.0);
        }
      }
      batches_.fetch_add(1, std::memory_order_relaxed);
      rows_.fetch_add(taken, std::memory_order_relaxed);
      metrics().batches.add();
      metrics().rows.add(taken);
      metrics().batch_rows.record(static_cast<double>(taken));
      metrics().batch_ms.record(static_cast<double>(now_us() - t0) / 1000.0);
      if (options_.status != nullptr) {
        options_.status->set_round(batches_.load(std::memory_order_relaxed));
      }
    } catch (const std::exception& e) {
      // A failed forward fails every request in the batch; clients see the
      // reason instead of hanging.
      errors_.fetch_add(segments.size(), std::memory_order_relaxed);
      metrics().errors.add(segments.size());
      for (const auto& seg : segments) {
        send_error(seg.peer, seg.request_id, std::string("batch failed: ") + e.what());
      }
    }
    set_phase(draining_.load(std::memory_order_relaxed) ? obs::agg::Phase::kServeDrain
                                                        : obs::agg::Phase::kServeWait);
    lock.lock();
  }
}

void ServeDaemon::send_to(const std::string& peer,
                          const std::vector<std::uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(send_mu_);
  try {
    send_meter_.send_payload("serve->" + peer, payload);
  } catch (const net::TransportError&) {
    // Peer went away mid-reply; nothing to deliver to.
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics().errors.add();
  }
}

void ServeDaemon::send_error(const std::string& peer, std::uint64_t request_id,
                             const std::string& message) {
  ErrorReply reply;
  reply.request_id = request_id;
  reply.message = message;
  send_to(peer, encode_error(reply));
}

void ServeDaemon::set_phase(obs::agg::Phase phase) {
  if (options_.status != nullptr) options_.status->set_phase(phase);
}

void ServeDaemon::drain() {
  if (drained_) return;
  drained_ = true;
  draining_.store(true, std::memory_order_relaxed);
  set_phase(obs::agg::Phase::kServeDrain);
  queue_cv_.notify_all();
  if (batch_thread_.joinable()) batch_thread_.join();
  stop_.store(true, std::memory_order_relaxed);
  if (watch_thread_.joinable()) watch_thread_.join();
  // Join outside the lock: an exiting handler takes peers_mu_ to mark
  // itself done, so joining while holding it would deadlock.
  std::map<std::string, std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    handlers.swap(handlers_);
    done_peers_.clear();
  }
  for (auto& [peer, thread] : handlers) {
    (void)peer;
    if (thread.joinable()) thread.join();
  }
  if (started_) set_phase(obs::agg::Phase::kDone);
}

ServeStats ServeDaemon::stats() const {
  ServeStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rows = rows_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

// --- ServeClient -----------------------------------------------------------------

ServeClient::ServeClient(std::string name)
    : name_(std::move(name)),
      link_out_(name_ + "->serve"),
      link_in_("serve->" + name_) {}

void ServeClient::connect(const std::string& host, std::uint16_t port) {
  transport_ = std::make_shared<net::TcpTransport>(name_);
  transport_->connect_peer(kServeParty, host, port);
  meter_.set_transport(transport_);
}

Welcome ServeClient::hello() {
  meter_.send_payload(link_out_, encode_hello(Hello{}));
  const std::vector<std::uint8_t> payload = meter_.recv_payload(link_in_);
  if (peek_type(payload) == MsgType::kError) {
    throw net::VersionError("serve hello rejected: " + decode_error(payload).message);
  }
  const Welcome welcome = decode_welcome(payload);
  if (welcome.version != kServeProtocolVersion) {
    throw net::VersionError("serve protocol version mismatch (daemon " +
                            std::to_string(welcome.version) + ")");
  }
  return welcome;
}

ServeClient::Result ServeClient::sample(std::size_t rows, std::uint64_t seed,
                                        const Synthesizer::Condition* cond) {
  SampleRequest req;
  req.request_id = next_request_id_++;
  req.n_rows = rows;
  req.seed = seed;
  if (cond != nullptr) {
    req.has_cond = true;
    req.cond_column = cond->column;
    req.cond_category = cond->category;
  }
  meter_.send_payload(link_out_, encode_sample_request(req));

  Result result;
  std::uint64_t expected_row = 0;
  for (;;) {
    const std::vector<std::uint8_t> payload = meter_.recv_payload(link_in_);
    if (peek_type(payload) == MsgType::kError) {
      throw std::runtime_error("serve request failed: " + decode_error(payload).message);
    }
    const RowBatch batch = decode_row_batch(payload);
    if (batch.request_id != req.request_id) {
      throw std::runtime_error("serve client: reply for wrong request id");
    }
    if (batch.start_row != expected_row) {
      throw std::runtime_error("serve client: out-of-order row batch");
    }
    result.n_cols = batch.n_cols;
    result.cells.insert(result.cells.end(), batch.cells.begin(), batch.cells.end());
    expected_row += batch.n_rows;
    ++result.batches;
    if (batch.done) break;
  }
  result.n_rows = expected_row;
  if (expected_row != rows) {
    throw std::runtime_error("serve client: row count mismatch");
  }
  return result;
}

// --- drain signal latch ----------------------------------------------------------

namespace {
std::atomic<bool> g_drain_requested{false};
void on_drain_signal(int) { g_drain_requested.store(true, std::memory_order_relaxed); }
}  // namespace

void install_drain_handler() {
  std::signal(SIGTERM, on_drain_signal);
  std::signal(SIGINT, on_drain_signal);
}

bool drain_requested() { return g_drain_requested.load(std::memory_order_relaxed); }

}  // namespace gtv::serve
