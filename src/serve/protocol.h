// gtv::serve — typed request/response protocol for the serving daemon.
//
// Serve messages ride as payloads inside gtv::net frames (the transport
// already provides versioned envelopes, CRC, and per-link sequencing), so
// this layer only defines the application vocabulary. Every message starts
// with a little-endian u32 type tag; peek_type() dispatches without
// consuming.
//
//   client -> daemon ("<name>->serve"):
//     Hello          protocol version check before anything else
//     SampleRequest  n_rows + seed (+ optional condition); request_id is
//                    chosen by the client and echoed on every reply
//   daemon -> client ("serve-><name>"):
//     Welcome        checkpoint model_hash + joined schema tokens
//                    ("name:<type>"), so clients can assert they are
//                    talking to the model they expect
//     RowBatch       a contiguous slice of the request's rows. Cells are
//                    f64 (the decoded values exactly as data::Table holds
//                    them, so TCP parity with in-process sampling is
//                    byte-testable). `done` marks the final slice.
//     ErrorReply     request-scoped failure (bad column, bad category...)
//
// Decoders validate sizes exactly; malformed input raises net::WireError.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gtv::serve {

inline constexpr std::uint32_t kServeProtocolVersion = 1;

enum class MsgType : std::uint32_t {
  kHello = 1,
  kWelcome = 2,
  kSampleRequest = 3,
  kRowBatch = 4,
  kError = 5,
};

// Type tag of an encoded message (throws net::WireError when too short).
MsgType peek_type(const std::vector<std::uint8_t>& payload);

struct Hello {
  std::uint32_t version = kServeProtocolVersion;
};

struct Welcome {
  std::uint32_t version = kServeProtocolVersion;
  std::uint64_t model_hash = 0;
  // Joined schema as "name:<type>" tokens (type via data::to_string).
  std::vector<std::string> columns;
};

struct SampleRequest {
  std::uint64_t request_id = 0;
  std::uint64_t n_rows = 0;
  std::uint64_t seed = 0;
  bool has_cond = false;
  std::string cond_column;
  std::string cond_category;
};

struct RowBatch {
  std::uint64_t request_id = 0;
  std::uint64_t start_row = 0;  // offset inside the request
  std::uint64_t n_rows = 0;
  std::uint64_t n_cols = 0;
  bool done = false;             // last slice of this request
  std::vector<double> cells;     // row-major, n_rows * n_cols
};

struct ErrorReply {
  std::uint64_t request_id = 0;
  std::string message;
};

std::vector<std::uint8_t> encode_hello(const Hello& msg);
Hello decode_hello(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_welcome(const Welcome& msg);
Welcome decode_welcome(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_sample_request(const SampleRequest& msg);
SampleRequest decode_sample_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_row_batch(const RowBatch& msg);
RowBatch decode_row_batch(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_error(const ErrorReply& msg);
ErrorReply decode_error(const std::vector<std::uint8_t>& payload);

}  // namespace gtv::serve
