#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "autograd/autograd.h"

namespace gtv::serve {

Synthesizer::Synthesizer(const Checkpoint& checkpoint)
    : model_hash_(checkpoint.model_hash),
      noise_dim_(static_cast<std::size_t>(checkpoint.noise_dim)),
      gumbel_tau_(checkpoint.gumbel_tau) {
  if (checkpoint.clients.empty()) throw CheckpointError("Synthesizer: checkpoint has no clients");
  if (noise_dim_ == 0) throw CheckpointError("Synthesizer: zero noise_dim");
  if (!(gumbel_tau_ > 0.0f)) throw CheckpointError("Synthesizer: non-positive gumbel_tau");

  g_top_ = build_generator(checkpoint.g_top);

  std::size_t g_total = 0;
  for (const auto& part : checkpoint.clients) {
    ClientModel client;
    client.cv_width = static_cast<std::size_t>(part.cv_width);
    client.g_slice_width = static_cast<std::size_t>(part.g_slice_width);
    client.cv_offset = total_cv_;
    client.g_bottom = build_generator(part.g_bottom);
    client.encoder = part.encoder;
    if (client.g_bottom->out_features() != client.encoder.total_width()) {
      throw CheckpointError("Synthesizer: G^b output width does not match encoder width");
    }
    if (part.g_bottom.arch.in_features != part.g_slice_width) {
      throw CheckpointError("Synthesizer: G^b input width does not match slice width");
    }
    // CV layout inside this client's segment: cumulative cardinalities in
    // discrete-span order, matching ConditionalSampler's cv_offsets.
    std::size_t local_cv = 0;
    for (const auto& ds : client.encoder.discrete_spans()) {
      client.span_cv_offsets.push_back(local_cv);
      local_cv += ds.cardinality;
      std::vector<double> freq(ds.frequencies.size());
      for (std::size_t k = 0; k < freq.size(); ++k) {
        freq[k] = static_cast<double>(ds.frequencies[k]);
      }
      client.span_frequencies.push_back(std::move(freq));
    }
    if (local_cv != client.cv_width) {
      throw CheckpointError("Synthesizer: discrete spans do not match cv_width");
    }
    total_cv_ += client.cv_width;
    g_total += client.g_slice_width;
    client_weights_.push_back(static_cast<double>(client.g_slice_width));

    const std::size_t client_index = clients_.size();
    const auto& shard_schema = client.encoder.schema_table().schema();
    for (std::size_t c = 0; c < shard_schema.size(); ++c) {
      schema_.push_back(shard_schema[c]);
      column_owner_.emplace_back(client_index, c);
    }
    clients_.push_back(std::move(client));
  }
  if (g_top_->out_features() != g_total) {
    throw CheckpointError("Synthesizer: G^t output width does not match slice widths");
  }
  if (checkpoint.g_top.arch.in_features != noise_dim_ + total_cv_) {
    throw CheckpointError("Synthesizer: G^t input width does not match noise_dim + cv");
  }
}

void Synthesizer::fill_cv_draws(Tensor& input, std::size_t row, Rng& rng) const {
  // Mirrors the trainer's synthesis path: pick the CV-contributing client
  // p ~ P_r, then draw span + category from the training frequencies
  // (ConditionalSampler::sample_original). A client without discrete
  // columns leaves its segment all-zero, like an empty local CV.
  const std::size_t p = rng.categorical(client_weights_);
  const ClientModel& client = clients_[p];
  if (client.span_frequencies.empty()) return;
  const std::size_t span = rng.uniform_index(client.span_frequencies.size());
  const std::size_t category = rng.categorical(client.span_frequencies[span]);
  input(row, noise_dim_ + client.cv_offset + client.span_cv_offsets[span] + category) = 1.0f;
}

Synthesizer::Plan Synthesizer::plan(std::size_t rows, std::uint64_t seed,
                                    const Condition* cond) const {
  // Resolve the condition before drawing anything so a bad request fails
  // without consuming entropy.
  std::size_t cond_position = 0;
  if (cond != nullptr) {
    std::size_t joined = schema_.size();
    for (std::size_t c = 0; c < schema_.size(); ++c) {
      if (schema_[c].name == cond->column) {
        joined = c;
        break;
      }
    }
    if (joined == schema_.size()) {
      throw std::invalid_argument("sample: unknown condition column '" + cond->column + "'");
    }
    const auto [client_index, local_col] = column_owner_[joined];
    const ClientModel& client = clients_[client_index];
    const auto& discrete = client.encoder.discrete_spans();
    std::size_t span = discrete.size();
    for (std::size_t s = 0; s < discrete.size(); ++s) {
      if (discrete[s].source_column == local_col) {
        span = s;
        break;
      }
    }
    if (span == discrete.size()) {
      throw std::invalid_argument("sample: condition column '" + cond->column +
                                  "' is not categorical");
    }
    const auto& categories = schema_[joined].categories;
    const auto cat_it = std::find(categories.begin(), categories.end(), cond->category);
    if (cat_it == categories.end()) {
      throw std::invalid_argument("sample: unknown category '" + cond->category +
                                  "' for column '" + cond->column + "'");
    }
    cond_position = client.cv_offset + client.span_cv_offsets[span] +
                    static_cast<std::size_t>(cat_it - categories.begin());
  }

  Plan out;
  out.rows = rows;
  out.input = Tensor::zeros(rows, noise_dim_ + total_cv_);
  out.gumbel.reserve(clients_.size());
  for (const auto& client : clients_) {
    out.gumbel.push_back(Tensor::zeros(rows, client.encoder.total_width()));
  }

  // Fixed per-row draw order: (1) conditional vector, (2) generator noise,
  // (3) gumbel noise per client in span order. Everything a row needs
  // comes from this one stream, so coalescing cannot perturb it.
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    if (cond != nullptr) {
      out.input(r, noise_dim_ + cond_position) = 1.0f;
    } else {
      fill_cv_draws(out.input, r, rng);
    }
    for (std::size_t d = 0; d < noise_dim_; ++d) {
      out.input(r, d) = static_cast<float>(rng.normal());
    }
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      for (const auto& span : clients_[i].encoder.spans()) {
        if (span.activation != encode::Activation::kSoftmax) continue;
        for (std::size_t c = 0; c < span.width; ++c) {
          // Same rejection loop as gan::gumbel_softmax.
          double u = 0.0;
          do {
            u = rng.uniform();
          } while (u <= 1e-12);
          out.gumbel[i](r, span.offset + c) = static_cast<float>(-std::log(-std::log(u)));
        }
      }
    }
  }
  return out;
}

data::Table Synthesizer::run(const Tensor& input, const std::vector<Tensor>& gumbel) {
  if (gumbel.size() != clients_.size()) {
    throw std::invalid_argument("Synthesizer::run: gumbel tensor per client required");
  }
  const std::size_t rows = input.rows();
  ag::NoGradGuard no_grad;
  Tensor interface = g_top_->forward(ag::Var(input)).value();

  std::vector<data::Table> shards;
  shards.reserve(clients_.size());
  std::size_t offset = 0;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    ClientModel& client = clients_[i];
    Tensor slice = interface.slice_cols(offset, offset + client.g_slice_width);
    offset += client.g_slice_width;
    Tensor logits = client.g_bottom->forward(ag::Var(std::move(slice))).value();

    // Per-span activations with the pre-drawn gumbel noise. Row-wise plain
    // tensor math — no RNG on this path.
    Tensor activated(rows, client.encoder.total_width());
    for (const auto& span : client.encoder.spans()) {
      if (span.activation == encode::Activation::kTanh) {
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t c = span.offset; c < span.offset + span.width; ++c) {
            activated(r, c) = std::tanh(logits(r, c));
          }
        }
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          float max_z = -std::numeric_limits<float>::infinity();
          for (std::size_t c = span.offset; c < span.offset + span.width; ++c) {
            const float z = (logits(r, c) + gumbel[i](r, c)) / gumbel_tau_;
            activated(r, c) = z;
            max_z = std::max(max_z, z);
          }
          float total = 0.0f;
          for (std::size_t c = span.offset; c < span.offset + span.width; ++c) {
            activated(r, c) = std::exp(activated(r, c) - max_z);
            total += activated(r, c);
          }
          for (std::size_t c = span.offset; c < span.offset + span.width; ++c) {
            activated(r, c) /= total;
          }
        }
      }
    }
    shards.push_back(client.encoder.decode(activated));
  }
  return data::Table::concat_columns(shards);
}

data::Table Synthesizer::sample(std::size_t rows, std::uint64_t seed, const Condition* cond) {
  Plan p = plan(rows, seed, cond);
  return run(p.input, p.gumbel);
}

}  // namespace gtv::serve
