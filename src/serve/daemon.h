// gtv::serve — batched synthesis-serving daemon over gtv::net.
//
// One ServeDaemon per serving process (party name "serve"). Clients talk
// the serve/protocol.h vocabulary on "<client>->serve" / "serve-><client>"
// links. Requests are admitted by per-peer handler threads and coalesced
// by ONE batcher thread into single generator forward passes:
//
//   handler (per peer)                  batcher (single)
//   ─ recv SampleRequest                ─ wait for pending rows
//   ─ Synthesizer::plan(seed)           ─ linger up to max_wait_us
//     (thread-safe, pre-draws all         (or until max_batch rows)
//      randomness for the request)      ─ concat plan slices, ONE
//   ─ enqueue PendingRequest              Synthesizer::run()
//                                       ─ slice decoded rows per request,
//                                         stream RowBatch frames back
//
// Because a request's randomness is fully pre-drawn at admission and
// run() is row-independent, coalescing cannot perturb any client's
// stream: a seeded request returns byte-identical rows whether it shares
// a batch with 63 other clients or runs alone. Requests larger than
// max_batch are split across several forwards and streamed as multiple
// RowBatch frames (done=true on the last).
//
// Concurrency over the shared transport: net::TrafficMeter is NOT
// thread-safe, so handlers receive straight from the (thread-safe)
// Transport and all sends (handler welcomes/errors + batcher row
// batches) go through ONE send meter under a mutex — traffic is charged
// sender-side, so nothing is lost by not metering receives.
//
// Observability: serve.requests / serve.rows / serve.batches /
// serve.errors counters, serve.batch_rows occupancy histogram and
// serve.request_ms / serve.batch_ms latency histograms in the global
// MetricsRegistry (scrapable via /metrics), plus LiveStatus phases
// kServeWait / kServeBatch / kServeDrain so gtv-top, the sampler and the
// black box work on a serving process unchanged.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.h"
#include "net/wire.h"
#include "obs/snapshot.h"
#include "serve/engine.h"
#include "serve/protocol.h"

namespace gtv::serve {

// The party name a serving daemon announces on its transport.
inline constexpr const char* kServeParty = "serve";

struct DaemonOptions {
  std::size_t max_batch = 1024;  // coalesced rows per generator forward
  int max_wait_us = 2000;        // linger before running a partial batch
  int recv_timeout_ms = 50;      // per-peer poll cadence (drain latency)
  int peer_poll_ms = 20;         // watch_peers() discovery cadence
  obs::agg::LiveStatus* status = nullptr;  // optional live phase/round hook
};

struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t rows = 0;
  std::uint64_t batches = 0;
  std::uint64_t errors = 0;
};

class ServeDaemon {
 public:
  ServeDaemon(Synthesizer& synth, DaemonOptions options = {});
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  // Must be called before start(). The transport is shared by every
  // handler and the batcher (it is thread-safe; the meters are per-thread).
  void set_transport(std::shared_ptr<net::Transport> transport);

  // Starts the batcher thread. Peers are added explicitly (inproc tests)
  // or discovered via watch_peers (TCP daemon).
  void start();

  // Spawns a handler thread for `peer` (idempotent).
  void add_peer(const std::string& peer);

  // Polls `tcp`->peers() and add_peer()s every new connection. `tcp` must
  // outlive the daemon (it is normally the same object passed to
  // set_transport).
  void watch_peers(net::TcpTransport* tcp);

  // Graceful shutdown: stop admitting new requests (handlers answer
  // ErrorReply "draining"), finish every request already admitted, then
  // join all threads. Idempotent; also called by the destructor.
  void drain();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  ServeStats stats() const;

 private:
  struct PendingRequest {
    std::string peer;
    std::uint64_t request_id = 0;
    std::size_t rows_total = 0;
    std::size_t next_row = 0;  // first row not yet synthesized
    Synthesizer::Plan plan;
    std::uint64_t admit_us = 0;
  };

  void handler_loop(const std::string& peer);
  void watch_loop(net::TcpTransport* tcp);
  void batch_loop();
  void handle_message(const std::string& peer,
                      const std::vector<std::uint8_t>& payload);
  // All daemon->client sends funnel through here (one meter, one lock).
  void send_to(const std::string& peer, const std::vector<std::uint8_t>& payload);
  void send_error(const std::string& peer, std::uint64_t request_id,
                  const std::string& message);
  void set_phase(obs::agg::Phase phase);

  Synthesizer& synth_;
  const DaemonOptions options_;
  std::shared_ptr<net::Transport> transport_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};  // set after the queue drains; ends handlers
  bool started_ = false;
  bool drained_ = false;

  std::mutex send_mu_;
  net::TrafficMeter send_meter_;

  std::mutex peers_mu_;
  std::map<std::string, std::thread> handlers_;
  std::set<std::string> done_peers_;  // handlers whose peer disconnected
  std::thread watch_thread_;
  std::thread batch_thread_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  std::size_t pending_rows_ = 0;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rows_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> errors_{0};
};

// Blocking client for the serve protocol. Owns its transport and meter;
// NOT thread-safe — one ServeClient per client thread.
class ServeClient {
 public:
  explicit ServeClient(std::string name);

  // Dials the daemon and completes the transport handshake.
  void connect(const std::string& host, std::uint16_t port);

  // Version check + model identity. Throws net::VersionError on a serve
  // protocol mismatch.
  Welcome hello();

  struct Result {
    std::uint64_t n_rows = 0;
    std::uint64_t n_cols = 0;
    std::vector<double> cells;  // row-major
    std::uint64_t batches = 0;  // RowBatch frames this request arrived in
  };

  // Sends one seeded request and blocks until every row arrived. Throws
  // std::runtime_error carrying the daemon's message on ErrorReply.
  Result sample(std::size_t rows, std::uint64_t seed,
                const Synthesizer::Condition* cond = nullptr);

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::string link_out_;  // "<name>->serve"
  std::string link_in_;   // "serve-><name>"
  std::shared_ptr<net::TcpTransport> transport_;
  net::TrafficMeter meter_;
  std::uint64_t next_request_id_ = 1;
};

// SIGTERM/SIGINT latch for serving processes: the handler only sets an
// atomic flag so the daemon can drain gracefully from the main thread.
void install_drain_handler();
bool drain_requested();

}  // namespace gtv::serve
