#include "serve/protocol.h"

#include "net/transport.h"
#include "tensor/bytes.h"

namespace gtv::serve {

namespace {

constexpr std::size_t kMaxColumns = 1u << 20;
constexpr std::size_t kMaxBatchCells = std::size_t{1} << 28;

void put_tag(std::vector<std::uint8_t>& out, MsgType type) {
  bytes::put_u32(out, static_cast<std::uint32_t>(type));
}

// Wraps the bytes::Reader truncation errors into the transport's typed
// error so callers handle one exception family for wire problems.
template <typename Fn>
auto wire_guard(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const net::WireError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw net::WireError(std::string(what) + ": " + e.what());
  }
}

bytes::Reader open(const std::vector<std::uint8_t>& payload, MsgType expect,
                   const char* what) {
  bytes::Reader r(payload.data(), payload.size(), what);
  const std::uint32_t tag = r.u32("type tag");
  if (tag != static_cast<std::uint32_t>(expect)) {
    throw net::WireError(std::string(what) + ": unexpected message type " +
                         std::to_string(tag));
  }
  return r;
}

}  // namespace

MsgType peek_type(const std::vector<std::uint8_t>& payload) {
  return wire_guard("serve peek_type", [&] {
    bytes::Reader r(payload.data(), payload.size(), "serve peek_type");
    return static_cast<MsgType>(r.u32("type tag"));
  });
}

std::vector<std::uint8_t> encode_hello(const Hello& msg) {
  std::vector<std::uint8_t> out;
  put_tag(out, MsgType::kHello);
  bytes::put_u32(out, msg.version);
  return out;
}

Hello decode_hello(const std::vector<std::uint8_t>& payload) {
  return wire_guard("serve hello", [&] {
    bytes::Reader r = open(payload, MsgType::kHello, "serve hello");
    Hello msg;
    msg.version = r.u32("version");
    r.done();
    return msg;
  });
}

std::vector<std::uint8_t> encode_welcome(const Welcome& msg) {
  std::vector<std::uint8_t> out;
  put_tag(out, MsgType::kWelcome);
  bytes::put_u32(out, msg.version);
  bytes::put_u64(out, msg.model_hash);
  bytes::put_u64(out, msg.columns.size());
  for (const auto& column : msg.columns) bytes::put_string(out, column);
  return out;
}

Welcome decode_welcome(const std::vector<std::uint8_t>& payload) {
  return wire_guard("serve welcome", [&] {
    bytes::Reader r = open(payload, MsgType::kWelcome, "serve welcome");
    Welcome msg;
    msg.version = r.u32("version");
    msg.model_hash = r.u64("model hash");
    const std::uint64_t n = r.u64("column count");
    if (n > kMaxColumns) throw net::WireError("serve welcome: implausible column count");
    msg.columns.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) msg.columns.push_back(r.str("column"));
    r.done();
    return msg;
  });
}

std::vector<std::uint8_t> encode_sample_request(const SampleRequest& msg) {
  std::vector<std::uint8_t> out;
  put_tag(out, MsgType::kSampleRequest);
  bytes::put_u64(out, msg.request_id);
  bytes::put_u64(out, msg.n_rows);
  bytes::put_u64(out, msg.seed);
  bytes::put_u8(out, msg.has_cond ? 1 : 0);
  if (msg.has_cond) {
    bytes::put_string(out, msg.cond_column);
    bytes::put_string(out, msg.cond_category);
  }
  return out;
}

SampleRequest decode_sample_request(const std::vector<std::uint8_t>& payload) {
  return wire_guard("serve sample request", [&] {
    bytes::Reader r = open(payload, MsgType::kSampleRequest, "serve sample request");
    SampleRequest msg;
    msg.request_id = r.u64("request id");
    msg.n_rows = r.u64("row count");
    msg.seed = r.u64("seed");
    const std::uint8_t flag = r.u8("condition flag");
    if (flag > 1) throw net::WireError("serve sample request: bad condition flag");
    msg.has_cond = flag == 1;
    if (msg.has_cond) {
      msg.cond_column = r.str("condition column");
      msg.cond_category = r.str("condition category");
    }
    r.done();
    return msg;
  });
}

std::vector<std::uint8_t> encode_row_batch(const RowBatch& msg) {
  std::vector<std::uint8_t> out;
  put_tag(out, MsgType::kRowBatch);
  bytes::put_u64(out, msg.request_id);
  bytes::put_u64(out, msg.start_row);
  bytes::put_u64(out, msg.n_rows);
  bytes::put_u64(out, msg.n_cols);
  bytes::put_u8(out, msg.done ? 1 : 0);
  for (const double cell : msg.cells) bytes::put_f64(out, cell);
  return out;
}

RowBatch decode_row_batch(const std::vector<std::uint8_t>& payload) {
  return wire_guard("serve row batch", [&] {
    bytes::Reader r = open(payload, MsgType::kRowBatch, "serve row batch");
    RowBatch msg;
    msg.request_id = r.u64("request id");
    msg.start_row = r.u64("start row");
    msg.n_rows = r.u64("row count");
    msg.n_cols = r.u64("column count");
    const std::uint8_t flag = r.u8("done flag");
    if (flag > 1) throw net::WireError("serve row batch: bad done flag");
    msg.done = flag == 1;
    if (msg.n_cols != 0 && msg.n_rows > kMaxBatchCells / msg.n_cols) {
      throw net::WireError("serve row batch: cell count overflow");
    }
    const std::size_t cells =
        static_cast<std::size_t>(msg.n_rows) * static_cast<std::size_t>(msg.n_cols);
    msg.cells.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i) msg.cells.push_back(r.f64("cell"));
    r.done();
    return msg;
  });
}

std::vector<std::uint8_t> encode_error(const ErrorReply& msg) {
  std::vector<std::uint8_t> out;
  put_tag(out, MsgType::kError);
  bytes::put_u64(out, msg.request_id);
  bytes::put_string(out, msg.message);
  return out;
}

ErrorReply decode_error(const std::vector<std::uint8_t>& payload) {
  return wire_guard("serve error", [&] {
    bytes::Reader r = open(payload, MsgType::kError, "serve error");
    ErrorReply msg;
    msg.request_id = r.u64("request id");
    msg.message = r.str("message");
    r.done();
    return msg;
  });
}

}  // namespace gtv::serve
