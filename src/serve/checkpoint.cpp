#include "serve/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "nn/serialize.h"
#include "tensor/bytes.h"

namespace gtv::serve {

namespace {

void append_net_state(std::vector<std::uint8_t>& out, const NetState& state) {
  bytes::put_u64(out, state.arch.in_features);
  bytes::put_u64(out, state.arch.hidden);
  bytes::put_u64(out, state.arch.n_blocks);
  bytes::put_u64(out, state.arch.out_features);
  nn::append_tensor_block(out, state.tensors);
}

NetState parse_net_state(const std::uint8_t* data, std::size_t size, std::size_t& offset) {
  bytes::Reader r(data, size, "checkpoint", offset);
  NetState state;
  state.arch.in_features = r.u64("arch in");
  state.arch.hidden = r.u64("arch hidden");
  state.arch.n_blocks = r.u64("arch blocks");
  state.arch.out_features = r.u64("arch out");
  offset = r.offset;
  state.tensors = nn::parse_tensor_block(data, size, offset);
  return state;
}

void append_client_part(std::vector<std::uint8_t>& out, const ClientPart& part) {
  bytes::put_u64(out, part.cv_width);
  bytes::put_u64(out, part.g_slice_width);
  append_net_state(out, part.g_bottom);
  part.encoder.serialize(out);
}

ClientPart parse_client_part(const std::uint8_t* data, std::size_t size, std::size_t& offset) {
  bytes::Reader r(data, size, "checkpoint", offset);
  ClientPart part;
  part.cv_width = r.u64("cv width");
  part.g_slice_width = r.u64("g slice width");
  offset = r.offset;
  part.g_bottom = parse_net_state(data, size, offset);
  part.encoder = encode::TableEncoder::deserialize(data, size, offset);
  return part;
}

// --- training-state codec helpers ------------------------------------------------

void append_rng_state(std::vector<std::uint8_t>& out, const Rng::State& state) {
  for (int i = 0; i < 4; ++i) bytes::put_u64(out, state.words[i]);
  bytes::put_u64(out, state.spare_bits);
  bytes::put_u8(out, state.has_spare ? 1 : 0);
}

Rng::State parse_rng_state(const std::uint8_t* data, std::size_t size, std::size_t& offset) {
  bytes::Reader r(data, size, "train checkpoint", offset);
  Rng::State state;
  for (int i = 0; i < 4; ++i) state.words[i] = r.u64("rng word");
  state.spare_bits = r.u64("rng spare");
  state.has_spare = r.u8("rng has_spare") != 0;
  offset = r.offset;
  return state;
}

void append_adam_state(std::vector<std::uint8_t>& out, const nn::AdamState& state) {
  bytes::put_u64(out, state.step_count);
  nn::append_tensor_block(out, state.m);
  nn::append_tensor_block(out, state.v);
}

nn::AdamState parse_adam_state(const std::uint8_t* data, std::size_t size,
                               std::size_t& offset) {
  bytes::Reader r(data, size, "train checkpoint", offset);
  nn::AdamState state;
  state.step_count = r.u64("adam step count");
  offset = r.offset;
  state.m = nn::parse_tensor_block(data, size, offset);
  state.v = nn::parse_tensor_block(data, size, offset);
  if (state.m.size() != state.v.size()) {
    throw CheckpointError("train checkpoint: adam moment count mismatch");
  }
  return state;
}

void append_server_train_part(std::vector<std::uint8_t>& out, const ServerTrainPart& part) {
  nn::append_tensor_block(out, part.g_top);
  nn::append_tensor_block(out, part.d_top);
  bytes::put_u8(out, part.d_s.empty() ? 0 : 1);
  if (!part.d_s.empty()) nn::append_tensor_block(out, part.d_s);
  append_adam_state(out, part.adam_g);
  append_adam_state(out, part.adam_d);
  append_rng_state(out, part.rng);
}

ServerTrainPart parse_server_train_part(const std::uint8_t* data, std::size_t size,
                                        std::size_t& offset) {
  ServerTrainPart part;
  part.g_top = nn::parse_tensor_block(data, size, offset);
  part.d_top = nn::parse_tensor_block(data, size, offset);
  bytes::Reader r(data, size, "train checkpoint", offset);
  const bool has_d_s = r.u8("has d_s") != 0;
  offset = r.offset;
  if (has_d_s) part.d_s = nn::parse_tensor_block(data, size, offset);
  part.adam_g = parse_adam_state(data, size, offset);
  part.adam_d = parse_adam_state(data, size, offset);
  part.rng = parse_rng_state(data, size, offset);
  return part;
}

void append_client_train_part(std::vector<std::uint8_t>& out, const ClientTrainPart& part) {
  nn::append_tensor_block(out, part.g_bottom);
  nn::append_tensor_block(out, part.d_bottom);
  append_adam_state(out, part.adam_g);
  append_adam_state(out, part.adam_d);
  append_rng_state(out, part.rng);
  append_rng_state(out, part.dp_rng);
  bytes::put_u64(out, part.original_row.size());
  for (const std::uint64_t row : part.original_row) bytes::put_u64(out, row);
}

ClientTrainPart parse_client_train_part(const std::uint8_t* data, std::size_t size,
                                        std::size_t& offset) {
  ClientTrainPart part;
  part.g_bottom = nn::parse_tensor_block(data, size, offset);
  part.d_bottom = nn::parse_tensor_block(data, size, offset);
  part.adam_g = parse_adam_state(data, size, offset);
  part.adam_d = parse_adam_state(data, size, offset);
  part.rng = parse_rng_state(data, size, offset);
  part.dp_rng = parse_rng_state(data, size, offset);
  bytes::Reader r(data, size, "train checkpoint", offset);
  const std::uint64_t rows = r.u64("row order count");
  if (rows > size) throw CheckpointError("train checkpoint: implausible row count");
  part.original_row.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t i = 0; i < rows; ++i) part.original_row.push_back(r.u64("row order"));
  offset = r.offset;
  return part;
}

}  // namespace

NetState snapshot_net(const NetArch& arch, nn::Module& net) {
  NetState state;
  state.arch = arch;
  state.tensors = nn::snapshot_state(net);
  return state;
}

std::unique_ptr<gan::GeneratorNet> build_generator(const NetState& state) {
  if (state.arch.in_features == 0 || state.arch.out_features == 0) {
    throw CheckpointError("checkpoint: generator architecture has zero-sized layers");
  }
  // The init weights are immediately overwritten by restore_state; the rng
  // only exists to satisfy the constructor.
  Rng init_rng(0);
  auto net = std::make_unique<gan::GeneratorNet>(
      static_cast<std::size_t>(state.arch.in_features),
      static_cast<std::size_t>(state.arch.hidden),
      static_cast<std::size_t>(state.arch.n_blocks),
      static_cast<std::size_t>(state.arch.out_features), init_rng);
  try {
    nn::restore_state(*net, state.tensors);
  } catch (const std::runtime_error& e) {
    throw CheckpointError(std::string("checkpoint: weights do not fit architecture: ") +
                          e.what());
  }
  net->set_training(false);
  return net;
}

std::vector<std::uint8_t> encode_server_part(const ServerPart& part) {
  std::vector<std::uint8_t> out;
  bytes::put_u64(out, part.noise_dim);
  bytes::put_f32(out, part.gumbel_tau);
  append_net_state(out, part.g_top);
  return out;
}

ServerPart decode_server_part(const std::vector<std::uint8_t>& bytes_in) {
  try {
    bytes::Reader r(bytes_in.data(), bytes_in.size(), "checkpoint server part");
    ServerPart part;
    part.noise_dim = r.u64("noise dim");
    part.gumbel_tau = r.f32("gumbel tau");
    std::size_t offset = r.offset;
    part.g_top = parse_net_state(bytes_in.data(), bytes_in.size(), offset);
    if (offset != bytes_in.size()) {
      throw CheckpointError("checkpoint: trailing bytes in server part");
    }
    return part;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw CheckpointError(e.what());
  }
}

std::vector<std::uint8_t> encode_client_part(const ClientPart& part) {
  std::vector<std::uint8_t> out;
  append_client_part(out, part);
  return out;
}

ClientPart decode_client_part(const std::vector<std::uint8_t>& bytes_in) {
  try {
    std::size_t offset = 0;
    ClientPart part = parse_client_part(bytes_in.data(), bytes_in.size(), offset);
    if (offset != bytes_in.size()) {
      throw CheckpointError("checkpoint: trailing bytes in client part");
    }
    return part;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw CheckpointError(e.what());
  }
}

std::vector<std::uint8_t> encode_server_train_part(const ServerTrainPart& part) {
  std::vector<std::uint8_t> out;
  append_server_train_part(out, part);
  return out;
}

ServerTrainPart decode_server_train_part(const std::vector<std::uint8_t>& bytes_in) {
  try {
    std::size_t offset = 0;
    ServerTrainPart part = parse_server_train_part(bytes_in.data(), bytes_in.size(), offset);
    if (offset != bytes_in.size()) {
      throw CheckpointError("train checkpoint: trailing bytes in server part");
    }
    return part;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw CheckpointError(e.what());
  }
}

std::vector<std::uint8_t> encode_client_train_part(const ClientTrainPart& part) {
  std::vector<std::uint8_t> out;
  append_client_train_part(out, part);
  return out;
}

ClientTrainPart decode_client_train_part(const std::vector<std::uint8_t>& bytes_in) {
  try {
    std::size_t offset = 0;
    ClientTrainPart part = parse_client_train_part(bytes_in.data(), bytes_in.size(), offset);
    if (offset != bytes_in.size()) {
      throw CheckpointError("train checkpoint: trailing bytes in client part");
    }
    return part;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw CheckpointError(e.what());
  }
}

void save_train_checkpoint(const TrainCheckpoint& checkpoint, const std::string& path) {
  std::vector<std::uint8_t> payload;
  bytes::put_u64(payload, checkpoint.seed);
  bytes::put_u64(payload, checkpoint.round);
  append_rng_state(payload, checkpoint.shuffle_stream);
  append_rng_state(payload, checkpoint.publish_stream);
  bytes::put_u64(payload, checkpoint.history.size());
  for (const auto& losses : checkpoint.history) {
    bytes::put_f32(payload, losses.d_loss);
    bytes::put_f32(payload, losses.g_loss);
    bytes::put_f32(payload, losses.gp);
    bytes::put_f32(payload, losses.wasserstein);
  }
  append_server_train_part(payload, checkpoint.server);
  bytes::put_u64(payload, checkpoint.clients.size());
  for (const auto& client : checkpoint.clients) append_client_train_part(payload, client);

  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 20);
  bytes::put_u32(out, kTrainCheckpointMagic);
  bytes::put_u32(out, kTrainCheckpointVersion);
  bytes::put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  bytes::put_u32(out, nn::state_crc32(payload.data(), payload.size()));

  // Atomic: train checkpoints are written mid-run, exactly when crashes
  // happen, so the previous good file must survive a torn write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("save_train_checkpoint: cannot open '" + tmp + "'");
    file.write(reinterpret_cast<const char*>(out.data()),
               static_cast<std::streamsize>(out.size()));
    file.flush();
    if (!file) throw std::runtime_error("save_train_checkpoint: write failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_train_checkpoint: rename to '" + path + "' failed");
  }
}

TrainCheckpoint load_train_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw CheckpointError("load_train_checkpoint: cannot open '" + path + "'");
  const std::streamsize size = file.tellg();
  file.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(size));
  if (size > 0) file.read(reinterpret_cast<char*>(raw.data()), size);
  if (!file) throw CheckpointError("load_train_checkpoint: read failed for '" + path + "'");

  try {
    bytes::Reader header(raw.data(), raw.size(), "load_train_checkpoint");
    if (header.u32("magic") != kTrainCheckpointMagic) {
      throw CheckpointError("load_train_checkpoint: bad magic in '" + path + "'");
    }
    const std::uint32_t version = header.u32("version");
    if (version != kTrainCheckpointVersion) {
      throw CheckpointError("load_train_checkpoint: unsupported version " +
                            std::to_string(version));
    }
    const std::uint64_t payload_len = header.u64("payload length");
    if (raw.size() != 16 + payload_len + 4) {
      throw CheckpointError("load_train_checkpoint: size mismatch in '" + path +
                            "' (truncated or trailing bytes)");
    }
    const std::uint8_t* payload = raw.data() + 16;
    const std::uint32_t stored_crc = bytes::get_u32(payload + payload_len);
    if (stored_crc != nn::state_crc32(payload, static_cast<std::size_t>(payload_len))) {
      throw CheckpointError("load_train_checkpoint: CRC mismatch in '" + path + "'");
    }

    bytes::Reader r(payload, static_cast<std::size_t>(payload_len), "load_train_checkpoint");
    TrainCheckpoint ckpt;
    ckpt.seed = r.u64("seed");
    ckpt.round = r.u64("round");
    std::size_t offset = r.offset;
    ckpt.shuffle_stream = parse_rng_state(payload, static_cast<std::size_t>(payload_len), offset);
    ckpt.publish_stream = parse_rng_state(payload, static_cast<std::size_t>(payload_len), offset);
    bytes::Reader hist(payload, static_cast<std::size_t>(payload_len), "load_train_checkpoint",
                       offset);
    const std::uint64_t n_history = hist.u64("history count");
    if (n_history > payload_len) {
      throw CheckpointError("load_train_checkpoint: implausible history count");
    }
    for (std::uint64_t i = 0; i < n_history; ++i) {
      gan::RoundLosses losses;
      losses.d_loss = hist.f32("history d loss");
      losses.g_loss = hist.f32("history g loss");
      losses.gp = hist.f32("history gp");
      losses.wasserstein = hist.f32("history wasserstein");
      ckpt.history.push_back(losses);
    }
    offset = hist.offset;
    ckpt.server = parse_server_train_part(payload, static_cast<std::size_t>(payload_len), offset);
    bytes::Reader tail(payload, static_cast<std::size_t>(payload_len), "load_train_checkpoint",
                       offset);
    const std::uint64_t n_clients = tail.u64("client count");
    if (n_clients > 4096) {
      throw CheckpointError("load_train_checkpoint: implausible client count");
    }
    offset = tail.offset;
    for (std::uint64_t i = 0; i < n_clients; ++i) {
      ckpt.clients.push_back(
          parse_client_train_part(payload, static_cast<std::size_t>(payload_len), offset));
    }
    if (offset != payload_len) {
      throw CheckpointError("load_train_checkpoint: trailing bytes inside payload");
    }
    return ckpt;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw CheckpointError(e.what());
  }
}

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  std::vector<std::uint8_t> payload;
  bytes::put_u64(payload, checkpoint.model_hash);
  bytes::put_u64(payload, checkpoint.seed);
  bytes::put_u64(payload, checkpoint.rounds);
  bytes::put_u64(payload, checkpoint.noise_dim);
  bytes::put_f32(payload, checkpoint.gumbel_tau);
  append_net_state(payload, checkpoint.g_top);
  bytes::put_u64(payload, checkpoint.clients.size());
  for (const auto& client : checkpoint.clients) append_client_part(payload, client);

  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 20);
  bytes::put_u32(out, kCheckpointMagic);
  bytes::put_u32(out, kCheckpointVersion);
  bytes::put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  bytes::put_u32(out, nn::state_crc32(payload.data(), payload.size()));

  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("save_checkpoint: cannot open '" + path + "'");
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  if (!file) throw std::runtime_error("save_checkpoint: write failed for '" + path + "'");
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw CheckpointError("load_checkpoint: cannot open '" + path + "'");
  const std::streamsize size = file.tellg();
  file.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(size));
  if (size > 0) file.read(reinterpret_cast<char*>(raw.data()), size);
  if (!file) throw CheckpointError("load_checkpoint: read failed for '" + path + "'");

  try {
    bytes::Reader header(raw.data(), raw.size(), "load_checkpoint");
    if (header.u32("magic") != kCheckpointMagic) {
      throw CheckpointError("load_checkpoint: bad magic in '" + path + "'");
    }
    const std::uint32_t version = header.u32("version");
    if (version != kCheckpointVersion) {
      throw CheckpointError("load_checkpoint: unsupported version " + std::to_string(version));
    }
    const std::uint64_t payload_len = header.u64("payload length");
    if (raw.size() != 16 + payload_len + 4) {
      throw CheckpointError("load_checkpoint: size mismatch in '" + path +
                            "' (truncated or trailing bytes)");
    }
    const std::uint8_t* payload = raw.data() + 16;
    const std::uint32_t stored_crc = bytes::get_u32(payload + payload_len);
    if (stored_crc != nn::state_crc32(payload, static_cast<std::size_t>(payload_len))) {
      throw CheckpointError("load_checkpoint: CRC mismatch in '" + path + "'");
    }

    bytes::Reader r(payload, static_cast<std::size_t>(payload_len), "load_checkpoint");
    Checkpoint ckpt;
    ckpt.model_hash = r.u64("model hash");
    ckpt.seed = r.u64("seed");
    ckpt.rounds = r.u64("rounds");
    ckpt.noise_dim = r.u64("noise dim");
    ckpt.gumbel_tau = r.f32("gumbel tau");
    std::size_t offset = r.offset;
    ckpt.g_top = parse_net_state(payload, static_cast<std::size_t>(payload_len), offset);
    bytes::Reader tail(payload, static_cast<std::size_t>(payload_len), "load_checkpoint",
                       offset);
    const std::uint64_t n_clients = tail.u64("client count");
    if (n_clients > 4096) throw CheckpointError("load_checkpoint: implausible client count");
    offset = tail.offset;
    for (std::uint64_t i = 0; i < n_clients; ++i) {
      ckpt.clients.push_back(
          parse_client_part(payload, static_cast<std::size_t>(payload_len), offset));
    }
    if (offset != payload_len) {
      throw CheckpointError("load_checkpoint: trailing bytes inside payload");
    }
    return ckpt;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw CheckpointError(e.what());
  }
}

std::uint64_t hash_table(const data::Table& table) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(table.n_rows());
  mix(table.n_cols());
  for (std::size_t r = 0; r < table.n_rows(); ++r) {
    for (std::size_t c = 0; c < table.n_cols(); ++c) {
      const double cell = table.cell(r, c);
      std::uint64_t bits;
      std::memcpy(&bits, &cell, 8);
      mix(bits);
    }
  }
  return h;
}

}  // namespace gtv::serve
