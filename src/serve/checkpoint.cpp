#include "serve/checkpoint.h"

#include <cstring>
#include <fstream>

#include "nn/serialize.h"
#include "tensor/bytes.h"

namespace gtv::serve {

namespace {

void append_net_state(std::vector<std::uint8_t>& out, const NetState& state) {
  bytes::put_u64(out, state.arch.in_features);
  bytes::put_u64(out, state.arch.hidden);
  bytes::put_u64(out, state.arch.n_blocks);
  bytes::put_u64(out, state.arch.out_features);
  nn::append_tensor_block(out, state.tensors);
}

NetState parse_net_state(const std::uint8_t* data, std::size_t size, std::size_t& offset) {
  bytes::Reader r(data, size, "checkpoint", offset);
  NetState state;
  state.arch.in_features = r.u64("arch in");
  state.arch.hidden = r.u64("arch hidden");
  state.arch.n_blocks = r.u64("arch blocks");
  state.arch.out_features = r.u64("arch out");
  offset = r.offset;
  state.tensors = nn::parse_tensor_block(data, size, offset);
  return state;
}

void append_client_part(std::vector<std::uint8_t>& out, const ClientPart& part) {
  bytes::put_u64(out, part.cv_width);
  bytes::put_u64(out, part.g_slice_width);
  append_net_state(out, part.g_bottom);
  part.encoder.serialize(out);
}

ClientPart parse_client_part(const std::uint8_t* data, std::size_t size, std::size_t& offset) {
  bytes::Reader r(data, size, "checkpoint", offset);
  ClientPart part;
  part.cv_width = r.u64("cv width");
  part.g_slice_width = r.u64("g slice width");
  offset = r.offset;
  part.g_bottom = parse_net_state(data, size, offset);
  part.encoder = encode::TableEncoder::deserialize(data, size, offset);
  return part;
}

}  // namespace

NetState snapshot_net(const NetArch& arch, nn::Module& net) {
  NetState state;
  state.arch = arch;
  state.tensors = nn::snapshot_state(net);
  return state;
}

std::unique_ptr<gan::GeneratorNet> build_generator(const NetState& state) {
  if (state.arch.in_features == 0 || state.arch.out_features == 0) {
    throw CheckpointError("checkpoint: generator architecture has zero-sized layers");
  }
  // The init weights are immediately overwritten by restore_state; the rng
  // only exists to satisfy the constructor.
  Rng init_rng(0);
  auto net = std::make_unique<gan::GeneratorNet>(
      static_cast<std::size_t>(state.arch.in_features),
      static_cast<std::size_t>(state.arch.hidden),
      static_cast<std::size_t>(state.arch.n_blocks),
      static_cast<std::size_t>(state.arch.out_features), init_rng);
  try {
    nn::restore_state(*net, state.tensors);
  } catch (const std::runtime_error& e) {
    throw CheckpointError(std::string("checkpoint: weights do not fit architecture: ") +
                          e.what());
  }
  net->set_training(false);
  return net;
}

std::vector<std::uint8_t> encode_server_part(const ServerPart& part) {
  std::vector<std::uint8_t> out;
  bytes::put_u64(out, part.noise_dim);
  bytes::put_f32(out, part.gumbel_tau);
  append_net_state(out, part.g_top);
  return out;
}

ServerPart decode_server_part(const std::vector<std::uint8_t>& bytes_in) {
  try {
    bytes::Reader r(bytes_in.data(), bytes_in.size(), "checkpoint server part");
    ServerPart part;
    part.noise_dim = r.u64("noise dim");
    part.gumbel_tau = r.f32("gumbel tau");
    std::size_t offset = r.offset;
    part.g_top = parse_net_state(bytes_in.data(), bytes_in.size(), offset);
    if (offset != bytes_in.size()) {
      throw CheckpointError("checkpoint: trailing bytes in server part");
    }
    return part;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw CheckpointError(e.what());
  }
}

std::vector<std::uint8_t> encode_client_part(const ClientPart& part) {
  std::vector<std::uint8_t> out;
  append_client_part(out, part);
  return out;
}

ClientPart decode_client_part(const std::vector<std::uint8_t>& bytes_in) {
  try {
    std::size_t offset = 0;
    ClientPart part = parse_client_part(bytes_in.data(), bytes_in.size(), offset);
    if (offset != bytes_in.size()) {
      throw CheckpointError("checkpoint: trailing bytes in client part");
    }
    return part;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw CheckpointError(e.what());
  }
}

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  std::vector<std::uint8_t> payload;
  bytes::put_u64(payload, checkpoint.model_hash);
  bytes::put_u64(payload, checkpoint.seed);
  bytes::put_u64(payload, checkpoint.rounds);
  bytes::put_u64(payload, checkpoint.noise_dim);
  bytes::put_f32(payload, checkpoint.gumbel_tau);
  append_net_state(payload, checkpoint.g_top);
  bytes::put_u64(payload, checkpoint.clients.size());
  for (const auto& client : checkpoint.clients) append_client_part(payload, client);

  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 20);
  bytes::put_u32(out, kCheckpointMagic);
  bytes::put_u32(out, kCheckpointVersion);
  bytes::put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  bytes::put_u32(out, nn::state_crc32(payload.data(), payload.size()));

  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("save_checkpoint: cannot open '" + path + "'");
  file.write(reinterpret_cast<const char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  if (!file) throw std::runtime_error("save_checkpoint: write failed for '" + path + "'");
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw CheckpointError("load_checkpoint: cannot open '" + path + "'");
  const std::streamsize size = file.tellg();
  file.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(size));
  if (size > 0) file.read(reinterpret_cast<char*>(raw.data()), size);
  if (!file) throw CheckpointError("load_checkpoint: read failed for '" + path + "'");

  try {
    bytes::Reader header(raw.data(), raw.size(), "load_checkpoint");
    if (header.u32("magic") != kCheckpointMagic) {
      throw CheckpointError("load_checkpoint: bad magic in '" + path + "'");
    }
    const std::uint32_t version = header.u32("version");
    if (version != kCheckpointVersion) {
      throw CheckpointError("load_checkpoint: unsupported version " + std::to_string(version));
    }
    const std::uint64_t payload_len = header.u64("payload length");
    if (raw.size() != 16 + payload_len + 4) {
      throw CheckpointError("load_checkpoint: size mismatch in '" + path +
                            "' (truncated or trailing bytes)");
    }
    const std::uint8_t* payload = raw.data() + 16;
    const std::uint32_t stored_crc = bytes::get_u32(payload + payload_len);
    if (stored_crc != nn::state_crc32(payload, static_cast<std::size_t>(payload_len))) {
      throw CheckpointError("load_checkpoint: CRC mismatch in '" + path + "'");
    }

    bytes::Reader r(payload, static_cast<std::size_t>(payload_len), "load_checkpoint");
    Checkpoint ckpt;
    ckpt.model_hash = r.u64("model hash");
    ckpt.seed = r.u64("seed");
    ckpt.rounds = r.u64("rounds");
    ckpt.noise_dim = r.u64("noise dim");
    ckpt.gumbel_tau = r.f32("gumbel tau");
    std::size_t offset = r.offset;
    ckpt.g_top = parse_net_state(payload, static_cast<std::size_t>(payload_len), offset);
    bytes::Reader tail(payload, static_cast<std::size_t>(payload_len), "load_checkpoint",
                       offset);
    const std::uint64_t n_clients = tail.u64("client count");
    if (n_clients > 4096) throw CheckpointError("load_checkpoint: implausible client count");
    offset = tail.offset;
    for (std::uint64_t i = 0; i < n_clients; ++i) {
      ckpt.clients.push_back(
          parse_client_part(payload, static_cast<std::size_t>(payload_len), offset));
    }
    if (offset != payload_len) {
      throw CheckpointError("load_checkpoint: trailing bytes inside payload");
    }
    return ckpt;
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw CheckpointError(e.what());
  }
}

std::uint64_t hash_table(const data::Table& table) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(table.n_rows());
  mix(table.n_cols());
  for (std::size_t r = 0; r < table.n_rows(); ++r) {
    for (std::size_t c = 0; c < table.n_cols(); ++c) {
      const double cell = table.cell(r, c);
      std::uint64_t bits;
      std::memcpy(&bits, &cell, 8);
      mix(bits);
    }
  }
  return h;
}

}  // namespace gtv::serve
