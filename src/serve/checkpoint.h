// gtv::serve — versioned, hash-stamped model checkpoints.
//
// A Checkpoint is everything needed to synthesize rows without the
// training data or the training processes: the server's top generator
// G^t, and per client the bottom generator G^b_i plus the full fitted
// encoder state (GMM components, categorical vocabularies, span layout,
// conditional-vector metadata). Network weights are captured with
// nn::snapshot_state (parameters AND buffers, so batchnorm running
// statistics survive and eval-mode forwards after reload match the
// training process bit-for-bit).
//
// On-disk container ("GTVK", all little-endian, mirroring the wire-frame
// discipline):
//
//   offset  size  field
//        0     4  magic        0x4B565447 ("GTVK")
//        4     4  version      kCheckpointVersion
//        8     8  payload_len
//       16     .  payload
//        .     4  crc32        CRC-32 (IEEE) over the payload bytes
//
// The payload carries the run identity (model_hash — the same FNV-1a
// table hash gtv-node stamps in its report — seed, rounds) followed by
// the architecture descriptor + tensor block of every net and the
// serialized encoders. Exact-size: trailing bytes after the CRC are
// rejected.
//
// The per-part codecs (encode_server_part / encode_client_part) are the
// distributed collection path: on kCmdCheckpoint each party encodes its
// own part and ships it to the driver, which assembles the container
// without ever seeing raw data.
//
// A sibling container ("GTVT", same envelope discipline) carries the
// *training* state needed for exact train-resume: every party's full
// module state (generator AND discriminator towers, parameters plus
// buffers), Adam moment estimates and step counters, RNG stream
// positions (including the Box-Muller spare), each client's current row
// order, the driver's shuffle/publish streams, the completed-round
// counter, and the loss history so far. Restoring it reproduces the
// uninterrupted run's loss trajectory bit-for-bit. save_train_checkpoint
// writes atomically (tmp + rename) because checkpoints are written
// mid-training, exactly when crashes happen.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "encode/encoder.h"
#include "gan/ctabgan.h"
#include "tensor/rng.h"

namespace gtv::serve {

inline constexpr std::uint32_t kCheckpointMagic = 0x4B565447u;  // "GTVK"
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::uint32_t kTrainCheckpointMagic = 0x54565447u;  // "GTVT"
inline constexpr std::uint32_t kTrainCheckpointVersion = 1;

// Malformed container, version mismatch, CRC failure, or a tensor set
// that does not fit the declared architecture.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Constructor arguments of a gan::GeneratorNet — enough to rebuild the
// net and reject weight sets saved for a different architecture.
struct NetArch {
  std::uint64_t in_features = 0;
  std::uint64_t hidden = 0;
  std::uint64_t n_blocks = 0;
  std::uint64_t out_features = 0;

  bool operator==(const NetArch& other) const = default;
};

// One generator tower: architecture + full state (nn::snapshot_state
// order — parameters then buffers).
struct NetState {
  NetArch arch;
  std::vector<Tensor> tensors;
};

// Captures a net's current state under a declared architecture.
NetState snapshot_net(const NetArch& arch, nn::Module& net);

// Rebuilds a GeneratorNet from a NetState. Throws CheckpointError when
// the tensor set does not match the architecture (count or any shape).
std::unique_ptr<gan::GeneratorNet> build_generator(const NetState& state);

struct ClientPart {
  std::uint64_t cv_width = 0;
  std::uint64_t g_slice_width = 0;
  NetState g_bottom;
  encode::TableEncoder encoder;
};

struct ServerPart {
  std::uint64_t noise_dim = 0;
  float gumbel_tau = 0.2f;
  NetState g_top;
};

struct Checkpoint {
  std::uint64_t model_hash = 0;  // FNV-1a table hash from gtv-node's report
  std::uint64_t seed = 0;        // training seed of the producing run
  std::uint64_t rounds = 0;      // training rounds completed
  std::uint64_t noise_dim = 0;
  float gumbel_tau = 0.2f;
  NetState g_top;
  std::vector<ClientPart> clients;
};

// Per-party codecs for the driver-side distributed assembly.
std::vector<std::uint8_t> encode_server_part(const ServerPart& part);
ServerPart decode_server_part(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> encode_client_part(const ClientPart& part);
ClientPart decode_client_part(const std::vector<std::uint8_t>& bytes);

// --- training-state checkpoints ("GTVT") -----------------------------------------

// One party's training state. Module tensor lists are in
// nn::snapshot_state order (parameters then buffers); optimizer moments
// ride as nn::AdamState in constructor slot order.
struct ServerTrainPart {
  std::vector<Tensor> g_top;
  std::vector<Tensor> d_top;
  std::vector<Tensor> d_s;  // empty when the run has no discrete columns
  nn::AdamState adam_g;
  nn::AdamState adam_d;
  Rng::State rng;
};

struct ClientTrainPart {
  std::vector<Tensor> g_bottom;
  std::vector<Tensor> d_bottom;
  nn::AdamState adam_g;
  nn::AdamState adam_d;
  Rng::State rng;
  Rng::State dp_rng;
  // Current row r holds original (pre-training) row original_row[r]: the
  // net effect of every shuffle so far, so a resumed client reorders its
  // freshly-built shard into the exact mid-training permutation.
  std::vector<std::uint64_t> original_row;
};

struct TrainCheckpoint {
  std::uint64_t seed = 0;   // training seed; resume refuses a mismatch
  std::uint64_t round = 0;  // rounds fully completed when this was written
  // Driver-owned streams: the clients' secret shuffle agreement and the
  // publication shuffle. Never part of the server's state.
  Rng::State shuffle_stream;
  Rng::State publish_stream;
  std::vector<gan::RoundLosses> history;  // one entry per completed round
  ServerTrainPart server;
  std::vector<ClientTrainPart> clients;
};

// Per-party codecs for the kCmdCheckpointTrain barrier (each party ships
// its own training state to the driver; decode throws CheckpointError).
std::vector<std::uint8_t> encode_server_train_part(const ServerTrainPart& part);
ServerTrainPart decode_server_train_part(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> encode_client_train_part(const ClientTrainPart& part);
ClientTrainPart decode_client_train_part(const std::vector<std::uint8_t>& bytes);

// Whole-container file I/O for the GTVT envelope. save writes to
// `path`.tmp and renames, so a crash mid-write can never destroy the
// previous good checkpoint; throws std::runtime_error on I/O failure.
// load throws CheckpointError on any malformed input.
void save_train_checkpoint(const TrainCheckpoint& checkpoint, const std::string& path);
TrainCheckpoint load_train_checkpoint(const std::string& path);

// Whole-container file I/O. save throws std::runtime_error on I/O
// failure; load throws CheckpointError on any malformed input.
void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);
Checkpoint load_checkpoint(const std::string& path);

// FNV-1a over a table's dimensions and cell bit patterns — the model_hash
// gtv-node stamps in its report and checkpoints carry.
std::uint64_t hash_table(const data::Table& table);

}  // namespace gtv::serve
