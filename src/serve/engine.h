// gtv::serve — checkpoint-backed batched synthesis engine.
//
// A Synthesizer rebuilds the split generator stack (G^t + per-client
// G^b_i + encoders) from a Checkpoint and samples joined tables from it.
// Sampling is split in two halves so a serving daemon can coalesce many
// requests into one generator forward:
//
//   plan(rows, seed[, cond]) — draws EVERY random value the request will
//     ever consume (conditional-vector choices, generator noise, gumbel
//     noise for the one-hot spans) from a private Rng(seed), in a fixed
//     per-row order. Thread-safe: reads only immutable model state.
//
//   run(input, gumbel) — one batched forward + activation + decode over
//     pre-planned rows. Every op on this path is row-independent
//     (eval-mode batchnorm uses running statistics, activations and
//     decode work row-by-row, the tiled gemm is bit-identical per output
//     element), so row r of the output depends only on row r of the
//     inputs. That is the determinism contract: a seeded request yields
//     byte-identical rows whether it runs alone or coalesced into any
//     batch, in-process or over TCP.
//
//   sample(rows, seed[, cond]) = plan + run — the single-client
//     reference path the parity tests compare against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/checkpoint.h"

namespace gtv::serve {

class Synthesizer {
 public:
  // Rebuilds all nets and encoders. Throws CheckpointError when any
  // weight set does not fit its declared architecture or the parts are
  // mutually inconsistent (slice widths vs G^t output width).
  explicit Synthesizer(const Checkpoint& checkpoint);

  std::uint64_t model_hash() const { return model_hash_; }
  std::size_t noise_dim() const { return noise_dim_; }
  std::size_t n_clients() const { return clients_.size(); }
  // Joined output schema (clients' shards concatenated in client order).
  const std::vector<data::ColumnSpec>& schema() const { return schema_; }
  std::size_t n_cols() const { return schema_.size(); }

  // Optional conditioning: pin the conditional vector to one category of
  // one categorical column for every row of the request.
  struct Condition {
    std::string column;
    std::string category;
  };

  // Pre-drawn randomness for one request. `input` is rows x
  // (noise_dim + total_cv); `gumbel` holds one rows x encoded_width
  // tensor per client (zeros on tanh spans).
  struct Plan {
    std::size_t rows = 0;
    Tensor input;
    std::vector<Tensor> gumbel;
  };

  // Draws the request's full random stream from Rng(seed). Throws
  // std::invalid_argument for an unknown column/category or a
  // non-categorical condition column.
  Plan plan(std::size_t rows, std::uint64_t seed, const Condition* cond = nullptr) const;

  // One batched generator pass over pre-planned rows; returns the decoded
  // joined table. Not thread-safe — call from one thread (the batcher).
  data::Table run(const Tensor& input, const std::vector<Tensor>& gumbel);

  // Reference path: plan + run in one call.
  data::Table sample(std::size_t rows, std::uint64_t seed, const Condition* cond = nullptr);

 private:
  struct ClientModel {
    std::unique_ptr<gan::GeneratorNet> g_bottom;
    encode::TableEncoder encoder;
    std::size_t cv_width = 0;
    std::size_t g_slice_width = 0;
    std::size_t cv_offset = 0;  // this client's segment in the global CV
    // Per discrete span: offset inside the client's CV segment and the
    // training category frequencies (ConditionalSampler::sample_original
    // draws from exactly these weights).
    std::vector<std::size_t> span_cv_offsets;
    std::vector<std::vector<double>> span_frequencies;
  };

  void fill_cv_draws(Tensor& input, std::size_t row, Rng& rng) const;

  std::uint64_t model_hash_ = 0;
  std::size_t noise_dim_ = 0;
  float gumbel_tau_ = 0.2f;
  std::size_t total_cv_ = 0;
  std::unique_ptr<gan::GeneratorNet> g_top_;
  std::vector<ClientModel> clients_;
  std::vector<double> client_weights_;  // P_r reconstructed from slice widths
  std::vector<data::ColumnSpec> schema_;
  // Joined column index -> (client, column inside the client's shard).
  std::vector<std::pair<std::size_t, std::size_t>> column_owner_;
};

}  // namespace gtv::serve
