// Centralized conditional tabular GAN — the paper's baseline.
//
// Architecture follows CT-GAN (with CTAB-GAN's mixed-type encoder folded
// into the TableEncoder):
//   generator:     (noise ++ cv) -> ResidualBlock x n -> FC(total_width)
//                  -> per-span activations (tanh / gumbel-softmax)
//   discriminator: (encoded row ++ cv) -> FNBlock x n -> FC(1)
// trained with WGAN-GP (lambda=10, e critic steps per generator step) plus
// CT-GAN's conditional cross-entropy term on the generator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/table.h"
#include "encode/cond.h"
#include "encode/encoder.h"
#include "gan/losses.h"
#include "nn/adam.h"
#include "nn/module.h"

namespace gtv::gan {

// Critic regularization: gradient penalty (WGAN-GP, the paper's loss) or
// the original WGAN weight clipping (kept as an ablation baseline).
enum class CriticMode { kGradientPenalty, kWeightClipping };

struct GanOptions {
  std::size_t noise_dim = 128;
  std::size_t hidden = 256;                // RN/FN block width (256 in the paper)
  std::size_t generator_blocks = 2;
  std::size_t discriminator_blocks = 2;
  std::size_t batch_size = 128;
  std::size_t d_steps_per_round = 5;       // `e` in Algorithm 1
  float gp_lambda = 10.0f;
  CriticMode critic_mode = CriticMode::kGradientPenalty;
  float clip_value = 0.01f;  // only used with kWeightClipping
  float gumbel_tau = 0.2f;
  float leaky_slope = 0.2f;
  float dropout = 0.5f;
  bool use_conditional_loss = true;
  nn::AdamOptions adam;                    // shared by G and D
  encode::EncoderOptions encoder;
};

// A generator network: residual tower + output FC. Kept as a named class so
// the VFL code can build top/bottom towers out of the same parts.
class GeneratorNet : public nn::Module {
 public:
  GeneratorNet(std::size_t in_features, std::size_t hidden, std::size_t n_blocks,
               std::size_t out_features, Rng& rng);
  ag::Var forward(const ag::Var& x) override;
  std::vector<ag::Var> parameters() override;
  std::vector<Tensor*> buffers() override;
  void set_training(bool training) override;
  std::size_t out_features() const { return out_->out_features(); }

 private:
  std::vector<std::unique_ptr<nn::ResidualBlock>> blocks_;
  std::unique_ptr<nn::Linear> out_;
};

// A discriminator tower: FN blocks + output FC.
class DiscriminatorNet : public nn::Module {
 public:
  DiscriminatorNet(std::size_t in_features, std::size_t hidden, std::size_t n_blocks,
                   std::size_t out_features, Rng& rng, float slope = 0.2f,
                   float dropout = 0.5f);
  ag::Var forward(const ag::Var& x) override;
  std::vector<ag::Var> parameters() override;
  void set_training(bool training) override;
  std::size_t out_features() const { return out_->out_features(); }

 private:
  std::vector<std::unique_ptr<nn::FNBlock>> blocks_;
  std::unique_ptr<nn::Linear> out_;
};

struct RoundLosses {
  float d_loss = 0.0f;       // critic loss incl. gradient penalty (last critic step)
  float g_loss = 0.0f;       // adversarial + conditional term
  float gp = 0.0f;           // gradient-penalty value (last critic step)
  float wasserstein = 0.0f;  // mean(D(real)) - mean(D(fake)) estimate
};

class CentralizedTabularGan {
 public:
  CentralizedTabularGan(const data::Table& train, GanOptions options, std::uint64_t seed);

  // One round = options.d_steps_per_round critic updates + 1 generator update.
  RoundLosses train_round();
  // Convenience: `rounds` rounds with an optional per-round callback.
  void train(std::size_t rounds,
             const std::function<void(std::size_t, const RoundLosses&)>& on_round = {});

  // Draws synthetic rows and inverse-transforms them to the table schema.
  data::Table sample(std::size_t rows);

  const encode::TableEncoder& encoder() const { return encoder_; }
  const std::vector<RoundLosses>& history() const { return history_; }
  const GanOptions& options() const { return options_; }

 private:
  Tensor generate_batch_input(const Tensor& cv);

  GanOptions options_;
  Rng rng_;
  encode::TableEncoder encoder_;
  std::unique_ptr<encode::ConditionalSampler> cond_;
  Tensor real_encoded_;
  std::unique_ptr<GeneratorNet> generator_;
  std::unique_ptr<DiscriminatorNet> discriminator_;
  std::unique_ptr<nn::Adam> adam_g_;
  std::unique_ptr<nn::Adam> adam_d_;
  std::vector<RoundLosses> history_;
};

}  // namespace gtv::gan
