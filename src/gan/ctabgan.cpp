#include "gan/ctabgan.h"

#include <algorithm>
#include <stdexcept>

namespace gtv::gan {

using ag::Var;

// --- GeneratorNet ---------------------------------------------------------------

GeneratorNet::GeneratorNet(std::size_t in_features, std::size_t hidden, std::size_t n_blocks,
                           std::size_t out_features, Rng& rng) {
  std::size_t width = in_features;
  for (std::size_t i = 0; i < n_blocks; ++i) {
    blocks_.push_back(std::make_unique<nn::ResidualBlock>(width, hidden, rng));
    width = blocks_.back()->out_features();
  }
  out_ = std::make_unique<nn::Linear>(width, out_features, rng);
}

Var GeneratorNet::forward(const Var& x) {
  Var h = x;
  for (auto& block : blocks_) h = block->forward(h);
  return out_->forward(h);
}

std::vector<Var> GeneratorNet::parameters() {
  std::vector<Var> params;
  for (auto& block : blocks_) {
    auto p = block->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  auto p = out_->parameters();
  params.insert(params.end(), p.begin(), p.end());
  return params;
}

std::vector<Tensor*> GeneratorNet::buffers() {
  std::vector<Tensor*> bufs;
  for (auto& block : blocks_) {
    auto b = block->buffers();
    bufs.insert(bufs.end(), b.begin(), b.end());
  }
  return bufs;
}

void GeneratorNet::set_training(bool training) {
  Module::set_training(training);
  for (auto& block : blocks_) block->set_training(training);
  out_->set_training(training);
}

// --- DiscriminatorNet -------------------------------------------------------------

DiscriminatorNet::DiscriminatorNet(std::size_t in_features, std::size_t hidden,
                                   std::size_t n_blocks, std::size_t out_features, Rng& rng,
                                   float slope, float dropout) {
  std::size_t width = in_features;
  for (std::size_t i = 0; i < n_blocks; ++i) {
    blocks_.push_back(std::make_unique<nn::FNBlock>(width, hidden, rng, slope, dropout));
    width = blocks_.back()->out_features();
  }
  out_ = std::make_unique<nn::Linear>(width, out_features, rng);
}

Var DiscriminatorNet::forward(const Var& x) {
  Var h = x;
  for (auto& block : blocks_) h = block->forward(h);
  return out_->forward(h);
}

std::vector<Var> DiscriminatorNet::parameters() {
  std::vector<Var> params;
  for (auto& block : blocks_) {
    auto p = block->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  auto p = out_->parameters();
  params.insert(params.end(), p.begin(), p.end());
  return params;
}

void DiscriminatorNet::set_training(bool training) {
  Module::set_training(training);
  for (auto& block : blocks_) block->set_training(training);
  out_->set_training(training);
}

// --- CentralizedTabularGan ----------------------------------------------------------

CentralizedTabularGan::CentralizedTabularGan(const data::Table& train, GanOptions options,
                                             std::uint64_t seed)
    : options_(options), rng_(seed) {
  if (train.n_rows() < 2) {
    throw std::invalid_argument("CentralizedTabularGan: training table too small");
  }
  encoder_.fit(train, options_.encoder, rng_);
  cond_ = std::make_unique<encode::ConditionalSampler>(encoder_, train);
  real_encoded_ = encoder_.encode(train, rng_);

  const std::size_t cv = cond_->cv_width();
  generator_ = std::make_unique<GeneratorNet>(options_.noise_dim + cv, options_.hidden,
                                              options_.generator_blocks, encoder_.total_width(),
                                              rng_);
  discriminator_ = std::make_unique<DiscriminatorNet>(
      encoder_.total_width() + cv, options_.hidden, options_.discriminator_blocks, 1, rng_,
      options_.leaky_slope, options_.dropout);
  adam_g_ = std::make_unique<nn::Adam>(generator_->parameters(), options_.adam);
  adam_d_ = std::make_unique<nn::Adam>(discriminator_->parameters(), options_.adam);
}

Tensor CentralizedTabularGan::generate_batch_input(const Tensor& cv) {
  Tensor noise = Tensor::normal(cv.rows(), options_.noise_dim, 0.0f, 1.0f, rng_);
  if (cv.cols() == 0) return noise;
  return Tensor::concat_cols({noise, cv});
}

RoundLosses CentralizedTabularGan::train_round() {
  const std::size_t batch = std::min(options_.batch_size, cond_->n_rows());
  RoundLosses losses;

  // --- critic steps ---------------------------------------------------------
  for (std::size_t step = 0; step < options_.d_steps_per_round; ++step) {
    auto cond_sample = cond_->sample_train(batch, rng_);
    const Tensor& cv = cond_sample.cv;

    // Fake rows, detached from the generator for the critic update.
    Tensor fake_rows;
    {
      ag::NoGradGuard no_grad;
      Var logits = generator_->forward(Var(generate_batch_input(cv)));
      fake_rows =
          apply_output_activations(logits, encoder_.spans(), options_.gumbel_tau, rng_).value();
    }
    Tensor real_rows = real_encoded_.gather_rows(cond_sample.rows);

    Tensor fake_in = cv.cols() ? Tensor::concat_cols({fake_rows, cv}) : fake_rows;
    Tensor real_in = cv.cols() ? Tensor::concat_cols({real_rows, cv}) : real_rows;

    adam_d_->zero_grad();
    Var d_real = discriminator_->forward(ag::constant(real_in));
    Var d_fake = discriminator_->forward(ag::constant(fake_in));
    Var critic = wasserstein_critic_loss(d_real, d_fake);
    Var loss = critic;
    if (options_.critic_mode == CriticMode::kGradientPenalty) {
      Var gp = gradient_penalty([this](const Var& x) { return discriminator_->forward(x); },
                                real_in, fake_in, rng_);
      loss = ag::add(critic, ag::mul_scalar(gp, options_.gp_lambda));
      losses.gp = gp.value()(0, 0);
    }
    ag::backward(loss);
    adam_d_->step();
    if (options_.critic_mode == CriticMode::kWeightClipping) {
      clip_parameters(discriminator_->parameters(), options_.clip_value);
    }

    losses.d_loss = loss.value()(0, 0);
    losses.wasserstein = -critic.value()(0, 0);
  }

  // --- generator step ----------------------------------------------------------
  {
    auto cond_sample = cond_->sample_train(batch, rng_);
    const Tensor& cv = cond_sample.cv;
    adam_g_->zero_grad();
    adam_d_->zero_grad();  // gradients flow through D; discard them
    Var logits = generator_->forward(Var(generate_batch_input(cv)));
    Var fake = apply_output_activations(logits, encoder_.spans(), options_.gumbel_tau, rng_);
    Var d_in = cv.cols() ? ag::concat_cols({fake, ag::constant(cv)}) : fake;
    Var d_fake = discriminator_->forward(d_in);
    Var loss = wasserstein_generator_loss(d_fake);
    if (options_.use_conditional_loss && cond_->has_discrete()) {
      Var cond_term =
          conditional_loss(logits, cond_->target_mask(cond_sample), encoder_.discrete_spans());
      loss = ag::add(loss, cond_term);
    }
    ag::backward(loss);
    adam_g_->step();
    losses.g_loss = loss.value()(0, 0);
  }

  history_.push_back(losses);
  return losses;
}

void CentralizedTabularGan::train(
    std::size_t rounds, const std::function<void(std::size_t, const RoundLosses&)>& on_round) {
  for (std::size_t r = 0; r < rounds; ++r) {
    RoundLosses losses = train_round();
    if (on_round) on_round(r, losses);
  }
}

data::Table CentralizedTabularGan::sample(std::size_t rows) {
  generator_->set_training(false);
  ag::NoGradGuard no_grad;
  data::Table out(encoder_.schema_table().schema());
  std::size_t produced = 0;
  const std::size_t batch = std::max<std::size_t>(options_.batch_size, 1);
  std::vector<Tensor> chunks;
  while (produced < rows) {
    const std::size_t take = std::min(batch, rows - produced);
    Tensor cv = cond_->sample_original(take, rng_);
    Var logits = generator_->forward(Var(generate_batch_input(cv)));
    Var fake = apply_output_activations(logits, encoder_.spans(), options_.gumbel_tau, rng_);
    chunks.push_back(fake.value());
    produced += take;
  }
  generator_->set_training(true);
  return encoder_.decode(Tensor::concat_rows(chunks));
}

}  // namespace gtv::gan
