// Loss components shared by the centralized tabular GAN baseline and the
// GTV (VFL) training loop:
//
//   - Gumbel-softmax relaxation for one-hot output spans (CT-GAN, tau=0.2)
//   - per-span output activation application (tanh / gumbel-softmax)
//   - the generator's conditional cross-entropy term
//   - the WGAN-GP gradient penalty, written against an arbitrary critic
//     closure so the same code serves a monolithic D and the VFL-split
//     {D_b_i} + D_s + D_t stack.
#pragma once

#include <functional>
#include <vector>

#include "autograd/autograd.h"
#include "encode/encoder.h"
#include "tensor/rng.h"

namespace gtv::gan {

using ag::Var;

// y = softmax((logits + g) / tau) with g ~ Gumbel(0,1) per element.
Var gumbel_softmax(const Var& logits, float tau, Rng& rng);

// Applies tanh to kTanh spans and gumbel-softmax to kSoftmax spans of the
// generator's raw output. `spans` must tile [0, logits.cols()).
Var apply_output_activations(const Var& logits, const std::vector<encode::Span>& spans,
                             float tau, Rng& rng);

// Generator conditional term (CT-GAN): cross-entropy between the raw
// generated logits of each conditioned one-hot span and the category the
// conditional vector demanded. `target_mask` is 1 at (row, encoded position)
// of the conditioned category (zero rows contribute nothing).
// Pass only the discrete spans that lie inside `logits`' layout.
Var conditional_loss(const Var& logits, const Tensor& target_mask,
                     const std::vector<encode::TableEncoder::DiscreteSpan>& discrete_spans);

// WGAN-GP penalty: E[(||d critic(x_hat) / d x_hat||_2 - 1)^2] with
// x_hat = eps * real + (1 - eps) * fake, eps ~ U(0,1) per row.
// The returned Var carries graph through the critic's parameters
// (create_graph), so adding it to the critic loss trains correctly.
Var gradient_penalty(const std::function<Var(const Var&)>& critic, const Tensor& real_input,
                     const Tensor& fake_input, Rng& rng);

// In-place clamp of every parameter to [-clip, clip] (WGAN weight
// clipping; the ablation baseline for the gradient penalty). Vars are
// shared handles, so the copies mutate the underlying parameters.
void clip_parameters(std::vector<Var> params, float clip);

// Wasserstein critic loss: mean(D(fake)) - mean(D(real)).
Var wasserstein_critic_loss(const Var& d_real, const Var& d_fake);
// Generator adversarial loss: -mean(D(fake)).
Var wasserstein_generator_loss(const Var& d_fake);

}  // namespace gtv::gan
