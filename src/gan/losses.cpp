#include "gan/losses.h"

#include "obs/profiler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gtv::gan {

Var gumbel_softmax(const Var& logits, float tau, Rng& rng) {
  obs::OpScope prof("gan.gumbel_softmax");
  if (tau <= 0.0f) throw std::invalid_argument("gumbel_softmax: tau must be positive");
  Tensor noise(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < noise.rows(); ++r) {
    for (std::size_t c = 0; c < noise.cols(); ++c) {
      double u = 0.0;
      do {
        u = rng.uniform();
      } while (u <= 1e-12);
      noise(r, c) = static_cast<float>(-std::log(-std::log(u)));
    }
  }
  Var shifted = ag::add(logits, ag::constant(std::move(noise)));
  return ag::softmax_rows(ag::mul_scalar(shifted, 1.0f / tau));
}

Var apply_output_activations(const Var& logits, const std::vector<encode::Span>& spans,
                             float tau, Rng& rng) {
  std::vector<Var> parts;
  parts.reserve(spans.size());
  std::size_t covered = 0;
  for (const auto& span : spans) {
    if (span.offset != covered) {
      throw std::invalid_argument("apply_output_activations: spans must tile the layout");
    }
    Var slice = ag::slice_cols(logits, span.offset, span.offset + span.width);
    if (span.activation == encode::Activation::kTanh) {
      parts.push_back(ag::tanh(slice));
    } else {
      parts.push_back(gumbel_softmax(slice, tau, rng));
    }
    covered += span.width;
  }
  if (covered != logits.cols()) {
    throw std::invalid_argument("apply_output_activations: spans do not cover all columns");
  }
  return ag::concat_cols(parts);
}

Var conditional_loss(const Var& logits, const Tensor& target_mask,
                     const std::vector<encode::TableEncoder::DiscreteSpan>& discrete_spans) {
  if (target_mask.rows() != logits.rows() || target_mask.cols() != logits.cols()) {
    throw std::invalid_argument("conditional_loss: mask shape mismatch");
  }
  Var mask = ag::constant(target_mask);
  Var total = ag::constant(Tensor::scalar(0.0f));
  for (const auto& span : discrete_spans) {
    Var span_logits = ag::slice_cols(logits, span.span_offset, span.span_offset + span.cardinality);
    Var span_mask = ag::slice_cols(mask, span.span_offset, span.span_offset + span.cardinality);
    Var log_probs = ag::log_softmax_rows(span_logits);
    total = ag::sub(total, ag::sum_all(ag::mul(span_mask, log_probs)));
  }
  return ag::mul_scalar(total, 1.0f / static_cast<float>(logits.rows()));
}

Var gradient_penalty(const std::function<Var(const Var&)>& critic, const Tensor& real_input,
                     const Tensor& fake_input, Rng& rng) {
  obs::OpScope prof("gan.gradient_penalty");
  if (!real_input.same_shape(fake_input)) {
    throw std::invalid_argument("gradient_penalty: real/fake shape mismatch " +
                                real_input.shape_str() + " vs " + fake_input.shape_str());
  }
  Tensor mix(real_input.rows(), real_input.cols());
  for (std::size_t r = 0; r < mix.rows(); ++r) {
    const float eps = static_cast<float>(rng.uniform());
    for (std::size_t c = 0; c < mix.cols(); ++c) {
      mix(r, c) = eps * real_input(r, c) + (1.0f - eps) * fake_input(r, c);
    }
  }
  Var x_hat(std::move(mix), /*requires_grad=*/true);
  Var d_hat = critic(x_hat);
  if (d_hat.cols() != 1) {
    throw std::invalid_argument("gradient_penalty: critic must output one column");
  }
  Var gx = ag::grad(ag::sum_all(d_hat), {x_hat}, /*create_graph=*/true)[0];
  Var norms = ag::row_norms(gx);
  return ag::mean_all(ag::square(ag::add_scalar(norms, -1.0f)));
}

void clip_parameters(std::vector<Var> params, float clip) {
  if (clip <= 0.0f) throw std::invalid_argument("clip_parameters: clip must be positive");
  for (auto& p : params) {
    Tensor value = p.value();
    for (std::size_t i = 0; i < value.size(); ++i) {
      value.data()[i] = std::clamp(value.data()[i], -clip, clip);
    }
    // Leaf update outside any graph (same contract as the optimizer step).
    p.set_value(std::move(value));
  }
}

Var wasserstein_critic_loss(const Var& d_real, const Var& d_fake) {
  return ag::sub(ag::mean_all(d_fake), ag::mean_all(d_real));
}

Var wasserstein_generator_loss(const Var& d_fake) { return ag::neg(ag::mean_all(d_fake)); }

}  // namespace gtv::gan
