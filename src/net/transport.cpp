#include "net/transport.h"

#include <array>
#include <chrono>
#include <cstring>

namespace gtv::net {

namespace {

// --- little-endian primitives ---------------------------------------------------

void put_u16_le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16_le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t len) {
  const auto& table = crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.link.size() > kMaxLinkNameBytes) {
    throw WireError("frame: link name too long: " + frame.link);
  }
  if (frame.payload.size() > kMaxFramePayloadBytes) {
    throw WireError("frame: payload too large on " + frame.link);
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + frame.link.size() + frame.payload.size());
  put_u32_le(out, kFrameMagic);
  put_u16_le(out, kProtocolVersion);
  put_u16_le(out, static_cast<std::uint16_t>(frame.link.size()));
  put_u32_le(out, static_cast<std::uint32_t>(frame.payload.size()));
  put_u64_le(out, frame.seq);
  // CRC over link + payload, the region a decorator may tamper with.
  std::uint32_t crc = 0xffffffffu;
  {
    const auto& table = crc_table();
    for (char ch : frame.link) {
      crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (crc >> 8);
    }
    for (std::uint8_t b : frame.payload) {
      crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
    }
    crc ^= 0xffffffffu;
  }
  put_u32_le(out, crc);
  out.insert(out.end(), frame.link.begin(), frame.link.end());
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

FrameHeader decode_frame_header(const std::uint8_t* data, std::size_t len) {
  if (len < kFrameHeaderBytes) throw WireError("frame: truncated header");
  if (get_u32_le(data) != kFrameMagic) throw WireError("frame: bad magic");
  const std::uint16_t version = get_u16_le(data + 4);
  if (version != kProtocolVersion) {
    throw VersionError("frame: protocol version " + std::to_string(version) +
                       " (expected " + std::to_string(kProtocolVersion) + ")");
  }
  FrameHeader header;
  header.link_len = get_u16_le(data + 6);
  header.payload_len = get_u32_le(data + 8);
  header.seq = get_u64_le(data + 12);
  if (header.link_len > kMaxLinkNameBytes) throw WireError("frame: link name too long");
  if (header.payload_len > kMaxFramePayloadBytes) {
    throw WireError("frame: payload length exceeds cap");
  }
  return header;
}

Frame decode_frame(const std::uint8_t* data, std::size_t len) {
  const FrameHeader header = decode_frame_header(data, len);
  if (len != header.total_bytes()) {
    throw WireError("frame: size mismatch (header says " +
                    std::to_string(header.total_bytes()) + ", buffer has " +
                    std::to_string(len) + ")");
  }
  const std::uint32_t want_crc = get_u32_le(data + 20);
  const std::uint8_t* body = data + kFrameHeaderBytes;
  const std::size_t body_len = static_cast<std::size_t>(header.link_len) + header.payload_len;
  if (crc32(body, body_len) != want_crc) {
    throw CorruptFrameError("frame: checksum mismatch");
  }
  Frame frame;
  frame.link.assign(reinterpret_cast<const char*>(body), header.link_len);
  frame.seq = header.seq;
  frame.payload.assign(body + header.link_len, body + body_len);
  return frame;
}

// --- Transport base --------------------------------------------------------------

void Transport::send(const std::string& link, const std::vector<std::uint8_t>& payload,
                     bool retransmit) {
  Frame frame;
  frame.link = link;
  frame.payload = payload;
  {
    std::lock_guard<std::mutex> lock(seq_mu_);
    std::uint64_t& next = send_seq_[link];
    if (retransmit) {
      if (next == 0) throw TransportError("transport: retransmit before first send on " + link);
      frame.seq = next - 1;
    } else {
      frame.seq = next++;
    }
  }
  deliver_frame(link, encode_frame(frame));
}

std::vector<std::uint8_t> Transport::recv(const std::string& link, int timeout_ms) {
  for (;;) {
    std::vector<std::uint8_t> raw = fetch_frame(link, timeout_ms);
    Frame frame = decode_frame(raw.data(), raw.size());  // may throw Corrupt/WireError
    if (frame.link != link) {
      throw WireError("transport: misrouted frame for " + frame.link + " on " + link);
    }
    std::unique_lock<std::mutex> lock(seq_mu_);
    std::uint64_t& expected = recv_expected_[link];
    if (frame.seq < expected) {
      // Duplicate or late retransmit of an already-delivered message.
      ++stale_dropped_;
      continue;
    }
    expected = frame.seq + 1;
    return std::move(frame.payload);
  }
}

std::uint64_t Transport::stale_frames_dropped() const {
  std::lock_guard<std::mutex> lock(seq_mu_);
  return stale_dropped_;
}

void Transport::reset_link(const std::string& link) {
  std::lock_guard<std::mutex> lock(seq_mu_);
  send_seq_.erase(link);
  recv_expected_.erase(link);
}

// --- InProcTransport -------------------------------------------------------------

void InProcTransport::deliver_frame(const std::string& link,
                                    std::vector<std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[link].push_back(std::move(frame));
  }
  cv_.notify_all();
}

std::vector<std::uint8_t> InProcTransport::fetch_frame(const std::string& link,
                                                       int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto ready = [&] {
    auto it = queues_.find(link);
    return it != queues_.end() && !it->second.empty();
  };
  if (!ready()) {
    if (timeout_ms <= 0 ||
        !cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
      throw TimeoutError("inproc: no frame on " + link);
    }
  }
  auto& queue = queues_[link];
  std::vector<std::uint8_t> frame = std::move(queue.front());
  queue.pop_front();
  return frame;
}

void InProcTransport::discard_queued(const std::string& link) {
  std::lock_guard<std::mutex> lock(mu_);
  queues_.erase(link);
}

std::size_t InProcTransport::queued(const std::string& link) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(link);
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace gtv::net
