// Simulated network boundary between GTV parties.
//
// The VFL privacy argument rests on *what* crosses the server/client
// boundary, so every cross-party value in this codebase is passed through a
// TrafficMeter: the payload is serialized to bytes, the byte count is
// charged to a named link, and the value is reconstructed from the bytes on
// the "other side". This both enforces that only serializable plain data
// crosses (no shared object graphs, no autograd history) and reproduces the
// paper's communication-overhead accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace gtv::obs {
class Counter;
}  // namespace gtv::obs

namespace gtv::net {

// --- serialization ---------------------------------------------------------------
std::vector<std::uint8_t> serialize_tensor(const Tensor& t);
Tensor deserialize_tensor(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> serialize_indices(const std::vector<std::size_t>& idx);
std::vector<std::size_t> deserialize_indices(const std::vector<std::uint8_t>& bytes);

struct LinkStats {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

// Besides the local per-meter accounting, every transfer is published to
// the process-wide obs::MetricsRegistry as `net.<link>.bytes` /
// `net.<link>.messages` counters (cumulative across meters; reset() does
// not rewind them), so traffic lands in the same report as the timing
// instrumentation.
//
// When a trace sink is active, each transfer additionally emits a
// "send <link>" span on the sending party's trace row, a "recv <link>"
// span on the receiving party's row, and a flow-event pair (ph:"s"/"f")
// carrying a fresh monotonic flow id, so Perfetto draws a causality arrow
// across the party boundary. Party pids are parsed from the link name
// ("server" = 0, "clientK" = K + 1) and cached per link alongside the
// counter handles, so the traced hot path does no string building.
class TrafficMeter {
 public:
  // Simulates sending `t` over `link`: serializes, counts, deserializes.
  Tensor transfer(const std::string& link, const Tensor& t);
  std::vector<std::size_t> transfer(const std::string& link,
                                    const std::vector<std::size_t>& indices);

  const LinkStats& stats(const std::string& link) const;
  LinkStats total() const;
  const std::map<std::string, LinkStats>& all() const { return links_; }
  void reset();

 private:
  struct FlowInfo {
    int from_pid = 0;
    int to_pid = 0;
    std::string send_label;  // "send <link>"
    std::string recv_label;  // "recv <link>"
  };

  // Charges `bytes` + one message to the link, locally and in the registry.
  void charge(const std::string& link, std::size_t bytes);
  const FlowInfo& flow_info(const std::string& link);
  // Emits the send/recv spans + flow pair for one transfer whose serialize
  // phase was [t0, t1) and deserialize phase [t1, t2).
  void emit_transfer_trace(const FlowInfo& info, std::uint64_t flow_id,
                           std::uint64_t t0, std::uint64_t t1, std::uint64_t t2);

  struct LinkCounters {
    obs::Counter* bytes = nullptr;
    obs::Counter* messages = nullptr;
  };
  std::map<std::string, LinkStats> links_;
  std::map<std::string, LinkCounters> counters_;  // registry handles per link
  std::map<std::string, FlowInfo> flows_;         // cached trace labels per link
};

}  // namespace gtv::net
