// Network boundary between GTV parties.
//
// The VFL privacy argument rests on *what* crosses the server/client
// boundary, so every cross-party value in this codebase is passed through a
// TrafficMeter: the payload is serialized to bytes, the byte count is
// charged to a named link, and the value is reconstructed from the bytes on
// the "other side". This both enforces that only serializable plain data
// crosses (no shared object graphs, no autograd history) and reproduces the
// paper's communication-overhead accounting.
//
// Underneath, the bytes now travel through a pluggable net::Transport
// (net/transport.h). The default InProcTransport is a loopback queue —
// transfer() pushes a frame and immediately pops it, byte-identical to the
// historical simulated boundary — but the same meter drives real TCP links
// between OS processes (net/tcp.h) via the split send_*/recv_* endpoints,
// and tolerates injected faults (net/chaos.h) through a bounded
// retransmit/backoff loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"
#include "tensor/tensor.h"

namespace gtv::obs {
class Counter;
class Histogram;
}  // namespace gtv::obs

namespace gtv::net {

// --- serialization ---------------------------------------------------------------
// Byte layouts (all integers and float bits little-endian):
//   tensor : u64 rows | u64 cols | rows*cols f32 (row-major)
//   indices: u64 n    | n x u64
// Deserializers validate sizes exactly — truncated or trailing bytes, or a
// rows*cols product that overflows, raise WireError (a std::runtime_error).
std::vector<std::uint8_t> serialize_tensor(const Tensor& t);
Tensor deserialize_tensor(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> serialize_indices(const std::vector<std::size_t>& idx);
std::vector<std::size_t> deserialize_indices(const std::vector<std::uint8_t>& bytes);

struct LinkStats {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  // Reliability counters (all zero on a clean transport).
  std::uint64_t retries = 0;         // retransmits after a timeout/corruption
  std::uint64_t timeouts = 0;        // recv attempts that expired
  std::uint64_t corrupt_frames = 0;  // frames rejected by the CRC check
};

// Bounded retry/backoff for one logical transfer. On the loopback path a
// frame is either already queued or lost (chaos), so the recv wait is 0 and
// a miss immediately retransmits; distributed receivers wait recv_timeout_ms
// per attempt instead (the peer is a real process that may be mid-compute).
struct RetryPolicy {
  int max_attempts = 12;             // total tries per logical message
  int recv_timeout_ms = 2000;        // per-attempt wait, distributed recv_*
  int loopback_recv_timeout_ms = 0;  // per-attempt wait inside transfer()
  int backoff_base_ms = 1;           // doubled per retry ...
  int backoff_max_ms = 100;          // ... up to this cap
};

// Besides the local per-meter accounting, every transfer is published to
// the process-wide obs::MetricsRegistry as `net.<link>.bytes` /
// `net.<link>.messages` counters, with `net.<link>.retries` / `.timeouts` /
// `.corrupt_frames` appearing as soon as the first fault is observed
// (cumulative across meters; reset() does not rewind them). When timing is
// enabled, per-link `net.<link>.send_ms` / `net.<link>.recv_ms` histograms
// record the two halves of each transfer.
//
// When a trace sink is active, each transfer additionally emits a
// "send <link>" span on the sending party's trace row, a "recv <link>"
// span on the receiving party's row, and a flow-event pair (ph:"s"/"f").
// Flow ids are *deterministic* — hash(link) in the high bits, the link's
// message ordinal in the low 20 — so the send half emitted by one OS
// process pairs with the recv half emitted by another when their trace
// files are merged (gtv-prof --trace a.jsonl --trace b.jsonl). Ids stay
// below 2^53 so JSON double parsing cannot lose precision. Party pids are
// parsed from the link name ("server" = 0, "clientK" = K + 1) and cached
// per link alongside the counter handles, so the traced hot path does no
// string building.
class TrafficMeter {
 public:
  // Loopback round-trip: sends `t` over `link` and immediately receives it
  // on the same meter — serializes, charges, frames, unframes,
  // deserializes. Lost or corrupted deliveries (ChaosTransport) are
  // recovered by retransmitting under the RetryPolicy; the payload bytes
  // are charged once per logical transfer, not per retry.
  Tensor transfer(const std::string& link, const Tensor& t);
  std::vector<std::size_t> transfer(const std::string& link,
                                    const std::vector<std::size_t>& indices);

  // Split endpoints for real multi-process runs: the sending process calls
  // send_*, the process at the other end of `link` calls recv_*. Traffic is
  // charged on the sending side only. recv_* waits recv_timeout_ms per
  // attempt; corrupted frames surface as CorruptFrameError after being
  // counted (a stream transport cannot retransmit without a reverse
  // channel — recovery there is the transport's job).
  void send_tensor(const std::string& link, const Tensor& t);
  Tensor recv_tensor(const std::string& link);
  void send_indices(const std::string& link, const std::vector<std::size_t>& idx);
  std::vector<std::size_t> recv_indices(const std::string& link);
  void send_payload(const std::string& link, const std::vector<std::uint8_t>& bytes);
  std::vector<std::uint8_t> recv_payload(const std::string& link);

  // The transport carrying this meter's frames. Defaults to a private
  // InProcTransport, created lazily on first use.
  Transport& transport();
  void set_transport(std::shared_ptr<Transport> transport);
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  const LinkStats& stats(const std::string& link) const;
  LinkStats total() const;
  const std::map<std::string, LinkStats>& all() const { return links_; }
  // Clears the local per-link stats. Registry counters are cumulative and
  // deliberately unaffected.
  void reset();

 private:
  struct FlowInfo {
    int from_pid = 0;
    int to_pid = 0;
    std::uint64_t flow_base = 0;  // hash(link) << 20
    std::uint64_t ordinal = 0;    // logical messages seen on this link
    std::string send_label;       // "send <link>"
    std::string recv_label;       // "recv <link>"
  };

  // Charges `bytes` + one message to the link, locally and in the registry.
  void charge(const std::string& link, std::size_t bytes);
  void note_fault(const std::string& link, const char* what, std::uint64_t LinkStats::*field);
  FlowInfo& flow_info(const std::string& link);
  // Emits the send/recv spans + flow pair for one transfer whose serialize
  // phase was [t0, t1) and deserialize phase [t1, t2).
  void emit_transfer_trace(const FlowInfo& info, std::uint64_t flow_id,
                           std::uint64_t t0, std::uint64_t t1, std::uint64_t t2);
  void record_timing(const std::string& link, const char* half, double ms);
  // send + recv with bounded retransmit (loopback path).
  std::vector<std::uint8_t> roundtrip(const std::string& link,
                                      const std::vector<std::uint8_t>& payload);
  std::vector<std::uint8_t> recv_with_retry(const std::string& link);

  struct LinkCounters {
    obs::Counter* bytes = nullptr;
    obs::Counter* messages = nullptr;
    obs::Histogram* send_ms = nullptr;  // resolved only when timing is on
    obs::Histogram* recv_ms = nullptr;
  };
  std::shared_ptr<Transport> transport_;
  RetryPolicy retry_;
  std::map<std::string, LinkStats> links_;
  std::map<std::string, LinkCounters> counters_;  // registry handles per link
  std::map<std::string, FlowInfo> flows_;         // cached trace labels per link
};

}  // namespace gtv::net
