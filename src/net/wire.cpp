#include "net/wire.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gtv::net {

namespace {

template <typename T>
void append(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read(const std::vector<std::uint8_t>& bytes, std::size_t& offset) {
  if (offset + sizeof(T) > bytes.size()) {
    throw std::runtime_error("wire: truncated payload");
  }
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

// Trace pid for a link endpoint name: "server" = 0, "clientK" = K + 1.
// Unrecognised endpoints land on the driver row.
int endpoint_pid(const std::string& endpoint) {
  if (endpoint == "server") return 0;
  if (endpoint.rfind("client", 0) == 0) {
    const char* digits = endpoint.c_str() + 6;
    if (digits[0] != '\0') {
      char* end = nullptr;
      const long k = std::strtol(digits, &end, 10);
      if (end != nullptr && *end == '\0' && k >= 0) return static_cast<int>(k) + 1;
    }
  }
  return obs::kDriverPid;
}

}  // namespace

std::vector<std::uint8_t> serialize_tensor(const Tensor& t) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + t.size() * sizeof(float));
  append<std::uint64_t>(out, t.rows());
  append<std::uint64_t>(out, t.cols());
  const auto* p = reinterpret_cast<const std::uint8_t*>(t.data());
  out.insert(out.end(), p, p + t.size() * sizeof(float));
  return out;
}

Tensor deserialize_tensor(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  const auto rows = static_cast<std::size_t>(read<std::uint64_t>(bytes, offset));
  const auto cols = static_cast<std::size_t>(read<std::uint64_t>(bytes, offset));
  if (bytes.size() != offset + rows * cols * sizeof(float)) {
    throw std::runtime_error("wire: tensor payload size mismatch");
  }
  FloatVec values(rows * cols);
  std::memcpy(values.data(), bytes.data() + offset, values.size() * sizeof(float));
  return Tensor(rows, cols, std::move(values));
}

std::vector<std::uint8_t> serialize_indices(const std::vector<std::size_t>& idx) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + idx.size() * 8);
  append<std::uint64_t>(out, idx.size());
  for (std::size_t v : idx) append<std::uint64_t>(out, static_cast<std::uint64_t>(v));
  return out;
}

std::vector<std::size_t> deserialize_indices(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  const auto n = static_cast<std::size_t>(read<std::uint64_t>(bytes, offset));
  std::vector<std::size_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::size_t>(read<std::uint64_t>(bytes, offset)));
  }
  return out;
}

void TrafficMeter::charge(const std::string& link, std::size_t bytes) {
  auto& stats = links_[link];
  stats.bytes += bytes;
  stats.messages += 1;
  auto& counters = counters_[link];
  if (counters.bytes == nullptr) {
    auto& registry = obs::MetricsRegistry::instance();
    counters.bytes = &registry.counter("net." + link + ".bytes");
    counters.messages = &registry.counter("net." + link + ".messages");
  }
  counters.bytes->add(bytes);
  counters.messages->add();
}

const TrafficMeter::FlowInfo& TrafficMeter::flow_info(const std::string& link) {
  auto it = flows_.find(link);
  if (it != flows_.end()) return it->second;
  FlowInfo info;
  const std::size_t arrow = link.find("->");
  if (arrow != std::string::npos) {
    info.from_pid = endpoint_pid(link.substr(0, arrow));
    info.to_pid = endpoint_pid(link.substr(arrow + 2));
  } else {
    info.from_pid = info.to_pid = obs::kDriverPid;
  }
  info.send_label = "send " + link;
  info.recv_label = "recv " + link;
  return flows_.emplace(link, std::move(info)).first->second;
}

void TrafficMeter::emit_transfer_trace(const FlowInfo& info, std::uint64_t flow_id,
                                       std::uint64_t t0, std::uint64_t t1,
                                       std::uint64_t t2) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  // Give zero-length spans 1us so viewers render a slice the flow arrow can
  // anchor to; the flow timestamps sit at the spans' starts so "s" precedes
  // "f" and each lands inside its slice.
  {
    obs::PartyScope sender(info.from_pid);
    sink.emit_complete(info.send_label.c_str(), t0, std::max<std::uint64_t>(1, t1 - t0));
  }
  sink.emit_flow(info.send_label.c_str(), flow_id, 's', info.from_pid, t0);
  {
    obs::PartyScope receiver(info.to_pid);
    sink.emit_complete(info.recv_label.c_str(), t1, std::max<std::uint64_t>(1, t2 - t1));
  }
  sink.emit_flow(info.recv_label.c_str(), flow_id, 'f', info.to_pid, t1);
}

Tensor TrafficMeter::transfer(const std::string& link, const Tensor& t) {
  const bool traced = obs::TraceSink::instance().active();
  std::uint64_t t0 = 0;
  if (traced) t0 = obs::TraceSink::now_us();
  auto bytes = serialize_tensor(t);
  charge(link, bytes.size());
  if (!traced) return deserialize_tensor(bytes);
  const std::uint64_t t1 = obs::TraceSink::now_us();
  Tensor out = deserialize_tensor(bytes);
  const std::uint64_t t2 = obs::TraceSink::now_us();
  emit_transfer_trace(flow_info(link), obs::TraceSink::next_flow_id(), t0, t1, t2);
  return out;
}

std::vector<std::size_t> TrafficMeter::transfer(const std::string& link,
                                                const std::vector<std::size_t>& indices) {
  const bool traced = obs::TraceSink::instance().active();
  std::uint64_t t0 = 0;
  if (traced) t0 = obs::TraceSink::now_us();
  auto bytes = serialize_indices(indices);
  charge(link, bytes.size());
  if (!traced) return deserialize_indices(bytes);
  const std::uint64_t t1 = obs::TraceSink::now_us();
  auto out = deserialize_indices(bytes);
  const std::uint64_t t2 = obs::TraceSink::now_us();
  emit_transfer_trace(flow_info(link), obs::TraceSink::next_flow_id(), t0, t1, t2);
  return out;
}

const LinkStats& TrafficMeter::stats(const std::string& link) const {
  static const LinkStats kEmpty;
  auto it = links_.find(link);
  return it == links_.end() ? kEmpty : it->second;
}

LinkStats TrafficMeter::total() const {
  LinkStats total;
  for (const auto& [name, stats] : links_) {
    total.bytes += stats.bytes;
    total.messages += stats.messages;
  }
  return total;
}

void TrafficMeter::reset() { links_.clear(); }

}  // namespace gtv::net
