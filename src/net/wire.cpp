#include "net/wire.h"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"

namespace gtv::net {

namespace {

template <typename T>
void append(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read(const std::vector<std::uint8_t>& bytes, std::size_t& offset) {
  if (offset + sizeof(T) > bytes.size()) {
    throw std::runtime_error("wire: truncated payload");
  }
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::vector<std::uint8_t> serialize_tensor(const Tensor& t) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + t.size() * sizeof(float));
  append<std::uint64_t>(out, t.rows());
  append<std::uint64_t>(out, t.cols());
  const auto* p = reinterpret_cast<const std::uint8_t*>(t.data());
  out.insert(out.end(), p, p + t.size() * sizeof(float));
  return out;
}

Tensor deserialize_tensor(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  const auto rows = static_cast<std::size_t>(read<std::uint64_t>(bytes, offset));
  const auto cols = static_cast<std::size_t>(read<std::uint64_t>(bytes, offset));
  if (bytes.size() != offset + rows * cols * sizeof(float)) {
    throw std::runtime_error("wire: tensor payload size mismatch");
  }
  std::vector<float> values(rows * cols);
  std::memcpy(values.data(), bytes.data() + offset, values.size() * sizeof(float));
  return Tensor(rows, cols, std::move(values));
}

std::vector<std::uint8_t> serialize_indices(const std::vector<std::size_t>& idx) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + idx.size() * 8);
  append<std::uint64_t>(out, idx.size());
  for (std::size_t v : idx) append<std::uint64_t>(out, static_cast<std::uint64_t>(v));
  return out;
}

std::vector<std::size_t> deserialize_indices(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  const auto n = static_cast<std::size_t>(read<std::uint64_t>(bytes, offset));
  std::vector<std::size_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::size_t>(read<std::uint64_t>(bytes, offset)));
  }
  return out;
}

void TrafficMeter::charge(const std::string& link, std::size_t bytes) {
  auto& stats = links_[link];
  stats.bytes += bytes;
  stats.messages += 1;
  auto& counters = counters_[link];
  if (counters.bytes == nullptr) {
    auto& registry = obs::MetricsRegistry::instance();
    counters.bytes = &registry.counter("net." + link + ".bytes");
    counters.messages = &registry.counter("net." + link + ".messages");
  }
  counters.bytes->add(bytes);
  counters.messages->add();
}

Tensor TrafficMeter::transfer(const std::string& link, const Tensor& t) {
  auto bytes = serialize_tensor(t);
  charge(link, bytes.size());
  return deserialize_tensor(bytes);
}

std::vector<std::size_t> TrafficMeter::transfer(const std::string& link,
                                                const std::vector<std::size_t>& indices) {
  auto bytes = serialize_indices(indices);
  charge(link, bytes.size());
  return deserialize_indices(bytes);
}

const LinkStats& TrafficMeter::stats(const std::string& link) const {
  static const LinkStats kEmpty;
  auto it = links_.find(link);
  return it == links_.end() ? kEmpty : it->second;
}

LinkStats TrafficMeter::total() const {
  LinkStats total;
  for (const auto& [name, stats] : links_) {
    total.bytes += stats.bytes;
    total.messages += stats.messages;
  }
  return total;
}

void TrafficMeter::reset() { links_.clear(); }

}  // namespace gtv::net
