#include "net/wire.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>

#include "obs/blackbox.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gtv::net {

namespace {

// --- little-endian primitives ----------------------------------------------------
// The wire layouts are pinned little-endian so files/streams produced on one
// host parse identically on another (and on big-endian hosts, should one
// ever appear).

void append_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t read_u64_le(const std::vector<std::uint8_t>& bytes, std::size_t& offset) {
  if (offset + 8 > bytes.size()) throw WireError("wire: truncated payload");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | bytes[offset + i];
  offset += 8;
  return v;
}

void append_f32_le(std::vector<std::uint8_t>& out, float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, 4);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

float read_f32_le(const std::uint8_t* p) {
  std::uint32_t bits = 0;
  for (int i = 3; i >= 0; --i) bits = (bits << 8) | p[i];
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

// Trace pid for a link endpoint name: "server" = 0, "clientK" = K + 1.
// Unrecognised endpoints land on the driver row.
int endpoint_pid(const std::string& endpoint) {
  if (endpoint == "server") return 0;
  if (endpoint == "serve") return 98;  // serving daemon (tools/gtv-serve)
  if (endpoint.rfind("client", 0) == 0) {
    const char* digits = endpoint.c_str() + 6;
    if (digits[0] != '\0') {
      char* end = nullptr;
      const long k = std::strtol(digits, &end, 10);
      if (end != nullptr && *end == '\0' && k >= 0) return static_cast<int>(k) + 1;
    }
  }
  return obs::kDriverPid;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

// --- serialization ---------------------------------------------------------------

std::vector<std::uint8_t> serialize_tensor(const Tensor& t) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + t.size() * sizeof(float));
  append_u64_le(out, t.rows());
  append_u64_le(out, t.cols());
  const float* p = t.data();
  for (std::size_t i = 0; i < t.size(); ++i) append_f32_le(out, p[i]);
  return out;
}

Tensor deserialize_tensor(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  const std::uint64_t rows64 = read_u64_le(bytes, offset);
  const std::uint64_t cols64 = read_u64_le(bytes, offset);
  // Element count must fit size_t and the byte count must match exactly —
  // an attacker-sized header cannot force a huge allocation or hide
  // trailing garbage.
  constexpr std::uint64_t kMaxElems =
      std::numeric_limits<std::size_t>::max() / sizeof(float);
  if (cols64 != 0 && rows64 > kMaxElems / cols64) {
    throw WireError("wire: tensor dimensions overflow");
  }
  const std::uint64_t elems = rows64 * cols64;
  if (bytes.size() != offset + elems * sizeof(float)) {
    throw WireError("wire: tensor payload size mismatch");
  }
  const auto rows = static_cast<std::size_t>(rows64);
  const auto cols = static_cast<std::size_t>(cols64);
  FloatVec values(static_cast<std::size_t>(elems));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = read_f32_le(bytes.data() + offset + i * 4);
  }
  return Tensor(rows, cols, std::move(values));
}

std::vector<std::uint8_t> serialize_indices(const std::vector<std::size_t>& idx) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + idx.size() * 8);
  append_u64_le(out, idx.size());
  for (std::size_t v : idx) append_u64_le(out, static_cast<std::uint64_t>(v));
  return out;
}

std::vector<std::size_t> deserialize_indices(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  const std::uint64_t n = read_u64_le(bytes, offset);
  if (n > (std::numeric_limits<std::size_t>::max() - offset) / 8 ||
      bytes.size() != offset + n * 8) {
    throw WireError("wire: indices payload size mismatch");
  }
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::size_t>(read_u64_le(bytes, offset)));
  }
  return out;
}

// --- TrafficMeter ----------------------------------------------------------------

Transport& TrafficMeter::transport() {
  if (!transport_) transport_ = std::make_shared<InProcTransport>();
  return *transport_;
}

void TrafficMeter::set_transport(std::shared_ptr<Transport> transport) {
  if (!transport) throw TransportError("meter: null transport");
  transport_ = std::move(transport);
}

void TrafficMeter::charge(const std::string& link, std::size_t bytes) {
  auto& stats = links_[link];
  stats.bytes += bytes;
  stats.messages += 1;
  auto& counters = counters_[link];
  if (counters.bytes == nullptr) {
    auto& registry = obs::MetricsRegistry::instance();
    counters.bytes = &registry.counter("net." + link + ".bytes");
    counters.messages = &registry.counter("net." + link + ".messages");
  }
  counters.bytes->add(bytes);
  counters.messages->add();
}

void TrafficMeter::note_fault(const std::string& link, const char* what,
                              std::uint64_t LinkStats::*field) {
  links_[link].*field += 1;
  // Faults are rare; building the metric name inline keeps the clean path
  // free of these counters entirely (they only exist once observed).
  obs::MetricsRegistry::instance().counter("net." + link + "." + what).add();
  const obs::bb::NetEvent kind = std::strcmp(what, "timeouts") == 0
                                     ? obs::bb::NetEvent::kTimeout
                                 : std::strcmp(what, "corrupt_frames") == 0
                                     ? obs::bb::NetEvent::kCorruptFrame
                                     : obs::bb::NetEvent::kRetry;
  obs::bb::note_net_event(kind, link.c_str());
}

void TrafficMeter::record_timing(const std::string& link, const char* half, double ms) {
  auto& counters = counters_[link];
  obs::Histogram*& slot =
      std::strcmp(half, "send_ms") == 0 ? counters.send_ms : counters.recv_ms;
  if (slot == nullptr) {
    slot = &obs::MetricsRegistry::instance().histogram("net." + link + "." + half);
  }
  slot->record(ms);
}

TrafficMeter::FlowInfo& TrafficMeter::flow_info(const std::string& link) {
  auto it = flows_.find(link);
  if (it != flows_.end()) return it->second;
  FlowInfo info;
  const std::size_t arrow = link.find("->");
  if (arrow != std::string::npos) {
    info.from_pid = endpoint_pid(link.substr(0, arrow));
    info.to_pid = endpoint_pid(link.substr(arrow + 2));
  } else {
    info.from_pid = info.to_pid = obs::kDriverPid;
  }
  // Deterministic flow-id namespace for this link. Kept under 2^52 (32 hash
  // bits + 20 ordinal bits) so ids survive JSON number (double) round-trips.
  info.flow_base = (fnv1a64(link) & 0xFFFFFFFFULL) << 20;
  info.send_label = "send " + link;
  info.recv_label = "recv " + link;
  return flows_.emplace(link, std::move(info)).first->second;
}

void TrafficMeter::emit_transfer_trace(const FlowInfo& info, std::uint64_t flow_id,
                                       std::uint64_t t0, std::uint64_t t1,
                                       std::uint64_t t2) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  // Give zero-length spans 1us so viewers render a slice the flow arrow can
  // anchor to; the flow timestamps sit at the spans' starts so "s" precedes
  // "f" and each lands inside its slice.
  {
    obs::PartyScope sender(info.from_pid);
    sink.emit_complete(info.send_label.c_str(), t0, std::max<std::uint64_t>(1, t1 - t0));
  }
  sink.emit_flow(info.send_label.c_str(), flow_id, 's', info.from_pid, t0);
  {
    obs::PartyScope receiver(info.to_pid);
    sink.emit_complete(info.recv_label.c_str(), t1, std::max<std::uint64_t>(1, t2 - t1));
  }
  sink.emit_flow(info.recv_label.c_str(), flow_id, 'f', info.to_pid, t1);
}

std::vector<std::uint8_t> TrafficMeter::roundtrip(const std::string& link,
                                                  const std::vector<std::uint8_t>& payload) {
  Transport& t = transport();
  t.send(link, payload);
  int backoff_ms = retry_.backoff_base_ms;
  for (int attempt = 1;; ++attempt) {
    try {
      return t.recv(link, retry_.loopback_recv_timeout_ms);
    } catch (const CorruptFrameError&) {
      note_fault(link, "corrupt_frames", &LinkStats::corrupt_frames);
      if (attempt >= retry_.max_attempts) throw;
    } catch (const TimeoutError&) {
      note_fault(link, "timeouts", &LinkStats::timeouts);
      if (attempt >= retry_.max_attempts) throw;
    }
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, retry_.backoff_max_ms);
    }
    note_fault(link, "retries", &LinkStats::retries);
    t.send(link, payload, /*retransmit=*/true);
  }
}

std::vector<std::uint8_t> TrafficMeter::recv_with_retry(const std::string& link) {
  // EINTR never reaches this layer: every raw send/recv/accept/connect
  // syscall lives in tcp.cpp, whose loops restart on EINTR (sampling
  // signals fire at --sample-hz rates), so a Transport exception here is a
  // genuine timeout/corruption, never an interrupted syscall in disguise.
  Transport& t = transport();
  for (int attempt = 1;; ++attempt) {
    try {
      return t.recv(link, retry_.recv_timeout_ms);
    } catch (const CorruptFrameError&) {
      // A stream peer will not retransmit on its own; surface the typed
      // error after counting it.
      note_fault(link, "corrupt_frames", &LinkStats::corrupt_frames);
      throw;
    } catch (const TimeoutError&) {
      note_fault(link, "timeouts", &LinkStats::timeouts);
      if (attempt >= retry_.max_attempts) throw;
      note_fault(link, "retries", &LinkStats::retries);
    }
  }
}

Tensor TrafficMeter::transfer(const std::string& link, const Tensor& t) {
  const bool traced = obs::TraceSink::instance().active();
  const bool timed = obs::timing_enabled();
  const std::uint64_t t0 = traced ? obs::TraceSink::now_us() : 0;
  Clock::time_point c0;
  if (timed) c0 = Clock::now();
  auto bytes = serialize_tensor(t);
  charge(link, bytes.size());
  auto back = roundtrip(link, bytes);
  const std::uint64_t t1 = traced ? obs::TraceSink::now_us() : 0;
  Clock::time_point c1;
  if (timed) {
    c1 = Clock::now();
    record_timing(link, "send_ms", ms_since(c0));
  }
  Tensor out = deserialize_tensor(back);
  if (traced) {
    FlowInfo& info = flow_info(link);
    const std::uint64_t id = info.flow_base | (info.ordinal++ & 0xFFFFFULL);
    emit_transfer_trace(info, id, t0, t1, obs::TraceSink::now_us());
  }
  if (timed) record_timing(link, "recv_ms", ms_since(c1));
  return out;
}

std::vector<std::size_t> TrafficMeter::transfer(const std::string& link,
                                                const std::vector<std::size_t>& indices) {
  const bool traced = obs::TraceSink::instance().active();
  const bool timed = obs::timing_enabled();
  const std::uint64_t t0 = traced ? obs::TraceSink::now_us() : 0;
  Clock::time_point c0;
  if (timed) c0 = Clock::now();
  auto bytes = serialize_indices(indices);
  charge(link, bytes.size());
  auto back = roundtrip(link, bytes);
  const std::uint64_t t1 = traced ? obs::TraceSink::now_us() : 0;
  Clock::time_point c1;
  if (timed) {
    c1 = Clock::now();
    record_timing(link, "send_ms", ms_since(c0));
  }
  auto out = deserialize_indices(back);
  if (traced) {
    FlowInfo& info = flow_info(link);
    const std::uint64_t id = info.flow_base | (info.ordinal++ & 0xFFFFFULL);
    emit_transfer_trace(info, id, t0, t1, obs::TraceSink::now_us());
  }
  if (timed) record_timing(link, "recv_ms", ms_since(c1));
  return out;
}

void TrafficMeter::send_payload(const std::string& link,
                                const std::vector<std::uint8_t>& bytes) {
  const bool traced = obs::TraceSink::instance().active();
  const bool timed = obs::timing_enabled();
  const std::uint64_t t0 = traced ? obs::TraceSink::now_us() : 0;
  Clock::time_point c0;
  if (timed) c0 = Clock::now();
  charge(link, bytes.size());
  transport().send(link, bytes);
  if (timed) record_timing(link, "send_ms", ms_since(c0));
  if (traced) {
    FlowInfo& info = flow_info(link);
    const std::uint64_t id = info.flow_base | (info.ordinal++ & 0xFFFFFULL);
    const std::uint64_t t1 = obs::TraceSink::now_us();
    obs::TraceSink& sink = obs::TraceSink::instance();
    obs::PartyScope sender(info.from_pid);
    sink.emit_complete(info.send_label.c_str(), t0, std::max<std::uint64_t>(1, t1 - t0));
    sink.emit_flow(info.send_label.c_str(), id, 's', info.from_pid, t0);
  }
}

std::vector<std::uint8_t> TrafficMeter::recv_payload(const std::string& link) {
  const bool traced = obs::TraceSink::instance().active();
  const bool timed = obs::timing_enabled();
  const std::uint64_t t0 = traced ? obs::TraceSink::now_us() : 0;
  Clock::time_point c0;
  if (timed) c0 = Clock::now();
  auto bytes = recv_with_retry(link);
  if (timed) record_timing(link, "recv_ms", ms_since(c0));
  if (traced) {
    FlowInfo& info = flow_info(link);
    const std::uint64_t id = info.flow_base | (info.ordinal++ & 0xFFFFFULL);
    const std::uint64_t t1 = obs::TraceSink::now_us();
    obs::TraceSink& sink = obs::TraceSink::instance();
    obs::PartyScope receiver(info.to_pid);
    sink.emit_complete(info.recv_label.c_str(), t0, std::max<std::uint64_t>(1, t1 - t0));
    sink.emit_flow(info.recv_label.c_str(), id, 'f', info.to_pid, t0);
  }
  return bytes;
}

void TrafficMeter::send_tensor(const std::string& link, const Tensor& t) {
  send_payload(link, serialize_tensor(t));
}

Tensor TrafficMeter::recv_tensor(const std::string& link) {
  return deserialize_tensor(recv_payload(link));
}

void TrafficMeter::send_indices(const std::string& link,
                                const std::vector<std::size_t>& idx) {
  send_payload(link, serialize_indices(idx));
}

std::vector<std::size_t> TrafficMeter::recv_indices(const std::string& link) {
  return deserialize_indices(recv_payload(link));
}

const LinkStats& TrafficMeter::stats(const std::string& link) const {
  static const LinkStats kEmpty;
  auto it = links_.find(link);
  return it == links_.end() ? kEmpty : it->second;
}

LinkStats TrafficMeter::total() const {
  LinkStats total;
  for (const auto& [name, stats] : links_) {
    total.bytes += stats.bytes;
    total.messages += stats.messages;
    total.retries += stats.retries;
    total.timeouts += stats.timeouts;
    total.corrupt_frames += stats.corrupt_frames;
  }
  return total;
}

void TrafficMeter::reset() { links_.clear(); }

}  // namespace gtv::net
