#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/blackbox.h"
#include <utility>

#include "obs/thread_name.h"
#include "obs/trace.h"

namespace gtv::net {

namespace {

// HELLO frames travel on this pseudo-link; the payload is the sender's
// party name. The frame header itself carries (and validates) the
// protocol version.
constexpr const char* kHelloLink = "@hello";

// Clock-sync frames exchanged right after HELLO, before the reader thread
// takes over the stream. Payload layout (little-endian):
//   ping   [u8 kind=0][u32 idx][u64 t0]
//   pong   [u8 kind=1][u32 idx][u64 t0][u64 t1][u64 t2]
//   report [u8 kind=2][u8 valid][i64 offset_us][u64 rtt_us]  (dialer's estimate)
constexpr const char* kClockLink = "@clock";
constexpr std::uint8_t kClockPing = 0;
constexpr std::uint8_t kClockPong = 1;
constexpr std::uint8_t kClockReport = 2;

void append_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32_le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

bool read_full(int fd, std::uint8_t* buf, std::size_t n, int timeout_ms) {
  std::size_t got = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
  while (got < n) {
    if (timeout_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count());
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, wait_ms > 0 ? wait_ms : 1);
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return false;
    }
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) return false;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

// Completes a connect() that was interrupted by a signal. POSIX: after
// EINTR the connection attempt continues asynchronously, and the socket is
// *already* committed — dialing again on a fresh fd would burn an attempt
// for nothing. Wait for writability, then read the final status from
// SO_ERROR.
bool finish_connect(int fd, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count());
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, wait_ms > 0 ? wait_ms : 1);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return false;
    break;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return false;
  return err == 0;
}

bool write_full(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

// Reads exactly one frame off `fd` (header, then body). Returns an empty
// vector on EOF/timeout/error.
std::vector<std::uint8_t> read_frame(int fd, int timeout_ms) {
  std::vector<std::uint8_t> bytes(kFrameHeaderBytes);
  if (!read_full(fd, bytes.data(), kFrameHeaderBytes, timeout_ms)) return {};
  const FrameHeader header = decode_frame_header(bytes.data(), bytes.size());
  bytes.resize(header.total_bytes());
  if (header.total_bytes() > kFrameHeaderBytes &&
      !read_full(fd, bytes.data() + kFrameHeaderBytes,
                 header.total_bytes() - kFrameHeaderBytes, timeout_ms)) {
    return {};
  }
  return bytes;
}

void send_hello(int fd, const std::string& self) {
  Frame hello;
  hello.link = kHelloLink;
  hello.payload.assign(self.begin(), self.end());
  const auto bytes = encode_frame(hello);
  if (!write_full(fd, bytes.data(), bytes.size())) {
    throw TransportError("tcp: handshake write failed");
  }
}

std::string recv_hello(int fd, int timeout_ms) {
  const auto bytes = read_frame(fd, timeout_ms);
  if (bytes.empty()) throw TransportError("tcp: handshake read failed");
  const Frame frame = decode_frame(bytes);  // VersionError on mismatch
  if (frame.link != kHelloLink) throw TransportError("tcp: expected HELLO frame");
  return std::string(frame.payload.begin(), frame.payload.end());
}

void send_clock_frame(int fd, std::vector<std::uint8_t> payload) {
  Frame frame;
  frame.link = kClockLink;
  frame.payload = std::move(payload);
  const auto bytes = encode_frame(frame);
  if (!write_full(fd, bytes.data(), bytes.size())) {
    throw TransportError("tcp: clock-sync write failed");
  }
}

Frame recv_clock_frame(int fd, int timeout_ms) {
  const auto bytes = read_frame(fd, timeout_ms);
  if (bytes.empty()) throw TransportError("tcp: clock-sync read failed");
  const Frame frame = decode_frame(bytes);
  if (frame.link != kClockLink) {
    throw TransportError("tcp: expected @clock frame, got '" + frame.link + "'");
  }
  if (frame.payload.empty()) throw TransportError("tcp: empty clock-sync frame");
  return frame;
}

}  // namespace

ClockSync estimate_clock_offset(const std::vector<ClockSyncSample>& samples) {
  ClockSync best;
  for (const ClockSyncSample& s : samples) {
    const double rtt = (s.t3 - s.t0) - (s.t2 - s.t1);
    if (rtt < 0) continue;  // a clock stepped mid-exchange; unusable
    if (!best.valid || rtt < best.rtt_us) {
      best.valid = true;
      best.rtt_us = rtt;
      best.offset_us = ((s.t1 - s.t0) + (s.t2 - s.t3)) / 2.0;
    }
  }
  return best;
}

TcpTransport::TcpTransport(std::string self_name, TcpOptions options)
    : self_(std::move(self_name)), options_(options) {}

TcpTransport::~TcpTransport() {
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [peer, conn] : conns_) {
      conn->closed.store(true);
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  // Readers exit once their socket is shut down.
  for (auto& [peer, conn] : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    ::close(conn->fd);
  }
  queues_cv_.notify_all();
}

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw TransportError("tcp: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw TransportError("tcp: bind 127.0.0.1:" + std::to_string(port) + " failed: " +
                         std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) != 0) throw TransportError("tcp: listen() failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw TransportError("tcp: getsockname() failed");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return ntohs(addr.sin_port);
}

void TcpTransport::accept_loop() {
  obs::set_current_thread_name("gtv-tcp-accept");
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // poll() is never auto-restarted, even under SA_RESTART; an EINTR from
    // the sampling signals just re-enters the bounded wait.
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;
    // EINTR/ECONNABORTED on accept are routine under signal load; every
    // error path re-polls rather than tearing the listener down.
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    try {
      const std::string peer = recv_hello(fd, options_.handshake_timeout_ms);
      send_hello(fd, self_);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      clock_sync_as_acceptor(fd, peer);
      add_conn(fd, peer);
      obs::bb::note_net_event(obs::bb::NetEvent::kAccept, peer.c_str());
    } catch (const TransportError&) {
      ::close(fd);  // bad handshake: reject the connection, keep listening
    }
  }
}

void TcpTransport::connect_peer(const std::string& peer, const std::string& host,
                                std::uint16_t port) {
  int backoff_ms = options_.connect_backoff_ms;
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    if (attempt > 0) {
      connect_retries_.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.connect_backoff_max_ms);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw TransportError("tcp: bad host " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const bool interrupted = errno == EINTR || errno == EINPROGRESS;
      if (!interrupted || !finish_connect(fd, options_.handshake_timeout_ms)) {
        ::close(fd);
        continue;
      }
    }
    try {
      send_hello(fd, self_);
      const std::string name = recv_hello(fd, options_.handshake_timeout_ms);
      if (name != peer) {
        ::close(fd);
        throw TransportError("tcp: expected peer '" + peer + "', got '" + name + "'");
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      clock_sync_as_dialer(fd, peer);
      add_conn(fd, peer);
      obs::bb::note_net_event(obs::bb::NetEvent::kConnect, peer.c_str());
      return;
    } catch (const VersionError&) {
      ::close(fd);
      throw;  // wrong protocol version is not retryable
    } catch (const TransportError&) {
      ::close(fd);
      // handshake raced a dying peer: retry within the attempt budget
    }
  }
  throw TransportError("tcp: connect to " + peer + " at " + host + ":" +
                       std::to_string(port) + " failed after " +
                       std::to_string(options_.connect_attempts) + " attempts");
}

void TcpTransport::clock_sync_as_dialer(int fd, const std::string& peer) {
  if (options_.clock_sync_pings <= 0) return;
  std::vector<ClockSyncSample> samples;
  samples.reserve(static_cast<std::size_t>(options_.clock_sync_pings));
  for (int i = 0; i < options_.clock_sync_pings; ++i) {
    std::vector<std::uint8_t> payload;
    payload.push_back(kClockPing);
    append_u32_le(payload, static_cast<std::uint32_t>(i));
    const std::uint64_t t0 = obs::TraceSink::now_us();
    append_u64_le(payload, t0);
    send_clock_frame(fd, std::move(payload));
    const Frame pong = recv_clock_frame(fd, options_.handshake_timeout_ms);
    const std::uint64_t t3 = obs::TraceSink::now_us();
    if (pong.payload.size() != 1 + 4 + 8 * 3 || pong.payload[0] != kClockPong ||
        read_u32_le(pong.payload.data() + 1) != static_cast<std::uint32_t>(i) ||
        read_u64_le(pong.payload.data() + 5) != t0) {
      throw TransportError("tcp: malformed clock-sync pong from " + peer);
    }
    ClockSyncSample s;
    s.t0 = static_cast<double>(t0);
    s.t1 = static_cast<double>(read_u64_le(pong.payload.data() + 13));
    s.t2 = static_cast<double>(read_u64_le(pong.payload.data() + 21));
    s.t3 = static_cast<double>(t3);
    samples.push_back(s);
  }
  const ClockSync sync = estimate_clock_offset(samples);
  // Report the estimate so the acceptor learns the offset too (negated on
  // its side: the report is dialer-relative).
  std::vector<std::uint8_t> report;
  report.push_back(kClockReport);
  report.push_back(sync.valid ? 1 : 0);
  append_u64_le(report, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(sync.valid ? sync.offset_us : 0)));
  append_u64_le(report, static_cast<std::uint64_t>(sync.valid ? sync.rtt_us : 0));
  send_clock_frame(fd, std::move(report));
  store_clock_sync(peer, sync);
}

void TcpTransport::clock_sync_as_acceptor(int fd, const std::string& peer) {
  if (options_.clock_sync_pings <= 0) return;
  // The dialer decides how many pings it sends; answer until its report
  // arrives. Bound the loop defensively against a misbehaving dialer.
  for (int i = 0; i < 1024; ++i) {
    const Frame frame = recv_clock_frame(fd, options_.handshake_timeout_ms);
    const std::uint64_t t1 = obs::TraceSink::now_us();
    if (frame.payload[0] == kClockPing) {
      if (frame.payload.size() != 1 + 4 + 8) {
        throw TransportError("tcp: malformed clock-sync ping from " + peer);
      }
      std::vector<std::uint8_t> pong;
      pong.push_back(kClockPong);
      append_u32_le(pong, read_u32_le(frame.payload.data() + 1));
      append_u64_le(pong, read_u64_le(frame.payload.data() + 5));  // echo t0
      append_u64_le(pong, t1);
      append_u64_le(pong, obs::TraceSink::now_us());  // t2: just before send
      send_clock_frame(fd, std::move(pong));
      continue;
    }
    if (frame.payload[0] == kClockReport) {
      if (frame.payload.size() != 2 + 8 * 2) {
        throw TransportError("tcp: malformed clock-sync report from " + peer);
      }
      const auto offset =
          static_cast<std::int64_t>(read_u64_le(frame.payload.data() + 2));
      const std::uint64_t rtt = read_u64_le(frame.payload.data() + 10);
      ClockSync sync;
      sync.valid = frame.payload[1] != 0;
      sync.offset_us = -static_cast<double>(offset);  // flip to peer - self
      sync.rtt_us = static_cast<double>(rtt);
      store_clock_sync(peer, sync);
      return;
    }
    throw TransportError("tcp: unexpected clock-sync frame kind from " + peer);
  }
  throw TransportError("tcp: clock-sync report from " + peer + " never arrived");
}

void TcpTransport::store_clock_sync(const std::string& peer, const ClockSync& sync) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  clock_[peer] = sync;
}

ClockSync TcpTransport::clock_sync(const std::string& peer) const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  auto it = clock_.find(peer);
  return it == clock_.end() ? ClockSync{} : it->second;
}

std::uint64_t TcpTransport::conn_generation(const std::string& peer) const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  auto it = conn_generation_.find(peer);
  return it == conn_generation_.end() ? 0 : it->second;
}

void TcpTransport::add_conn(int fd, const std::string& peer) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->peer = peer;
  Conn* raw = conn.get();
  std::unique_ptr<Conn> replaced;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(peer);
    if (it != conns_.end()) {
      if (!it->second->closed.load()) {
        ::close(fd);
        return;  // duplicate dial while the first is healthy; keep the first
      }
      // The old connection died (reader saw EOF / a write failed): this is
      // the peer reconnecting. Swap the fresh socket in.
      replaced = std::move(it->second);
      conns_.erase(it);
    }
    conns_[peer] = std::move(conn);
    ++conn_generation_[peer];
  }
  if (replaced) {
    ::shutdown(replaced->fd, SHUT_RDWR);
    if (replaced->reader.joinable()) replaced->reader.join();
    ::close(replaced->fd);
  }
  raw->reader = std::thread([this, raw] { reader_loop(raw); });
  conns_cv_.notify_all();
}

void TcpTransport::reader_loop(Conn* conn) {
  obs::set_current_thread_name(("gtv-rd-" + conn->peer).c_str());
  while (!stopping_.load() && !conn->closed.load()) {
    std::vector<std::uint8_t> bytes;
    try {
      bytes = read_frame(conn->fd, /*timeout_ms=*/0);  // block until EOF
    } catch (const TransportError&) {
      break;  // stream desync (bad magic/version): drop the connection
    }
    if (bytes.empty()) break;  // EOF
    std::string link;
    try {
      const FrameHeader header = decode_frame_header(bytes.data(), bytes.size());
      link.assign(reinterpret_cast<const char*>(bytes.data()) + kFrameHeaderBytes,
                  header.link_len);
    } catch (const TransportError&) {
      break;
    }
    push_frame(link, std::move(bytes));
  }
  if (!conn->closed.exchange(true) && !stopping_.load()) {
    obs::bb::note_net_event(obs::bb::NetEvent::kDisconnect, conn->peer.c_str());
  }
  queues_cv_.notify_all();  // wake waiters so they can fail fast
}

void TcpTransport::push_frame(const std::string& link, std::vector<std::uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(queues_mu_);
    queues_[link].push_back(std::move(frame));
  }
  queues_cv_.notify_all();
}

std::string TcpTransport::link_destination(const std::string& link) {
  const std::size_t arrow = link.find("->");
  if (arrow == std::string::npos) {
    throw TransportError("tcp: link '" + link + "' has no '->' destination");
  }
  return link.substr(arrow + 2);
}

std::string TcpTransport::link_source(const std::string& link) {
  const std::size_t arrow = link.find("->");
  return arrow == std::string::npos ? std::string() : link.substr(0, arrow);
}

void TcpTransport::deliver_frame(const std::string& link,
                                 std::vector<std::uint8_t> frame) {
  const std::string dest = link_destination(link);
  if (dest == self_) {
    throw TransportError("tcp: refusing to send '" + link + "' to self");
  }
  Conn* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(dest);
    if (it != conns_.end()) conn = it->second.get();
  }
  if (conn == nullptr) {
    throw TransportError("tcp: no connection to '" + dest + "' for link " + link);
  }
  std::lock_guard<std::mutex> wlock(conn->write_mu);
  if (conn->closed.load() || !write_full(conn->fd, frame.data(), frame.size())) {
    if (!conn->closed.exchange(true)) {
      obs::bb::note_net_event(obs::bb::NetEvent::kDisconnect, conn->peer.c_str());
    }
    throw TransportError("tcp: write on " + link + " failed (peer gone?)");
  }
}

std::vector<std::uint8_t> TcpTransport::fetch_frame(const std::string& link,
                                                    int timeout_ms) {
  const std::string src = link_source(link);
  auto source_gone = [&] {
    if (src.empty()) return false;
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(src);
    return it != conns_.end() && it->second->closed.load();
  };
  std::unique_lock<std::mutex> lock(queues_mu_);
  auto ready = [&] {
    auto it = queues_.find(link);
    return it != queues_.end() && !it->second.empty();
  };
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
  // A closed source conn usually means the peer died, and waiters must fail
  // fast instead of burning the full retry budget. But a reconnecting peer
  // (telemetry collector, crash rejoin) lands its replacement conn a few
  // milliseconds after the EOF — so only fail once the source has stayed
  // dead through a short grace window.
  constexpr auto kDeadSourceGrace = std::chrono::milliseconds(250);
  std::chrono::steady_clock::time_point dead_since{};
  bool seen_dead = false;
  while (!ready()) {
    if (source_gone()) {
      const auto now = std::chrono::steady_clock::now();
      if (!seen_dead) {
        seen_dead = true;
        dead_since = now;
      } else if (now - dead_since >= kDeadSourceGrace) {
        throw TransportError("tcp: peer '" + src + "' disconnected while waiting on " +
                             link);
      }
    } else {
      seen_dead = false;
    }
    if (timeout_ms <= 0) throw TimeoutError("tcp: no frame on " + link);
    // Wake periodically to re-check peer liveness.
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) throw TimeoutError("tcp: no frame on " + link);
    const auto slice = std::min(std::chrono::duration_cast<std::chrono::milliseconds>(
                                    deadline - now),
                                std::chrono::milliseconds(200));
    queues_cv_.wait_for(lock, slice);
  }
  auto& queue = queues_[link];
  std::vector<std::uint8_t> frame = std::move(queue.front());
  queue.pop_front();
  return frame;
}

bool TcpTransport::wait_for_peer(const std::string& peer, int timeout_ms) {
  std::unique_lock<std::mutex> lock(conns_mu_);
  return conns_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [&] { return conns_.count(peer) > 0; });
}

bool TcpTransport::wait_for_live_peer(const std::string& peer, int timeout_ms) {
  std::unique_lock<std::mutex> lock(conns_mu_);
  return conns_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    auto it = conns_.find(peer);
    return it != conns_.end() && !it->second->closed.load();
  });
}

void TcpTransport::discard_queued(const std::string& link) {
  std::lock_guard<std::mutex> lock(queues_mu_);
  queues_.erase(link);
}

std::vector<std::string> TcpTransport::peers() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::vector<std::string> out;
  for (const auto& [peer, conn] : conns_) out.push_back(peer);
  return out;
}

}  // namespace gtv::net
