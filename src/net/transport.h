// gtv::net — pluggable party transport beneath the TrafficMeter.
//
// Every cross-party payload in GTV travels as a *frame*: a versioned,
// checksummed envelope addressed to a named link ("client0->server").
// A Transport moves frames between the two ends of a link; the TrafficMeter
// sits on top, charging traffic and retrying lost or corrupted deliveries.
//
// Frame layout (all integers little-endian, header = 24 bytes):
//
//   offset  size  field
//        0     4  magic        0x47545646 ("GTVF")
//        4     2  version      kProtocolVersion; mismatch -> VersionError
//        6     2  link_len     length of the link-name bytes
//        8     4  payload_len  length of the payload bytes
//       12     8  seq          per-link logical message number
//       20     4  crc32        CRC-32 (IEEE) over link bytes + payload bytes
//       24     .  link bytes, then payload bytes
//
// Sequencing gives the reliability layer exactly-once per-link delivery on
// top of an at-least-once sender: a fresh send() increments the link's seq,
// a retransmit (send with retransmit=true) reuses it, and recv() silently
// drops frames whose seq is below the next expected one (duplicates and
// late retransmits), so retries can never deliver a phantom message.
//
// Three implementations:
//   - InProcTransport: loopback queues; the default under TrafficMeter and
//     byte-identical to the pre-transport simulated boundary.
//   - TcpTransport (net/tcp.h): real POSIX sockets between OS processes.
//   - ChaosTransport (net/chaos.h): a decorator injecting seeded latency,
//     drops, duplicates and payload corruption at the frame layer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace gtv::net {

// --- typed errors ----------------------------------------------------------------
// Base class for every transport/wire failure.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Malformed bytes: truncated buffer, impossible sizes, bad magic, trailing
// garbage. Raised by the wire serializers and the frame decoder.
class WireError : public TransportError {
 public:
  using TransportError::TransportError;
};

// Frame checksum mismatch — the payload was altered in flight. Raised by
// decode_frame; the TrafficMeter counts it per link and retries.
class CorruptFrameError : public WireError {
 public:
  using WireError::WireError;
};

// recv()/fetch deadline expired with no frame available.
class TimeoutError : public TransportError {
 public:
  using TransportError::TransportError;
};

// Peer speaks a different protocol version (handshake or frame header).
class VersionError : public TransportError {
 public:
  using TransportError::TransportError;
};

// --- frame codec -----------------------------------------------------------------
inline constexpr std::uint32_t kFrameMagic = 0x47545646u;  // "GTVF"
// v2: HELLO handshake is followed by an NTP-style @clock exchange
// (net/tcp.cpp); v1 peers would misparse it, so the bump fails them fast.
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::size_t kFrameHeaderBytes = 24;
// Sanity caps enforced by the decoder; far above anything GTV sends.
inline constexpr std::size_t kMaxLinkNameBytes = 256;
inline constexpr std::size_t kMaxFramePayloadBytes = std::size_t{1} << 31;

struct Frame {
  std::string link;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);

std::vector<std::uint8_t> encode_frame(const Frame& frame);
// Parses and validates one complete frame. Throws WireError on malformed
// input, VersionError on a version mismatch, CorruptFrameError on a CRC
// mismatch.
Frame decode_frame(const std::uint8_t* data, std::size_t len);
inline Frame decode_frame(const std::vector<std::uint8_t>& bytes) {
  return decode_frame(bytes.data(), bytes.size());
}

// Parsed header fields only (no CRC check); used by stream readers to split
// frames off a byte stream before the full body has arrived.
struct FrameHeader {
  std::uint16_t link_len = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t seq = 0;
  std::size_t total_bytes() const {
    return kFrameHeaderBytes + link_len + payload_len;
  }
};
FrameHeader decode_frame_header(const std::uint8_t* data, std::size_t len);

// --- Transport -------------------------------------------------------------------
// Payload-level API (send/recv) is implemented here once: framing, per-link
// sequence numbers and duplicate suppression. Implementations supply raw
// frame delivery (deliver_frame/fetch_frame); decorators such as
// ChaosTransport intercept at that raw layer so their tampering is visible
// to the checksum.
class Transport {
 public:
  virtual ~Transport() = default;

  // Frames `payload` onto `link` and delivers it. A fresh send advances the
  // link's sequence number; retransmit=true reuses the previous one so the
  // receiver can collapse duplicates of the same logical message.
  void send(const std::string& link, const std::vector<std::uint8_t>& payload,
            bool retransmit = false);

  // Returns the next logical payload on `link`, waiting up to `timeout_ms`
  // (0 = only what is already queued). Silently discards stale duplicates.
  // Throws TimeoutError when nothing arrives, CorruptFrameError when a
  // frame fails its checksum (the frame is consumed), WireError on
  // malformed or misrouted frames.
  std::vector<std::uint8_t> recv(const std::string& link, int timeout_ms);

  // Implementation name for logs/metrics ("inproc", "tcp", "chaos+...").
  virtual std::string kind() const = 0;

  // Raw frame layer (public so decorators can forward to the inner
  // transport without re-framing).
  virtual void deliver_frame(const std::string& link,
                             std::vector<std::uint8_t> frame) = 0;
  virtual std::vector<std::uint8_t> fetch_frame(const std::string& link,
                                                int timeout_ms) = 0;

  // Frames dropped by recv() as duplicates/late retransmits.
  std::uint64_t stale_frames_dropped() const;

  // --- crash recovery -------------------------------------------------------
  // Forgets the sequence bookkeeping of one link. A party that died and
  // rejoined restarts its links at seq 0; without the reset the surviving
  // end would drop every frame from the fresh process as stale.
  void reset_link(const std::string& link);

  // Drops any frames already queued on `link` (half-delivered state from a
  // round the recovery protocol is about to replay). Default: no queue to
  // clear.
  virtual void discard_queued(const std::string& link) { (void)link; }

  // Waits until `peer` has a *live* connection, up to timeout_ms. Distinct
  // from any handshake-time wait: a peer that connected and then died must
  // count as absent. Transports without peer liveness (inproc: parties are
  // threads, links never die) return true immediately.
  virtual bool wait_for_live_peer(const std::string& peer, int timeout_ms) {
    (void)peer;
    (void)timeout_ms;
    return true;
  }

 private:
  mutable std::mutex seq_mu_;
  std::map<std::string, std::uint64_t> send_seq_;       // next seq per link
  std::map<std::string, std::uint64_t> recv_expected_;  // next accepted seq
  std::uint64_t stale_dropped_ = 0;
};

// Loopback transport: frames queue in-process per link. The default under
// TrafficMeter; transfer() pushes and immediately pops, reproducing the
// original simulated boundary byte-for-byte. Thread-safe, so it also backs
// multi-threaded tests.
class InProcTransport : public Transport {
 public:
  std::string kind() const override { return "inproc"; }
  void deliver_frame(const std::string& link,
                     std::vector<std::uint8_t> frame) override;
  std::vector<std::uint8_t> fetch_frame(const std::string& link,
                                        int timeout_ms) override;
  void discard_queued(const std::string& link) override;

  // Frames currently queued on `link` (tests).
  std::size_t queued(const std::string& link) const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::deque<std::vector<std::uint8_t>>> queues_;
};

}  // namespace gtv::net
