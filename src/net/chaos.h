// gtv::net — chaos fault injection at the frame layer.
//
// ChaosTransport decorates another Transport and tampers with frames on
// their way into deliver_frame: seeded deterministic latency, message
// drops, duplicate deliveries and payload corruption. Because it acts on
// the *encoded* frame, corruption lands inside the CRC-covered region and
// is guaranteed to surface as CorruptFrameError at the receiver — never as
// silently wrong floats. Drops and corruptions are recovered by the
// TrafficMeter's bounded retransmit loop; duplicates are collapsed by the
// frame sequence numbers.
//
// All randomness flows from one seeded Rng drawn in a fixed order per
// send, so a given (seed, traffic sequence) pair produces an identical
// fault schedule every run — schedule_digest() hashes the event stream so
// tests can pin that determinism.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"
#include "tensor/rng.h"

namespace gtv::net {

struct ChaosOptions {
  double drop_prob = 0.0;     // frame vanishes entirely
  double dup_prob = 0.0;      // frame delivered twice
  double corrupt_prob = 0.0;  // one payload byte flipped (CRC-detected)
  // Uniform per-delivery latency in [min, max] microseconds; 0/0 disables.
  int latency_min_us = 0;
  int latency_max_us = 0;
  std::uint64_t seed = 1;
};

class ChaosTransport : public Transport {
 public:
  ChaosTransport(std::shared_ptr<Transport> inner, ChaosOptions options);

  std::string kind() const override { return "chaos+" + inner_->kind(); }
  void deliver_frame(const std::string& link,
                     std::vector<std::uint8_t> frame) override;
  std::vector<std::uint8_t> fetch_frame(const std::string& link,
                                        int timeout_ms) override;
  // Crash-recovery plumbing passes straight through to the real transport
  // (queues and peer liveness live there, not in the decorator).
  void discard_queued(const std::string& link) override {
    inner_->discard_queued(link);
  }
  bool wait_for_live_peer(const std::string& peer, int timeout_ms) override {
    return inner_->wait_for_live_peer(peer, timeout_ms);
  }

  struct Stats {
    std::uint64_t sends = 0;        // deliver_frame calls observed
    std::uint64_t drops = 0;        // frames never delivered
    std::uint64_t dups = 0;         // extra copies delivered
    std::uint64_t corruptions = 0;  // frames delivered with a flipped byte
    std::uint64_t delays = 0;       // deliveries that slept
    std::uint64_t delay_us_total = 0;
  };
  Stats stats() const;

  // FNV-1a hash over the ordered (link, action, value) event stream: equal
  // seeds and traffic produce equal digests.
  std::uint64_t schedule_digest() const;

  Transport& inner() { return *inner_; }

 private:
  void note(const std::string& link, char action, std::uint64_t value);

  std::shared_ptr<Transport> inner_;
  ChaosOptions options_;
  mutable std::mutex mu_;
  Rng rng_;
  Stats stats_;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace gtv::net
