#include "net/chaos.h"

#include <chrono>
#include <thread>
#include <utility>

namespace gtv::net {

ChaosTransport::ChaosTransport(std::shared_ptr<Transport> inner, ChaosOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {
  if (!inner_) throw TransportError("chaos: null inner transport");
}

void ChaosTransport::note(const std::string& link, char action, std::uint64_t value) {
  auto mix = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (v >> (8 * i)) & 0xffu;
      digest_ *= 0x100000001b3ULL;  // FNV prime
    }
  };
  for (char c : link) {
    digest_ ^= static_cast<std::uint8_t>(c);
    digest_ *= 0x100000001b3ULL;
  }
  digest_ ^= static_cast<std::uint8_t>(action);
  digest_ *= 0x100000001b3ULL;
  mix(value);
}

void ChaosTransport::deliver_frame(const std::string& link,
                                   std::vector<std::uint8_t> frame) {
  int delay_us = 0;
  bool drop = false, dup = false, corrupt = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sends;
    // Fixed draw order per send keeps the schedule a pure function of the
    // seed and the traffic sequence.
    const double u_drop = rng_.uniform();
    const double u_dup = rng_.uniform();
    const double u_corrupt = rng_.uniform();
    if (options_.latency_max_us > options_.latency_min_us) {
      delay_us = options_.latency_min_us +
                 static_cast<int>(rng_.uniform_index(static_cast<std::size_t>(
                     options_.latency_max_us - options_.latency_min_us + 1)));
    } else {
      delay_us = options_.latency_max_us;
    }
    drop = u_drop < options_.drop_prob;
    dup = !drop && u_dup < options_.dup_prob;
    corrupt = !drop && u_corrupt < options_.corrupt_prob;
    std::size_t corrupt_at = 0;
    if (corrupt && frame.size() > kFrameHeaderBytes) {
      corrupt_at = kFrameHeaderBytes + rng_.uniform_index(frame.size() - kFrameHeaderBytes);
      // XOR with a fixed nonzero mask: guaranteed to change the byte, so
      // the CRC over link+payload must mismatch.
      frame[corrupt_at] ^= 0xa5;
      ++stats_.corruptions;
    } else {
      corrupt = false;
    }
    if (delay_us > 0) {
      ++stats_.delays;
      stats_.delay_us_total += static_cast<std::uint64_t>(delay_us);
      note(link, 'l', static_cast<std::uint64_t>(delay_us));
    }
    if (drop) {
      ++stats_.drops;
      note(link, 'x', 0);
    }
    if (dup) ++stats_.dups;
    if (corrupt) note(link, 'c', static_cast<std::uint64_t>(corrupt_at));
    if (dup) note(link, '2', 0);
    if (!drop && !dup && !corrupt) note(link, '.', 0);
  }
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  if (drop) return;
  if (dup) {
    // Both copies carry the same bytes (and seq), corrupted or not, so the
    // receiver's duplicate suppression collapses them cleanly.
    std::vector<std::uint8_t> copy = frame;
    inner_->deliver_frame(link, std::move(copy));
  }
  inner_->deliver_frame(link, std::move(frame));
}

std::vector<std::uint8_t> ChaosTransport::fetch_frame(const std::string& link,
                                                      int timeout_ms) {
  return inner_->fetch_frame(link, timeout_ms);
}

ChaosTransport::Stats ChaosTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t ChaosTransport::schedule_digest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return digest_;
}

}  // namespace gtv::net
