// gtv::net — real TCP transport between GTV parties (POSIX sockets).
//
// One TcpTransport per party process. A party either listens (server,
// driver) or connects (clients connect to both), and each accepted /
// established connection is identified by the peer's party name via a
// HELLO handshake frame that also carries the protocol version — a
// mismatch fails the handshake with VersionError before any payload moves.
// The handshake then runs an NTP-style clock-sync exchange (@clock frames,
// four timestamps per ping, min-RTT sample wins) so either side can map
// the peer's trace clock onto its own; see clock_sync().
//
// Frames are length-prefixed by their own header (net/transport.h), so a
// per-connection reader thread splits the byte stream, demultiplexes by
// the link name in each header, and parks raw frames in per-link queues;
// fetch_frame() waits on those queues. Sends route by the link's
// destination party ("a->b" goes out on the connection to "b") under a
// per-connection write lock.
//
// connect_peer() retries with bounded exponential backoff (rendezvous:
// party processes start in arbitrary order), and recv timeouts are
// enforced by the queue wait — the TrafficMeter layers its own
// backoff/retry policy on top.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace gtv::net {

struct TcpOptions {
  int connect_attempts = 120;       // bounded retry while the peer boots
  int connect_backoff_ms = 25;      // initial backoff, doubled per attempt…
  int connect_backoff_max_ms = 400;  // …up to this cap
  int handshake_timeout_ms = 10000;
  int clock_sync_pings = 8;  // NTP-style pings after HELLO; 0 disables
};

// One four-timestamp clock-sync exchange (all values in trace-clock µs):
// t0 = dialer send, t1 = acceptor receive, t2 = acceptor send, t3 = dialer
// receive. Offset/RTT follow the classic NTP estimator.
struct ClockSyncSample {
  double t0 = 0;
  double t1 = 0;
  double t2 = 0;
  double t3 = 0;
};

// Estimated relationship between a peer's trace clock and ours:
// peer_now ≈ self_now + offset_us, with |error| bounded by rtt_us / 2.
struct ClockSync {
  bool valid = false;
  double offset_us = 0;  // peer_clock - self_clock at the min-RTT sample
  double rtt_us = 0;     // round-trip time of the winning sample
};

// Picks the min-RTT sample (least queueing noise) and returns its offset.
// Samples with negative RTT (clock stepped mid-exchange) are discarded;
// an empty or all-bad set yields valid == false.
ClockSync estimate_clock_offset(const std::vector<ClockSyncSample>& samples);

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(std::string self_name, TcpOptions options = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting peers.
  // Returns the bound port.
  std::uint16_t listen(std::uint16_t port);

  // Connects to a listening peer and completes the HELLO handshake,
  // retrying with exponential backoff until the attempt budget runs out.
  void connect_peer(const std::string& peer, const std::string& host,
                    std::uint16_t port);

  // Rendezvous: waits until a connection to `peer` exists (accepted or
  // dialed). Returns false on timeout.
  bool wait_for_peer(const std::string& peer, int timeout_ms);

  // Crash recovery: waits until a connection to `peer` exists AND has not
  // been marked closed. wait_for_peer counts a dead connection as present
  // (good enough for the boot rendezvous, wrong for readmitting a crashed
  // party); this variant only accepts a live one, so it completes exactly
  // when the restarted process has re-dialed us.
  bool wait_for_live_peer(const std::string& peer, int timeout_ms) override;

  // Crash recovery: drops raw frames parked on `link` (half-delivered state
  // from the round being replayed).
  void discard_queued(const std::string& link) override;

  std::vector<std::string> peers() const;
  std::uint64_t connect_retries() const { return connect_retries_.load(); }
  const std::string& self() const { return self_; }

  // Clock offset measured against `peer` during the HELLO handshake
  // (dialer measures, acceptor receives the dialer's report negated so
  // both sides agree on peer_clock - self_clock). valid == false when the
  // peer is unknown or clock sync was disabled.
  ClockSync clock_sync(const std::string& peer) const;

  // How many connections `peer` has established with us (1 = original,
  // each reconnect after a drop increments). 0 if never connected.
  std::uint64_t conn_generation(const std::string& peer) const;

  std::string kind() const override { return "tcp"; }
  void deliver_frame(const std::string& link,
                     std::vector<std::uint8_t> frame) override;
  std::vector<std::uint8_t> fetch_frame(const std::string& link,
                                        int timeout_ms) override;

 private:
  struct Conn {
    int fd = -1;
    std::string peer;
    std::thread reader;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
  };

  void accept_loop();
  void reader_loop(Conn* conn);
  void add_conn(int fd, const std::string& peer);
  // Runs on the raw fd between HELLO and reader start; stores the result
  // under `peer`. The dialer drives the exchange, the acceptor echoes.
  void clock_sync_as_dialer(int fd, const std::string& peer);
  void clock_sync_as_acceptor(int fd, const std::string& peer);
  void store_clock_sync(const std::string& peer, const ClockSync& sync);
  void push_frame(const std::string& link, std::vector<std::uint8_t> frame);
  // Party name after "->" in `link`; the connection a send routes to.
  static std::string link_destination(const std::string& link);
  static std::string link_source(const std::string& link);

  std::string self_;
  TcpOptions options_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connect_retries_{0};

  int listen_fd_ = -1;
  std::thread accept_thread_;

  mutable std::mutex conns_mu_;
  std::condition_variable conns_cv_;
  std::map<std::string, std::unique_ptr<Conn>> conns_;  // by peer name
  std::map<std::string, ClockSync> clock_;              // by peer name
  std::map<std::string, std::uint64_t> conn_generation_;

  mutable std::mutex queues_mu_;
  std::condition_variable queues_cv_;
  std::map<std::string, std::deque<std::vector<std::uint8_t>>> queues_;
};

}  // namespace gtv::net
