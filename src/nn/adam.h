// Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
// Defaults follow CT-GAN's training configuration: lr 2e-4, betas (0.5, 0.9),
// eps 1e-8, weight decay 1e-6.
//
// Health hook: when gtv::obs::health_enabled() (GTV_HEALTH=1), step()
// additionally accumulates per-step statistics over all parameters —
// gradient / weight / update L2 norms, max-abs gradient, and a NaN/Inf
// sentinel count — into last_step_stats(). Disarmed cost is one relaxed
// atomic load per step() call; the stat-collecting loop is a separate code
// path, so the plain update loop is untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/autograd.h"

namespace gtv::nn {

struct AdamOptions {
  float lr = 2e-4f;
  float beta1 = 0.5f;
  float beta2 = 0.9f;
  float eps = 1e-8f;
  float weight_decay = 1e-6f;
};

// Per-step health statistics (see file comment). `collected` is false when
// the last step ran disarmed — consumers must check it before reading.
struct AdamStepStats {
  bool collected = false;
  double grad_norm = 0.0;     // L2 over all parameter gradients (finite ones)
  double weight_norm = 0.0;   // L2 over all parameter values after the step
  double update_norm = 0.0;   // L2 over the applied deltas
  double grad_max_abs = 0.0;
  std::uint64_t nonfinite = 0;  // NaN/Inf gradient elements encountered
};

// Complete optimizer state for train-resume checkpoints: the bias-
// correction step counter plus first/second moment estimates, one pair
// per parameter in constructor slot order.
struct AdamState {
  std::uint64_t step_count = 0;
  std::vector<Tensor> m;
  std::vector<Tensor> v;
};

class Adam {
 public:
  explicit Adam(std::vector<ag::Var> params, AdamOptions options = {});

  // Applies one update using each parameter's accumulated .grad().
  void step();
  void zero_grad();

  // Snapshot / restore of the moment buffers and step counter. restore
  // validates counts and every shape against the held parameters before
  // writing anything back, so a mismatching snapshot throws
  // std::runtime_error and leaves the optimizer untouched.
  AdamState state() const;
  void set_state(const AdamState& state);

  const AdamOptions& options() const { return options_; }
  std::size_t parameter_count() const;
  // Statistics of the most recent step(); collected only under GTV_HEALTH.
  const AdamStepStats& last_step_stats() const { return stats_; }

 private:
  template <bool Collect>
  void step_impl();

  std::vector<ag::Var> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  AdamOptions options_;
  AdamStepStats stats_;
  long step_count_ = 0;
};

}  // namespace gtv::nn
