// Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
// Defaults follow CT-GAN's training configuration: lr 2e-4, betas (0.5, 0.9),
// eps 1e-8, weight decay 1e-6.
#pragma once

#include <vector>

#include "autograd/autograd.h"

namespace gtv::nn {

struct AdamOptions {
  float lr = 2e-4f;
  float beta1 = 0.5f;
  float beta2 = 0.9f;
  float eps = 1e-8f;
  float weight_decay = 1e-6f;
};

class Adam {
 public:
  explicit Adam(std::vector<ag::Var> params, AdamOptions options = {});

  // Applies one update using each parameter's accumulated .grad().
  void step();
  void zero_grad();

  const AdamOptions& options() const { return options_; }
  std::size_t parameter_count() const;

 private:
  std::vector<ag::Var> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  AdamOptions options_;
  long step_count_ = 0;
};

}  // namespace gtv::nn
