// Neural-network building blocks over the autograd engine.
//
// The layer set mirrors what CT-GAN's generator and discriminator need:
//   - Linear (+ Kaiming/Xavier init)
//   - BatchNorm1d (train/eval modes, running statistics)
//   - ReLU / LeakyReLU / Tanh activations
//   - Dropout (inverted, train-only)
//   - ResidualBlock: FC -> BN -> ReLU, concat-skip (CT-GAN style)
//   - FNBlock: FC -> LeakyReLU -> Dropout (CT-GAN discriminator block)
//   - Sequential container
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autograd/autograd.h"
#include "tensor/rng.h"

namespace gtv::nn {

using ag::Var;

class Module {
 public:
  virtual ~Module() = default;
  virtual Var forward(const Var& x) = 0;
  // All trainable leaf Vars.
  virtual std::vector<Var> parameters() { return {}; }
  // Non-trainable state tensors (e.g. batchnorm running statistics) that a
  // checkpoint must persist alongside parameters() for eval-mode forwards
  // to survive a save/load cycle. Declaration order, like parameters().
  virtual std::vector<Tensor*> buffers() { return {}; }
  // Toggles train/eval behaviour (dropout, batchnorm).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  std::size_t parameter_count();
  void zero_grad();

 protected:
  bool training_ = true;
};

class Linear : public Module {
 public:
  // Kaiming-uniform initialized weight (in x out) and zero bias (1 x out).
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  Var forward(const Var& x) override;
  std::vector<Var> parameters() override { return {weight_, bias_}; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Var weight_;
  Var bias_;
};

class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(std::size_t features, float eps = 1e-5f, float momentum = 0.1f);

  Var forward(const Var& x) override;
  std::vector<Var> parameters() override { return {gamma_, beta_}; }
  std::vector<Tensor*> buffers() override { return {&running_mean_, &running_var_}; }

 private:
  std::size_t features_;
  float eps_;
  float momentum_;
  Var gamma_;
  Var beta_;
  Tensor running_mean_;
  Tensor running_var_;
};

class ReLU : public Module {
 public:
  Var forward(const Var& x) override { return ag::relu(x); }
};

class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float slope = 0.2f) : slope_(slope) {}
  Var forward(const Var& x) override { return ag::leaky_relu(x, slope_); }

 private:
  float slope_;
};

class Tanh : public Module {
 public:
  Var forward(const Var& x) override { return ag::tanh(x); }
};

class Dropout : public Module {
 public:
  // Inverted dropout with keep-prob scaling; identity in eval mode.
  Dropout(float p, Rng& rng);
  Var forward(const Var& x) override;

 private:
  float p_;
  Rng* rng_;
};

class Sequential : public Module {
 public:
  Sequential() = default;

  // Builder-style: seq.add(std::make_unique<Linear>(...)).
  Sequential& add(std::unique_ptr<Module> m);
  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<M>(std::forward<Args>(args)...));
  }

  Var forward(const Var& x) override;
  std::vector<Var> parameters() override;
  std::vector<Tensor*> buffers() override;
  void set_training(bool training) override;

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

// CT-GAN generator residual block: out = concat(relu(bn(fc(x))), x).
// Output width is hidden + input width.
class ResidualBlock : public Module {
 public:
  ResidualBlock(std::size_t in_features, std::size_t hidden, Rng& rng);

  Var forward(const Var& x) override;
  std::vector<Var> parameters() override;
  std::vector<Tensor*> buffers() override { return bn_.buffers(); }
  void set_training(bool training) override;

  std::size_t out_features() const { return hidden_ + in_; }

 private:
  std::size_t in_;
  std::size_t hidden_;
  Linear fc_;
  BatchNorm1d bn_;
};

// CT-GAN discriminator block: out = dropout(leaky_relu(fc(x))).
class FNBlock : public Module {
 public:
  FNBlock(std::size_t in_features, std::size_t hidden, Rng& rng, float slope = 0.2f,
          float dropout_p = 0.5f);

  Var forward(const Var& x) override;
  std::vector<Var> parameters() override;
  void set_training(bool training) override;

  std::size_t out_features() const { return fc_.out_features(); }

 private:
  Linear fc_;
  LeakyReLU act_;
  Dropout drop_;
};

}  // namespace gtv::nn
