// Parameter checkpointing: saves/restores the full state of a Module
// (trainable parameters plus non-trainable buffers such as batchnorm
// running statistics) in declaration order.
//
// On-disk format (version 2) mirrors the wire-frame discipline used by
// gtv::net: explicit little-endian encoding, a magic + version header, a
// trailing CRC32 over the payload, and exact-size checks so truncated or
// padded files are rejected. load_parameters still accepts the legacy v1
// format ("GTVP": bare parameters, native endianness, no checksum).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"

namespace gtv::nn {

// Writes all parameters and buffers of `module` to `path` in the v2
// envelope. Throws std::runtime_error on I/O failure.
void save_parameters(Module& module, const std::string& path);

// Restores state saved by save_parameters. The module must have the same
// architecture: tensor counts and every shape must match, otherwise throws
// std::runtime_error without modifying the module. Reads v2 and legacy v1.
void load_parameters(Module& module, const std::string& path);

// Copies the module's full state (parameters then buffers, declaration
// order) as plain tensors — the canonical checkpoint ordering.
std::vector<Tensor> snapshot_state(Module& module);

// Restores a snapshot_state()-ordered tensor list. Counts and shapes are
// validated before anything is written back, so a mismatching snapshot
// throws std::runtime_error and leaves the module untouched.
void restore_state(Module& module, const std::vector<Tensor>& tensors);

// Low-level tensor-block codec shared with gtv::serve's checkpoint
// container: u64 count, then per tensor u64 rows / u64 cols / f32 payload,
// all little-endian.
void append_tensor_block(std::vector<std::uint8_t>& out, const std::vector<Tensor>& tensors);
// Parses a tensor block starting at `offset` (advanced past the block).
// Throws std::runtime_error on truncation or implausible shapes.
std::vector<Tensor> parse_tensor_block(const std::uint8_t* data, std::size_t size,
                                       std::size_t& offset);

// CRC32 (IEEE 802.3, same polynomial as the gtv::net frame checksum) used
// by the serialize/checkpoint envelopes.
std::uint32_t state_crc32(const std::uint8_t* data, std::size_t size);

}  // namespace gtv::nn
