// Parameter checkpointing: saves/restores every trainable tensor of a
// Module in declaration order. The format is a small binary container
// (magic, parameter count, then shape + float payload per parameter), so a
// trained generator can be persisted and reloaded for later synthesis.
#pragma once

#include <string>

#include "nn/module.h"

namespace gtv::nn {

// Writes all parameters of `module` to `path`. Throws on I/O failure.
void save_parameters(Module& module, const std::string& path);

// Restores parameters saved by save_parameters. The module must have the
// same architecture: parameter count and every shape must match, otherwise
// throws std::runtime_error without modifying the module.
void load_parameters(Module& module, const std::string& path);

}  // namespace gtv::nn
