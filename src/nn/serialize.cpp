#include "nn/serialize.h"

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace gtv::nn {

namespace {

constexpr std::uint32_t kLegacyMagic = 0x47545650;  // "GTVP" — v1, native-endian
constexpr std::uint32_t kMagic = 0x47545651;        // "GTVQ" — v2, little-endian
constexpr std::uint32_t kVersion = 2;
// Reject shapes whose element count cannot be a real model tensor; also
// guards the rows*cols multiplication against overflow.
constexpr std::uint64_t kMaxElements = 1ull << 32;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t offset;

  void need(std::size_t n, const char* what) const {
    if (offset > size || size - offset < n) {
      throw std::runtime_error(std::string("load_parameters: truncated file (") + what + ")");
    }
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = get_u32(data + offset);
    offset += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = get_u64(data + offset);
    offset += 8;
    return v;
  }
};

std::vector<std::uint8_t> slurp(const std::string& path, const char* who) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error(std::string(who) + ": cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error(std::string(who) + ": read failed for '" + path + "'");
  return bytes;
}

// Legacy v1 reader: native-endian, bare parameters, no checksum. Kept so
// checkpoints written before the envelope hardening still load.
void load_parameters_v1(Module& module, const std::vector<std::uint8_t>& bytes,
                        const std::string& path) {
  Cursor c{bytes.data(), bytes.size(), 4};  // past magic
  auto params = module.parameters();
  c.need(8, "count");
  std::uint64_t count;
  std::memcpy(&count, c.data + c.offset, 8);
  c.offset += 8;
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch (file " +
                             std::to_string(count) + ", module " +
                             std::to_string(params.size()) + ") in '" + path + "'");
  }
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (const auto& p : params) {
    c.need(16, "shape");
    std::uint64_t rows, cols;
    std::memcpy(&rows, c.data + c.offset, 8);
    std::memcpy(&cols, c.data + c.offset + 8, 8);
    c.offset += 16;
    if (rows != p.value().rows() || cols != p.value().cols()) {
      throw std::runtime_error("load_parameters: shape mismatch in '" + path + "'");
    }
    const std::size_t n = static_cast<std::size_t>(rows * cols);
    c.need(n * sizeof(float), "payload");
    FloatVec values(n);
    std::memcpy(values.data(), c.data + c.offset, n * sizeof(float));
    c.offset += n * sizeof(float);
    staged.emplace_back(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols),
                        std::move(values));
  }
  for (std::size_t i = 0; i < params.size(); ++i) params[i].set_value(std::move(staged[i]));
}

}  // namespace

std::uint32_t state_crc32(const std::uint8_t* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::vector<Tensor> snapshot_state(Module& module) {
  std::vector<Tensor> tensors;
  for (const auto& p : module.parameters()) tensors.push_back(p.value());
  for (const Tensor* b : module.buffers()) tensors.push_back(*b);
  return tensors;
}

void restore_state(Module& module, const std::vector<Tensor>& tensors) {
  auto params = module.parameters();
  auto bufs = module.buffers();
  if (tensors.size() != params.size() + bufs.size()) {
    throw std::runtime_error("restore_state: tensor count mismatch (snapshot " +
                             std::to_string(tensors.size()) + ", module " +
                             std::to_string(params.size() + bufs.size()) + ")");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& t = tensors[i];
    if (t.rows() != params[i].value().rows() || t.cols() != params[i].value().cols()) {
      throw std::runtime_error("restore_state: parameter shape mismatch at index " +
                               std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    const Tensor& t = tensors[params.size() + i];
    if (t.rows() != bufs[i]->rows() || t.cols() != bufs[i]->cols()) {
      throw std::runtime_error("restore_state: buffer shape mismatch at index " +
                               std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i) params[i].set_value(tensors[i]);
  for (std::size_t i = 0; i < bufs.size(); ++i) *bufs[i] = tensors[params.size() + i];
}

void append_tensor_block(std::vector<std::uint8_t>& out, const std::vector<Tensor>& tensors) {
  put_u64(out, tensors.size());
  for (const Tensor& t : tensors) {
    put_u64(out, t.rows());
    put_u64(out, t.cols());
    for (std::size_t i = 0; i < t.size(); ++i) put_f32(out, t.data()[i]);
  }
}

std::vector<Tensor> parse_tensor_block(const std::uint8_t* data, std::size_t size,
                                       std::size_t& offset) {
  Cursor c{data, size, offset};
  const std::uint64_t count = c.u64("tensor count");
  if (count > kMaxElements) throw std::runtime_error("load_parameters: implausible tensor count");
  std::vector<Tensor> tensors;
  tensors.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t rows = c.u64("rows");
    const std::uint64_t cols = c.u64("cols");
    if (rows > kMaxElements || cols > kMaxElements || rows * cols > kMaxElements) {
      throw std::runtime_error("load_parameters: implausible tensor shape");
    }
    const std::size_t n = static_cast<std::size_t>(rows * cols);
    c.need(n * 4, "tensor payload");
    FloatVec values(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint32_t bits = get_u32(c.data + c.offset + 4 * k);
      float v;
      std::memcpy(&v, &bits, sizeof(v));
      values[k] = v;
    }
    c.offset += n * 4;
    tensors.emplace_back(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols),
                         std::move(values));
  }
  offset = c.offset;
  return tensors;
}

void save_parameters(Module& module, const std::string& path) {
  const auto params = module.parameters();
  const auto bufs = module.buffers();
  // Payload covers everything after the magic; the trailing CRC32 covers
  // exactly the payload bytes, mirroring the gtv::net frame discipline.
  std::vector<std::uint8_t> payload;
  put_u32(payload, kVersion);
  put_u64(payload, params.size());
  put_u64(payload, bufs.size());
  append_tensor_block(payload, snapshot_state(module));
  std::vector<std::uint8_t> bytes;
  bytes.reserve(payload.size() + 8);
  put_u32(bytes, kMagic);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  put_u32(bytes, state_crc32(payload.data(), payload.size()));

  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_parameters: cannot open '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_parameters: write failed for '" + path + "'");
}

void load_parameters(Module& module, const std::string& path) {
  const auto bytes = slurp(path, "load_parameters");
  if (bytes.size() < 4) throw std::runtime_error("load_parameters: truncated file '" + path + "'");
  // Legacy files wrote the magic in native byte order; this repo only ever
  // ran on little-endian hosts, so both magics decode as little-endian.
  const std::uint32_t magic = get_u32(bytes.data());
  if (magic == kLegacyMagic) {
    load_parameters_v1(module, bytes, path);
    return;
  }
  if (magic != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in '" + path + "'");
  }
  if (bytes.size() < 4 + 4) throw std::runtime_error("load_parameters: truncated header");
  // Verify the trailing CRC before parsing anything else.
  if (bytes.size() < 4 + 4 + 16 + 8 + 4) {
    throw std::runtime_error("load_parameters: truncated file '" + path + "'");
  }
  const std::size_t payload_size = bytes.size() - 4 - 4;
  const std::uint32_t stored_crc = get_u32(bytes.data() + 4 + payload_size);
  const std::uint32_t actual_crc = state_crc32(bytes.data() + 4, payload_size);
  if (stored_crc != actual_crc) {
    throw std::runtime_error("load_parameters: CRC mismatch in '" + path + "'");
  }

  Cursor c{bytes.data(), 4 + payload_size, 4};
  const std::uint32_t version = c.u32("version");
  if (version != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version " + std::to_string(version) +
                             " in '" + path + "'");
  }
  const std::uint64_t n_params = c.u64("param count");
  const std::uint64_t n_buffers = c.u64("buffer count");
  std::size_t offset = c.offset;
  const auto tensors = parse_tensor_block(bytes.data(), 4 + payload_size, offset);
  if (offset != 4 + payload_size) {
    throw std::runtime_error("load_parameters: trailing bytes in '" + path + "'");
  }
  if (tensors.size() != n_params + n_buffers) {
    throw std::runtime_error("load_parameters: tensor count does not match header");
  }
  if (n_params != module.parameters().size() || n_buffers != module.buffers().size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch (file " +
                             std::to_string(n_params) + "+" + std::to_string(n_buffers) +
                             ", module " + std::to_string(module.parameters().size()) + "+" +
                             std::to_string(module.buffers().size()) + ")");
  }
  restore_state(module, tensors);
}

}  // namespace gtv::nn
