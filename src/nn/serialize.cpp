#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace gtv::nn {

namespace {

constexpr std::uint32_t kMagic = 0x47545650;  // "GTVP"

template <typename T>
void write_value(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_value(std::ifstream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_parameters: truncated file");
  return value;
}

}  // namespace

void save_parameters(Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_parameters: cannot open '" + path + "'");
  const auto params = module.parameters();
  write_value(out, kMagic);
  write_value(out, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    write_value(out, static_cast<std::uint64_t>(p.value().rows()));
    write_value(out, static_cast<std::uint64_t>(p.value().cols()));
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(p.value().size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_parameters: write failed for '" + path + "'");
}

void load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open '" + path + "'");
  if (read_value<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in '" + path + "'");
  }
  auto params = module.parameters();
  const auto count = read_value<std::uint64_t>(in);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch (file " +
                             std::to_string(count) + ", module " +
                             std::to_string(params.size()) + ")");
  }
  // Stage all tensors first so a corrupt file cannot half-update the module.
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (const auto& p : params) {
    const auto rows = static_cast<std::size_t>(read_value<std::uint64_t>(in));
    const auto cols = static_cast<std::size_t>(read_value<std::uint64_t>(in));
    if (rows != p.value().rows() || cols != p.value().cols()) {
      throw std::runtime_error("load_parameters: shape mismatch");
    }
    FloatVec values(rows * cols);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
    if (!in) throw std::runtime_error("load_parameters: truncated payload");
    staged.emplace_back(rows, cols, std::move(values));
  }
  for (std::size_t i = 0; i < params.size(); ++i) params[i].set_value(std::move(staged[i]));
}

}  // namespace gtv::nn
