#include "nn/adam.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/health.h"

namespace gtv::nn {

Adam::Adam(std::vector<ag::Var> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::step() {
  if (obs::health_enabled()) {
    step_impl<true>();
  } else {
    stats_.collected = false;
    step_impl<false>();
  }
}

template <bool Collect>
void Adam::step_impl() {
  ++step_count_;
  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  double grad_sq = 0.0, weight_sq = 0.0, update_sq = 0.0, grad_max = 0.0;
  std::uint64_t nonfinite = 0;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const Tensor& g = p.grad();
    if (g.empty()) continue;  // never touched by backward()
    Tensor value = p.value();
    float* w = value.data();
    const float* grad = g.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t k = 0; k < value.size(); ++k) {
      const float gk = grad[k] + options_.weight_decay * w[k];
      m[k] = options_.beta1 * m[k] + (1.0f - options_.beta1) * gk;
      v[k] = options_.beta2 * v[k] + (1.0f - options_.beta2) * gk * gk;
      const float m_hat = m[k] / bc1;
      const float v_hat = v[k] / bc2;
      const float delta = options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
      w[k] -= delta;
      if constexpr (Collect) {
        const double gd = grad[k];
        if (!std::isfinite(gd)) {
          ++nonfinite;
        } else {
          grad_sq += gd * gd;
          grad_max = std::max(grad_max, std::abs(gd));
        }
        weight_sq += static_cast<double>(w[k]) * w[k];
        update_sq += static_cast<double>(delta) * delta;
      }
    }
    p.set_value(std::move(value));
  }
  if constexpr (Collect) {
    stats_.collected = true;
    stats_.grad_norm = std::sqrt(grad_sq);
    stats_.weight_norm = std::sqrt(weight_sq);
    stats_.update_norm = std::sqrt(update_sq);
    stats_.grad_max_abs = grad_max;
    stats_.nonfinite = nonfinite;
  }
}

void Adam::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

AdamState Adam::state() const {
  AdamState s;
  s.step_count = static_cast<std::uint64_t>(step_count_);
  s.m = m_;
  s.v = v_;
  return s;
}

void Adam::set_state(const AdamState& state) {
  if (state.m.size() != m_.size() || state.v.size() != v_.size()) {
    throw std::runtime_error("Adam::set_state: moment count mismatch");
  }
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (state.m[i].rows() != m_[i].rows() || state.m[i].cols() != m_[i].cols() ||
        state.v[i].rows() != v_[i].rows() || state.v[i].cols() != v_[i].cols()) {
      throw std::runtime_error("Adam::set_state: moment shape mismatch at slot " +
                               std::to_string(i));
    }
  }
  m_ = state.m;
  v_ = state.v;
  step_count_ = static_cast<long>(state.step_count);
}

std::size_t Adam::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : params_) n += p.value().size();
  return n;
}

}  // namespace gtv::nn
