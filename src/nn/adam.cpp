#include "nn/adam.h"

#include <cmath>

namespace gtv::nn {

Adam::Adam(std::vector<ag::Var> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::step() {
  ++step_count_;
  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const Tensor& g = p.grad();
    if (g.empty()) continue;  // never touched by backward()
    Tensor value = p.value();
    float* w = value.data();
    const float* grad = g.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t k = 0; k < value.size(); ++k) {
      const float gk = grad[k] + options_.weight_decay * w[k];
      m[k] = options_.beta1 * m[k] + (1.0f - options_.beta1) * gk;
      v[k] = options_.beta2 * v[k] + (1.0f - options_.beta2) * gk * gk;
      const float m_hat = m[k] / bc1;
      const float v_hat = v[k] / bc2;
      w[k] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
    p.set_value(std::move(value));
  }
}

void Adam::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

std::size_t Adam::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : params_) n += p.value().size();
  return n;
}

}  // namespace gtv::nn
