#include "nn/module.h"

#include "obs/profiler.h"

#include <cmath>
#include <stdexcept>

namespace gtv::nn {

std::size_t Module::parameter_count() {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p.value().size();
  return n;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

// --- Linear -------------------------------------------------------------------

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features), out_(out_features) {
  if (in_ == 0 || out_ == 0) {
    throw std::invalid_argument("Linear: zero-sized layer (" + std::to_string(in_) + "->" +
                                std::to_string(out_) + ")");
  }
  // Kaiming-uniform with fan_in, matching torch.nn.Linear defaults.
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_));
  weight_ = Var(Tensor::uniform(in_, out_, -bound, bound, rng), /*requires_grad=*/true);
  bias_ = Var(Tensor::uniform(1, out_, -bound, bound, rng), /*requires_grad=*/true);
}

Var Linear::forward(const Var& x) {
  obs::OpScope prof("nn.linear");
  if (x.cols() != in_) {
    throw std::invalid_argument("Linear(" + std::to_string(in_) + "->" + std::to_string(out_) +
                                "): input has " + std::to_string(x.cols()) + " features");
  }
  return ag::add(ag::matmul(x, weight_), bias_);
}

// --- BatchNorm1d ----------------------------------------------------------------

BatchNorm1d::BatchNorm1d(std::size_t features, float eps, float momentum)
    : features_(features),
      eps_(eps),
      momentum_(momentum),
      gamma_(Var(Tensor::ones(1, features), /*requires_grad=*/true)),
      beta_(Var(Tensor::zeros(1, features), /*requires_grad=*/true)),
      running_mean_(Tensor::zeros(1, features)),
      running_var_(Tensor::ones(1, features)) {}

Var BatchNorm1d::forward(const Var& x) {
  obs::OpScope prof("nn.batchnorm");
  if (x.cols() != features_) {
    throw std::invalid_argument("BatchNorm1d(" + std::to_string(features_) + "): input has " +
                                std::to_string(x.cols()) + " features");
  }
  if (training_) {
    const auto n = static_cast<float>(x.rows());
    // Batch statistics, composed from differentiable primitives so the whole
    // normalization is differentiable (including the variance path).
    Var mu = ag::mul_scalar(ag::sum_rows(x), 1.0f / n);          // 1 x C
    Var centered = ag::sub(x, mu);                               // N x C
    Var var = ag::mul_scalar(ag::sum_rows(ag::square(centered)), 1.0f / n);
    Var inv_std = ag::div(ag::constant(Tensor::ones(1, 1)),
                          ag::sqrt(ag::add_scalar(var, eps_)));
    Var normalized = ag::mul(centered, inv_std);
    // Update running statistics outside the graph.
    {
      ag::NoGradGuard no_grad;
      const Tensor& bm = mu.value();
      const Tensor& bv = var.value();
      running_mean_ = running_mean_.mul_scalar(1.0f - momentum_) + bm.mul_scalar(momentum_);
      running_var_ = running_var_.mul_scalar(1.0f - momentum_) + bv.mul_scalar(momentum_);
    }
    return ag::add(ag::mul(normalized, gamma_), beta_);
  }
  Tensor inv_std = running_var_.map([this](float v) { return 1.0f / std::sqrt(v + eps_); });
  Var normalized = ag::mul(ag::sub(x, ag::constant(running_mean_)), ag::constant(inv_std));
  return ag::add(ag::mul(normalized, gamma_), beta_);
}

// --- Dropout ---------------------------------------------------------------------

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {
  if (p < 0.0f || p >= 1.0f) throw std::invalid_argument("Dropout: p must be in [0, 1)");
}

Var Dropout::forward(const Var& x) {
  obs::OpScope prof("nn.dropout");
  if (!training_ || p_ == 0.0f) return x;
  const float keep = 1.0f - p_;
  Tensor mask(x.rows(), x.cols());
  for (std::size_t r = 0; r < mask.rows(); ++r)
    for (std::size_t c = 0; c < mask.cols(); ++c)
      mask(r, c) = rng_->uniform() < keep ? 1.0f / keep : 0.0f;
  return ag::mul(x, ag::constant(std::move(mask)));
}

// --- Sequential -------------------------------------------------------------------

Sequential& Sequential::add(std::unique_ptr<Module> m) {
  layers_.push_back(std::move(m));
  return *this;
}

Var Sequential::forward(const Var& x) {
  Var h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

std::vector<Var> Sequential::parameters() {
  std::vector<Var> params;
  for (auto& layer : layers_) {
    auto p = layer->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

std::vector<Tensor*> Sequential::buffers() {
  std::vector<Tensor*> bufs;
  for (auto& layer : layers_) {
    auto b = layer->buffers();
    bufs.insert(bufs.end(), b.begin(), b.end());
  }
  return bufs;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

// --- ResidualBlock -----------------------------------------------------------------

ResidualBlock::ResidualBlock(std::size_t in_features, std::size_t hidden, Rng& rng)
    : in_(in_features), hidden_(hidden), fc_(in_features, hidden, rng), bn_(hidden) {}

Var ResidualBlock::forward(const Var& x) {
  Var h = ag::relu(bn_.forward(fc_.forward(x)));
  return ag::concat_cols({h, x});
}

std::vector<Var> ResidualBlock::parameters() {
  auto params = fc_.parameters();
  auto bn_params = bn_.parameters();
  params.insert(params.end(), bn_params.begin(), bn_params.end());
  return params;
}

void ResidualBlock::set_training(bool training) {
  Module::set_training(training);
  fc_.set_training(training);
  bn_.set_training(training);
}

// --- FNBlock -----------------------------------------------------------------------

FNBlock::FNBlock(std::size_t in_features, std::size_t hidden, Rng& rng, float slope,
                 float dropout_p)
    : fc_(in_features, hidden, rng), act_(slope), drop_(dropout_p, rng) {}

Var FNBlock::forward(const Var& x) {
  return drop_.forward(act_.forward(fc_.forward(x)));
}

std::vector<Var> FNBlock::parameters() { return fc_.parameters(); }

void FNBlock::set_training(bool training) {
  Module::set_training(training);
  fc_.set_training(training);
  act_.set_training(training);
  drop_.set_training(training);
}

}  // namespace gtv::nn
