#include "data/table.h"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace gtv::data {

std::string to_string(ColumnType type) {
  switch (type) {
    case ColumnType::kCategorical: return "cat";
    case ColumnType::kContinuous: return "cont";
    case ColumnType::kMixed: return "mixed";
  }
  return "?";
}

Table::Table(std::vector<ColumnSpec> schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.size());
  std::unordered_set<std::string> names;
  for (const auto& spec : schema_) {
    if (!names.insert(spec.name).second) {
      throw std::invalid_argument("Table: duplicate column name '" + spec.name + "'");
    }
    if (spec.type == ColumnType::kCategorical && spec.categories.empty()) {
      throw std::invalid_argument("Table: categorical column '" + spec.name +
                                  "' has no categories");
    }
  }
}

std::size_t Table::column_index(const std::string& name) const {
  auto found = find_column(name);
  if (!found) throw std::invalid_argument("Table: no column named '" + name + "'");
  return *found;
}

std::optional<std::size_t> Table::find_column(const std::string& name) const {
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return i;
  }
  return std::nullopt;
}

void Table::set_cell(std::size_t row, std::size_t col, double value) {
  columns_.at(col).at(row) = value;
}

void Table::append_row(const std::vector<double>& values) {
  if (values.size() != schema_.size()) {
    throw std::invalid_argument("Table::append_row: expected " +
                                std::to_string(schema_.size()) + " values, got " +
                                std::to_string(values.size()));
  }
  for (std::size_t c = 0; c < values.size(); ++c) {
    if (schema_[c].type == ColumnType::kCategorical) {
      const double v = values[c];
      const auto k = static_cast<std::size_t>(v);
      if (v < 0 || v != static_cast<double>(k) || k >= schema_[c].cardinality()) {
        throw std::invalid_argument("Table::append_row: invalid category index for column '" +
                                    schema_[c].name + "'");
      }
    }
    columns_[c].push_back(values[c]);
  }
}

void Table::reserve(std::size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

Table Table::select_columns(const std::vector<std::size_t>& cols) const {
  std::vector<ColumnSpec> schema;
  schema.reserve(cols.size());
  for (std::size_t c : cols) schema.push_back(spec(c));
  Table out(std::move(schema));
  for (std::size_t i = 0; i < cols.size(); ++i) out.columns_[i] = columns_.at(cols[i]);
  return out;
}

Table Table::gather_rows(const std::vector<std::size_t>& rows) const {
  Table out(schema_);
  for (std::size_t c = 0; c < n_cols(); ++c) {
    out.columns_[c].reserve(rows.size());
    for (std::size_t r : rows) out.columns_[c].push_back(columns_[c].at(r));
  }
  return out;
}

Table Table::slice_rows(std::size_t r0, std::size_t r1) const {
  if (r0 > r1 || r1 > n_rows()) throw std::out_of_range("Table::slice_rows");
  Table out(schema_);
  for (std::size_t c = 0; c < n_cols(); ++c) {
    out.columns_[c].assign(columns_[c].begin() + static_cast<std::ptrdiff_t>(r0),
                           columns_[c].begin() + static_cast<std::ptrdiff_t>(r1));
  }
  return out;
}

void Table::permute_rows(const std::vector<std::size_t>& perm) {
  if (perm.size() != n_rows()) {
    throw std::invalid_argument("Table::permute_rows: permutation size mismatch");
  }
  for (auto& col : columns_) {
    std::vector<double> next(col.size());
    for (std::size_t i = 0; i < perm.size(); ++i) next[i] = col.at(perm[i]);
    col = std::move(next);
  }
}

Table Table::concat_columns(const std::vector<Table>& parts) {
  if (parts.empty()) return Table();
  const std::size_t rows = parts.front().n_rows();
  std::vector<ColumnSpec> schema;
  for (const auto& part : parts) {
    if (part.n_rows() != rows) {
      throw std::invalid_argument("Table::concat_columns: row count mismatch");
    }
    schema.insert(schema.end(), part.schema_.begin(), part.schema_.end());
  }
  Table out(std::move(schema));  // ctor rejects duplicate names
  std::size_t offset = 0;
  for (const auto& part : parts) {
    for (std::size_t c = 0; c < part.n_cols(); ++c) out.columns_[offset + c] = part.columns_[c];
    offset += part.n_cols();
  }
  return out;
}

std::pair<Table, Table> Table::train_test_split(double test_fraction, Rng& rng,
                                                std::optional<std::size_t> stratify_col) const {
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    throw std::invalid_argument("train_test_split: fraction must be in [0,1]");
  }
  std::vector<std::size_t> train_rows, test_rows;
  if (stratify_col) {
    const auto& col = columns_.at(*stratify_col);
    if (spec(*stratify_col).type != ColumnType::kCategorical) {
      throw std::invalid_argument("train_test_split: stratify column must be categorical");
    }
    std::unordered_map<long, std::vector<std::size_t>> buckets;
    for (std::size_t r = 0; r < col.size(); ++r) {
      buckets[static_cast<long>(col[r])].push_back(r);
    }
    for (auto& [cls, rows] : buckets) {
      std::vector<std::size_t> order = rng.permutation(rows.size());
      const auto n_test = static_cast<std::size_t>(
          static_cast<double>(rows.size()) * test_fraction + 0.5);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        (i < n_test ? test_rows : train_rows).push_back(rows[order[i]]);
      }
    }
  } else {
    std::vector<std::size_t> order = rng.permutation(n_rows());
    const auto n_test =
        static_cast<std::size_t>(static_cast<double>(n_rows()) * test_fraction + 0.5);
    test_rows.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_test));
    train_rows.assign(order.begin() + static_cast<std::ptrdiff_t>(n_test), order.end());
  }
  // Keep row order stable within each split for reproducibility.
  std::sort(train_rows.begin(), train_rows.end());
  std::sort(test_rows.begin(), test_rows.end());
  return {gather_rows(train_rows), gather_rows(test_rows)};
}

Table Table::stratified_sample(std::size_t rows, std::size_t stratify_col, Rng& rng) const {
  if (rows >= n_rows()) return *this;
  const auto& col = columns_.at(stratify_col);
  std::unordered_map<long, std::vector<std::size_t>> buckets;
  for (std::size_t r = 0; r < col.size(); ++r) buckets[static_cast<long>(col[r])].push_back(r);
  const double keep = static_cast<double>(rows) / static_cast<double>(n_rows());
  std::vector<std::size_t> selected;
  selected.reserve(rows);
  for (auto& [cls, bucket] : buckets) {
    auto take = static_cast<std::size_t>(static_cast<double>(bucket.size()) * keep + 0.5);
    take = std::max<std::size_t>(take, bucket.empty() ? 0 : 1);
    take = std::min(take, bucket.size());
    std::vector<std::size_t> order = rng.permutation(bucket.size());
    for (std::size_t i = 0; i < take; ++i) selected.push_back(bucket[order[i]]);
  }
  std::sort(selected.begin(), selected.end());
  return gather_rows(selected);
}

std::vector<std::size_t> Table::class_counts(std::size_t col) const {
  const auto& spec_ = spec(col);
  if (spec_.type != ColumnType::kCategorical) {
    throw std::invalid_argument("Table::class_counts: column '" + spec_.name +
                                "' is not categorical");
  }
  std::vector<std::size_t> counts(spec_.cardinality(), 0);
  for (double v : columns_.at(col)) ++counts.at(static_cast<std::size_t>(v));
  return counts;
}

bool Table::same_schema(const Table& other) const {
  if (schema_.size() != other.schema_.size()) return false;
  for (std::size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name != other.schema_[i].name || schema_[i].type != other.schema_[i].type ||
        schema_[i].categories != other.schema_[i].categories) {
      return false;
    }
  }
  return true;
}

std::vector<Table> vertical_split(const Table& table,
                                  const std::vector<std::vector<std::size_t>>& groups) {
  std::vector<Table> shards;
  shards.reserve(groups.size());
  std::vector<bool> used(table.n_cols(), false);
  for (const auto& group : groups) {
    for (std::size_t c : group) {
      if (c >= table.n_cols()) throw std::out_of_range("vertical_split: column out of range");
      if (used[c]) throw std::invalid_argument("vertical_split: column assigned twice");
      used[c] = true;
    }
    shards.push_back(table.select_columns(group));
  }
  return shards;
}

// --- CSV ------------------------------------------------------------------------

namespace {

std::string encode_header(const ColumnSpec& spec) {
  std::ostringstream os;
  os << spec.name << ":" << to_string(spec.type);
  if (spec.type == ColumnType::kCategorical) {
    os << "{";
    for (std::size_t i = 0; i < spec.categories.size(); ++i) {
      os << spec.categories[i] << (i + 1 < spec.categories.size() ? "|" : "");
    }
    os << "}";
  } else if (spec.type == ColumnType::kMixed) {
    os << "{";
    for (std::size_t i = 0; i < spec.special_values.size(); ++i) {
      os << spec.special_values[i] << (i + 1 < spec.special_values.size() ? ";" : "");
    }
    os << "}";
  }
  return os.str();
}

ColumnSpec decode_header(const std::string& field) {
  const auto colon = field.find(':');
  if (colon == std::string::npos) {
    throw std::runtime_error("csv: malformed header field '" + field + "'");
  }
  ColumnSpec spec;
  spec.name = field.substr(0, colon);
  std::string rest = field.substr(colon + 1);
  const auto brace = rest.find('{');
  const std::string type = rest.substr(0, brace);
  if (type == "cont") {
    spec.type = ColumnType::kContinuous;
  } else if (type == "cat") {
    spec.type = ColumnType::kCategorical;
  } else if (type == "mixed") {
    spec.type = ColumnType::kMixed;
  } else {
    throw std::runtime_error("csv: unknown column type '" + type + "'");
  }
  if (brace != std::string::npos) {
    const auto close = rest.rfind('}');
    std::string body = rest.substr(brace + 1, close - brace - 1);
    std::stringstream ss(body);
    std::string item;
    const char sep = spec.type == ColumnType::kCategorical ? '|' : ';';
    while (std::getline(ss, item, sep)) {
      if (spec.type == ColumnType::kCategorical) {
        spec.categories.push_back(item);
      } else {
        spec.special_values.push_back(std::stod(item));
      }
    }
  }
  return spec;
}

std::vector<std::string> split_line(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, sep)) fields.push_back(field);
  if (!line.empty() && line.back() == sep) fields.emplace_back();
  return fields;
}

}  // namespace

void write_csv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open '" + path + "'");
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    out << encode_header(table.spec(c)) << (c + 1 < table.n_cols() ? "," : "\n");
  }
  out.precision(10);
  for (std::size_t r = 0; r < table.n_rows(); ++r) {
    for (std::size_t c = 0; c < table.n_cols(); ++c) {
      const auto& spec = table.spec(c);
      if (spec.type == ColumnType::kCategorical) {
        out << spec.categories.at(static_cast<std::size_t>(table.cell(r, c)));
      } else {
        out << table.cell(r, c);
      }
      out << (c + 1 < table.n_cols() ? "," : "\n");
    }
  }
}

Table read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("read_csv: empty file");
  std::vector<ColumnSpec> schema;
  for (const auto& field : split_line(line, ',')) schema.push_back(decode_header(field));
  Table table(std::move(schema));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_line(line, ',');
    if (fields.size() != table.n_cols()) {
      throw std::runtime_error("read_csv: row with wrong arity");
    }
    std::vector<double> row(fields.size());
    for (std::size_t c = 0; c < fields.size(); ++c) {
      const auto& spec = table.spec(c);
      if (spec.type == ColumnType::kCategorical) {
        const auto it =
            std::find(spec.categories.begin(), spec.categories.end(), fields[c]);
        if (it == spec.categories.end()) {
          throw std::runtime_error("read_csv: unknown category '" + fields[c] + "'");
        }
        row[c] = static_cast<double>(std::distance(spec.categories.begin(), it));
      } else {
        row[c] = std::stod(fields[c]);
      }
    }
    table.append_row(row);
  }
  return table;
}

}  // namespace gtv::data
