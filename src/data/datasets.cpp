#include "data/datasets.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gtv::data {

namespace {

constexpr std::size_t kLatentDim = 4;

// Column generators share a per-row latent factor z so every column is
// correlated with every other through z (plus independent noise).
struct ContinuousGen {
  std::vector<double> weights;  // projection of z
  double offset = 0.0;
  double scale = 1.0;
  double noise = 0.3;
  // Optional bimodality: a second mode shifted by `mode_shift` entered with
  // probability sigmoid(mode_weights . z). Exercises mode-specific encoding.
  double mode_shift = 0.0;
  std::vector<double> mode_weights;
  bool non_negative = false;
};

struct CategoricalGen {
  // logits[k] = bias[k] + weights[k] . z  (bias encodes imbalance)
  std::vector<std::vector<double>> weights;
  std::vector<double> bias;
  double temperature = 1.0;
};

struct MixedGen {
  ContinuousGen continuous;
  double special_value = 0.0;
  // P(special) = sigmoid(bias + weights . z)
  std::vector<double> special_weights;
  double special_bias = 1.0;
};

double dot(const std::vector<double>& w, const std::vector<double>& z) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) acc += w[i] * z[i];
  return acc;
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

std::vector<double> random_weights(Rng& rng, double magnitude = 1.0) {
  std::vector<double> w(kLatentDim);
  for (auto& v : w) v = rng.normal(0.0, magnitude);
  return w;
}

double sample_continuous(const ContinuousGen& gen, const std::vector<double>& z, Rng& rng) {
  double value = gen.offset + gen.scale * dot(gen.weights, z) + rng.normal(0.0, gen.noise);
  if (gen.mode_shift != 0.0 && !gen.mode_weights.empty()) {
    const double p = sigmoid(dot(gen.mode_weights, z));
    if (rng.uniform() < p) value += gen.mode_shift;
  }
  if (gen.non_negative) value = std::max(value, 0.0);
  return value;
}

std::size_t sample_categorical(const CategoricalGen& gen, const std::vector<double>& z,
                               Rng& rng) {
  std::vector<double> probs(gen.bias.size());
  double max_logit = -1e300;
  for (std::size_t k = 0; k < probs.size(); ++k) {
    probs[k] = (gen.bias[k] + dot(gen.weights[k], z)) / gen.temperature;
    max_logit = std::max(max_logit, probs[k]);
  }
  for (auto& p : probs) p = std::exp(p - max_logit);
  return rng.categorical(probs);
}

double sample_mixed(const MixedGen& gen, const std::vector<double>& z, Rng& rng) {
  const double p_special = sigmoid(gen.special_bias + dot(gen.special_weights, z));
  if (rng.uniform() < p_special) return gen.special_value;
  return sample_continuous(gen.continuous, z, rng);
}

// Assembles a table from per-column generators. Generator variants are
// discriminated by which optional is set.
struct ColumnGen {
  ColumnSpec spec;
  std::optional<ContinuousGen> continuous;
  std::optional<CategoricalGen> categorical;
  std::optional<MixedGen> mixed;
};

std::vector<std::string> class_labels(const std::string& prefix, std::size_t n) {
  std::vector<std::string> labels;
  labels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) labels.push_back(prefix + std::to_string(i));
  return labels;
}

CategoricalGen make_cat_gen(Rng& rng, const std::vector<double>& bias, double strength = 1.0,
                            double temperature = 1.0) {
  CategoricalGen gen;
  gen.bias = bias;
  gen.temperature = temperature;
  gen.weights.reserve(bias.size());
  for (std::size_t k = 0; k < bias.size(); ++k) gen.weights.push_back(random_weights(rng, strength));
  return gen;
}

ContinuousGen make_cont_gen(Rng& rng, double offset, double scale, double noise,
                            bool non_negative = false, double mode_shift = 0.0) {
  ContinuousGen gen;
  gen.weights = random_weights(rng);
  gen.offset = offset;
  gen.scale = scale;
  gen.noise = noise;
  gen.non_negative = non_negative;
  gen.mode_shift = mode_shift;
  if (mode_shift != 0.0) gen.mode_weights = random_weights(rng);
  return gen;
}

Table generate(const std::vector<ColumnGen>& gens, std::size_t rows, Rng& rng) {
  std::vector<ColumnSpec> schema;
  schema.reserve(gens.size());
  for (const auto& g : gens) schema.push_back(g.spec);
  Table table(std::move(schema));
  table.reserve(rows);
  std::vector<double> row(gens.size());
  std::vector<double> z(kLatentDim);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& v : z) v = rng.normal();
    for (std::size_t c = 0; c < gens.size(); ++c) {
      const auto& g = gens[c];
      if (g.continuous) {
        row[c] = sample_continuous(*g.continuous, z, rng);
      } else if (g.categorical) {
        row[c] = static_cast<double>(sample_categorical(*g.categorical, z, rng));
      } else if (g.mixed) {
        row[c] = sample_mixed(*g.mixed, z, rng);
      } else {
        throw std::logic_error("generate: column without generator");
      }
    }
    table.append_row(row);
  }
  return table;
}

ColumnGen cont_col(const std::string& name, ContinuousGen gen) {
  ColumnGen c;
  c.spec = {name, ColumnType::kContinuous, {}, {}};
  c.continuous = std::move(gen);
  return c;
}

ColumnGen cat_col(const std::string& name, std::vector<std::string> labels, CategoricalGen gen) {
  ColumnGen c;
  c.spec = {name, ColumnType::kCategorical, std::move(labels), {}};
  c.categorical = std::move(gen);
  return c;
}

ColumnGen mixed_col(const std::string& name, MixedGen gen) {
  ColumnGen c;
  c.spec = {name, ColumnType::kMixed, {}, {gen.special_value}};
  c.mixed = std::move(gen);
  return c;
}

}  // namespace

Table make_loan(std::size_t rows, Rng& rng) {
  std::vector<ColumnGen> gens;
  gens.push_back(cont_col("age", make_cont_gen(rng, 45.0, 8.0, 3.0)));
  gens.push_back(cont_col("experience", make_cont_gen(rng, 20.0, 8.0, 3.0)));
  gens.push_back(cont_col("income", make_cont_gen(rng, 70.0, 30.0, 10.0, /*nn=*/true)));
  gens.push_back(cat_col("family", class_labels("f", 4), make_cat_gen(rng, {0.5, 0.3, 0.0, -0.2})));
  gens.push_back(cont_col("cc_avg", make_cont_gen(rng, 2.0, 1.2, 0.4, /*nn=*/true)));
  gens.push_back(
      cat_col("education", class_labels("e", 3), make_cat_gen(rng, {0.6, 0.0, -0.3})));
  {
    MixedGen mortgage;
    mortgage.continuous = make_cont_gen(rng, 150.0, 60.0, 25.0, /*nn=*/true);
    mortgage.special_value = 0.0;
    mortgage.special_weights = random_weights(rng);
    mortgage.special_bias = 1.0;  // ~70% of rows have no mortgage
    gens.push_back(mixed_col("mortgage", std::move(mortgage)));
  }
  gens.push_back(cat_col("securities", class_labels("s", 2), make_cat_gen(rng, {1.8, -1.8})));
  gens.push_back(cat_col("cd_account", class_labels("cd", 2), make_cat_gen(rng, {2.2, -2.2})));
  gens.push_back(cat_col("online", class_labels("o", 2), make_cat_gen(rng, {0.2, -0.2})));
  gens.push_back(cat_col("credit_card", class_labels("cc", 2), make_cat_gen(rng, {0.6, -0.6})));
  gens.push_back(cat_col("zip_region", class_labels("z", 7),
                         make_cat_gen(rng, {0.2, 0.1, 0.0, 0.0, -0.1, -0.2, -0.3}, 0.5)));
  // Target: ~10% positive, strongly z-driven so features are predictive.
  gens.push_back(cat_col("personal_loan", {"no", "yes"}, make_cat_gen(rng, {2.2, -2.2}, 2.0)));
  return generate(gens, rows, rng);
}

Table make_adult(std::size_t rows, Rng& rng) {
  std::vector<ColumnGen> gens;
  gens.push_back(cont_col("age", make_cont_gen(rng, 38.0, 10.0, 4.0)));
  gens.push_back(cat_col("workclass", class_labels("w", 8),
                         make_cat_gen(rng, {2.0, 0.5, 0.0, -0.2, -0.5, -0.8, -1.2, -2.0})));
  gens.push_back(cont_col("fnlwgt", make_cont_gen(rng, 1.9e5, 8e4, 3e4, /*nn=*/true)));
  gens.push_back(cat_col(
      "education", class_labels("ed", 16),
      make_cat_gen(rng, {1.8, 1.6, 0.9, 0.5, 0.3, 0.0, 0.0, -0.2, -0.4, -0.6, -0.8, -1.0, -1.2,
                         -1.4, -1.7, -2.0},
                   0.7)));
  gens.push_back(cont_col("education_num", make_cont_gen(rng, 10.0, 2.5, 1.0)));
  gens.push_back(cat_col("marital_status", class_labels("m", 7),
                         make_cat_gen(rng, {1.5, 1.2, 0.0, -0.5, -0.8, -1.5, -2.0})));
  gens.push_back(cat_col("occupation", class_labels("oc", 14),
                         make_cat_gen(rng, {1.0, 0.9, 0.8, 0.6, 0.5, 0.3, 0.2, 0.0, -0.2, -0.4,
                                            -0.8, -1.2, -1.6, -2.2},
                                      0.8)));
  gens.push_back(cat_col("relationship", class_labels("r", 6),
                         make_cat_gen(rng, {1.4, 1.0, 0.2, -0.2, -0.8, -1.4})));
  gens.push_back(
      cat_col("race", class_labels("ra", 5), make_cat_gen(rng, {2.5, 0.3, 0.0, -0.5, -1.0}, 0.4)));
  gens.push_back(cat_col("sex", {"male", "female"}, make_cat_gen(rng, {0.35, -0.35})));
  {
    MixedGen gain;  // mostly zero, long positive tail when nonzero
    gain.continuous = make_cont_gen(rng, 6000.0, 3000.0, 1500.0, /*nn=*/true);
    gain.special_value = 0.0;
    gain.special_weights = random_weights(rng);
    gain.special_bias = 2.2;  // ~90% zeros
    gens.push_back(mixed_col("capital_gain", std::move(gain)));
  }
  {
    MixedGen loss;
    loss.continuous = make_cont_gen(rng, 1900.0, 500.0, 300.0, /*nn=*/true);
    loss.special_value = 0.0;
    loss.special_weights = random_weights(rng);
    loss.special_bias = 2.8;  // ~94% zeros
    gens.push_back(mixed_col("capital_loss", std::move(loss)));
  }
  gens.push_back(cont_col("hours_per_week", make_cont_gen(rng, 40.0, 8.0, 4.0, /*nn=*/true)));
  gens.push_back(cat_col("native_country", class_labels("nc", 10),
                         make_cat_gen(rng, {3.0, 0.0, -0.3, -0.6, -0.8, -1.0, -1.2, -1.4, -1.6,
                                            -1.8},
                                      0.3)));
  // Income >50K: ~24% positive.
  gens.push_back(cat_col("income", {"<=50K", ">50K"}, make_cat_gen(rng, {1.2, -1.2}, 2.0)));
  return generate(gens, rows, rng);
}

Table make_covtype(std::size_t rows, Rng& rng) {
  std::vector<ColumnGen> gens;
  const char* cont_names[10] = {"elevation",        "aspect",
                                "slope",            "horiz_dist_hydro",
                                "vert_dist_hydro",  "horiz_dist_road",
                                "hillshade_9am",    "hillshade_noon",
                                "hillshade_3pm",    "horiz_dist_fire"};
  const double offsets[10] = {2900, 150, 14, 270, 45, 2300, 212, 223, 142, 1980};
  const double scales[10] = {280, 110, 7, 210, 58, 1500, 27, 20, 38, 1320};
  for (int i = 0; i < 10; ++i) {
    gens.push_back(cont_col(cont_names[i],
                            make_cont_gen(rng, offsets[i], scales[i], scales[i] * 0.2,
                                          /*nn=*/false, i % 3 == 0 ? scales[i] * 1.5 : 0.0)));
  }
  for (int i = 0; i < 4; ++i) {
    gens.push_back(cat_col("wilderness_" + std::to_string(i), class_labels("b", 2),
                           make_cat_gen(rng, {1.0 + 0.3 * i, -1.0 - 0.3 * i}, 1.2)));
  }
  for (int i = 0; i < 40; ++i) {
    // Soil types are sparse one-hot flags with varying rarity.
    const double rarity = 1.2 + 0.08 * i;
    gens.push_back(cat_col("soil_" + std::to_string(i), class_labels("b", 2),
                           make_cat_gen(rng, {rarity, -rarity}, 1.0)));
  }
  gens.push_back(cat_col("cover_type", class_labels("ct", 7),
                         make_cat_gen(rng, {1.6, 1.5, 0.3, -1.2, -0.8, -0.6, -1.0}, 1.6)));
  return generate(gens, rows, rng);
}

Table make_intrusion(std::size_t rows, Rng& rng) {
  std::vector<ColumnGen> gens;
  gens.push_back(cont_col("duration", make_cont_gen(rng, 40.0, 60.0, 30.0, /*nn=*/true)));
  gens.push_back(cat_col("protocol_type", class_labels("p", 3), make_cat_gen(rng, {1.2, 0.4, -1.0})));
  gens.push_back(cat_col("service", class_labels("srv", 12),
                         make_cat_gen(rng, {1.5, 1.2, 0.9, 0.5, 0.2, 0.0, -0.2, -0.5, -0.8, -1.1,
                                            -1.4, -1.8},
                                      0.8)));
  gens.push_back(cat_col("flag", class_labels("fl", 6),
                         make_cat_gen(rng, {2.0, 0.5, -0.2, -0.8, -1.2, -1.8})));
  gens.push_back(cont_col("src_bytes", make_cont_gen(rng, 2500.0, 2500.0, 800.0, true, 4000.0)));
  gens.push_back(cont_col("dst_bytes", make_cont_gen(rng, 1200.0, 1400.0, 500.0, true, 2500.0)));
  gens.push_back(cat_col("land", class_labels("b", 2), make_cat_gen(rng, {4.0, -4.0})));
  gens.push_back(cont_col("wrong_fragment", make_cont_gen(rng, 0.1, 0.3, 0.1, true)));
  gens.push_back(cont_col("urgent", make_cont_gen(rng, 0.02, 0.1, 0.05, true)));
  gens.push_back(cont_col("hot", make_cont_gen(rng, 0.3, 0.8, 0.3, true)));
  gens.push_back(cont_col("num_failed_logins", make_cont_gen(rng, 0.1, 0.3, 0.1, true)));
  gens.push_back(cat_col("logged_in", class_labels("b", 2), make_cat_gen(rng, {0.4, -0.4})));
  const char* rate_names[22] = {
      "num_compromised", "root_shell",      "su_attempted",     "num_root",
      "num_file_create", "num_shells",      "num_access_files", "count",
      "srv_count",       "serror_rate",     "srv_serror_rate",  "rerror_rate",
      "srv_rerror_rate", "same_srv_rate",   "diff_srv_rate",    "srv_diff_host_rate",
      "dst_host_count",  "dst_host_srv",    "dst_same_srv",     "dst_diff_srv",
      "dst_serror_rate", "dst_rerror_rate"};
  for (int i = 0; i < 22; ++i) {
    const double scale = (i < 9) ? 20.0 : 0.3;
    gens.push_back(cont_col(rate_names[i],
                            make_cont_gen(rng, scale, scale * 0.8, scale * 0.25, /*nn=*/true)));
  }
  gens.push_back(cont_col("num_outbound_cmds", make_cont_gen(rng, 0.05, 0.15, 0.05, true)));
  gens.push_back(cat_col("is_host_login", class_labels("b", 2), make_cat_gen(rng, {3.5, -3.5})));
  gens.push_back(cat_col("is_guest_login", class_labels("b", 2), make_cat_gen(rng, {2.5, -2.5})));
  gens.push_back(cont_col("dst_host_same_src_port", make_cont_gen(rng, 0.2, 0.25, 0.1, true)));
  gens.push_back(cont_col("dst_host_srv_diff_host", make_cont_gen(rng, 0.05, 0.1, 0.04, true)));
  gens.push_back(cont_col("dst_host_srv_serror", make_cont_gen(rng, 0.1, 0.2, 0.08, true)));
  gens.push_back(cont_col("dst_host_srv_rerror", make_cont_gen(rng, 0.1, 0.2, 0.08, true)));
  // 5 attack classes (normal, dos, probe, r2l, u2r) — heavily imbalanced.
  gens.push_back(cat_col("attack_class", class_labels("atk", 5),
                         make_cat_gen(rng, {1.8, 1.6, -0.3, -1.6, -2.6}, 1.8)));
  return generate(gens, rows, rng);
}

Table make_credit(std::size_t rows, Rng& rng) {
  std::vector<ColumnGen> gens;
  gens.push_back(cont_col("time", make_cont_gen(rng, 9.5e4, 4.5e4, 2e4, /*nn=*/true)));
  for (int i = 1; i <= 28; ++i) {
    // PCA-style components: zero-mean, varied scale, some bimodal.
    const double scale = 2.2 - 0.06 * i;
    gens.push_back(cont_col("v" + std::to_string(i),
                            make_cont_gen(rng, 0.0, scale, scale * 0.3, /*nn=*/false,
                                          i % 7 == 0 ? 2.5 * scale : 0.0)));
  }
  {
    MixedGen amount;  // many small card payments, point mass at 1.0
    amount.continuous = make_cont_gen(rng, 90.0, 70.0, 40.0, /*nn=*/true);
    amount.special_value = 1.0;
    amount.special_weights = random_weights(rng);
    amount.special_bias = -1.8;  // ~14% at the point mass
    gens.push_back(mixed_col("amount", std::move(amount)));
  }
  // Fraud target: ~1% positive.
  gens.push_back(cat_col("fraud", {"genuine", "fraud"}, make_cat_gen(rng, {4.0, -4.0}, 1.4)));
  return generate(gens, rows, rng);
}

Table make_dataset(const std::string& name, std::size_t rows, Rng& rng) {
  if (name == "loan") return make_loan(rows, rng);
  if (name == "adult") return make_adult(rows, rng);
  if (name == "covtype") return make_covtype(rows, rng);
  if (name == "intrusion") return make_intrusion(rows, rng);
  if (name == "credit") return make_credit(rows, rng);
  throw std::invalid_argument("make_dataset: unknown dataset '" + name + "'");
}

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names = {"loan", "adult", "covtype", "intrusion",
                                                 "credit"};
  return names;
}

std::string target_column(const std::string& dataset) {
  if (dataset == "loan") return "personal_loan";
  if (dataset == "adult") return "income";
  if (dataset == "covtype") return "cover_type";
  if (dataset == "intrusion") return "attack_class";
  if (dataset == "credit") return "fraud";
  throw std::invalid_argument("target_column: unknown dataset '" + dataset + "'");
}

}  // namespace gtv::data
