// Synthetic stand-ins for the paper's five benchmark datasets.
//
// The offline environment has no access to UCI / Kaggle, so each generator
// reproduces the *shape* of its namesake: the same column counts and types
// (continuous / categorical / mixed), realistic cardinalities, class
// imbalance in the target, and — crucially for GTV — genuine cross-column
// dependencies. All columns are driven by a shared low-dimensional latent
// factor per row, so correlations exist both within and across any vertical
// partition of the columns, which is exactly what the VFL experiments need
// to detect.
//
//   Dataset    rows(dflt)  features                        target
//   loan          5000     12 (5 cont, 6 cat, 1 mixed)     binary ~10% positive
//   adult        10000     14 (4 cont, 8 cat, 2 mixed)     binary ~24% positive
//   covtype      10000     54 (10 cont, 44 binary cat)     7-class, imbalanced
//   intrusion    10000     41 (34 cont, 7 cat)             5-class, imbalanced
//   credit       10000     30 (29 cont, 1 mixed)           binary ~1% positive
#pragma once

#include <string>
#include <vector>

#include "data/table.h"

namespace gtv::data {

Table make_loan(std::size_t rows, Rng& rng);
Table make_adult(std::size_t rows, Rng& rng);
Table make_covtype(std::size_t rows, Rng& rng);
Table make_intrusion(std::size_t rows, Rng& rng);
Table make_credit(std::size_t rows, Rng& rng);

// Dispatch by name ("loan", "adult", "covtype", "intrusion", "credit").
Table make_dataset(const std::string& name, std::size_t rows, Rng& rng);
// The five benchmark dataset names, in the paper's order.
const std::vector<std::string>& dataset_names();
// Name of the target column of each benchmark dataset.
std::string target_column(const std::string& dataset);

}  // namespace gtv::data
