// Typed tabular data container.
//
// A Table is a column-major collection of equally long columns. Cells are
// stored as double: continuous columns hold raw values, categorical columns
// hold category indices (0..K-1) into the column's category label list, and
// mixed columns hold either a continuous value or one of a declared set of
// special (categorical-like) values, as in CTAB-GAN's mixed encoder.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "tensor/rng.h"

namespace gtv::data {

enum class ColumnType { kCategorical, kContinuous, kMixed };

std::string to_string(ColumnType type);

struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kContinuous;
  // Category labels; size defines the cardinality. Categorical only.
  std::vector<std::string> categories;
  // Special point-mass values a mixed column can take (e.g. 0, -1).
  std::vector<double> special_values;

  std::size_t cardinality() const { return categories.size(); }
};

class Table {
 public:
  Table() = default;
  explicit Table(std::vector<ColumnSpec> schema);

  std::size_t n_rows() const { return columns_.empty() ? 0 : columns_.front().size(); }
  std::size_t n_cols() const { return schema_.size(); }

  const ColumnSpec& spec(std::size_t col) const { return schema_.at(col); }
  const std::vector<ColumnSpec>& schema() const { return schema_; }
  // Index of the column with this name; throws if absent.
  std::size_t column_index(const std::string& name) const;
  std::optional<std::size_t> find_column(const std::string& name) const;

  const std::vector<double>& column(std::size_t col) const { return columns_.at(col); }
  double cell(std::size_t row, std::size_t col) const { return columns_.at(col).at(row); }
  void set_cell(std::size_t row, std::size_t col, double value);

  // Appends one row; values.size() must equal n_cols(). Categorical values
  // must be valid category indices.
  void append_row(const std::vector<double>& values);
  void reserve(std::size_t rows);

  // --- structural operations -------------------------------------------------
  // New table with the given columns (in the given order).
  Table select_columns(const std::vector<std::size_t>& cols) const;
  // New table with the given rows (repetition allowed).
  Table gather_rows(const std::vector<std::size_t>& rows) const;
  Table slice_rows(std::size_t r0, std::size_t r1) const;
  // In-place row permutation: new_row[i] = old_row[perm[i]].
  void permute_rows(const std::vector<std::size_t>& perm);
  // Horizontal concatenation (same row count, disjoint column names).
  static Table concat_columns(const std::vector<Table>& parts);

  // Splits rows into (train, test) with `test_fraction` of rows in test.
  // If `stratify_col` is set (a categorical column), the class proportions
  // are preserved in both splits.
  std::pair<Table, Table> train_test_split(double test_fraction, Rng& rng,
                                           std::optional<std::size_t> stratify_col = {}) const;

  // Stratified subsample of `rows` rows w.r.t. `stratify_col` (paper: the
  // 50K-row samples of Covertype/Credit/Intrusion). Returns all rows if
  // `rows >= n_rows()`.
  Table stratified_sample(std::size_t rows, std::size_t stratify_col, Rng& rng) const;

  // Per-class row counts of a categorical column.
  std::vector<std::size_t> class_counts(std::size_t col) const;

  bool same_schema(const Table& other) const;

 private:
  std::vector<ColumnSpec> schema_;
  std::vector<std::vector<double>> columns_;
};

// Splits columns into `parts` groups: group g receives the columns whose
// index appears in groups[g]. Used to create per-client vertical shards.
std::vector<Table> vertical_split(const Table& table,
                                  const std::vector<std::vector<std::size_t>>& groups);

// CSV round trip. The header encodes types: "name:cat{a|b|c}",
// "name:cont", "name:mixed{0;-1}". Categorical cells are written as labels.
void write_csv(const Table& table, const std::string& path);
Table read_csv(const std::string& path);

}  // namespace gtv::data
