#include "eval/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gtv::eval {

namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    impurity -= p * p;
  }
  return impurity;
}

}  // namespace

DecisionTreeClassifier::DecisionTreeClassifier(TreeOptions options) : options_(options) {}

void DecisionTreeClassifier::fit(const Tensor& x, const std::vector<std::size_t>& y,
                                 std::size_t n_classes, Rng& rng) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("DecisionTreeClassifier::fit: bad inputs");
  }
  n_classes_ = n_classes;
  nodes_.clear();
  std::vector<std::size_t> rows(x.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  build(x, y, rows, 0, rng);
}

std::size_t DecisionTreeClassifier::build(const Tensor& x, const std::vector<std::size_t>& y,
                                          const std::vector<std::size_t>& rows,
                                          std::size_t depth, Rng& rng) {
  const std::size_t index = nodes_.size();
  nodes_.emplace_back();

  std::vector<std::size_t> counts(n_classes_, 0);
  for (std::size_t r : rows) ++counts[y[r]];
  {
    Node& node = nodes_[index];
    node.class_probs.resize(n_classes_);
    for (std::size_t c = 0; c < n_classes_; ++c) {
      node.class_probs[c] = static_cast<float>(counts[c]) / static_cast<float>(rows.size());
    }
  }
  const double parent_gini = gini(counts, rows.size());
  const bool pure = std::count(counts.begin(), counts.end(), rows.size()) == 1;
  if (depth >= options_.max_depth || rows.size() < options_.min_samples_split || pure ||
      parent_gini <= 1e-12) {
    return index;
  }

  // Candidate features (all, or a random subset for forests).
  std::vector<std::size_t> features(x.cols());
  std::iota(features.begin(), features.end(), std::size_t{0});
  if (options_.features_per_split > 0 && options_.features_per_split < x.cols()) {
    for (std::size_t i = 0; i < options_.features_per_split; ++i) {
      std::swap(features[i], features[i + rng.uniform_index(x.cols() - i)]);
    }
    features.resize(options_.features_per_split);
  }

  double best_gain = 1e-9;
  std::size_t best_feature = 0;
  float best_threshold = 0.0f;
  std::vector<float> values;
  for (std::size_t f : features) {
    values.clear();
    values.reserve(rows.size());
    for (std::size_t r : rows) values.push_back(x(r, f));
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) continue;
    // Quantile-cut thresholds.
    const std::size_t cuts = std::min(options_.max_thresholds, rows.size() - 1);
    for (std::size_t q = 1; q <= cuts; ++q) {
      const float threshold =
          values[q * rows.size() / (cuts + 1)];
      std::vector<std::size_t> left_counts(n_classes_, 0), right_counts(n_classes_, 0);
      std::size_t n_left = 0;
      for (std::size_t r : rows) {
        if (x(r, f) <= threshold) {
          ++left_counts[y[r]];
          ++n_left;
        } else {
          ++right_counts[y[r]];
        }
      }
      const std::size_t n_right = rows.size() - n_left;
      if (n_left < options_.min_samples_leaf || n_right < options_.min_samples_leaf) continue;
      const double weighted =
          (static_cast<double>(n_left) * gini(left_counts, n_left) +
           static_cast<double>(n_right) * gini(right_counts, n_right)) /
          static_cast<double>(rows.size());
      const double gain = parent_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = threshold;
      }
    }
  }
  if (best_gain <= 1e-9) return index;

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    (x(r, best_feature) <= best_threshold ? left_rows : right_rows).push_back(r);
  }
  const std::size_t left = build(x, y, left_rows, depth + 1, rng);
  const std::size_t right = build(x, y, right_rows, depth + 1, rng);
  Node& node = nodes_[index];  // re-borrow: build() may have reallocated
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return index;
}

Tensor DecisionTreeClassifier::predict_scores(const Tensor& x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTreeClassifier: not fitted");
  Tensor out(x.rows(), n_classes_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    std::size_t node = 0;
    while (!nodes_[node].leaf) {
      node = x(r, nodes_[node].feature) <= nodes_[node].threshold ? nodes_[node].left
                                                                  : nodes_[node].right;
    }
    for (std::size_t c = 0; c < n_classes_; ++c) out(r, c) = nodes_[node].class_probs[c];
  }
  return out;
}

RandomForestClassifier::RandomForestClassifier(std::size_t n_trees, TreeOptions options)
    : n_trees_(n_trees), options_(options) {}

void RandomForestClassifier::fit(const Tensor& x, const std::vector<std::size_t>& y,
                                 std::size_t n_classes, Rng& rng) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("RandomForestClassifier::fit: bad inputs");
  }
  n_classes_ = n_classes;
  trees_.clear();
  TreeOptions tree_options = options_;
  if (tree_options.features_per_split == 0) {
    tree_options.features_per_split = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(x.cols()))));
  }
  for (std::size_t t = 0; t < n_trees_; ++t) {
    // Bootstrap sample.
    std::vector<std::size_t> rows(x.rows());
    for (auto& r : rows) r = rng.uniform_index(x.rows());
    Tensor xb = x.gather_rows(rows);
    std::vector<std::size_t> yb(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) yb[i] = y[rows[i]];
    trees_.emplace_back(tree_options);
    trees_.back().fit(xb, yb, n_classes, rng);
  }
}

Tensor RandomForestClassifier::predict_scores(const Tensor& x) const {
  if (trees_.empty()) throw std::logic_error("RandomForestClassifier: not fitted");
  Tensor total(x.rows(), n_classes_);
  for (const auto& tree : trees_) total += tree.predict_scores(x);
  return total.mul_scalar(1.0f / static_cast<float>(trees_.size()));
}

}  // namespace gtv::eval
