#include "eval/features.h"

#include <cmath>
#include <stdexcept>

namespace gtv::eval {

void FeatureMatrix::fit(const data::Table& train, std::size_t target_column) {
  if (target_column >= train.n_cols()) {
    throw std::out_of_range("FeatureMatrix::fit: target column out of range");
  }
  if (train.spec(target_column).type != data::ColumnType::kCategorical) {
    throw std::invalid_argument("FeatureMatrix::fit: target must be categorical");
  }
  target_ = target_column;
  n_classes_ = train.spec(target_column).cardinality();
  scalers_.clear();
  width_ = 0;
  for (std::size_t c = 0; c < train.n_cols(); ++c) {
    if (c == target_column) continue;
    ColumnScaler scaler;
    scaler.source = c;
    if (train.spec(c).type == data::ColumnType::kCategorical) {
      scaler.categorical = true;
      scaler.cardinality = train.spec(c).cardinality();
      width_ += scaler.cardinality;
    } else {
      double sum = 0.0, sq = 0.0;
      for (double v : train.column(c)) {
        sum += v;
        sq += v * v;
      }
      const double n = static_cast<double>(train.n_rows());
      scaler.mean = sum / n;
      scaler.std = std::sqrt(std::max(sq / n - scaler.mean * scaler.mean, 1e-12));
      width_ += 1;
    }
    scalers_.push_back(scaler);
  }
}

Tensor FeatureMatrix::transform(const data::Table& table) const {
  Tensor out(table.n_rows(), width_);
  for (std::size_t r = 0; r < table.n_rows(); ++r) {
    std::size_t offset = 0;
    for (const auto& scaler : scalers_) {
      const double v = table.cell(r, scaler.source);
      if (scaler.categorical) {
        const auto k = static_cast<std::size_t>(v);
        if (k < scaler.cardinality) out(r, offset + k) = 1.0f;
        offset += scaler.cardinality;
      } else {
        out(r, offset) = static_cast<float>((v - scaler.mean) / scaler.std);
        offset += 1;
      }
    }
  }
  return out;
}

std::vector<std::size_t> FeatureMatrix::labels(const data::Table& table) const {
  std::vector<std::size_t> out;
  out.reserve(table.n_rows());
  for (double v : table.column(target_)) {
    const auto k = static_cast<std::size_t>(v);
    out.push_back(k < n_classes_ ? k : n_classes_ - 1);
  }
  return out;
}

}  // namespace gtv::eval
