#include "eval/classifiers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eval/tree.h"

namespace gtv::eval {

namespace {

// x with an appended constant-1 column (bias absorbed into the weights).
Tensor with_bias(const Tensor& x) {
  Tensor out(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) out(r, c) = x(r, c);
    out(r, x.cols()) = 1.0f;
  }
  return out;
}

Tensor softmax_rows_plain(const Tensor& logits) {
  Tensor out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    float mx = logits(r, 0);
    for (std::size_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, logits(r, c));
    float total = 0.0f;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      out(r, c) = std::exp(logits(r, c) - mx);
      total += out(r, c);
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) out(r, c) /= total;
  }
  return out;
}

void check_fit_inputs(const Tensor& x, const std::vector<std::size_t>& y,
                      std::size_t n_classes) {
  if (x.rows() != y.size()) throw std::invalid_argument("Classifier::fit: x/y size mismatch");
  if (x.rows() == 0) throw std::invalid_argument("Classifier::fit: empty training set");
  if (n_classes < 2) throw std::invalid_argument("Classifier::fit: need >= 2 classes");
  for (std::size_t label : y) {
    if (label >= n_classes) throw std::invalid_argument("Classifier::fit: label out of range");
  }
}

}  // namespace

std::vector<std::size_t> Classifier::predict(const Tensor& x) const {
  Tensor scores = predict_scores(x);
  std::vector<std::size_t> out(scores.rows());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < scores.cols(); ++c) {
      if (scores(r, c) > scores(r, best)) best = c;
    }
    out[r] = best;
  }
  return out;
}

// --- LogisticRegression -------------------------------------------------------

LogisticRegression::LogisticRegression(std::size_t epochs, float lr, float l2)
    : epochs_(epochs), lr_(lr), l2_(l2) {}

void LogisticRegression::fit(const Tensor& x, const std::vector<std::size_t>& y,
                             std::size_t n_classes, Rng& rng) {
  check_fit_inputs(x, y, n_classes);
  (void)rng;
  const Tensor xb = with_bias(x);
  const auto n = static_cast<float>(xb.rows());
  weights_ = Tensor(xb.cols(), n_classes);
  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    Tensor probs = softmax_rows_plain(xb.matmul(weights_));
    // dL/dlogits = (p - onehot) / n
    for (std::size_t r = 0; r < probs.rows(); ++r) probs(r, y[r]) -= 1.0f;
    Tensor grad = xb.matmul_tn(probs).mul_scalar(1.0f / n);
    grad += weights_.mul_scalar(l2_);
    weights_ -= grad.mul_scalar(lr_);
  }
}

Tensor LogisticRegression::predict_scores(const Tensor& x) const {
  if (weights_.empty()) throw std::logic_error("LogisticRegression: not fitted");
  return softmax_rows_plain(with_bias(x).matmul(weights_));
}

// --- LinearSvm --------------------------------------------------------------------

LinearSvm::LinearSvm(std::size_t epochs, float lr, float l2)
    : epochs_(epochs), lr_(lr), l2_(l2) {}

void LinearSvm::fit(const Tensor& x, const std::vector<std::size_t>& y, std::size_t n_classes,
                    Rng& rng) {
  check_fit_inputs(x, y, n_classes);
  const Tensor xb = with_bias(x);
  weights_ = Tensor(xb.cols(), n_classes);
  const std::size_t n = xb.rows();
  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    const auto order = rng.permutation(n);
    const float lr = lr_ / (1.0f + 0.1f * static_cast<float>(epoch));
    for (std::size_t r : order) {
      // One-vs-rest squared hinge per class: target +1 for y[r], else -1.
      for (std::size_t k = 0; k < n_classes; ++k) {
        float score = 0.0f;
        for (std::size_t c = 0; c < xb.cols(); ++c) score += xb(r, c) * weights_(c, k);
        const float target = (k == y[r]) ? 1.0f : -1.0f;
        const float margin = 1.0f - target * score;
        for (std::size_t c = 0; c < xb.cols(); ++c) {
          float grad = l2_ * weights_(c, k);
          if (margin > 0.0f) grad += -2.0f * margin * target * xb(r, c);
          weights_(c, k) -= lr * grad;
        }
      }
    }
  }
}

Tensor LinearSvm::predict_scores(const Tensor& x) const {
  if (weights_.empty()) throw std::logic_error("LinearSvm: not fitted");
  return with_bias(x).matmul(weights_);
}

// --- MlpClassifier -------------------------------------------------------------------

MlpClassifier::MlpClassifier(std::size_t hidden, std::size_t epochs, std::size_t batch)
    : hidden_(hidden), epochs_(epochs), batch_(batch) {}

void MlpClassifier::fit(const Tensor& x, const std::vector<std::size_t>& y,
                        std::size_t n_classes, Rng& rng) {
  check_fit_inputs(x, y, n_classes);
  const std::size_t d = x.cols();
  const float bound1 = std::sqrt(6.0f / static_cast<float>(d + hidden_));
  const float bound2 = std::sqrt(6.0f / static_cast<float>(hidden_ + n_classes));
  w1_ = Tensor::uniform(d, hidden_, -bound1, bound1, rng);
  b1_ = Tensor(1, hidden_);
  w2_ = Tensor::uniform(hidden_, n_classes, -bound2, bound2, rng);
  b2_ = Tensor(1, n_classes);

  Tensor vw1(d, hidden_), vb1(1, hidden_), vw2(hidden_, n_classes), vb2(1, n_classes);
  const float lr = 0.05f, momentum = 0.9f;
  const std::size_t n = x.rows();
  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    const auto order = rng.permutation(n);
    for (std::size_t start = 0; start < n; start += batch_) {
      const std::size_t end = std::min(n, start + batch_);
      std::vector<std::size_t> rows(order.begin() + static_cast<std::ptrdiff_t>(start),
                                    order.begin() + static_cast<std::ptrdiff_t>(end));
      Tensor xb = x.gather_rows(rows);
      const auto m = static_cast<float>(xb.rows());

      Tensor pre = xb.matmul(w1_) + b1_;
      Tensor h = pre.map([](float v) { return v > 0.0f ? v : 0.0f; });
      Tensor probs = softmax_rows_plain(h.matmul(w2_) + b2_);
      for (std::size_t r = 0; r < rows.size(); ++r) probs(r, y[rows[r]]) -= 1.0f;
      Tensor dlogits = probs.mul_scalar(1.0f / m);

      Tensor gw2 = h.matmul_tn(dlogits);
      Tensor gb2 = dlogits.sum_rows();
      Tensor dh = dlogits.matmul_nt(w2_);
      Tensor mask = pre.map([](float v) { return v > 0.0f ? 1.0f : 0.0f; });
      Tensor dpre = dh * mask;
      Tensor gw1 = xb.matmul_tn(dpre);
      Tensor gb1 = dpre.sum_rows();

      vw1 = vw1.mul_scalar(momentum) - gw1.mul_scalar(lr);
      vb1 = vb1.mul_scalar(momentum) - gb1.mul_scalar(lr);
      vw2 = vw2.mul_scalar(momentum) - gw2.mul_scalar(lr);
      vb2 = vb2.mul_scalar(momentum) - gb2.mul_scalar(lr);
      w1_ += vw1;
      b1_ += vb1;
      w2_ += vw2;
      b2_ += vb2;
    }
  }
}

Tensor MlpClassifier::predict_scores(const Tensor& x) const {
  if (w1_.empty()) throw std::logic_error("MlpClassifier: not fitted");
  Tensor h = (x.matmul(w1_) + b1_).map([](float v) { return v > 0.0f ? v : 0.0f; });
  return softmax_rows_plain(h.matmul(w2_) + b2_);
}

std::vector<std::unique_ptr<Classifier>> make_classifier_suite() {
  std::vector<std::unique_ptr<Classifier>> suite;
  suite.push_back(std::make_unique<DecisionTreeClassifier>());
  suite.push_back(std::make_unique<LinearSvm>());
  suite.push_back(std::make_unique<RandomForestClassifier>());
  suite.push_back(std::make_unique<LogisticRegression>());
  suite.push_back(std::make_unique<MlpClassifier>());
  return suite;
}

}  // namespace gtv::eval
