// CART decision tree (gini impurity, axis-aligned thresholds) and a bagged
// random forest with sqrt-feature subsampling.
#pragma once

#include <memory>
#include <vector>

#include "eval/classifiers.h"

namespace gtv::eval {

struct TreeOptions {
  std::size_t max_depth = 12;
  std::size_t min_samples_split = 8;
  std::size_t min_samples_leaf = 2;
  // 0 = use all features at each split; otherwise sample this many.
  std::size_t features_per_split = 0;
  // Candidate thresholds per feature (quantile cuts) to bound fit cost.
  std::size_t max_thresholds = 16;
};

class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeOptions options = {});
  void fit(const Tensor& x, const std::vector<std::size_t>& y, std::size_t n_classes,
           Rng& rng) override;
  Tensor predict_scores(const Tensor& x) const override;
  std::string name() const override { return "decision_tree"; }

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    bool leaf = true;
    std::size_t feature = 0;
    float threshold = 0.0f;
    std::size_t left = 0;
    std::size_t right = 0;
    std::vector<float> class_probs;
  };
  std::size_t build(const Tensor& x, const std::vector<std::size_t>& y,
                    const std::vector<std::size_t>& rows, std::size_t depth, Rng& rng);

  TreeOptions options_;
  std::size_t n_classes_ = 0;
  std::vector<Node> nodes_;
};

class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(std::size_t n_trees = 20, TreeOptions options = {});
  void fit(const Tensor& x, const std::vector<std::size_t>& y, std::size_t n_classes,
           Rng& rng) override;
  Tensor predict_scores(const Tensor& x) const override;
  std::string name() const override { return "random_forest"; }

 private:
  std::size_t n_trees_;
  TreeOptions options_;
  std::vector<DecisionTreeClassifier> trees_;
  std::size_t n_classes_ = 0;
};

}  // namespace gtv::eval
