#include "eval/shapley.h"

#include <algorithm>
#include <numeric>

#include "eval/classifiers.h"
#include "eval/features.h"

namespace gtv::eval {

std::vector<double> shapley_importance(const data::Table& table, std::size_t target_column,
                                       const ShapleyOptions& options, Rng& rng) {
  FeatureMatrix features;
  features.fit(table, target_column);
  const Tensor x = features.transform(table);
  const auto y = features.labels(table);

  MlpClassifier mlp(100, options.mlp_epochs);
  mlp.fit(x, y, features.n_classes(), rng);

  // Map encoded feature positions back to source columns so permutations
  // swap whole original columns (one-hot groups move together).
  std::vector<std::size_t> feature_columns;  // source column per table col (non-target)
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    if (c != target_column) feature_columns.push_back(c);
  }
  // Encoded span per source column, in fit order.
  std::vector<std::pair<std::size_t, std::size_t>> encoded_span(table.n_cols(), {0, 0});
  {
    std::size_t offset = 0;
    for (std::size_t c = 0; c < table.n_cols(); ++c) {
      if (c == target_column) continue;
      const std::size_t width =
          table.spec(c).type == data::ColumnType::kCategorical ? table.spec(c).cardinality() : 1;
      encoded_span[c] = {offset, offset + width};
      offset += width;
    }
  }

  std::vector<double> importance(table.n_cols(), 0.0);
  const std::size_t n = x.rows();
  Tensor composite(1, x.cols());
  for (std::size_t s = 0; s < options.samples; ++s) {
    const std::size_t target_row = rng.uniform_index(n);
    const std::size_t background_row = rng.uniform_index(n);
    // Start from the background row; walk a random column permutation,
    // switching columns to the target row one at a time.
    for (std::size_t c = 0; c < x.cols(); ++c) composite(0, c) = x(background_row, c);
    const auto cls = y[target_row];
    auto value = [&]() {
      return static_cast<double>(mlp.predict_scores(composite)(0, cls));
    };
    double previous = value();
    std::vector<std::size_t> order = rng.permutation(feature_columns.size());
    for (std::size_t oi : order) {
      const std::size_t column = feature_columns[oi];
      const auto [lo, hi] = encoded_span[column];
      for (std::size_t c = lo; c < hi; ++c) composite(0, c) = x(target_row, c);
      const double current = value();
      importance[column] += std::abs(current - previous);
      previous = current;
    }
  }
  for (double& v : importance) v /= static_cast<double>(options.samples);
  return importance;
}

std::vector<std::size_t> rank_features_by_importance(const data::Table& table,
                                                     std::size_t target_column,
                                                     const ShapleyOptions& options, Rng& rng) {
  const auto importance = shapley_importance(table, target_column, options, rng);
  std::vector<std::size_t> ranked;
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    if (c != target_column) ranked.push_back(c);
  }
  std::stable_sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    return importance[a] > importance[b];
  });
  return ranked;
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_by_importance(
    const std::vector<std::size_t>& ranked, double fraction) {
  const auto top = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(ranked.size()) * fraction + 0.5));
  std::vector<std::size_t> head(ranked.begin(),
                                ranked.begin() + static_cast<std::ptrdiff_t>(
                                                     std::min(top, ranked.size())));
  std::vector<std::size_t> tail(ranked.begin() + static_cast<std::ptrdiff_t>(head.size()),
                                ranked.end());
  return {std::move(head), std::move(tail)};
}

}  // namespace gtv::eval
