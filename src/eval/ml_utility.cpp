#include "eval/ml_utility.h"

#include <cmath>
#include <stdexcept>

#include "eval/classifiers.h"
#include "eval/features.h"
#include "eval/metrics.h"

namespace gtv::eval {

UtilityScores evaluate_suite(const data::Table& train, const data::Table& test,
                             std::size_t target_column, Rng& rng,
                             std::vector<std::string>* names,
                             std::vector<UtilityScores>* per_classifier) {
  FeatureMatrix features;
  features.fit(train, target_column);
  const Tensor x_train = features.transform(train);
  const Tensor x_test = features.transform(test);
  const auto y_train = features.labels(train);
  const auto y_test = features.labels(test);

  UtilityScores average;
  auto suite = make_classifier_suite();
  std::size_t scored = 0;
  for (auto& classifier : suite) {
    classifier->fit(x_train, y_train, features.n_classes(), rng);
    const Tensor scores = classifier->predict_scores(x_test);
    std::vector<std::size_t> pred(scores.rows());
    for (std::size_t r = 0; r < scores.rows(); ++r) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < scores.cols(); ++c) {
        if (scores(r, c) > scores(r, best)) best = c;
      }
      pred[r] = best;
    }
    UtilityScores s;
    s.accuracy = accuracy(y_test, pred);
    s.f1 = macro_f1(y_test, pred, features.n_classes());
    try {
      s.auc = macro_auc(y_test, scores);
    } catch (const std::invalid_argument&) {
      s.auc = 0.5;  // degenerate test labels
    }
    average.accuracy += s.accuracy;
    average.f1 += s.f1;
    average.auc += s.auc;
    ++scored;
    if (names != nullptr) names->push_back(classifier->name());
    if (per_classifier != nullptr) per_classifier->push_back(s);
  }
  average.accuracy /= static_cast<double>(scored);
  average.f1 /= static_cast<double>(scored);
  average.auc /= static_cast<double>(scored);
  return average;
}

UtilityDifference ml_utility_difference(const data::Table& real_train,
                                        const data::Table& synthetic_train,
                                        const data::Table& real_test,
                                        std::size_t target_column, Rng& rng) {
  UtilityDifference result;
  result.real = evaluate_suite(real_train, real_test, target_column, rng,
                               &result.classifier_names, &result.per_classifier_real);
  std::vector<std::string> synth_names;
  result.synthetic = evaluate_suite(synthetic_train, real_test, target_column, rng,
                                    &synth_names, &result.per_classifier_synthetic);
  result.difference.accuracy = std::abs(result.real.accuracy - result.synthetic.accuracy);
  result.difference.f1 = std::abs(result.real.f1 - result.synthetic.f1);
  result.difference.auc = std::abs(result.real.auc - result.synthetic.auc);
  return result;
}

}  // namespace gtv::eval
