// Feature preparation for the ML-utility classifiers: categorical columns
// are one-hot encoded, continuous/mixed columns are standardized with
// statistics fitted on the training split (the usual sklearn-style
// fit/transform contract).
#pragma once

#include <cstddef>
#include <vector>

#include "data/table.h"
#include "tensor/tensor.h"

namespace gtv::eval {

class FeatureMatrix {
 public:
  // Fits scalers on `train` using every column except `target_column`.
  void fit(const data::Table& train, std::size_t target_column);

  // Dense design matrix for a table with the fitted schema.
  Tensor transform(const data::Table& table) const;
  // Target labels (category indices) of the target column.
  std::vector<std::size_t> labels(const data::Table& table) const;

  std::size_t n_features() const { return width_; }
  std::size_t n_classes() const { return n_classes_; }
  std::size_t target_column() const { return target_; }

 private:
  struct ColumnScaler {
    std::size_t source = 0;
    bool categorical = false;
    std::size_t cardinality = 0;  // categorical
    double mean = 0.0;            // continuous
    double std = 1.0;
  };
  std::vector<ColumnScaler> scalers_;
  std::size_t target_ = 0;
  std::size_t n_classes_ = 0;
  std::size_t width_ = 0;
};

}  // namespace gtv::eval
