// Statistical-similarity metrics between a real and a synthetic table
// (paper §4.2.2):
//
//   - Average Jensen-Shannon divergence over categorical columns
//   - Average 1-D Wasserstein distance over continuous / mixed columns
//     (computed on min-max-normalized values so columns are comparable)
//   - dython-style pairwise association matrix (Pearson for cont-cont,
//     correlation ratio for cat-cont, Cramér's V for cat-cat) and the
//     l2 norm of the real-vs-synthetic difference ("Diff. Corr."), with
//     Avg-client / Across-client variants for the two-client experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "data/table.h"
#include "tensor/tensor.h"

namespace gtv::eval {

// JSD (base 2, in [0,1]) between the category distributions of one column.
double jensen_shannon_divergence(const std::vector<double>& p, const std::vector<double>& q);
// Average JSD over all categorical columns. Returns 0 if none.
double average_jsd(const data::Table& real, const data::Table& synthetic);

// 1-D Wasserstein distance between two samples (empirical quantile
// coupling). Values are normalized by the real column's min-max range.
double wasserstein_distance(std::vector<double> a, std::vector<double> b);
// Average normalized WD over continuous + mixed columns. Returns 0 if none.
double average_wd(const data::Table& real, const data::Table& synthetic);

// Pairwise association matrix of a table (symmetric, diagonal 1):
//   cont-cont: |Pearson|, cat-cont: correlation ratio, cat-cat: Cramér's V.
Tensor association_matrix(const data::Table& table);

// ||assoc(real) - assoc(synthetic)||_2 over all pairs (Frobenius norm).
double correlation_difference(const data::Table& real, const data::Table& synthetic);

// Frobenius norm of the difference restricted to pairs (i in cols_a,
// j in cols_b) — the Across-client variant when cols_a / cols_b are the two
// clients' column sets, computed on the joined tables.
double correlation_difference_between(const data::Table& real, const data::Table& synthetic,
                                      const std::vector<std::size_t>& cols_a,
                                      const std::vector<std::size_t>& cols_b);

struct SimilarityReport {
  double avg_jsd = 0.0;
  double avg_wd = 0.0;
  double diff_corr = 0.0;
};
SimilarityReport similarity_report(const data::Table& real, const data::Table& synthetic);

}  // namespace gtv::eval
