// The five classifier families of the paper's ML-utility pipeline
// (decision tree, linear SVM, random forest, multinomial logistic
// regression, MLP), implemented from scratch behind one interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace gtv::eval {

class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual void fit(const Tensor& x, const std::vector<std::size_t>& y, std::size_t n_classes,
                   Rng& rng) = 0;
  // Per-class scores (probabilities where available, decision values for
  // the SVM); shape n x n_classes. Higher is more likely.
  virtual Tensor predict_scores(const Tensor& x) const = 0;
  virtual std::string name() const = 0;

  std::vector<std::size_t> predict(const Tensor& x) const;
};

// Multinomial logistic regression trained by full-batch gradient descent
// with L2 regularization.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(std::size_t epochs = 200, float lr = 0.5f, float l2 = 1e-4f);
  void fit(const Tensor& x, const std::vector<std::size_t>& y, std::size_t n_classes,
           Rng& rng) override;
  Tensor predict_scores(const Tensor& x) const override;
  std::string name() const override { return "logistic_regression"; }

 private:
  std::size_t epochs_;
  float lr_;
  float l2_;
  Tensor weights_;  // (features+1) x classes, last row is the bias
};

// Linear SVM: one-vs-rest squared-hinge, SGD with L2.
class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(std::size_t epochs = 60, float lr = 0.05f, float l2 = 1e-4f);
  void fit(const Tensor& x, const std::vector<std::size_t>& y, std::size_t n_classes,
           Rng& rng) override;
  Tensor predict_scores(const Tensor& x) const override;
  std::string name() const override { return "linear_svm"; }

 private:
  std::size_t epochs_;
  float lr_;
  float l2_;
  Tensor weights_;
};

// One-hidden-layer MLP (100 relu units, matching the paper's evaluation
// model), trained with Adam on softmax cross-entropy.
class MlpClassifier : public Classifier {
 public:
  explicit MlpClassifier(std::size_t hidden = 100, std::size_t epochs = 60,
                         std::size_t batch = 128);
  void fit(const Tensor& x, const std::vector<std::size_t>& y, std::size_t n_classes,
           Rng& rng) override;
  Tensor predict_scores(const Tensor& x) const override;
  std::string name() const override { return "mlp"; }

 private:
  std::size_t hidden_;
  std::size_t epochs_;
  std::size_t batch_;
  Tensor w1_, b1_, w2_, b2_;
};

// The full classifier suite used by the ML-utility pipeline (decision tree
// and random forest live in tree.h).
std::vector<std::unique_ptr<Classifier>> make_classifier_suite();

}  // namespace gtv::eval
