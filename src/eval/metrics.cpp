#include "eval/metrics.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gtv::eval {

double accuracy(const std::vector<std::size_t>& truth, const std::vector<std::size_t>& pred) {
  if (truth.size() != pred.size() || truth.empty()) {
    throw std::invalid_argument("accuracy: size mismatch or empty");
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) hits += truth[i] == pred[i];
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

double macro_f1(const std::vector<std::size_t>& truth, const std::vector<std::size_t>& pred,
                std::size_t n_classes) {
  if (truth.size() != pred.size() || truth.empty()) {
    throw std::invalid_argument("macro_f1: size mismatch or empty");
  }
  double total = 0.0;
  for (std::size_t k = 0; k < n_classes; ++k) {
    std::size_t tp = 0, fp = 0, fn = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const bool is_true = truth[i] == k;
      const bool is_pred = pred[i] == k;
      tp += is_true && is_pred;
      fp += !is_true && is_pred;
      fn += is_true && !is_pred;
    }
    const double denom = 2.0 * tp + fp + fn;
    total += denom > 0.0 ? 2.0 * tp / denom : 0.0;
  }
  return total / static_cast<double>(n_classes);
}

double binary_auc(const std::vector<std::size_t>& truth, const std::vector<double>& scores) {
  if (truth.size() != scores.size() || truth.empty()) {
    throw std::invalid_argument("binary_auc: size mismatch or empty");
  }
  // Average ranks (ties share the mean rank), then Mann-Whitney.
  std::vector<std::size_t> order(truth.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  std::vector<double> ranks(truth.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  double rank_sum = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t k = 0; k < truth.size(); ++k) {
    if (truth[k] == 1) {
      rank_sum += ranks[k];
      ++n_pos;
    }
  }
  const std::size_t n_neg = truth.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) {
    throw std::invalid_argument("binary_auc: needs both classes present");
  }
  const double u = rank_sum - static_cast<double>(n_pos) * (n_pos + 1) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double macro_auc(const std::vector<std::size_t>& truth, const Tensor& scores) {
  if (truth.size() != scores.rows()) throw std::invalid_argument("macro_auc: size mismatch");
  double total = 0.0;
  std::size_t used = 0;
  for (std::size_t k = 0; k < scores.cols(); ++k) {
    std::vector<std::size_t> binary(truth.size());
    std::vector<double> class_scores(truth.size());
    std::size_t n_pos = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      binary[i] = truth[i] == k ? 1 : 0;
      n_pos += binary[i];
      class_scores[i] = scores(i, k);
    }
    if (n_pos == 0 || n_pos == truth.size()) continue;
    total += binary_auc(binary, class_scores);
    ++used;
  }
  if (used == 0) throw std::invalid_argument("macro_auc: no scorable class");
  return total / static_cast<double>(used);
}

}  // namespace gtv::eval
