#include "eval/mia.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace gtv::eval {

namespace {

using data::ColumnType;
using data::Table;

// Per-column inverse scales from the synthetic table.
std::vector<double> column_scales(const Table& synthetic) {
  std::vector<double> scales(synthetic.n_cols(), 1.0);
  for (std::size_t c = 0; c < synthetic.n_cols(); ++c) {
    if (synthetic.spec(c).type == ColumnType::kCategorical) continue;
    const auto& col = synthetic.column(c);
    const auto [mn, mx] = std::minmax_element(col.begin(), col.end());
    scales[c] = 1.0 / std::max(*mx - *mn, 1e-9);
  }
  return scales;
}

double nearest_distance(const Table& candidates, std::size_t row, const Table& synthetic,
                        const std::vector<double>& scales) {
  double best = std::numeric_limits<double>::max();
  for (std::size_t s = 0; s < synthetic.n_rows(); ++s) {
    double acc = 0.0;
    for (std::size_t c = 0; c < synthetic.n_cols() && acc < best; ++c) {
      if (synthetic.spec(c).type == ColumnType::kCategorical) {
        acc += candidates.cell(row, c) == synthetic.cell(s, c) ? 0.0 : 1.0;
      } else {
        const double d = (candidates.cell(row, c) - synthetic.cell(s, c)) * scales[c];
        acc += d * d;
      }
    }
    best = std::min(best, acc);
  }
  return std::sqrt(best);
}

}  // namespace

MiaResult membership_inference(const Table& members, const Table& non_members,
                               const Table& synthetic) {
  if (!members.same_schema(synthetic) || !non_members.same_schema(synthetic)) {
    throw std::invalid_argument("membership_inference: schema mismatch");
  }
  if (members.n_rows() == 0 || non_members.n_rows() == 0 || synthetic.n_rows() == 0) {
    throw std::invalid_argument("membership_inference: empty table");
  }
  const auto scales = column_scales(synthetic);
  std::vector<double> member_d(members.n_rows()), non_member_d(non_members.n_rows());
  for (std::size_t r = 0; r < members.n_rows(); ++r) {
    member_d[r] = nearest_distance(members, r, synthetic, scales);
  }
  for (std::size_t r = 0; r < non_members.n_rows(); ++r) {
    non_member_d[r] = nearest_distance(non_members, r, synthetic, scales);
  }

  MiaResult result;
  double m_total = 0.0, n_total = 0.0;
  for (double d : member_d) m_total += d;
  for (double d : non_member_d) n_total += d;
  result.member_mean = m_total / static_cast<double>(member_d.size());
  result.non_member_mean = n_total / static_cast<double>(non_member_d.size());
  // AUC of "-distance" as a membership score: P(member closer than non-member).
  double wins = 0.0;
  for (double m : member_d) {
    for (double n : non_member_d) {
      if (m < n) {
        wins += 1.0;
      } else if (m == n) {
        wins += 0.5;
      }
    }
  }
  result.auc =
      wins / (static_cast<double>(member_d.size()) * static_cast<double>(non_member_d.size()));
  return result;
}

}  // namespace gtv::eval
