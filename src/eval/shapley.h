// Monte-Carlo permutation-sampling estimate of Shapley feature importance
// (Lundberg & Lee's sampling approximation), used to rank features for the
// motivation case study (Fig. 3) and the 1090/5050/9010 data-partition
// experiments. The value function is the MLP's predicted probability of
// the sample's true class; marginal contributions are averaged over random
// permutations and background rows.
#pragma once

#include <cstddef>
#include <vector>

#include "data/table.h"
#include "tensor/rng.h"

namespace gtv::eval {

struct ShapleyOptions {
  std::size_t samples = 200;      // permutation draws
  std::size_t mlp_epochs = 40;    // epochs for the explained MLP
};

// Mean |Shapley value| per original table column (target excluded; its
// entry is 0). Higher = more important for predicting the target.
std::vector<double> shapley_importance(const data::Table& table, std::size_t target_column,
                                       const ShapleyOptions& options, Rng& rng);

// Column indices (target excluded) sorted by descending importance.
std::vector<std::size_t> rank_features_by_importance(const data::Table& table,
                                                     std::size_t target_column,
                                                     const ShapleyOptions& options, Rng& rng);

// Splits the ranked features into (top `fraction`, rest) — the paper's
// Setting-A / Setting-B construction. The top group has at least one
// feature.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_by_importance(
    const std::vector<std::size_t>& ranked, double fraction);

}  // namespace gtv::eval
