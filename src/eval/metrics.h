// Classification metrics: accuracy, macro F1, and ROC-AUC (rank-based,
// one-vs-rest macro-averaged for multiclass).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace gtv::eval {

double accuracy(const std::vector<std::size_t>& truth, const std::vector<std::size_t>& pred);

// Macro-averaged F1 over `n_classes` classes (absent classes count as 0).
double macro_f1(const std::vector<std::size_t>& truth, const std::vector<std::size_t>& pred,
                std::size_t n_classes);

// Binary AUC from per-sample scores for the positive class (Mann-Whitney
// rank statistic with tie correction).
double binary_auc(const std::vector<std::size_t>& truth, const std::vector<double>& scores);

// Macro one-vs-rest AUC from an (n x n_classes) score matrix. Classes with
// no positive or no negative examples are skipped.
double macro_auc(const std::vector<std::size_t>& truth, const Tensor& scores);

}  // namespace gtv::eval
