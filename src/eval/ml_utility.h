// The paper's ML-utility pipeline (§4.2.1): train the five-classifier
// suite once on real training data and once on synthetic data of the same
// size, evaluate both on the held-out real test set, and report the
// (real - synthetic) differences in accuracy, macro F1 and macro AUC.
// Lower difference = better synthetic data.
#pragma once

#include <string>
#include <vector>

#include "data/table.h"
#include "tensor/rng.h"

namespace gtv::eval {

struct UtilityScores {
  double accuracy = 0.0;
  double f1 = 0.0;
  double auc = 0.0;
};

struct UtilityDifference {
  UtilityScores real;        // suite trained on real data
  UtilityScores synthetic;   // suite trained on synthetic data
  UtilityScores difference;  // real - synthetic (per metric)
  // Per-classifier breakdown (parallel to make_classifier_suite() order).
  std::vector<std::string> classifier_names;
  std::vector<UtilityScores> per_classifier_real;
  std::vector<UtilityScores> per_classifier_synthetic;
};

// `target_column` indexes a categorical column present in all three tables.
UtilityDifference ml_utility_difference(const data::Table& real_train,
                                        const data::Table& synthetic_train,
                                        const data::Table& real_test,
                                        std::size_t target_column, Rng& rng);

// Averaged scores of the suite trained on `train`, tested on `test`.
UtilityScores evaluate_suite(const data::Table& train, const data::Table& test,
                             std::size_t target_column, Rng& rng,
                             std::vector<std::string>* names = nullptr,
                             std::vector<UtilityScores>* per_classifier = nullptr);

}  // namespace gtv::eval
