#include "eval/similarity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gtv::eval {

namespace {

using data::ColumnType;
using data::Table;

std::vector<double> category_distribution(const Table& t, std::size_t col) {
  const std::size_t k = t.spec(col).cardinality();
  std::vector<double> dist(k, 0.0);
  for (double v : t.column(col)) {
    const auto idx = static_cast<std::size_t>(v);
    if (idx < k) dist[idx] += 1.0;
  }
  const double total = static_cast<double>(t.n_rows());
  for (double& d : dist) d /= total;
  return dist;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 1e-12 || vb <= 1e-12) return 0.0;
  return cov / std::sqrt(va * vb);
}

// Correlation ratio eta: categorical x -> continuous y.
double correlation_ratio(const std::vector<double>& categories, std::size_t cardinality,
                         const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<double> sums(cardinality, 0.0);
  std::vector<std::size_t> counts(cardinality, 0);
  double grand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(categories[i]);
    if (k < cardinality) {
      sums[k] += values[i];
      ++counts[k];
    }
    grand += values[i];
  }
  grand /= static_cast<double>(n);
  double between = 0.0, total = 0.0;
  for (std::size_t k = 0; k < cardinality; ++k) {
    if (counts[k] == 0) continue;
    const double mean_k = sums[k] / static_cast<double>(counts[k]);
    between += static_cast<double>(counts[k]) * (mean_k - grand) * (mean_k - grand);
  }
  for (double v : values) total += (v - grand) * (v - grand);
  if (total <= 1e-12) return 0.0;
  return std::sqrt(std::max(0.0, between / total));
}

// Cramér's V between two categorical columns.
double cramers_v(const std::vector<double>& a, std::size_t ka, const std::vector<double>& b,
                 std::size_t kb) {
  const std::size_t n = a.size();
  std::vector<double> joint(ka * kb, 0.0), pa(ka, 0.0), pb(kb, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto ia = static_cast<std::size_t>(a[i]);
    const auto ib = static_cast<std::size_t>(b[i]);
    if (ia >= ka || ib >= kb) continue;
    joint[ia * kb + ib] += 1.0;
    pa[ia] += 1.0;
    pb[ib] += 1.0;
  }
  double chi2 = 0.0;
  for (std::size_t ia = 0; ia < ka; ++ia) {
    for (std::size_t ib = 0; ib < kb; ++ib) {
      const double expected = pa[ia] * pb[ib] / static_cast<double>(n);
      if (expected <= 1e-12) continue;
      const double diff = joint[ia * kb + ib] - expected;
      chi2 += diff * diff / expected;
    }
  }
  const std::size_t denom_dim = std::min(ka, kb);
  if (denom_dim < 2) return 0.0;
  const double phi2 = chi2 / static_cast<double>(n);
  return std::sqrt(phi2 / static_cast<double>(denom_dim - 1));
}

double association(const Table& t, std::size_t i, std::size_t j) {
  const bool cat_i = t.spec(i).type == ColumnType::kCategorical;
  const bool cat_j = t.spec(j).type == ColumnType::kCategorical;
  if (!cat_i && !cat_j) return std::abs(pearson(t.column(i), t.column(j)));
  if (cat_i && cat_j) {
    return cramers_v(t.column(i), t.spec(i).cardinality(), t.column(j),
                     t.spec(j).cardinality());
  }
  if (cat_i) return correlation_ratio(t.column(i), t.spec(i).cardinality(), t.column(j));
  return correlation_ratio(t.column(j), t.spec(j).cardinality(), t.column(i));
}

}  // namespace

double jensen_shannon_divergence(const std::vector<double>& p, const std::vector<double>& q) {
  if (p.size() != q.size() || p.empty()) {
    throw std::invalid_argument("jensen_shannon_divergence: size mismatch");
  }
  auto kl = [](const std::vector<double>& a, const std::vector<double>& m) {
    double total = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] > 1e-12 && m[i] > 1e-12) total += a[i] * std::log2(a[i] / m[i]);
    }
    return total;
  };
  std::vector<double> m(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  return std::clamp(0.5 * kl(p, m) + 0.5 * kl(q, m), 0.0, 1.0);
}

double average_jsd(const Table& real, const Table& synthetic) {
  if (!real.same_schema(synthetic)) throw std::invalid_argument("average_jsd: schema mismatch");
  double total = 0.0;
  std::size_t used = 0;
  for (std::size_t c = 0; c < real.n_cols(); ++c) {
    if (real.spec(c).type != ColumnType::kCategorical) continue;
    total += jensen_shannon_divergence(category_distribution(real, c),
                                       category_distribution(synthetic, c));
    ++used;
  }
  return used > 0 ? total / static_cast<double>(used) : 0.0;
}

double wasserstein_distance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("wasserstein_distance: empty sample");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Quantile coupling on a common grid of max(|a|,|b|) points.
  const std::size_t grid = std::max(a.size(), b.size());
  auto quantile = [](const std::vector<double>& v, double u) {
    const double pos = u * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  };
  double total = 0.0;
  for (std::size_t g = 0; g < grid; ++g) {
    const double u = (static_cast<double>(g) + 0.5) / static_cast<double>(grid);
    total += std::abs(quantile(a, u) - quantile(b, u));
  }
  return total / static_cast<double>(grid);
}

double average_wd(const Table& real, const Table& synthetic) {
  if (!real.same_schema(synthetic)) throw std::invalid_argument("average_wd: schema mismatch");
  double total = 0.0;
  std::size_t used = 0;
  for (std::size_t c = 0; c < real.n_cols(); ++c) {
    if (real.spec(c).type == ColumnType::kCategorical) continue;
    std::vector<double> a = real.column(c);
    std::vector<double> b = synthetic.column(c);
    // Normalize by the real column's range so columns are comparable.
    const auto [mn_it, mx_it] = std::minmax_element(a.begin(), a.end());
    const double lo = *mn_it;
    const double range = std::max(*mx_it - lo, 1e-12);
    for (double& v : a) v = (v - lo) / range;
    for (double& v : b) v = (v - lo) / range;
    total += wasserstein_distance(std::move(a), std::move(b));
    ++used;
  }
  return used > 0 ? total / static_cast<double>(used) : 0.0;
}

Tensor association_matrix(const Table& table) {
  const std::size_t n = table.n_cols();
  Tensor out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out(i, i) = 1.0f;
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto value = static_cast<float>(association(table, i, j));
      out(i, j) = value;
      out(j, i) = value;
    }
  }
  return out;
}

double correlation_difference(const Table& real, const Table& synthetic) {
  if (!real.same_schema(synthetic)) {
    throw std::invalid_argument("correlation_difference: schema mismatch");
  }
  Tensor diff = association_matrix(real) - association_matrix(synthetic);
  double total = 0.0;
  for (std::size_t i = 0; i < diff.rows(); ++i) {
    for (std::size_t j = 0; j < diff.cols(); ++j) {
      total += static_cast<double>(diff(i, j)) * diff(i, j);
    }
  }
  return std::sqrt(total);
}

double correlation_difference_between(const Table& real, const Table& synthetic,
                                      const std::vector<std::size_t>& cols_a,
                                      const std::vector<std::size_t>& cols_b) {
  if (!real.same_schema(synthetic)) {
    throw std::invalid_argument("correlation_difference_between: schema mismatch");
  }
  Tensor real_assoc = association_matrix(real);
  Tensor synth_assoc = association_matrix(synthetic);
  double total = 0.0;
  for (std::size_t a : cols_a) {
    for (std::size_t b : cols_b) {
      const double diff =
          static_cast<double>(real_assoc(a, b)) - static_cast<double>(synth_assoc(a, b));
      total += diff * diff;
    }
  }
  return std::sqrt(total);
}

SimilarityReport similarity_report(const Table& real, const Table& synthetic) {
  SimilarityReport report;
  report.avg_jsd = average_jsd(real, synthetic);
  report.avg_wd = average_wd(real, synthetic);
  report.diff_corr = correlation_difference(real, synthetic);
  return report;
}

}  // namespace gtv::eval
