// Membership inference against published synthetic data (paper §3.3).
//
// Implements the black-box, synthetic-data-only attack family of
// Hilprecht et al. / GAN-Leaks: the adversary scores a candidate record by
// its distance to the closest published synthetic row (closer = more
// likely a training member). Success is measured as the Mann-Whitney AUC
// of that score separating true members (training rows) from non-members
// (held-out rows). 0.5 = no leakage; the paper argues GTV's split
// generator and publication shuffle keep the stronger white-box variants
// unavailable, leaving only this weak signal.
#pragma once

#include "data/table.h"

namespace gtv::eval {

struct MiaResult {
  double auc = 0.5;          // membership separability (0.5 = safe)
  double member_mean = 0.0;  // mean distance of members to nearest synthetic row
  double non_member_mean = 0.0;
};

// Distances are computed in a normalized feature space: continuous/mixed
// columns are scaled by the synthetic column's min-max range, categorical
// mismatches cost 1. All three tables must share the schema.
MiaResult membership_inference(const data::Table& members, const data::Table& non_members,
                               const data::Table& synthetic);

}  // namespace gtv::eval
