// Little-endian byte-buffer codec helpers shared by the serialization
// envelopes (nn::serialize, encode::TableEncoder, gtv::serve). Writers
// append to a std::vector<std::uint8_t>; the Reader is a bounds-checked
// cursor that throws std::runtime_error on truncation, so every consumer
// gets exact-size validation for free.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace gtv::bytes {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

inline void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

// Bounds-checked little-endian cursor. `who` prefixes error messages.
struct Reader {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::size_t offset = 0;
  const char* who = "decode";

  Reader(const std::uint8_t* d, std::size_t n, const char* w, std::size_t start = 0)
      : data(d), size(n), offset(start), who(w) {}

  void need(std::size_t n, const char* what) const {
    if (offset > size || size - offset < n) {
      throw std::runtime_error(std::string(who) + ": truncated input (" + what + ")");
    }
  }
  std::uint8_t u8(const char* what) {
    need(1, what);
    return data[offset++];
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = get_u32(data + offset);
    offset += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = get_u64(data + offset);
    offset += 8;
    return v;
  }
  float f32(const char* what) {
    const std::uint32_t bits = u32(what);
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double f64(const char* what) {
    const std::uint64_t bits = u64(what);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str(const char* what) {
    const std::uint64_t len = u64(what);
    if (len > size) throw std::runtime_error(std::string(who) + ": implausible string length");
    need(static_cast<std::size_t>(len), what);
    std::string s(reinterpret_cast<const char*>(data + offset),
                  static_cast<std::size_t>(len));
    offset += static_cast<std::size_t>(len);
    return s;
  }
  bool done() const { return offset == size; }
};

}  // namespace gtv::bytes
