#include "tensor/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gtv {

struct ThreadPool::Impl {
  // Jobs are shared so a straggling worker that grabbed the pointer after
  // the work was fully consumed can still safely observe `next >= n`.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
  };

  // Per-worker busy/idle accounting (obs). Slot 0 belongs to whichever
  // caller thread participates in parallel_for; slots 1..N are the pool
  // workers. Counter bumps are relaxed atomics (always on); the clock reads
  // behind them only happen while obs::timing_enabled().
  struct WorkerStats {
    obs::Counter* busy_us = nullptr;
    obs::Counter* idle_us = nullptr;
    obs::Counter* chunks = nullptr;
  };

  std::vector<std::thread> threads;
  std::vector<WorkerStats> stats;  // size workers (spawned + caller slot 0)
  obs::Counter* calls = nullptr;       // parallel_for invocations
  obs::Counter* dispatched = nullptr;  // invocations that woke the pool
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::shared_ptr<Job> job;
  std::uint64_t job_serial = 0;
  bool shutdown = false;

  void worker_loop(std::size_t slot) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> local;
      {
        const bool timed = obs::timing_enabled();
        const std::uint64_t wait_start = timed ? obs::TraceSink::now_us() : 0;
        std::unique_lock<std::mutex> lock(mu);
        cv_work.wait(lock, [&] { return shutdown || job_serial != seen; });
        if (timed) stats[slot].idle_us->add(obs::TraceSink::now_us() - wait_start);
        if (shutdown) return;
        seen = job_serial;
        local = job;
      }
      if (local) run_chunks(*local, slot);
    }
  }

  void run_chunks(Job& j, std::size_t slot) {
    const bool timed = obs::timing_enabled();
    for (;;) {
      const std::size_t begin = j.next.fetch_add(j.chunk);
      if (begin >= j.n) break;
      const std::size_t end = std::min(j.n, begin + j.chunk);
      const std::uint64_t start = timed ? obs::TraceSink::now_us() : 0;
      (*j.fn)(begin, end);
      if (timed) stats[slot].busy_us->add(obs::TraceSink::now_us() - start);
      stats[slot].chunks->add();
      if (j.remaining.fetch_sub(end - begin) == end - begin) {
        std::lock_guard<std::mutex> lock(mu);
        cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  const unsigned hw = std::thread::hardware_concurrency();
  workers_ = std::min<std::size_t>(hw == 0 ? 4 : hw, 16);
  const std::size_t spawned = workers_ > 1 ? workers_ - 1 : 0;
  auto& registry = obs::MetricsRegistry::instance();
  impl_->calls = &registry.counter("threadpool.parallel_for");
  impl_->dispatched = &registry.counter("threadpool.dispatched");
  impl_->stats.resize(spawned + 1);
  for (std::size_t slot = 0; slot <= spawned; ++slot) {
    const std::string prefix =
        slot == 0 ? "threadpool.caller" : "threadpool.worker" + std::to_string(slot);
    impl_->stats[slot].busy_us = &registry.counter(prefix + ".busy_us");
    impl_->stats[slot].idle_us = &registry.counter(prefix + ".idle_us");
    impl_->stats[slot].chunks = &registry.counter(prefix + ".chunks");
  }
  impl_->threads.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    impl_->threads.emplace_back([this, i] { impl_->worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  impl_->calls->add();
  grain = std::max<std::size_t>(grain, 1);
  if (n <= grain || workers_ <= 1) {
    fn(0, n);
    return;
  }
  impl_->dispatched->add();
  auto job = std::make_shared<Impl::Job>();
  job->fn = &fn;
  job->n = n;
  const std::size_t target_chunks = workers_ * 4;
  job->chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  job->remaining.store(n);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = job;
    ++impl_->job_serial;
  }
  impl_->cv_work.notify_all();
  impl_->run_chunks(*job, /*slot=*/0);  // caller participates
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv_done.wait(lock, [&] { return job->remaining.load() == 0; });
  impl_->job.reset();
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::instance().parallel_for(n, grain, fn);
}

}  // namespace gtv
