#include "tensor/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/thread_name.h"
#include "obs/trace.h"

namespace gtv {

namespace {

// True while the current thread is executing a parallel_for body — either as
// a pool worker or as a caller participating in its own job. A parallel_for
// issued from such a context (e.g. a kernel invoked inside another kernel's
// chunk) must not enqueue: the nested caller could not help drain the pool
// it is itself occupying, so nested calls run serially instead.
thread_local bool tl_inside_chunk = false;

std::size_t configured_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  std::size_t workers = std::min<std::size_t>(hw == 0 ? 4 : hw, 16);
  // GTV_THREADS overrides the hardware default: =1 forces fully serial
  // execution (deterministic CI), larger values cap the pool size.
  if (const char* env = std::getenv("GTV_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      workers = std::min<std::size_t>(parsed, 64);
    }
  }
  return workers;
}

}  // namespace

struct ThreadPool::Impl {
  // One Job per parallel_for call. Jobs are independent objects shared via
  // shared_ptr, so any number of caller threads can have jobs in flight at
  // once: a second caller enqueues its own job instead of overwriting a
  // shared slot, and a straggling worker that grabbed the pointer after the
  // work was fully claimed safely observes `next >= n`.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
  };

  // Per-worker busy/idle accounting (obs). Slot 0 belongs to whichever
  // caller thread participates in parallel_for; slots 1..N are the pool
  // workers. Counter bumps are relaxed atomics (always on); the clock reads
  // behind them only happen while obs::timing_enabled().
  struct WorkerStats {
    obs::Counter* busy_us = nullptr;
    obs::Counter* idle_us = nullptr;
    obs::Counter* chunks = nullptr;
  };

  std::vector<std::thread> threads;
  std::vector<WorkerStats> stats;  // size workers (spawned + caller slot 0)
  obs::Counter* calls = nullptr;       // parallel_for invocations
  obs::Counter* dispatched = nullptr;  // invocations that woke the pool
  obs::Counter* nested = nullptr;      // nested invocations run serially
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  // All jobs with unclaimed chunks, in submission order. Exhausted jobs are
  // pruned by whichever thread notices next >= n.
  std::vector<std::shared_ptr<Job>> active;
  bool shutdown = false;

  bool work_available() const {
    for (const auto& job : active) {
      if (job->next.load(std::memory_order_relaxed) < job->n) return true;
    }
    return false;
  }

  std::shared_ptr<Job> pick_job() {
    for (const auto& job : active) {
      if (job->next.load(std::memory_order_relaxed) < job->n) return job;
    }
    return nullptr;
  }

  void remove_job(const std::shared_ptr<Job>& job) {
    active.erase(std::remove(active.begin(), active.end(), job), active.end());
  }

  void worker_loop(std::size_t slot) {
    obs::set_current_thread_name(("gtv-pool-" + std::to_string(slot)).c_str());
    for (;;) {
      std::shared_ptr<Job> local;
      {
        const bool timed = obs::timing_enabled();
        const std::uint64_t wait_start = timed ? obs::TraceSink::now_us() : 0;
        std::unique_lock<std::mutex> lock(mu);
        cv_work.wait(lock, [&] { return shutdown || work_available(); });
        if (timed) stats[slot].idle_us->add(obs::TraceSink::now_us() - wait_start);
        if (shutdown) return;
        local = pick_job();
      }
      if (local) {
        run_chunks(*local, slot);
        std::lock_guard<std::mutex> lock(mu);
        if (local->next.load(std::memory_order_relaxed) >= local->n) remove_job(local);
      }
    }
  }

  void run_chunks(Job& j, std::size_t slot) {
    const bool timed = obs::timing_enabled();
    for (;;) {
      const std::size_t begin = j.next.fetch_add(j.chunk);
      if (begin >= j.n) break;
      const std::size_t end = std::min(j.n, begin + j.chunk);
      const std::uint64_t start = timed ? obs::TraceSink::now_us() : 0;
      {
        tl_inside_chunk = true;
        (*j.fn)(begin, end);
        tl_inside_chunk = false;
      }
      if (timed) stats[slot].busy_us->add(obs::TraceSink::now_us() - start);
      stats[slot].chunks->add();
      if (j.remaining.fetch_sub(end - begin) == end - begin) {
        std::lock_guard<std::mutex> lock(mu);
        cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  workers_ = configured_workers();
  const std::size_t spawned = workers_ > 1 ? workers_ - 1 : 0;
  auto& registry = obs::MetricsRegistry::instance();
  impl_->calls = &registry.counter("threadpool.parallel_for");
  impl_->dispatched = &registry.counter("threadpool.dispatched");
  impl_->nested = &registry.counter("threadpool.nested_serial");
  impl_->stats.resize(spawned + 1);
  for (std::size_t slot = 0; slot <= spawned; ++slot) {
    const std::string prefix =
        slot == 0 ? "threadpool.caller" : "threadpool.worker" + std::to_string(slot);
    impl_->stats[slot].busy_us = &registry.counter(prefix + ".busy_us");
    impl_->stats[slot].idle_us = &registry.counter(prefix + ".idle_us");
    impl_->stats[slot].chunks = &registry.counter(prefix + ".chunks");
  }
  impl_->threads.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    impl_->threads.emplace_back([this, i] { impl_->worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  impl_->calls->add();
  grain = std::max<std::size_t>(grain, 1);
  if (tl_inside_chunk) {
    // Nested call from inside another parallel_for body: run serially. The
    // guard flag stays set so deeper nesting short-circuits the same way.
    impl_->nested->add();
    fn(0, n);
    return;
  }
  if (n <= grain || workers_ <= 1) {
    fn(0, n);
    return;
  }
  impl_->dispatched->add();
  auto job = std::make_shared<Impl::Job>();
  job->fn = &fn;
  job->n = n;
  const std::size_t target_chunks = workers_ * 4;
  job->chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  job->remaining.store(n);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->active.push_back(job);
  }
  impl_->cv_work.notify_all();
  impl_->run_chunks(*job, /*slot=*/0);  // caller participates
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv_done.wait(lock, [&] { return job->remaining.load() == 0; });
  impl_->remove_job(job);
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::instance().parallel_for(n, grain, fn);
}

}  // namespace gtv
