#include "tensor/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gtv {

struct ThreadPool::Impl {
  // Jobs are shared so a straggling worker that grabbed the pointer after
  // the work was fully consumed can still safely observe `next >= n`.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
  };

  std::vector<std::thread> threads;
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::shared_ptr<Job> job;
  std::uint64_t job_serial = 0;
  bool shutdown = false;

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> local;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_work.wait(lock, [&] { return shutdown || job_serial != seen; });
        if (shutdown) return;
        seen = job_serial;
        local = job;
      }
      if (local) run_chunks(*local);
    }
  }

  void run_chunks(Job& j) {
    for (;;) {
      const std::size_t begin = j.next.fetch_add(j.chunk);
      if (begin >= j.n) break;
      const std::size_t end = std::min(j.n, begin + j.chunk);
      (*j.fn)(begin, end);
      if (j.remaining.fetch_sub(end - begin) == end - begin) {
        std::lock_guard<std::mutex> lock(mu);
        cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  const unsigned hw = std::thread::hardware_concurrency();
  workers_ = std::min<std::size_t>(hw == 0 ? 4 : hw, 16);
  const std::size_t spawned = workers_ > 1 ? workers_ - 1 : 0;
  impl_->threads.reserve(spawned);
  for (std::size_t i = 0; i < spawned; ++i) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (n <= grain || workers_ <= 1) {
    fn(0, n);
    return;
  }
  auto job = std::make_shared<Impl::Job>();
  job->fn = &fn;
  job->n = n;
  const std::size_t target_chunks = workers_ * 4;
  job->chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  job->remaining.store(n);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = job;
    ++impl_->job_serial;
  }
  impl_->cv_work.notify_all();
  impl_->run_chunks(*job);  // caller participates
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv_done.wait(lock, [&] { return job->remaining.load() == 0; });
  impl_->job.reset();
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::instance().parallel_for(n, grain, fn);
}

}  // namespace gtv
