// Internal dense-matmul kernels behind Tensor::matmul / matmul_nt / matmul_tn.
//
// All matrices are row-major float32. Every kernel contracts over k in
// ascending order with a single float accumulator per output element, which
// makes the result bit-identical to the naive
//
//   for i: for kk: for j: c[i][j] += a[i][kk] * b[kk][j]
//
// loop regardless of tiling, packing, or thread count. IEEE semantics are
// preserved exactly: a zero in either operand still multiplies (0 * Inf and
// 0 * NaN contribute NaN), so non-finite values always propagate to the
// output instead of being skipped.
//
// Large shapes take a register-tiled, cache-blocked path (4-row micro-tiles
// over packed 16-column B slivers, AVX2 micro-kernel when the CPU has it);
// small shapes use simple order-preserving loops. Both paths parallelize
// across output rows through gtv::parallel_for.
#pragma once

#include <cstddef>

namespace gtv::detail {

// c (m x n) += a (m x k) * b (k x n).
void gemm_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n);

// c (m x n) += a (m x k) * b^T, where b is stored (n x k). Transpose-free:
// b is never materialized transposed, only packed in small slivers.
void gemm_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n);

// c (m x n) += a^T * b, where a is stored (k x m) and b (k x n).
void gemm_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n);

// True when the packed/tiled path would be used for this shape (exposed for
// tests so the parity suite can pin both paths).
bool gemm_uses_tiled_path(std::size_t m, std::size_t k, std::size_t n);

// "avx2" or "portable": which micro-kernel the running CPU selected.
const char* gemm_kernel_isa();

}  // namespace gtv::detail
